package diskpack

import (
	"io"

	"diskpack/internal/farm"
)

// This file exports the declarative scenario engine (internal/farm):
// describe a whole experiment point — farm layout, allocation strategy,
// spin-down policy, workload, cache — as one FarmSpec and run it with
// RunFarm, or run a catalogued scenario by name with RunScenario.

// Scenario engine types (see internal/farm).
type (
	// FarmSpec declares one simulation scenario.
	FarmSpec = farm.Spec
	// FarmDiskGroup is a run of identical drives in a (possibly
	// heterogeneous) farm.
	FarmDiskGroup = farm.DiskGroup
	// FarmWorkload selects the workload source of a spec.
	FarmWorkload = farm.WorkloadSpec
	// FarmAlloc selects the allocation strategy of a spec.
	FarmAlloc = farm.AllocSpec
	// FarmSpin selects the spin-down policy of a spec.
	FarmSpin = farm.SpinSpec
	// FarmMetrics is the unified result of one scenario run.
	FarmMetrics = farm.Metrics
	// FarmAllocation is the allocation-stage output of PlanFarm.
	FarmAllocation = farm.Allocation
	// FarmScenario is a named, documented spec in the catalogue.
	FarmScenario = farm.Scenario
	// FarmScenarioResult is the outcome of RunScenario.
	FarmScenarioResult = farm.Result
	// FarmSLOSweep turns a scenario into an operating-point search.
	FarmSLOSweep = farm.SLOSweep
	// FarmSweep declares a parallel grid of scenarios: a base spec plus
	// one axis per varied dimension and a selection rule.
	FarmSweep = farm.Sweep
	// FarmAxis varies one spec dimension of a sweep.
	FarmAxis = farm.Axis
	// FarmSelector is a sweep's operating-point rule.
	FarmSelector = farm.Selector
	// FarmPoint is one compiled grid position with its result.
	FarmPoint = farm.Point
	// FarmSweepResult is a completed grid plus the selector's verdict.
	FarmSweepResult = farm.SweepResult
	// FarmFile is the JSON scenario document (one Spec or one Sweep).
	FarmFile = farm.File
	// FarmShard is one self-contained unit of a sharded sweep: the full
	// grid declaration plus the point subset one machine runs.
	FarmShard = farm.ShardManifest
	// FarmShardResult is the JSON result of running one shard.
	FarmShardResult = farm.ShardResult
)

// Workload-source constructors.
var (
	// TraceWorkload replays a pre-built trace.
	TraceWorkload = farm.TraceWorkload
	// SyntheticFarmWorkload generates the paper's Table 1 workload
	// (optionally diurnal via Synthetic.Diurnal).
	SyntheticFarmWorkload = farm.SyntheticWorkload
	// NERSCFarmWorkload synthesizes the Section 5.1 trace.
	NERSCFarmWorkload = farm.NERSCWorkload
	// BurstyFarmWorkload generates ON/OFF arrivals.
	BurstyFarmWorkload = farm.BurstyWorkload
)

// Allocation kinds.
const (
	AllocPack               = farm.AllocPack
	AllocPackV              = farm.AllocPackV
	AllocRandom             = farm.AllocRandom
	AllocFirstFit           = farm.AllocFirstFit
	AllocFirstFitDecreasing = farm.AllocFirstFitDecreasing
	AllocBestFit            = farm.AllocBestFit
	AllocChangHwangPark     = farm.AllocChangHwangPark
	AllocExplicit           = farm.AllocExplicit
)

// Spin-down policy kinds.
const (
	SpinBreakEven  = farm.SpinBreakEven
	SpinFixed      = farm.SpinFixed
	SpinNever      = farm.SpinNever
	SpinImmediate  = farm.SpinImmediate
	SpinAdaptive   = farm.SpinAdaptive
	SpinRandomized = farm.SpinRandomized
)

// Sweep axis kinds: which spec dimension an axis varies.
const (
	AxisSpinThreshold = farm.AxisSpinThreshold
	AxisFarmSize      = farm.AxisFarmSize
	AxisCacheBytes    = farm.AxisCacheBytes
	AxisCapL          = farm.AxisCapL
	AxisPackV         = farm.AxisPackV
	AxisArrivalRate   = farm.AxisArrivalRate
	AxisAllocKind     = farm.AxisAllocKind
	AxisSeed          = farm.AxisSeed
	AxisCustom        = farm.AxisCustom
)

// Sweep selector kinds: how a sweep picks its operating point.
const (
	SelectNone         = farm.SelectNone
	SelectMinEnergySLO = farm.SelectMinEnergySLO
	SelectKnee         = farm.SelectKnee
	SelectPareto       = farm.SelectPareto
)

// PackedAlloc returns the paper's default allocation (Pack_Disks) at
// load constraint L.
func PackedAlloc(capL float64) FarmAlloc { return farm.Packed(capL) }

// ExplicitAlloc wraps a precomputed file→disk map.
func ExplicitAlloc(assign []int) FarmAlloc { return farm.Explicit(assign) }

// FixedSpinPolicy returns a constant-threshold spin-down spec.
func FixedSpinPolicy(seconds float64) FarmSpin { return farm.FixedSpin(seconds) }

// RunFarm compiles a spec into a simulation and executes it. It is a
// pure function of (spec, seed): repeated calls return identical
// metrics.
func RunFarm(spec FarmSpec, seed int64) (*FarmMetrics, error) { return farm.Run(spec, seed) }

// PlanFarm runs only the workload-synthesis and allocation stages of a
// spec — no simulation. Use it to size a shared farm across a sweep
// before the real runs.
func PlanFarm(spec FarmSpec, seed int64) (*FarmAllocation, error) { return farm.Plan(spec, seed) }

// RegisterScenario adds a scenario to the catalogue (panics on
// duplicates or invalid specs — registration is init-time wiring).
func RegisterScenario(sc FarmScenario) { farm.Register(sc) }

// FarmScenarios lists the catalogue sorted by name.
func FarmScenarios() []FarmScenario { return farm.Scenarios() }

// RunScenario executes a catalogued scenario by name; sweeps run once
// per threshold and select an operating point.
func RunScenario(name string, seed int64) (*FarmScenarioResult, error) {
	return farm.RunScenario(name, seed)
}

// RunSweep compiles a grid of specs (the cross-product of the sweep's
// axes over its base) and fans the points across up to workers
// goroutines (0 = GOMAXPROCS). Results are byte-identical for any
// worker count; the sweep's selector picks the operating point(s).
func RunSweep(sweep FarmSweep, seed int64, workers int) (*FarmSweepResult, error) {
	return farm.RunSweep(sweep, seed, workers)
}

// ShardSweep splits a sweep's compiled grid into n self-contained shard
// manifests (round-robin over the point list, each carrying the full
// sweep declaration and per-point seeds). Run each anywhere with
// RunSweepShard and recombine with MergeSweep; the merged result is
// byte-identical to RunSweep(sweep, seed, workers) for any n.
func ShardSweep(sweep FarmSweep, seed int64, n int) ([]FarmShard, error) {
	return farm.Shard(sweep, seed, n)
}

// RunSweepShard executes one shard manifest with up to workers
// goroutines. prior, when non-nil, is a previous (possibly partial)
// result of the same shard whose completed points are reused instead of
// re-run — the resume path.
func RunSweepShard(m FarmShard, prior *FarmShardResult, workers int) (*FarmShardResult, error) {
	return farm.RunShard(m, prior, workers)
}

// MergeSweep recombines shard results — in any order — into the exact
// SweepResult a single-process RunSweep would have produced, erroring
// on missing, duplicated, or mismatched points.
func MergeSweep(results []FarmShardResult) (*FarmSweepResult, error) {
	return farm.Merge(results)
}

// EncodeSweepShard writes a shard manifest as JSON; DecodeSweepShard
// reads one back. cmd/disksim produces and consumes these files via
// -shards/-run-shard.
func EncodeSweepShard(w io.Writer, m FarmShard) error { return farm.EncodeShard(w, m) }

// DecodeSweepShard reads and validates a shard manifest.
func DecodeSweepShard(r io.Reader) (*FarmShard, error) { return farm.DecodeShard(r) }

// EncodeSweepShardResult writes a shard result as JSON;
// DecodeSweepShardResult reads one back (possibly partial — the resume
// input).
func EncodeSweepShardResult(w io.Writer, res FarmShardResult) error {
	return farm.EncodeShardResult(w, res)
}

// DecodeSweepShardResult reads and validates a shard result file.
func DecodeSweepShardResult(r io.Reader) (*FarmShardResult, error) {
	return farm.DecodeShardResult(r)
}

// ParseSweepAxis parses the "dim=v1,v2,..." axis grammar shared with
// cmd/disksim's -sweep flag.
func ParseSweepAxis(s string) (FarmAxis, error) { return farm.ParseAxis(s) }

// ParseSweepSelector parses the selector grammar shared with
// cmd/disksim's -select flag: "none", "knee", "pareto",
// "slo=SECONDS[,afr=RATE]".
func ParseSweepSelector(s string) (FarmSelector, error) { return farm.ParseSelector(s) }

// EncodeFarmFile writes a scenario document (one Spec or one Sweep) as
// JSON; DecodeFarmFile reads one back. cmd/disksim runs these files
// directly via -spec.
func EncodeFarmFile(w io.Writer, f FarmFile) error { return farm.EncodeFile(w, f) }

// DecodeFarmFile reads and validates a JSON scenario document.
func DecodeFarmFile(r io.Reader) (*FarmFile, error) { return farm.DecodeFile(r) }
