// Trade-off frontier: reproduce the paper's Figure 4 in miniature —
// sweep the load constraint L at fixed arrival rate and print the
// power/response-time frontier, the titular trade-off between power
// saving and response time. Each point of the sweep is one declarative
// FarmSpec differing only in its Alloc.CapL.
package main

import (
	"fmt"
	"log"
	"strings"

	"diskpack"
)

func main() {
	const arrivalRate = 6.0
	const seed = 1
	wl := diskpack.Table1Workload(arrivalRate, 1)
	wl.NumFiles = 2000
	wl.MaxSize /= 20

	spec := func(L float64, farmSize int) diskpack.FarmSpec {
		return diskpack.FarmSpec{
			Name:     fmt.Sprintf("tradeoff-L%.2f", L),
			FarmSize: farmSize,
			Workload: diskpack.SyntheticFarmWorkload(wl),
			Alloc:    diskpack.PackedAlloc(L),
			Spin:     diskpack.FarmSpin{Kind: diskpack.SpinBreakEven},
		}
	}

	Ls := []float64{0.40, 0.45, 0.50, 0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90}
	// Planning pass (allocation only, no simulation): find the largest
	// packing across the sweep, so every run shares one farm and
	// wattages are comparable.
	farmSize := 0
	for _, L := range Ls {
		plan, err := diskpack.PlanFarm(spec(L, 0), seed)
		if err != nil {
			log.Fatal(err)
		}
		if plan.DisksUsed > farmSize {
			farmSize = plan.DisksUsed
		}
	}

	type point struct {
		L     float64
		power float64
		resp  float64
	}
	var frontier []point
	for _, L := range Ls {
		m, err := diskpack.RunFarm(spec(L, farmSize), seed)
		if err != nil {
			log.Fatal(err)
		}
		frontier = append(frontier, point{L, m.AvgPower, m.RespMean})
	}

	// Render the two curves as aligned bars (power falls, response
	// rises — the Figure 4 scissors).
	maxPower, maxResp := 0.0, 0.0
	for _, p := range frontier {
		if p.power > maxPower {
			maxPower = p.power
		}
		if p.resp > maxResp {
			maxResp = p.resp
		}
	}
	fmt.Printf("Power vs response time while tightening the load constraint (R = %.0f/s)\n\n", arrivalRate)
	fmt.Printf("%5s  %-28s %-28s\n", "L", "power (W)", "mean response (s)")
	for _, p := range frontier {
		pb := int(p.power / maxPower * 24)
		rb := int(p.resp / maxResp * 24)
		fmt.Printf("%5.2f  %7.1f %-20s %7.2f %-20s\n",
			p.L, p.power, strings.Repeat("#", pb), p.resp, strings.Repeat("*", rb))
	}
	fmt.Println("\nHigher L packs files onto fewer spinning disks: power falls while")
	fmt.Println("queues lengthen — choose the L where both columns are acceptable.")
}
