// Trade-off frontier: reproduce the paper's Figure 4 in miniature —
// sweep the load constraint L at fixed arrival rate and print the
// power/response-time frontier, the titular trade-off between power
// saving and response time.
package main

import (
	"fmt"
	"log"
	"strings"

	"diskpack"
)

func main() {
	const arrivalRate = 6.0
	wl := diskpack.Table1Workload(arrivalRate, 1)
	wl.NumFiles = 2000
	wl.MaxSize /= 20
	tr, err := wl.Build()
	if err != nil {
		log.Fatal(err)
	}
	params := diskpack.DefaultDiskParams()

	type point struct {
		L     float64
		power float64
		resp  float64
	}
	var frontier []point
	farm := 0
	var allocs []*diskpack.Assignment
	Ls := []float64{0.40, 0.45, 0.50, 0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90}
	for _, L := range Ls {
		items, err := diskpack.ItemsFromTrace(tr, params, L)
		if err != nil {
			log.Fatal(err)
		}
		a, err := diskpack.Pack(items)
		if err != nil {
			log.Fatal(err)
		}
		allocs = append(allocs, a)
		if a.NumDisks > farm {
			farm = a.NumDisks
		}
	}
	for i, L := range Ls {
		res, err := diskpack.Simulate(tr, allocs[i].DiskOf, diskpack.SimConfig{
			NumDisks:      farm,
			IdleThreshold: diskpack.BreakEvenThreshold,
		})
		if err != nil {
			log.Fatal(err)
		}
		frontier = append(frontier, point{L, res.AvgPower, res.RespMean})
	}

	// Render the two curves as aligned bars (power falls, response
	// rises — the Figure 4 scissors).
	maxPower, maxResp := 0.0, 0.0
	for _, p := range frontier {
		if p.power > maxPower {
			maxPower = p.power
		}
		if p.resp > maxResp {
			maxResp = p.resp
		}
	}
	fmt.Printf("Power vs response time while tightening the load constraint (R = %.0f/s)\n\n", arrivalRate)
	fmt.Printf("%5s  %-28s %-28s\n", "L", "power (W)", "mean response (s)")
	for _, p := range frontier {
		pb := int(p.power / maxPower * 24)
		rb := int(p.resp / maxResp * 24)
		fmt.Printf("%5.2f  %7.1f %-20s %7.2f %-20s\n",
			p.L, p.power, strings.Repeat("#", pb), p.resp, strings.Repeat("*", rb))
	}
	fmt.Println("\nHigher L packs files onto fewer spinning disks: power falls while")
	fmt.Println("queues lengthen — choose the L where both columns are acceptable.")
}
