// Capacity planning: the paper's Section 1 suggests using the model
// "for computing the percentage of disks that must be maintained
// on-line to meet file access response time under budget constraints."
// This example answers: given a workload and a mean-response-time
// budget, what is the smallest load constraint L (hence fewest spinning
// disks, hence lowest power bill) that still meets the budget? The
// sweep is one FarmSpec per candidate L.
package main

import (
	"fmt"
	"log"

	"diskpack"
)

func main() {
	const responseBudget = 12.0 // seconds, mean
	const arrivalRate = 6.0     // requests per second
	const seed = 1

	wl := diskpack.Table1Workload(arrivalRate, 1)
	wl.NumFiles = 2000
	wl.MaxSize /= 20

	fmt.Printf("workload: %d files, R = %.0f req/s; budget: mean response <= %.1f s\n\n",
		wl.NumFiles, arrivalRate, responseBudget)
	fmt.Printf("%6s %8s %12s %12s %8s\n", "L", "disks", "power (W)", "resp (s)", "meets?")

	type plan struct {
		L     float64
		disks int
		power float64
		resp  float64
	}
	var best *plan
	// Sweep the load constraint from loose to tight: higher L means
	// fewer, busier disks — cheaper but slower.
	for _, L := range []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		m, err := diskpack.RunFarm(diskpack.FarmSpec{
			Name:     fmt.Sprintf("capacity-L%.1f", L),
			Workload: diskpack.SyntheticFarmWorkload(wl),
			Alloc:    diskpack.PackedAlloc(L),
			Spin:     diskpack.FarmSpin{Kind: diskpack.SpinBreakEven},
		}, seed)
		if err != nil {
			log.Fatal(err)
		}
		meets := m.RespMean <= responseBudget
		mark := "no"
		if meets {
			mark = "yes"
		}
		fmt.Printf("%6.2f %8d %12.1f %12.2f %8s\n",
			L, m.DisksUsed, m.AvgPower, m.RespMean, mark)
		if meets {
			p := plan{L: L, disks: m.DisksUsed, power: m.AvgPower, resp: m.RespMean}
			if best == nil || p.power < best.power {
				best = &p
			}
		}
	}
	if best == nil {
		fmt.Println("\nno plan meets the budget — add disks or relax the budget")
		return
	}
	fmt.Printf("\nrecommended plan: L = %.2f keeping %d disks on-line (%.1f W, %.2f s mean response)\n",
		best.L, best.disks, best.power, best.resp)
	fmt.Println("\n(the catalogued \"slo-sweep\" scenario asks the dual question — the")
	fmt.Println("cheapest spin-down threshold under a p95 SLO: cmd/disksim -scenario slo-sweep)")
}
