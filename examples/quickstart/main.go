// Quickstart: generate a small Zipf workload, allocate it with the
// paper's Pack_Disks algorithm, simulate the disk farm, and compare
// energy and response time against random placement.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"diskpack"
)

func main() {
	// A scaled-down Table 1 workload: Zipf-like popularity, inverse
	// Zipf sizes, Poisson arrivals at R = 1 request/second. Small
	// files keep the instance load-bound, so packing concentrates the
	// traffic on a couple of disks and the rest of the farm can sleep.
	wl := diskpack.Table1Workload(1, 1)
	wl.NumFiles = 2000
	wl.MaxSize /= 100
	wl.MinSize /= 100
	tr, err := wl.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Normalize files into 2DVPP items: sizes against the 500 GB disk,
	// loads against 70% of the disk's service capability.
	params := diskpack.DefaultDiskParams()
	items, err := diskpack.ItemsFromTrace(tr, params, 0.7)
	if err != nil {
		log.Fatal(err)
	}

	// Pack with the O(n log n) algorithm; Theorem 1 guarantees we are
	// within 1/(1-rho) of the optimal disk count.
	alloc, err := diskpack.Pack(items)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pack_Disks used %d disks (lower bound %d, rho %.3f)\n",
		alloc.NumDisks, diskpack.LowerBoundDisks(items), diskpack.Rho(items))

	// Simulate a farm of 20 disks under the break-even spin-down
	// policy (53.3 s for this drive).
	farm := alloc.NumDisks
	if farm < 20 {
		farm = 20
	}
	cfg := diskpack.SimConfig{NumDisks: farm, IdleThreshold: diskpack.BreakEvenThreshold}
	packed, err := diskpack.Simulate(tr, alloc.DiskOf, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: the same files scattered uniformly over the farm.
	rng := rand.New(rand.NewSource(2))
	random := make([]int, len(items))
	for i := range random {
		random[i] = rng.Intn(farm)
	}
	scattered, err := diskpack.Simulate(tr, random, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-22s %14s %14s\n", "", "Pack_Disks", "Random")
	fmt.Printf("%-22s %12.1f W %12.1f W\n", "average power", packed.AvgPower, scattered.AvgPower)
	fmt.Printf("%-22s %12.1f %% %12.1f %%\n", "saving vs always-on", packed.PowerSavingRatio*100, scattered.PowerSavingRatio*100)
	fmt.Printf("%-22s %12.2f s %12.2f s\n", "mean response", packed.RespMean, scattered.RespMean)
	fmt.Printf("%-22s %14d %14d\n", "spin-ups", packed.SpinUps, scattered.SpinUps)
	fmt.Printf("\nPack_Disks saves %.1f%% of the energy random placement uses.\n",
		(1-packed.Energy/scattered.Energy)*100)
}
