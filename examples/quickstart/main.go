// Quickstart: describe a whole experiment — workload, allocation,
// spin-down policy, farm size — as one declarative FarmSpec and run it.
// Two specs that differ only in their allocation strategy reproduce the
// paper's headline comparison: Pack_Disks versus random placement.
package main

import (
	"fmt"
	"log"

	"diskpack"
)

func main() {
	// A scaled-down Table 1 workload: Zipf-like popularity, inverse
	// Zipf sizes, Poisson arrivals at R = 1 request/second. Small
	// files keep the instance load-bound, so packing concentrates the
	// traffic on a couple of disks and the rest of the farm can sleep.
	wl := diskpack.Table1Workload(1, 1)
	wl.NumFiles = 2000
	wl.MaxSize /= 100
	wl.MinSize /= 100

	// The base spec: 20 disks under the break-even spin-down policy
	// (53.3 s for the Table 2 drive). Everything is data — swap any
	// field to ask a different question.
	base := diskpack.FarmSpec{
		FarmSize: 20,
		Workload: diskpack.SyntheticFarmWorkload(wl),
		Spin:     diskpack.FarmSpin{Kind: diskpack.SpinBreakEven},
	}

	packSpec := base
	packSpec.Name = "pack"
	packSpec.Alloc = diskpack.PackedAlloc(0.7) // Pack_Disks at L = 70%

	randomSpec := base
	randomSpec.Name = "random"
	randomSpec.Alloc = diskpack.FarmAlloc{
		Kind: diskpack.AllocRandom, CapL: 0.7, Disks: 20,
	}

	const seed = 1
	packed, err := diskpack.RunFarm(packSpec, seed)
	if err != nil {
		log.Fatal(err)
	}
	scattered, err := diskpack.RunFarm(randomSpec, seed)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Pack_Disks used %d disks (lower bound %d, rho %.3f)\n",
		packed.DisksUsed, packed.LowerBound, packed.Rho)
	fmt.Printf("\n%-22s %14s %14s\n", "", "Pack_Disks", "Random")
	fmt.Printf("%-22s %12.1f W %12.1f W\n", "average power", packed.AvgPower, scattered.AvgPower)
	fmt.Printf("%-22s %12.1f %% %12.1f %%\n", "saving vs always-on", packed.PowerSavingRatio*100, scattered.PowerSavingRatio*100)
	fmt.Printf("%-22s %12.2f s %12.2f s\n", "mean response", packed.RespMean, scattered.RespMean)
	fmt.Printf("%-22s %14d %14d\n", "spin-ups", packed.SpinUps, scattered.SpinUps)
	fmt.Printf("\nPack_Disks saves %.1f%% of the energy random placement uses.\n",
		(1-packed.Energy/scattered.Energy)*100)
}
