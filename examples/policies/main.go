// Spin-down policies: compare the paper's fixed break-even threshold
// against the adaptive and randomized policies from the dynamic
// power-management literature it surveys (Section 2), and check the
// simulated numbers against the closed-form M/G/1 prediction. Each
// policy is one FarmSpin value in an otherwise identical FarmSpec.
package main

import (
	"fmt"
	"log"

	"diskpack"
)

func main() {
	wl := diskpack.NERSCTrace(1)
	wl.NumFiles = 8000
	wl.NumRequests = 10000
	wl.Duration *= 10000.0 / 115832
	tr, err := wl.Build()
	if err != nil {
		log.Fatal(err)
	}
	// Pack once and share the trace and allocation across policies, so
	// the spin-down rule is the only thing that varies.
	params := diskpack.DefaultDiskParams()
	items, err := diskpack.ItemsFromTrace(tr, params, 0.8)
	if err != nil {
		log.Fatal(err)
	}
	alloc, err := diskpack.Pack(items)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NERSC-like trace on %d packed disks; break-even threshold %.1f s\n\n",
		alloc.NumDisks, params.BreakEvenThreshold())

	policies := []struct {
		name string
		spin diskpack.FarmSpin
	}{
		{"fixed break-even", diskpack.FarmSpin{Kind: diskpack.SpinBreakEven}},
		{"adaptive", diskpack.FarmSpin{Kind: diskpack.SpinAdaptive}},
		{"randomized e/(e-1)", diskpack.FarmSpin{Kind: diskpack.SpinRandomized}},
	}
	fmt.Printf("%-20s %10s %12s %10s\n", "policy", "saving", "resp mean", "spin-ups")
	for _, p := range policies {
		m, err := diskpack.RunFarm(diskpack.FarmSpec{
			Name:     p.name,
			Workload: diskpack.TraceWorkload(tr),
			Alloc:    diskpack.ExplicitAlloc(alloc.DiskOf),
			Spin:     p.spin,
		}, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %9.1f%% %10.2f s %10d\n",
			p.name, m.PowerSavingRatio*100, m.RespMean, m.SpinUps)
	}

	// Cross-check the fixed policy against the analytic model.
	loads, err := diskpack.AnalyzeAllocation(tr.Files, alloc.DiskOf, alloc.NumDisks, params)
	if err != nil {
		log.Fatal(err)
	}
	pred := diskpack.PredictFarm(loads, params, params.BreakEvenThreshold())
	fmt.Printf("\nanalytic M/G/1 prediction for the fixed policy: %.1f W, %.2f s mean response\n",
		pred.AvgPower, pred.MeanResponse+pred.SpinPenalty)
	fmt.Println("(the adaptive policy trades a few percent of saving for far fewer spin cycles,")
	fmt.Println("which matters for drive wear — the paper's Section 5.1 reliability remark.)")
}
