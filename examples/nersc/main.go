// NERSC scenario: replay the paper's Section 5.1 evaluation on the
// synthesized 30-day NERSC read trace — random placement vs Pack_Disks
// vs Pack_Disks_4, with and without a 16 GB LRU front cache, at a fixed
// 0.5 h idleness threshold (the paper's recommended operating point).
// The five series are five declarative FarmSpecs over one workload.
package main

import (
	"fmt"
	"log"

	"diskpack"
)

func main() {
	// A 1/8-scale trace keeps this example under a minute while
	// preserving all the trace's statistical structure (Zipf sizes,
	// size⊥popularity, diurnal arrivals, batched requests).
	wl := diskpack.NERSCTrace(1)
	wl.NumFiles = 11000
	wl.NumRequests = 14500
	wl.Duration *= 14500.0 / 115832
	const seed = 1
	const threshold = 0.5 * 3600 // seconds
	const lru = 16e9

	spec := func(alloc diskpack.FarmAlloc, farmSize int, cache int64) diskpack.FarmSpec {
		return diskpack.FarmSpec{
			Name:       "nersc",
			FarmSize:   farmSize,
			Workload:   diskpack.NERSCFarmWorkload(wl),
			Alloc:      alloc,
			Spin:       diskpack.FixedSpinPolicy(threshold),
			CacheBytes: cache,
		}
	}
	pack := diskpack.FarmAlloc{Kind: diskpack.AllocPack, CapL: 0.8}
	pack4 := diskpack.FarmAlloc{Kind: diskpack.AllocPackV, CapL: 0.8, V: 4}

	// Planning pass (allocation only, no simulation): size the shared
	// farm to the larger of the two packings (the paper gives random
	// placement the same farm).
	p1, err := diskpack.PlanFarm(spec(pack, 0, 0), seed)
	if err != nil {
		log.Fatal(err)
	}
	p4, err := diskpack.PlanFarm(spec(pack4, 0, 0), seed)
	if err != nil {
		log.Fatal(err)
	}
	farmSize := p1.DisksUsed
	if p4.DisksUsed > farmSize {
		farmSize = p4.DisksUsed
	}
	rnd := diskpack.FarmAlloc{Kind: diskpack.AllocRandom, CapL: 0.8, Disks: farmSize}

	fmt.Printf("trace: %d files, %d requests over %.0f h\n", wl.NumFiles, wl.NumRequests, wl.Duration/3600)
	fmt.Printf("farm: %d disks of 500 GB (lower bound %d)\n\n", farmSize, p1.LowerBound)

	rows := []struct {
		name  string
		alloc diskpack.FarmAlloc
		cache int64
	}{
		{"RND", rnd, 0},
		{"Pack_Disk", pack, 0},
		{"Pack_Disk4", pack4, 0},
		{"RND+LRU", rnd, lru},
		{"Pack_Disk4+LRU", pack4, lru},
	}
	fmt.Printf("%-16s %12s %12s %10s %10s\n", "allocation", "saving", "resp mean", "resp p95", "cache hit")
	for _, row := range rows {
		m, err := diskpack.RunFarm(spec(row.alloc, farmSize, row.cache), seed)
		if err != nil {
			log.Fatal(err)
		}
		hit := "-"
		if row.cache > 0 {
			hit = fmt.Sprintf("%.1f%%", m.CacheHitRatio*100)
		}
		fmt.Printf("%-16s %11.1f%% %10.2f s %8.2f s %10s\n",
			row.name, m.PowerSavingRatio*100, m.RespMean, m.RespP95, hit)
	}
	fmt.Println("\nPack_Disks keeps most of the farm asleep (high saving) while")
	fmt.Println("Pack_Disk4 spreads batched same-size requests over 4 spindles,")
	fmt.Println("trading a little power for shorter queues (the paper's Figure 5/6).")
}
