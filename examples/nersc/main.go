// NERSC scenario: replay the paper's Section 5.1 evaluation on the
// synthesized 30-day NERSC read trace — random placement vs Pack_Disks
// vs Pack_Disks_4, with and without a 16 GB LRU front cache, at a fixed
// 0.5 h idleness threshold (the paper's recommended operating point).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"diskpack"
	"diskpack/internal/core"
)

func main() {
	// A 1/8-scale trace keeps this example under a minute while
	// preserving all the trace's statistical structure (Zipf sizes,
	// size⊥popularity, diurnal arrivals, batched requests).
	wl := diskpack.NERSCTrace(1)
	wl.NumFiles = 11000
	wl.NumRequests = 14500
	wl.Duration *= 14500.0 / 115832
	tr, err := wl.Build()
	if err != nil {
		log.Fatal(err)
	}
	s := tr.Stats()
	fmt.Printf("trace: %d files, %d requests over %.0f h, mean size %.0f MB\n\n",
		s.NumFiles, s.NumRequests, s.Duration/3600, s.MeanFileSize/1e6)

	params := diskpack.DefaultDiskParams()
	items, err := diskpack.ItemsFromTrace(tr, params, 0.8)
	if err != nil {
		log.Fatal(err)
	}
	pack, err := diskpack.Pack(items)
	if err != nil {
		log.Fatal(err)
	}
	pack4, err := diskpack.PackGrouped(items, 4)
	if err != nil {
		log.Fatal(err)
	}
	farm := pack.NumDisks
	if pack4.NumDisks > farm {
		farm = pack4.NumDisks
	}
	// The paper gives random placement the same farm as Pack_Disks.
	rnd, err := core.RandomAssignCapacity(items, farm, rand.New(rand.NewSource(7)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("farm: %d disks of 500 GB (lower bound %d)\n\n", farm, diskpack.LowerBoundDisks(items))

	const threshold = 0.5 * 3600 // seconds
	const lru = 16e9
	rows := []struct {
		name   string
		assign []int
		cache  int64
	}{
		{"RND", rnd.DiskOf, 0},
		{"Pack_Disk", pack.DiskOf, 0},
		{"Pack_Disk4", pack4.DiskOf, 0},
		{"RND+LRU", rnd.DiskOf, lru},
		{"Pack_Disk4+LRU", pack4.DiskOf, lru},
	}
	fmt.Printf("%-16s %12s %12s %10s %10s\n", "allocation", "saving", "resp mean", "resp p95", "cache hit")
	for _, row := range rows {
		res, err := diskpack.Simulate(tr, row.assign, diskpack.SimConfig{
			NumDisks:      farm,
			IdleThreshold: threshold,
			CacheBytes:    row.cache,
		})
		if err != nil {
			log.Fatal(err)
		}
		hit := "-"
		if row.cache > 0 {
			hit = fmt.Sprintf("%.1f%%", res.CacheHitRatio*100)
		}
		fmt.Printf("%-16s %11.1f%% %10.2f s %8.2f s %10s\n",
			row.name, res.PowerSavingRatio*100, res.RespMean, res.RespP95, hit)
	}
	fmt.Println("\nPack_Disks keeps most of the farm asleep (high saving) while")
	fmt.Println("Pack_Disk4 spreads batched same-size requests over 4 spindles,")
	fmt.Println("trading a little power for shorter queues (the paper's Figure 5/6).")
}
