// Package policy implements the dynamic power management (DPM)
// spin-down policies surveyed in the paper's Section 2 (Irani et al.'s
// competitive-analysis line of work), pluggable into the disk model via
// disk.SpinPolicy:
//
//   - Fixed: the paper's own policy — a constant idleness threshold,
//     usually the break-even time. As an online algorithm for the
//     "ski-rental" structure of the problem it is 2-competitive, and no
//     deterministic policy does better.
//   - Adaptive: a learning threshold that doubles after premature
//     spin-downs and halves after long-undisturbed sleeps (in the
//     style of Douglis et al.'s adaptive disk spin-down).
//   - Randomized: draws each timeout from the exponential density
//     f(t) = e^(t/β) / (β(e−1)) on [0, β] (β = break-even), the optimal
//     randomized strategy with expected competitive ratio
//     e/(e−1) ≈ 1.582.
//   - AlwaysOn / Immediate: the two degenerate corners, used as
//     baselines and in the normalization of Figure 5.
//
// The package also provides the analytic per-gap energy model
// (GapEnergy, OptimalGapEnergy) on which the competitive ratios are
// defined, so the guarantees are testable without a simulator.
package policy

import (
	"fmt"
	"math"
	"math/rand"

	"diskpack/internal/disk"
)

// Fixed is a constant idleness threshold (the paper's policy).
type Fixed struct {
	T float64
}

// NewFixed returns a fixed-threshold policy.
func NewFixed(t float64) *Fixed {
	if t < 0 || math.IsNaN(t) {
		panic(fmt.Sprintf("policy: invalid fixed threshold %v", t))
	}
	return &Fixed{T: t}
}

// NewBreakEven returns the paper's configuration: a fixed threshold at
// the drive's break-even time (2-competitive).
func NewBreakEven(p disk.Params) *Fixed { return &Fixed{T: p.BreakEvenThreshold()} }

// Timeout implements disk.SpinPolicy.
func (f *Fixed) Timeout() float64 { return f.T }

// ObserveIdle implements disk.SpinPolicy (no adaptation).
func (f *Fixed) ObserveIdle(float64) {}

// String names the policy.
func (f *Fixed) String() string { return fmt.Sprintf("fixed(%.3gs)", f.T) }

// Tunable is a fixed idleness threshold an external control loop can
// retune while the simulation runs — the actuator of the online
// tail-budget controller (internal/control). One Tunable is shared by
// every disk of a farm group, so a single Set moves the whole group;
// the new timeout takes effect from each disk's next idle-period
// arming (a timer already armed keeps the timeout it was armed with,
// which keeps retuning deterministic and causally clean).
type Tunable struct {
	T        float64
	Min, Max float64
}

// NewTunable returns a tunable threshold centred on the drive's
// break-even time: initial T = start (break-even when start is 0),
// with the retuning range [break-even/8, 64×break-even] widened to
// include the start value — an explicit initial threshold is honoured
// exactly, never clamped away.
func NewTunable(p disk.Params, start float64) *Tunable {
	be := p.BreakEvenThreshold()
	t := &Tunable{T: start, Min: be / 8, Max: be * 64}
	if t.T <= 0 {
		t.T = be
	}
	if t.T < t.Min {
		t.Min = t.T
	}
	if t.T > t.Max {
		t.Max = t.T
	}
	return t
}

// Timeout implements disk.SpinPolicy.
func (p *Tunable) Timeout() float64 { return p.T }

// ObserveIdle implements disk.SpinPolicy (the control loop, not the
// gap history, drives this policy).
func (p *Tunable) ObserveIdle(float64) {}

// Set retunes the threshold, clamped to [Min, Max], and returns the
// value adopted.
func (p *Tunable) Set(t float64) float64 {
	p.T = p.clamp(t)
	return p.T
}

func (p *Tunable) clamp(t float64) float64 {
	if math.IsNaN(t) {
		return p.T
	}
	if t < p.Min {
		t = p.Min
	}
	if t > p.Max {
		t = p.Max
	}
	return t
}

// String names the policy.
func (p *Tunable) String() string { return fmt.Sprintf("tunable(%.3gs)", p.T) }

// AlwaysOn never spins down — the paper's "no power-saving mechanism"
// baseline.
type AlwaysOn struct{}

// Timeout implements disk.SpinPolicy.
func (AlwaysOn) Timeout() float64 { return math.Inf(1) }

// ObserveIdle implements disk.SpinPolicy.
func (AlwaysOn) ObserveIdle(float64) {}

// String names the policy.
func (AlwaysOn) String() string { return "always-on" }

// Immediate spins down the moment the queue drains (aggressive MAID).
type Immediate struct{}

// Timeout implements disk.SpinPolicy.
func (Immediate) Timeout() float64 { return 0 }

// ObserveIdle implements disk.SpinPolicy.
func (Immediate) ObserveIdle(float64) {}

// String names the policy.
func (Immediate) String() string { return "immediate" }

// Adaptive learns the threshold from observed idle gaps: a gap that
// ends shortly after the disk spun down means the spin-down was a
// mistake (the threshold doubles); a gap that far outlives the
// threshold means energy was wasted waiting (the threshold halves).
// The threshold stays within [Min, Max].
type Adaptive struct {
	T        float64
	Min, Max float64
	// Penalty is the gap-beyond-timeout window regarded as "premature
	// spin-down": if timeout < gap < timeout+Penalty the policy backs
	// off. A natural choice is the spin-down+spin-up time.
	Penalty float64
}

// NewAdaptive returns an adaptive policy centred on the drive's
// break-even threshold: initial T = break-even, range [T/8, 8T],
// penalty window = one full spin cycle.
func NewAdaptive(p disk.Params) *Adaptive {
	be := p.BreakEvenThreshold()
	return &Adaptive{
		T:       be,
		Min:     be / 8,
		Max:     be * 8,
		Penalty: p.SpinDownTime + p.SpinUpTime,
	}
}

// Timeout implements disk.SpinPolicy.
func (a *Adaptive) Timeout() float64 { return a.T }

// ObserveIdle implements disk.SpinPolicy.
func (a *Adaptive) ObserveIdle(gap float64) {
	switch {
	case gap > a.T && gap < a.T+a.Penalty:
		// Spun down and was woken almost immediately: too eager.
		a.T *= 2
	case gap > 4*a.T:
		// Waited out only a small part of a long gap: too timid.
		a.T /= 2
	}
	if a.T < a.Min {
		a.T = a.Min
	}
	if a.T > a.Max {
		a.T = a.Max
	}
}

// String names the policy.
func (a *Adaptive) String() string { return fmt.Sprintf("adaptive(%.3gs)", a.T) }

// Randomized draws every timeout from the density
// f(t) = e^(t/β)/(β(e−1)) on [0, β], the optimal randomized strategy
// for the two-state spin-down game; its expected competitive ratio is
// e/(e−1) ≈ 1.582, beating every deterministic policy's 2.
type Randomized struct {
	Beta float64
	rng  *rand.Rand
}

// NewRandomized returns the randomized policy for the drive's
// break-even constant β, seeded deterministically.
func NewRandomized(p disk.Params, seed int64) *Randomized {
	return &Randomized{Beta: p.BreakEvenThreshold(), rng: rand.New(rand.NewSource(seed))}
}

// Timeout implements disk.SpinPolicy: inverse-CDF sampling of f.
// CDF(t) = (e^(t/β) − 1)/(e − 1), so t = β·ln(1 + u(e−1)).
func (r *Randomized) Timeout() float64 {
	u := r.rng.Float64()
	return r.Beta * math.Log(1+u*(math.E-1))
}

// ObserveIdle implements disk.SpinPolicy (no adaptation).
func (r *Randomized) ObserveIdle(float64) {}

// String names the policy.
func (r *Randomized) String() string { return fmt.Sprintf("randomized(β=%.3gs)", r.Beta) }

// GapEnergy returns the energy in joules a drive spends over an idle
// gap of length gap when it uses the given spin-down timeout: idle
// until the timeout, then a spin-down, standby dwell, and a spin-up
// triggered by the arrival ending the gap. An arrival during the
// spin-down still pays the full down+up cycle (a drive cannot abort a
// spin-down); the spin-up itself happens after the gap ends and is
// charged here because the timeout decision caused it.
func GapEnergy(p disk.Params, timeout, gap float64) float64 {
	if gap <= timeout {
		return p.IdlePower * gap
	}
	e := p.IdlePower*timeout + p.SpinDownPower*p.SpinDownTime + p.SpinUpPower*p.SpinUpTime
	if standby := gap - timeout - p.SpinDownTime; standby > 0 {
		e += p.StandbyPower * standby
	}
	return e
}

// OptimalGapEnergy returns the energy of the offline optimum that
// knows the gap length in advance: either stay idle throughout, or
// spin down immediately.
func OptimalGapEnergy(p disk.Params, gap float64) float64 {
	return math.Min(GapEnergy(p, math.Inf(1), gap), GapEnergy(p, 0, gap))
}

// CompetitiveRatio returns the worst-case ratio of the fixed-timeout
// policy's energy to the offline optimum over gaps up to horizon,
// evaluated analytically at the critical points (the ratio is
// piecewise monotone with its supremum at gap → timeout⁺ or at the
// break-even point).
func CompetitiveRatio(p disk.Params, timeout, horizon float64) float64 {
	worst := 1.0
	// Dense scan plus the analytic critical points.
	probe := func(g float64) {
		if g <= 0 || g > horizon {
			return
		}
		if opt := OptimalGapEnergy(p, g); opt > 0 {
			if r := GapEnergy(p, timeout, g) / opt; r > worst {
				worst = r
			}
		}
	}
	be := p.BreakEvenThreshold()
	for _, g := range []float64{timeout, timeout * 1.0000001, be, be * 1.0000001, horizon} {
		probe(g)
	}
	for i := 1; i <= 4096; i++ {
		probe(horizon * float64(i) / 4096)
	}
	return worst
}
