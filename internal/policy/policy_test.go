package policy

import (
	"math"
	"math/rand"
	"testing"

	"diskpack/internal/disk"
	"diskpack/internal/sim"
)

func TestFixedTimeout(t *testing.T) {
	f := NewFixed(53.3)
	if f.Timeout() != 53.3 {
		t.Fatalf("timeout=%v", f.Timeout())
	}
	f.ObserveIdle(1e9) // must not adapt
	if f.Timeout() != 53.3 {
		t.Fatal("fixed policy adapted")
	}
}

func TestFixedInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative threshold accepted")
		}
	}()
	NewFixed(-1)
}

func TestBreakEvenMatchesDrive(t *testing.T) {
	p := disk.DefaultParams()
	f := NewBreakEven(p)
	if math.Abs(f.Timeout()-53.3) > 0.05 {
		t.Fatalf("break-even policy timeout %v", f.Timeout())
	}
}

func TestDegeneratePolicies(t *testing.T) {
	if !math.IsInf((AlwaysOn{}).Timeout(), 1) {
		t.Error("AlwaysOn timeout not +Inf")
	}
	if (Immediate{}).Timeout() != 0 {
		t.Error("Immediate timeout not 0")
	}
}

func TestAdaptiveBacksOffAfterPrematureSpinDown(t *testing.T) {
	p := disk.DefaultParams()
	a := NewAdaptive(p)
	t0 := a.Timeout()
	// Gap just past the timeout: a premature spin-down.
	a.ObserveIdle(t0 + 1)
	if a.Timeout() <= t0 {
		t.Fatalf("threshold did not grow after premature spin-down: %v -> %v", t0, a.Timeout())
	}
}

func TestAdaptiveTightensAfterLongGaps(t *testing.T) {
	p := disk.DefaultParams()
	a := NewAdaptive(p)
	t0 := a.Timeout()
	a.ObserveIdle(100 * t0)
	if a.Timeout() >= t0 {
		t.Fatalf("threshold did not shrink after long gap: %v -> %v", t0, a.Timeout())
	}
}

func TestAdaptiveStaysInRange(t *testing.T) {
	p := disk.DefaultParams()
	a := NewAdaptive(p)
	for i := 0; i < 100; i++ {
		a.ObserveIdle(a.Timeout() + 1) // keep doubling
	}
	if a.Timeout() > a.Max {
		t.Fatalf("threshold %v escaped max %v", a.Timeout(), a.Max)
	}
	for i := 0; i < 100; i++ {
		a.ObserveIdle(1e12) // keep halving
	}
	if a.Timeout() < a.Min {
		t.Fatalf("threshold %v escaped min %v", a.Timeout(), a.Min)
	}
}

func TestAdaptiveNeutralGapsDoNothing(t *testing.T) {
	p := disk.DefaultParams()
	a := NewAdaptive(p)
	t0 := a.Timeout()
	a.ObserveIdle(t0 / 2) // disk never spun down: no signal
	if a.Timeout() != t0 {
		t.Fatal("short gap changed threshold")
	}
}

func TestRandomizedTimeoutsWithinBeta(t *testing.T) {
	p := disk.DefaultParams()
	r := NewRandomized(p, 1)
	for i := 0; i < 10000; i++ {
		v := r.Timeout()
		if v < 0 || v > r.Beta {
			t.Fatalf("timeout %v outside [0,β=%v]", v, r.Beta)
		}
	}
}

func TestRandomizedDensityShape(t *testing.T) {
	// The density grows like e^(t/β): the top quarter of [0,β] must be
	// sampled more than the bottom quarter.
	p := disk.DefaultParams()
	r := NewRandomized(p, 2)
	lo, hi := 0, 0
	for i := 0; i < 40000; i++ {
		v := r.Timeout() / r.Beta
		if v < 0.25 {
			lo++
		}
		if v > 0.75 {
			hi++
		}
	}
	if hi <= lo {
		t.Fatalf("density not increasing: bottom quarter %d, top quarter %d", lo, hi)
	}
}

func TestGapEnergyPiecewise(t *testing.T) {
	p := disk.DefaultParams()
	// Gap shorter than the timeout: pure idle.
	if got, want := GapEnergy(p, 100, 40), 9.3*40.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("short gap: %v want %v", got, want)
	}
	// Gap past the timeout: idle + transition + standby.
	gap, timeout := 500.0, 100.0
	want := 9.3*100 + 9.3*10 + 24*15 + 0.8*(500-100-10)
	if got := GapEnergy(p, timeout, gap); math.Abs(got-want) > 1e-9 {
		t.Errorf("long gap: %v want %v", got, want)
	}
	// Arrival during spin-down: no standby segment, full cycle anyway.
	gap = 105
	want = 9.3*100 + 9.3*10 + 24*15
	if got := GapEnergy(p, timeout, gap); math.Abs(got-want) > 1e-9 {
		t.Errorf("mid-spin-down gap: %v want %v", got, want)
	}
}

func TestOptimalGapEnergyBreakEvenIndifference(t *testing.T) {
	// At the break-even gap the two offline choices cost the same...
	// almost: the offline optimum pays the spin-down dwell at
	// spin-down power, so equality holds at the gap where
	// idle*g = E_transition + standby*(g−T_down). Verify OPT is the
	// min of the two strategies everywhere.
	p := disk.DefaultParams()
	for _, g := range []float64{1, 10, 53.3, 100, 1000, 100000} {
		idle := GapEnergy(p, math.Inf(1), g)
		down := GapEnergy(p, 0, g)
		if got := OptimalGapEnergy(p, g); got != math.Min(idle, down) {
			t.Errorf("gap %v: OPT %v != min(%v,%v)", g, got, idle, down)
		}
	}
}

// TestBreakEvenIsTwoCompetitive verifies the classic DPM result the
// paper's Section 2 cites: the fixed break-even threshold never
// consumes more than twice the offline optimum on any single gap.
func TestBreakEvenIsTwoCompetitive(t *testing.T) {
	p := disk.DefaultParams()
	be := p.BreakEvenThreshold()
	ratio := CompetitiveRatio(p, be, 1e6)
	if ratio > 2.0+1e-6 {
		t.Fatalf("break-even policy ratio %v exceeds 2", ratio)
	}
	// And it is tight: the ratio approaches 2 for gaps just past the
	// threshold (idle energy ≈ transition energy ≈ OPT).
	if ratio < 1.8 {
		t.Fatalf("break-even ratio %v suspiciously far from the tight bound 2", ratio)
	}
}

// TestRandomizedBeatsDeterministic verifies the e/(e−1) expectation:
// averaged over its own randomness, the randomized policy's energy on
// the adversarial gap stays below the deterministic worst case.
func TestRandomizedBeatsDeterministic(t *testing.T) {
	p := disk.DefaultParams()
	be := p.BreakEvenThreshold()
	r := NewRandomized(p, 3)
	// Adversarial gap for the deterministic policy: just past β.
	gap := be * 1.0001
	opt := OptimalGapEnergy(p, gap)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += GapEnergy(p, r.Timeout(), gap)
	}
	avgRatio := sum / n / opt
	det := GapEnergy(p, be, gap) / opt
	if avgRatio >= det {
		t.Fatalf("randomized expected ratio %v not below deterministic %v", avgRatio, det)
	}
	// e/(e-1) ≈ 1.582; allow sampling noise and the model's standby
	// offset.
	if avgRatio > 1.75 {
		t.Fatalf("randomized expected ratio %v too far above e/(e-1)", avgRatio)
	}
}

// TestExtremeTimeoutsAreWorse: both degenerate policies can be forced
// arbitrarily close to their worst case, which exceeds the break-even
// policy's 2.
func TestExtremeTimeoutsAreWorse(t *testing.T) {
	p := disk.DefaultParams()
	// AlwaysOn on a huge gap.
	gap := 1e6
	if r := GapEnergy(p, math.Inf(1), gap) / OptimalGapEnergy(p, gap); r < 5 {
		t.Errorf("always-on ratio %v should blow up on long gaps", r)
	}
	// Immediate on a tiny gap.
	gap = 1.0
	if r := GapEnergy(p, 0, gap) / OptimalGapEnergy(p, gap); r < 5 {
		t.Errorf("immediate ratio %v should blow up on short gaps", r)
	}
}

// TestPoliciesDriveDisk verifies the policies integrate with the disk
// state machine: adaptive actually changes behaviour across gaps, and
// the randomized policy spins down within β.
func TestPoliciesDriveDisk(t *testing.T) {
	p := disk.DefaultParams()
	env := sim.NewEnv()
	a := NewAdaptive(p)
	d := disk.NewWithPolicy(env, 0, p, a)
	// Feed gaps just past the current threshold repeatedly: the policy
	// must back off (fewer spin-downs over time).
	for i := 0; i < 6; i++ {
		tt := env.Now() + a.Timeout() + p.SpinDownTime + 1
		env.At(tt, func() {
			d.Submit(&disk.Request{FileID: 0, Size: 72e6, Arrival: env.Now()})
		})
		env.Run()
	}
	if a.Timeout() <= p.BreakEvenThreshold() {
		t.Fatalf("adaptive threshold %v did not grow under premature gaps", a.Timeout())
	}
	if d.SpinUps() == 0 {
		t.Fatal("no spin-ups recorded — gaps never exceeded thresholds?")
	}
}

func TestObserveIdleReceivesTrueGapLengths(t *testing.T) {
	p := disk.DefaultParams()
	env := sim.NewEnv()
	rec := &recordingPolicy{}
	d := disk.NewWithPolicy(env, 0, p, rec)
	env.At(100, func() { d.Submit(&disk.Request{FileID: 0, Size: 72e6, Arrival: env.Now()}) })
	env.At(300, func() { d.Submit(&disk.Request{FileID: 1, Size: 72e6, Arrival: env.Now()}) })
	env.Run()
	if len(rec.gaps) != 2 {
		t.Fatalf("observed %d gaps want 2: %v", len(rec.gaps), rec.gaps)
	}
	if math.Abs(rec.gaps[0]-100) > 1e-9 {
		t.Errorf("first gap %v want 100", rec.gaps[0])
	}
	// Second gap: service of request 1 ends at 100+pos+1s; the gap
	// runs until t=300.
	svc := p.PositioningTime() + 1.0
	want := 300 - (100 + svc)
	if math.Abs(rec.gaps[1]-want) > 1e-9 {
		t.Errorf("second gap %v want %v", rec.gaps[1], want)
	}
}

type recordingPolicy struct {
	gaps []float64
}

func (r *recordingPolicy) Timeout() float64      { return math.Inf(1) }
func (r *recordingPolicy) ObserveIdle(g float64) { r.gaps = append(r.gaps, g) }

// TestCompetitiveRatioRandomGapsProperty: on random gap sequences the
// break-even policy's total energy stays within 2x the per-gap offline
// optimum.
func TestCompetitiveRatioRandomGapsProperty(t *testing.T) {
	p := disk.DefaultParams()
	be := p.BreakEvenThreshold()
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		var total, opt float64
		for i := 0; i < 50; i++ {
			gap := rng.ExpFloat64() * be * 3
			total += GapEnergy(p, be, gap)
			opt += OptimalGapEnergy(p, gap)
		}
		if total > 2*opt+1e-6 {
			t.Fatalf("trial %d: energy %v exceeds 2x OPT %v", trial, total, opt)
		}
	}
}
