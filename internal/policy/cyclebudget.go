package policy

import (
	"fmt"
	"math"

	"diskpack/internal/disk"
)

// CycleBudget is a cycle-capped spin-down policy: it behaves as a
// fixed threshold T while the disk is inside its start/stop cycle
// budget and refuses to spin down (infinite timeout) once the budget
// is exhausted, trading energy for drive lifetime. The budget refills
// continuously at PerDay cycles per day of observed idle time, with
// one day's worth granted up front.
//
// The policy is self-clocking: it advances time only by the idle gaps
// it observes, which under-counts wall-clock time (busy time is
// invisible) and therefore spends conservatively. A cycle is charged
// when an observed gap exceeds the timeout it was armed with — i.e.
// exactly when the disk actually spun down. Everything is
// deterministic and disk-local, so the policy composes with the
// sharded kernel without any cross-disk coordination.
type CycleBudget struct {
	// T is the threshold used while budget remains, seconds.
	T float64
	// PerDay is the sustained spin-down budget, cycles per day.
	PerDay float64

	elapsed float64 // sum of observed idle gaps — a lower bound on elapsed time
	spent   float64 // cycles charged so far
	armed   float64 // timeout the currently open gap was armed with
}

// NewCycleBudget returns a cycle-capped policy for the given drive:
// threshold base seconds (the drive's break-even time when base is 0)
// and a budget of perDay spin-downs per day.
func NewCycleBudget(p disk.Params, base, perDay float64) *CycleBudget {
	if base <= 0 {
		base = p.BreakEvenThreshold()
	}
	return &CycleBudget{T: base, PerDay: perDay}
}

// allowance is the cycles the policy may have spent by now: one day's
// budget up front plus the continuous refill.
func (c *CycleBudget) allowance() float64 {
	return c.PerDay * (1 + c.elapsed/86400)
}

// Timeout implements disk.SpinPolicy: the base threshold while cycles
// remain, +Inf (never spin down) once the budget is spent.
func (c *CycleBudget) Timeout() float64 {
	if c.spent < c.allowance() {
		c.armed = c.T
	} else {
		c.armed = math.Inf(1)
	}
	return c.armed
}

// ObserveIdle implements disk.SpinPolicy: advances the policy's
// virtual clock and charges one cycle if this gap crossed the armed
// timeout (the disk spun down and had to spin back up).
func (c *CycleBudget) ObserveIdle(gap float64) {
	if gap > c.armed {
		c.spent++
	}
	c.elapsed += gap
}

// Spent returns the cycles charged so far.
func (c *CycleBudget) Spent() float64 { return c.spent }

// String names the policy.
func (c *CycleBudget) String() string {
	return fmt.Sprintf("cyclebudget(%.3gs, %.3g/day)", c.T, c.PerDay)
}
