package mheap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyHeap(t *testing.T) {
	h := New(func(a, b int) bool { return a > b })
	if h.Len() != 0 || !h.Empty() {
		t.Fatalf("new heap not empty: len=%d", h.Len())
	}
	if _, ok := h.Pop(); ok {
		t.Error("Pop on empty heap returned ok=true")
	}
	if _, ok := h.Peek(); ok {
		t.Error("Peek on empty heap returned ok=true")
	}
}

func TestMaxHeapOrder(t *testing.T) {
	h := New(func(a, b int) bool { return a > b })
	in := []int{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	for _, v := range in {
		h.Push(v)
	}
	want := append([]int(nil), in...)
	sort.Sort(sort.Reverse(sort.IntSlice(want)))
	for i, w := range want {
		got, ok := h.Pop()
		if !ok || got != w {
			t.Fatalf("pop %d: got %d ok=%v, want %d", i, got, ok, w)
		}
	}
	if !h.Empty() {
		t.Errorf("heap not empty after draining, len=%d", h.Len())
	}
}

func TestMinHeapOrder(t *testing.T) {
	h := New(func(a, b int) bool { return a < b })
	for _, v := range []int{5, 2, 8, 1, 9, 0} {
		h.Push(v)
	}
	want := []int{0, 1, 2, 5, 8, 9}
	for _, w := range want {
		got, _ := h.Pop()
		if got != w {
			t.Fatalf("got %d want %d", got, w)
		}
	}
}

func TestNewFromSlice(t *testing.T) {
	in := []float64{0.5, 0.1, 0.9, 0.3, 0.7}
	h := NewFromSlice(append([]float64(nil), in...), func(a, b float64) bool { return a > b })
	want := append([]float64(nil), in...)
	sort.Sort(sort.Reverse(sort.Float64Slice(want)))
	for _, w := range want {
		got, _ := h.Pop()
		if got != w {
			t.Fatalf("got %v want %v", got, w)
		}
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	h := New(func(a, b int) bool { return a > b })
	h.Push(1)
	h.Push(7)
	h.Push(3)
	for i := 0; i < 3; i++ {
		v, ok := h.Peek()
		if !ok || v != 7 {
			t.Fatalf("peek %d: got %d ok=%v, want 7", i, v, ok)
		}
	}
	if h.Len() != 3 {
		t.Errorf("peek changed length to %d", h.Len())
	}
}

func TestClear(t *testing.T) {
	h := New(func(a, b int) bool { return a > b })
	for i := 0; i < 10; i++ {
		h.Push(i)
	}
	h.Clear()
	if !h.Empty() {
		t.Fatalf("heap not empty after Clear: %d", h.Len())
	}
	h.Push(42)
	if v, _ := h.Pop(); v != 42 {
		t.Errorf("heap unusable after Clear: got %d", v)
	}
}

func TestInterleavedPushPop(t *testing.T) {
	h := New(func(a, b int) bool { return a > b })
	rng := rand.New(rand.NewSource(7))
	// Reference: a sorted multiset implemented with a slice.
	var ref []int
	for step := 0; step < 5000; step++ {
		if rng.Intn(3) != 0 || len(ref) == 0 {
			v := rng.Intn(1000)
			h.Push(v)
			ref = append(ref, v)
			sort.Sort(sort.Reverse(sort.IntSlice(ref)))
		} else {
			got, ok := h.Pop()
			if !ok {
				t.Fatalf("step %d: heap empty but reference has %d", step, len(ref))
			}
			if got != ref[0] {
				t.Fatalf("step %d: got %d want %d", step, got, ref[0])
			}
			ref = ref[1:]
		}
		if h.Len() != len(ref) {
			t.Fatalf("step %d: len mismatch heap=%d ref=%d", step, h.Len(), len(ref))
		}
	}
}

// Property: for any input slice, draining the heap yields the input
// sorted by descending value.
func TestHeapSortProperty(t *testing.T) {
	prop := func(in []float64) bool {
		h := New(func(a, b float64) bool { return a > b })
		for _, v := range in {
			h.Push(v)
		}
		want := append([]float64(nil), in...)
		sort.Sort(sort.Reverse(sort.Float64Slice(want)))
		for _, w := range want {
			got, ok := h.Pop()
			if !ok || got != w {
				return false
			}
		}
		return h.Empty()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: NewFromSlice and repeated Push produce identical pop
// sequences.
func TestHeapifyEquivalenceProperty(t *testing.T) {
	prop := func(in []int32) bool {
		less := func(a, b int32) bool { return a > b }
		a := NewFromSlice(append([]int32(nil), in...), less)
		b := New(less)
		for _, v := range in {
			b.Push(v)
		}
		for !a.Empty() {
			va, _ := a.Pop()
			vb, ok := b.Pop()
			if !ok || va != vb {
				return false
			}
		}
		return b.Empty()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestKVMaxOrder(t *testing.T) {
	kv := NewMaxKV[float64, string]()
	kv.Push(0.3, "c")
	kv.Push(0.9, "a")
	kv.Push(0.5, "b")
	if kv.Len() != 3 {
		t.Fatalf("len=%d want 3", kv.Len())
	}
	k, v, ok := kv.Peek()
	if !ok || k != 0.9 || v != "a" {
		t.Fatalf("peek got (%v,%q)", k, v)
	}
	wantKeys := []float64{0.9, 0.5, 0.3}
	wantVals := []string{"a", "b", "c"}
	for i := range wantKeys {
		k, v, ok := kv.Pop()
		if !ok || k != wantKeys[i] || v != wantVals[i] {
			t.Fatalf("pop %d: got (%v,%q) want (%v,%q)", i, k, v, wantKeys[i], wantVals[i])
		}
	}
	if _, _, ok := kv.Pop(); ok {
		t.Error("pop on drained KV heap returned ok")
	}
}

func TestKVMinOrder(t *testing.T) {
	kv := NewMinKV[int, int]()
	for _, k := range []int{5, 1, 4, 2, 3} {
		kv.Push(k, k*10)
	}
	for want := 1; want <= 5; want++ {
		k, v, ok := kv.Pop()
		if !ok || k != want || v != want*10 {
			t.Fatalf("got (%d,%d) want (%d,%d)", k, v, want, want*10)
		}
	}
}

func BenchmarkHeapPushPop(b *testing.B) {
	h := New(func(a, b float64) bool { return a > b })
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Push(vals[i%len(vals)])
		if h.Len() > 512 {
			h.Pop()
		}
	}
}
