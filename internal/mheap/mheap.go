// Package mheap provides generic binary heaps used throughout the
// simulator and the Pack_Disks family of packing algorithms.
//
// Two flavours are provided:
//
//   - Heap[T]: a plain binary heap ordered by a user-supplied less
//     function. With a "greater-than" comparison it is the max-heap the
//     paper's Pack_Disks algorithm requires for the size-intensive (S~)
//     and load-intensive (L~) element sets.
//   - KV[K,V]: a convenience keyed heap storing (key, value) pairs
//     ordered by key, matching the paper's usage where heap keys are the
//     derived quantities s~ = s-l and l~ = l-s while values identify the
//     original file.
//
// Construction from an existing slice is O(n) (bottom-up heapify); Push
// and Pop are O(log n), Peek is O(1). The zero value of Heap is not
// usable; use New or NewFromSlice.
package mheap

// Heap is a binary heap ordered by the less function supplied at
// construction: the element x for which less(y, x) holds for every other
// element y is at the top for a max-heap style comparison. Concretely,
// Pop returns the element that is "first" under the ordering where
// less(a, b) means a should be popped after b... To avoid confusion the
// package adopts the container/heap convention: less(a, b) reports
// whether a must be popped before b. For a max-heap over float keys pass
// func(a, b T) bool { return key(a) > key(b) }.
type Heap[T any] struct {
	items []T
	less  func(a, b T) bool
}

// New returns an empty heap using less as the pop-priority predicate:
// less(a, b) reports whether a has higher pop priority than b.
func New[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// NewFromSlice heapifies items in place (the heap takes ownership of the
// slice) in O(n) time.
func NewFromSlice[T any](items []T, less func(a, b T) bool) *Heap[T] {
	h := &Heap[T]{items: items, less: less}
	for i := len(items)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
	return h
}

// Len reports the number of elements currently stored.
func (h *Heap[T]) Len() int { return len(h.items) }

// Empty reports whether the heap holds no elements.
func (h *Heap[T]) Empty() bool { return len(h.items) == 0 }

// Push inserts v in O(log n).
func (h *Heap[T]) Push(v T) {
	h.items = append(h.items, v)
	h.up(len(h.items) - 1)
}

// Peek returns the highest-priority element without removing it. The
// second result is false when the heap is empty.
func (h *Heap[T]) Peek() (T, bool) {
	if len(h.items) == 0 {
		var zero T
		return zero, false
	}
	return h.items[0], true
}

// Pop removes and returns the highest-priority element. The second
// result is false when the heap is empty.
func (h *Heap[T]) Pop() (T, bool) {
	if len(h.items) == 0 {
		var zero T
		return zero, false
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	var zero T
	h.items[last] = zero // release reference for GC
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return top, true
}

// Clear removes all elements, retaining the allocated capacity.
func (h *Heap[T]) Clear() {
	var zero T
	for i := range h.items {
		h.items[i] = zero
	}
	h.items = h.items[:0]
}

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		best := left
		if right := left + 1; right < n && h.less(h.items[right], h.items[left]) {
			best = right
		}
		if !h.less(h.items[best], h.items[i]) {
			return
		}
		h.items[i], h.items[best] = h.items[best], h.items[i]
		i = best
	}
}

// KV is a keyed heap of (key, value) pairs. With Max ordering the pair
// with the largest key pops first; ties break arbitrarily.
type KV[K float64 | int | int64, V any] struct {
	h *Heap[kvPair[K, V]]
}

type kvPair[K float64 | int | int64, V any] struct {
	key K
	val V
}

// NewMaxKV returns an empty max-ordered keyed heap.
func NewMaxKV[K float64 | int | int64, V any]() *KV[K, V] {
	return &KV[K, V]{h: New(func(a, b kvPair[K, V]) bool { return a.key > b.key })}
}

// NewMinKV returns an empty min-ordered keyed heap.
func NewMinKV[K float64 | int | int64, V any]() *KV[K, V] {
	return &KV[K, V]{h: New(func(a, b kvPair[K, V]) bool { return a.key < b.key })}
}

// Len reports the number of stored pairs.
func (kv *KV[K, V]) Len() int { return kv.h.Len() }

// Empty reports whether no pairs are stored.
func (kv *KV[K, V]) Empty() bool { return kv.h.Empty() }

// Push inserts the pair (key, val).
func (kv *KV[K, V]) Push(key K, val V) { kv.h.Push(kvPair[K, V]{key, val}) }

// Pop removes and returns the extremal pair.
func (kv *KV[K, V]) Pop() (key K, val V, ok bool) {
	p, ok := kv.h.Pop()
	return p.key, p.val, ok
}

// Peek returns the extremal pair without removing it.
func (kv *KV[K, V]) Peek() (key K, val V, ok bool) {
	p, ok := kv.h.Peek()
	return p.key, p.val, ok
}
