package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func sampleTrace() *Trace {
	return &Trace{
		Files: []FileInfo{
			{ID: 0, Size: 100, Rate: 0.5},
			{ID: 1, Size: 200, Rate: 0.25},
			{ID: 2, Size: 400, Rate: 0},
		},
		Requests: []Request{
			{Time: 1.0, FileID: 0},
			{Time: 2.0, FileID: 1},
			{Time: 2.0, FileID: 0},
			{Time: 5.5, FileID: 0},
		},
		Duration: 10,
	}
}

func TestValidateAcceptsGoodTrace(t *testing.T) {
	if err := sampleTrace().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadTraces(t *testing.T) {
	cases := map[string]func(*Trace){
		"nondense ids":   func(tr *Trace) { tr.Files[1].ID = 7 },
		"negative size":  func(tr *Trace) { tr.Files[0].Size = -1 },
		"negative rate":  func(tr *Trace) { tr.Files[0].Rate = -1 },
		"nan rate":       func(tr *Trace) { tr.Files[0].Rate = math.NaN() },
		"unknown file":   func(tr *Trace) { tr.Requests[0].FileID = 99 },
		"negative time":  func(tr *Trace) { tr.Requests[0].Time = -1 },
		"unordered":      func(tr *Trace) { tr.Requests[3].Time = 0.5 },
		"short duration": func(tr *Trace) { tr.Duration = 3 },
		"negative duration": func(tr *Trace) {
			tr.Requests = nil
			tr.Duration = -1
		},
	}
	for name, mutate := range cases {
		tr := sampleTrace()
		mutate(tr)
		if tr.Validate() == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestStats(t *testing.T) {
	s := sampleTrace().Stats()
	if s.NumFiles != 3 || s.NumRequests != 4 {
		t.Fatalf("counts: %+v", s)
	}
	if s.DistinctRequested != 2 {
		t.Errorf("distinct=%d want 2", s.DistinctRequested)
	}
	if s.ArrivalRate != 0.4 {
		t.Errorf("rate=%v want 0.4", s.ArrivalRate)
	}
	// Requested sizes: 100,200,100,100 -> mean 125.
	if s.MeanRequestSize != 125 {
		t.Errorf("mean request size=%v want 125", s.MeanRequestSize)
	}
	if s.TotalBytes != 700 {
		t.Errorf("total=%d want 700", s.TotalBytes)
	}
	if math.Abs(s.MeanFileSize-700.0/3) > 1e-9 {
		t.Errorf("mean file size=%v", s.MeanFileSize)
	}
}

func TestEmpiricalRates(t *testing.T) {
	tr := sampleTrace()
	rates := tr.EmpiricalRates()
	want := []float64{0.3, 0.1, 0}
	for i := range want {
		if math.Abs(rates[i]-want[i]) > 1e-12 {
			t.Errorf("rate[%d]=%v want %v", i, rates[i], want[i])
		}
	}
	tr.SetEmpiricalRates()
	if tr.Files[0].Rate != 0.3 {
		t.Errorf("SetEmpiricalRates did not update: %v", tr.Files[0].Rate)
	}
}

func TestEmpiricalRatesZeroDuration(t *testing.T) {
	tr := &Trace{Files: []FileInfo{{ID: 0, Size: 1}}}
	rates := tr.EmpiricalRates()
	if rates[0] != 0 {
		t.Error("zero-duration trace should give zero rates")
	}
}

func TestSizeHistogram(t *testing.T) {
	tr := &Trace{Files: []FileInfo{
		{ID: 0, Size: 10}, {ID: 1, Size: 100}, {ID: 2, Size: 1000},
		{ID: 3, Size: 15}, {ID: 4, Size: 12},
	}}
	h := tr.SizeHistogram(3)
	if h.Count() != 5 {
		t.Fatalf("count=%d want 5", h.Count())
	}
	if h.Bin(0) != 3 { // 10, 12, 15 in lowest decade-ish bin
		t.Errorf("bin0=%d want 3", h.Bin(0))
	}
}

func TestSizeHistogramDegenerate(t *testing.T) {
	// All sizes zero — must not panic.
	tr := &Trace{Files: []FileInfo{{ID: 0, Size: 0}}}
	h := tr.SizeHistogram(4)
	if h.Count() != 1 {
		t.Fatalf("count=%d", h.Count())
	}
	// Single distinct size.
	tr2 := &Trace{Files: []FileInfo{{ID: 0, Size: 5}, {ID: 1, Size: 5}}}
	if h2 := tr2.SizeHistogram(4); h2.Count() != 2 {
		t.Fatalf("count=%d", h2.Count())
	}
}

func TestSizeFrequencyCorrelationSigns(t *testing.T) {
	// Positive association: bigger file requested more.
	pos := &Trace{
		Files: []FileInfo{{ID: 0, Size: 10}, {ID: 1, Size: 100}, {ID: 2, Size: 1000}},
		Requests: []Request{
			{Time: 0, FileID: 0}, {Time: 1, FileID: 1}, {Time: 1.5, FileID: 1},
			{Time: 2, FileID: 2}, {Time: 2.5, FileID: 2}, {Time: 3, FileID: 2},
		},
		Duration: 10,
	}
	if c := pos.SizeFrequencyCorrelation(); c <= 0.5 {
		t.Errorf("positive-assoc correlation=%v want > 0.5", c)
	}
	// Too few points.
	small := &Trace{Files: []FileInfo{{ID: 0, Size: 10}}, Requests: []Request{{Time: 0, FileID: 0}}, Duration: 1}
	if c := small.SizeFrequencyCorrelation(); c != 0 {
		t.Errorf("tiny trace correlation=%v want 0", c)
	}
}

func TestSortRequests(t *testing.T) {
	tr := &Trace{
		Files:    []FileInfo{{ID: 0, Size: 1}},
		Requests: []Request{{Time: 3, FileID: 0}, {Time: 1, FileID: 0}, {Time: 2, FileID: 0}},
		Duration: 5,
	}
	tr.SortRequests()
	for i := 1; i < len(tr.Requests); i++ {
		if tr.Requests[i].Time < tr.Requests[i-1].Time {
			t.Fatal("not sorted")
		}
	}
	if tr.Validate() != nil {
		t.Fatal("sorted trace should validate")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Duration != tr.Duration {
		t.Errorf("duration %v want %v", got.Duration, tr.Duration)
	}
	if len(got.Files) != len(tr.Files) || len(got.Requests) != len(tr.Requests) {
		t.Fatalf("lengths: %d files %d requests", len(got.Files), len(got.Requests))
	}
	for i := range tr.Files {
		if got.Files[i] != tr.Files[i] {
			t.Errorf("file %d: %+v want %+v", i, got.Files[i], tr.Files[i])
		}
	}
	for i := range tr.Requests {
		if got.Requests[i] != tr.Requests[i] {
			t.Errorf("request %d: %+v want %+v", i, got.Requests[i], tr.Requests[i])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not-a-trace",
		"diskpack-trace v1\nduration x\n",
		"diskpack-trace v1\nduration 5\nfiles 2\n100 0.5\n",             // truncated files
		"diskpack-trace v1\nduration 5\nfiles 1\n100 0.5\nrequests 1\n", // truncated requests
		"diskpack-trace v1\nduration 5\nfiles 1\n100 0.5 9\nrequests 0\n",
		"diskpack-trace v1\nduration 5\nfiles 1\nabc 0.5\nrequests 0\n",
		"diskpack-trace v1\nduration 5\nfiles 1\n100 0.5\nrequests 1\n1 7\n", // bad file id
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

// Property: round-tripping preserves any valid trace built from small
// integers.
func TestRoundTripProperty(t *testing.T) {
	prop := func(sizes []uint32, reqRaw []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		tr := &Trace{Duration: 1e6}
		for i, s := range sizes {
			tr.Files = append(tr.Files, FileInfo{ID: i, Size: int64(s), Rate: float64(s%100) / 100})
		}
		for i, r := range reqRaw {
			tr.Requests = append(tr.Requests,
				Request{Time: float64(i), FileID: int(r) % len(sizes)})
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(got.Files) != len(tr.Files) || len(got.Requests) != len(tr.Requests) {
			return false
		}
		for i := range tr.Files {
			if got.Files[i] != tr.Files[i] {
				return false
			}
		}
		for i := range tr.Requests {
			if got.Requests[i] != tr.Requests[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
