// Package trace defines the workload-trace representation shared by the
// workload generators, the storage simulator, and the CLI tools: a file
// population (sizes plus expected access rates) and a time-ordered
// request stream. It also provides the summary statistics and the
// 80-bin log-scale size histogram the paper uses to characterize the
// NERSC log (Section 5.1), and a plain-text codec so traces can be
// generated once and replayed by other tools.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"diskpack/internal/stats"
)

// FileInfo describes one file in the trace's population.
type FileInfo struct {
	ID   int
	Size int64 // bytes
	// Rate is the expected request rate in requests/second, used by
	// the packing algorithms to compute the file's load. It may be an
	// a-priori model value or an empirical estimate (EmpiricalRates).
	Rate float64
}

// Request is one whole-file access arriving at the storage system.
// The paper's evaluation is read-only; Write marks the ingest requests
// of the Section 1 write policy ("write files into an already spinning
// disk if sufficient space is found on it or write it into any other
// disk").
type Request struct {
	Time   float64 // seconds from trace start
	FileID int
	Write  bool
}

// Trace is a file population plus a request stream over a fixed
// duration.
type Trace struct {
	Files    []FileInfo
	Requests []Request
	Duration float64 // seconds; at least the last request time
}

// Validate reports structural problems: out-of-range file IDs,
// decreasing timestamps, negative sizes or duration shorter than the
// request stream.
func (t *Trace) Validate() error {
	for i, f := range t.Files {
		if f.ID != i {
			return fmt.Errorf("trace: file %d has ID %d (IDs must be dense and ordered)", i, f.ID)
		}
		if f.Size < 0 {
			return fmt.Errorf("trace: file %d has negative size %d", i, f.Size)
		}
		if f.Rate < 0 || math.IsNaN(f.Rate) {
			return fmt.Errorf("trace: file %d has invalid rate %v", i, f.Rate)
		}
	}
	last := math.Inf(-1)
	for i, r := range t.Requests {
		if r.FileID < 0 || r.FileID >= len(t.Files) {
			return fmt.Errorf("trace: request %d references unknown file %d", i, r.FileID)
		}
		if r.Time < 0 || math.IsNaN(r.Time) {
			return fmt.Errorf("trace: request %d has invalid time %v", i, r.Time)
		}
		if r.Time < last {
			return fmt.Errorf("trace: request %d out of order (%v after %v)", i, r.Time, last)
		}
		last = r.Time
	}
	if len(t.Requests) > 0 && t.Duration < last {
		return fmt.Errorf("trace: duration %v shorter than last request %v", t.Duration, last)
	}
	if t.Duration < 0 {
		return fmt.Errorf("trace: negative duration %v", t.Duration)
	}
	return nil
}

// Summary aggregates the statistics the paper reports for the NERSC
// log: request count, distinct files touched, arrival rate, mean
// requested size, and total population size.
type Summary struct {
	NumFiles          int
	NumRequests       int
	DistinctRequested int
	Duration          float64
	ArrivalRate       float64 // requests per second
	MeanRequestSize   float64 // bytes, averaged over requests
	MeanFileSize      float64 // bytes, averaged over files
	TotalBytes        int64   // population size
}

// Stats computes the Summary in one pass.
func (t *Trace) Stats() Summary {
	s := Summary{
		NumFiles:    len(t.Files),
		NumRequests: len(t.Requests),
		Duration:    t.Duration,
	}
	seen := make(map[int]struct{}, len(t.Files))
	var reqBytes float64
	for _, r := range t.Requests {
		reqBytes += float64(t.Files[r.FileID].Size)
		seen[r.FileID] = struct{}{}
	}
	s.DistinctRequested = len(seen)
	if t.Duration > 0 {
		s.ArrivalRate = float64(len(t.Requests)) / t.Duration
	}
	if len(t.Requests) > 0 {
		s.MeanRequestSize = reqBytes / float64(len(t.Requests))
	}
	for _, f := range t.Files {
		s.TotalBytes += f.Size
	}
	if len(t.Files) > 0 {
		s.MeanFileSize = float64(s.TotalBytes) / float64(len(t.Files))
	}
	return s
}

// EmpiricalRates returns per-file request rates measured from the
// request stream (count / duration) — the statistics a semi-dynamic
// deployment accumulates between reorganization points (Section 1.1).
func (t *Trace) EmpiricalRates() []float64 {
	rates := make([]float64, len(t.Files))
	if t.Duration <= 0 {
		return rates
	}
	for _, r := range t.Requests {
		rates[r.FileID]++
	}
	for i := range rates {
		rates[i] /= t.Duration
	}
	return rates
}

// SetEmpiricalRates overwrites each FileInfo.Rate with the measured
// value.
func (t *Trace) SetEmpiricalRates() {
	for i, r := range t.EmpiricalRates() {
		t.Files[i].Rate = r
	}
}

// SizeHistogram classifies the file population into bins log-spaced
// size bins (the paper uses 80).
func (t *Trace) SizeHistogram(bins int) *stats.LogHistogram {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, f := range t.Files {
		s := float64(f.Size)
		if s <= 0 {
			continue
		}
		lo = math.Min(lo, s)
		hi = math.Max(hi, s)
	}
	if math.IsInf(lo, 1) { // no positive sizes
		lo, hi = 1, 2
	}
	if hi <= lo {
		hi = lo * 2
	}
	h := stats.NewLogHistogram(lo, hi*(1+1e-12), bins)
	for _, f := range t.Files {
		h.Add(float64(f.Size))
	}
	return h
}

// SizeZipfFit fits log(bin proportion) against log(bin center) over the
// non-empty bins of the size histogram. A Zipf-like size distribution
// shows up as a negative slope with high R² — the paper's criterion for
// "decreases almost linearly in the log-log scale".
func (t *Trace) SizeZipfFit(bins int) stats.LinearFit {
	h := t.SizeHistogram(bins)
	var xs, ys []float64
	for i := 0; i < h.Bins(); i++ {
		if c := h.Bin(i); c > 0 {
			xs = append(xs, math.Log(h.BinCenter(i)))
			ys = append(ys, math.Log(float64(c)/float64(h.Count())))
		}
	}
	return stats.FitLine(xs, ys)
}

// SizeFrequencyCorrelation returns the Pearson correlation between file
// size and empirical access count over files accessed at least once.
// The paper observed no significant relationship in the NERSC log.
func (t *Trace) SizeFrequencyCorrelation() float64 {
	counts := make([]float64, len(t.Files))
	for _, r := range t.Requests {
		counts[r.FileID]++
	}
	var xs, ys []float64
	for i, f := range t.Files {
		if counts[i] > 0 {
			xs = append(xs, float64(f.Size))
			ys = append(ys, counts[i])
		}
	}
	if len(xs) < 2 {
		return 0
	}
	var wx, wy stats.Welford
	for i := range xs {
		wx.Add(xs[i])
		wy.Add(ys[i])
	}
	var cov float64
	for i := range xs {
		cov += (xs[i] - wx.Mean()) * (ys[i] - wy.Mean())
	}
	cov /= float64(len(xs) - 1)
	sd := wx.Std() * wy.Std()
	if sd == 0 {
		return 0
	}
	return cov / sd
}

// SortRequests orders the request stream by time (stable), which the
// simulator requires.
func (t *Trace) SortRequests() {
	sort.SliceStable(t.Requests, func(a, b int) bool {
		return t.Requests[a].Time < t.Requests[b].Time
	})
}

const formatHeader = "diskpack-trace v1"

// Write serializes the trace in the package's plain-text format:
//
//	diskpack-trace v1
//	duration <seconds>
//	files <n>
//	<size> <rate>        (file ID is the line index)
//	requests <m>
//	<time> <fileID> [w]  (trailing "w" marks a write)
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintln(bw, formatHeader)
	fmt.Fprintf(bw, "duration %g\n", t.Duration)
	fmt.Fprintf(bw, "files %d\n", len(t.Files))
	for _, f := range t.Files {
		fmt.Fprintf(bw, "%d %g\n", f.Size, f.Rate)
	}
	fmt.Fprintf(bw, "requests %d\n", len(t.Requests))
	for _, r := range t.Requests {
		if r.Write {
			fmt.Fprintf(bw, "%g %d w\n", r.Time, r.FileID)
		} else {
			fmt.Fprintf(bw, "%g %d\n", r.Time, r.FileID)
		}
	}
	return bw.Flush()
}

// Read parses a trace written by Write and validates it.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	next := func() (string, error) {
		for sc.Scan() {
			line++
			s := strings.TrimSpace(sc.Text())
			if s != "" {
				return s, nil
			}
		}
		if err := sc.Err(); err != nil {
			return "", err
		}
		return "", io.ErrUnexpectedEOF
	}
	hdr, err := next()
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if hdr != formatHeader {
		return nil, fmt.Errorf("trace: bad header %q", hdr)
	}
	t := &Trace{}
	durLine, err := next()
	if err != nil {
		return nil, err
	}
	if _, err := fmt.Sscanf(durLine, "duration %g", &t.Duration); err != nil {
		return nil, fmt.Errorf("trace: line %d: %w", line, err)
	}
	var nFiles int
	fl, err := next()
	if err != nil {
		return nil, err
	}
	if _, err := fmt.Sscanf(fl, "files %d", &nFiles); err != nil {
		return nil, fmt.Errorf("trace: line %d: %w", line, err)
	}
	t.Files = make([]FileInfo, nFiles)
	for i := 0; i < nFiles; i++ {
		s, err := next()
		if err != nil {
			return nil, fmt.Errorf("trace: file %d: %w", i, err)
		}
		fields := strings.Fields(s)
		if len(fields) != 2 {
			return nil, fmt.Errorf("trace: line %d: want 2 fields, got %q", line, s)
		}
		size, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		rate, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		t.Files[i] = FileInfo{ID: i, Size: size, Rate: rate}
	}
	var nReq int
	rl, err := next()
	if err != nil {
		return nil, err
	}
	if _, err := fmt.Sscanf(rl, "requests %d", &nReq); err != nil {
		return nil, fmt.Errorf("trace: line %d: %w", line, err)
	}
	t.Requests = make([]Request, nReq)
	for i := 0; i < nReq; i++ {
		s, err := next()
		if err != nil {
			return nil, fmt.Errorf("trace: request %d: %w", i, err)
		}
		fields := strings.Fields(s)
		if len(fields) != 2 && !(len(fields) == 3 && fields[2] == "w") {
			return nil, fmt.Errorf("trace: line %d: want \"time file [w]\", got %q", line, s)
		}
		tm, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		fid, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		t.Requests[i] = Request{Time: tm, FileID: fid, Write: len(fields) == 3}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
