package control

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"testing"
	"time"

	"diskpack/internal/coord"
	"diskpack/internal/disk"
	"diskpack/internal/farm"
)

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// The PR's acceptance criterion: on the diurnal workload the
// controlled run beats every static threshold on energy while meeting
// the p95 SLO, and the sweep's selector therefore chooses it.
func TestStaticVsControlledWin(t *testing.T) {
	sc, ok := farm.Lookup("static-vs-controlled")
	if !ok || sc.Grid == nil {
		t.Fatal("static-vs-controlled not registered as a grid scenario")
	}
	res, err := farm.RunSweep(*sc.Grid, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	budget := sc.Grid.Select.MaxP95
	controlled := -1
	for i := range res.Points {
		if res.Points[i].Spec.Control != nil {
			controlled = i
		}
	}
	if controlled < 0 {
		t.Fatal("grid has no controlled point")
	}
	cm := res.Points[controlled].Metrics
	if cm.RespP95 > budget {
		t.Fatalf("controlled p95 %.2f over the %g s SLO", cm.RespP95, budget)
	}
	for i := range res.Points {
		if i == controlled {
			continue
		}
		m := res.Points[i].Metrics
		if m.RespP95 <= budget && m.Energy <= cm.Energy {
			t.Errorf("static point %s (%.4e J, p95 %.2f) not beaten by controlled (%.4e J)",
				res.Points[i].Label, m.Energy, m.RespP95, cm.Energy)
		}
	}
	if res.Best != controlled {
		t.Errorf("selector chose %d (%s), want the controlled point %d",
			res.Best, res.Points[res.Best].Label, controlled)
	}
}

// Controlled runs are pure functions of (spec, seed): repeat runs are
// byte-identical, including windows and the action log.
func TestControlledRunDeterminism(t *testing.T) {
	sc, _ := farm.Lookup("controlled-bursty")
	a, err := RunSpec(sc.Spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSpec(sc.Spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, a), mustJSON(t, b)) {
		t.Error("repeat controlled runs differ")
	}
	if len(a.Windows) == 0 {
		t.Error("no telemetry windows")
	}
	// And through the farm.Run hook (what sweeps execute).
	m, err := farm.Run(sc.Spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, a.Metrics), mustJSON(t, m)) {
		t.Error("farm.Run hook result differs from RunSpec metrics")
	}
}

// A tail-budget controller with a cycle budget stops retuning into
// spin-happy thresholds once a group runs ahead of its pro-rated
// cycle allowance: the capped run cycles no more than the uncapped
// one, stays deterministic, and a tight cap bites visibly.
func TestTailBudgetCycleBudget(t *testing.T) {
	sc, _ := farm.Lookup("controlled-bursty")
	free, err := RunSpec(sc.Spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	capped := sc.Spec
	cs := *capped.Control
	cs.CycleBudget = 1
	capped.Control = &cs
	a, err := RunSpec(capped, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics.SpinDowns > free.Metrics.SpinDowns {
		t.Errorf("cycle cap increased spin-downs: %d capped vs %d free",
			a.Metrics.SpinDowns, free.Metrics.SpinDowns)
	}
	if a.Metrics.SpinDowns >= free.Metrics.SpinDowns {
		t.Logf("note: cap did not bite (capped %d, free %d)", a.Metrics.SpinDowns, free.Metrics.SpinDowns)
	}
	b, err := RunSpec(capped, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, a), mustJSON(t, b)) {
		t.Error("repeat cycle-capped controlled runs differ")
	}
}

// controlledGrid is a small controlled sweep: the bursty base crossed
// with a controller axis (open-loop, tail-budget, rate-respec).
func controlledGrid(t *testing.T) farm.Sweep {
	t.Helper()
	sc, ok := farm.Lookup("controlled-bursty")
	if !ok {
		t.Fatal("controlled-bursty not registered")
	}
	ax, err := farm.ParseAxis("control=static,tail-budget,rate-respec")
	if err != nil {
		t.Fatal(err)
	}
	return farm.Sweep{Name: "controlled-grid", Base: sc.Spec, Axes: []farm.Axis{ax}}
}

// A controlled sweep is byte-identical at any worker count and across
// shard → run → merge — the distributed executors inherit controlled
// specs through the farm.Run hook with nothing special to do.
func TestControlledSweepShardMerge(t *testing.T) {
	grid := controlledGrid(t)
	ref, err := farm.RunSweep(grid, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := farm.RunSweep(grid, 9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, ref), mustJSON(t, par)) {
		t.Error("controlled sweep differs across worker counts")
	}
	for _, n := range []int{1, 2, 3} {
		shards, err := farm.Shard(grid, 9, n)
		if err != nil {
			t.Fatalf("shard %d: %v", n, err)
		}
		var results []farm.ShardResult
		for _, m := range shards {
			r, err := farm.RunShard(m, nil, 2)
			if err != nil {
				t.Fatalf("shard %d: %v", m.Index, err)
			}
			results = append(results, *r)
		}
		merged, err := farm.Merge(results)
		if err != nil {
			t.Fatalf("merge %d: %v", n, err)
		}
		if !bytes.Equal(mustJSON(t, ref), mustJSON(t, merged)) {
			t.Errorf("%d-shard merge differs from the single-process run", n)
		}
	}
}

// The same controlled grid drained through a coordinator pool matches
// the in-process run byte for byte.
func TestControlledSweepThroughCoordinator(t *testing.T) {
	grid := controlledGrid(t)
	ref, err := farm.RunSweep(grid, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	runner := coord.PoolRunner(ctx, 2, coord.Config{}, coord.WorkerConfig{Name: "ctl-test"})
	got, err := runner(grid, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, ref), mustJSON(t, got)) {
		t.Error("coordinator-pool controlled sweep differs from RunSweep")
	}
}

// rate-respec must actually re-plan: on the diurnal swing the observed
// rate drifts past the factor, the spec's workload field is rewritten,
// and files migrate — deterministically.
func TestRateRespecReplans(t *testing.T) {
	sc, _ := farm.Lookup("controlled-diurnal")
	spec := sc.Spec
	cfg := *spec.Workload.Synthetic
	cfg.Duration = 86400 // one day is enough to see the swing
	spec.Workload = farm.SyntheticWorkload(cfg)
	spec.Control = &farm.ControlSpec{Controller: KindRateRespec.String(), Epoch: 3600}
	a, err := RunSpec(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	applied := 0
	for _, act := range a.Actions {
		if act.Action.Kind == ActionRespec && act.Applied {
			applied++
			if act.MovedFiles <= 0 {
				t.Errorf("applied respec moved no files: %+v", act)
			}
		}
	}
	if applied == 0 {
		t.Fatalf("no applied respec in %d actions", len(a.Actions))
	}
	if a.Metrics.Sim.MigratedFiles == 0 || a.Metrics.Sim.MigrationEnergy <= 0 {
		t.Errorf("no migration accounted: %+v files, %v J",
			a.Metrics.Sim.MigratedFiles, a.Metrics.Sim.MigrationEnergy)
	}
	b, err := RunSpec(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, a), mustJSON(t, b)) {
		t.Error("repeat rate-respec runs differ")
	}
}

// pickThreshold: long gaps + budget → aggressive; short gaps → above
// the gap mass; long gaps + no budget → above the gaps (stall-free).
func TestTailBudgetPickThreshold(t *testing.T) {
	c := NewTailBudget(15, []disk.Params{disk.DefaultParams()})
	p := disk.DefaultParams()
	nb := len(farm.IdleGapBuckets()) + 1
	hist := func(bucket int, n int64) []int64 {
		h := make([]int64, nb)
		h[bucket] = n
		return h
	}
	// Bucket 8 covers (200,500] s — far beyond break-even 53.3 s.
	if got := c.pickThreshold(p, hist(8, 100), 1000, math.Inf(1)); got > p.BreakEvenThreshold() {
		t.Errorf("long gaps with budget picked %v, want aggressive (<= break-even)", got)
	}
	// Same gaps, no budget left: only stall-free thresholds remain.
	if got := c.pickThreshold(p, hist(8, 100), 0, math.Inf(1)); got <= 350 {
		t.Errorf("long gaps without budget picked %v, want above the gaps", got)
	}
	// Bucket 3 covers (5,10] s — spinning down in those gaps is a pure
	// loss; the pick must exceed them regardless of budget.
	if got := c.pickThreshold(p, hist(3, 100), 1000, math.Inf(1)); got < 10 {
		t.Errorf("short gaps picked %v, want at least 10 (never spin down inside them)", got)
	}
	// Empty histogram: no decision.
	if got := c.pickThreshold(p, make([]int64, nb), 1000, math.Inf(1)); got != 0 {
		t.Errorf("empty histogram picked %v", got)
	}
	// Long gaps, latency budget to spare, but the cycle budget is spent:
	// the pick must rise above the gaps so no further cycles accrue.
	if got := c.pickThreshold(p, hist(8, 100), 1000, 0); got <= 350 {
		t.Errorf("exhausted cycle budget picked %v, want above the gaps", got)
	}
	// A cycle allowance wider than the gap count leaves the aggressive
	// choice standing.
	if got := c.pickThreshold(p, hist(8, 100), 1000, 500); got > p.BreakEvenThreshold() {
		t.Errorf("ample cycle budget picked %v, want aggressive (<= break-even)", got)
	}
}

// A skipped re-plan must not move the controller's planned rate: the
// drift persists, so the next window retries instead of silently
// accepting a mis-provisioned allocation.
func TestRateRespecOutcomeFeedback(t *testing.T) {
	c := &RateRespec{Factor: 1.5, Alpha: 1, planned: 10}
	w := &farm.Window{Start: 0, End: 100}
	w.Total.Arrivals = 100 // 1 req/s — a 10× drop
	acts := c.Observe(w)
	if len(acts) != 1 || acts[0].Kind != ActionRespec {
		t.Fatalf("acts = %+v", acts)
	}
	c.ActionOutcome(acts[0], false) // the actuator skipped it
	w2 := *w
	w2.Start, w2.End = 100, 200
	if retry := c.Observe(&w2); len(retry) != 1 {
		t.Fatalf("skipped respec not retried: %+v", retry)
	}
	c.ActionOutcome(Action{Kind: ActionRespec, Rate: 1}, true)
	if c.planned != 1 {
		t.Errorf("planned = %v after applied respec, want 1", c.planned)
	}
	// Now in sync: no further action.
	w3 := w2
	w3.Start, w3.End = 200, 300
	if again := c.Observe(&w3); len(again) != 0 {
		t.Errorf("in-sync controller still acts: %+v", again)
	}
}

// An explicit initial threshold survives NewTunable exactly, even
// outside the default retuning range (the static comparison points
// depend on it).
func TestActuatorHonorsInitialThreshold(t *testing.T) {
	spec := farm.Spec{
		Name:     "tiny-threshold",
		FarmSize: 3,
		Workload: mustLookup("bursty").Spec.Workload,
		Alloc:    farm.Packed(0.5),
		Spin:     farm.SpinSpec{Kind: farm.SpinTailAware, Threshold: 3},
	}
	checked := false
	_, err := farm.RunStream(spec, 1, 4000, func(w *farm.Window, act *farm.Actuator) error {
		if checked {
			return nil
		}
		checked = true
		if got, ok := act.GroupThreshold(0); !ok || got != 3 {
			t.Errorf("initial threshold %v ok=%v, want exactly 3", got, ok)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !checked {
		t.Fatal("no window observed")
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := New(farm.ControlSpec{Controller: "nope", Epoch: 60}, farm.Spec{}); err == nil {
		t.Error("New accepted an unknown controller")
	}
}

// RunSpec refuses open-loop specs; farm.Run refuses nothing (the hook
// handles controlled specs end to end).
func TestRunSpecGuards(t *testing.T) {
	sc, _ := farm.Lookup("bursty")
	if _, err := RunSpec(sc.Spec, 1); err == nil {
		t.Error("RunSpec accepted a spec without Control")
	}
}
