package control

import (
	"fmt"

	"diskpack/internal/farm"
	"diskpack/internal/obs"
	"diskpack/internal/reorg"
)

// AppliedAction records one controller decision and what became of it.
type AppliedAction struct {
	// Window indexes the telemetry window the decision followed.
	Window int
	// Action is the controller's request.
	Action Action
	// Applied reports whether the actuator accepted it (a re-plan that
	// outgrows the farm, for example, is skipped, not fatal).
	Applied bool
	// Note explains the outcome ("threshold 26.6s", "needs 24 disks,
	// farm has 20").
	Note string
	// Migration accounting of an applied respec.
	MovedFiles int   `json:",omitempty"`
	MovedBytes int64 `json:",omitempty"`
}

// Result is a completed controlled run: the final metrics (exactly
// what farm.Run returns for the controlled spec), the telemetry
// windows the controller saw, and the action log.
type Result struct {
	// Controller names the controller kind that ran.
	Controller string
	// Metrics is the run's unified result.
	Metrics *farm.Metrics
	// Windows are the telemetry snapshots, one per epoch.
	Windows []farm.Window
	// Actions logs every controller decision in order.
	Actions []AppliedAction
}

func init() {
	// Controlled specs reach farm.Run through this hook; registering it
	// here makes them runnable by every executor that funnels through
	// Run — sweeps, shards, the coordinator — the moment this package
	// is linked in.
	farm.RegisterControlRunner(func(spec farm.Spec, seed int64) (*farm.Metrics, error) {
		res, err := RunSpec(spec, seed)
		if err != nil {
			return nil, err
		}
		return res.Metrics, nil
	})
}

// RunSpec executes a controlled spec: the scenario runs once,
// continuously, with the spec's controller observing every epoch
// window and actuating at its boundary. It is a pure function of
// (spec, seed) — the controller is deterministic — so repeated runs
// are byte-identical, which is what lets controlled specs ride the
// sweep, shard, and coordinator machinery unchanged.
func RunSpec(spec farm.Spec, seed int64) (*Result, error) {
	cs := spec.Control
	if cs == nil {
		return nil, fmt.Errorf("control: spec %s has no Control — use farm.Run for open-loop runs", spec.Name)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	ctrl, err := New(*cs, spec)
	if err != nil {
		return nil, err
	}
	inner := spec
	inner.Control = nil
	res := &Result{Controller: cs.Controller}
	m, err := farm.RunStream(inner, seed, cs.Epoch, func(w *farm.Window, act *farm.Actuator) error {
		// Snapshots are double-buffered and reused two windows later;
		// deep-copy what we retain.
		res.Windows = append(res.Windows, *w.Clone())
		if w.Final {
			// Nothing follows the final window; deciding on it would
			// only clutter the action log.
			return nil
		}
		for _, a := range ctrl.Observe(w) {
			applied, err := apply(a, act)
			if err != nil {
				return err
			}
			if oc, ok := ctrl.(OutcomeObserver); ok {
				oc.ActionOutcome(a, applied.Applied)
			}
			applied.Window = w.Index
			res.Actions = append(res.Actions, applied)
			observeAction(w, applied)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Metrics = m
	return res, nil
}

// observeAction publishes one controller decision to the installed
// observability sinks (observation only — the action log itself is
// the source of truth).
func observeAction(w *farm.Window, applied AppliedAction) {
	o := farm.CurrentRunObserver()
	if o == nil {
		return
	}
	if applied.Applied && o.Metrics != nil {
		o.Metrics.Actuations.Inc()
	}
	if o.Trace != nil {
		o.Trace.Emit(obs.TraceEvent{
			Phase: 'i', Track: "control",
			Name: applied.Action.Kind.String(), At: w.End,
			Args: map[string]any{
				"window":  applied.Window,
				"applied": applied.Applied,
				"note":    applied.Note,
			},
		})
	}
}

// apply actuates one controller action. Soft failures — a threshold on
// an untunable group, a re-plan that does not fit the farm — are
// recorded as unapplied; hard errors (a controller handing back a
// malformed reallocation) abort the run.
func apply(a Action, act *farm.Actuator) (AppliedAction, error) {
	out := AppliedAction{Action: a}
	switch a.Kind {
	case ActionSetThreshold:
		t, err := act.SetGroupThreshold(a.Group, a.Threshold)
		if err != nil {
			out.Note = err.Error()
			return out, nil
		}
		out.Applied = true
		out.Note = fmt.Sprintf("threshold %.3gs", t)
		return out, nil
	case ActionRespec:
		if act.Spec().Alloc.Kind == farm.AllocExplicit {
			out.Note = "explicit allocation is pinned; nothing to re-plan"
			return out, nil
		}
		for _, d := range act.Assign() {
			if d < 0 {
				// The write policy owns unplaced files; a re-plan that
				// covered them would place data that does not exist yet.
				out.Note = "live map has unplaced files; re-plan skipped"
				return out, nil
			}
		}
		prior, err := farm.WorkloadRate(act.Spec())
		if err != nil {
			out.Note = err.Error()
			return out, nil
		}
		if err := act.SetWorkloadRate(a.Rate); err != nil {
			out.Note = err.Error()
			return out, nil
		}
		plan, err := farm.Plan(act.Spec(), act.Seed())
		if err != nil {
			return out, fmt.Errorf("control: re-planning at rate %.4g: %w", a.Rate, err)
		}
		if plan.DisksUsed > act.FarmSize() {
			// Skipped, so the live spec must keep reporting the rate the
			// standing allocation was actually planned at.
			if err := act.SetWorkloadRate(prior); err != nil {
				return out, err
			}
			out.Note = fmt.Sprintf("plan at rate %.4g needs %d disks, farm has %d", a.Rate, plan.DisksUsed, act.FarmSize())
			return out, nil
		}
		// Relabel the fresh packing against the live one so only
		// genuinely re-placed files migrate.
		next := reorg.RelabelForOverlap(act.Assign(), plan.Assign, act.Files(), act.FarmSize())
		moved, bytes, err := act.Realloc(next)
		if err != nil {
			return out, fmt.Errorf("control: reallocating at rate %.4g: %w", a.Rate, err)
		}
		out.Applied = true
		out.MovedFiles = moved
		out.MovedBytes = bytes
		out.Note = fmt.Sprintf("replanned at %.4g req/s onto %d disks, moved %d files", a.Rate, plan.DisksUsed, moved)
		return out, nil
	default:
		return out, fmt.Errorf("control: unknown action kind %d", int(a.Kind))
	}
}
