package control

import (
	"fmt"

	"diskpack/internal/farm"
)

// The controlled scenario catalogue. Registered here rather than in
// farm because only a build that links this package can execute them;
// farm's own catalogue stays runnable without the control plane.

// withControl returns the base scenario's spec rewired for closed-loop
// running: a tunable spin policy plus the control spec.
func withControl(base farm.Spec, name string, cs farm.ControlSpec) farm.Spec {
	spec := base
	spec.Name = name
	spec.Spin = farm.SpinSpec{Kind: farm.SpinTailAware}
	spec.Control = &cs
	return spec
}

// mustLookup fetches a farm catalogue entry registered by the farm
// package's own init (which, as our dependency, always runs first).
func mustLookup(name string) farm.Scenario {
	sc, ok := farm.Lookup(name)
	if !ok {
		panic(fmt.Sprintf("control: base scenario %q not registered", name))
	}
	return sc
}

// StaticVsControlledThresholds is the static grid the comparison
// scenario pits the controller against — the CLI-visible record of
// which thresholds "every static threshold" means.
var StaticVsControlledThresholds = []float64{10, 30, 60, 120, 300, 900, 1800, 3600}

// heavyDiurnal is the diurnal catalogue scenario loaded to where the
// trade-off bites: 2 req/s mean (2.2× that at the afternoon peak) over
// four days, packed at L=0.03 so the load spreads across enough
// spindles to absorb the peak — and so that each disk's arrival stream
// swings from seconds-long gaps by day to minutes-long gaps by night,
// exactly the regime where any one static threshold is wrong half the
// day.
func heavyDiurnal() farm.Spec {
	base := mustLookup("diurnal").Spec
	cfg := *base.Workload.Synthetic
	cfg.ArrivalRate = 2
	// Four days: the tail-budget controller is anytime-safe, so it
	// spends nothing on the first night (no completions banked yet) and
	// earns its keep from the second night on; a multi-day horizon is
	// the regime the comparison is about.
	cfg.Duration = 4 * 86400
	base.Workload = farm.SyntheticWorkload(cfg)
	base.Alloc = farm.Packed(0.03)
	base.FarmSize = 0 // size the farm to the packing; every disk is real
	return base
}

func init() {
	bursty := mustLookup("bursty").Spec

	farm.Register(farm.Scenario{
		Name: "controlled-diurnal",
		Doc:  "Heavy diurnal load under the tail-budget controller: thresholds retuned each half-hour window against a 15 s p95 budget",
		Spec: withControl(heavyDiurnal(), "controlled-diurnal", farm.ControlSpec{
			Controller: KindTailBudget.String(),
			Epoch:      1800,
			BudgetP95:  15,
		}),
	})
	farm.Register(farm.Scenario{
		Name: "controlled-bursty",
		Doc:  "ON/OFF arrivals under the tail-budget controller: 5 min windows against a 30 s p95 budget",
		// A 15 s budget is unreachable here — in-burst queueing alone
		// puts p95 near 20 s, and the controller would sacrifice all its
		// savings chasing it; 30 s leaves a real allowance to spend on
		// sleeping through the OFF periods.
		Spec: withControl(bursty, "controlled-bursty", farm.ControlSpec{
			Controller: KindTailBudget.String(),
			Epoch:      300,
			BudgetP95:  30,
		}),
	})

	// static-vs-controlled: every static threshold and the controlled
	// run, one grid, one seed (so every point replays the same trace),
	// selected by min energy under the controller's own budget. The
	// demonstration is the selector choosing the controlled point.
	cs := farm.ControlSpec{Controller: KindTailBudget.String(), Epoch: 1800, BudgetP95: 15}
	labels := make([]string, 0, len(StaticVsControlledThresholds)+1)
	for _, t := range StaticVsControlledThresholds {
		labels = append(labels, fmt.Sprintf("static t=%gs", t))
	}
	labels = append(labels, "controlled "+cs.Controller)
	base := heavyDiurnal()
	base.Name = "static-vs-controlled"
	farm.Register(farm.Scenario{
		Name: "static-vs-controlled",
		Doc:  "Static threshold grid vs the tail-budget controller on the heavy diurnal workload, cheapest point under the 15 s p95 SLO wins",
		Spec: base,
		Grid: &farm.Sweep{
			Name: "static-vs-controlled",
			Base: base,
			Axes: []farm.Axis{{
				Name:   "policy",
				Kind:   farm.AxisCustom,
				Labels: labels,
				Apply: func(spec *farm.Spec, i int, _ []int) error {
					if i < len(StaticVsControlledThresholds) {
						spec.Spin = farm.FixedSpin(StaticVsControlledThresholds[i])
						spec.Control = nil
						return nil
					}
					spec.Spin = farm.SpinSpec{Kind: farm.SpinTailAware}
					c := cs
					spec.Control = &c
					return nil
				},
			}},
			Select: farm.Selector{Kind: farm.SelectMinEnergySLO, MaxP95: cs.BudgetP95},
		},
	})
}
