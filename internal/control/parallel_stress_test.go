// Parallel stress suite: the targeted race/stress test for the
// group-sharded kernel. Many tiny windows on a multi-group farm with a
// controller actuating at every single boundary maximizes
// barrier-crossing traffic — threshold writes into shared
// policy.Tunable knobs, reallocations rewriting the placement map,
// accumulator resets — which is exactly where a missing
// happens-before edge would surface. CI's race job runs the whole
// tree with -race, so this file is covered there automatically; the
// byte-identity assertions double as the correctness check at full
// parallelism.
package control

import (
	"bytes"
	"runtime"
	"testing"

	"diskpack/internal/disk"
	"diskpack/internal/farm"
	"diskpack/internal/workload"
)

// stressSpec is a four-group heterogeneous farm under heavy load: the
// group count guarantees a genuine multi-shard layout (the shard unit
// is the telemetry group), and the 50 s epoch over a 4000 s horizon
// gives the controller 80 actuation boundaries.
func stressSpec(controller string, epoch float64) farm.Spec {
	cfg := workload.DefaultSynthetic(6, 0)
	cfg.NumFiles = 400
	cfg.MinSize = 4 * disk.MB
	cfg.MaxSize = 64 * disk.MB
	spec := farm.Spec{
		Name: "parallel-stress-" + controller,
		Groups: []farm.DiskGroup{
			{Count: 3, Params: disk.DefaultParams()},
			{Count: 3, Params: disk.EcoParams()},
			{Count: 3, Params: disk.DefaultParams()},
			{Count: 3, Params: disk.EcoParams()},
		},
		Workload: farm.SyntheticWorkload(cfg),
		Alloc:    farm.Packed(0.7),
		Spin:     farm.SpinSpec{Kind: farm.SpinTailAware},
		Control: &farm.ControlSpec{
			Controller: controller,
			Epoch:      epoch,
			BudgetP95:  15,
			// Rate-respec knobs (ignored by tail-budget): a hair-trigger
			// respec factor so re-plans — and the cross-shard migrations
			// they actuate — fire repeatedly.
			RespecFactor: 1.05,
			Alpha:        0.5,
		},
	}
	return spec
}

// stressWorkerCounts always includes a genuinely parallel shape even
// on a single-core machine (goroutines still interleave, and the race
// detector still watches them), plus NumCPU per the property's
// statement.
func stressWorkerCounts() []int {
	counts := []int{4}
	if n := runtime.NumCPU(); n != 4 && n != 1 {
		counts = append(counts, n)
	}
	return counts
}

func runStress(t *testing.T, spec farm.Spec, workers int) (*Result, []byte) {
	t.Helper()
	prev := farm.SetSimWorkers(workers)
	defer farm.SetSimWorkers(prev)
	res, err := RunSpec(spec, 7)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return res, mustJSON(t, res)
}

// Tail-budget at every boundary: per-group threshold writes cross the
// barrier into the shards' policy objects 80 times per run.
func TestParallelStressTailBudget(t *testing.T) {
	spec := stressSpec(KindTailBudget.String(), 50)
	res, ref := runStress(t, spec, 1)
	if len(res.Windows) < 60 {
		t.Fatalf("only %d windows — stress premise (tiny epochs, many boundaries) broken", len(res.Windows))
	}
	if len(res.Actions) == 0 {
		t.Fatal("controller never actuated — stress premise broken")
	}
	for _, workers := range stressWorkerCounts() {
		if _, got := runStress(t, spec, workers); !bytes.Equal(ref, got) {
			t.Errorf("workers=%d: controlled metrics diverge from sequential\nseq: %s\npar: %s",
				workers, ref, got)
		}
	}
}

// Rate-respec at every boundary: re-plans rewrite the placement map,
// migrating files across groups — and therefore across shards, forcing
// the arrival-chain rescan path under full parallelism.
func TestParallelStressRateRespec(t *testing.T) {
	spec := stressSpec(KindRateRespec.String(), 50)
	res, ref := runStress(t, spec, 1)
	if res.Metrics.Sim.MigratedFiles == 0 {
		t.Fatal("rate-respec never migrated — the cross-shard rescan path is unexercised")
	}
	for _, workers := range stressWorkerCounts() {
		if _, got := runStress(t, spec, workers); !bytes.Equal(ref, got) {
			t.Errorf("workers=%d: controlled metrics diverge from sequential\nseq: %s\npar: %s",
				workers, ref, got)
		}
	}
}
