// Package control is the decide half of the online control plane: it
// closes the observe→decide→actuate loop inside a running simulation.
// The paper evaluates its power/response trade-off offline — sweep a
// static spin-down threshold, pick the point whose p95 stays under the
// SLO — which is the wrong answer half the day under drifting load.
// Controllers here consume the windowed telemetry farm.RunStream emits
// and actuate at epoch boundaries:
//
//   - TailBudget (after TimeTrader, arXiv:1503.05338) retunes each
//     disk group's spin-down threshold against the remaining p95
//     budget: windows that breach the budget buy latency back by
//     spinning down later; windows with slack spend it on energy by
//     spinning down sooner.
//   - RateRespec (after online adaptive storage management,
//     arXiv:1703.02591) tracks the observed arrival rate with an EWMA
//     and, when it drifts from the rate the live allocation was
//     planned for, rewrites the workload field of the live spec,
//     re-plans the packing at the observed rate, and migrates the
//     difference — consolidating onto fewer spindles when load falls,
//     spreading out before the tail degrades when it rises.
//
// Controllers are deterministic functions of the windows they observe,
// so a controlled run stays a pure function of (spec, seed,
// controller): byte-identical across repeats, worker counts, shards,
// and coordinator pools. The package registers itself as farm's
// control runner at init, which makes controlled specs (farm.Spec
// with Control set) first-class citizens of every executor — Run,
// sweeps, shards, and the work-stealing coordinator.
package control

import (
	"fmt"
	"math"

	"diskpack/internal/disk"
	"diskpack/internal/farm"
	"diskpack/internal/policy"
)

// Kind enumerates the built-in controllers.
type Kind int

const (
	// KindTailBudget retunes spin thresholds against the p95 budget.
	KindTailBudget Kind = iota
	// KindRateRespec re-plans the allocation against the observed rate.
	KindRateRespec
)

var kindNames = map[Kind]string{
	KindTailBudget: "tail-budget",
	KindRateRespec: "rate-respec",
}

// String names the kind — the vocabulary of farm.ControlSpec.Controller
// and the -control flag.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("ControllerKind(%d)", int(k))
}

// Kinds lists the controller vocabulary in a stable order.
func Kinds() []Kind { return []Kind{KindTailBudget, KindRateRespec} }

// ParseKind resolves a controller name.
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("control: unknown controller %q (have tail-budget, rate-respec)", s)
}

// ActionKind enumerates what a controller can ask the actuator to do.
type ActionKind int

const (
	// ActionSetThreshold retunes one group's spin-down threshold.
	ActionSetThreshold ActionKind = iota
	// ActionRespec rewrites the live spec's workload rate and re-plans
	// the allocation against it, migrating the difference.
	ActionRespec
)

// String names the action kind.
func (k ActionKind) String() string {
	switch k {
	case ActionSetThreshold:
		return "set-threshold"
	case ActionRespec:
		return "respec"
	default:
		return fmt.Sprintf("ActionKind(%d)", int(k))
	}
}

// Action is one actuation a controller requests at an epoch boundary.
type Action struct {
	Kind ActionKind
	// Group targets one disk group (ActionSetThreshold).
	Group int `json:",omitempty"`
	// Threshold is the new spin-down threshold in seconds
	// (ActionSetThreshold; the actuator clamps it).
	Threshold float64 `json:",omitempty"`
	// Rate is the newly planned workload rate in requests per second
	// (ActionRespec).
	Rate float64 `json:",omitempty"`
}

// Controller observes one closed telemetry window and returns the
// actions to apply at its boundary. Implementations must be
// deterministic functions of the windows observed so far — no clocks,
// no unseeded randomness — or controlled runs lose their byte-identity
// guarantee.
type Controller interface {
	Observe(w *farm.Window) []Action
}

// OutcomeObserver is optionally implemented by controllers whose state
// depends on whether an action actually landed — the executor reports
// every action's fate right after actuating it. RateRespec needs this:
// committing the new planned rate on a re-plan the actuator skipped
// (say, one that outgrew the farm) would silently desync the
// controller from the live allocation and suppress every retry.
type OutcomeObserver interface {
	ActionOutcome(a Action, applied bool)
}

// Defaults for zero ControlSpec knobs.
const (
	// DefaultEpoch is the telemetry window length the CLI falls back to
	// when -control is given without -epoch.
	DefaultEpoch = 1800.0
	// DefaultBudgetP95 is the tail budget when the spec leaves it zero:
	// one spin-up (15 s on the Table 2 drive) plus modest queueing fits
	// under it, so night-time spin-downs are affordable while day-time
	// queue pileups behind a spin-up breach it.
	DefaultBudgetP95 = 20.0
	// DefaultRespecFactor is the observed/planned rate ratio that
	// triggers a re-plan.
	DefaultRespecFactor = 1.5
	// DefaultAlpha is the rate EWMA weight.
	DefaultAlpha = 0.3
)

// New builds the controller a control spec names, resolving defaults.
// spec is the full scenario the run starts from (rate-respec reads its
// planned workload rate).
func New(cs farm.ControlSpec, spec farm.Spec) (Controller, error) {
	kind, err := ParseKind(cs.Controller)
	if err != nil {
		return nil, err
	}
	switch kind {
	case KindTailBudget:
		budget := cs.BudgetP95
		if budget == 0 {
			budget = DefaultBudgetP95
		}
		tb := NewTailBudget(budget, farm.GroupParams(spec))
		tb.CycleBudget = cs.CycleBudget
		return tb, nil
	case KindRateRespec:
		planned, err := farm.WorkloadRate(spec)
		if err != nil {
			return nil, fmt.Errorf("control: rate-respec: %w", err)
		}
		factor := cs.RespecFactor
		if factor == 0 {
			factor = DefaultRespecFactor
		}
		alpha := cs.Alpha
		if alpha == 0 {
			alpha = DefaultAlpha
		}
		return &RateRespec{Factor: factor, Alpha: alpha, planned: planned}, nil
	default:
		return nil, fmt.Errorf("control: kind %v has no constructor", kind)
	}
}

// TailBudget manages each disk group's spin-down threshold against the
// remaining p95 budget, in TimeTrader's currency: a p95 SLO of B
// seconds is an allowance — up to 5% of completions may run over B —
// and every spin-up stall spends from it. Each window, per group, the
// controller solves the ski-rental problem against the observed
// idle-gap histogram: every candidate threshold is scored with the
// analytic per-gap energy model (policy.GapEnergy) summed over the
// histogram, and the cheapest candidate whose predicted stalls (gaps
// it would sleep through) fit the remaining allowance wins. By night
// the histogram is all long gaps, aggressive thresholds score cheapest,
// and the rare stalled request is latency nobody was owed; by day the
// histogram mass sits below break-even, where spin cycles cost more
// than idling, so the chosen threshold rises above the gaps on energy
// grounds alone — and if the budget ever runs dry, only stall-free
// candidates remain eligible. The knob clamps to [break-even/8,
// 64×break-even] (policy.Tunable), so the controller cannot leave the
// sane range.
type TailBudget struct {
	// Budget is the p95 response-time budget in seconds. Spending is
	// counted from the response histogram, so the effective budget is
	// the first RespBuckets bound >= Budget; pick a bound (15, 20,
	// 30...) to make them equal.
	Budget float64
	// TailFrac is the allowed over-budget fraction (0.05 for a p95
	// SLO).
	TailFrac float64
	// SpendTarget is how much of the allowance the controller dares to
	// spend (< 1, the safety margin under the SLO).
	SpendTarget float64
	// CycleBudget, when positive, adds the reliability constraint of
	// farm.ControlSpec.CycleBudget: start/stop cycles per disk-day. The
	// controller tracks each group's cumulative spin-downs and, once a
	// group runs ahead of its pro-rated allowance, only candidates that
	// sleep through no observed gaps (and so cycle no further) remain
	// eligible — the same wear arithmetic policy.CycleBudget enforces
	// per disk, applied here at the group level from telemetry alone,
	// keeping controlled runs deterministic.
	CycleBudget float64

	params    []disk.Params // per group drive model
	completed []int64       // per group, cumulative
	over      []int64       // per group, cumulative completions over Budget
	spins     []int64       // per group, cumulative spin-downs
}

// NewTailBudget returns the controller at its defaults: p95 semantics,
// spending up to 80% of the allowance. params is the per-group drive
// model (farm.GroupParams derives it from a spec).
func NewTailBudget(budget float64, params []disk.Params) *TailBudget {
	return &TailBudget{Budget: budget, TailFrac: 0.05, SpendTarget: 0.8, params: params}
}

// overBudget counts the histogram's completions over the budget: the
// buckets whose lower edge is at or above the first bound >= Budget.
func (c *TailBudget) overBudget(hist []int64) int64 {
	bounds := farm.RespBuckets()
	first := len(bounds) // overflow bucket only, if Budget > every bound
	for i, b := range bounds {
		if b >= c.Budget {
			first = i + 1 // responses > bounds[i] live in buckets i+1...
			break
		}
	}
	var n int64
	for i := first; i < len(hist); i++ {
		n += hist[i]
	}
	return n
}

// gapMids returns a representative gap length per histogram bucket:
// the midpoint, with twice the last bound standing in for the
// unbounded overflow bucket.
func gapMids() []float64 {
	bounds := farm.IdleGapBuckets()
	mids := make([]float64, len(bounds)+1)
	lo := 0.0
	for i, hi := range bounds {
		mids[i] = (lo + hi) / 2
		lo = hi
	}
	mids[len(bounds)] = 2 * bounds[len(bounds)-1]
	return mids
}

// pickThreshold scores every candidate threshold against the window's
// idle-gap histogram — modeled energy to serve those gaps, and how
// many would end in a stall — and returns the cheapest candidate whose
// stalls fit the remaining tail allowance and whose spin cycles fit
// the remaining cycle allowance (every slept-through gap is one
// start/stop cycle), or 0 when the histogram is empty (no gaps
// closed, nothing learned).
func (c *TailBudget) pickThreshold(p disk.Params, gaps []int64, remaining, cycleRemaining float64) float64 {
	mids := gapMids()
	var total int64
	for _, n := range gaps {
		total += n
	}
	if total == 0 {
		return 0
	}
	// Candidates: the histogram bounds themselves plus the drive's
	// break-even time (the paper's static choice must always be in the
	// running).
	candidates := append(append([]float64(nil), farm.IdleGapBuckets()...), p.BreakEvenThreshold())
	best, bestEnergy := 0.0, math.Inf(1)
	for _, t := range candidates {
		var energy float64
		var stalls int64
		for b, n := range gaps {
			if n == 0 {
				continue
			}
			energy += float64(n) * policy.GapEnergy(p, t, mids[b])
			if mids[b] > t {
				stalls += n
			}
		}
		if float64(stalls) > remaining && stalls > 0 {
			continue
		}
		if float64(stalls) > cycleRemaining && stalls > 0 {
			continue
		}
		if energy < bestEnergy {
			best, bestEnergy = t, energy
		}
	}
	if math.IsInf(bestEnergy, 1) {
		// Even stall-free candidates were excluded (cannot happen with
		// a finite histogram, but be safe): never spin down.
		return math.MaxFloat64
	}
	return best
}

// Observe implements Controller.
func (c *TailBudget) Observe(w *farm.Window) []Action {
	if c.completed == nil {
		c.completed = make([]int64, len(w.Groups))
		c.over = make([]int64, len(w.Groups))
		c.spins = make([]int64, len(w.Groups))
	}
	var acts []Action
	for _, g := range w.Groups {
		c.completed[g.Group] += g.Completed
		c.over[g.Group] += c.overBudget(g.RespHist)
		c.spins[g.Group] += int64(g.SpinDowns)
		if g.Threshold <= 0 {
			continue // group is not tunable
		}
		p := disk.DefaultParams()
		if g.Group < len(c.params) {
			p = c.params[g.Group]
		}
		remaining := c.SpendTarget*c.TailFrac*float64(c.completed[g.Group]) - float64(c.over[g.Group])
		cycleRemaining := math.Inf(1)
		if c.CycleBudget > 0 {
			allowance := c.CycleBudget * (w.End / 86400) * float64(g.Disks)
			cycleRemaining = allowance - float64(c.spins[g.Group])
		}
		t := c.pickThreshold(p, g.IdleGaps, remaining, cycleRemaining)
		if t <= 0 {
			continue
		}
		acts = append(acts, Action{Kind: ActionSetThreshold, Group: g.Group, Threshold: t})
	}
	return acts
}

// RateRespec folds observed load back into the live spec: an EWMA of
// the per-window arrival rate, and a re-plan (repack at the observed
// rate, migrate the difference) whenever the EWMA drifts from the rate
// the current allocation was planned for by more than Factor in either
// direction. Falling load consolidates files onto fewer spindles so
// the rest sleep; rising load spreads them out before queues build.
type RateRespec struct {
	// Factor is the drift ratio (> 1) that triggers a re-plan.
	Factor float64
	// Alpha is the EWMA weight of the newest window.
	Alpha float64

	planned float64 // rate the live allocation was planned for
	ewma    float64
	primed  bool
}

// Observe implements Controller.
func (c *RateRespec) Observe(w *farm.Window) []Action {
	dur := w.End - w.Start
	if dur <= 0 {
		return nil
	}
	obs := float64(w.Total.Arrivals) / dur
	if !c.primed {
		c.ewma = obs
		c.primed = true
	} else {
		c.ewma = c.Alpha*obs + (1-c.Alpha)*c.ewma
	}
	if c.planned <= 0 {
		return nil
	}
	// A planned rate of zero would divide away; the EWMA is floored at
	// a hundredth of the planned rate so dead-quiet stretches still
	// compare meaningfully.
	target := math.Max(c.ewma, c.planned/100)
	ratio := target / c.planned
	if ratio < c.Factor && ratio > 1/c.Factor {
		return nil
	}
	// planned moves only on ActionOutcome: a skipped re-plan leaves the
	// allocation where it was, so the drift persists and the next
	// window retries.
	return []Action{{Kind: ActionRespec, Rate: target}}
}

// ActionOutcome implements OutcomeObserver: the planned rate tracks
// the allocation that actually exists.
func (c *RateRespec) ActionOutcome(a Action, applied bool) {
	if a.Kind == ActionRespec && applied {
		c.planned = a.Rate
	}
}
