package model

import (
	"math"
	"math/rand"
	"testing"

	"diskpack/internal/disk"
	"diskpack/internal/storage"
	"diskpack/internal/trace"
)

func TestUtilizationAndPK(t *testing.T) {
	// M/M/1-like check: exponential service has ES2 = 2·ES².
	d := DiskLoad{Lambda: 0.5, ES: 1.0, ES2: 2.0}
	if got := d.Utilization(); got != 0.5 {
		t.Fatalf("rho=%v", got)
	}
	// M/M/1: W = rho/(mu-lambda)·... mean wait = rho·ES/(1-rho) = 1.
	if got := d.MeanWait(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("W=%v want 1 (M/M/1)", got)
	}
	if got := d.MeanResponse(); math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("T=%v want 2", got)
	}
}

func TestDeterministicServicePK(t *testing.T) {
	// M/D/1: ES2 = ES², W = rho·ES/(2(1-rho)) — half the M/M/1 wait.
	d := DiskLoad{Lambda: 0.5, ES: 1.0, ES2: 1.0}
	if got := d.MeanWait(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("W=%v want 0.5 (M/D/1)", got)
	}
}

func TestOverloadedQueueInfiniteWait(t *testing.T) {
	d := DiskLoad{Lambda: 2, ES: 1, ES2: 1}
	if !math.IsInf(d.MeanWait(), 1) {
		t.Fatal("rho>1 should predict infinite wait")
	}
}

func TestAnalyzeAssignment(t *testing.T) {
	p := disk.DefaultParams()
	files := []trace.FileInfo{
		{ID: 0, Size: 72 * disk.MB, Rate: 0.1},   // 1 s service
		{ID: 1, Size: 720 * disk.MB, Rate: 0.01}, // 10 s service
		{ID: 2, Size: 72 * disk.MB, Rate: 0.2},
	}
	loads, err := AnalyzeAssignment(files, []int{0, 0, 1}, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loads[0].Lambda-0.11) > 1e-12 {
		t.Errorf("disk0 lambda=%v want 0.11", loads[0].Lambda)
	}
	s1 := p.ServiceTime(72 * disk.MB)
	s10 := p.ServiceTime(720 * disk.MB)
	wantES := (0.1*s1 + 0.01*s10) / 0.11
	if math.Abs(loads[0].ES-wantES) > 1e-12 {
		t.Errorf("disk0 ES=%v want %v", loads[0].ES, wantES)
	}
	wantES2 := (0.1*s1*s1 + 0.01*s10*s10) / 0.11
	if math.Abs(loads[0].ES2-wantES2) > 1e-12 {
		t.Errorf("disk0 ES2=%v want %v", loads[0].ES2, wantES2)
	}
	if loads[1].Lambda != 0.2 {
		t.Errorf("disk1 lambda=%v", loads[1].Lambda)
	}
}

func TestAnalyzeAssignmentErrors(t *testing.T) {
	p := disk.DefaultParams()
	files := []trace.FileInfo{{ID: 0, Size: 1, Rate: 1}}
	if _, err := AnalyzeAssignment(files, []int{0, 1}, 2, p); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := AnalyzeAssignment(files, []int{5}, 2, p); err == nil {
		t.Error("out-of-range disk accepted")
	}
}

// buildMG1Trace makes a Poisson single-disk workload from a small file
// population with distinct sizes.
func buildMG1Trace(rate float64, duration float64, seed int64) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	files := []trace.FileInfo{
		{ID: 0, Size: 72 * disk.MB, Rate: rate / 2},
		{ID: 1, Size: 288 * disk.MB, Rate: rate / 4},
		{ID: 2, Size: 720 * disk.MB, Rate: rate / 4},
	}
	tr := &trace.Trace{Files: files, Duration: duration}
	t := 0.0
	for {
		t += rng.ExpFloat64() / rate
		if t >= duration {
			break
		}
		u := rng.Float64()
		fid := 0
		if u >= 0.5 && u < 0.75 {
			fid = 1
		} else if u >= 0.75 {
			fid = 2
		}
		tr.Requests = append(tr.Requests, trace.Request{Time: t, FileID: fid})
	}
	return tr
}

// TestPKMatchesSimulator validates the Pollaczek–Khinchine prediction
// against the discrete-event simulator on a single always-on disk at
// moderate utilization.
func TestPKMatchesSimulator(t *testing.T) {
	p := disk.DefaultParams()
	// Mean service: 0.5*1.01 + 0.25*4.01 + 0.25*10.01 ≈ 4.02 s.
	// Pick rate for rho ≈ 0.6.
	s0 := p.ServiceTime(72 * disk.MB)
	s1 := p.ServiceTime(288 * disk.MB)
	s2 := p.ServiceTime(720 * disk.MB)
	es := 0.5*s0 + 0.25*s1 + 0.25*s2
	es2 := 0.5*s0*s0 + 0.25*s1*s1 + 0.25*s2*s2
	rate := 0.6 / es
	tr := buildMG1Trace(rate, 400000, 9)

	res, err := storage.Run(tr, []int{0, 0, 0}, storage.Config{
		NumDisks:      1,
		IdleThreshold: disk.NeverSpinDown,
	})
	if err != nil {
		t.Fatal(err)
	}
	pred := DiskLoad{Lambda: rate, ES: es, ES2: es2}.MeanResponse()
	rel := math.Abs(res.RespMean-pred) / pred
	if rel > 0.08 {
		t.Fatalf("P-K prediction %v vs simulated %v (%.1f%% off)", pred, res.RespMean, rel*100)
	}
}

// TestPredictFarmPowerMatchesSimulatorNoSpin: with spin-down disabled
// the power model reduces to idle+service power, which the simulator
// measures exactly.
func TestPredictFarmPowerMatchesSimulatorNoSpin(t *testing.T) {
	p := disk.DefaultParams()
	rate := 0.05
	tr := buildMG1Trace(rate, 200000, 10)
	res, err := storage.Run(tr, []int{0, 0, 0}, storage.Config{
		NumDisks:      1,
		IdleThreshold: disk.NeverSpinDown,
	})
	if err != nil {
		t.Fatal(err)
	}
	loads, err := AnalyzeAssignment(tr.Files, []int{0, 0, 0}, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	pred := PredictFarm(loads, p, math.Inf(1))
	rel := math.Abs(pred.AvgPower-res.AvgPower) / res.AvgPower
	if rel > 0.05 {
		t.Fatalf("predicted power %v vs simulated %v (%.1f%% off)", pred.AvgPower, res.AvgPower, rel*100)
	}
	if pred.SpinUpRate != 0 {
		t.Errorf("no-spin prediction has spin-ups: %v", pred.SpinUpRate)
	}
}

// TestPredictFarmPowerWithSpinDown: at a sparse arrival rate and the
// break-even threshold, the renewal model should land near the
// simulator (mean-value model: allow 15%).
func TestPredictFarmPowerWithSpinDown(t *testing.T) {
	p := disk.DefaultParams()
	rate := 0.002 // gaps ≈ 500 s >> 53.3 s threshold: mostly asleep
	tr := buildMG1Trace(rate, 2000000, 11)
	threshold := p.BreakEvenThreshold()
	res, err := storage.Run(tr, []int{0, 0, 0}, storage.Config{
		NumDisks:      1,
		IdleThreshold: threshold,
	})
	if err != nil {
		t.Fatal(err)
	}
	loads, err := AnalyzeAssignment(tr.Files, []int{0, 0, 0}, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	pred := PredictFarm(loads, p, threshold)
	rel := math.Abs(pred.AvgPower-res.AvgPower) / res.AvgPower
	if rel > 0.15 {
		t.Fatalf("predicted power %v vs simulated %v (%.1f%% off)", pred.AvgPower, res.AvgPower, rel*100)
	}
	// Spin-up rate: simulator counts should be within a factor ~1.5.
	simRate := float64(res.SpinUps) / res.Duration
	if pred.SpinUpRate < simRate/2 || pred.SpinUpRate > simRate*2 {
		t.Fatalf("predicted spin-up rate %v vs simulated %v", pred.SpinUpRate, simRate)
	}
}

func TestEmptyDiskPrediction(t *testing.T) {
	p := disk.DefaultParams()
	pred := PredictFarm([]DiskLoad{{}}, p, 53.3)
	if math.Abs(pred.AvgPower-p.StandbyPower) > 1e-9 {
		t.Fatalf("empty disk predicted %v W want standby %v", pred.AvgPower, p.StandbyPower)
	}
}

func TestLoadConstraintInversion(t *testing.T) {
	es, es2 := 4.0, 32.0
	for _, budget := range []float64{5.0, 8.0, 20.0} {
		L := LoadConstraintForResponse(budget, es, es2)
		if L <= 0 || L >= 1 {
			t.Fatalf("budget %v: L=%v", budget, L)
		}
		got := ResponseForLoadConstraint(L, es, es2)
		if got > budget*1.001 {
			t.Fatalf("budget %v: inverted L=%v gives response %v", budget, L, got)
		}
		// Monotone: slightly higher L must exceed the budget.
		if ResponseForLoadConstraint(L+0.01, es, es2) < budget {
			t.Fatalf("budget %v: L=%v not maximal", budget, L)
		}
	}
}

func TestLoadConstraintImpossibleBudget(t *testing.T) {
	if got := LoadConstraintForResponse(1.0, 4.0, 32.0); got != 0 {
		t.Fatalf("budget below service time should give 0, got %v", got)
	}
}

func TestResponseForLoadConstraintEdges(t *testing.T) {
	if !math.IsInf(ResponseForLoadConstraint(0, 1, 1), 1) {
		t.Error("L=0 should be +Inf")
	}
	if !math.IsInf(ResponseForLoadConstraint(1, 1, 1), 1) {
		t.Error("L=1 should be +Inf")
	}
}

// Property: MeanResponse grows with utilization.
func TestResponseMonotoneInLoad(t *testing.T) {
	es, es2 := 4.0, 32.0
	prev := 0.0
	for L := 0.05; L < 0.95; L += 0.05 {
		r := ResponseForLoadConstraint(L, es, es2)
		if r <= prev {
			t.Fatalf("response not monotone at L=%v: %v <= %v", L, r, prev)
		}
		prev = r
	}
}
