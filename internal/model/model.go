// Package model provides the closed-form queueing and energy analysis
// behind the paper's load constraint. The paper bounds response time
// indirectly — "the response time constraint is satisfied if the
// cumulative loads of files on any disk are below L" — which is an
// M/G/1 utilization argument. This package makes the argument
// explicit:
//
//   - per-disk M/G/1 statistics (utilization, Pollaczek–Khinchine mean
//     wait, mean response) from an allocation and a file population;
//   - a farm-level energy estimate under the renewal model of idle
//     gaps, matching the simulator's power states;
//   - the L ↔ response-time mapping a deployer can invert to choose
//     the load constraint for a latency budget (the paper's "tool for
//     obtaining reliable estimates on the size of a disk farm").
//
// The analytic predictions are validated against the discrete-event
// simulator in this package's tests and in the "analysis" experiment.
package model

import (
	"fmt"
	"math"

	"diskpack/internal/disk"
	"diskpack/internal/trace"
)

// DiskLoad summarizes the request stream one disk receives under an
// allocation: Poisson arrivals at Lambda with i.i.d. service times of
// mean ES and second moment ES2.
type DiskLoad struct {
	Lambda float64 // requests per second
	ES     float64 // mean service time, seconds
	ES2    float64 // second moment of service time, s²
}

// Utilization returns ρ = λ·E[S].
func (d DiskLoad) Utilization() float64 { return d.Lambda * d.ES }

// MeanWait returns the Pollaczek–Khinchine mean queueing delay
// W = λ·E[S²] / (2(1−ρ)) for an M/G/1 FIFO queue, or +Inf when
// ρ ≥ 1.
func (d DiskLoad) MeanWait() float64 {
	rho := d.Utilization()
	if rho >= 1 {
		return math.Inf(1)
	}
	return d.Lambda * d.ES2 / (2 * (1 - rho))
}

// MeanResponse returns E[T] = W + E[S].
func (d DiskLoad) MeanResponse() float64 { return d.MeanWait() + d.ES }

// MeanIdleGap returns the expected idle-gap length between busy
// periods, 1/λ · (1−ρ) ... precisely, for an M/G/1 queue the expected
// idle period is 1/λ (memoryless arrivals), and the fraction of time
// idle is 1−ρ.
func (d DiskLoad) MeanIdleGap() float64 {
	if d.Lambda <= 0 {
		return math.Inf(1)
	}
	return 1 / d.Lambda
}

// AnalyzeAssignment computes each disk's DiskLoad from a file
// population and an allocation: disk arrival rates are the sums of
// their files' rates, and service moments are the rate-weighted file
// service-time moments.
func AnalyzeAssignment(files []trace.FileInfo, assign []int, numDisks int, params disk.Params) ([]DiskLoad, error) {
	if len(files) != len(assign) {
		return nil, fmt.Errorf("model: %d files but %d assignments", len(files), len(assign))
	}
	loads := make([]DiskLoad, numDisks)
	var sumS, sumS2 [](float64)
	sumS = make([]float64, numDisks)
	sumS2 = make([]float64, numDisks)
	for i, f := range files {
		d := assign[i]
		if d < 0 || d >= numDisks {
			return nil, fmt.Errorf("model: file %d on disk %d of %d", i, d, numDisks)
		}
		s := params.ServiceTime(f.Size)
		loads[d].Lambda += f.Rate
		sumS[d] += f.Rate * s
		sumS2[d] += f.Rate * s * s
	}
	for d := range loads {
		if loads[d].Lambda > 0 {
			loads[d].ES = sumS[d] / loads[d].Lambda
			loads[d].ES2 = sumS2[d] / loads[d].Lambda
		}
	}
	return loads, nil
}

// FarmPrediction is the analytic counterpart of storage.Results.
type FarmPrediction struct {
	// MeanResponse is the request-weighted mean response over all
	// disks (spin-up penalties excluded; see SpinPenalty).
	MeanResponse float64
	// MaxUtilization is the highest per-disk ρ; above the load
	// constraint L the allocation violates the paper's premise.
	MaxUtilization float64
	// AvgPower is the farm's predicted wattage under the idleness
	// threshold, using the renewal-process gap model.
	AvgPower float64
	// SpinUpRate is the predicted farm-wide spin-ups per second.
	SpinUpRate float64
	// SpinPenalty is the request-weighted expected extra wait due to
	// arrivals that find their disk asleep or spinning down.
	SpinPenalty float64
}

// PredictFarm estimates farm power and response for a fixed idleness
// threshold, treating each disk as an M/G/1 queue whose idle gaps are
// Exp(λ) (memoryless arrivals):
//
//   - a gap longer than the threshold τ spins the disk down
//     (probability e^(−λτ)), costing one down+up cycle and standby
//     dwell;
//   - requests arriving into a sleeping disk wait out the remaining
//     spin-up; with Poisson arrivals the first arrival after the
//     timeout pays the full spin-up time.
//
// It is a mean-value model: it ignores queue build-up behind spin-ups
// (visible in the simulator at very small thresholds) and treats disks
// independently.
func PredictFarm(loads []DiskLoad, params disk.Params, threshold float64) FarmPrediction {
	var p FarmPrediction
	var totalLambda, weightedResp float64
	for _, d := range loads {
		rho := d.Utilization()
		if rho > p.MaxUtilization {
			p.MaxUtilization = rho
		}
		totalLambda += d.Lambda
		weightedResp += d.Lambda * d.MeanResponse()

		if d.Lambda <= 0 {
			// An empty disk spins down once and sleeps forever.
			p.AvgPower += params.StandbyPower
			continue
		}
		// Renewal cycle: a busy+idle cycle has expected length
		// E[B]+1/λ where the busy period E[B] = E[S]/(1−ρ). The
		// idle part of the cycle exceeds τ with prob q = e^(−λτ).
		q := math.Exp(-d.Lambda * threshold)
		if math.IsInf(threshold, 1) {
			q = 0
		}
		cycle := d.ES/(1-math.Min(rho, 0.999999)) + 1/d.Lambda
		// Expected idle-energy segments per cycle (conditional
		// expectations of Exp(λ) gaps):
		//   gap <= τ (prob 1−q): idle for E[gap | gap<=τ]
		//   gap > τ  (prob q):   idle τ, down, standby rest, up.
		var idleE, gapExtra float64
		if q < 1 {
			// E[gap | gap <= τ] = 1/λ − τ·q/(1−q)
			condShort := 1/d.Lambda - threshold*q/(1-q)
			idleE += (1 - q) * params.IdlePower * condShort
		}
		if q > 0 {
			// Beyond the threshold the residual gap is Exp(λ) again
			// (memorylessness): down for T_d, then standby for
			// max(0, residual − T_d) ≈ residual·e^{-λT_d}...
			// keep the mean-value simplification: standby for
			// E[residual] = 1/λ minus the overlap with the
			// spin-down, floored at zero.
			residual := 1 / d.Lambda
			standby := residual - params.SpinDownTime
			if standby < 0 {
				standby = 0
			}
			idleE += q * (params.IdlePower*threshold +
				params.SpinDownPower*params.SpinDownTime +
				params.StandbyPower*standby +
				params.SpinUpPower*params.SpinUpTime)
			gapExtra += q * params.SpinUpTime // first arrival waits out the spin-up
		}
		busyPower := params.ActivePower // busy periods transfer mostly
		busyE := busyPower * d.ES / (1 - math.Min(rho, 0.999999))
		p.AvgPower += (busyE + idleE) / cycle
		p.SpinUpRate += q / cycle
		p.SpinPenalty += d.Lambda * gapExtra
	}
	if totalLambda > 0 {
		p.MeanResponse = weightedResp / totalLambda
		p.SpinPenalty /= totalLambda
	}
	return p
}

// ResponseForLoadConstraint predicts the mean response time of a disk
// filled exactly to the load constraint L with the given file-size
// service distribution (mean es, second moment es2): the inverse map
// deployers use to pick L for a latency budget (paper Figure 4's
// analytic skeleton).
func ResponseForLoadConstraint(L, es, es2 float64) float64 {
	if L <= 0 || L >= 1 {
		return math.Inf(1)
	}
	lambda := L / es
	d := DiskLoad{Lambda: lambda, ES: es, ES2: es2}
	return d.MeanResponse()
}

// LoadConstraintForResponse inverts ResponseForLoadConstraint by
// bisection: the largest L whose predicted mean response stays within
// budget. It returns 0 when even an empty disk misses the budget.
func LoadConstraintForResponse(budget, es, es2 float64) float64 {
	if budget <= es {
		return 0
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if ResponseForLoadConstraint(mid, es, es2) <= budget {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
