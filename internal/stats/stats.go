// Package stats provides the streaming statistics used by the disk-farm
// simulator and the experiment harness: numerically stable moments
// (Welford), exact and histogram-based quantiles, time-weighted
// averages for quantities like queue length, and a simple least-squares
// line fit used to verify the log-log linearity of the synthesized NERSC
// file-size distribution (paper Section 5.1).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates count, mean, variance, min and max in a single
// pass using Welford's numerically stable recurrence. The zero value is
// ready to use.
type Welford struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Merge combines another accumulator into w (parallel reduction), using
// the Chan et al. pairwise update. Experiment workers accumulate
// per-shard statistics and merge at the end.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	delta := o.mean - w.mean
	total := w.n + o.n
	w.mean += delta * float64(o.n) / float64(total)
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(total)
	w.n = total
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
}

// Count returns the number of observations.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the sample mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Sum returns mean*count.
func (w *Welford) Sum() float64 { return w.mean * float64(w.n) }

// Variance returns the unbiased sample variance (0 for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation (0 when empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 when empty).
func (w *Welford) Max() float64 { return w.max }

// String summarizes the accumulator for logs and tables.
func (w *Welford) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g max=%.4g",
		w.n, w.Mean(), w.Std(), w.min, w.max)
}

// Sample collects observations for exact quantiles. The simulations in
// this repository top out around a few hundred thousand response-time
// samples per run, so retaining them exactly is cheaper and more faithful
// than a sketch.
type Sample struct {
	xs     []float64
	sorted bool
	w      Welford
}

// Add appends an observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
	s.w.Add(x)
}

// Reset empties the sample while keeping its backing storage, so a
// per-window accumulator reset does not reallocate every epoch.
func (s *Sample) Reset() {
	s.xs = s.xs[:0]
	s.sorted = false
	s.w = Welford{}
}

// Count returns the number of observations.
func (s *Sample) Count() int64 { return int64(len(s.xs)) }

// Mean returns the sample mean.
func (s *Sample) Mean() float64 { return s.w.Mean() }

// Std returns the sample standard deviation.
func (s *Sample) Std() float64 { return s.w.Std() }

// Min returns the smallest observation.
func (s *Sample) Min() float64 { return s.w.Min() }

// Max returns the largest observation.
func (s *Sample) Max() float64 { return s.w.Max() }

// Quantile returns the q-quantile (0 <= q <= 1) using linear
// interpolation between order statistics. It returns 0 on an empty
// sample and panics on q outside [0,1].
func (s *Sample) Quantile(q float64) float64 {
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if n == 1 {
		return s.xs[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median returns Quantile(0.5).
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// AppendValues appends the sample's observations to dst and returns
// the extended slice. The order is unspecified (Quantile sorts the
// backing array in place); callers that need a canonical order must
// sort the result. This is the escape hatch parallel reductions use to
// merge per-shard samples exactly: concatenating shards' values and
// sorting yields the same multiset — and therefore the same sorted
// array, bit for bit — regardless of how the observations were split.
func (s *Sample) AppendValues(dst []float64) []float64 {
	return append(dst, s.xs...)
}

// SortedMean returns the mean of xs accumulated in index order. On a
// sorted slice this is a canonical reduction: any partition of the same
// observations sorts to the same array, so the fold — unlike a
// streaming mean, whose floating-point rounding depends on arrival
// order — is identical no matter how the samples were produced.
func SortedMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// SortedQuantile returns the q-quantile of an ascending-sorted slice
// using exactly Sample.Quantile's interpolation between order
// statistics, so a merged-then-sorted union of per-shard samples
// reproduces the single-sample quantile bit for bit. It returns 0 on an
// empty slice and panics on q outside [0,1].
func SortedQuantile(xs []float64, q float64) float64 {
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return xs[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return xs[lo]
	}
	frac := pos - float64(lo)
	return xs[lo]*(1-frac) + xs[hi]*frac
}

// TimeWeighted integrates a piecewise-constant signal over simulated
// time: call Set at each change and Finish at the end of the run. The
// simulator uses it for average queue length and average active-disk
// count.
type TimeWeighted struct {
	lastT    float64
	value    float64
	integral float64
	started  bool
	startT   float64
}

// Set records that the signal takes value v from time t onward. Calls
// must have nondecreasing t.
func (tw *TimeWeighted) Set(t, v float64) {
	if !tw.started {
		tw.started = true
		tw.startT = t
	} else {
		if t < tw.lastT {
			panic(fmt.Sprintf("stats: TimeWeighted.Set time went backwards: %v < %v", t, tw.lastT))
		}
		tw.integral += tw.value * (t - tw.lastT)
	}
	tw.lastT = t
	tw.value = v
}

// Integral returns the integral of the signal up to time t (extending
// the most recent value).
func (tw *TimeWeighted) Integral(t float64) float64 {
	if !tw.started {
		return 0
	}
	if t < tw.lastT {
		panic(fmt.Sprintf("stats: TimeWeighted.Integral(%v) before last Set(%v)", t, tw.lastT))
	}
	return tw.integral + tw.value*(t-tw.lastT)
}

// Average returns the time-weighted mean of the signal over
// [start, t].
func (tw *TimeWeighted) Average(t float64) float64 {
	if !tw.started || t <= tw.startT {
		return 0
	}
	return tw.Integral(t) / (t - tw.startT)
}

// Histogram is a fixed-width linear-bin histogram over [lo, hi);
// observations outside the range land in saturating edge bins.
type Histogram struct {
	lo, width float64
	counts    []int64
	total     int64
}

// NewHistogram returns a histogram with bins equal-width bins spanning
// [lo, hi). It panics unless hi > lo and bins >= 1.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram [%v,%v) bins=%d", lo, hi, bins))
	}
	return &Histogram{lo: lo, width: (hi - lo) / float64(bins), counts: make([]int64, bins)}
}

// Add counts one observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.lo) / h.width)
	if i < 0 {
		i = 0
	}
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	h.counts[i]++
	h.total++
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.total }

// Bin returns the count in bin i.
func (h *Histogram) Bin(i int) int64 { return h.counts[i] }

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.lo + (float64(i)+0.5)*h.width
}

// LogHistogram buckets positive observations into logarithmically spaced
// bins over [lo, hi). The paper classifies the 88,631 NERSC files into 80
// size bins this way before checking Zipf linearity in log-log scale.
type LogHistogram struct {
	logLo, logW float64
	counts      []int64
	total       int64
}

// NewLogHistogram returns a histogram with bins log-spaced bins spanning
// [lo, hi); lo must be > 0.
func NewLogHistogram(lo, hi float64, bins int) *LogHistogram {
	if lo <= 0 || hi <= lo || bins < 1 {
		panic(fmt.Sprintf("stats: invalid log histogram [%v,%v) bins=%d", lo, hi, bins))
	}
	logLo := math.Log(lo)
	return &LogHistogram{
		logLo:  logLo,
		logW:   (math.Log(hi) - logLo) / float64(bins),
		counts: make([]int64, bins),
	}
}

// Add counts one observation; non-positive values saturate into bin 0.
func (h *LogHistogram) Add(x float64) {
	i := 0
	if x > 0 {
		i = int((math.Log(x) - h.logLo) / h.logW)
	}
	if i < 0 {
		i = 0
	}
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	h.counts[i]++
	h.total++
}

// Count returns the total number of observations.
func (h *LogHistogram) Count() int64 { return h.total }

// Bins returns the number of bins.
func (h *LogHistogram) Bins() int { return len(h.counts) }

// Bin returns the count in bin i.
func (h *LogHistogram) Bin(i int) int64 { return h.counts[i] }

// BinCenter returns the geometric midpoint of bin i.
func (h *LogHistogram) BinCenter(i int) float64 {
	return math.Exp(h.logLo + (float64(i)+0.5)*h.logW)
}

// Proportions returns each bin's share of the total (empty histogram
// yields all zeros).
func (h *LogHistogram) Proportions() []float64 {
	out := make([]float64, len(h.counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// LinearFit is an ordinary least-squares fit y = Slope*x + Intercept
// with coefficient of determination R2.
type LinearFit struct {
	Slope, Intercept, R2 float64
	N                    int
}

// FitLine computes the least-squares line through (x[i], y[i]). It
// panics when the slices differ in length and returns a zero fit for
// fewer than two points.
func FitLine(x, y []float64) LinearFit {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: FitLine length mismatch %d vs %d", len(x), len(y)))
	}
	n := len(x)
	if n < 2 {
		return LinearFit{N: n}
	}
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{N: n}
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx, N: n}
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	} else {
		fit.R2 = 1
	}
	return fit
}
