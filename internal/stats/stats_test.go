package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Count() != 0 || w.Mean() != 0 || w.Variance() != 0 || w.Std() != 0 {
		t.Fatalf("zero-value Welford not zeroed: %s", w.String())
	}
}

func TestWelfordKnownValues(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Fatalf("count=%d want 8", w.Count())
	}
	if !almostEq(w.Mean(), 5, 1e-12) {
		t.Errorf("mean=%v want 5", w.Mean())
	}
	// Population variance is 4; sample (unbiased) variance is 32/7.
	if !almostEq(w.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("variance=%v want %v", w.Variance(), 32.0/7.0)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("min=%v max=%v want 2,9", w.Min(), w.Max())
	}
	if !almostEq(w.Sum(), 40, 1e-12) {
		t.Errorf("sum=%v want 40", w.Sum())
	}
}

func TestWelfordSingleObservation(t *testing.T) {
	var w Welford
	w.Add(3.5)
	if w.Mean() != 3.5 || w.Variance() != 0 || w.Min() != 3.5 || w.Max() != 3.5 {
		t.Fatalf("single obs: %s", w.String())
	}
}

func TestWelfordNumericalStability(t *testing.T) {
	// Large offset + small variance is the classic catastrophic
	// cancellation case for the naive sum-of-squares formula.
	var w Welford
	const offset = 1e9
	for _, x := range []float64{offset + 4, offset + 7, offset + 13, offset + 16} {
		w.Add(x)
	}
	if !almostEq(w.Mean(), offset+10, 1e-12) {
		t.Errorf("mean=%v want %v", w.Mean(), offset+10.0)
	}
	if !almostEq(w.Variance(), 30, 1e-9) {
		t.Errorf("variance=%v want 30", w.Variance())
	}
}

// Property: merging two accumulators matches accumulating the
// concatenation.
func TestWelfordMergeProperty(t *testing.T) {
	prop := func(a, b []float64) bool {
		clean := func(in []float64) []float64 {
			out := in[:0]
			for _, x := range in {
				if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
					out = append(out, x)
				}
			}
			return out
		}
		a, b = clean(a), clean(b)
		var wa, wb, wall Welford
		for _, x := range a {
			wa.Add(x)
			wall.Add(x)
		}
		for _, x := range b {
			wb.Add(x)
			wall.Add(x)
		}
		wa.Merge(wb)
		if wa.Count() != wall.Count() {
			return false
		}
		if wa.Count() == 0 {
			return true
		}
		return almostEq(wa.Mean(), wall.Mean(), 1e-9) &&
			almostEq(wa.Variance(), wall.Variance(), 1e-6) &&
			wa.Min() == wall.Min() && wa.Max() == wall.Max()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWelfordMergeEmptySides(t *testing.T) {
	var w, empty Welford
	w.Add(1)
	w.Add(3)
	before := w
	w.Merge(empty)
	if w != before {
		t.Error("merging empty changed accumulator")
	}
	empty.Merge(w)
	if empty.Mean() != 2 || empty.Count() != 2 {
		t.Errorf("merge into empty: mean=%v count=%d", empty.Mean(), empty.Count())
	}
}

func TestSampleQuantiles(t *testing.T) {
	var s Sample
	for _, x := range []float64{15, 20, 35, 40, 50} {
		s.Add(x)
	}
	cases := []struct{ q, want float64 }{
		{0, 15}, {1, 50}, {0.5, 35}, {0.25, 20}, {0.75, 40},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v)=%v want %v", c.q, got, c.want)
		}
	}
	if s.Median() != 35 {
		t.Errorf("median=%v want 35", s.Median())
	}
}

func TestSampleQuantileInterpolation(t *testing.T) {
	var s Sample
	s.Add(10)
	s.Add(20)
	if got := s.Quantile(0.5); !almostEq(got, 15, 1e-12) {
		t.Errorf("interpolated median=%v want 15", got)
	}
}

func TestSampleEmptyAndSingle(t *testing.T) {
	var s Sample
	if s.Quantile(0.5) != 0 {
		t.Error("empty sample quantile != 0")
	}
	s.Add(7)
	if s.Quantile(0.99) != 7 || s.Quantile(0) != 7 {
		t.Error("single-element quantiles wrong")
	}
}

func TestSampleQuantilePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile(1.5) did not panic")
		}
	}()
	var s Sample
	s.Add(1)
	s.Quantile(1.5)
}

func TestSampleAddAfterQuantile(t *testing.T) {
	var s Sample
	s.Add(3)
	s.Add(1)
	_ = s.Median() // forces sort
	s.Add(2)
	if got := s.Median(); got != 2 {
		t.Errorf("median after re-add=%v want 2", got)
	}
}

// Property: sample quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	prop := func(raw []float64, qa, qb float64) bool {
		var s Sample
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				s.Add(x)
			}
		}
		if s.Count() == 0 {
			return true
		}
		qa = math.Abs(math.Mod(qa, 1))
		qb = math.Abs(math.Mod(qb, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		va, vb := s.Quantile(qa), s.Quantile(qb)
		return va <= vb && va >= s.Min() && vb <= s.Max()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTimeWeightedConstantSignal(t *testing.T) {
	var tw TimeWeighted
	tw.Set(0, 5)
	if got := tw.Average(10); got != 5 {
		t.Fatalf("avg=%v want 5", got)
	}
	if got := tw.Integral(10); got != 50 {
		t.Fatalf("integral=%v want 50", got)
	}
}

func TestTimeWeightedStep(t *testing.T) {
	var tw TimeWeighted
	tw.Set(0, 0)  // 0 over [0,4)
	tw.Set(4, 10) // 10 over [4,6)
	tw.Set(6, 2)  // 2 over [6,10)
	if got := tw.Integral(10); !almostEq(got, 0*4+10*2+2*4, 1e-12) {
		t.Fatalf("integral=%v want 28", got)
	}
	if got := tw.Average(10); !almostEq(got, 2.8, 1e-12) {
		t.Fatalf("avg=%v want 2.8", got)
	}
}

func TestTimeWeightedLateStart(t *testing.T) {
	var tw TimeWeighted
	tw.Set(100, 4)
	if got := tw.Average(150); got != 4 {
		t.Fatalf("avg=%v want 4 (window starts at first Set)", got)
	}
}

func TestTimeWeightedEmpty(t *testing.T) {
	var tw TimeWeighted
	if tw.Integral(5) != 0 || tw.Average(5) != 0 {
		t.Fatal("zero-value TimeWeighted should integrate to 0")
	}
}

func TestTimeWeightedBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("backwards Set did not panic")
		}
	}()
	var tw TimeWeighted
	tw.Set(5, 1)
	tw.Set(4, 2)
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0.5, 1.5, 2.5, 2.6, 9.9, -3, 42} {
		h.Add(x)
	}
	if h.Count() != 7 {
		t.Fatalf("count=%d want 7", h.Count())
	}
	// Bins are [0,2),[2,4),[4,6),[6,8),[8,10); -3 saturates into bin 0
	// and 42 into bin 4.
	wantBins := []int64{3, 2, 0, 0, 2}
	for i, w := range wantBins {
		if h.Bin(i) != w {
			t.Errorf("bin %d = %d want %d", i, h.Bin(i), w)
		}
	}
	if got := h.BinCenter(0); got != 1 {
		t.Errorf("BinCenter(0)=%v want 1", got)
	}
	if h.Bins() != 5 {
		t.Errorf("Bins()=%d want 5", h.Bins())
	}
}

func TestHistogramInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid histogram did not panic")
		}
	}()
	NewHistogram(10, 0, 5)
}

func TestLogHistogramBinning(t *testing.T) {
	// 3 decades, 3 bins: [1,10), [10,100), [100,1000).
	h := NewLogHistogram(1, 1000, 3)
	for _, x := range []float64{2, 5, 20, 500, 0.5, 2000, -1} {
		h.Add(x)
	}
	if h.Bin(0) != 3 { // 2, 5, 0.5 (saturated), -1 goes to bin 0 too... recount
		// 2,5 -> bin0; 0.5 saturates to bin0; -1 non-positive -> bin0. That's 4.
		t.Logf("bin contents: %d %d %d", h.Bin(0), h.Bin(1), h.Bin(2))
	}
	if got := h.Bin(0); got != 4 {
		t.Errorf("bin0=%d want 4", got)
	}
	if got := h.Bin(1); got != 1 {
		t.Errorf("bin1=%d want 1", got)
	}
	if got := h.Bin(2); got != 2 { // 500 and 2000 (saturated)
		t.Errorf("bin2=%d want 2", got)
	}
	props := h.Proportions()
	var sum float64
	for _, p := range props {
		sum += p
	}
	if !almostEq(sum, 1, 1e-12) {
		t.Errorf("proportions sum=%v want 1", sum)
	}
}

func TestLogHistogramGeometricCenters(t *testing.T) {
	h := NewLogHistogram(1, 100, 2)
	// Bins [1,10) and [10,100); geometric centers sqrt(10) and sqrt(1000).
	if got := h.BinCenter(0); !almostEq(got, math.Sqrt(10), 1e-9) {
		t.Errorf("center0=%v want sqrt(10)", got)
	}
	if got := h.BinCenter(1); !almostEq(got, math.Sqrt(1000), 1e-9) {
		t.Errorf("center1=%v want sqrt(1000)", got)
	}
}

func TestFitLineExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 2x + 1
	fit := FitLine(x, y)
	if !almostEq(fit.Slope, 2, 1e-12) || !almostEq(fit.Intercept, 1, 1e-12) {
		t.Fatalf("fit=%+v want slope 2 intercept 1", fit)
	}
	if !almostEq(fit.R2, 1, 1e-12) {
		t.Errorf("R2=%v want 1", fit.R2)
	}
}

func TestFitLineNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var x, y []float64
	for i := 0; i < 500; i++ {
		xi := float64(i) / 10
		x = append(x, xi)
		y = append(y, -1.5*xi+4+rng.NormFloat64()*0.01)
	}
	fit := FitLine(x, y)
	if math.Abs(fit.Slope+1.5) > 0.01 {
		t.Errorf("slope=%v want ~-1.5", fit.Slope)
	}
	if fit.R2 < 0.999 {
		t.Errorf("R2=%v want >0.999", fit.R2)
	}
}

func TestFitLineDegenerate(t *testing.T) {
	if fit := FitLine(nil, nil); fit.N != 0 || fit.Slope != 0 {
		t.Errorf("empty fit=%+v", fit)
	}
	if fit := FitLine([]float64{1}, []float64{2}); fit.N != 1 {
		t.Errorf("single-point fit=%+v", fit)
	}
	// Vertical data: all x equal.
	fit := FitLine([]float64{2, 2, 2}, []float64{1, 2, 3})
	if fit.Slope != 0 {
		t.Errorf("vertical-data slope=%v want 0", fit.Slope)
	}
}

func TestFitLineMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched FitLine did not panic")
		}
	}()
	FitLine([]float64{1, 2}, []float64{1})
}

// Property: quantiles of a sorted copy agree with direct order
// statistics at exact index points.
func TestQuantileAgreesWithOrderStatistics(t *testing.T) {
	prop := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				xs = append(xs, x)
			}
		}
		if len(xs) < 2 {
			return true
		}
		var s Sample
		for _, x := range xs {
			s.Add(x)
		}
		sort.Float64s(xs)
		n := len(xs)
		for i := 0; i < n; i++ {
			q := float64(i) / float64(n-1)
			// q*(n-1) may not round-trip to exactly i in floating
			// point, so allow interpolation slop of one gap width.
			got := s.Quantile(q)
			lo, hi := xs[max(0, i-1)], xs[min(n-1, i+1)]
			if got < lo || got > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkWelfordAdd(b *testing.B) {
	var w Welford
	for i := 0; i < b.N; i++ {
		w.Add(float64(i % 1000))
	}
}

func BenchmarkSampleQuantile(b *testing.B) {
	var s Sample
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100000; i++ {
		s.Add(rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Quantile(0.95)
	}
}
