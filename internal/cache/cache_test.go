package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMissThenHit(t *testing.T) {
	c := NewLRU(1000)
	if c.Get(1, 100) {
		t.Fatal("hit on empty cache")
	}
	c.Put(1, 100)
	if !c.Get(1, 100) {
		t.Fatal("miss after Put")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats %+v", s)
	}
	if c.HitRatio() != 0.5 {
		t.Fatalf("hit ratio %v want 0.5", c.HitRatio())
	}
}

func TestEvictionOrder(t *testing.T) {
	c := NewLRU(300)
	c.Put(1, 100)
	c.Put(2, 100)
	c.Put(3, 100)
	// Touch 1 so 2 becomes LRU.
	if !c.Get(1, 100) {
		t.Fatal("1 missing")
	}
	c.Put(4, 100) // must evict 2
	if c.Contains(2) {
		t.Fatal("2 should have been evicted")
	}
	for _, id := range []int{1, 3, 4} {
		if !c.Contains(id) {
			t.Fatalf("%d should be cached", id)
		}
	}
	if c.Used() != 300 {
		t.Fatalf("used=%d want 300", c.Used())
	}
}

func TestEvictionMultiple(t *testing.T) {
	c := NewLRU(100)
	c.Put(1, 40)
	c.Put(2, 40)
	c.Put(3, 90) // must evict both
	if c.Contains(1) || c.Contains(2) {
		t.Fatal("eviction of multiple entries failed")
	}
	if !c.Contains(3) || c.Used() != 90 {
		t.Fatalf("cache state wrong: used=%d", c.Used())
	}
	if c.Stats().Evictions != 2 {
		t.Fatalf("evictions=%d want 2", c.Stats().Evictions)
	}
}

func TestOversizeFileNeverCached(t *testing.T) {
	c := NewLRU(100)
	c.Put(1, 101)
	if c.Contains(1) || c.Len() != 0 {
		t.Fatal("oversize file cached")
	}
	// Exactly capacity is allowed.
	c.Put(2, 100)
	if !c.Contains(2) {
		t.Fatal("capacity-size file rejected")
	}
}

func TestPutExistingPromotesAndResizes(t *testing.T) {
	c := NewLRU(300)
	c.Put(1, 100)
	c.Put(2, 100)
	c.Put(1, 150) // resize + promote
	if c.Used() != 250 {
		t.Fatalf("used=%d want 250", c.Used())
	}
	c.Put(3, 100) // evicts 2 (LRU), not 1
	if c.Contains(2) || !c.Contains(1) {
		t.Fatal("promote-on-put broken")
	}
}

func TestRemove(t *testing.T) {
	c := NewLRU(100)
	c.Put(1, 50)
	c.Remove(1)
	if c.Contains(1) || c.Used() != 0 || c.Len() != 0 {
		t.Fatal("Remove failed")
	}
	c.Remove(99) // absent: no-op
	// List must still be consistent.
	c.Put(2, 50)
	c.Put(3, 50)
	if !c.Contains(2) || !c.Contains(3) {
		t.Fatal("cache unusable after Remove")
	}
}

func TestContainsDoesNotPromote(t *testing.T) {
	c := NewLRU(200)
	c.Put(1, 100)
	c.Put(2, 100)
	_ = c.Contains(1) // must NOT promote
	c.Put(3, 100)     // evicts 1
	if c.Contains(1) {
		t.Fatal("Contains promoted the entry")
	}
	if hits := c.Stats().Hits; hits != 0 {
		t.Fatalf("Contains counted as hit: %d", hits)
	}
}

func TestHitRatioEmptyCache(t *testing.T) {
	c := NewLRU(10)
	if c.HitRatio() != 0 {
		t.Fatal("hit ratio on untouched cache should be 0")
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 accepted")
		}
	}()
	NewLRU(0)
}

func TestNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative size accepted")
		}
	}()
	NewLRU(10).Put(1, -1)
}

func TestZeroSizeFiles(t *testing.T) {
	c := NewLRU(10)
	c.Put(1, 0)
	if !c.Contains(1) {
		t.Fatal("zero-size file not cached")
	}
	if !c.Get(1, 0) {
		t.Fatal("zero-size file not hit")
	}
}

// Property: used bytes always equal the sum of cached entry sizes and
// never exceed capacity.
func TestInvariantProperty(t *testing.T) {
	prop := func(ops []struct {
		ID   uint8
		Size uint16
		Op   uint8
	}) bool {
		c := NewLRU(2000)
		model := map[int]int64{}
		for _, op := range ops {
			id := int(op.ID % 50)
			size := int64(op.Size % 1500)
			switch op.Op % 3 {
			case 0:
				c.Put(id, size)
				if size <= 2000 {
					model[id] = size
				}
			case 1:
				hit := c.Get(id, size)
				_, inModel := model[id]
				// A hit implies the model had it (the reverse does
				// not hold: the model ignores eviction).
				if hit && !inModel {
					return false
				}
			case 2:
				c.Remove(id)
				delete(model, id)
			}
			// Shrink the model to what's actually cached: every
			// cached id must have the model's size.
			var used int64
			for id := range model {
				if !c.Contains(id) {
					delete(model, id)
				}
			}
			for id, sz := range model {
				_ = id
				used += sz
			}
			if c.Used() != used || c.Used() > 2000 || c.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestChurnStress(t *testing.T) {
	c := NewLRU(1 << 20)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		id := rng.Intn(5000)
		size := int64(rng.Intn(1 << 16))
		if !c.Get(id, size) {
			c.Put(id, size)
		}
		if c.Used() > c.Capacity() {
			t.Fatalf("iteration %d: used %d exceeds capacity", i, c.Used())
		}
	}
	s := c.Stats()
	if s.Hits == 0 || s.Misses == 0 || s.Evictions == 0 {
		t.Fatalf("stress run did not exercise all paths: %+v", s)
	}
}

func BenchmarkGetHit(b *testing.B) {
	c := NewLRU(1 << 30)
	for i := 0; i < 1000; i++ {
		c.Put(i, 1<<10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(i%1000, 1<<10)
	}
}

func BenchmarkPutEvictChurn(b *testing.B) {
	c := NewLRU(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put(i, 1<<10)
	}
}
