// Package cache implements the byte-capacity whole-file LRU cache the
// paper places in front of the disk farm in Section 5.1 (a 16 GB LRU in
// Figures 5 and 6). A hit serves the file without touching any disk; a
// miss is fetched from disk and inserted on completion, evicting
// least-recently-used files until it fits. Files larger than the whole
// cache are never cached.
package cache

import "fmt"

// LRU is a whole-file least-recently-used cache keyed by file ID.
// It is not safe for concurrent use; each simulation run owns one.
type LRU struct {
	capacity int64
	used     int64
	entries  map[int]*node
	// head is most recently used; tail least. Sentinel-free doubly
	// linked list.
	head, tail *node

	hits, misses          int64
	hitBytes, missBytes   int64
	insertions, evictions int64
}

type node struct {
	id         int
	size       int64
	prev, next *node
}

// NewLRU returns a cache holding at most capacity bytes. Capacity must
// be positive.
func NewLRU(capacity int64) *LRU {
	if capacity <= 0 {
		panic(fmt.Sprintf("cache: capacity %d must be positive", capacity))
	}
	return &LRU{capacity: capacity, entries: make(map[int]*node)}
}

// Get reports whether file id is cached, promoting it to most recently
// used and recording hit/miss statistics. size is the file's size, used
// only for accounting.
func (c *LRU) Get(id int, size int64) bool {
	n, ok := c.entries[id]
	if !ok {
		c.misses++
		c.missBytes += size
		return false
	}
	c.hits++
	c.hitBytes += n.size
	c.moveToFront(n)
	return true
}

// Contains reports whether id is cached without promoting it or
// touching statistics.
func (c *LRU) Contains(id int) bool {
	_, ok := c.entries[id]
	return ok
}

// Put inserts file id of the given size, evicting LRU entries as
// needed. Files larger than the cache capacity are ignored. Putting an
// already-cached file promotes it (and updates its size).
func (c *LRU) Put(id int, size int64) {
	if size < 0 {
		panic(fmt.Sprintf("cache: negative size %d", size))
	}
	if size > c.capacity {
		return
	}
	if n, ok := c.entries[id]; ok {
		c.used += size - n.size
		n.size = size
		c.moveToFront(n)
		c.evictOverflow()
		return
	}
	n := &node{id: id, size: size}
	c.entries[id] = n
	c.pushFront(n)
	c.used += size
	c.insertions++
	c.evictOverflow()
}

func (c *LRU) evictOverflow() {
	for c.used > c.capacity && c.tail != nil {
		c.removeNode(c.tail)
		c.evictions++
	}
}

// Remove drops id from the cache if present.
func (c *LRU) Remove(id int) {
	if n, ok := c.entries[id]; ok {
		c.removeNode(n)
	}
}

func (c *LRU) removeNode(n *node) {
	c.unlink(n)
	delete(c.entries, n.id)
	c.used -= n.size
}

func (c *LRU) unlink(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *LRU) pushFront(n *node) {
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *LRU) moveToFront(n *node) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

// Len returns the number of cached files.
func (c *LRU) Len() int { return len(c.entries) }

// Used returns the cached bytes.
func (c *LRU) Used() int64 { return c.used }

// Capacity returns the configured capacity in bytes.
func (c *LRU) Capacity() int64 { return c.capacity }

// Stats summarizes cache activity.
type Stats struct {
	Hits, Misses          int64
	HitBytes, MissBytes   int64
	Insertions, Evictions int64
}

// Stats returns the current counters.
func (c *LRU) Stats() Stats {
	return Stats{
		Hits: c.hits, Misses: c.misses,
		HitBytes: c.hitBytes, MissBytes: c.missBytes,
		Insertions: c.insertions, Evictions: c.evictions,
	}
}

// HitRatio returns hits/(hits+misses), or 0 before any lookup. The
// paper measured 5.6% for a 16 GB LRU on the NERSC workload.
func (c *LRU) HitRatio() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
