package reorg

import (
	"math"
	"testing"

	"diskpack/internal/disk"
	"diskpack/internal/storage"
	"diskpack/internal/trace"
	"diskpack/internal/workload"
)

func driftingTrace(t *testing.T, phases int) *trace.Trace {
	t.Helper()
	cfg := workload.DefaultNERSC(5)
	cfg.NumFiles = 3000
	cfg.NumRequests = 6000
	cfg.Duration = 6000 / 0.0447 // keep the paper's arrival rate
	tr, err := cfg.BuildDrifting(phases)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSplitEpochs(t *testing.T) {
	tr := &trace.Trace{
		Files: []trace.FileInfo{{ID: 0, Size: 1}},
		Requests: []trace.Request{
			{Time: 1, FileID: 0}, {Time: 11, FileID: 0}, {Time: 21, FileID: 0},
		},
		Duration: 30,
	}
	eps := splitEpochs(tr, 10)
	if len(eps) != 3 {
		t.Fatalf("epochs=%d want 3", len(eps))
	}
	for i, ep := range eps {
		if len(ep.Requests) != 1 {
			t.Fatalf("epoch %d has %d requests", i, len(ep.Requests))
		}
		if ep.Requests[0].Time != 1 {
			t.Errorf("epoch %d: time not rebased: %v", i, ep.Requests[0].Time)
		}
		if ep.Duration != 10 {
			t.Errorf("epoch %d duration %v", i, ep.Duration)
		}
	}
}

func TestSplitEpochsRagged(t *testing.T) {
	tr := &trace.Trace{
		Files:    []trace.FileInfo{{ID: 0, Size: 1}},
		Requests: []trace.Request{{Time: 24.5, FileID: 0}},
		Duration: 25,
	}
	eps := splitEpochs(tr, 10)
	if len(eps) != 3 {
		t.Fatalf("epochs=%d want 3", len(eps))
	}
	if eps[2].Duration != 5 {
		t.Errorf("last epoch duration %v want 5", eps[2].Duration)
	}
	if len(eps[2].Requests) != 1 || eps[2].Requests[0].Time != 4.5 {
		t.Errorf("last epoch requests %+v", eps[2].Requests)
	}
}

func TestConfigValidation(t *testing.T) {
	tr := driftingTrace(t, 1)
	bad := []Config{
		{Epoch: 0, CapL: 0.5},
		{Epoch: -5, CapL: 0.5},
		{Epoch: 100, CapL: 0},
		{Epoch: 100, CapL: 1.5},
		{Epoch: 100, CapL: 0.5, MinRate: -1},
		{Epoch: 100, CapL: 0.5, Adaptive: true, Static: true},
		{Epoch: 100, CapL: 0.5, Adaptive: true, Incremental: true},
		{Epoch: 100, CapL: 0.5, Workers: -1},
	}
	for i, c := range bad {
		if _, err := Run(tr, c); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestStaticRunMatchesSingleSimulation(t *testing.T) {
	tr := driftingTrace(t, 1)
	cfg := Config{
		Epoch:         tr.Duration + 1, // one epoch
		CapL:          0.7,
		IdleThreshold: storage.BreakEven,
		Static:        true,
	}
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 1 {
		t.Fatalf("epochs=%d want 1", len(res.Epochs))
	}
	if res.MigrationEnergy != 0 || res.MigratedBytes != 0 {
		t.Fatal("static single-epoch run migrated data")
	}
	if res.RespMean <= 0 || res.SavingRatio <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}
}

func TestReorgTracksDrift(t *testing.T) {
	// Three popularity phases; reorganize at phase boundaries. The
	// reorganizing run must preserve (or improve) the saving of the
	// static allocation, which was packed for phase 0 only.
	tr := driftingTrace(t, 3)
	epoch := tr.Duration / 3
	static, err := Run(tr, Config{
		Epoch: epoch, CapL: 0.7, IdleThreshold: storage.BreakEven, Static: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	dynamic, err := Run(tr, Config{
		Epoch: epoch, CapL: 0.7, IdleThreshold: storage.BreakEven,
		MinRate: 1e-7, Farm: static.Farm,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dynamic.MigratedBytes == 0 {
		t.Fatal("reorganization moved nothing despite drift")
	}
	if len(dynamic.Epochs) != 3 {
		t.Fatalf("epochs=%d want 3", len(dynamic.Epochs))
	}
	// With drift, the static allocation's later epochs degrade; the
	// dynamic one repacks. Compare *foreground* energy in the final
	// epoch (migration is charged separately).
	sLast := static.Epochs[2]
	dLast := dynamic.Epochs[2]
	if dLast.Energy > sLast.Energy*1.1 {
		t.Errorf("final epoch: dynamic energy %v much worse than static %v", dLast.Energy, sLast.Energy)
	}
	t.Logf("static saving %.3f resp %.2f | dynamic saving %.3f resp %.2f (migrated %.1f GB, %.0f J)",
		static.SavingRatio, static.RespMean,
		dynamic.SavingRatio, dynamic.RespMean,
		float64(dynamic.MigratedBytes)/1e9, dynamic.MigrationEnergy)
}

func TestMigrationCostAccounting(t *testing.T) {
	tr := driftingTrace(t, 2)
	epoch := tr.Duration / 2
	res, err := Run(tr, Config{
		Epoch: epoch, CapL: 0.7, IdleThreshold: storage.BreakEven, MinRate: 1e-7,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sumMig float64
	var sumBytes int64
	for _, ep := range res.Epochs {
		sumMig += ep.MigrationEnergy
		sumBytes += ep.MigratedBytes
	}
	if math.Abs(sumMig-res.MigrationEnergy) > 1e-6 {
		t.Errorf("migration energy mismatch: epochs %v total %v", sumMig, res.MigrationEnergy)
	}
	if sumBytes != res.MigratedBytes {
		t.Errorf("migrated bytes mismatch: %d vs %d", sumBytes, res.MigratedBytes)
	}
	// Energy model: 2 * bytes/rate * activePower.
	p := disk.DefaultParams()
	want := 2 * float64(res.MigratedBytes) / p.TransferRate * p.ActivePower
	if math.Abs(res.MigrationEnergy-want) > 1e-6 {
		t.Errorf("migration energy %v want %v", res.MigrationEnergy, want)
	}
}

func TestStaticNeverMigrates(t *testing.T) {
	tr := driftingTrace(t, 3)
	res, err := Run(tr, Config{
		Epoch: tr.Duration / 3, CapL: 0.7, IdleThreshold: storage.BreakEven, Static: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MigratedBytes != 0 {
		t.Fatal("static run migrated data")
	}
}

// TestAdaptiveChoosesPerEpoch exercises the per-epoch candidate sweep:
// every reorganization point records which candidate won, the run is
// deterministic, and the adaptive policy never migrates more than the
// always-full-repack policy (keep and incremental are among its
// candidates).
func TestAdaptiveChoosesPerEpoch(t *testing.T) {
	tr := driftingTrace(t, 3)
	epoch := tr.Duration / 3
	base := Config{Epoch: epoch, CapL: 0.7, IdleThreshold: storage.BreakEven, MinRate: 1e-7}

	full, err := Run(tr, base)
	if err != nil {
		t.Fatal(err)
	}
	adCfg := base
	adCfg.Adaptive = true
	adCfg.Farm = full.Farm
	adaptive, err := Run(tr, adCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(adaptive.Epochs) != 3 {
		t.Fatalf("epochs=%d want 3", len(adaptive.Epochs))
	}
	valid := map[string]bool{"keep": true, "incremental": true, "full-repack": true}
	for i, ep := range adaptive.Epochs[:2] {
		if !valid[ep.Choice] {
			t.Errorf("epoch %d chose %q", i, ep.Choice)
		}
	}
	if last := adaptive.Epochs[2].Choice; last != "" {
		t.Errorf("final epoch recorded choice %q, want none", last)
	}
	if adaptive.MigratedBytes > full.MigratedBytes {
		t.Errorf("adaptive migrated %d bytes, full repack only %d", adaptive.MigratedBytes, full.MigratedBytes)
	}
	if adaptive.SavingRatio <= 0 || adaptive.SavingRatio > 1 {
		t.Errorf("adaptive saving %v implausible", adaptive.SavingRatio)
	}
	// Candidate evaluation fans across workers but must stay
	// deterministic: a serial re-run is identical.
	serialCfg := adCfg
	serialCfg.Workers = 1
	serial, err := Run(tr, serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Energy != adaptive.Energy || serial.MigratedBytes != adaptive.MigratedBytes {
		t.Errorf("adaptive run depends on worker count: energy %v vs %v, bytes %d vs %d",
			serial.Energy, adaptive.Energy, serial.MigratedBytes, adaptive.MigratedBytes)
	}
	for i := range serial.Epochs {
		if serial.Epochs[i].Choice != adaptive.Epochs[i].Choice {
			t.Errorf("epoch %d choice differs across worker counts: %q vs %q",
				i, serial.Epochs[i].Choice, adaptive.Epochs[i].Choice)
		}
	}
}

func TestDriftingWorkloadActuallyDrifts(t *testing.T) {
	tr := driftingTrace(t, 2)
	// Hot set of first half vs second half should differ: compare the
	// top-requested files of each half.
	half := tr.Duration / 2
	counts := [2]map[int]int{{}, {}}
	for _, r := range tr.Requests {
		k := 0
		if r.Time >= half {
			k = 1
		}
		counts[k][r.FileID]++
	}
	top := func(m map[int]int) int {
		best, bestC := -1, 0
		for id, c := range m {
			if c > bestC {
				best, bestC = id, c
			}
		}
		return best
	}
	if top(counts[0]) == top(counts[1]) {
		t.Log("note: same top file across phases (possible but unlikely)")
	}
	// Rank correlation proxy: overlap of top-50 sets should be small.
	topN := func(m map[int]int, n int) map[int]bool {
		type kv struct{ id, c int }
		var all []kv
		for id, c := range m {
			all = append(all, kv{id, c})
		}
		for i := 0; i < len(all); i++ {
			for j := i + 1; j < len(all); j++ {
				if all[j].c > all[i].c {
					all[i], all[j] = all[j], all[i]
				}
			}
			if i >= n {
				break
			}
		}
		out := map[int]bool{}
		for i := 0; i < n && i < len(all); i++ {
			out[all[i].id] = true
		}
		return out
	}
	a, b := topN(counts[0], 50), topN(counts[1], 50)
	overlap := 0
	for id := range a {
		if b[id] {
			overlap++
		}
	}
	if overlap > 25 {
		t.Errorf("top-50 overlap %d/50 — popularity did not drift", overlap)
	}
}
