package reorg

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"diskpack/internal/coord"
	"diskpack/internal/storage"
)

// Adaptive mode's per-epoch candidate sweeps dispatched through a
// work-stealing coordinator pool (the ROADMAP "coordinator-fed reorg"
// follow-on) must reproduce the in-process run exactly: the candidate
// sweeps use only serializable axes now, and coord.PoolRunner promises
// byte-identical sweep results.
func TestAdaptiveThroughCoordinator(t *testing.T) {
	tr := driftingTrace(t, 3)
	epoch := tr.Duration / 3
	cfg := Config{
		Epoch: epoch, CapL: 0.7, IdleThreshold: storage.BreakEven,
		MinRate: 1e-7, Adaptive: true,
	}
	inProcess, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	pooled := cfg
	pooled.SweepRunner = coord.PoolRunner(ctx, 2, coord.Config{}, coord.WorkerConfig{Name: "reorg-pool"})
	viaPool, err := Run(tr, pooled)
	if err != nil {
		t.Fatal(err)
	}

	a, _ := json.Marshal(inProcess)
	b, _ := json.Marshal(viaPool)
	if string(a) != string(b) {
		t.Error("coordinator-dispatched adaptive run differs from in-process")
	}
	for i := range inProcess.Epochs {
		if inProcess.Epochs[i].Choice != viaPool.Epochs[i].Choice {
			t.Errorf("epoch %d choice differs: %q vs %q", i, inProcess.Epochs[i].Choice, viaPool.Epochs[i].Choice)
		}
	}
}
