// Package reorg implements the paper's semi-dynamic deployment mode
// (Section 1): "accumulating access statistics over periodic intervals
// and performing reorganization of file allocations." A Runner splits a
// long trace into epochs; each epoch is simulated under the current
// allocation, its measured per-file rates feed the packing algorithm
// for the next epoch, and files whose disk changes are migrated at a
// modeled cost (a read from the source plus a write to the target at
// the drive's transfer rate and active power).
//
// Migration is charged between epochs rather than interleaved with
// foreground requests — the paper envisions reorganization at quiet
// periodic intervals — so its cost appears in the energy totals and in
// the reported migration time, not in request response times.
package reorg

import (
	"fmt"
	"math"
	"sort"

	"diskpack/internal/core"
	"diskpack/internal/disk"
	"diskpack/internal/farm"
	"diskpack/internal/storage"
	"diskpack/internal/trace"
)

// Config parameterizes a semi-dynamic run.
type Config struct {
	// Epoch is the reorganization interval in seconds.
	Epoch float64
	// CapL is the packing load constraint (the paper's L).
	CapL float64
	// V selects Pack_Disks_v; 1 means plain Pack_Disks.
	V int
	// Farm fixes the farm size; 0 sizes it to the largest packing.
	Farm int
	// IdleThreshold is the spin-down threshold (storage.BreakEven for
	// the drive's break-even time).
	IdleThreshold float64
	// DiskParams is the drive model (zero value → Table 2 drive).
	DiskParams disk.Params
	// Static disables reorganization: the initial allocation persists
	// (the baseline the paper's Section 1 argues against when the
	// workload drifts).
	Static bool
	// Incremental switches from full repacking to the paper's
	// Section 6 proposal: migrate only files whose measured request
	// rate deviates from the estimate used at allocation time by more
	// than DeviationFactor, re-placing them first-fit into disks with
	// slack. Full repacking reshuffles nearly everything (Pack_Disks
	// is not stable under rate perturbations); incremental mode keeps
	// the migration bill proportional to the actual drift.
	Incremental bool
	// Adaptive enables per-epoch candidate evaluation: at each
	// reorganization point the engine proposes keeping the current
	// allocation, a full repack, and an incremental repack, replays the
	// finished epoch under each through a parallel farm.Sweep, and
	// adopts the candidate whose replay energy plus migration bill is
	// lowest. Mutually exclusive with Static and Incremental (it
	// subsumes both as candidates).
	Adaptive bool
	// Workers bounds the candidate sweep's parallelism in adaptive
	// mode; 0 means GOMAXPROCS.
	Workers int
	// SweepRunner, when non-nil, executes adaptive mode's per-epoch
	// candidate sweeps in place of the in-process farm.RunSweep — the
	// seam that lets an elastic pool (coord.PoolRunner) absorb the
	// epoch barrier. The candidate sweeps use only serializable axes,
	// so any RunSweep-equivalent executor works; it must return the
	// byte-identical RunSweep result or adaptive decisions drift.
	SweepRunner func(sweep farm.Sweep, seed int64, workers int) (*farm.SweepResult, error)
	// DeviationFactor is the rate ratio (>1) that marks a file as
	// mis-estimated in incremental mode; 0 means 4.
	DeviationFactor float64
	// MinLoadDelta is the smallest normalized load (fraction of one
	// disk's load budget) a deviation must involve to justify a
	// migration; rate-ratio noise among cold files is ignored below
	// it. 0 means 0.002.
	MinLoadDelta float64
	// MinRate is the rate assigned to files unobserved in the
	// previous epoch, so cold files keep a nonzero load estimate.
	MinRate float64
}

func (c Config) normalized() (Config, error) {
	if c.DiskParams == (disk.Params{}) {
		c.DiskParams = disk.DefaultParams()
	}
	if err := c.DiskParams.Validate(); err != nil {
		return c, err
	}
	if c.Epoch <= 0 || math.IsNaN(c.Epoch) {
		return c, fmt.Errorf("reorg: epoch %v must be positive", c.Epoch)
	}
	if c.CapL <= 0 || c.CapL > 1 {
		return c, fmt.Errorf("reorg: load constraint %v outside (0,1]", c.CapL)
	}
	if c.V < 1 {
		c.V = 1
	}
	if c.MinRate < 0 {
		return c, fmt.Errorf("reorg: negative MinRate %v", c.MinRate)
	}
	if c.DeviationFactor == 0 {
		c.DeviationFactor = 4
	}
	if c.DeviationFactor <= 1 {
		return c, fmt.Errorf("reorg: deviation factor %v must exceed 1", c.DeviationFactor)
	}
	if c.MinLoadDelta == 0 {
		c.MinLoadDelta = 0.002
	}
	if c.MinLoadDelta < 0 || c.MinLoadDelta >= 1 {
		return c, fmt.Errorf("reorg: MinLoadDelta %v outside [0,1)", c.MinLoadDelta)
	}
	if c.Adaptive && (c.Static || c.Incremental) {
		return c, fmt.Errorf("reorg: Adaptive is exclusive with Static and Incremental")
	}
	if c.Workers < 0 {
		return c, fmt.Errorf("reorg: negative Workers %d", c.Workers)
	}
	return c, nil
}

// EpochReport records one epoch's outcome.
type EpochReport struct {
	Start, End      float64
	Requests        int
	Energy          float64 // foreground energy, joules
	RespMean        float64
	SavingRatio     float64
	MigratedFiles   int
	MigratedBytes   int64
	MigrationEnergy float64 // joules charged between epochs
	MigrationTime   float64 // seconds of disk busy time (both ends)
	DisksUsed       int
	// Choice names the candidate adaptive mode adopted after this epoch
	// ("keep", "incremental", or "full-repack"; empty otherwise).
	Choice string
}

// Result aggregates a run.
type Result struct {
	Epochs []EpochReport
	// Energy is foreground + migration energy over the whole run.
	Energy float64
	// MigrationEnergy is the migration share of Energy.
	MigrationEnergy float64
	// RespMean is the request-weighted mean response over all epochs.
	RespMean float64
	// SavingRatio is 1 − Energy/NoSavingEnergy with migration charged
	// to the numerator.
	SavingRatio float64
	// MigratedBytes is the total volume moved between epochs.
	MigratedBytes int64
	Farm          int
}

// Run executes the semi-dynamic simulation over the trace.
func Run(tr *trace.Trace, cfg Config) (*Result, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	epochs := splitEpochs(tr, cfg.Epoch)
	if len(epochs) == 0 {
		return nil, fmt.Errorf("reorg: trace has no epochs (duration %v, epoch %v)", tr.Duration, cfg.Epoch)
	}

	// Initial allocation: pack on the trace's stored (a-priori) rates.
	assign, used, err := packWithRates(tr.Files, ratesOf(tr.Files), cfg)
	if err != nil {
		return nil, err
	}
	farmSize := cfg.Farm
	if farmSize == 0 {
		// Default headroom: repackings under measured rates often need
		// a few more disks than the a-priori packing.
		farmSize = used + max(2, used/10)
	}
	if farmSize < used {
		farmSize = used
	}

	res := &Result{Farm: farmSize}
	// Each epoch is one declarative point for the scenario engine: the
	// epoch sub-trace replayed against the current allocation.
	spin := farm.FixedSpin(0)
	switch {
	case cfg.IdleThreshold == storage.BreakEven:
		spin = farm.SpinSpec{Kind: farm.SpinBreakEven}
	case math.IsInf(cfg.IdleThreshold, 1):
		spin = farm.SpinSpec{Kind: farm.SpinNever}
	default:
		spin = farm.FixedSpin(cfg.IdleThreshold)
	}
	groups := []farm.DiskGroup{{Count: farmSize, Params: cfg.DiskParams}}
	// estimates are the per-file rates the current allocation was
	// packed with; incremental mode compares them against measurement.
	estimates := ratesOf(tr.Files)
	var totalNoSave, respWeighted float64
	var totalReq int64
	for ei, ep := range epochs {
		simRes, err := farm.Run(farm.Spec{
			Name:     fmt.Sprintf("reorg-epoch-%d", ei),
			Groups:   groups,
			Workload: farm.TraceWorkload(ep),
			Alloc:    farm.Explicit(assign),
			Spin:     spin,
		}, 0)
		if err != nil {
			return nil, fmt.Errorf("reorg: epoch %d: %w", ei, err)
		}
		report := EpochReport{
			Start:       float64(ei) * cfg.Epoch,
			End:         float64(ei)*cfg.Epoch + ep.Duration,
			Requests:    len(ep.Requests),
			Energy:      simRes.Energy,
			RespMean:    simRes.RespMean,
			SavingRatio: simRes.PowerSavingRatio,
			DisksUsed:   used,
		}
		res.Energy += simRes.Energy
		totalNoSave += simRes.NoSavingEnergy
		respWeighted += simRes.RespMean * float64(simRes.Completed)
		totalReq += simRes.Completed

		// Reorganize for the next epoch using this epoch's measured
		// rates.
		if !cfg.Static && ei+1 < len(epochs) {
			rates := ep.EmpiricalRates()
			for i := range rates {
				if rates[i] < cfg.MinRate {
					rates[i] = cfg.MinRate
				}
			}
			var next []int
			var nextUsed int
			switch {
			case cfg.Adaptive:
				chosen, err := chooseCandidate(ep, groups, spin, assign, used, estimates, rates, tr.Files, farmSize, cfg, simRes.Energy)
				if err != nil {
					return nil, fmt.Errorf("reorg: candidate sweep after epoch %d: %w", ei, err)
				}
				next, nextUsed, estimates = chosen.assign, chosen.used, chosen.est
				report.Choice = chosen.name
			case cfg.Incremental:
				next, nextUsed, estimates = incrementalRepack(assign, estimates, rates, tr.Files, cfg, farmSize)
			default:
				next, nextUsed, err = fullRepack(assign, used, rates, tr.Files, farmSize, cfg)
				if err != nil {
					return nil, fmt.Errorf("reorg: repacking after epoch %d: %w", ei, err)
				}
				estimates = rates
			}
			moved, bytes := diffAssignments(assign, next, tr.Files)
			report.MigratedFiles = moved
			report.MigratedBytes = bytes
			report.MigrationTime, report.MigrationEnergy = migrationCost(bytes, cfg.DiskParams)
			res.MigrationEnergy += report.MigrationEnergy
			res.Energy += report.MigrationEnergy
			res.MigratedBytes += bytes
			assign, used = next, nextUsed
		}
		res.Epochs = append(res.Epochs, report)
	}
	if totalReq > 0 {
		res.RespMean = respWeighted / float64(totalReq)
	}
	if totalNoSave > 0 {
		res.SavingRatio = 1 - res.Energy/totalNoSave
	}
	return res, nil
}

// splitEpochs cuts the trace into epoch-long sub-traces with times
// rebased to zero.
func splitEpochs(tr *trace.Trace, epoch float64) []*trace.Trace {
	var out []*trace.Trace
	n := int(math.Ceil(tr.Duration / epoch))
	ri := 0
	for k := 0; k < n; k++ {
		start := float64(k) * epoch
		end := math.Min(start+epoch, tr.Duration)
		sub := &trace.Trace{Files: tr.Files, Duration: end - start}
		for ri < len(tr.Requests) && tr.Requests[ri].Time < end {
			sub.Requests = append(sub.Requests,
				trace.Request{Time: tr.Requests[ri].Time - start, FileID: tr.Requests[ri].FileID})
			ri++
		}
		out = append(out, sub)
	}
	return out
}

func ratesOf(files []trace.FileInfo) []float64 {
	rates := make([]float64, len(files))
	for i, f := range files {
		rates[i] = f.Rate
	}
	return rates
}

func packWithRates(files []trace.FileInfo, rates []float64, cfg Config) ([]int, int, error) {
	sizes := make([]int64, len(files))
	for i, f := range files {
		sizes[i] = f.Size
	}
	items, err := core.BuildItems(sizes, rates, cfg.DiskParams.ServiceTime, cfg.DiskParams.CapacityBytes, cfg.CapL)
	if err != nil {
		return nil, 0, err
	}
	var a *core.Assignment
	if cfg.V > 1 {
		a, err = core.PackDisksV(items, cfg.V)
	} else {
		a, err = core.PackDisks(items)
	}
	if err != nil {
		return nil, 0, err
	}
	return a.DiskOf, a.NumDisks, nil
}

// fullRepack packs the files on the measured rates and relabels the
// result against the current allocation. Pack_Disks numbers disks
// arbitrarily, so the new packing is renamed to maximize byte overlap
// with the old one — only genuinely re-placed files migrate. A packing
// that outgrows the farm falls back to keeping the current allocation
// (the farm size cannot grow mid-run).
func fullRepack(assign []int, used int, rates []float64, files []trace.FileInfo, farmSize int, cfg Config) ([]int, int, error) {
	next, nextUsed, err := packWithRates(files, rates, cfg)
	if err != nil {
		return nil, 0, err
	}
	if nextUsed > farmSize {
		return assign, used, nil
	}
	return RelabelForOverlap(assign, next, files, farmSize), nextUsed, nil
}

// candidate is one next-allocation proposal of adaptive mode.
type candidate struct {
	name   string
	assign []int
	used   int
	est    []float64
}

// chooseCandidate implements adaptive mode's per-epoch decision: the
// candidate allocations — keep, incremental repack, full repack — are
// replayed against the finished epoch through a parallel farm.Sweep,
// each charged its migration bill, and the cheapest wins. Replaying the
// last epoch is the same hindsight estimate the repacking itself rests
// on: the measured rates predict the next epoch. The keep candidate's
// replay is exactly the epoch simulation the caller already ran
// (farm.Run is pure), so its energy is passed in rather than recomputed
// — and any candidate that moves no files shares it. Ties keep the
// earlier (cheaper-to-adopt) candidate, so a drift-free epoch migrates
// nothing.
func chooseCandidate(ep *trace.Trace, groups []farm.DiskGroup, spin farm.SpinSpec,
	assign []int, used int, estimates, rates []float64,
	files []trace.FileInfo, farmSize int, cfg Config, keepEnergy float64) (candidate, error) {

	cands := []candidate{{name: "keep", assign: assign, used: used, est: estimates}}
	incAssign, incUsed, incEst := incrementalRepack(assign, estimates, rates, files, cfg, farmSize)
	cands = append(cands, candidate{name: "incremental", assign: incAssign, used: incUsed, est: incEst})
	fullAssign, fullUsed, err := fullRepack(assign, used, rates, files, farmSize, cfg)
	if err != nil {
		return candidate{}, err
	}
	cands = append(cands, candidate{name: "full-repack", assign: fullAssign, used: fullUsed, est: rates})

	migrations := make([]float64, len(cands))
	var toRun []int
	for i := range cands {
		_, bytes := diffAssignments(assign, cands[i].assign, files)
		_, migrations[i] = migrationCost(bytes, cfg.DiskParams)
		if i > 0 && bytes > 0 {
			toRun = append(toRun, i)
		}
	}
	scores := make([]float64, len(cands))
	for i := range scores {
		scores[i] = keepEnergy + migrations[i] // overwritten below for re-placed candidates
	}
	if len(toRun) > 0 {
		labels := make([]string, len(toRun))
		assigns := make([][]int, len(toRun))
		for k, i := range toRun {
			labels[k] = cands[i].name
			assigns[k] = cands[i].assign
		}
		// An explicit-alloc axis rather than a custom one: the maps
		// serialize, so the sweep can leave the process (Config.
		// SweepRunner may point it at a coordinator pool).
		sweep := farm.Sweep{
			Name: "reorg-candidates",
			Base: farm.Spec{Groups: groups, Workload: farm.TraceWorkload(ep), Spin: spin},
			Axes: []farm.Axis{{Name: "candidate", Kind: farm.AxisExplicitAlloc,
				Labels: labels, Assigns: assigns}},
		}
		runSweep := cfg.SweepRunner
		if runSweep == nil {
			runSweep = farm.RunSweep
		}
		res, err := runSweep(sweep, 0, cfg.Workers)
		if err != nil {
			return candidate{}, err
		}
		for k, i := range toRun {
			scores[i] = res.Points[k].Metrics.Energy + migrations[i]
		}
	}
	best, bestScore := 0, math.Inf(1)
	for i, score := range scores {
		if score < bestScore {
			best, bestScore = i, score
		}
	}
	return cands[best], nil
}

// migrationCost models moving bytes between disks — a read at the
// source plus a write at the target, both at the drive's transfer rate
// and active power — returning the total disk busy time and energy.
// Run's accounting and chooseCandidate's scoring must share this bill.
func migrationCost(bytes int64, p disk.Params) (busyTime, energy float64) {
	perDisk := float64(bytes) / p.TransferRate
	return 2 * perDisk, 2 * perDisk * p.ActivePower
}

// diffAssignments counts files whose disk changes and their bytes.
func diffAssignments(old, new []int, files []trace.FileInfo) (moved int, bytes int64) {
	for i := range old {
		if old[i] != new[i] {
			moved++
			bytes += files[i].Size
		}
	}
	return moved, bytes
}

// incrementalRepack implements the paper's Section 6 migration rule:
// files whose measured rate deviates from the packing-time estimate by
// more than DeviationFactor are pulled off their disks and re-placed
// first-fit-decreasing (by new load) into disks with both size and
// load slack; everything else stays put. Files that fit nowhere keep
// their old placement. Returns the new assignment, the number of disks
// in use, and the updated estimates (deviants adopt their measured
// rates).
func incrementalRepack(assign []int, est, measured []float64, files []trace.FileInfo, cfg Config, farm int) ([]int, int, []float64) {
	p := cfg.DiskParams
	capS := float64(p.CapacityBytes)
	loadOf := func(i int, rate float64) float64 {
		return rate * p.ServiceTime(files[i].Size) / cfg.CapL
	}
	sizes := make([]float64, farm)
	loads := make([]float64, farm)
	for i, d := range assign {
		sizes[d] += float64(files[i].Size) / capS
		loads[d] += loadOf(i, measured[i])
	}
	newEst := append([]float64(nil), est...)
	var deviants []int
	for i := range files {
		e, m := est[i], measured[i]
		if e < cfg.MinRate {
			e = cfg.MinRate
		}
		ratioDeviant := m > e*cfg.DeviationFactor || m < e/cfg.DeviationFactor
		// Only deviations that move a material amount of load justify
		// a migration; cold-file noise (one request vs none) does not.
		delta := loadOf(i, m) - loadOf(i, e)
		if delta < 0 {
			delta = -delta
		}
		if ratioDeviant && delta >= cfg.MinLoadDelta {
			deviants = append(deviants, i)
			newEst[i] = measured[i]
		}
	}
	// Pull deviants off their disks.
	next := append([]int(nil), assign...)
	for _, i := range deviants {
		d := assign[i]
		sizes[d] -= float64(files[i].Size) / capS
		loads[d] -= loadOf(i, measured[i])
	}
	// Re-place heaviest new load first.
	sort.SliceStable(deviants, func(a, b int) bool {
		return loadOf(deviants[a], measured[deviants[a]]) > loadOf(deviants[b], measured[deviants[b]])
	})
	const eps = 1e-9
	for _, i := range deviants {
		s := float64(files[i].Size) / capS
		l := loadOf(i, measured[i])
		placed := -1
		for d := 0; d < farm; d++ {
			if sizes[d]+s <= 1+eps && loads[d]+l <= 1+eps {
				placed = d
				break
			}
		}
		if placed < 0 {
			placed = assign[i] // nowhere better: stay put
		}
		next[i] = placed
		sizes[placed] += s
		loads[placed] += l
	}
	used := 0
	for _, d := range next {
		if d+1 > used {
			used = d + 1
		}
	}
	return next, used, newEst
}

// RelabelForOverlap renames the disks of the new packing to maximize
// the bytes that stay in place: a greedy maximum-overlap matching
// between new and old disk contents. The packing itself (which files
// share a disk) is unchanged — only its disk numbering. Exported
// because the online rate-respec controller (internal/control) does
// the same migration-minimizing relabel before swapping a live
// allocation.
func RelabelForOverlap(old, new []int, files []trace.FileInfo, farm int) []int {
	type pair struct {
		newDisk, oldDisk int
		bytes            int64
	}
	overlap := make(map[[2]int]int64)
	maxNew := 0
	for i := range files {
		overlap[[2]int{new[i], old[i]}] += files[i].Size
		if new[i] > maxNew {
			maxNew = new[i]
		}
	}
	pairs := make([]pair, 0, len(overlap))
	for k, b := range overlap {
		pairs = append(pairs, pair{k[0], k[1], b})
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].bytes != pairs[b].bytes {
			return pairs[a].bytes > pairs[b].bytes
		}
		if pairs[a].newDisk != pairs[b].newDisk {
			return pairs[a].newDisk < pairs[b].newDisk
		}
		return pairs[a].oldDisk < pairs[b].oldDisk
	})
	mapping := make([]int, maxNew+1)
	for i := range mapping {
		mapping[i] = -1
	}
	usedOld := make([]bool, farm)
	for _, p := range pairs {
		if mapping[p.newDisk] == -1 && p.oldDisk < farm && !usedOld[p.oldDisk] {
			mapping[p.newDisk] = p.oldDisk
			usedOld[p.oldDisk] = true
		}
	}
	// Unmatched new disks take any free old label.
	free := 0
	for nd := range mapping {
		if mapping[nd] != -1 {
			continue
		}
		for free < farm && usedOld[free] {
			free++
		}
		if free < farm {
			mapping[nd] = free
			usedOld[free] = true
		} else {
			mapping[nd] = nd // farm overflow guarded by caller
		}
	}
	out := make([]int, len(new))
	for i, d := range new {
		out[i] = mapping[d]
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
