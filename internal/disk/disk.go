// Package disk models a single hard disk drive with the multi-mode
// power behaviour the paper simulates (Figure 1, Table 2): active
// read/write, seek, idle, standby, and the timed spin-up / spin-down
// transitions between them, plus the fixed idleness-threshold spin-down
// policy used by MAID-style systems.
//
// The default parameter set is the Seagate ST3500630AS (Barracuda
// 7200.10) exactly as listed in the paper's Table 2. With those numbers
// the break-even idleness threshold — the standby duration whose power
// saving repays one spin-down + spin-up cycle — evaluates to 53.3 s,
// matching the paper.
package disk

import (
	"fmt"
	"math"

	"diskpack/internal/obs"
	"diskpack/internal/sim"
)

// Params describes a disk drive's performance and power envelope.
// All times are seconds, powers are watts, sizes are bytes, and
// TransferRate is bytes per second.
type Params struct {
	Model           string
	RotationalRPM   int
	AvgSeekTime     float64
	AvgRotationTime float64
	CapacityBytes   int64
	TransferRate    float64
	IdlePower       float64
	StandbyPower    float64
	ActivePower     float64
	SeekPower       float64
	SpinUpPower     float64
	SpinDownPower   float64
	SpinUpTime      float64
	SpinDownTime    float64
}

// MB and GB are decimal byte units, matching the disk-vendor convention
// the paper uses (72 MB/s transfer, 188 MB minimum file size, ...).
const (
	KB = 1000
	MB = 1000 * KB
	GB = 1000 * MB
	TB = 1000 * GB
)

// DefaultParams returns the Seagate ST3500630AS parameters from the
// paper's Table 2.
func DefaultParams() Params {
	return Params{
		Model:           "Seagate ST3500630AS",
		RotationalRPM:   7200,
		AvgSeekTime:     8.5e-3,
		AvgRotationTime: 4.16e-3,
		CapacityBytes:   500 * GB,
		TransferRate:    72 * MB,
		IdlePower:       9.3,
		StandbyPower:    0.8,
		ActivePower:     13,
		SeekPower:       12.6,
		SpinUpPower:     24,
		SpinDownPower:   9.3,
		SpinUpTime:      15,
		SpinDownTime:    10,
	}
}

// EcoParams returns a 5400 RPM nearline-class drive: bigger and far
// cheaper to keep spinning than the Table 2 drive, but slower to
// position and transfer. Mixing these with DefaultParams drives in one
// farm is the heterogeneous scenario the paper's homogeneous evaluation
// cannot express — cold data on eco spindles, hot data on fast ones.
func EcoParams() Params {
	return Params{
		Model:           "Eco 5400rpm nearline",
		RotationalRPM:   5400,
		AvgSeekTime:     12e-3,
		AvgRotationTime: 5.55e-3,
		CapacityBytes:   1 * TB,
		TransferRate:    45 * MB,
		IdlePower:       5.0,
		StandbyPower:    0.6,
		ActivePower:     8.0,
		SeekPower:       7.5,
		SpinUpPower:     20,
		SpinDownPower:   5.0,
		SpinUpTime:      12,
		SpinDownTime:    8,
	}
}

// Validate reports the first implausible parameter, or nil.
func (p Params) Validate() error {
	switch {
	case p.TransferRate <= 0:
		return fmt.Errorf("disk: TransferRate %v must be positive", p.TransferRate)
	case p.CapacityBytes <= 0:
		return fmt.Errorf("disk: CapacityBytes %d must be positive", p.CapacityBytes)
	case p.AvgSeekTime < 0 || p.AvgRotationTime < 0:
		return fmt.Errorf("disk: negative positioning time")
	case p.SpinUpTime < 0 || p.SpinDownTime < 0:
		return fmt.Errorf("disk: negative transition time")
	case p.IdlePower < 0 || p.StandbyPower < 0 || p.ActivePower < 0 ||
		p.SeekPower < 0 || p.SpinUpPower < 0 || p.SpinDownPower < 0:
		return fmt.Errorf("disk: negative power")
	case p.StandbyPower > p.IdlePower:
		return fmt.Errorf("disk: standby power %v exceeds idle power %v — spin-down would never save energy",
			p.StandbyPower, p.IdlePower)
	}
	return nil
}

// PositioningTime returns the average positioning overhead per request
// (seek + rotational latency).
func (p Params) PositioningTime() float64 { return p.AvgSeekTime + p.AvgRotationTime }

// TransferTime returns the time to stream size bytes at the sustained
// rate.
func (p Params) TransferTime(size int64) float64 {
	return float64(size) / p.TransferRate
}

// ServiceTime returns positioning plus transfer time for a whole-file
// read of size bytes; this is the µ_i = f(s_i) of the paper's load
// definition l_i = R·p_i·µ_i.
func (p Params) ServiceTime(size int64) float64 {
	return p.PositioningTime() + p.TransferTime(size)
}

// TransitionEnergy returns the energy in joules consumed by one
// spin-down followed by one spin-up.
func (p Params) TransitionEnergy() float64 {
	return p.SpinDownPower*p.SpinDownTime + p.SpinUpPower*p.SpinUpTime
}

// BreakEvenThreshold returns the idleness threshold used by the paper
// (after Pinheiro & Bianchini): the time the disk must remain in standby
// for the idle-vs-standby power difference to pay back one
// spin-down+spin-up cycle. For Table 2 parameters this is
// (9.3·10 + 24·15) / (9.3 − 0.8) = 453/8.5 = 53.29… ≈ 53.3 s.
func (p Params) BreakEvenThreshold() float64 {
	saving := p.IdlePower - p.StandbyPower
	if saving <= 0 {
		return math.Inf(1)
	}
	return p.TransitionEnergy() / saving
}

// State enumerates the power states of the simulated drive.
type State int

// Disk power states. Seeking covers seek + rotational positioning (at
// seek power); Transferring is the sustained read (at active power).
const (
	Idle State = iota
	Standby
	SpinningUp
	SpinningDown
	Seeking
	Transferring
	numStates
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Idle:
		return "idle"
	case Standby:
		return "standby"
	case SpinningUp:
		return "spinup"
	case SpinningDown:
		return "spindown"
	case Seeking:
		return "seek"
	case Transferring:
		return "active"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Power returns the wattage drawn in state s under params p.
func (p Params) Power(s State) float64 {
	switch s {
	case Idle:
		return p.IdlePower
	case Standby:
		return p.StandbyPower
	case SpinningUp:
		return p.SpinUpPower
	case SpinningDown:
		return p.SpinDownPower
	case Seeking:
		return p.SeekPower
	case Transferring:
		return p.ActivePower
	default:
		panic(fmt.Sprintf("disk: unknown state %d", int(s)))
	}
}

// NeverSpinDown disables the spin-down policy when used as the idleness
// threshold: the disk idles at full idle power forever, which is the
// paper's "no power-saving mechanism" normalization baseline.
var NeverSpinDown = math.Inf(1)

// SpinPolicy decides how long a disk dwells in the idle state before
// spinning down. The paper uses a fixed break-even threshold (Section
// 4, after Pinheiro & Bianchini); the dynamic-power-management
// literature it surveys (Section 2) studies adaptive and randomized
// timeout policies, implemented in internal/policy.
type SpinPolicy interface {
	// Timeout returns the idleness timeout in seconds to use for the
	// next idle period. math.Inf(1) means never spin down; 0 means
	// spin down immediately.
	Timeout() float64
	// ObserveIdle reports the length of a completed idle gap — the
	// time from entering idle (service completion) to the next
	// request arrival — letting adaptive policies learn. Gaps that
	// are still open when the simulation ends are not reported.
	ObserveIdle(gap float64)
}

// fixedPolicy is the paper's fixed idleness threshold.
type fixedPolicy float64

func (f fixedPolicy) Timeout() float64  { return float64(f) }
func (fixedPolicy) ObserveIdle(float64) {}

// Request is a whole-file read submitted to a disk. Done, if non-nil,
// runs at completion time with the request itself; response time is
// completion minus Arrival (queueing + spin-up penalty + service).
// Callers that pool Requests may recycle the struct from inside Done —
// the disk holds no reference past that call.
type Request struct {
	FileID  int
	Size    int64
	Arrival sim.Time
	Done    func(*Request, sim.Time)

	// Tag is caller-owned context carried through to Done (the storage
	// layer stores the disk index here so one shared Done function can
	// serve every request without a per-request closure).
	Tag int

	// ServiceStart records when the disk began positioning for this
	// request, for wait-time decomposition.
	ServiceStart sim.Time
}

// Disk is a simulated drive bound to a sim.Env. Submit requests with
// Submit; spin-down policy, queueing, and energy accounting are
// internal. Metrics accessors are valid any time; call Finalize once at
// the end of the run to close the last accounting segment.
type Disk struct {
	ID     int
	env    *sim.Env
	params Params
	policy SpinPolicy

	state      State
	lastChange sim.Time
	idleSince  sim.Time // start of the current idle gap
	inGap      bool
	energy     float64
	stateDur   [numStates]float64

	queue     []*Request // head-indexed deque: live entries are queue[qhead:]
	qhead     int
	idleTimer sim.Event
	wantUp    bool // a request arrived while spinning down

	spinUps   int
	spinDowns int
	served    int64
	bytesRead int64
	peakQueue int
	finalized bool

	// rec, when non-nil, receives every state transition (observation
	// only — tracing never alters behaviour). The nil check is the
	// entire disabled-path cost.
	rec *obs.TraceRecorder
}

// New returns a disk in the Idle (spinning) state with its idleness
// timer armed, matching the paper's simulation start condition.
// threshold is the fixed idleness threshold in seconds; use
// params.BreakEvenThreshold() for the paper's policy or NeverSpinDown to
// disable spin-down. New panics on invalid params or negative threshold.
func New(env *sim.Env, id int, params Params, threshold float64) *Disk {
	if threshold < 0 || math.IsNaN(threshold) {
		panic(fmt.Sprintf("disk: invalid idleness threshold %v", threshold))
	}
	return NewWithPolicy(env, id, params, fixedPolicy(threshold))
}

// NewWithPolicy returns a disk whose spin-down timing is governed by an
// arbitrary SpinPolicy (see internal/policy for adaptive and randomized
// implementations).
func NewWithPolicy(env *sim.Env, id int, params Params, pol SpinPolicy) *Disk {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	if pol == nil {
		panic("disk: nil SpinPolicy")
	}
	d := &Disk{
		ID:         id,
		env:        env,
		params:     params,
		policy:     pol,
		state:      Idle,
		lastChange: env.Now(),
		idleSince:  env.Now(),
		inGap:      true,
	}
	d.armIdleTimer()
	return d
}

// SetRecorder attaches a state-timeline recorder (nil detaches). The
// disk's current state is recorded as the timeline's opening segment,
// so attach at construction time, before any simulated time passes.
func (d *Disk) SetRecorder(r *obs.TraceRecorder) {
	d.rec = r
	if r != nil {
		r.StateChange(d.ID, float64(d.env.Now()), int(d.state))
	}
}

// StateNames returns the State display names indexed by state value
// (the vocabulary trace timelines are rendered with).
func StateNames() []string {
	names := make([]string, numStates)
	for s := State(0); s < numStates; s++ {
		names[s] = s.String()
	}
	return names
}

// Params returns the drive parameters.
func (d *Disk) Params() Params { return d.params }

// State returns the current power state.
func (d *Disk) State() State { return d.state }

// QueueLen returns the number of requests waiting or in service.
func (d *Disk) QueueLen() int { return len(d.queue) - d.qhead }

// Served returns the number of completed requests.
func (d *Disk) Served() int64 { return d.served }

// BytesRead returns the total bytes transferred.
func (d *Disk) BytesRead() int64 { return d.bytesRead }

// SpinUps returns the number of spin-up transitions performed.
func (d *Disk) SpinUps() int { return d.spinUps }

// SpinDowns returns the number of spin-down transitions performed.
func (d *Disk) SpinDowns() int { return d.spinDowns }

// PeakQueueLen returns the largest queue length observed (including the
// request in service).
func (d *Disk) PeakQueueLen() int { return d.peakQueue }

// Submit enqueues a whole-file read. If the disk is in standby it begins
// spinning up; if it is mid-spin-down the spin-down completes first and
// a spin-up follows immediately (a drive cannot abort a spin-down).
func (d *Disk) Submit(req *Request) {
	if d.finalized {
		panic("disk: Submit after Finalize")
	}
	if d.inGap {
		// The idle gap that began at the last service completion ends
		// now; adaptive policies learn from its length.
		d.policy.ObserveIdle(d.env.Now() - d.idleSince)
		d.inGap = false
	}
	if d.qhead > 0 && len(d.queue) == cap(d.queue) {
		// Reclaim the dequeued prefix instead of growing: the queue is a
		// head-indexed deque precisely so steady-state traffic reuses one
		// backing array (a [1:] re-slice leaks its front capacity and
		// reallocates every ~cap requests).
		n := copy(d.queue, d.queue[d.qhead:])
		for i := n; i < len(d.queue); i++ {
			d.queue[i] = nil
		}
		d.queue = d.queue[:n]
		d.qhead = 0
	}
	d.queue = append(d.queue, req)
	if d.QueueLen() > d.peakQueue {
		d.peakQueue = d.QueueLen()
	}
	switch d.state {
	case Idle:
		d.cancelIdleTimer()
		d.startNext()
	case Standby:
		d.beginSpinUp()
	case SpinningDown:
		d.wantUp = true
	case SpinningUp, Seeking, Transferring:
		// Queued; the in-flight transition or service will drain it.
	}
}

// transition moves to state s, charging the elapsed segment to the
// previous state.
func (d *Disk) transition(s State) {
	now := d.env.Now()
	dt := now - d.lastChange
	d.energy += d.params.Power(d.state) * dt
	d.stateDur[d.state] += dt
	if d.rec != nil && s != d.state {
		d.rec.StateChange(d.ID, float64(now), int(s))
	}
	d.state = s
	d.lastChange = now
}

// enterIdle transitions to Idle with an empty queue, opening a new
// idle gap and arming the policy's timeout.
func (d *Disk) enterIdle() {
	d.transition(Idle)
	d.idleSince = d.env.Now()
	d.inGap = true
	d.armIdleTimer()
}

// Event callbacks are package-level functions taking the disk as the
// boxed argument: sim.ScheduleArg with a static func and a pointer arg
// performs no per-event allocation, unlike method values or closures.
func idleTimeoutCB(a any)  { a.(*Disk).onIdleTimeout() }
func spinDownDoneCB(a any) { a.(*Disk).onSpinDownComplete() }
func spinUpDoneCB(a any)   { a.(*Disk).onSpinUpComplete() }
func seekDoneCB(a any)     { a.(*Disk).onSeekDone() }
func transferDoneCB(a any) { a.(*Disk).onTransferDone() }

func (d *Disk) armIdleTimer() {
	t := d.policy.Timeout()
	if math.IsInf(t, 1) {
		return
	}
	if t < 0 || math.IsNaN(t) {
		panic(fmt.Sprintf("disk: policy returned invalid timeout %v", t))
	}
	d.idleTimer = d.env.ScheduleArg(t, idleTimeoutCB, d)
}

func (d *Disk) cancelIdleTimer() {
	d.idleTimer.Cancel()
}

func (d *Disk) onIdleTimeout() {
	if d.state != Idle || d.QueueLen() > 0 {
		return
	}
	d.transition(SpinningDown)
	d.spinDowns++
	d.env.ScheduleArg(d.params.SpinDownTime, spinDownDoneCB, d)
}

func (d *Disk) onSpinDownComplete() {
	if d.wantUp || d.QueueLen() > 0 {
		d.wantUp = false
		// Charge the completed spin-down segment, then immediately
		// start spinning back up.
		d.beginSpinUp()
		return
	}
	d.transition(Standby)
}

func (d *Disk) beginSpinUp() {
	d.transition(SpinningUp)
	d.spinUps++
	d.env.ScheduleArg(d.params.SpinUpTime, spinUpDoneCB, d)
}

func (d *Disk) onSpinUpComplete() {
	if d.QueueLen() > 0 {
		d.startNext()
		return
	}
	d.enterIdle()
}

// startNext begins servicing the queue head. Caller guarantees the disk
// is spinning (Idle or just finished SpinningUp/Transferring). The
// in-service request stays at the queue head until completion (FIFO
// single-server), so the seek and transfer callbacks need no captured
// request — and therefore no closure.
func (d *Disk) startNext() {
	d.queue[d.qhead].ServiceStart = d.env.Now()
	d.transition(Seeking)
	d.env.ScheduleArg(d.params.PositioningTime(), seekDoneCB, d)
}

func (d *Disk) onSeekDone() {
	d.transition(Transferring)
	d.env.ScheduleArg(d.params.TransferTime(d.queue[d.qhead].Size), transferDoneCB, d)
}

func (d *Disk) onTransferDone() {
	req := d.queue[d.qhead]
	// Dequeue head (must be req: FIFO single-server).
	d.queue[d.qhead] = nil
	d.qhead++
	if d.qhead == len(d.queue) {
		d.queue = d.queue[:0]
		d.qhead = 0
	}
	d.served++
	d.bytesRead += req.Size
	if req.Done != nil {
		req.Done(req, d.env.Now())
	}
	if d.QueueLen() > 0 {
		d.startNext()
		return
	}
	d.enterIdle()
}

// Finalize closes the open accounting segment at the current simulated
// time. Further Submits panic; metrics accessors return final values.
// Calling Finalize more than once is a no-op after the first.
func (d *Disk) Finalize() {
	if d.finalized {
		return
	}
	d.transition(d.state) // charge the tail segment
	d.cancelIdleTimer()
	d.finalized = true
}

// Energy returns the energy consumed so far in joules (up to the last
// state change; call Finalize for an exact end-of-run figure).
func (d *Disk) Energy() float64 { return d.energy }

// EnergyAt returns the energy consumed through simulated time t >= the
// last state change, extending the current state.
func (d *Disk) EnergyAt(t sim.Time) float64 {
	return d.energy + d.params.Power(d.state)*(t-d.lastChange)
}

// StateDuration returns the cumulative time spent in state s (up to the
// last state change).
func (d *Disk) StateDuration(s State) float64 { return d.stateDur[s] }

// StateDurationAt returns the cumulative time spent in state s through
// simulated time t >= the last state change, extending the open segment
// — the mid-run counterpart of StateDuration, which misses the segment
// still in progress.
func (d *Disk) StateDurationAt(s State, t sim.Time) float64 {
	dur := d.stateDur[s]
	if d.state == s {
		dur += t - d.lastChange
	}
	return dur
}

// Breakdown summarizes where a disk's time and energy went.
type Breakdown struct {
	Durations [numStates]float64
	Energy    float64
	SpinUps   int
	SpinDowns int
	Served    int64
	BytesRead int64
}

// Breakdown returns the current accounting snapshot.
func (d *Disk) Breakdown() Breakdown {
	return Breakdown{
		Durations: d.stateDur,
		Energy:    d.energy,
		SpinUps:   d.spinUps,
		SpinDowns: d.spinDowns,
		Served:    d.served,
		BytesRead: d.bytesRead,
	}
}
