package disk

import (
	"fmt"
	"math"
	"math/rand"
)

// Spin-cycle wear model. The paper's energy/response trade-off is
// silent about the third axis: every spin-down/spin-up cycle consumes
// part of the drive's rated start/stop life, and powered-on hours
// consume the rest. This file models that as a deterministic hazard
// process so reliability is — like everything else in the simulator —
// a pure function of (spec, seed).
//
// The hazard of a disk after c start/stop cycles and h powered-on
// hours is
//
//	H(c, h) = h·hb + c·(CycleWear/RatedCycles)
//
// where hb = −ln(1−BaseAFR)/8760 is the hourly base hazard implied by
// the drive's spec-sheet annual failure rate. A disk fails when its
// accumulated hazard crosses an Exp(1)-distributed threshold drawn
// from a per-disk seeded stream (inverse-transform sampling of an
// inhomogeneous Poisson process). The draw is fixed at construction,
// so whether and when a disk fails depends only on its own trajectory
// — never on shard layout or worker count.

// WearParams parameterizes the spin-cycle wear model of a drive.
type WearParams struct {
	// RatedCycles is the drive's rated start/stop cycle count
	// (50,000 for the reference Seagate drive).
	RatedCycles float64
	// BaseAFR is the annual failure rate of a drive that spins 24/7
	// and never cycles — the spec-sheet AFR (0.34% for the reference
	// drive).
	BaseAFR float64
	// CycleWear is the cumulative hazard consumed by RatedCycles
	// start/stop cycles. At the default 1.0, a drive that spends its
	// whole rated cycle life has survival probability e^−1 ≈ 37%
	// from cycling alone.
	CycleWear float64
}

// DefaultWear returns the wear model of the reference drive
// (Seagate ST3500630AS): 50,000 rated start/stop cycles, 0.34%
// spec-sheet AFR.
func DefaultWear() WearParams {
	return WearParams{RatedCycles: 50000, BaseAFR: 0.0034, CycleWear: 1.0}
}

// normalized fills zero fields with the reference-drive defaults.
func (w WearParams) normalized() WearParams {
	d := DefaultWear()
	if w.RatedCycles == 0 {
		w.RatedCycles = d.RatedCycles
	}
	if w.BaseAFR == 0 {
		w.BaseAFR = d.BaseAFR
	}
	if w.CycleWear == 0 {
		w.CycleWear = d.CycleWear
	}
	return w
}

// Validate rejects non-physical wear parameters. Zero fields are
// allowed (they mean "use the reference-drive default").
func (w WearParams) Validate() error {
	if w.RatedCycles < 0 || math.IsNaN(w.RatedCycles) || math.IsInf(w.RatedCycles, 0) {
		return fmt.Errorf("disk: rated cycles %v must be positive", w.RatedCycles)
	}
	if w.BaseAFR < 0 || w.BaseAFR >= 1 || math.IsNaN(w.BaseAFR) {
		return fmt.Errorf("disk: base AFR %v must be in [0, 1)", w.BaseAFR)
	}
	if w.CycleWear < 0 || math.IsNaN(w.CycleWear) || math.IsInf(w.CycleWear, 0) {
		return fmt.Errorf("disk: cycle wear %v must be non-negative", w.CycleWear)
	}
	return nil
}

// BaseHazardPerHour is the hourly hazard implied by BaseAFR.
func (w WearParams) BaseHazardPerHour() float64 {
	w = w.normalized()
	return -math.Log(1-w.BaseAFR) / 8760
}

// CycleHazard is the hazard one start/stop cycle consumes.
func (w WearParams) CycleHazard() float64 {
	w = w.normalized()
	return w.CycleWear / w.RatedCycles
}

// Hazard is the cumulative hazard of a disk after cycles start/stop
// cycles and poweredHours powered-on (non-standby) hours.
func (w WearParams) Hazard(cycles, poweredHours float64) float64 {
	return poweredHours*w.BaseHazardPerHour() + cycles*w.CycleHazard()
}

// AFR extrapolates an observed duty profile — start/stop cycles per
// day and powered-on fraction — to the modeled annual failure rate:
// 1 − exp(−H(365·cyclesPerDay, 8760·poweredFrac)). This is the
// smooth, deterministic figure sweeps and selectors compare; the
// sampled failure process realizes the same hazard.
func (w WearParams) AFR(cyclesPerDay, poweredFrac float64) float64 {
	h := w.Hazard(cyclesPerDay*365, poweredFrac*8760)
	return 1 - math.Exp(-h)
}

// FailureProcess is one disk's sampled failure clock: an Exp(1)
// threshold the disk's accumulated hazard races against. The stream
// is seeded per (seed, disk), so the realization is a pure function
// of the run inputs and independent of shard layout.
type FailureProcess struct {
	rng  *rand.Rand
	base float64 // hazard already consumed by replaced drives
	next float64 // Exp(1) threshold of the current drive
}

// NewFailureProcess seeds disk diskID's failure clock.
func NewFailureProcess(seed int64, diskID int) *FailureProcess {
	const golden = int64(-0x61C8864680B583EB) // 2^64 / φ as a signed constant
	mixed := seed + int64(diskID+1)*golden
	f := &FailureProcess{rng: rand.New(rand.NewSource(mixed))}
	f.next = f.rng.ExpFloat64()
	return f
}

// Crossed reports whether the drive has failed by the time its
// cumulative hazard reaches hazard.
func (f *FailureProcess) Crossed(hazard float64) bool {
	return hazard-f.base >= f.next
}

// Replace models swapping in a fresh replacement drive at the given
// cumulative hazard: the consumed hazard is written off and a new
// Exp(1) threshold is drawn for the new spindle.
func (f *FailureProcess) Replace(hazard float64) {
	f.base = hazard
	f.next = f.rng.ExpFloat64()
}
