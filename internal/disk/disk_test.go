package disk

import (
	"math"
	"testing"

	"diskpack/internal/sim"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestBreakEvenThresholdMatchesPaper verifies the headline constant of
// the paper's Table 2: the ST3500630AS break-even idleness threshold is
// 53.3 seconds.
func TestBreakEvenThresholdMatchesPaper(t *testing.T) {
	p := DefaultParams()
	got := p.BreakEvenThreshold()
	if !almostEq(got, 53.3, 0.05) {
		t.Fatalf("break-even threshold = %.4f s, paper says 53.3 s", got)
	}
	// And the intermediate quantities used in the derivation.
	if e := p.TransitionEnergy(); !almostEq(e, 453, 1e-9) {
		t.Errorf("transition energy = %v J, want 453 J (9.3*10 + 24*15)", e)
	}
}

// TestServiceTimeMatchesPaperMeanFile checks the paper's Section 5.1
// arithmetic: a 544 MB file at 72 MB/s takes about 7.56 s of service.
func TestServiceTimeMatchesPaperMeanFile(t *testing.T) {
	p := DefaultParams()
	got := p.ServiceTime(544 * MB)
	if !almostEq(got, 7.56, 0.03) {
		t.Fatalf("service time for 544MB = %.4f s, paper says ~7.56 s", got)
	}
}

func TestDefaultParamsTable2(t *testing.T) {
	p := DefaultParams()
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"idle power", p.IdlePower, 9.3},
		{"standby power", p.StandbyPower, 0.8},
		{"active power", p.ActivePower, 13},
		{"seek power", p.SeekPower, 12.6},
		{"spinup power", p.SpinUpPower, 24},
		{"spindown power", p.SpinDownPower, 9.3},
		{"spinup time", p.SpinUpTime, 15},
		{"spindown time", p.SpinDownTime, 10},
		{"transfer rate", p.TransferRate, 72e6},
		{"capacity", float64(p.CapacityBytes), 500e9},
		{"avg seek", p.AvgSeekTime, 8.5e-3},
		{"avg rotation", p.AvgRotationTime, 4.16e-3},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %v want %v", c.name, c.got, c.want)
		}
	}
	if err := p.Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
}

func TestValidateCatchesBadParams(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.TransferRate = 0 },
		func(p *Params) { p.CapacityBytes = -1 },
		func(p *Params) { p.AvgSeekTime = -1 },
		func(p *Params) { p.SpinUpTime = -1 },
		func(p *Params) { p.IdlePower = -1 },
		func(p *Params) { p.StandbyPower = 100 }, // exceeds idle
	}
	for i, mutate := range cases {
		p := DefaultParams()
		mutate(&p)
		if p.Validate() == nil {
			t.Errorf("case %d: Validate accepted bad params", i)
		}
	}
}

func TestPowerPerState(t *testing.T) {
	p := DefaultParams()
	want := map[State]float64{
		Idle: 9.3, Standby: 0.8, SpinningUp: 24,
		SpinningDown: 9.3, Seeking: 12.6, Transferring: 13,
	}
	for s, w := range want {
		if got := p.Power(s); got != w {
			t.Errorf("Power(%v)=%v want %v", s, got, w)
		}
	}
}

func TestStateStrings(t *testing.T) {
	names := map[State]string{
		Idle: "idle", Standby: "standby", SpinningUp: "spinup",
		SpinningDown: "spindown", Seeking: "seek", Transferring: "active",
	}
	for s, w := range names {
		if s.String() != w {
			t.Errorf("State(%d).String()=%q want %q", int(s), s.String(), w)
		}
	}
}

// newDisk builds a disk with a fresh env for table-style tests.
func newDisk(threshold float64) (*sim.Env, *Disk) {
	env := sim.NewEnv()
	return env, New(env, 0, DefaultParams(), threshold)
}

func TestIdleDiskSpinsDownAfterThreshold(t *testing.T) {
	env, d := newDisk(60)
	env.RunUntil(59)
	if d.State() != Idle {
		t.Fatalf("state before threshold = %v want idle", d.State())
	}
	env.RunUntil(60 + DefaultParams().SpinDownTime - 0.001)
	if d.State() != SpinningDown {
		t.Fatalf("state during spin-down = %v", d.State())
	}
	env.RunUntil(60 + DefaultParams().SpinDownTime + 0.001)
	if d.State() != Standby {
		t.Fatalf("state after spin-down = %v want standby", d.State())
	}
	if d.SpinDowns() != 1 {
		t.Errorf("spinDowns=%d want 1", d.SpinDowns())
	}
}

func TestNeverSpinDownStaysIdle(t *testing.T) {
	env, d := newDisk(NeverSpinDown)
	env.RunUntil(100000)
	if d.State() != Idle {
		t.Fatalf("state=%v want idle forever", d.State())
	}
	d.Finalize()
	wantEnergy := 9.3 * 100000
	if !almostEq(d.Energy(), wantEnergy, 1e-6) {
		t.Errorf("energy=%v want %v", d.Energy(), wantEnergy)
	}
}

func TestRequestServiceFromIdle(t *testing.T) {
	env, d := newDisk(NeverSpinDown)
	p := DefaultParams()
	var completed sim.Time = -1
	env.Schedule(10, func() {
		d.Submit(&Request{FileID: 1, Size: 72 * MB, Arrival: env.Now(),
			Done: func(_ *Request, tDone sim.Time) { completed = tDone }})
	})
	env.Run()
	want := 10 + p.PositioningTime() + 1.0 // 72MB at 72MB/s = 1s transfer
	if !almostEq(completed, want, 1e-9) {
		t.Fatalf("completion=%v want %v", completed, want)
	}
	if d.Served() != 1 || d.BytesRead() != 72*MB {
		t.Errorf("served=%d bytes=%d", d.Served(), d.BytesRead())
	}
}

func TestRequestToStandbyDiskPaysSpinUp(t *testing.T) {
	env, d := newDisk(50)
	p := DefaultParams()
	var completed sim.Time = -1
	// Disk idles from t=0, spins down at t=50, standby at t=60.
	env.Schedule(100, func() {
		d.Submit(&Request{FileID: 1, Size: 72 * MB, Arrival: env.Now(),
			Done: func(_ *Request, tDone sim.Time) { completed = tDone }})
	})
	env.Run()
	want := 100 + p.SpinUpTime + p.PositioningTime() + 1.0
	if !almostEq(completed, want, 1e-9) {
		t.Fatalf("completion=%v want %v (spin-up penalty missing?)", completed, want)
	}
	if d.SpinUps() != 1 {
		t.Errorf("spinUps=%d want 1", d.SpinUps())
	}
}

func TestRequestDuringSpinDownWaitsForDownThenUp(t *testing.T) {
	env, d := newDisk(50)
	p := DefaultParams()
	var completed sim.Time = -1
	// Spin-down starts at t=50, ends t=60. Request at t=55 must wait
	// for the spin-down to complete, then a full spin-up.
	env.Schedule(55, func() {
		d.Submit(&Request{FileID: 1, Size: 72 * MB, Arrival: env.Now(),
			Done: func(_ *Request, tDone sim.Time) { completed = tDone }})
	})
	env.Run()
	want := 60 + p.SpinUpTime + p.PositioningTime() + 1.0
	if !almostEq(completed, want, 1e-9) {
		t.Fatalf("completion=%v want %v", completed, want)
	}
	if d.State() != Standby && d.State() != Idle && d.State() != SpinningDown {
		t.Logf("final state %v", d.State())
	}
}

func TestFIFOQueueing(t *testing.T) {
	env, d := newDisk(NeverSpinDown)
	p := DefaultParams()
	var order []int
	var times []sim.Time
	submit := func(id int) {
		d.Submit(&Request{FileID: id, Size: 72 * MB, Arrival: env.Now(),
			Done: func(r *Request, tDone sim.Time) {
				order = append(order, r.FileID)
				times = append(times, tDone)
			}})
	}
	env.Schedule(0, func() { submit(1); submit(2); submit(3) })
	env.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("completion order=%v want [1 2 3]", order)
	}
	per := p.PositioningTime() + 1.0
	for i, tt := range times {
		want := float64(i+1) * per
		if !almostEq(tt, want, 1e-9) {
			t.Errorf("completion %d at %v want %v", i, tt, want)
		}
	}
}

func TestArrivalDuringServiceQueues(t *testing.T) {
	env, d := newDisk(NeverSpinDown)
	var done2 sim.Time = -1
	env.Schedule(0, func() {
		d.Submit(&Request{FileID: 1, Size: 720 * MB, Arrival: 0}) // 10 s transfer
	})
	env.Schedule(1, func() {
		d.Submit(&Request{FileID: 2, Size: 72 * MB, Arrival: 1,
			Done: func(_ *Request, tDone sim.Time) { done2 = tDone }})
	})
	env.Run()
	p := DefaultParams()
	first := p.PositioningTime() + 10.0
	want := first + p.PositioningTime() + 1.0
	if !almostEq(done2, want, 1e-9) {
		t.Fatalf("second completion=%v want %v", done2, want)
	}
}

func TestIdleTimerResetAfterService(t *testing.T) {
	env, d := newDisk(50)
	env.Schedule(40, func() {
		d.Submit(&Request{FileID: 1, Size: 72 * MB, Arrival: 40})
	})
	env.Run()
	// Service ends ≈ 41.01; timer re-arms; spin-down at ≈ 91, standby
	// at ≈ 101.
	if d.State() != Standby {
		t.Fatalf("final state=%v want standby", d.State())
	}
	if d.SpinDowns() != 1 {
		t.Errorf("spinDowns=%d want 1", d.SpinDowns())
	}
	down := 40.0 + DefaultParams().PositioningTime() + 1.0 + 50.0
	if !almostEq(d.StateDuration(Idle), 40+50, 0.1) {
		t.Errorf("idle duration=%v want ~90 (until %v)", d.StateDuration(Idle), down)
	}
}

func TestEnergyAccountingSimpleTimeline(t *testing.T) {
	// threshold=10: idle [0,10), spindown [10,20), standby [20,100).
	env, d := newDisk(10)
	env.RunUntil(100)
	d.Finalize()
	want := 9.3*10 + 9.3*10 + 0.8*80
	if !almostEq(d.Energy(), want, 1e-6) {
		t.Fatalf("energy=%v want %v", d.Energy(), want)
	}
	if !almostEq(d.StateDuration(Idle), 10, 1e-9) ||
		!almostEq(d.StateDuration(SpinningDown), 10, 1e-9) ||
		!almostEq(d.StateDuration(Standby), 80, 1e-9) {
		t.Errorf("durations: idle=%v down=%v standby=%v",
			d.StateDuration(Idle), d.StateDuration(SpinningDown), d.StateDuration(Standby))
	}
}

func TestEnergyWithServiceBreakdown(t *testing.T) {
	env, d := newDisk(NeverSpinDown)
	p := DefaultParams()
	env.Schedule(0, func() {
		d.Submit(&Request{FileID: 1, Size: 720 * MB, Arrival: 0})
	})
	env.RunUntil(20)
	d.Finalize()
	pos := p.PositioningTime()
	serviceEnd := pos + 10.0
	want := p.SeekPower*pos + p.ActivePower*10.0 + p.IdlePower*(20-serviceEnd)
	if !almostEq(d.Energy(), want, 1e-6) {
		t.Fatalf("energy=%v want %v", d.Energy(), want)
	}
	b := d.Breakdown()
	if !almostEq(b.Durations[Seeking], pos, 1e-9) {
		t.Errorf("seek duration=%v want %v", b.Durations[Seeking], pos)
	}
	if !almostEq(b.Durations[Transferring], 10, 1e-9) {
		t.Errorf("transfer duration=%v want 10", b.Durations[Transferring])
	}
}

func TestEnergyAtExtendsCurrentState(t *testing.T) {
	env, d := newDisk(NeverSpinDown)
	env.RunUntil(10)
	got := d.EnergyAt(10)
	if !almostEq(got, 93, 1e-9) {
		t.Fatalf("EnergyAt(10)=%v want 93", got)
	}
}

func TestBreakEvenEnergyEquivalence(t *testing.T) {
	// Run two disks for exactly threshold+downtime+uptime... Simpler
	// physical check: staying idle for T_be consumes the same energy
	// as (spin down + standby dwell that makes up the difference +
	// spin up). By construction of BreakEvenThreshold:
	// Idle*T == E_transition + Standby*T  where T = T_be' solves
	// (Idle-Standby)*T = E_transition.
	p := DefaultParams()
	T := p.BreakEvenThreshold()
	idleEnergy := p.IdlePower * T
	cycleEnergy := p.TransitionEnergy() + p.StandbyPower*T
	if !almostEq(idleEnergy, cycleEnergy, 1e-9) {
		t.Fatalf("break-even identity violated: idle=%v cycle=%v", idleEnergy, cycleEnergy)
	}
}

func TestZeroThresholdSpinsDownImmediately(t *testing.T) {
	env, d := newDisk(0)
	env.RunUntil(DefaultParams().SpinDownTime + 1)
	if d.State() != Standby {
		t.Fatalf("state=%v want standby right after spin-down", d.State())
	}
}

func TestSpinUpServesWholeQueue(t *testing.T) {
	env, d := newDisk(0)
	var done int
	// Disk is in standby by t=11. Submit 3 requests at t=20.
	env.Schedule(20, func() {
		for i := 0; i < 3; i++ {
			d.Submit(&Request{FileID: i, Size: 72 * MB, Arrival: 20,
				Done: func(*Request, sim.Time) { done++ }})
		}
	})
	env.Run()
	if done != 3 {
		t.Fatalf("done=%d want 3", done)
	}
	if d.SpinUps() != 1 {
		t.Errorf("spinUps=%d want exactly 1 for a batch", d.SpinUps())
	}
}

func TestSubmitAfterFinalizePanics(t *testing.T) {
	env, d := newDisk(NeverSpinDown)
	d.Finalize()
	defer func() {
		if recover() == nil {
			t.Fatal("Submit after Finalize did not panic")
		}
	}()
	d.Submit(&Request{FileID: 1, Size: 1, Arrival: env.Now()})
}

func TestFinalizeIdempotent(t *testing.T) {
	env, d := newDisk(NeverSpinDown)
	env.RunUntil(10)
	d.Finalize()
	e := d.Energy()
	d.Finalize()
	if d.Energy() != e {
		t.Fatal("second Finalize changed energy")
	}
}

func TestInvalidThresholdPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative threshold did not panic")
		}
	}()
	newDisk(-5)
}

// TestEnergyConservationProperty: for any random request pattern, total
// energy equals sum over states of duration*power, and durations sum to
// the elapsed time.
func TestEnergyConservationProperty(t *testing.T) {
	p := DefaultParams()
	for seed := int64(0); seed < 20; seed++ {
		env := sim.NewEnv()
		d := New(env, 0, p, 30)
		rng := newRand(seed)
		tt := 0.0
		for i := 0; i < 50; i++ {
			tt += rng.expFloat() * 40
			id := i
			env.At(tt, func() {
				d.Submit(&Request{FileID: id, Size: int64(rng.intn(20)+1) * 50 * MB, Arrival: env.Now()})
			})
		}
		env.Run()
		end := env.Now()
		d.Finalize()
		var total, energy float64
		for s := State(0); s < numStates; s++ {
			total += d.StateDuration(s)
			energy += d.StateDuration(s) * p.Power(s)
		}
		if !almostEq(total, end, 1e-6) {
			t.Fatalf("seed %d: state durations sum %v != elapsed %v", seed, total, end)
		}
		if !almostEq(energy, d.Energy(), 1e-6) {
			t.Fatalf("seed %d: energy %v != breakdown %v", seed, d.Energy(), energy)
		}
		if d.Served() != 50 {
			t.Fatalf("seed %d: served %d want 50", seed, d.Served())
		}
	}
}

// Tiny deterministic rng to avoid importing math/rand in several tests.
type testRand struct{ state uint64 }

func newRand(seed int64) *testRand {
	return &testRand{state: uint64(seed)*2862933555777941757 + 3037000493}
}

func (r *testRand) next() uint64 {
	r.state = r.state*2862933555777941757 + 3037000493
	return r.state
}

func (r *testRand) float() float64 { return float64(r.next()>>11) / (1 << 53) }

func (r *testRand) expFloat() float64 { return -math.Log(1 - r.float()) }

func (r *testRand) intn(n int) int { return int(r.next() % uint64(n)) }

func BenchmarkDiskServiceLoop(b *testing.B) {
	env := sim.NewEnv()
	d := New(env, 0, DefaultParams(), 53.3)
	t := 0.0
	for i := 0; i < b.N; i++ {
		t += 2.0
		env.At(t, func() {
			d.Submit(&Request{FileID: i, Size: 100 * MB, Arrival: env.Now()})
		})
	}
	b.ResetTimer()
	env.Run()
}
