package workload

import (
	"fmt"
	"math/rand"

	"diskpack/internal/disk"
	"diskpack/internal/trace"
)

// Bursty generates an ON/OFF (Markov-modulated Poisson) workload over a
// Table 1-style file population: exponentially-distributed active
// periods during which requests arrive at OnRate, separated by silent
// gaps. Batch-analysis clusters and backup windows look like this in
// practice, and the resulting heavy-tailed idle-gap distribution is the
// adversarial input for fixed idleness thresholds — the gaps are either
// far shorter or far longer than the break-even time, never near it.
type Bursty struct {
	NumFiles int     // population size
	Theta    float64 // Zipf popularity parameter
	MinSize  int64   // bytes
	MaxSize  int64   // bytes
	OnRate   float64 // requests per second during an ON period
	MeanOn   float64 // mean ON-period length, seconds
	MeanOff  float64 // mean OFF-period length, seconds
	Duration float64 // seconds
	Seed     int64
}

// DefaultBursty returns a population like the paper's Table 1 (scaled
// sizes) driven by ON/OFF traffic whose long-run mean rate equals
// meanRate: one-minute bursts separated by nine quiet minutes, so the
// in-burst rate is 10× the mean.
func DefaultBursty(meanRate float64, seed int64) Bursty {
	const meanOn, meanOff = 60, 540
	return Bursty{
		NumFiles: 40000,
		Theta:    DefaultTheta,
		MinSize:  188 * disk.MB,
		MaxSize:  20 * disk.GB,
		OnRate:   meanRate * (meanOn + meanOff) / meanOn,
		MeanOn:   meanOn,
		MeanOff:  meanOff,
		Duration: 4000,
		Seed:     seed,
	}
}

// MeanRate returns the long-run arrival rate OnRate·MeanOn/(MeanOn+MeanOff).
func (c Bursty) MeanRate() float64 {
	return c.OnRate * c.MeanOn / (c.MeanOn + c.MeanOff)
}

// Validate reports the first invalid parameter.
func (c Bursty) Validate() error {
	switch {
	case c.NumFiles <= 0:
		return fmt.Errorf("workload: bursty NumFiles %d", c.NumFiles)
	case c.MinSize <= 0 || c.MaxSize < c.MinSize:
		return fmt.Errorf("workload: bursty size range [%d,%d]", c.MinSize, c.MaxSize)
	case c.OnRate <= 0:
		return fmt.Errorf("workload: bursty ON rate %v", c.OnRate)
	case c.MeanOn <= 0 || c.MeanOff < 0:
		return fmt.Errorf("workload: bursty ON/OFF means %v/%v", c.MeanOn, c.MeanOff)
	case c.Duration <= 0:
		return fmt.Errorf("workload: bursty duration %v", c.Duration)
	}
	return nil
}

// Files returns the file population with rates set to the long-run
// per-file arrival rate, which is what the packing algorithms should
// plan for.
func (c Bursty) Files() ([]trace.FileInfo, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	weights := ZipfWeights(c.NumFiles, c.Theta)
	sizes := InverseZipfSizes(c.NumFiles, c.MinSize, c.MaxSize)
	mean := c.MeanRate()
	files := make([]trace.FileInfo, c.NumFiles)
	for i := range files {
		files[i] = trace.FileInfo{ID: i, Size: sizes[i], Rate: weights[i] * mean}
	}
	return files, nil
}

// Build generates the full trace: ON/OFF arrival instants, each request
// drawing its file from the Zipf popularity distribution.
func (c Bursty) Build() (*trace.Trace, error) {
	files, err := c.Files()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	sampler := NewAlias(ZipfWeights(c.NumFiles, c.Theta))
	times := OnOffArrivals(rng, c.OnRate, c.MeanOn, c.MeanOff, c.Duration)
	reqs := make([]trace.Request, len(times))
	for i, t := range times {
		reqs[i] = trace.Request{Time: t, FileID: sampler.Sample(rng)}
	}
	tr := &trace.Trace{Files: files, Requests: reqs, Duration: c.Duration}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated invalid bursty trace: %w", err)
	}
	return tr, nil
}
