// Package workload generates the request workloads of the paper's two
// evaluations:
//
//   - the synthetic Table 1 workload — 40,000 files whose access
//     frequencies follow a Zipf-like distribution with
//     θ = log 0.6 / log 0.4 and whose sizes follow the inverse
//     Zipf-like distribution (most popular file smallest, 188 MB to
//     20 GB), driven by Poisson arrivals at rate R;
//   - a synthesizer for the NERSC 30-day read log (Section 5.1), which
//     matches every summary statistic the paper reports: 88,631 files,
//     115,832 requests over 720 hours (rate 0.044683/s), mean accessed
//     size ≈ 544 MB, Zipf-distributed sizes across 80 log-scale bins,
//     and no correlation between a file's size and its access
//     frequency. The real log is not public, so this synthetic
//     equivalent exercises the same code paths (see DESIGN.md).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// DefaultTheta is the paper's Zipf parameter θ = log 0.6 / log 0.4
// (Table 1), giving access frequencies p_i ∝ 1/i^(1−θ) with
// 1−θ ≈ 0.4427.
var DefaultTheta = math.Log(0.6) / math.Log(0.4)

// ZipfWeights returns the normalized access probabilities
// p_i = c / i^(1−θ) for i = 1..n (index 0 is rank 1). The paper prints
// the normalizer as "c = 1 − H" but normalization requires c = 1/H with
// H = Σ k^−(1−θ); we use the latter.
func ZipfWeights(n int, theta float64) []float64 {
	if n <= 0 {
		return nil
	}
	exp := 1 - theta
	w := make([]float64, n)
	var h float64
	for i := range w {
		w[i] = math.Pow(float64(i+1), -exp)
		h += w[i]
	}
	for i := range w {
		w[i] /= h
	}
	return w
}

// InverseZipfSizes returns file sizes for popularity ranks 1..n under
// the paper's inverse relationship: the most popular file is the
// smallest and sizes follow the same Zipf shape reversed,
//
//	size_i = maxSize · (n+1−i)^(−α),  α = ln(maxSize/minSize) / ln(n),
//
// so size_1 = minSize and size_n = maxSize exactly. With Table 1's
// parameters (n = 40,000, 188 MB, 20 GB) the total is ≈ 12.9 TB — the
// paper's reported space requirement of 12.86 TB, which confirms this
// reconstruction of the generator.
func InverseZipfSizes(n int, minSize, maxSize int64) []int64 {
	if n <= 0 {
		return nil
	}
	if minSize <= 0 || maxSize < minSize {
		panic(fmt.Sprintf("workload: invalid size range [%d,%d]", minSize, maxSize))
	}
	sizes := make([]int64, n)
	if n == 1 {
		sizes[0] = minSize
		return sizes
	}
	alpha := math.Log(float64(maxSize)/float64(minSize)) / math.Log(float64(n))
	for i := range sizes {
		rank := float64(n - i) // n+1-(i+1)
		sizes[i] = int64(float64(maxSize) * math.Pow(rank, -alpha))
	}
	return sizes
}

// Alias is Walker's alias method for O(1) sampling from a discrete
// distribution — the workload generators draw hundreds of thousands of
// file IDs per run.
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds the sampler from non-negative weights (need not be
// normalized). It panics if no weight is positive.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	var total float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic(fmt.Sprintf("workload: negative or NaN weight %v", w))
		}
		total += w
	}
	if total <= 0 {
		panic("workload: all weights zero")
	}
	a := &Alias{prob: make([]float64, n), alias: make([]int, n)}
	scaled := make([]float64, n)
	var small, large []int
	for i, w := range weights {
		scaled[i] = w / total * float64(n)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range append(small, large...) {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a
}

// Sample draws one index.
func (a *Alias) Sample(rng *rand.Rand) int {
	i := rng.Intn(len(a.prob))
	if rng.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// BoundedPareto is a power-law distribution truncated to [Min, Max]
// with tail exponent Alpha (density ∝ x^(−α−1)). In log-scale bins its
// mass decreases linearly in log-log — the Zipf-like size shape the
// paper measured in the NERSC log.
type BoundedPareto struct {
	Min, Max float64
	Alpha    float64
}

// Validate reports parameter problems.
func (b BoundedPareto) Validate() error {
	if b.Min <= 0 || b.Max <= b.Min {
		return fmt.Errorf("workload: BoundedPareto range [%v,%v] invalid", b.Min, b.Max)
	}
	if b.Alpha <= 0 || math.IsNaN(b.Alpha) {
		return fmt.Errorf("workload: BoundedPareto alpha %v invalid", b.Alpha)
	}
	return nil
}

// Mean returns the analytic expectation.
func (b BoundedPareto) Mean() float64 {
	m, M, a := b.Min, b.Max, b.Alpha
	r := math.Pow(m/M, a)
	if a == 1 {
		return m / (1 - r) * math.Log(M/m) * 1 // lim a->1 of the general form
	}
	return math.Pow(m, a) * a / (1 - r) * (math.Pow(M, 1-a) - math.Pow(m, 1-a)) / (1 - a)
}

// Sample draws one value by inverse-CDF.
func (b BoundedPareto) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	r := math.Pow(b.Min/b.Max, b.Alpha)
	return b.Min / math.Pow(1-u*(1-r), 1/b.Alpha)
}

// AlphaForMean finds the tail exponent for which a BoundedPareto on
// [min, max] has the requested mean, by bisection. It returns an error
// when the mean is outside the achievable range.
func AlphaForMean(min, max, mean float64) (float64, error) {
	if min <= 0 || max <= min {
		return 0, fmt.Errorf("workload: invalid range [%v,%v]", min, max)
	}
	if mean <= min || mean >= max {
		return 0, fmt.Errorf("workload: mean %v outside (%v,%v)", mean, min, max)
	}
	f := func(a float64) float64 {
		return BoundedPareto{Min: min, Max: max, Alpha: a}.Mean() - mean
	}
	lo, hi := 1e-6, 50.0
	// Mean decreases in alpha: f(lo) > 0 > f(hi) when solvable.
	if f(lo) < 0 {
		return 0, fmt.Errorf("workload: mean %v above achievable maximum", mean)
	}
	if f(hi) > 0 {
		return 0, fmt.Errorf("workload: mean %v below achievable minimum", mean)
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if f(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// PoissonArrivals returns event times of a homogeneous Poisson process
// with the given rate over [0, duration).
func PoissonArrivals(rng *rand.Rand, rate, duration float64) []float64 {
	if rate <= 0 || duration <= 0 {
		return nil
	}
	var times []float64
	t := rng.ExpFloat64() / rate
	for t < duration {
		times = append(times, t)
		t += rng.ExpFloat64() / rate
	}
	return times
}

// PoissonArrivalsHourly returns event times of a nonhomogeneous Poisson
// process over [0, duration) whose intensity follows a daily-periodic
// hourly profile (24 relative weights) around the given mean rate: the
// profile is normalized so its average is 1, making the expected event
// count identical to a homogeneous process at the same rate. Sampling is
// by thinning against the peak intensity, which preserves the exact
// Poisson law. An empty profile degenerates to PoissonArrivals.
func PoissonArrivalsHourly(rng *rand.Rand, rate, duration float64, hourly []float64) []float64 {
	if len(hourly) == 0 {
		return PoissonArrivals(rng, rate, duration)
	}
	if len(hourly) != 24 {
		panic(fmt.Sprintf("workload: hourly profile has %d entries, want 24", len(hourly)))
	}
	var sum, peak float64
	for _, w := range hourly {
		if w < 0 || math.IsNaN(w) {
			panic(fmt.Sprintf("workload: invalid hourly weight %v", w))
		}
		sum += w
		if w > peak {
			peak = w
		}
	}
	if sum <= 0 {
		panic("workload: hourly profile all zero")
	}
	mean := sum / 24
	maxRate := rate * peak / mean
	var times []float64
	t := rng.ExpFloat64() / maxRate
	for t < duration {
		hour := int(math.Mod(t, 86400) / 3600)
		if rng.Float64() < hourly[hour]/peak {
			times = append(times, t)
		}
		t += rng.ExpFloat64() / maxRate
	}
	return times
}

// OnOffArrivals returns event times of a Markov-modulated (ON/OFF)
// Poisson process: the source alternates exponentially-distributed ON
// periods (mean meanOn seconds, arrivals at onRate) and silent OFF
// periods (mean meanOff). The long-run mean rate is
// onRate·meanOn/(meanOn+meanOff); the burstiness — long quiet gaps
// punctuated by dense request trains — is what defeats fixed idleness
// thresholds tuned for smooth traffic.
func OnOffArrivals(rng *rand.Rand, onRate, meanOn, meanOff, duration float64) []float64 {
	if onRate <= 0 || meanOn <= 0 || meanOff < 0 || duration <= 0 {
		return nil
	}
	var times []float64
	t := 0.0
	for t < duration {
		onEnd := t + rng.ExpFloat64()*meanOn
		if onEnd > duration {
			onEnd = duration
		}
		at := t + rng.ExpFloat64()/onRate
		for at < onEnd {
			times = append(times, at)
			at += rng.ExpFloat64() / onRate
		}
		t = onEnd
		if meanOff > 0 {
			t += rng.ExpFloat64() * meanOff
		}
	}
	return times
}

// UniformOrderedTimes returns exactly n sorted times uniform on
// [0, duration) — the conditional distribution of a Poisson process
// given its event count, used when a trace must reproduce an exact
// request count.
func UniformOrderedTimes(rng *rand.Rand, n int, duration float64) []float64 {
	times := make([]float64, n)
	for i := range times {
		times[i] = rng.Float64() * duration
	}
	sort.Float64s(times)
	return times
}
