package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"diskpack/internal/disk"
	"diskpack/internal/trace"
)

// Synthetic holds the Table 1 workload parameters.
type Synthetic struct {
	NumFiles    int     // n (paper: 40,000)
	Theta       float64 // Zipf θ (paper: log0.6/log0.4)
	MinSize     int64   // bytes (paper: 188 MB)
	MaxSize     int64   // bytes (paper: 20 GB)
	ArrivalRate float64 // R, requests per second (paper: 1..12)
	Duration    float64 // seconds (paper: 4,000)
	// Diurnal, when non-nil, modulates the Poisson arrivals with a
	// daily-periodic hourly intensity profile (24 relative weights,
	// normalized to preserve the mean rate R). The paper's Table 1
	// workload is homogeneous; the diurnal variant models the
	// day/night load swing of real data centers, whose quiet hours are
	// where spin-down earns its keep.
	Diurnal []float64
	Seed    int64
}

// DefaultSynthetic returns the paper's Table 1 parameters with R left
// for the caller (the sweep variable of Figures 2–4).
func DefaultSynthetic(arrivalRate float64, seed int64) Synthetic {
	return Synthetic{
		NumFiles:    40000,
		Theta:       DefaultTheta,
		MinSize:     188 * disk.MB,
		MaxSize:     20 * disk.GB,
		ArrivalRate: arrivalRate,
		Duration:    4000,
		Seed:        seed,
	}
}

// Validate reports the first invalid parameter.
func (c Synthetic) Validate() error {
	switch {
	case c.NumFiles <= 0:
		return fmt.Errorf("workload: NumFiles %d", c.NumFiles)
	case c.MinSize <= 0 || c.MaxSize < c.MinSize:
		return fmt.Errorf("workload: size range [%d,%d]", c.MinSize, c.MaxSize)
	case c.ArrivalRate <= 0:
		return fmt.Errorf("workload: arrival rate %v", c.ArrivalRate)
	case c.Duration <= 0:
		return fmt.Errorf("workload: duration %v", c.Duration)
	case c.Diurnal != nil && len(c.Diurnal) != 24:
		return fmt.Errorf("workload: diurnal profile has %d entries, want 24", len(c.Diurnal))
	}
	if c.Diurnal != nil {
		var sum float64
		for _, w := range c.Diurnal {
			if w < 0 || math.IsNaN(w) {
				return fmt.Errorf("workload: invalid diurnal weight %v", w)
			}
			sum += w
		}
		if sum <= 0 {
			return fmt.Errorf("workload: diurnal profile all zero")
		}
	}
	return nil
}

// Files returns the file population only: Zipf-like access rates
// r_i = p_i·R and inverse-Zipf sizes.
func (c Synthetic) Files() ([]trace.FileInfo, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	weights := ZipfWeights(c.NumFiles, c.Theta)
	sizes := InverseZipfSizes(c.NumFiles, c.MinSize, c.MaxSize)
	files := make([]trace.FileInfo, c.NumFiles)
	for i := range files {
		files[i] = trace.FileInfo{ID: i, Size: sizes[i], Rate: weights[i] * c.ArrivalRate}
	}
	return files, nil
}

// Build generates the full trace: Poisson arrivals at rate R over the
// duration, each request drawing its file from the Zipf popularity
// distribution.
func (c Synthetic) Build() (*trace.Trace, error) {
	files, err := c.Files()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	weights := ZipfWeights(c.NumFiles, c.Theta)
	sampler := NewAlias(weights)
	times := PoissonArrivalsHourly(rng, c.ArrivalRate, c.Duration, c.Diurnal)
	reqs := make([]trace.Request, len(times))
	for i, t := range times {
		reqs[i] = trace.Request{Time: t, FileID: sampler.Sample(rng)}
	}
	tr := &trace.Trace{Files: files, Requests: reqs, Duration: c.Duration}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated invalid trace: %w", err)
	}
	return tr, nil
}

// NERSC holds the parameters of the Section 5.1 trace synthesizer. The
// defaults reproduce every summary statistic the paper reports about
// the real 30-day log; the real log itself is not public.
type NERSC struct {
	NumFiles    int     // paper: 88,631 distinct files
	NumRequests int     // paper: 115,832 read requests
	Duration    float64 // paper: 30 days logged, simulated 720 h
	MeanSize    float64 // bytes; paper: 544 MB
	MinSize     int64   // smallest synthesized file
	MaxSize     int64   // largest synthesized file
	Theta       float64 // popularity skew (size-independent)
	// BatchFraction is the probability that an arrival event is a
	// user requesting a batch of similar-size files all at once — the
	// phenomenon that motivates Pack_Disks_v (Section 3.2). Zero
	// disables batching.
	BatchFraction float64
	// BatchSize is the number of files per batch event (>= 2 when
	// batching is enabled).
	BatchSize int
	// Diurnal gives relative arrival intensity per hour of day
	// (24 entries). Real data-center logs are strongly diurnal; the
	// quiet night hours are what let randomly-placed disks sleep at
	// multi-hour idleness thresholds (Figure 5's RND curve). Nil or
	// all-equal means a homogeneous process.
	Diurnal []float64
	// RepeatFraction is the probability that a request re-reads one of
	// the RepeatWindow most recently accessed files (temporal
	// locality). The paper's 16 GB LRU front cache achieved a 5.6%
	// hit ratio on the real log, which requires short-range re-reads
	// the pure Zipf draw lacks.
	RepeatFraction float64
	// RepeatWindow is how many recent requests a repeat may target.
	RepeatWindow int
	Seed         int64
}

// DefaultDiurnal is a work-day intensity profile: low overnight load,
// ramp from 08:00, peak through the afternoon, tail into the evening.
func DefaultDiurnal() []float64 {
	return []float64{
		0.15, 0.10, 0.08, 0.06, 0.06, 0.08, // 00-05
		0.15, 0.35, 0.80, 1.20, 1.50, 1.60, // 06-11
		1.55, 1.60, 1.65, 1.60, 1.45, 1.20, // 12-17
		0.95, 0.70, 0.55, 0.40, 0.30, 0.20, // 18-23
	}
}

// DefaultNERSC returns the paper-matching configuration with mild
// batching.
func DefaultNERSC(seed int64) NERSC {
	return NERSC{
		NumFiles:       88631,
		NumRequests:    115832,
		Duration:       720 * 3600,
		MeanSize:       544 * disk.MB,
		MinSize:        1 * disk.MB,
		MaxSize:        100 * disk.GB,
		Theta:          DefaultTheta,
		BatchFraction:  0.1,
		BatchSize:      4,
		Diurnal:        DefaultDiurnal(),
		RepeatFraction: 0.08,
		RepeatWindow:   24,
		Seed:           seed,
	}
}

// Validate reports the first invalid parameter.
func (c NERSC) Validate() error {
	switch {
	case c.NumFiles <= 0 || c.NumRequests <= 0:
		return fmt.Errorf("workload: NERSC counts files=%d requests=%d", c.NumFiles, c.NumRequests)
	case c.Duration <= 0:
		return fmt.Errorf("workload: NERSC duration %v", c.Duration)
	case c.MinSize <= 0 || c.MaxSize <= c.MinSize:
		return fmt.Errorf("workload: NERSC size range [%d,%d]", c.MinSize, c.MaxSize)
	case c.MeanSize <= float64(c.MinSize) || c.MeanSize >= float64(c.MaxSize):
		return fmt.Errorf("workload: NERSC mean size %v outside range", c.MeanSize)
	case c.BatchFraction < 0 || c.BatchFraction > 1:
		return fmt.Errorf("workload: batch fraction %v", c.BatchFraction)
	case c.BatchFraction > 0 && c.BatchSize < 2:
		return fmt.Errorf("workload: batch size %d with batching enabled", c.BatchSize)
	case c.Diurnal != nil && len(c.Diurnal) != 24:
		return fmt.Errorf("workload: diurnal profile has %d entries, want 24", len(c.Diurnal))
	case c.RepeatFraction < 0 || c.RepeatFraction > 1:
		return fmt.Errorf("workload: repeat fraction %v", c.RepeatFraction)
	case c.RepeatFraction > 0 && c.RepeatWindow < 1:
		return fmt.Errorf("workload: repeat window %d with repeats enabled", c.RepeatWindow)
	}
	if c.Diurnal != nil {
		var sum float64
		for _, w := range c.Diurnal {
			if w < 0 {
				return fmt.Errorf("workload: negative diurnal weight %v", w)
			}
			sum += w
		}
		if sum <= 0 {
			return fmt.Errorf("workload: diurnal profile all zero")
		}
	}
	return nil
}

// Build synthesizes the trace:
//
//  1. File sizes are i.i.d. bounded-Pareto on [MinSize, MaxSize] with
//     the tail exponent solved so the mean matches MeanSize; in
//     log-scale bins the counts decrease linearly in log-log, the
//     paper's observed shape.
//  2. Popularity is Zipf over a random permutation of the files, so
//     size and access frequency are independent (the paper found "no
//     significant relationship").
//  3. Exactly NumRequests arrivals are placed uniformly over the
//     duration (the conditional law of a Poisson process given its
//     count, preserving the measured 0.044683/s rate). A BatchFraction
//     of arrival events requests BatchSize files of adjacent size rank
//     at the same instant.
func (c NERSC) Build() (*trace.Trace, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))

	alpha, err := AlphaForMean(float64(c.MinSize), float64(c.MaxSize), c.MeanSize)
	if err != nil {
		return nil, err
	}
	dist := BoundedPareto{Min: float64(c.MinSize), Max: float64(c.MaxSize), Alpha: alpha}
	files := make([]trace.FileInfo, c.NumFiles)
	for i := range files {
		files[i] = trace.FileInfo{ID: i, Size: int64(dist.Sample(rng))}
	}

	// Popularity rank -> file: a random permutation decouples rank
	// from size.
	perm := rng.Perm(c.NumFiles)
	weights := ZipfWeights(c.NumFiles, c.Theta)
	rateOverall := float64(c.NumRequests) / c.Duration
	for rank, fi := range perm {
		files[fi].Rate = weights[rank] * rateOverall
	}
	// sampler draws a popularity rank; perm maps it to a file.
	sampler := NewAlias(weights)

	// bySize lists file IDs in size order; batches pick BatchSize
	// files adjacent in this order ("many users request a batch of
	// files of similar sizes all at once").
	bySize := make([]int, c.NumFiles)
	for i := range bySize {
		bySize[i] = i
	}
	sortBySize(bySize, files)

	// sampleTime draws one arrival instant, honouring the diurnal
	// profile when configured: pick a uniformly random day, an hour of
	// day proportional to its intensity, then a uniform offset within
	// the hour. This is the conditional law of a nonhomogeneous
	// Poisson process with a daily-periodic intensity given its event
	// count.
	var hourSampler *Alias
	if c.Diurnal != nil {
		hourSampler = NewAlias(c.Diurnal)
	}
	sampleTime := func() float64 {
		if hourSampler == nil {
			return rng.Float64() * c.Duration
		}
		// Bounded retries guard against degenerate cases (duration
		// shorter than the only active hours); fall back to uniform.
		for try := 0; try < 1000; try++ {
			day := math.Floor(rng.Float64() * c.Duration / 86400)
			hour := float64(hourSampler.Sample(rng))
			t := day*86400 + hour*3600 + rng.Float64()*3600
			if t < c.Duration {
				return t
			}
		}
		return rng.Float64() * c.Duration
	}

	// Events are timed first and filled with file IDs in time order, so
	// the repeat mechanism sees a causally meaningful "recent" window.
	type event struct {
		t     float64
		batch int // 0 = single request, else batch size
	}
	var events []event
	for budget := c.NumRequests; budget > 0; {
		ev := event{t: sampleTime()}
		if c.BatchFraction > 0 && rng.Float64() < c.BatchFraction {
			ev.batch = c.BatchSize
			if ev.batch > budget {
				ev.batch = budget
			}
			budget -= ev.batch
		} else {
			budget--
		}
		events = append(events, ev)
	}
	sort.Slice(events, func(a, b int) bool { return events[a].t < events[b].t })

	reqs := make([]trace.Request, 0, c.NumRequests)
	var recent []int // ring of recently accessed files
	remember := func(fi int) {
		recent = append(recent, fi)
		if len(recent) > c.RepeatWindow {
			recent = recent[1:]
		}
	}
	for _, ev := range events {
		if ev.batch > 0 {
			// A batch event: anchor at a random position in size
			// order, request adjacent files simultaneously.
			anchor := rng.Intn(c.NumFiles)
			for k := 0; k < ev.batch; k++ {
				fi := bySize[(anchor+k)%c.NumFiles]
				reqs = append(reqs, trace.Request{Time: ev.t, FileID: fi})
				remember(fi)
			}
			continue
		}
		var fi int
		if c.RepeatFraction > 0 && len(recent) > 0 && rng.Float64() < c.RepeatFraction {
			fi = recent[rng.Intn(len(recent))]
		} else {
			fi = perm[sampler.Sample(rng)]
		}
		reqs = append(reqs, trace.Request{Time: ev.t, FileID: fi})
		remember(fi)
	}
	tr := &trace.Trace{Files: files, Requests: reqs, Duration: c.Duration}
	tr.SortRequests()
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated invalid NERSC trace: %w", err)
	}
	return tr, nil
}

func sortBySize(idx []int, files []trace.FileInfo) {
	sort.SliceStable(idx, func(a, b int) bool { return files[idx[a]].Size < files[idx[b]].Size })
}

// MarkWrites converts the first access of a fraction of files into a
// write — new data being ingested into the farm, exercising the
// Section 1 write policy. The selection is deterministic for a seed;
// the affected files should be given storage.Unplaced in the initial
// assignment so the write policy places them. It returns the IDs of
// the converted files.
func MarkWrites(tr *trace.Trace, fraction float64, seed int64) []int {
	if fraction <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	firstSeen := make(map[int]int, len(tr.Files)) // file -> request index
	for ri, r := range tr.Requests {
		if _, ok := firstSeen[r.FileID]; !ok {
			firstSeen[r.FileID] = ri
		}
	}
	var converted []int
	for fid, ri := range firstSeen {
		if rng.Float64() < fraction {
			tr.Requests[ri].Write = true
			converted = append(converted, fid)
		}
	}
	sort.Ints(converted)
	return converted
}

// BuildDrifting synthesizes a trace whose popularity drifts: the
// duration is split into phases equal windows and each phase draws its
// requests from a freshly permuted Zipf popularity over the same file
// population. Sizes, counts, and the arrival process are unchanged;
// only *which* files are hot rotates. This is the scenario the paper's
// Section 1 semi-dynamic reorganization targets: an allocation packed
// for last month's hot set slowly stops matching the traffic. The
// stored file rates are those of phase 0 (what an operator would have
// measured before deploying).
func (c NERSC) BuildDrifting(phases int) (*trace.Trace, error) {
	if phases < 1 {
		return nil, fmt.Errorf("workload: drifting phases %d must be >= 1", phases)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	// Phase 0 defines the population and its nominal rates.
	base := c
	base.Duration = c.Duration / float64(phases)
	base.NumRequests = c.NumRequests / phases
	tr, err := base.Build()
	if err != nil {
		return nil, err
	}
	for ph := 1; ph < phases; ph++ {
		pc := base
		pc.Seed = c.Seed + int64(ph)*1000003
		ptr, err := pc.Build()
		if err != nil {
			return nil, err
		}
		// Same distributional shape, fresh permutation — but the
		// population must be phase 0's: remap phase-ph requests
		// through identity (populations are index-compatible since
		// counts match; sizes differ per seed, which is fine for
		// popularity drift because request service uses phase 0's
		// sizes via the shared FileID space).
		offset := float64(ph) * base.Duration
		for _, r := range ptr.Requests {
			tr.Requests = append(tr.Requests, trace.Request{Time: r.Time + offset, FileID: r.FileID})
		}
	}
	tr.Duration = base.Duration * float64(phases)
	tr.SortRequests()
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("workload: drifting trace invalid: %w", err)
	}
	return tr, nil
}
