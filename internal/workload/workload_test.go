package workload

import (
	"math"
	"math/rand"
	"testing"

	"diskpack/internal/disk"
)

func TestDefaultThetaValue(t *testing.T) {
	// θ = log 0.6 / log 0.4 ≈ 0.5573; the Zipf exponent 1−θ ≈ 0.4427.
	if math.Abs(DefaultTheta-0.5573) > 0.0005 {
		t.Fatalf("DefaultTheta=%v want ≈0.5573", DefaultTheta)
	}
}

func TestZipfWeightsNormalizedAndDecreasing(t *testing.T) {
	w := ZipfWeights(1000, DefaultTheta)
	var sum float64
	for i, wi := range w {
		sum += wi
		if i > 0 && wi > w[i-1] {
			t.Fatalf("weights increase at %d", i)
		}
		if wi <= 0 {
			t.Fatalf("non-positive weight at %d", i)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("sum=%v want 1", sum)
	}
	// p1/p2 = 2^(1−θ).
	ratio := w[0] / w[1]
	want := math.Pow(2, 1-DefaultTheta)
	if math.Abs(ratio-want) > 1e-9 {
		t.Errorf("p1/p2=%v want %v", ratio, want)
	}
}

func TestZipfWeightsEdgeCases(t *testing.T) {
	if ZipfWeights(0, 0.5) != nil {
		t.Error("n=0 should yield nil")
	}
	w := ZipfWeights(1, DefaultTheta)
	if len(w) != 1 || math.Abs(w[0]-1) > 1e-12 {
		t.Errorf("n=1 weights=%v", w)
	}
	// θ=1 means exponent 0: uniform.
	u := ZipfWeights(4, 1)
	for _, wi := range u {
		if math.Abs(wi-0.25) > 1e-12 {
			t.Errorf("θ=1 weights not uniform: %v", u)
		}
	}
}

func TestInverseZipfSizesEndpoints(t *testing.T) {
	n := 40000
	sizes := InverseZipfSizes(n, 188*disk.MB, 20*disk.GB)
	// Most popular (rank 1) file is the smallest — and exactly minSize
	// by construction.
	if got := sizes[0]; math.Abs(float64(got)-188e6) > 1e6 {
		t.Errorf("size of rank-1 file = %d want ≈188 MB", got)
	}
	if got := sizes[n-1]; got != 20*disk.GB {
		t.Errorf("size of rank-n file = %d want 20 GB", got)
	}
	for i := 1; i < n; i++ {
		if sizes[i] < sizes[i-1] {
			t.Fatalf("sizes not nondecreasing at %d", i)
		}
	}
}

// TestInverseZipfTotalMatchesTable1 confirms the reconstruction of the
// paper's size generator: with Table 1 parameters the total space
// requirement is reported as 12.86 TB.
func TestInverseZipfTotalMatchesTable1(t *testing.T) {
	sizes := InverseZipfSizes(40000, 188*disk.MB, 20*disk.GB)
	var total float64
	for _, s := range sizes {
		total += float64(s)
	}
	totalTB := total / float64(disk.TB)
	if totalTB < 12.2 || totalTB > 13.6 {
		t.Fatalf("total space = %.2f TB, paper reports 12.86 TB", totalTB)
	}
}

func TestInverseZipfSizesPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad range did not panic")
		}
	}()
	InverseZipfSizes(10, 100, 50)
}

func TestInverseZipfSingleFile(t *testing.T) {
	s := InverseZipfSizes(1, 100, 200)
	if len(s) != 1 || s[0] != 100 {
		t.Fatalf("n=1 sizes=%v", s)
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	weights := []float64{0.5, 0.25, 0.125, 0.125}
	a := NewAlias(weights)
	rng := rand.New(rand.NewSource(1))
	counts := make([]float64, len(weights))
	const n = 200000
	for i := 0; i < n; i++ {
		counts[a.Sample(rng)]++
	}
	for i, w := range weights {
		got := counts[i] / n
		if math.Abs(got-w) > 0.01 {
			t.Errorf("weight %d: sampled %v want %v", i, got, w)
		}
	}
}

func TestAliasUnnormalizedWeights(t *testing.T) {
	a := NewAlias([]float64{2, 2, 4})
	rng := rand.New(rand.NewSource(2))
	counts := make([]float64, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[a.Sample(rng)]++
	}
	if math.Abs(counts[2]/n-0.5) > 0.01 {
		t.Errorf("index 2 sampled %v want 0.5", counts[2]/n)
	}
}

func TestAliasZeroWeightNeverSampled(t *testing.T) {
	a := NewAlias([]float64{1, 0, 1})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		if a.Sample(rng) == 1 {
			t.Fatal("zero-weight index sampled")
		}
	}
}

func TestAliasPanics(t *testing.T) {
	for _, w := range [][]float64{{0, 0}, {-1, 2}, {math.NaN()}} {
		func() {
			defer func() { recover() }()
			NewAlias(w)
			t.Errorf("weights %v accepted", w)
		}()
	}
}

func TestBoundedParetoMeanFormula(t *testing.T) {
	b := BoundedPareto{Min: 1e6, Max: 1e11, Alpha: 0.9}
	rng := rand.New(rand.NewSource(4))
	var sum float64
	const n = 400000
	for i := 0; i < n; i++ {
		x := b.Sample(rng)
		if x < b.Min || x > b.Max {
			t.Fatalf("sample %v outside [%v,%v]", x, b.Min, b.Max)
		}
		sum += x
	}
	got := sum / n
	want := b.Mean()
	// The tail makes the sample mean noisy (σ of the mean ≈ 4% here
	// even at 400k samples), so the tolerance is wide.
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("empirical mean %v vs analytic %v", got, want)
	}
}

func TestAlphaForMean(t *testing.T) {
	min, max := 1e6, 1e11
	for _, mean := range []float64{5e6, 544e6, 5e9} {
		alpha, err := AlphaForMean(min, max, mean)
		if err != nil {
			t.Fatalf("mean %v: %v", mean, err)
		}
		got := BoundedPareto{Min: min, Max: max, Alpha: alpha}.Mean()
		if math.Abs(got-mean)/mean > 1e-6 {
			t.Errorf("mean %v: solved alpha %v gives mean %v", mean, alpha, got)
		}
	}
}

func TestAlphaForMeanErrors(t *testing.T) {
	if _, err := AlphaForMean(10, 5, 7); err == nil {
		t.Error("bad range accepted")
	}
	if _, err := AlphaForMean(1, 100, 0.5); err == nil {
		t.Error("mean below min accepted")
	}
	if _, err := AlphaForMean(1, 100, 200); err == nil {
		t.Error("mean above max accepted")
	}
}

func TestPoissonArrivals(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rate, dur := 2.0, 10000.0
	times := PoissonArrivals(rng, rate, dur)
	n := float64(len(times))
	mean := rate * dur
	if math.Abs(n-mean) > 5*math.Sqrt(mean) {
		t.Fatalf("arrival count %v outside 5σ of %v", n, mean)
	}
	last := 0.0
	for _, tt := range times {
		if tt < last || tt >= dur {
			t.Fatal("arrival times not sorted within [0,duration)")
		}
		last = tt
	}
	if PoissonArrivals(rng, 0, 10) != nil {
		t.Error("zero rate should yield nil")
	}
}

func TestUniformOrderedTimes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	times := UniformOrderedTimes(rng, 5000, 100)
	if len(times) != 5000 {
		t.Fatalf("len=%d", len(times))
	}
	var sum float64
	last := 0.0
	for _, tt := range times {
		if tt < last || tt >= 100 {
			t.Fatal("not sorted / out of range")
		}
		last = tt
		sum += tt
	}
	if mean := sum / 5000; math.Abs(mean-50) > 2 {
		t.Errorf("mean arrival %v want ≈50", mean)
	}
}

func TestSyntheticDefaultsMatchTable1(t *testing.T) {
	c := DefaultSynthetic(6, 1)
	if c.NumFiles != 40000 || c.Duration != 4000 {
		t.Errorf("defaults: %+v", c)
	}
	if c.MinSize != 188*disk.MB || c.MaxSize != 20*disk.GB {
		t.Errorf("size range: %d..%d", c.MinSize, c.MaxSize)
	}
	if c.Theta != DefaultTheta {
		t.Errorf("theta=%v", c.Theta)
	}
}

func TestSyntheticBuild(t *testing.T) {
	c := DefaultSynthetic(4, 42)
	c.NumFiles = 2000 // keep the test fast
	tr, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Files) != 2000 {
		t.Fatalf("files=%d", len(tr.Files))
	}
	s := tr.Stats()
	if math.Abs(s.ArrivalRate-4) > 0.5 {
		t.Errorf("arrival rate %v want ≈4", s.ArrivalRate)
	}
	// Popularity skew: rank-1 file must be requested far more often
	// than a mid-rank file.
	counts := make([]int, len(tr.Files))
	for _, r := range tr.Requests {
		counts[r.FileID]++
	}
	if counts[0] < counts[1000] {
		t.Errorf("rank-1 file requested %d times, rank-1000 %d — no skew", counts[0], counts[1000])
	}
	// Rates must integrate to the overall rate.
	var rateSum float64
	for _, f := range tr.Files {
		rateSum += f.Rate
	}
	if math.Abs(rateSum-4) > 1e-6 {
		t.Errorf("sum of per-file rates %v want 4", rateSum)
	}
}

func TestSyntheticValidate(t *testing.T) {
	bad := []Synthetic{
		{NumFiles: 0, MinSize: 1, MaxSize: 2, ArrivalRate: 1, Duration: 1},
		{NumFiles: 1, MinSize: 0, MaxSize: 2, ArrivalRate: 1, Duration: 1},
		{NumFiles: 1, MinSize: 5, MaxSize: 2, ArrivalRate: 1, Duration: 1},
		{NumFiles: 1, MinSize: 1, MaxSize: 2, ArrivalRate: 0, Duration: 1},
		{NumFiles: 1, MinSize: 1, MaxSize: 2, ArrivalRate: 1, Duration: 0},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d accepted", i)
		}
		if _, err := c.Build(); err == nil {
			t.Errorf("case %d built", i)
		}
	}
}

// TestNERSCMatchesPaperStatistics is the substitution check from
// DESIGN.md: every summary statistic the paper reports about the real
// log must hold for the synthesized one.
func TestNERSCMatchesPaperStatistics(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size NERSC synthesis")
	}
	c := DefaultNERSC(7)
	tr, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	if s.NumFiles != 88631 {
		t.Errorf("files=%d want 88631", s.NumFiles)
	}
	if s.NumRequests != 115832 {
		t.Errorf("requests=%d want 115832", s.NumRequests)
	}
	// Paper: average arrival rate 0.044683/s.
	if math.Abs(s.ArrivalRate-0.044683) > 0.0005 {
		t.Errorf("arrival rate %v want ≈0.044683", s.ArrivalRate)
	}
	// Paper: mean size of accessed files ≈ 544 MB. The synthesizer
	// fixes the population mean; the request-weighted mean matches
	// because size⊥frequency. Allow sampling noise.
	if s.MeanFileSize < 450e6 || s.MeanFileSize > 650e6 {
		t.Errorf("mean file size %v want ≈544 MB", s.MeanFileSize)
	}
	if s.MeanRequestSize < 400e6 || s.MeanRequestSize > 700e6 {
		t.Errorf("mean requested size %v want ≈544 MB", s.MeanRequestSize)
	}
	// Paper: size distribution ≈ linear in log-log over 80 bins.
	fit := tr.SizeZipfFit(80)
	if fit.Slope >= 0 {
		t.Errorf("log-log slope %v want negative", fit.Slope)
	}
	if fit.R2 < 0.8 {
		t.Errorf("log-log R²=%v want > 0.8 (\"almost linear\")", fit.R2)
	}
	// Paper: no significant size-frequency relationship.
	if c := tr.SizeFrequencyCorrelation(); math.Abs(c) > 0.05 {
		t.Errorf("size-frequency correlation %v want ≈0", c)
	}
	// Paper: minimum storage ≈ 95 disks of 500 GB.
	disks := float64(s.TotalBytes) / 500e9
	if disks < 75 || disks > 115 {
		t.Errorf("population needs %.1f disks of 500GB, paper says ≈95", disks)
	}
}

func TestNERSCBatchingProducesSimultaneousRequests(t *testing.T) {
	c := DefaultNERSC(8)
	c.NumFiles = 5000
	c.NumRequests = 20000
	c.BatchFraction = 0.5
	c.BatchSize = 4
	tr, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := 1; i < len(tr.Requests); i++ {
		if tr.Requests[i].Time == tr.Requests[i-1].Time {
			same++
		}
	}
	if same < 1000 {
		t.Errorf("only %d simultaneous request pairs — batching not effective", same)
	}
}

func TestNERSCNoBatching(t *testing.T) {
	c := DefaultNERSC(9)
	c.NumFiles = 2000
	c.NumRequests = 5000
	c.BatchFraction = 0
	tr, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 5000 {
		t.Fatalf("requests=%d", len(tr.Requests))
	}
}

func TestNERSCValidate(t *testing.T) {
	good := DefaultNERSC(1)
	bad := []func(*NERSC){
		func(c *NERSC) { c.NumFiles = 0 },
		func(c *NERSC) { c.NumRequests = -1 },
		func(c *NERSC) { c.Duration = 0 },
		func(c *NERSC) { c.MinSize = 0 },
		func(c *NERSC) { c.MaxSize = c.MinSize },
		func(c *NERSC) { c.MeanSize = 0.5 },
		func(c *NERSC) { c.BatchFraction = 1.5 },
		func(c *NERSC) { c.BatchSize = 1 },
	}
	for i, mutate := range bad {
		c := good
		mutate(&c)
		if c.Validate() == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDeterministicBuilds(t *testing.T) {
	a, err := DefaultSynthetic(3, 123).Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := DefaultSynthetic(3, 123).Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Requests) != len(b.Requests) {
		t.Fatal("nondeterministic request count")
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatal("nondeterministic request stream")
		}
	}
}

func BenchmarkSyntheticBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := DefaultSynthetic(6, int64(i))
		if _, err := c.Build(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAliasSample(b *testing.B) {
	a := NewAlias(ZipfWeights(40000, DefaultTheta))
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Sample(rng)
	}
}
