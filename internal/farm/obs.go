package farm

import (
	"sync/atomic"

	"diskpack/internal/obs"
)

// runObserver is the process-wide observability sink Run / RunStream
// wire into the storage kernel (same plumbing-not-policy shape as
// simWorkers: results are byte-identical with or without it). The CLI
// installs one when -trace-out / -telemetry-out / -metrics-addr are
// set; the default nil costs a pointer test per run.
var runObserver atomic.Pointer[obs.RunObserver]

// SetRunObserver installs the process-wide run observer (nil
// disables) and returns the previous one for defer-restore.
func SetRunObserver(o *obs.RunObserver) *obs.RunObserver {
	return runObserver.Swap(o)
}

// CurrentRunObserver returns the installed run observer (nil when
// observability is off).
func CurrentRunObserver() *obs.RunObserver {
	return runObserver.Load()
}
