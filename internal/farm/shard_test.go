package farm

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// resultJSON canonicalizes a sweep result for byte comparison: if two
// results marshal to the same bytes, every point's spec, metrics (down
// to the per-disk breakdowns), and the selector's verdict are equal.
func resultJSON(t *testing.T, res *SweepResult) string {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// roundTripShard pushes a manifest through its JSON codec, as the CLI
// does between the planning and the worker machine.
func roundTripShard(t *testing.T, m ShardManifest) ShardManifest {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeShard(&buf, m); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeShard(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return *dec
}

// roundTripResult pushes a shard result through its JSON codec, as the
// CLI does between the worker and the merging machine.
func roundTripResult(t *testing.T, r ShardResult) ShardResult {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeShardResult(&buf, r); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeShardResult(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return *dec
}

func TestShardPartition(t *testing.T) {
	sweep := fixtureSweep() // 6 points
	for _, n := range []int{1, 2, 3, 7} {
		shards, err := Shard(sweep, 9, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(shards) != n {
			t.Fatalf("Shard(.., %d) returned %d manifests", n, len(shards))
		}
		seen := make(map[int]int)
		for i, m := range shards {
			if m.Index != i || m.Count != n || m.Seed != 9 {
				t.Fatalf("shard %d identity = %d/%d seed %d", i, m.Index, m.Count, m.Seed)
			}
			for _, p := range m.Points {
				if p.Index%n != i {
					t.Errorf("point %d on shard %d, want round-robin shard %d", p.Index, i, p.Index%n)
				}
				seen[p.Index]++
			}
		}
		if len(seen) != sweep.NumPoints() {
			t.Fatalf("n=%d covers %d of %d points", n, len(seen), sweep.NumPoints())
		}
		for idx, c := range seen {
			if c != 1 {
				t.Errorf("n=%d point %d owned by %d shards", n, idx, c)
			}
		}
		// n=7 over 6 points leaves the last shard empty; it must still
		// round-trip and run.
		if n > sweep.NumPoints() && len(shards[n-1].Points) != 0 {
			t.Errorf("shard %d of %d should be empty, has %d points", n-1, n, len(shards[n-1].Points))
		}
	}
}

// TestShardMergeByteIdentical is the core guarantee: for several shard
// counts, running every manifest (through the JSON codecs, in reverse
// order) and merging the results (in rotated order) reproduces the
// single-process RunSweep result byte for byte.
func TestShardMergeByteIdentical(t *testing.T) {
	sweep := fixtureSweep()
	sweep.Select = Selector{Kind: SelectKnee}
	direct, err := RunSweep(sweep, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := resultJSON(t, direct)
	for _, n := range []int{1, 2, 3, 7} {
		shards, err := Shard(sweep, 9, n)
		if err != nil {
			t.Fatal(err)
		}
		// Run shards in reverse — completion order must not matter.
		results := make([]ShardResult, n)
		for i := n - 1; i >= 0; i-- {
			m := roundTripShard(t, shards[i])
			res, err := RunShard(m, nil, 2)
			if err != nil {
				t.Fatal(err)
			}
			results[i] = roundTripResult(t, *res)
		}
		// Merge in rotated order — input order must not matter either.
		rotated := append(append([]ShardResult(nil), results[n/2:]...), results[:n/2]...)
		merged, err := Merge(rotated)
		if err != nil {
			t.Fatal(err)
		}
		if got := resultJSON(t, merged); got != want {
			t.Fatalf("n=%d: merged result differs from single-process RunSweep", n)
		}
	}
}

func TestShardPlanOnlyMerge(t *testing.T) {
	sweep := Sweep{
		Name: "plan",
		Base: Spec{Workload: testSpec().Workload, Alloc: AllocSpec{Kind: AllocPack, V: 4}},
		Axes: []Axis{
			{Kind: AxisCapL, Values: []float64{0.5, 0.8}},
			{Kind: AxisAllocKind, Values: []float64{float64(AllocPack), float64(AllocFirstFit)}},
		},
		PlanOnly: true,
	}
	direct, err := RunSweep(sweep, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := Shard(sweep, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	var results []ShardResult
	for _, m := range shards {
		res, err := RunShard(m, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range res.Points {
			if p.Metrics != nil || p.Alloc == nil {
				t.Fatalf("plan-only shard point %s payload: metrics=%v alloc=%v", p.Label, p.Metrics, p.Alloc)
			}
		}
		results = append(results, *res)
	}
	merged, err := Merge(results)
	if err != nil {
		t.Fatal(err)
	}
	if resultJSON(t, merged) != resultJSON(t, direct) {
		t.Fatal("plan-only merge differs from single-process RunSweep")
	}
}

// TestShardResume pins the resume semantics: points already present in
// a prior (partial) result are reused verbatim — proven by doctoring a
// prior metric and watching the sentinel survive — and only the missing
// points are recomputed.
func TestShardResume(t *testing.T) {
	sweep := fixtureSweep()
	shards, err := Shard(sweep, 9, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := shards[0]
	full, err := RunShard(m, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Points) < 2 {
		t.Fatalf("fixture shard too small to test resume: %d points", len(full.Points))
	}

	// A partial file holding only the first point, with a sentinel
	// energy value no simulation would produce.
	partial := *full
	partial.Points = []ShardPointResult{full.Points[0]}
	doctored := *partial.Points[0].Metrics
	doctored.Energy = 123456789
	partial.Points[0].Metrics = &doctored
	partial = roundTripResult(t, partial)

	resumed, err := RunShard(m, &partial, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Reused(&partial); got != 1 {
		t.Errorf("Reused = %d, want 1", got)
	}
	if len(resumed.Points) != len(full.Points) {
		t.Fatalf("resume produced %d points, want %d", len(resumed.Points), len(full.Points))
	}
	if resumed.Points[0].Metrics.Energy != 123456789 {
		t.Errorf("resume re-ran point %d instead of reusing the prior result", resumed.Points[0].Index)
	}
	for i := 1; i < len(full.Points); i++ {
		if fingerprint(resumed.Points[i].Metrics) != fingerprint(full.Points[i].Metrics) {
			t.Errorf("resumed point %d differs from the fresh run", resumed.Points[i].Index)
		}
	}

	// A prior whose label disagrees with the grid is a stale file from
	// some other sweep — refuse it rather than merge wrong numbers.
	stale := *full
	stale.Points = append([]ShardPointResult(nil), full.Points...)
	stale.Points[0].Label = "threshold=999s farm=8"
	if _, err := RunShard(m, &stale, 0); err == nil || !strings.Contains(err.Error(), "different grid") {
		t.Errorf("stale prior accepted: %v", err)
	}
	// A prior from another seed must be refused too.
	wrongSeed := *full
	wrongSeed.Seed = 10
	if _, err := RunShard(m, &wrongSeed, 0); err == nil {
		t.Error("prior with mismatched seed accepted")
	}
	// A prior whose identity fields and labels all match but whose base
	// spec was edited between runs carries numbers from the old spec —
	// the whole sweep declaration must match before anything is reused.
	wrongSpec := *full
	wrongSpec.Sweep.Base.CacheBytes = 1 << 30
	if _, err := RunShard(m, &wrongSpec, 0); err == nil || !strings.Contains(err.Error(), "different sweep") {
		t.Errorf("prior from an edited base spec accepted: %v", err)
	}
}

func TestShardValidation(t *testing.T) {
	sweep := fixtureSweep()
	if _, err := Shard(sweep, 1, 0); err == nil {
		t.Error("Shard with n=0 accepted")
	}
	custom := sweep
	custom.Axes = append(custom.Axes, Axis{Kind: AxisCustom, Labels: []string{"a"},
		Apply: func(*Spec, int, []int) error { return nil }})
	if _, err := Shard(custom, 1, 2); err == nil || !strings.Contains(err.Error(), "custom axes") {
		t.Errorf("custom-axis sweep sharded: %v", err)
	}

	shards, err := Shard(sweep, 9, 2)
	if err != nil {
		t.Fatal(err)
	}
	// A tampered manifest must not run.
	tampered := shards[0]
	tampered.Points = append([]ShardPoint(nil), shards[0].Points...)
	tampered.Points[0].SeedOffset = 999
	if _, err := RunShard(tampered, nil, 0); err == nil || !strings.Contains(err.Error(), "compiled grid") {
		t.Errorf("tampered manifest ran: %v", err)
	}

	r0, err := RunShard(shards[0], nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := RunShard(shards[1], nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Missing shard: the error must name the first uncovered point.
	if _, err := Merge([]ShardResult{*r0}); err == nil || !strings.Contains(err.Error(), "missing point") {
		t.Errorf("incomplete merge accepted: %v", err)
	}
	// Duplicated shard: same point twice, naming both offending inputs.
	if _, err := Merge([]ShardResult{*r0, *r1, *r0}); err == nil || !strings.Contains(err.Error(), "merge inputs 0 and 2") {
		t.Errorf("duplicate merge accepted: %v", err)
	}
	// Mixed seeds: results from different runs must not combine.
	other := *r1
	other.Seed = 10
	if _, err := Merge([]ShardResult{*r0, other}); err == nil || !strings.Contains(err.Error(), "different runs") {
		t.Errorf("mixed-seed merge accepted: %v", err)
	}
	if _, err := Merge(nil); err == nil {
		t.Error("empty merge accepted")
	}
}

func TestShardFileValidation(t *testing.T) {
	if _, err := DecodeShard(strings.NewReader(`{"Bogus": 1}`)); err == nil {
		t.Error("unknown manifest field decoded")
	}
	if _, err := DecodeShardResult(strings.NewReader(`{"Bogus": 1}`)); err == nil {
		t.Error("unknown result field decoded")
	}
	if _, err := DecodeShard(strings.NewReader(`{"Index": 2, "Count": 1}`)); err == nil {
		t.Error("out-of-range shard index decoded")
	}
	var buf bytes.Buffer
	if err := EncodeShard(&buf, ShardManifest{Index: 0, Count: 0, Sweep: fixtureSweep()}); err == nil {
		t.Error("zero-count manifest encoded")
	}
}

func TestSweepReselect(t *testing.T) {
	res, err := RunSweep(fixtureSweep(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != -1 {
		t.Fatalf("selector-less sweep picked %d", res.Best)
	}
	if err := res.Reselect(Selector{Kind: SelectMinEnergySLO, MaxP95: 1e9}); err != nil {
		t.Fatal(err)
	}
	if res.Best < 0 {
		t.Error("Reselect with an unbounded SLO picked nothing")
	}
	if res.Sweep.Select.Kind != SelectMinEnergySLO {
		t.Error("Reselect did not record the new rule")
	}
	if err := res.Reselect(Selector{Kind: SelectMinEnergySLO}); err == nil {
		t.Error("Reselect accepted an SLO selector without a budget")
	}
}
