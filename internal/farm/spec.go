// Package farm is the declarative scenario engine for the paper's
// trade-off grid. A Spec names every axis of one experiment point —
// farm layout (homogeneous or mixed drive groups), allocation strategy,
// spin-down policy, workload source, and optional front cache — and
// Run(spec, seed) compiles it into a simulation and returns one unified
// Metrics struct. Run is a pure function of (spec, seed): repeated runs
// are byte-identical, which is what lets the experiment harness fan
// thousands of points across workers and lets a regression test pin any
// scenario's output.
//
// Scenarios — named, documented Specs, optionally with a
// threshold-sweep stage — live in a registry (Register / Scenarios) so
// that the CLI, the experiment harness, and the examples all draw from
// the same catalogue. Adding a new experiment point to the grid is one
// registered Spec, not a new file of hand-wired setup.
//
// Grids of specs are first-class: a Sweep (see sweep.go) crosses a base
// Spec with declarative axes (spin threshold, farm size, cache, load
// constraint, group size, workload intensity, allocator, seed) and
// RunSweep fans the points across a bounded worker pool, with pluggable
// Selectors choosing the operating point. Specs and Sweeps serialize to
// JSON (see persist.go), so whole grids run without recompiling.
package farm

import (
	"fmt"
	"math"

	"diskpack/internal/disk"
	"diskpack/internal/trace"
	"diskpack/internal/workload"
)

// DiskGroup is a run of identical drives within a farm. Disks are
// numbered group by group: the first group's drives get the lowest IDs,
// which — because every allocator fills low-numbered disks first — makes
// the first group the "hot" tier of a heterogeneous farm.
type DiskGroup struct {
	Count  int
	Params disk.Params
}

// WorkloadKind selects the workload source of a Spec.
type WorkloadKind int

const (
	// WorkloadTrace replays a pre-built trace verbatim (the seed does
	// not affect it).
	WorkloadTrace WorkloadKind = iota
	// WorkloadSynthetic generates the paper's Table 1 workload
	// (optionally diurnally modulated via Synthetic.Diurnal).
	WorkloadSynthetic
	// WorkloadNERSC synthesizes the Section 5.1 NERSC-like log.
	WorkloadNERSC
	// WorkloadBursty generates ON/OFF Markov-modulated arrivals.
	WorkloadBursty
)

// String names the kind.
func (k WorkloadKind) String() string {
	switch k {
	case WorkloadTrace:
		return "trace"
	case WorkloadSynthetic:
		return "synthetic"
	case WorkloadNERSC:
		return "nersc"
	case WorkloadBursty:
		return "bursty"
	default:
		return fmt.Sprintf("WorkloadKind(%d)", int(k))
	}
}

// WorkloadSpec is a declarative workload source. Exactly the field
// matching Kind must be set; Run overrides the config's Seed with its
// own seed argument so a Spec stays reusable across seeds.
type WorkloadSpec struct {
	Kind      WorkloadKind
	Trace     *trace.Trace        `json:",omitempty"`
	Synthetic *workload.Synthetic `json:",omitempty"`
	NERSC     *workload.NERSC     `json:",omitempty"`
	Bursty    *workload.Bursty    `json:",omitempty"`
}

// TraceWorkload wraps a pre-built trace as a workload source.
func TraceWorkload(tr *trace.Trace) WorkloadSpec {
	return WorkloadSpec{Kind: WorkloadTrace, Trace: tr}
}

// SyntheticWorkload wraps a Table 1-style generator config.
func SyntheticWorkload(cfg workload.Synthetic) WorkloadSpec {
	return WorkloadSpec{Kind: WorkloadSynthetic, Synthetic: &cfg}
}

// NERSCWorkload wraps a NERSC synthesizer config.
func NERSCWorkload(cfg workload.NERSC) WorkloadSpec {
	return WorkloadSpec{Kind: WorkloadNERSC, NERSC: &cfg}
}

// BurstyWorkload wraps an ON/OFF generator config.
func BurstyWorkload(cfg workload.Bursty) WorkloadSpec {
	return WorkloadSpec{Kind: WorkloadBursty, Bursty: &cfg}
}

// validate reports the first inconsistency.
func (w WorkloadSpec) validate() error {
	switch w.Kind {
	case WorkloadTrace:
		if w.Trace == nil {
			return fmt.Errorf("farm: trace workload without a trace")
		}
		return w.Trace.Validate()
	case WorkloadSynthetic:
		if w.Synthetic == nil {
			return fmt.Errorf("farm: synthetic workload without a config")
		}
		return w.Synthetic.Validate()
	case WorkloadNERSC:
		if w.NERSC == nil {
			return fmt.Errorf("farm: nersc workload without a config")
		}
		return w.NERSC.Validate()
	case WorkloadBursty:
		if w.Bursty == nil {
			return fmt.Errorf("farm: bursty workload without a config")
		}
		return w.Bursty.Validate()
	default:
		return fmt.Errorf("farm: unknown workload kind %d", int(w.Kind))
	}
}

// AllocKind selects the file→disk allocation strategy.
type AllocKind int

const (
	// AllocPack is the paper's Pack_Disks (Algorithm 3).
	AllocPack AllocKind = iota
	// AllocPackV is the Pack_Disks_v group round-robin variant.
	AllocPackV
	// AllocRandom is capacity-respecting random placement.
	AllocRandom
	// AllocFirstFit, AllocFirstFitDecreasing, AllocBestFit are the
	// classical bin-packing comparison allocators.
	AllocFirstFit
	AllocFirstFitDecreasing
	AllocBestFit
	// AllocChangHwangPark is the O(n²) algorithm Pack_Disks improves on.
	AllocChangHwangPark
	// AllocExplicit uses a caller-provided file→disk map verbatim.
	AllocExplicit
)

// String names the kind.
func (k AllocKind) String() string {
	switch k {
	case AllocPack:
		return "pack"
	case AllocPackV:
		return "packv"
	case AllocRandom:
		return "random"
	case AllocFirstFit:
		return "firstfit"
	case AllocFirstFitDecreasing:
		return "ffd"
	case AllocBestFit:
		return "bestfit"
	case AllocChangHwangPark:
		return "chp"
	case AllocExplicit:
		return "explicit"
	default:
		return fmt.Sprintf("AllocKind(%d)", int(k))
	}
}

// AllocSpec parameterizes the allocation stage.
type AllocSpec struct {
	Kind AllocKind
	// CapL is the paper's load constraint L in (0, 1] — the fraction of
	// one disk's service capability a packing may load onto it. Ignored
	// by AllocExplicit.
	CapL float64 `json:",omitempty"`
	// V is the group size for AllocPackV (>= 1).
	V int `json:",omitempty"`
	// Disks is the farm size for AllocRandom (0 = size of the Pack_Disks
	// packing of the same items, the paper's convention).
	Disks int `json:",omitempty"`
	// Assign is the explicit file→disk map for AllocExplicit.
	Assign []int `json:",omitempty"`
}

// Explicit wraps a precomputed assignment.
func Explicit(assign []int) AllocSpec { return AllocSpec{Kind: AllocExplicit, Assign: assign} }

// Packed returns the paper's default allocation at load constraint L.
func Packed(capL float64) AllocSpec { return AllocSpec{Kind: AllocPack, CapL: capL} }

// validate reports the first inconsistency.
func (a AllocSpec) validate() error {
	switch a.Kind {
	case AllocExplicit:
		if a.Assign == nil {
			return fmt.Errorf("farm: explicit allocation without an assignment")
		}
		return nil
	case AllocPack, AllocPackV, AllocRandom, AllocFirstFit,
		AllocFirstFitDecreasing, AllocBestFit, AllocChangHwangPark:
		if !(a.CapL > 0 && a.CapL <= 1) || math.IsNaN(a.CapL) {
			return fmt.Errorf("farm: load constraint %v outside (0,1]", a.CapL)
		}
		if a.Kind == AllocPackV && a.V < 1 {
			return fmt.Errorf("farm: pack group size %d must be >= 1", a.V)
		}
		if a.Disks < 0 {
			return fmt.Errorf("farm: negative random farm size %d", a.Disks)
		}
		return nil
	default:
		return fmt.Errorf("farm: unknown allocation kind %d", int(a.Kind))
	}
}

// SpinKind selects the spin-down policy family.
type SpinKind int

const (
	// SpinBreakEven uses each drive's break-even idleness threshold
	// (the paper's policy; 53.3 s for the Table 2 drive).
	SpinBreakEven SpinKind = iota
	// SpinFixed uses a constant threshold (SpinSpec.Threshold seconds).
	SpinFixed
	// SpinNever disables spin-down (the "no power-saving" baseline).
	SpinNever
	// SpinImmediate spins down the moment the queue drains.
	SpinImmediate
	// SpinAdaptive doubles/halves the threshold from observed gaps.
	SpinAdaptive
	// SpinRandomized draws each timeout from the e/(e−1)-competitive
	// distribution.
	SpinRandomized
	// SpinTailAware is a threshold an online controller retunes while
	// the simulation runs (one shared knob per disk group, actuated at
	// epoch boundaries — see RunStream and internal/control). Without a
	// controller it behaves as a fixed threshold at SpinSpec.Threshold,
	// or the drive's break-even time when Threshold is zero.
	SpinTailAware
	// SpinCycleBudget is a fixed threshold (SpinSpec.Threshold seconds,
	// or the drive's break-even time when zero) capped at
	// SpinSpec.CycleBudget spin-downs per disk-day: once a disk exhausts
	// its continuously refilling cycle budget it stays spinning,
	// trading energy for start/stop drive lifetime
	// (policy.CycleBudget).
	SpinCycleBudget
)

// String names the kind.
func (k SpinKind) String() string {
	switch k {
	case SpinBreakEven:
		return "breakeven"
	case SpinFixed:
		return "fixed"
	case SpinNever:
		return "never"
	case SpinImmediate:
		return "immediate"
	case SpinAdaptive:
		return "adaptive"
	case SpinRandomized:
		return "randomized"
	case SpinTailAware:
		return "tailaware"
	case SpinCycleBudget:
		return "cyclecap"
	default:
		return fmt.Sprintf("SpinKind(%d)", int(k))
	}
}

// SpinSpec parameterizes the spin-down policy.
type SpinSpec struct {
	Kind SpinKind
	// Threshold is the fixed idleness threshold in seconds (SpinFixed
	// only).
	Threshold float64 `json:",omitempty"`
	// CycleBudget is the allowed spin-downs per disk-day
	// (SpinCycleBudget only, > 0).
	CycleBudget float64 `json:",omitempty"`
}

// FixedSpin returns a constant-threshold policy spec.
func FixedSpin(seconds float64) SpinSpec { return SpinSpec{Kind: SpinFixed, Threshold: seconds} }

// CycleCapSpin returns a cycle-capped policy spec: threshold seconds
// (0 = break-even) capped at perDay spin-downs per disk-day.
func CycleCapSpin(seconds, perDay float64) SpinSpec {
	return SpinSpec{Kind: SpinCycleBudget, Threshold: seconds, CycleBudget: perDay}
}

// validate reports the first inconsistency.
func (s SpinSpec) validate() error {
	switch s.Kind {
	case SpinFixed, SpinTailAware, SpinCycleBudget:
		if s.Threshold < 0 || math.IsNaN(s.Threshold) {
			return fmt.Errorf("farm: invalid %v spin threshold %v", s.Kind, s.Threshold)
		}
		if s.Kind == SpinCycleBudget {
			if !(s.CycleBudget > 0) || math.IsNaN(s.CycleBudget) || math.IsInf(s.CycleBudget, 0) {
				return fmt.Errorf("farm: cycle budget %v must be positive", s.CycleBudget)
			}
		} else if s.CycleBudget != 0 {
			return fmt.Errorf("farm: cycle budget %v set but policy is %v", s.CycleBudget, s.Kind)
		}
		return nil
	case SpinBreakEven, SpinNever, SpinImmediate, SpinAdaptive, SpinRandomized:
		if s.Threshold != 0 {
			return fmt.Errorf("farm: spin threshold %v set but policy is %v", s.Threshold, s.Kind)
		}
		if s.CycleBudget != 0 {
			return fmt.Errorf("farm: cycle budget %v set but policy is %v", s.CycleBudget, s.Kind)
		}
		return nil
	default:
		return fmt.Errorf("farm: unknown spin kind %d", int(s.Kind))
	}
}

// ControlSpec asks for a closed-loop run: the simulation is windowed
// into Epoch-length telemetry snapshots and the named controller
// (resolved by internal/control through the runner registered with
// RegisterControlRunner) observes each window and actuates — retuning
// SpinTailAware group thresholds, or re-planning the allocation
// against the observed arrival rate. It is pure data, so controlled
// specs serialize, sweep, shard, and coordinate exactly like static
// ones; controllers themselves are deterministic, keeping
// Run(spec, seed) a pure function.
type ControlSpec struct {
	// Controller names the controller kind ("tail-budget",
	// "rate-respec"; internal/control owns the vocabulary).
	Controller string
	// Epoch is the telemetry window length in seconds.
	Epoch float64
	// BudgetP95 is the response-time budget in seconds the tail-budget
	// controller defends (0 = the controller's default).
	BudgetP95 float64 `json:",omitempty"`
	// RespecFactor is the observed/planned rate ratio beyond which the
	// rate-respec controller re-plans the allocation (0 = default).
	RespecFactor float64 `json:",omitempty"`
	// Alpha is the rate-respec controller's EWMA weight in (0, 1]
	// (0 = default).
	Alpha float64 `json:",omitempty"`
	// CycleBudget caps the tail-budget controller's spin-down spending
	// at this many cycles per disk-day (0 = unlimited): the controller
	// observes each group's cumulative spin-downs from the windows and
	// only raises thresholds once a group runs ahead of its budget —
	// still a deterministic pure function of spec+seed.
	CycleBudget float64 `json:",omitempty"`
}

// validate reports the first inconsistency.
func (c ControlSpec) validate() error {
	switch {
	case c.Controller == "":
		return fmt.Errorf("farm: control spec without a controller name")
	case !(c.Epoch > 0) || math.IsNaN(c.Epoch):
		return fmt.Errorf("farm: control epoch %v must be positive", c.Epoch)
	case c.BudgetP95 < 0 || math.IsNaN(c.BudgetP95):
		return fmt.Errorf("farm: invalid control budget %v", c.BudgetP95)
	case c.RespecFactor != 0 && (c.RespecFactor <= 1 || math.IsNaN(c.RespecFactor)):
		return fmt.Errorf("farm: respec factor %v must exceed 1 (or 0 for the default)", c.RespecFactor)
	case c.Alpha < 0 || c.Alpha > 1 || math.IsNaN(c.Alpha):
		return fmt.Errorf("farm: EWMA weight %v outside [0,1]", c.Alpha)
	case c.CycleBudget < 0 || math.IsNaN(c.CycleBudget) || math.IsInf(c.CycleBudget, 0):
		return fmt.Errorf("farm: invalid control cycle budget %v", c.CycleBudget)
	}
	return nil
}

// ReliabilitySpec enables wear-driven disk failures and rebuild
// traffic (storage.ReliabilityConfig): disks accumulate hazard from
// start/stop cycles and powered-on hours, failures are detected at
// CheckEvery boundaries, and each failure injects rebuild streams on
// the failed disk's redundancy group. Pure data, so reliability specs
// serialize, sweep, shard, and coordinate like everything else.
type ReliabilitySpec struct {
	// GroupSize is the redundancy-group width (consecutive disk IDs,
	// >= 2).
	GroupSize int
	// RebuildBytes fixes the reconstructed volume per failure; 0
	// derives it from the failed disk's used capacity.
	RebuildBytes int64 `json:",omitempty"`
	// CheckEvery is the failure-check period in simulated seconds
	// (0 = 3600).
	CheckEvery float64 `json:",omitempty"`
	// Wear overrides the spin-cycle wear model (nil = the reference
	// drive's: 50,000 rated cycles, 0.34% base AFR). Scenarios that
	// want failures within a short simulated horizon use accelerated
	// wear (small RatedCycles).
	Wear *disk.WearParams `json:",omitempty"`
}

// validate reports the first inconsistency.
func (r ReliabilitySpec) validate() error {
	if r.GroupSize < 2 {
		return fmt.Errorf("farm: reliability group size %d must be >= 2", r.GroupSize)
	}
	if r.RebuildBytes < 0 {
		return fmt.Errorf("farm: negative rebuild volume %d", r.RebuildBytes)
	}
	if r.CheckEvery < 0 || math.IsNaN(r.CheckEvery) || math.IsInf(r.CheckEvery, 0) {
		return fmt.Errorf("farm: invalid reliability check period %v", r.CheckEvery)
	}
	if r.Wear != nil {
		return r.Wear.Validate()
	}
	return nil
}

// Spec declares one simulation scenario. The zero value is not valid;
// at minimum Workload must be set (the other stages have usable
// defaults: Pack at L=0.7 would not be a safe silent default, so Alloc
// must carry a CapL for the packing kinds — see AllocSpec).
type Spec struct {
	// Name labels the run in Metrics and error messages.
	Name string `json:",omitempty"`
	// Groups lays out a heterogeneous farm. Empty means a homogeneous
	// farm of DefaultParams drives sized to max(FarmSize, disks the
	// allocation uses).
	Groups []DiskGroup `json:",omitempty"`
	// FarmSize forces a minimum homogeneous farm size (the paper
	// charges both algorithms for the full 100- or 96-disk farm).
	// Must be zero when Groups is set — group counts fix the size.
	FarmSize int `json:",omitempty"`
	// Workload is the request source.
	Workload WorkloadSpec
	// Alloc is the allocation strategy.
	Alloc AllocSpec
	// Spin is the spin-down policy.
	Spin SpinSpec
	// CacheBytes enables a front LRU cache when positive.
	CacheBytes int64 `json:",omitempty"`
	// WriteBestFit switches write placement from first-fit to best-fit
	// among spinning disks.
	WriteBestFit bool `json:",omitempty"`
	// Control, when non-nil, runs the scenario closed-loop: windowed
	// telemetry feeds the named online controller (internal/control),
	// which actuates at epoch boundaries. Run dispatches such specs to
	// the registered control runner.
	Control *ControlSpec `json:",omitempty"`
	// Reliability, when non-nil, adds wear-driven disk failures and
	// rebuild traffic to the run.
	Reliability *ReliabilitySpec `json:",omitempty"`
}

// Validate reports the first invalid field.
func (s Spec) Validate() error {
	if err := s.Workload.validate(); err != nil {
		return err
	}
	if err := s.Alloc.validate(); err != nil {
		return err
	}
	if err := s.Spin.validate(); err != nil {
		return err
	}
	for i, g := range s.Groups {
		if g.Count <= 0 {
			return fmt.Errorf("farm: group %d has count %d", i, g.Count)
		}
		if err := g.Params.Validate(); err != nil {
			return fmt.Errorf("farm: group %d: %w", i, err)
		}
	}
	if len(s.Groups) > 0 && s.FarmSize != 0 {
		return fmt.Errorf("farm: FarmSize %d set alongside Groups (group counts fix the size)", s.FarmSize)
	}
	if s.FarmSize < 0 {
		return fmt.Errorf("farm: negative farm size %d", s.FarmSize)
	}
	if s.CacheBytes < 0 {
		return fmt.Errorf("farm: negative cache size %d", s.CacheBytes)
	}
	if s.Control != nil {
		if err := s.Control.validate(); err != nil {
			return err
		}
	}
	if s.Reliability != nil {
		if err := s.Reliability.validate(); err != nil {
			return err
		}
	}
	return nil
}

// groupTotal returns the summed group counts.
func (s Spec) groupTotal() int {
	n := 0
	for _, g := range s.Groups {
		n += g.Count
	}
	return n
}

// referenceParams returns the drive model used to normalize packing
// items. Homogeneous farms use their (default) drive. Heterogeneous
// farms normalize conservatively, taking each worst-case field
// independently — the smallest capacity, the slowest transfer rate,
// and the longest seek and rotation times across the groups — so the
// reference service time is an upper bound for every drive and no
// drive in any group can be overfilled by the allocation.
func (s Spec) referenceParams() disk.Params {
	if len(s.Groups) == 0 {
		return disk.DefaultParams()
	}
	ref := s.Groups[0].Params
	for _, g := range s.Groups[1:] {
		if g.Params.CapacityBytes < ref.CapacityBytes {
			ref.CapacityBytes = g.Params.CapacityBytes
		}
		if g.Params.TransferRate < ref.TransferRate {
			ref.TransferRate = g.Params.TransferRate
		}
		if g.Params.AvgSeekTime > ref.AvgSeekTime {
			ref.AvgSeekTime = g.Params.AvgSeekTime
		}
		if g.Params.AvgRotationTime > ref.AvgRotationTime {
			ref.AvgRotationTime = g.Params.AvgRotationTime
		}
	}
	return ref
}

// perDiskParams expands Groups into a per-disk parameter slice, or nil
// for a homogeneous farm.
func (s Spec) perDiskParams() []disk.Params {
	if len(s.Groups) == 0 {
		return nil
	}
	out := make([]disk.Params, 0, s.groupTotal())
	for _, g := range s.Groups {
		for i := 0; i < g.Count; i++ {
			out = append(out, g.Params)
		}
	}
	return out
}
