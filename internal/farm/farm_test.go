package farm

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"diskpack/internal/disk"
	"diskpack/internal/trace"
	"diskpack/internal/workload"
)

// testSpec returns a small valid spec for mutation by the validation
// table.
func testSpec() Spec {
	return Spec{
		Name:     "test",
		Workload: SyntheticWorkload(miniSynthetic(300, 2)),
		Alloc:    Packed(0.7),
		Spin:     SpinSpec{Kind: SpinBreakEven},
	}
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantErr string // empty = valid
	}{
		{"valid baseline", func(s *Spec) {}, ""},
		{"valid explicit alloc", func(s *Spec) { s.Alloc = Explicit([]int{0, 1}) }, ""},
		{"valid fixed spin", func(s *Spec) { s.Spin = FixedSpin(120) }, ""},
		{"valid groups", func(s *Spec) {
			s.Groups = []DiskGroup{{Count: 4, Params: disk.DefaultParams()}, {Count: 4, Params: disk.EcoParams()}}
		}, ""},
		{"missing workload config", func(s *Spec) { s.Workload = WorkloadSpec{Kind: WorkloadSynthetic} },
			"synthetic workload without a config"},
		{"trace workload without trace", func(s *Spec) { s.Workload = WorkloadSpec{Kind: WorkloadTrace} },
			"trace workload without a trace"},
		{"unknown workload kind", func(s *Spec) { s.Workload = WorkloadSpec{Kind: WorkloadKind(99)} },
			"unknown workload kind"},
		{"capL zero", func(s *Spec) { s.Alloc.CapL = 0 }, "load constraint"},
		{"capL above one", func(s *Spec) { s.Alloc.CapL = 1.5 }, "load constraint"},
		{"capL NaN", func(s *Spec) { s.Alloc.CapL = math.NaN() }, "load constraint"},
		{"packv without group size", func(s *Spec) { s.Alloc = AllocSpec{Kind: AllocPackV, CapL: 0.7} },
			"group size"},
		{"explicit without assignment", func(s *Spec) { s.Alloc = AllocSpec{Kind: AllocExplicit} },
			"without an assignment"},
		{"unknown alloc kind", func(s *Spec) { s.Alloc.Kind = AllocKind(99) }, "unknown allocation kind"},
		{"negative fixed threshold", func(s *Spec) { s.Spin = FixedSpin(-1) }, "spin threshold"},
		{"threshold on non-fixed policy", func(s *Spec) { s.Spin = SpinSpec{Kind: SpinNever, Threshold: 5} },
			"policy is never"},
		{"unknown spin kind", func(s *Spec) { s.Spin.Kind = SpinKind(99) }, "unknown spin kind"},
		{"empty group", func(s *Spec) { s.Groups = []DiskGroup{{Count: 0, Params: disk.DefaultParams()}} },
			"group 0 has count"},
		{"invalid group params", func(s *Spec) { s.Groups = []DiskGroup{{Count: 2, Params: disk.Params{}}} },
			"group 0"},
		{"farm size with groups", func(s *Spec) {
			s.Groups = []DiskGroup{{Count: 2, Params: disk.DefaultParams()}}
			s.FarmSize = 10
		}, "alongside Groups"},
		{"negative farm size", func(s *Spec) { s.FarmSize = -1 }, "negative farm size"},
		{"negative cache", func(s *Spec) { s.CacheBytes = -1 }, "negative cache size"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := testSpec()
			tc.mutate(&s)
			err := s.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// fingerprint renders every field of the metrics (including the full
// per-disk breakdowns) so byte equality means value equality. The Sim
// pointer is blanked before formatting — its address differs between
// runs; its pointee is rendered separately.
func fingerprint(m *Metrics) string {
	flat := *m
	flat.Sim = nil
	return fmt.Sprintf("%+v|%+v", flat, *m.Sim)
}

func TestRunDeterminism(t *testing.T) {
	specs := map[string]Spec{
		"synthetic":  testSpec(),
		"randomized": {Name: "r", Workload: testSpec().Workload, Alloc: Packed(0.7), Spin: SpinSpec{Kind: SpinRandomized}},
		"hetero": {Name: "h", Workload: testSpec().Workload, Alloc: Packed(0.7),
			Spin: SpinSpec{Kind: SpinBreakEven},
			Groups: []DiskGroup{
				{Count: 10, Params: disk.DefaultParams()},
				{Count: 10, Params: disk.EcoParams()},
			}},
		"bursty": {Name: "b", Workload: BurstyWorkload(workload.Bursty{
			NumFiles: 300, Theta: workload.DefaultTheta,
			MinSize: 5 * disk.MB, MaxSize: 100 * disk.MB,
			OnRate: 10, MeanOn: 30, MeanOff: 120, Duration: 2000,
		}), Alloc: Packed(0.7), Spin: SpinSpec{Kind: SpinBreakEven}},
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			a, err := Run(spec, 7)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(spec, 7)
			if err != nil {
				t.Fatal(err)
			}
			if fa, fb := fingerprint(a), fingerprint(b); fa != fb {
				t.Fatalf("Run(spec, 7) not deterministic:\nfirst:  %s\nsecond: %s", fa, fb)
			}
			c, err := Run(spec, 8)
			if err != nil {
				t.Fatal(err)
			}
			if spec.Workload.Kind != WorkloadTrace && fingerprint(a) == fingerprint(c) {
				t.Fatal("different seeds produced identical metrics — seed is not threaded through")
			}
		})
	}
}

func TestRunBasics(t *testing.T) {
	m, err := Run(testSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed == 0 {
		t.Fatal("no requests completed")
	}
	if m.Energy <= 0 || m.AvgPower <= 0 {
		t.Fatalf("implausible energy %v / power %v", m.Energy, m.AvgPower)
	}
	if m.DisksUsed > m.FarmSize {
		t.Fatalf("DisksUsed %d exceeds FarmSize %d", m.DisksUsed, m.FarmSize)
	}
	if m.LowerBound < 1 || m.DisksUsed < m.LowerBound {
		t.Fatalf("packing lower bound %d vs used %d inconsistent", m.LowerBound, m.DisksUsed)
	}
	if len(m.Utilization) != m.FarmSize {
		t.Fatalf("utilization covers %d disks, want %d", len(m.Utilization), m.FarmSize)
	}
	if m.RespMean <= 0 || m.RespP95 < m.RespMedian {
		t.Fatalf("implausible response stats: mean %v median %v p95 %v", m.RespMean, m.RespMedian, m.RespP95)
	}
}

func TestHeterogeneousFarm(t *testing.T) {
	spec := Spec{
		Name:     "hetero-test",
		Workload: SyntheticWorkload(miniSynthetic(300, 2)),
		Alloc:    Packed(0.7),
		Spin:     SpinSpec{Kind: SpinBreakEven},
		Groups: []DiskGroup{
			{Count: 6, Params: disk.DefaultParams()},
			{Count: 6, Params: disk.EcoParams()},
		},
	}
	m, err := Run(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.FarmSize != 12 {
		t.Fatalf("FarmSize = %d, want 12 (group total)", m.FarmSize)
	}
	// A group too small for the allocation must be rejected, not
	// silently overfilled.
	spec.Groups = []DiskGroup{{Count: 1, Params: disk.DefaultParams()}}
	if m.DisksUsed > 1 {
		if _, err := Run(spec, 3); err == nil {
			t.Fatal("allocation larger than the farm was not rejected")
		}
	}
}

func TestExplicitAllocationAndTraceWorkload(t *testing.T) {
	tr := &trace.Trace{
		Files: []trace.FileInfo{
			{ID: 0, Size: 10 * disk.MB, Rate: 0.01},
			{ID: 1, Size: 20 * disk.MB, Rate: 0.02},
		},
		Requests: []trace.Request{{Time: 1, FileID: 0}, {Time: 2, FileID: 1}, {Time: 500, FileID: 0}},
		Duration: 1000,
	}
	spec := Spec{
		Name:     "explicit",
		Workload: TraceWorkload(tr),
		Alloc:    Explicit([]int{0, 1}),
		Spin:     FixedSpin(60),
	}
	m, err := Run(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed != 3 {
		t.Fatalf("Completed = %d, want 3", m.Completed)
	}
	if m.FarmSize != 2 || m.DisksUsed != 2 {
		t.Fatalf("farm %d/%d, want 2/2", m.DisksUsed, m.FarmSize)
	}
	if m.LowerBound != 0 || m.Rho != 0 {
		t.Fatal("explicit allocation should not report packing-quality numbers")
	}
}

func TestScenarioRegistry(t *testing.T) {
	scs := Scenarios()
	if len(scs) < 6 {
		t.Fatalf("only %d built-in scenarios, want >= 6", len(scs))
	}
	for _, want := range []string{"hetero", "diurnal", "bursty", "slo-sweep"} {
		if _, ok := Lookup(want); !ok {
			t.Fatalf("scenario %q missing from registry", want)
		}
	}
	if _, err := RunScenario("no-such-scenario", 1); err == nil {
		t.Fatal("unknown scenario did not error")
	}
}

// TestBuiltinScenariosRun executes every registered scenario end to end
// — the registry's contract is that each entry is runnable by name.
func TestBuiltinScenariosRun(t *testing.T) {
	if testing.Short() {
		t.Skip("built-in scenarios take a few seconds")
	}
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			res, err := RunScenario(sc.Name, 1)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Runs) == 0 || len(res.Labels) != len(res.Runs) {
				t.Fatalf("runs/labels mismatch: %d/%d", len(res.Runs), len(res.Labels))
			}
			for i, m := range res.Runs {
				if m.Completed == 0 {
					t.Fatalf("run %s completed no requests", res.Labels[i])
				}
			}
			switch {
			case sc.Sweep != nil:
				if res.Best >= 0 && res.Runs[res.Best].RespP95 > sc.Sweep.MaxP95 {
					t.Fatalf("chosen operating point violates the SLO: p95 %v > %v",
						res.Runs[res.Best].RespP95, sc.Sweep.MaxP95)
				}
			case sc.Grid != nil:
				// Grid scenarios pick Best with their own selector (or
				// none: -1); any in-range index is valid here.
				if res.Best < -1 || res.Best >= len(res.Runs) {
					t.Fatalf("grid scenario Best = %d with %d runs", res.Best, len(res.Runs))
				}
			default:
				if res.Best != 0 {
					t.Fatalf("single-run scenario Best = %d, want 0", res.Best)
				}
			}
		})
	}
}

func TestSLOSweepSelection(t *testing.T) {
	// Exercise the sweep machinery directly rather than through
	// Register — mutating the global registry would panic on duplicate
	// names when the test binary runs more than once per process.
	sweep := Scenario{
		Name: "sweep-test",
		Spec: Spec{
			Name:     "sweep-test",
			Workload: SyntheticWorkload(miniSynthetic(300, 2)),
			Alloc:    Packed(0.7),
			Spin:     SpinSpec{Kind: SpinBreakEven},
		},
		Sweep: &SLOSweep{Thresholds: []float64{10, 600}, MaxP95: 1e9},
	}
	res, err := runScenario(sweep, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 2 {
		t.Fatalf("sweep ran %d points, want 2", len(res.Runs))
	}
	// With an unbounded SLO the sweep must pick the lowest-energy run.
	want := 0
	if res.Runs[1].Energy < res.Runs[0].Energy {
		want = 1
	}
	if res.Best != want {
		t.Fatalf("Best = %d, want %d (energies %v, %v)",
			res.Best, want, res.Runs[0].Energy, res.Runs[1].Energy)
	}
}
