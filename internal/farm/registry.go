package farm

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// SLOSweep turns a scenario into an operating-point search: the base
// Spec is run once per threshold (overriding its spin policy with a
// fixed threshold) and the sweep reports the most power-frugal point
// whose p95 response time stays within the SLO — the paper's trade-off
// posed as the question an operator actually asks.
//
// SLOSweep predates the general grid engine and is now a thin alias
// over it: Grid() compiles it to a one-axis Sweep with a
// SelectMinEnergySLO selector, and runScenario executes that.
type SLOSweep struct {
	// Thresholds are the idleness thresholds to try, in seconds.
	Thresholds []float64
	// MaxP95 is the response-time SLO in seconds.
	MaxP95 float64
}

// Grid compiles the threshold search to its general form: a sweep of
// the base spec along one AxisSpinThreshold axis, selecting the
// cheapest point within the SLO.
func (s *SLOSweep) Grid(name string, base Spec) Sweep {
	return Sweep{
		Name:   name,
		Base:   base,
		Axes:   []Axis{{Kind: AxisSpinThreshold, Values: s.Thresholds}},
		Select: Selector{Kind: SelectMinEnergySLO, MaxP95: s.MaxP95},
	}
}

// validate reports the first inconsistency.
func (s *SLOSweep) validate() error {
	if len(s.Thresholds) == 0 {
		return fmt.Errorf("farm: sweep without thresholds")
	}
	for i, t := range s.Thresholds {
		if t < 0 || math.IsNaN(t) {
			return fmt.Errorf("farm: sweep threshold %d is %v", i, t)
		}
	}
	if s.MaxP95 <= 0 || math.IsNaN(s.MaxP95) {
		return fmt.Errorf("farm: sweep SLO %v must be positive", s.MaxP95)
	}
	return nil
}

// Scenario is a named, documented entry of the scenario catalogue.
type Scenario struct {
	Name string
	// Doc is a one-line description shown by listings.
	Doc string
	// Spec is the scenario's simulation point.
	Spec Spec
	// Sweep, when non-nil, runs the spec once per threshold and selects
	// an operating point (see SLOSweep).
	Sweep *SLOSweep
	// Grid, when non-nil, runs a full declarative sweep instead of the
	// single Spec — scenarios whose point set is richer than a
	// threshold search (e.g. static-vs-controlled comparisons) declare
	// it here. Takes precedence over Sweep.
	Grid *Sweep
}

// Result is the outcome of running a scenario: one Metrics per run
// (single-element without a sweep) plus the sweep's verdict.
type Result struct {
	Scenario Scenario
	// Labels[i] names Runs[i] (the threshold for sweep runs).
	Labels []string
	Runs   []*Metrics
	// Best indexes the chosen operating point in Runs: the
	// lowest-energy run meeting the sweep's SLO, or −1 when no run
	// meets it. Always 0 without a sweep.
	Best int
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Scenario{}
)

// Register adds a scenario to the catalogue. It panics on an empty or
// duplicate name or an invalid spec — registration happens at init time
// and a bad scenario is a programming error.
func Register(sc Scenario) {
	if sc.Name == "" {
		panic("farm: Register with empty scenario name")
	}
	if err := sc.Spec.Validate(); err != nil {
		panic(fmt.Sprintf("farm: scenario %q: %v", sc.Name, err))
	}
	if sc.Sweep != nil {
		if err := sc.Sweep.validate(); err != nil {
			panic(fmt.Sprintf("farm: scenario %q: %v", sc.Name, err))
		}
	}
	if sc.Grid != nil {
		if err := sc.Grid.Validate(); err != nil {
			panic(fmt.Sprintf("farm: scenario %q: %v", sc.Name, err))
		}
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[sc.Name]; dup {
		panic(fmt.Sprintf("farm: duplicate scenario %q", sc.Name))
	}
	registry[sc.Name] = sc
}

// Scenarios returns the catalogue sorted by name.
func Scenarios() []Scenario {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]Scenario, 0, len(registry))
	for _, sc := range registry {
		out = append(out, sc)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// Lookup finds a scenario by name.
func Lookup(name string) (Scenario, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	sc, ok := registry[name]
	return sc, ok
}

// RunScenario executes the named scenario: a single Run without a
// sweep, or one Run per threshold with the sweep's operating-point
// selection.
func RunScenario(name string, seed int64) (*Result, error) {
	sc, ok := Lookup(name)
	if !ok {
		names := make([]string, 0)
		for _, s := range Scenarios() {
			names = append(names, s.Name)
		}
		return nil, fmt.Errorf("farm: unknown scenario %q (have %v)", name, names)
	}
	return runScenario(sc, seed)
}

// runScenario executes an already-resolved scenario. Threshold sweeps
// and grid scenarios go through the grid engine: every point runs with
// the scenario's seed (so the workload draw is shared and points stay
// comparable), fanned across the machine's cores.
func runScenario(sc Scenario, seed int64) (*Result, error) {
	var grid Sweep
	switch {
	case sc.Grid != nil:
		grid = *sc.Grid
	case sc.Sweep != nil:
		grid = sc.Sweep.Grid(sc.Name, sc.Spec)
	default:
		m, err := Run(sc.Spec, seed)
		if err != nil {
			return nil, err
		}
		return &Result{Scenario: sc, Labels: []string{sc.Spec.Name}, Runs: []*Metrics{m}, Best: 0}, nil
	}
	sr, err := RunSweep(grid, seed, 0)
	if err != nil {
		return nil, err
	}
	res := &Result{Scenario: sc, Best: sr.Best}
	for i := range sr.Points {
		res.Labels = append(res.Labels, sr.Points[i].Label)
		res.Runs = append(res.Runs, sr.Points[i].Metrics)
	}
	return res, nil
}
