package farm

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"diskpack/internal/obs"
)

// TestAssembleMatchesRunSweep proves the streaming seam end to end:
// compiling the grid, running every point individually (in reverse
// order, as a scattered worker pool might), and assembling the results
// reproduces the single-process RunSweep result byte for byte.
func TestAssembleMatchesRunSweep(t *testing.T) {
	sweep := fixtureSweep()
	sweep.Select = Selector{Kind: SelectKnee}
	direct, err := RunSweep(sweep, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(sweep, 9)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]ShardPointResult, 0, c.NumPoints())
	for i := c.NumPoints() - 1; i >= 0; i-- {
		pr, err := c.RunPoint(i)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, pr)
	}
	assembled, err := c.Assemble(results)
	if err != nil {
		t.Fatal(err)
	}
	if resultJSON(t, assembled) != resultJSON(t, direct) {
		t.Fatal("assembled result differs from single-process RunSweep")
	}
}

// TestMergeFromStreamingSeam covers Merge over shard results whose
// points were produced one at a time through the seam rather than by
// RunShard — the path a coordinator-fed shard file takes.
func TestMergeFromStreamingSeam(t *testing.T) {
	sweep := fixtureSweep()
	sweep.Select = Selector{Kind: SelectKnee}
	direct, err := RunSweep(sweep, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(sweep, 9)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2
	shards := make([]ShardResult, n)
	for s := range shards {
		shards[s] = ShardResult{Index: s, Count: n, Seed: 9, Sweep: sweep}
	}
	for i := 0; i < c.NumPoints(); i++ {
		pr, err := c.RunPoint(i)
		if err != nil {
			t.Fatal(err)
		}
		shards[i%n].Points = append(shards[i%n].Points, pr)
	}
	merged, err := Merge(shards)
	if err != nil {
		t.Fatal(err)
	}
	if resultJSON(t, merged) != resultJSON(t, direct) {
		t.Fatal("merge of seam-produced results differs from single-process RunSweep")
	}
}

func TestCompiledSweepChecks(t *testing.T) {
	c, err := Compile(fixtureSweep(), 9)
	if err != nil {
		t.Fatal(err)
	}
	good := c.Descriptor(0)
	if err := c.Check(good); err != nil {
		t.Errorf("Check of a genuine descriptor: %v", err)
	}
	bad := good
	bad.SeedOffset = 999
	if err := c.Check(bad); err == nil || !strings.Contains(err.Error(), "compiled grid") {
		t.Errorf("tampered descriptor accepted: %v", err)
	}
	if err := c.Check(ShardPoint{Index: c.NumPoints()}); err == nil {
		t.Error("out-of-range descriptor accepted")
	}
	pr, err := c.RunPoint(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CheckResult(pr); err != nil {
		t.Errorf("CheckResult of a genuine result: %v", err)
	}
	relabeled := pr
	relabeled.Label = "threshold=999s farm=8"
	if err := c.CheckResult(relabeled); err == nil || !strings.Contains(err.Error(), "different grid") {
		t.Errorf("relabeled result accepted: %v", err)
	}
	empty := pr
	empty.Metrics = nil
	if err := c.CheckResult(empty); err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Errorf("payload-less result accepted: %v", err)
	}
	if _, err := c.RunPoint(c.NumPoints()); err == nil {
		t.Error("RunPoint outside the grid succeeded")
	}
	// Assemble rejects duplicates and holes with named points.
	if _, err := c.Assemble([]ShardPointResult{pr, pr}); err == nil || !strings.Contains(err.Error(), "more than one") {
		t.Errorf("duplicate assembly accepted: %v", err)
	}
	if _, err := c.Assemble([]ShardPointResult{pr}); err == nil || !strings.Contains(err.Error(), "missing point") {
		t.Errorf("incomplete assembly accepted: %v", err)
	}
}

// TestRunShardStream pins the streaming contract RunShard's journal
// depends on: every newly computed point reaches the sink exactly once,
// reused prior points are not re-emitted, and cancelling the context
// aborts with ctx.Err() after the in-flight points have streamed.
func TestRunShardStream(t *testing.T) {
	sweep := fixtureSweep()
	shards, err := Shard(sweep, 9, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := shards[0]
	var streamed []ShardPointResult
	full, err := RunShardStream(context.Background(), m, nil, 0, func(pr ShardPointResult) error {
		streamed = append(streamed, pr)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(m.Points) {
		t.Fatalf("sink saw %d points, shard owns %d", len(streamed), len(m.Points))
	}
	seen := make(map[int]bool)
	for _, pr := range streamed {
		if seen[pr.Index] {
			t.Errorf("point %d streamed twice", pr.Index)
		}
		seen[pr.Index] = true
		if pr.Metrics == nil {
			t.Errorf("point %d streamed without its payload", pr.Index)
		}
	}

	// Resume: with a full prior, nothing is recomputed so nothing
	// streams.
	streamed = nil
	if _, err := RunShardStream(context.Background(), m, full, 0, func(pr ShardPointResult) error {
		streamed = append(streamed, pr)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != 0 {
		t.Errorf("fully reused shard streamed %d points", len(streamed))
	}

	// A cancelled context aborts the run with ctx.Err().
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunShardStream(ctx, m, nil, 0, nil); err != context.Canceled {
		t.Errorf("cancelled run returned %v, want context.Canceled", err)
	}

	// A sink failure aborts the run.
	if _, err := RunShardStream(context.Background(), m, nil, 1, func(ShardPointResult) error {
		return os.ErrClosed
	}); err == nil || !strings.Contains(err.Error(), "streaming point") {
		t.Errorf("sink failure not surfaced: %v", err)
	}
}

func TestPointJournal(t *testing.T) {
	sweep := fixtureSweep()
	c, err := Compile(sweep, 9)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "points.journal")

	j, recovered, err := OpenPointJournal(path, sweep, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 {
		t.Fatalf("fresh journal recovered %d points", len(recovered))
	}
	p0, err := c.RunPoint(0)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := c.RunPoint(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range []ShardPointResult{p0, p1} {
		if err := j.Append(pr); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a torn final line must be discarded,
	// and the journal must keep working afterwards.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"Index": 5, "Label": "torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j, recovered, err = OpenPointJournal(path, sweep, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 2 || recovered[0].Index != 0 || recovered[1].Index != 1 {
		t.Fatalf("recovered %+v, want points 0 and 1", recovered)
	}
	if recovered[0].Metrics == nil || recovered[0].Metrics.Energy != p0.Metrics.Energy {
		t.Error("recovered point 0 lost its payload")
	}
	p2, err := c.RunPoint(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(p2); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, recovered, err = OpenPointJournal(path, sweep, 9); err != nil {
		t.Fatal(err)
	} else if len(recovered) != 3 {
		t.Fatalf("after torn-line recovery and a new append, recovered %d points, want 3", len(recovered))
	}

	// A journal written for another seed or sweep must be refused.
	if _, _, err := OpenPointJournal(path, sweep, 10); err == nil || !strings.Contains(err.Error(), "different sweep or seed") {
		t.Errorf("wrong-seed journal accepted: %v", err)
	}
	other := sweep
	other.Base.CacheBytes = 1 << 30
	if _, _, err := OpenPointJournal(path, other, 9); err == nil || !strings.Contains(err.Error(), "different sweep or seed") {
		t.Errorf("wrong-sweep journal accepted: %v", err)
	}

	// A complete-but-undecodable line is corruption, not a torn append.
	if err := os.WriteFile(path, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenPointJournal(path, sweep, 9); err == nil || !strings.Contains(err.Error(), "delete it") {
		t.Errorf("corrupt journal accepted: %v", err)
	}
}

// TestJournalSpanEnvelopes pins the observability sidecar contract:
// span envelope lines ride alongside point results but recovery
// returns only the points.
func TestJournalSpanEnvelopes(t *testing.T) {
	sweep := fixtureSweep()
	c, err := Compile(sweep, 9)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "points.journal")
	j, _, err := OpenPointJournal(path, sweep, 9)
	if err != nil {
		t.Fatal(err)
	}
	p0, err := c.RunPoint(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(p0); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendSpan(obs.Span{
		ID: obs.SpanID(c.Fingerprint(), 0, 1, "grant"), Point: 0, Attempt: 1,
		Phase: "grant", Status: obs.SpanOK, Start: 0.5, End: 1.5,
		Args: map[string]any{"worker": "w1"},
	}); err != nil {
		t.Fatal(err)
	}
	p1, err := c.RunPoint(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(p1); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j, recovered, err := OpenPointJournal(path, sweep, 9)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(recovered) != 2 || recovered[0].Index != 0 || recovered[1].Index != 1 {
		t.Fatalf("recovered %d points, want points 0 and 1", len(recovered))
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"Span":{`) {
		t.Error("journal is missing the span envelope line")
	}
}

func TestFingerprint(t *testing.T) {
	sweep := fixtureSweep()
	fp := Fingerprint(sweep, 9)
	if len(fp) != 16 {
		t.Fatalf("fingerprint %q, want 16 hex digits", fp)
	}
	if fp != Fingerprint(sweep, 9) {
		t.Error("fingerprint not stable")
	}
	if fp == Fingerprint(sweep, 10) {
		t.Error("seed change did not change the fingerprint")
	}
	other := sweep
	other.Base.CacheBytes = 1 << 30
	if fp == Fingerprint(other, 9) {
		t.Error("sweep change did not change the fingerprint")
	}
	c, err := Compile(sweep, 9)
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint() != fp {
		t.Error("CompiledSweep.Fingerprint disagrees with Fingerprint")
	}
}
