package farm

import (
	"fmt"
	"math/rand"

	"diskpack/internal/core"
	"diskpack/internal/disk"
	"diskpack/internal/policy"
	"diskpack/internal/storage"
	"diskpack/internal/trace"
)

// Metrics is the unified result of one scenario run: the power and
// response-time quantities the paper trades off, the packing-quality
// numbers of Theorem 1, and per-disk utilization. Sim retains the full
// storage.Results (per-disk breakdowns, write accounting) for callers
// that need more.
type Metrics struct {
	Spec string // Spec.Name
	Seed int64

	// Farm shape.
	FarmSize  int // simulated disks, including never-used ones
	DisksUsed int // disks the allocation actually populated
	// Packing quality (zero for AllocExplicit, which has no items).
	LowerBound int
	Rho        float64

	// Energy and power.
	Duration         float64
	Energy           float64 // joules
	AvgPower         float64 // watts
	NoSavingEnergy   float64 // joules, spin-down disabled baseline
	PowerSavingRatio float64 // 1 − Energy/NoSavingEnergy

	// Response-time distribution, seconds.
	RespMean, RespMedian, RespP95, RespP99, RespMax float64

	// Request and activity counts.
	Completed, Unfinished int64
	SpinUps, SpinDowns    int
	AvgStandbyDisks       float64
	CacheHitRatio         float64

	// Reliability. Failures, DataLossEvents, Rebuilds, RebuildTime
	// (seconds spent rebuilding), and RebuildBytes are nonzero only for
	// specs with Reliability set; CyclesPerDay (farm-average start/stop
	// cycles per disk-day) and AFR (the wear model's annual failure
	// rate, extrapolated from the observed duty cycle) are modeled for
	// every run so sweeps can select under a durability budget.
	Failures       int
	DataLossEvents int
	Rebuilds       int
	RebuildTime    float64
	CyclesPerDay   float64
	AFR            float64

	// Utilization[i] is disk i's busy fraction (seek + transfer time
	// over the horizon).
	Utilization []float64

	Sim *storage.Results
}

// BuildTrace materializes the spec's workload. Generated workloads use
// the given seed in place of the config's; a pre-built trace is
// returned as-is.
func BuildTrace(w WorkloadSpec, seed int64) (*trace.Trace, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	switch w.Kind {
	case WorkloadTrace:
		return w.Trace, nil
	case WorkloadSynthetic:
		cfg := *w.Synthetic
		cfg.Seed = seed
		return cfg.Build()
	case WorkloadNERSC:
		cfg := *w.NERSC
		cfg.Seed = seed
		return cfg.Build()
	case WorkloadBursty:
		cfg := *w.Bursty
		cfg.Seed = seed
		return cfg.Build()
	default:
		return nil, fmt.Errorf("farm: unknown workload kind %d", int(w.Kind))
	}
}

// Items converts a trace's file population into packing items
// normalized against the spec's reference drive and the alloc spec's
// load constraint.
func (s Spec) Items(tr *trace.Trace) ([]core.Item, error) {
	ref := s.referenceParams()
	sizes := make([]int64, len(tr.Files))
	rates := make([]float64, len(tr.Files))
	for i, f := range tr.Files {
		sizes[i] = f.Size
		rates[i] = f.Rate
	}
	return core.BuildItems(sizes, rates, ref.ServiceTime, ref.CapacityBytes, s.Alloc.CapL)
}

// Allocation is the output of the allocation stage: the file→disk map
// plus the packing-quality numbers of Theorem 1 (zero for
// AllocExplicit, which has no items).
type Allocation struct {
	Assign     []int
	DisksUsed  int
	LowerBound int
	Rho        float64
	// Bound is the Theorem 1 guarantee evaluated on the instance (+Inf
	// at rho = 1).
	Bound float64
}

// Plan runs only the workload-synthesis and allocation stages of a
// spec — no simulation. Use it to size a shared farm across a sweep of
// specs before the real runs; like Run it is a pure function of
// (spec, seed).
func Plan(spec Spec, seed int64) (*Allocation, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	tr, err := BuildTrace(spec.Workload, seed)
	if err != nil {
		return nil, fmt.Errorf("farm %s: workload: %w", spec.Name, err)
	}
	return spec.allocate(tr, seed+1)
}

// allocate runs the spec's allocation strategy over the trace's files.
func (s Spec) allocate(tr *trace.Trace, seed int64) (*Allocation, error) {
	if s.Alloc.Kind == AllocExplicit {
		used := 0
		for _, d := range s.Alloc.Assign {
			if d+1 > used {
				used = d + 1
			}
		}
		return &Allocation{Assign: s.Alloc.Assign, DisksUsed: used}, nil
	}
	items, err := s.Items(tr)
	if err != nil {
		return nil, err
	}
	var a *core.Assignment
	switch s.Alloc.Kind {
	case AllocPack:
		a, err = core.PackDisks(items)
	case AllocPackV:
		a, err = core.PackDisksV(items, s.Alloc.V)
	case AllocRandom:
		n := s.Alloc.Disks
		if n == 0 {
			ref, err2 := core.PackDisks(items)
			if err2 != nil {
				return nil, err2
			}
			n = ref.NumDisks
		}
		a, err = core.RandomAssignCapacity(items, n, rand.New(rand.NewSource(seed)))
	case AllocFirstFit:
		a, err = core.FirstFit(items)
	case AllocFirstFitDecreasing:
		a, err = core.FirstFitDecreasing(items)
	case AllocBestFit:
		a, err = core.BestFit(items)
	case AllocChangHwangPark:
		a, err = core.ChangHwangPark(items)
	default:
		return nil, fmt.Errorf("farm: unknown allocation kind %d", int(s.Alloc.Kind))
	}
	if err != nil {
		return nil, err
	}
	return &Allocation{
		Assign:     a.DiskOf,
		DisksUsed:  a.NumDisks,
		LowerBound: core.LowerBoundDisks(items),
		Rho:        core.Rho(items),
		Bound:      core.ApproxBound(items),
	}, nil
}

// spinConfig maps the spin spec onto storage.Config fields. perDisk is
// the heterogeneous parameter slice (nil for homogeneous farms);
// adaptive and randomized policies are centred on each disk's own
// break-even time.
func (s Spec) spinConfig(perDisk []disk.Params, seed int64) (threshold float64, factory func(int) disk.SpinPolicy, err error) {
	paramsAt := func(i int) disk.Params {
		if len(perDisk) > 0 {
			return perDisk[i]
		}
		return disk.DefaultParams()
	}
	switch s.Spin.Kind {
	case SpinBreakEven:
		return storage.BreakEven, nil, nil
	case SpinFixed:
		return s.Spin.Threshold, nil, nil
	case SpinNever:
		return disk.NeverSpinDown, nil, nil
	case SpinImmediate:
		return 0, nil, nil
	case SpinAdaptive:
		return 0, func(i int) disk.SpinPolicy { return policy.NewAdaptive(paramsAt(i)) }, nil
	case SpinRandomized:
		return 0, func(i int) disk.SpinPolicy { return policy.NewRandomized(paramsAt(i), seed+int64(i)) }, nil
	case SpinTailAware:
		// Un-controlled runs behave as a fixed threshold at the initial
		// value; RunStream installs the shared per-group knobs instead.
		return 0, func(i int) disk.SpinPolicy { return policy.NewTunable(paramsAt(i), s.Spin.Threshold) }, nil
	case SpinCycleBudget:
		return 0, func(i int) disk.SpinPolicy {
			return policy.NewCycleBudget(paramsAt(i), s.Spin.Threshold, s.Spin.CycleBudget)
		}, nil
	default:
		return 0, nil, fmt.Errorf("farm: unknown spin kind %d", int(s.Spin.Kind))
	}
}

// reliabilityConfig maps the spec's reliability stage onto the
// storage config: the failure clocks are seeded at seed+3, after the
// trace (seed), allocation (seed+1), and spin policies (seed+2).
func (s Spec) reliabilityConfig(seed int64) *storage.ReliabilityConfig {
	if s.Reliability == nil {
		return nil
	}
	rc := &storage.ReliabilityConfig{
		GroupSize:    s.Reliability.GroupSize,
		RebuildBytes: s.Reliability.RebuildBytes,
		CheckEvery:   s.Reliability.CheckEvery,
		Seed:         seed + 3,
	}
	if s.Reliability.Wear != nil {
		rc.Wear = *s.Reliability.Wear
	}
	return rc
}

// resolveFarmSize settles the simulated farm size against the
// allocation and the spec's layout, returning the heterogeneous
// per-disk parameter slice (nil for homogeneous farms).
func resolveFarmSize(spec Spec, alloc *Allocation) (int, []disk.Params, error) {
	farmSize := alloc.DisksUsed
	perDisk := spec.perDiskParams()
	if len(perDisk) > 0 {
		farmSize = len(perDisk)
		if alloc.DisksUsed > farmSize {
			return 0, nil, fmt.Errorf("farm %s: allocation uses %d disks but groups provide only %d",
				spec.Name, alloc.DisksUsed, farmSize)
		}
	} else if spec.FarmSize > farmSize {
		farmSize = spec.FarmSize
	}
	if farmSize < 1 {
		farmSize = 1
	}
	return farmSize, perDisk, nil
}

// assembleMetrics folds a simulation result into the unified Metrics.
func assembleMetrics(spec Spec, seed int64, farmSize int, alloc *Allocation, res *storage.Results) *Metrics {
	m := &Metrics{
		Spec:             spec.Name,
		Seed:             seed,
		FarmSize:         farmSize,
		DisksUsed:        alloc.DisksUsed,
		LowerBound:       alloc.LowerBound,
		Rho:              alloc.Rho,
		Duration:         res.Duration,
		Energy:           res.Energy,
		AvgPower:         res.AvgPower,
		NoSavingEnergy:   res.NoSavingEnergy,
		PowerSavingRatio: res.PowerSavingRatio,
		RespMean:         res.RespMean,
		RespMedian:       res.RespMedian,
		RespP95:          res.RespP95,
		RespP99:          res.RespP99,
		RespMax:          res.RespMax,
		Completed:        res.Completed,
		Unfinished:       res.Unfinished,
		SpinUps:          res.SpinUps,
		SpinDowns:        res.SpinDowns,
		AvgStandbyDisks:  res.AvgStandbyDisks,
		CacheHitRatio:    res.CacheHitRatio,
		Failures:         res.Failures,
		DataLossEvents:   res.DataLossEvents,
		Rebuilds:         res.Rebuilds,
		RebuildTime:      res.RebuildTime,
		CyclesPerDay:     res.CyclesPerDay,
		AFR:              res.AFR,
		Utilization:      make([]float64, farmSize),
		Sim:              res,
	}
	if res.Duration > 0 {
		for i, b := range res.PerDisk {
			m.Utilization[i] = (b.Durations[disk.Seeking] + b.Durations[disk.Transferring]) / res.Duration
		}
	}
	return m
}

// controlRunner executes controlled specs (Spec.Control != nil). The
// farm engine cannot depend on internal/control — control sits above
// it — so control registers its executor here at init time, and Run
// dispatches through the hook. Every grid executor (sweeps, shards,
// the coordinator) funnels through Run, so registering once makes
// controlled specs first-class everywhere.
var controlRunner func(Spec, int64) (*Metrics, error)

// RegisterControlRunner installs the executor for controlled specs
// (called by internal/control's init).
func RegisterControlRunner(fn func(Spec, int64) (*Metrics, error)) { controlRunner = fn }

// Run compiles the spec into a simulation and executes it. It is a pure
// function of (spec, seed): the same inputs always produce identical
// Metrics. Controlled specs (Spec.Control != nil) dispatch to the
// closed-loop executor internal/control registers; everything else
// runs open-loop here.
func Run(spec Spec, seed int64) (*Metrics, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Control != nil {
		if controlRunner == nil {
			return nil, fmt.Errorf("farm %s: spec asks for controller %q but no control runner is registered (import internal/control)",
				spec.Name, spec.Control.Controller)
		}
		return controlRunner(spec, seed)
	}
	tr, err := BuildTrace(spec.Workload, seed)
	if err != nil {
		return nil, fmt.Errorf("farm %s: workload: %w", spec.Name, err)
	}
	alloc, err := spec.allocate(tr, seed+1)
	if err != nil {
		return nil, fmt.Errorf("farm %s: allocation: %w", spec.Name, err)
	}
	farmSize, perDisk, err := resolveFarmSize(spec, alloc)
	if err != nil {
		return nil, err
	}
	threshold, factory, err := spec.spinConfig(perDisk, seed+2)
	if err != nil {
		return nil, err
	}
	res, err := storage.RunParallel(tr, alloc.Assign, storage.Config{
		NumDisks:      farmSize,
		PerDisk:       perDisk,
		IdleThreshold: threshold,
		PolicyFactory: factory,
		CacheBytes:    spec.CacheBytes,
		WriteBestFit:  spec.WriteBestFit,
		Reliability:   spec.reliabilityConfig(seed),
		Obs:           CurrentRunObserver(),
	}, storage.ParallelConfig{Workers: SimWorkers(), Label: spec.Name})
	if err != nil {
		return nil, fmt.Errorf("farm %s: simulation: %w", spec.Name, err)
	}
	return assembleMetrics(spec, seed, farmSize, alloc, res), nil
}
