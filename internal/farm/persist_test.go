package farm

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"diskpack/internal/disk"
)

func TestSpecFileRoundTrip(t *testing.T) {
	spec := Spec{
		Name: "roundtrip",
		Groups: []DiskGroup{
			{Count: 8, Params: disk.DefaultParams()},
			{Count: 8, Params: disk.EcoParams()},
		},
		Workload:   SyntheticWorkload(miniSynthetic(300, 2)),
		Alloc:      AllocSpec{Kind: AllocPackV, CapL: 0.7, V: 4},
		Spin:       FixedSpin(120),
		CacheBytes: 16 * disk.GB,
	}
	var buf bytes.Buffer
	if err := EncodeFile(&buf, File{Spec: &spec}); err != nil {
		t.Fatal(err)
	}
	// Kinds serialize by name, not number.
	for _, want := range []string{`"synthetic"`, `"packv"`, `"fixed"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("encoded file missing %s:\n%s", want, buf.String())
		}
	}
	doc, err := DecodeFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Sweep != nil || doc.Spec == nil {
		t.Fatal("round trip changed the document kind")
	}
	if !reflect.DeepEqual(*doc.Spec, spec) {
		t.Fatalf("round trip changed the spec:\nin:  %+v\nout: %+v", spec, *doc.Spec)
	}
	// The decoded spec must actually run.
	if _, err := Run(*doc.Spec, 1); err != nil {
		t.Fatal(err)
	}
}

func TestSweepFileRoundTrip(t *testing.T) {
	sweep := Sweep{
		Name: "grid",
		Base: testSpec(),
		Axes: []Axis{
			{Kind: AxisSpinThreshold, Values: []float64{30, 300}},
			{Kind: AxisFarmSize, Values: []float64{10, 20}, SeedStep: 2},
		},
		Select: Selector{Kind: SelectMinEnergySLO, MaxP95: 25},
	}
	var buf bytes.Buffer
	if err := EncodeFile(&buf, File{Sweep: &sweep}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"threshold"`, `"farm"`, `"slo"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("encoded sweep missing %s", want)
		}
	}
	doc, err := DecodeFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Sweep == nil {
		t.Fatal("sweep document decoded as a spec")
	}
	if !reflect.DeepEqual(*doc.Sweep, sweep) {
		t.Fatalf("round trip changed the sweep:\nin:  %+v\nout: %+v", sweep, *doc.Sweep)
	}
	// Decoded sweeps run and keep their selection rule.
	res, err := RunSweep(*doc.Sweep, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("decoded sweep ran %d points, want 4", len(res.Points))
	}
}

func TestFileValidation(t *testing.T) {
	spec := testSpec()
	sweep := Sweep{Base: spec, Axes: []Axis{{Kind: AxisSpinThreshold, Values: []float64{1}}}}
	var buf bytes.Buffer
	if err := EncodeFile(&buf, File{}); err == nil {
		t.Error("empty document accepted")
	}
	if err := EncodeFile(&buf, File{Spec: &spec, Sweep: &sweep}); err == nil {
		t.Error("two-payload document accepted")
	}
	custom := Sweep{Base: spec, Axes: []Axis{{Kind: AxisCustom, Labels: []string{"a"},
		Apply: func(*Spec, int, []int) error { return nil }}}}
	if err := EncodeFile(&buf, File{Sweep: &custom}); err == nil {
		t.Error("custom axis serialized")
	}
	bad := spec
	bad.CacheBytes = -1
	if err := EncodeFile(&buf, File{Spec: &bad}); err == nil {
		t.Error("invalid spec serialized")
	}
	if _, err := DecodeFile(strings.NewReader(`{"Spec": {"Workload": {"Kind": "nope"}}}`)); err == nil {
		t.Error("unknown workload kind decoded")
	}
	if _, err := DecodeFile(strings.NewReader(`{"Sweep": {"Axes": [{"Kind": "custom", "Labels": ["a"]}]}}`)); err == nil {
		t.Error("custom axis decoded")
	}
	if _, err := DecodeFile(strings.NewReader(`{"Bogus": 1}`)); err == nil {
		t.Error("unknown field decoded")
	}
}
