// Parallel identity suite: proves the group-sharded kernel is
// observationally identical to the sequential one by running every
// registered scenario — open-loop and controlled — at several worker
// counts and comparing the full Metrics JSON byte for byte. This is
// the test that makes sharding a simulation under a determinism
// guarantee safe: any ordering divergence anywhere (a tie broken on
// the wrong shard, a boundary actuation seen one window late, a merge
// that reorders a floating-point reduction) changes response
// quantiles, energy, or window-derived control actions, and shows up
// here.
package farm_test

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"

	_ "diskpack/internal/control" // registers controlled-* scenarios and the control runner
	"diskpack/internal/disk"
	"diskpack/internal/farm"
	"diskpack/internal/storage"
)

// metricsAtWorkers runs one spec with the given per-simulation worker
// count and returns its canonical JSON.
func metricsAtWorkers(t *testing.T, spec farm.Spec, seed int64, workers int) []byte {
	t.Helper()
	prev := farm.SetSimWorkers(workers)
	defer farm.SetSimWorkers(prev)
	m, err := farm.Run(spec, seed)
	if err != nil {
		t.Fatalf("%s (workers=%d): %v", spec.Name, workers, err)
	}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("%s: marshal: %v", spec.Name, err)
	}
	return b
}

// workerCounts is the property grid: sequential, two parallel shapes,
// and whatever this machine calls "all cores".
func workerCounts() []int {
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

func TestParallelIdentityAcrossScenarios(t *testing.T) {
	scenarios := farm.Scenarios()
	if len(scenarios) < 11 {
		t.Fatalf("only %d scenarios registered — controlled-* or reliability scenarios missing?", len(scenarios))
	}
	controlled := 0
	for _, sc := range scenarios {
		sc := sc
		if sc.Spec.Control != nil {
			controlled++
		}
		t.Run(sc.Name, func(t *testing.T) {
			const seed = 7
			ref := metricsAtWorkers(t, sc.Spec, seed, 1)
			for _, workers := range workerCounts()[1:] {
				got := metricsAtWorkers(t, sc.Spec, seed, workers)
				if !bytes.Equal(ref, got) {
					t.Fatalf("workers=%d metrics diverge from sequential\nseq: %s\npar: %s",
						workers, ref, got)
				}
			}
		})
	}
	if controlled == 0 {
		t.Error("no controlled-* scenario exercised — closed-loop identity unverified")
	}
}

// Streamed telemetry is the controllers' observation surface: every
// window a sink sees must be identical at any worker count, on a spec
// whose groups genuinely land on different shards.
func TestParallelStreamWindowsIdentical(t *testing.T) {
	sc, ok := farm.Lookup("hetero")
	if !ok {
		t.Fatal("hetero scenario not registered")
	}
	collect := func(workers int) (ws [][]byte, metrics []byte) {
		prev := farm.SetSimWorkers(workers)
		defer farm.SetSimWorkers(prev)
		m, err := farm.RunStream(sc.Spec, 7, 900, func(w *farm.Window, act *farm.Actuator) error {
			b, err := json.Marshal(w)
			if err != nil {
				return err
			}
			ws = append(ws, b)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return ws, b
	}
	refW, refM := collect(1)
	if len(refW) < 2 {
		t.Fatalf("only %d windows — spec too small to exercise the merge", len(refW))
	}
	for _, workers := range workerCounts()[1:] {
		gotW, gotM := collect(workers)
		if !bytes.Equal(refM, gotM) {
			t.Errorf("workers=%d: stream metrics diverge", workers)
		}
		if len(gotW) != len(refW) {
			t.Fatalf("workers=%d: %d windows, want %d", workers, len(gotW), len(refW))
		}
		for i := range refW {
			if !bytes.Equal(refW[i], gotW[i]) {
				t.Errorf("workers=%d: window %d diverges\nseq: %s\npar: %s",
					workers, i, refW[i], gotW[i])
			}
		}
	}
}

// The cache-fronted paper scenario is the canonical non-shardable
// spec: the partitioner must detect it (never approximate it), and the
// identity suite above already proves its results don't depend on the
// requested worker count.
func TestCachedScenarioRoutesSequential(t *testing.T) {
	sc, ok := farm.Lookup("paper-nersc-cache")
	if !ok {
		t.Fatal("paper-nersc-cache scenario not registered")
	}
	if sc.Spec.CacheBytes != 16*disk.GB {
		t.Fatalf("scenario cache is %d bytes — test premise broken", sc.Spec.CacheBytes)
	}
	tr, err := farm.BuildTrace(sc.Spec.Workload, 7)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := farm.Plan(sc.Spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	reason := storage.ShardBlocker(tr, alloc.Assign, storage.Config{
		NumDisks:   alloc.DisksUsed,
		CacheBytes: sc.Spec.CacheBytes,
	})
	if reason == "" {
		t.Fatal("partitioner failed to flag the cache-fronted run as non-shardable")
	}
	t.Logf("fallback reason: %s", reason)
}
