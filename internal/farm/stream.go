package farm

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
)

// The streaming point-result seam under every sweep executor: Compile
// turns a Sweep into its grid exactly once, any point then executes
// individually by index (RunPoint), and a complete set of point
// results — whatever machines produced them, in whatever order — folds
// back into the exact SweepResult a single-process RunSweep would have
// returned (Assemble). RunSweep, RunShard, Merge, and the work-stealing
// coordinator (internal/coord) are all thin layers over this seam, so
// one implementation carries the byte-identity guarantee for all of
// them.

// CompiledSweep is a sweep compiled against a seed: the grid's points,
// executable one at a time. It is safe for concurrent use — RunPoint
// does not mutate the compiled points.
type CompiledSweep struct {
	decl   Sweep
	seed   int64
	points []Point
}

// Compile validates the sweep and expands its grid. The returned value
// binds the sweep to the seed, so per-point seeds are fixed at compile
// time exactly as RunSweep fixes them.
func Compile(sweep Sweep, seed int64) (*CompiledSweep, error) {
	points, err := sweep.Points()
	if err != nil {
		return nil, err
	}
	return &CompiledSweep{decl: sweep, seed: seed, points: points}, nil
}

// Sweep returns the compiled grid's declaration.
func (c *CompiledSweep) Sweep() Sweep { return c.decl }

// Seed returns the sweep seed every point's seed derives from.
func (c *CompiledSweep) Seed() int64 { return c.seed }

// NumPoints returns the grid size.
func (c *CompiledSweep) NumPoints() int { return len(c.points) }

// Fingerprint returns Fingerprint(sweep, seed) for the compiled grid.
func (c *CompiledSweep) Fingerprint() string { return Fingerprint(c.decl, c.seed) }

// Fingerprint derives a short stable hash identifying one (sweep,
// seed): SHA-256 over the seed and the sweep's canonical JSON,
// truncated to 16 hex digits. It is the sweep identity observability
// uses — span IDs derive from it, and span logs from different sweeps
// refuse to merge. Sweeps that cannot marshal (custom axis functions)
// fall back to hashing the sweep name; such sweeps are not shardable,
// so their fingerprints never cross a process boundary.
func Fingerprint(sweep Sweep, seed int64) string {
	b, err := json.Marshal(sweep)
	if err != nil {
		b = []byte(sweep.Name)
	}
	h := sha256.New()
	h.Write(strconv.AppendInt(nil, seed, 10))
	h.Write([]byte{'\n'})
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil)[:8])
}

// Label returns point i's label.
func (c *CompiledSweep) Label(i int) string { return c.points[i].Label }

// SeedOffset returns point i's seed offset from the sweep seed.
func (c *CompiledSweep) SeedOffset(i int) int64 { return c.points[i].SeedOffset }

// Descriptor returns point i as the wire/manifest form shard families
// and the coordinator hand to workers.
func (c *CompiledSweep) Descriptor(i int) ShardPoint {
	return ShardPoint{Index: i, Label: c.points[i].Label, SeedOffset: c.points[i].SeedOffset}
}

// RunPoint executes one grid point — farm.Run, or farm.Plan for
// plan-only sweeps — at seed + the point's SeedOffset, exactly as
// RunSweep would have run it. Errors carry no grid context; callers
// wrap them with their own (sweep, shard, worker) framing.
func (c *CompiledSweep) RunPoint(i int) (ShardPointResult, error) {
	if i < 0 || i >= len(c.points) {
		return ShardPointResult{}, fmt.Errorf("farm: point %d outside the %d-point grid", i, len(c.points))
	}
	p := &c.points[i]
	res := ShardPointResult{Index: i, Label: p.Label}
	var err error
	if c.decl.PlanOnly {
		res.Alloc, err = Plan(p.Spec, c.seed+p.SeedOffset)
	} else {
		res.Metrics, err = Run(p.Spec, c.seed+p.SeedOffset)
	}
	if err != nil {
		return ShardPointResult{}, err
	}
	// Every executor — in-process pool, shard runner, coordinator
	// worker — funnels through here, so this is the one place sweep
	// progress is counted.
	if o := CurrentRunObserver(); o != nil && o.Metrics != nil {
		o.Metrics.SweepPoints.Inc()
	}
	return res, nil
}

// Check verifies a point descriptor against the compiled grid — the
// defense against executing work planned by a diverged engine build.
func (c *CompiledSweep) Check(sp ShardPoint) error {
	if sp.Index < 0 || sp.Index >= len(c.points) {
		return fmt.Errorf("farm: point index %d outside the %d-point grid", sp.Index, len(c.points))
	}
	p := &c.points[sp.Index]
	if p.Label != sp.Label || p.SeedOffset != sp.SeedOffset {
		return fmt.Errorf("farm: point %d (%q, seed offset %d) does not match the compiled grid (%q, %d) — planned by a diverged build?",
			sp.Index, sp.Label, sp.SeedOffset, p.Label, p.SeedOffset)
	}
	return nil
}

// CheckResult verifies a completed point against the compiled grid:
// in-range index, matching label, and the payload the sweep's mode
// calls for.
func (c *CompiledSweep) CheckResult(pr ShardPointResult) error {
	if pr.Index < 0 || pr.Index >= len(c.points) {
		return fmt.Errorf("farm: result index %d outside the %d-point grid", pr.Index, len(c.points))
	}
	if got := c.points[pr.Index].Label; got != pr.Label {
		return fmt.Errorf("farm: result point %d is %q, grid says %q — result from a different grid?", pr.Index, pr.Label, got)
	}
	if pr.Metrics != nil && pr.Alloc != nil {
		return fmt.Errorf("farm: result point %d carries both metrics and an allocation", pr.Index)
	}
	if !pr.complete(c.decl.PlanOnly) {
		return fmt.Errorf("farm: point %d (%s) is incomplete", pr.Index, pr.Label)
	}
	return nil
}

// Assemble folds a complete result set — exactly one result per grid
// point, in any order — into the SweepResult a single-process RunSweep
// would have produced, byte for byte: payloads are slotted into the
// compiled points by index and the sweep's selector applied to the
// finished grid. The compiled points are copied, so Assemble can run
// more than once (a restarted coordinator re-assembles).
func (c *CompiledSweep) Assemble(results []ShardPointResult) (*SweepResult, error) {
	points := make([]Point, len(c.points))
	copy(points, c.points)
	filled := make([]bool, len(points))
	for _, pr := range results {
		if err := c.CheckResult(pr); err != nil {
			return nil, err
		}
		if filled[pr.Index] {
			return nil, fmt.Errorf("farm: point %d (%s) appears in more than one result", pr.Index, pr.Label)
		}
		points[pr.Index].Metrics, points[pr.Index].Alloc = pr.Metrics, pr.Alloc
		filled[pr.Index] = true
	}
	for i, ok := range filled {
		if !ok {
			return nil, fmt.Errorf("farm: missing point %d (%s) — did every point complete?", i, points[i].Label)
		}
	}
	res := &SweepResult{Sweep: c.decl, Points: points}
	res.Best, res.Front = c.decl.Select.pick(points)
	return res, nil
}
