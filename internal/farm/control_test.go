package farm

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"diskpack/internal/disk"
)

// streamSpec is a small mixed-farm scenario with enough going on —
// heterogeneous groups, a cache, spin-downs — to exercise every window
// field.
func streamSpec() Spec {
	return Spec{
		Name: "stream-test",
		Groups: []DiskGroup{
			{Count: 4, Params: disk.DefaultParams()},
			{Count: 4, Params: disk.EcoParams()},
		},
		Workload:   SyntheticWorkload(miniSynthetic(400, 2)),
		Alloc:      Packed(0.5),
		Spin:       SpinSpec{Kind: SpinBreakEven},
		CacheBytes: 2 * disk.GB,
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// RunStream with a do-nothing sink must reproduce Run byte for byte —
// the telemetry machinery only reads state.
func TestRunStreamMatchesRun(t *testing.T) {
	for _, spec := range []Spec{
		streamSpec(),
		{ // homogeneous + tail-aware initial threshold
			Name:     "stream-homog",
			FarmSize: 6,
			Workload: SyntheticWorkload(miniSynthetic(300, 1)),
			Alloc:    Packed(0.5),
			Spin:     SpinSpec{Kind: SpinTailAware},
		},
	} {
		ref, err := Run(spec, 11)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunStream(spec, 11, 500, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(mustJSON(t, ref), mustJSON(t, got)) {
			t.Errorf("%s: RunStream(nil sink) diverges from Run", spec.Name)
		}
	}
}

// Window telemetry must account for the whole run: arrivals and
// completions sum to the farm totals, window energies sum to the final
// energy, and the group rows partition the totals.
func TestWindowAccounting(t *testing.T) {
	spec := streamSpec()
	var (
		windows  []Window
		arrivals int64
		done     int64
		energy   float64
	)
	m, err := RunStream(spec, 5, 700, func(w *Window, act *Actuator) error {
		windows = append(windows, *w)
		arrivals += w.Total.Arrivals
		done += w.Total.Completed
		energy += w.Total.Energy
		var gArr, gDone int64
		var gEnergy float64
		var hist int64
		for _, g := range w.Groups {
			gArr += g.Arrivals
			gDone += g.Completed
			gEnergy += g.Energy
			for _, n := range g.RespHist {
				hist += n
			}
		}
		if gArr != w.Total.Arrivals || gDone != w.Total.Completed {
			t.Errorf("window %d: groups sum to %d/%d, total says %d/%d", w.Index, gArr, gDone, w.Total.Arrivals, w.Total.Completed)
		}
		if hist != gDone {
			t.Errorf("window %d: response histogram holds %d, completed %d", w.Index, hist, gDone)
		}
		if math.Abs(gEnergy-w.Total.Energy) > 1e-6 {
			t.Errorf("window %d: group energy %v != total %v", w.Index, gEnergy, w.Total.Energy)
		}
		if len(w.Groups) != 2 {
			t.Fatalf("window %d: %d groups, want 2", w.Index, len(w.Groups))
		}
		if w.Groups[0].Disks != 4 || w.Groups[1].Disks != 4 {
			t.Errorf("window %d: group sizes %d/%d", w.Index, w.Groups[0].Disks, w.Groups[1].Disks)
		}
		if w.Groups[0].Threshold <= 0 {
			// BreakEven groups are not tunable; Threshold stays zero.
			// (That is the contract: only SpinTailAware groups report.)
			_ = w
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) == 0 {
		t.Fatal("no windows emitted")
	}
	last := windows[len(windows)-1]
	if !last.Final {
		t.Error("last window not marked Final")
	}
	if last.End != m.Duration {
		t.Errorf("last window ends at %v, horizon %v", last.End, m.Duration)
	}
	if done != m.Completed {
		t.Errorf("windows completed %d, run completed %d", done, m.Completed)
	}
	if arrivals < m.Completed {
		t.Errorf("windows arrivals %d < completed %d", arrivals, m.Completed)
	}
	if math.Abs(energy-m.Energy) > 1e-6*m.Energy {
		t.Errorf("windows energy %v, run energy %v", energy, m.Energy)
	}
	for i, w := range windows {
		if w.Index != i {
			t.Errorf("window %d reports index %d", i, w.Index)
		}
	}
}

// Tail-aware groups expose a shared per-group knob; other spin kinds
// refuse actuation.
func TestActuatorThresholds(t *testing.T) {
	spec := streamSpec()
	spec.Spin = SpinSpec{Kind: SpinTailAware}
	saw := false
	_, err := RunStream(spec, 3, 1000, func(w *Window, act *Actuator) error {
		if saw {
			return nil
		}
		saw = true
		if act.NumGroups() != 2 {
			t.Fatalf("NumGroups = %d, want 2", act.NumGroups())
		}
		be0 := disk.DefaultParams().BreakEvenThreshold()
		if got, ok := act.GroupThreshold(0); !ok || math.Abs(got-be0) > 1e-9 {
			t.Errorf("group 0 threshold %v ok=%v, want break-even %v", got, ok, be0)
		}
		if w.Groups[0].Threshold == 0 {
			t.Error("window does not carry the tunable threshold")
		}
		adopted, err := act.SetGroupThreshold(1, 5)
		if err != nil {
			t.Fatalf("SetGroupThreshold: %v", err)
		}
		if min := disk.EcoParams().BreakEvenThreshold() / 8; adopted < min-1e-9 {
			t.Errorf("adopted %v under the clamp %v", adopted, min)
		}
		if _, err := act.SetGroupThreshold(7, 5); err == nil {
			t.Error("out-of-range group accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	spec.Spin = SpinSpec{Kind: SpinBreakEven}
	_, err = RunStream(spec, 3, 4000, func(w *Window, act *Actuator) error {
		if _, err := act.SetGroupThreshold(0, 5); err == nil {
			t.Error("non-tail-aware group accepted a threshold")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// A controlled spec must refuse the raw seam and, without a registered
// runner, refuse Run (the farm package itself registers none).
func TestControlledSpecNeedsRunner(t *testing.T) {
	spec := streamSpec()
	spec.Control = &ControlSpec{Controller: "tail-budget", Epoch: 100}
	if err := spec.Validate(); err != nil {
		t.Fatalf("controlled spec invalid: %v", err)
	}
	if _, err := RunStream(spec, 1, 100, nil); err == nil {
		t.Error("RunStream accepted a controlled spec")
	}
	if controlRunner == nil {
		if _, err := Run(spec, 1); err == nil {
			t.Error("Run accepted a controlled spec with no registered runner")
		}
	}
}

func TestControlSpecValidate(t *testing.T) {
	for _, bad := range []ControlSpec{
		{},
		{Controller: "tail-budget"},
		{Controller: "tail-budget", Epoch: -1},
		{Controller: "tail-budget", Epoch: 10, BudgetP95: -3},
		{Controller: "rate-respec", Epoch: 10, RespecFactor: 0.5},
		{Controller: "rate-respec", Epoch: 10, Alpha: 2},
	} {
		if err := bad.validate(); err == nil {
			t.Errorf("ControlSpec %+v accepted", bad)
		}
	}
	good := ControlSpec{Controller: "tail-budget", Epoch: 60, BudgetP95: 15}
	if err := good.validate(); err != nil {
		t.Errorf("valid ControlSpec rejected: %v", err)
	}
}

// The controller axis swaps the controller name per point, "static"
// strips it, and the whole thing survives JSON (so controlled grids
// shard).
func TestControllerAxis(t *testing.T) {
	ax, err := ParseAxis("control=static,tail-budget,rate-respec")
	if err != nil {
		t.Fatal(err)
	}
	if ax.Kind != AxisController || len(ax.Names) != 3 {
		t.Fatalf("parsed %+v", ax)
	}
	base := streamSpec()
	base.Control = &ControlSpec{Controller: "tail-budget", Epoch: 900, BudgetP95: 15}
	sweep := Sweep{Name: "ctl", Base: base, Axes: []Axis{ax}}
	points, err := sweep.Points()
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Spec.Control != nil {
		t.Error("static point keeps Control")
	}
	if points[1].Spec.Control == nil || points[1].Spec.Control.Controller != "tail-budget" {
		t.Errorf("point 1 control = %+v", points[1].Spec.Control)
	}
	if points[2].Spec.Control == nil || points[2].Spec.Control.Controller != "rate-respec" {
		t.Errorf("point 2 control = %+v", points[2].Spec.Control)
	}
	if points[2].Spec.Control.Epoch != 900 {
		t.Error("axis lost the base epoch")
	}
	if base.Control.Controller != "tail-budget" {
		t.Error("axis mutated the base spec")
	}
	if points[1].Label != "control=tail-budget" {
		t.Errorf("label %q", points[1].Label)
	}

	// No base Control: named points must fail at compile time.
	noCtl := streamSpec()
	if _, err := (Sweep{Base: noCtl, Axes: []Axis{ax}}).Points(); err == nil {
		t.Error("controller axis without base Control accepted")
	}

	// Round-trip through the scenario file format.
	var buf bytes.Buffer
	if err := EncodeFile(&buf, File{Sweep: &sweep}); err != nil {
		t.Fatal(err)
	}
	doc, err := DecodeFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, sweep), mustJSON(t, *doc.Sweep)) {
		t.Error("controller sweep does not round-trip")
	}
	if err := Shardable(sweep); err != nil {
		t.Errorf("controller sweep not shardable: %v", err)
	}
}

// The explicit-alloc axis carries whole file→disk maps and labels.
func TestExplicitAllocAxis(t *testing.T) {
	tr, err := BuildTrace(SyntheticWorkload(miniSynthetic(50, 1)), 1)
	if err != nil {
		t.Fatal(err)
	}
	a0 := make([]int, len(tr.Files))
	a1 := make([]int, len(tr.Files))
	for i := range a1 {
		a1[i] = i % 2
	}
	sweep := Sweep{
		Name: "assign",
		Base: Spec{Workload: TraceWorkload(tr), FarmSize: 2, Spin: SpinSpec{Kind: SpinBreakEven}},
		Axes: []Axis{{Kind: AxisExplicitAlloc, Assigns: [][]int{a0, a1}, Labels: []string{"all-on-0", "striped"}}},
	}
	res, err := RunSweep(sweep, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("%d points", len(res.Points))
	}
	if res.Points[0].Label != "all-on-0" || res.Points[1].Label != "striped" {
		t.Errorf("labels %q %q", res.Points[0].Label, res.Points[1].Label)
	}
	if res.Points[0].Spec.Alloc.Kind != AllocExplicit {
		t.Error("axis did not set explicit alloc")
	}
	if err := Shardable(sweep); err != nil {
		t.Errorf("explicit-alloc sweep not shardable: %v", err)
	}
}
