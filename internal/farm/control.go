package farm

import (
	"fmt"
	"math"

	"diskpack/internal/disk"
	"diskpack/internal/policy"
	"diskpack/internal/storage"
	"diskpack/internal/trace"
)

// The telemetry seam of the online control plane: RunStream executes a
// spec exactly as Run does — same trace, same allocation, same event
// order, so a do-nothing sink reproduces Run byte for byte — while
// emitting a Window snapshot every epoch and handing the sink an
// Actuator that can retune SpinTailAware group thresholds and swap the
// live file→disk map between windows. internal/control builds its
// controllers on this seam; nothing here decides anything.

// Window is one epoch's telemetry snapshot (see storage.Window for the
// schema: per-group arrivals, response quantiles, energy, spin
// transitions, idle-gap histogram).
type Window = storage.Window

// GroupWindow is one disk group's share of a Window.
type GroupWindow = storage.GroupWindow

// StreamSink observes one closed window and may actuate through act.
// Returning an error aborts the run.
type StreamSink func(w *Window, act *Actuator) error

// IdleGapBuckets and RespBuckets re-export the windows' histogram
// bucket bounds (see storage).
var (
	IdleGapBuckets = storage.IdleGapBuckets
	RespBuckets    = storage.RespBuckets
)

// Actuator is the actuation surface of a streamed run: what a
// controller may change between windows. It also carries the read-only
// context controllers plan against (the live spec, the file
// population, the farm size, the run seed).
type Actuator struct {
	ctl    *storage.RunControl
	tuners []*policy.Tunable // per group; nil entries are not tunable
	live   Spec              // spec as last rewritten (Control stripped)
	files  []trace.FileInfo
	farm   int
	seed   int64
}

// NumGroups returns the number of disk groups (1 for homogeneous
// farms).
func (a *Actuator) NumGroups() int { return len(a.tuners) }

// FarmSize returns the simulated farm size.
func (a *Actuator) FarmSize() int { return a.farm }

// Seed returns the run seed (what Plan must be called with for a
// population-consistent re-plan).
func (a *Actuator) Seed() int64 { return a.seed }

// Files returns the trace's file population.
func (a *Actuator) Files() []trace.FileInfo { return a.files }

// Spec returns the live spec: the run's spec with every re-spec
// applied so far (and Control stripped).
func (a *Actuator) Spec() Spec { return a.live }

// GroupThreshold returns group g's current spin-down threshold, with
// ok = false when the group's policy is not tunable (any spin kind but
// SpinTailAware).
func (a *Actuator) GroupThreshold(g int) (float64, bool) {
	if g < 0 || g >= len(a.tuners) || a.tuners[g] == nil {
		return 0, false
	}
	return a.tuners[g].T, true
}

// SetGroupThreshold retunes group g's spin-down threshold (clamped to
// the knob's range) and returns the value adopted. The new timeout
// applies from each disk's next idle-period arming. Only SpinTailAware
// groups are tunable.
func (a *Actuator) SetGroupThreshold(g int, seconds float64) (float64, error) {
	if g < 0 || g >= len(a.tuners) {
		return 0, fmt.Errorf("farm: group %d outside the %d-group farm", g, len(a.tuners))
	}
	if a.tuners[g] == nil {
		return 0, fmt.Errorf("farm: group %d spin policy is not tunable (use SpinTailAware)", g)
	}
	if seconds < 0 || math.IsNaN(seconds) {
		return 0, fmt.Errorf("farm: invalid threshold %v", seconds)
	}
	return a.tuners[g].Set(seconds), nil
}

// SetWorkloadRate rewrites the live spec's workload-intensity field —
// the same rewrite the rate sweep axis applies — so subsequent
// re-plans (Plan on Spec()) see the observed rate. It changes nothing
// about the arrivals already materialized; the trace is history.
func (a *Actuator) SetWorkloadRate(rate float64) error {
	return setWorkloadRate(&a.live, rate)
}

// Assign returns a copy of the live file→disk map.
func (a *Actuator) Assign() []int { return a.ctl.Assign() }

// Realloc swaps the live file→disk map, migrating changed files at a
// modeled energy cost (see storage.RunControl.Realloc).
func (a *Actuator) Realloc(assign []int) (moved int, movedBytes int64, err error) {
	return a.ctl.Realloc(assign)
}

// setWorkloadRate applies the AxisArrivalRate rewrite to a spec:
// Synthetic.ArrivalRate or Bursty.OnRate becomes v, or NERSC.Duration
// is rescaled so the request rate becomes v. Invalid for trace
// workloads, whose arrivals are fixed.
func setWorkloadRate(spec *Spec, v float64) error {
	if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("farm: arrival rate %v must be positive", v)
	}
	switch spec.Workload.Kind {
	case WorkloadSynthetic:
		cfg := *spec.Workload.Synthetic
		cfg.ArrivalRate = v
		spec.Workload.Synthetic = &cfg
	case WorkloadBursty:
		cfg := *spec.Workload.Bursty
		cfg.OnRate = v
		spec.Workload.Bursty = &cfg
	case WorkloadNERSC:
		cfg := *spec.Workload.NERSC
		cfg.Duration = float64(cfg.NumRequests) / v
		spec.Workload.NERSC = &cfg
	default:
		return fmt.Errorf("farm: cannot set the rate of a %v workload", spec.Workload.Kind)
	}
	return nil
}

// WorkloadRate returns the spec's planned workload intensity in
// requests per second (the field SetWorkloadRate rewrites), or an
// error for trace workloads.
func WorkloadRate(spec Spec) (float64, error) {
	switch spec.Workload.Kind {
	case WorkloadSynthetic:
		return spec.Workload.Synthetic.ArrivalRate, nil
	case WorkloadBursty:
		return spec.Workload.Bursty.MeanRate(), nil
	case WorkloadNERSC:
		return float64(spec.Workload.NERSC.NumRequests) / spec.Workload.NERSC.Duration, nil
	default:
		return 0, fmt.Errorf("farm: a %v workload has no planned rate", spec.Workload.Kind)
	}
}

// GroupParams returns the drive model of each of the spec's disk
// groups — one default-drive group for homogeneous farms. This is the
// single source of truth controllers plan against (internal/control
// scores gap energies with it), matching exactly what RunStream wires
// into the simulated disks.
func GroupParams(s Spec) []disk.Params {
	if len(s.Groups) == 0 {
		return []disk.Params{disk.DefaultParams()}
	}
	out := make([]disk.Params, len(s.Groups))
	for g, grp := range s.Groups {
		out[g] = grp.Params
	}
	return out
}

// groupLayout expands the spec's groups into a disk→group map and the
// per-group drive parameters (one group of default drives for
// homogeneous farms).
func (s Spec) groupLayout(farmSize int) (groupOf []int, params []disk.Params) {
	groupOf = make([]int, farmSize)
	params = GroupParams(s)
	if len(s.Groups) == 0 {
		return groupOf, params
	}
	d := 0
	for g, grp := range s.Groups {
		for i := 0; i < grp.Count; i++ {
			groupOf[d] = g
			d++
		}
	}
	return groupOf, params
}

// streamSpinConfig is spinConfig plus the per-group tunables of a
// streamed run: SpinTailAware farms get one shared policy.Tunable per
// disk group (so one Set moves the whole group); every other spin kind
// keeps its static configuration and reports nil knobs.
func (s Spec) streamSpinConfig(perDisk []disk.Params, seed int64, groupOf []int, groupParams []disk.Params) (threshold float64, factory func(int) disk.SpinPolicy, tuners []*policy.Tunable, err error) {
	tuners = make([]*policy.Tunable, len(groupParams))
	if s.Spin.Kind != SpinTailAware {
		threshold, factory, err = s.spinConfig(perDisk, seed)
		return threshold, factory, tuners, err
	}
	for g := range tuners {
		tuners[g] = policy.NewTunable(groupParams[g], s.Spin.Threshold)
	}
	return 0, func(i int) disk.SpinPolicy { return tuners[groupOf[i]] }, tuners, nil
}

// RunStream executes the spec like Run while emitting a telemetry
// Window to sink every epoch simulated seconds, with an Actuator for
// mid-run control. It is the observe→actuate seam controlled runs are
// built on; with a nil or do-nothing sink it returns exactly Run's
// Metrics. Controlled specs must be stripped first — the controller
// interpretation lives in internal/control, not here.
func RunStream(spec Spec, seed int64, epoch float64, sink StreamSink) (*Metrics, error) {
	if spec.Control != nil {
		return nil, fmt.Errorf("farm %s: RunStream runs the telemetry seam only — strip Control (internal/control interprets it)", spec.Name)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	tr, err := BuildTrace(spec.Workload, seed)
	if err != nil {
		return nil, fmt.Errorf("farm %s: workload: %w", spec.Name, err)
	}
	alloc, err := spec.allocate(tr, seed+1)
	if err != nil {
		return nil, fmt.Errorf("farm %s: allocation: %w", spec.Name, err)
	}
	farmSize, perDisk, err := resolveFarmSize(spec, alloc)
	if err != nil {
		return nil, err
	}
	groupOf, groupParams := spec.groupLayout(farmSize)
	threshold, factory, tuners, err := spec.streamSpinConfig(perDisk, seed+2, groupOf, groupParams)
	if err != nil {
		return nil, err
	}
	act := &Actuator{
		tuners: tuners,
		live:   spec,
		files:  tr.Files,
		farm:   farmSize,
		seed:   seed,
	}
	res, err := storage.RunStreamParallel(tr, alloc.Assign, storage.Config{
		NumDisks:      farmSize,
		PerDisk:       perDisk,
		IdleThreshold: threshold,
		PolicyFactory: factory,
		CacheBytes:    spec.CacheBytes,
		WriteBestFit:  spec.WriteBestFit,
		Reliability:   spec.reliabilityConfig(seed),
		Obs:           CurrentRunObserver(),
	}, storage.StreamConfig{
		Epoch:   epoch,
		GroupOf: groupOf,
		OnWindow: func(w *Window, ctl *storage.RunControl) error {
			act.ctl = ctl
			for g := range w.Groups {
				if t, ok := act.GroupThreshold(g); ok {
					w.Groups[g].Threshold = t
				}
			}
			if sink == nil {
				return nil
			}
			return sink(w, act)
		},
	}, storage.ParallelConfig{Workers: SimWorkers(), Label: spec.Name})
	if err != nil {
		return nil, fmt.Errorf("farm %s: simulation: %w", spec.Name, err)
	}
	return assembleMetrics(spec, seed, farmSize, alloc, res), nil
}
