// Kernel identity suite: proves the calendar-queue scheduler is
// observationally identical to the legacy binary heap by running every
// registered scenario — open-loop and controlled — under both kernels
// and comparing the full Metrics JSON byte for byte. This is the test
// that makes replacing the event queue under a determinism guarantee
// safe: any ordering divergence anywhere in a run (a tie broken
// differently, a cancelled timer firing) changes response quantiles,
// energy, or window-derived control actions, and shows up here.
package farm_test

import (
	"bytes"
	"encoding/json"
	"testing"

	_ "diskpack/internal/control" // registers controlled-* scenarios and the control runner
	"diskpack/internal/farm"
	"diskpack/internal/sim"
)

// metricsBytes runs one spec under the selected kernel and returns its
// canonical JSON.
func metricsBytes(t *testing.T, spec farm.Spec, seed int64, legacy bool) []byte {
	t.Helper()
	prev := sim.SetLegacyKernel(legacy)
	defer sim.SetLegacyKernel(prev)
	m, err := farm.Run(spec, seed)
	if err != nil {
		t.Fatalf("%s (legacy=%v): %v", spec.Name, legacy, err)
	}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("%s: marshal: %v", spec.Name, err)
	}
	return b
}

func TestKernelIdentityAcrossScenarios(t *testing.T) {
	scenarios := farm.Scenarios()
	if len(scenarios) < 9 {
		t.Fatalf("only %d scenarios registered — controlled-* scenarios missing?", len(scenarios))
	}
	controlled := 0
	for _, sc := range scenarios {
		sc := sc
		if sc.Spec.Control != nil {
			controlled++
		}
		t.Run(sc.Name, func(t *testing.T) {
			for _, seed := range []int64{1, 7} {
				cal := metricsBytes(t, sc.Spec, seed, false)
				heap := metricsBytes(t, sc.Spec, seed, true)
				if !bytes.Equal(cal, heap) {
					t.Fatalf("seed %d: calendar-queue metrics diverge from legacy heap\ncalendar: %s\nheap:     %s",
						seed, cal, heap)
				}
			}
		})
	}
	if controlled == 0 {
		t.Error("no controlled-* scenario exercised — closed-loop identity unverified")
	}
}
