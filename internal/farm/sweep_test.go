package farm

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// fixtureSweep is the threshold×farm-size grid used by the determinism
// and benchmark tests: small enough to run in milliseconds, large
// enough that a worker pool reorders completion.
func fixtureSweep() Sweep {
	return Sweep{
		Name: "fixture",
		Base: Spec{
			Name:     "fixture",
			Workload: SyntheticWorkload(miniSynthetic(300, 2)),
			Alloc:    Packed(0.7),
		},
		Axes: []Axis{
			{Kind: AxisSpinThreshold, Values: []float64{30, 120, 600}},
			{Kind: AxisFarmSize, Values: []float64{8, 12}},
		},
	}
}

func TestSweepPointsCompile(t *testing.T) {
	s := fixtureSweep()
	pts, err := s.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 || s.NumPoints() != 6 {
		t.Fatalf("points=%d NumPoints=%d, want 6", len(pts), s.NumPoints())
	}
	// Row-major: the last axis varies fastest.
	wantLabels := []string{
		"threshold=30s farm=8", "threshold=30s farm=12",
		"threshold=120s farm=8", "threshold=120s farm=12",
		"threshold=600s farm=8", "threshold=600s farm=12",
	}
	for i, want := range wantLabels {
		if pts[i].Label != want {
			t.Errorf("point %d label %q, want %q", i, pts[i].Label, want)
		}
	}
	p := pts[3] // threshold=120s farm=12
	if p.Spec.Spin != FixedSpin(120) {
		t.Errorf("point 3 spin %+v, want FixedSpin(120)", p.Spec.Spin)
	}
	if p.Spec.FarmSize != 12 {
		t.Errorf("point 3 farm size %d, want 12", p.Spec.FarmSize)
	}
	if got, want := fmt.Sprint(p.Coord), fmt.Sprint([]int{1, 1}); got != want {
		t.Errorf("point 3 coord %s, want %s", got, want)
	}
	// The base spec must not be mutated by compilation.
	if s.Base.Spin != (SpinSpec{}) || s.Base.FarmSize != 0 {
		t.Errorf("base spec mutated: %+v", s.Base)
	}
}

func TestSweepSeedOffsets(t *testing.T) {
	s := Sweep{
		Base: testSpec(),
		Axes: []Axis{
			{Name: "p", Kind: AxisCustom, Labels: []string{"a", "b"}, SeedStep: 10,
				Apply: func(*Spec, int, []int) error { return nil }},
			{Kind: AxisSeed, Values: []float64{0, 1, 2}},
		},
	}
	pts, err := s.Points()
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 1, 2, 10, 11, 12}
	for i, p := range pts {
		if p.SeedOffset != want[i] {
			t.Errorf("point %d seed offset %d, want %d", i, p.SeedOffset, want[i])
		}
	}
}

func TestSweepDeterminismAcrossWorkers(t *testing.T) {
	sweep := fixtureSweep()
	runAt := func(workers int) []string {
		t.Helper()
		res, err := RunSweep(sweep, 7, workers)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, len(res.Points))
		for i := range res.Points {
			out[i] = fingerprint(res.Points[i].Metrics)
		}
		return out
	}
	// A pool larger than GOMAXPROCS still interleaves goroutines, so
	// this exercises concurrent execution even on a single-core machine.
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	serial := runAt(1)
	parallel := runAt(workers)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("point %d differs between Workers=1 and Workers=GOMAXPROCS:\nserial:   %s\nparallel: %s",
				i, serial[i], parallel[i])
		}
	}
}

func TestSweepMatchesDirectRuns(t *testing.T) {
	// The engine must produce exactly what a hand-rolled loop over
	// Run(spec, seed) produces.
	sweep := fixtureSweep()
	res, err := RunSweep(sweep, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Points {
		direct, err := Run(res.Points[i].Spec, 3+res.Points[i].SeedOffset)
		if err != nil {
			t.Fatal(err)
		}
		if fingerprint(direct) != fingerprint(res.Points[i].Metrics) {
			t.Fatalf("point %s differs from a direct Run", res.Points[i].Label)
		}
	}
}

func TestSweepPlanOnly(t *testing.T) {
	res, err := RunSweep(Sweep{
		Name: "plan",
		Base: Spec{Workload: testSpec().Workload, Alloc: AllocSpec{Kind: AllocPack, V: 4}},
		Axes: []Axis{
			{Kind: AxisCapL, Values: []float64{0.5, 0.8}},
			{Kind: AxisAllocKind, Values: []float64{float64(AllocPack), float64(AllocFirstFit)}},
		},
		PlanOnly: true,
	}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != -1 {
		t.Errorf("plan-only Best = %d, want -1", res.Best)
	}
	for i := range res.Points {
		p := &res.Points[i]
		if p.Metrics != nil {
			t.Fatalf("plan-only point %s has metrics", p.Label)
		}
		if p.Alloc == nil || p.Alloc.DisksUsed < 1 || p.Alloc.LowerBound < 1 {
			t.Fatalf("plan-only point %s allocation implausible: %+v", p.Label, p.Alloc)
		}
		if p.Alloc.Bound < float64(p.Alloc.LowerBound) {
			t.Fatalf("point %s Theorem 1 bound %v below lower bound %d", p.Label, p.Alloc.Bound, p.Alloc.LowerBound)
		}
	}
	// A tighter load constraint cannot use fewer disks.
	if res.At(0, 0).Alloc.DisksUsed < res.At(1, 0).Alloc.DisksUsed {
		t.Errorf("L=0.5 used %d disks, L=0.8 used %d — tighter L should need more",
			res.At(0, 0).Alloc.DisksUsed, res.At(1, 0).Alloc.DisksUsed)
	}
}

func TestArrivalRateAxis(t *testing.T) {
	res, err := RunSweep(Sweep{
		Base: testSpec(),
		Axes: []Axis{{Kind: AxisArrivalRate, Values: []float64{1, 4}}},
	}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := res.Points[0].Metrics, res.Points[1].Metrics
	if hi.Completed <= lo.Completed {
		t.Errorf("rate=4 completed %d requests, rate=1 %d — intensity axis had no effect",
			hi.Completed, lo.Completed)
	}
}

// fixtureMetrics builds a grid with prescribed (energy, response)
// values for selector unit tests: energy falls as response grows, with
// a sharp knee at index 1.
func fixturePoints(energies, p95s, means []float64) []Point {
	pts := make([]Point, len(energies))
	for i := range pts {
		pts[i] = Point{
			Label:   fmt.Sprintf("p%d", i),
			Metrics: &Metrics{Energy: energies[i], RespP95: p95s[i], RespMean: means[i]},
		}
	}
	return pts
}

func TestSelectorMinEnergySLO(t *testing.T) {
	pts := fixturePoints(
		[]float64{100, 60, 50, 40},
		[]float64{5, 10, 20, 40},
		[]float64{2, 5, 12, 30},
	)
	best, front := Selector{Kind: SelectMinEnergySLO, MaxP95: 25}.pick(pts)
	if best != 2 || front != nil {
		t.Errorf("SLO pick = (%d, %v), want (2, nil): cheapest point with p95 <= 25", best, front)
	}
	best, _ = Selector{Kind: SelectMinEnergySLO, MaxP95: 1}.pick(pts)
	if best != -1 {
		t.Errorf("infeasible SLO picked %d, want -1", best)
	}
	best, _ = Selector{Kind: SelectMinEnergySLO, MaxP95: 1e9}.pick(pts)
	if best != 3 {
		t.Errorf("unbounded SLO picked %d, want 3 (global min energy)", best)
	}
}

func TestSelectorKnee(t *testing.T) {
	// Energy collapses between p0 and p1, then flattens: the knee is p1.
	pts := fixturePoints(
		[]float64{100, 30, 28, 27},
		[]float64{1, 2, 3, 4},
		[]float64{1, 2, 10, 20},
	)
	best, _ := Selector{Kind: SelectKnee}.pick(pts)
	if best != 1 {
		t.Errorf("knee pick = %d, want 1", best)
	}
	// Degenerate two-point grid falls back to min energy.
	best, _ = Selector{Kind: SelectKnee}.pick(pts[:2])
	if best != 1 {
		t.Errorf("two-point knee pick = %d, want 1 (min energy)", best)
	}
	// Concave-up curve (the interior point is ABOVE the chord: 1 s of
	// latency bought only 5 J): no knee exists, fall back to min
	// energy — the anti-knee must not win on absolute distance.
	up := fixturePoints(
		[]float64{100, 95, 0},
		[]float64{1, 2, 3},
		[]float64{1, 2, 3},
	)
	best, _ = Selector{Kind: SelectKnee}.pick(up)
	if best != 2 {
		t.Errorf("concave-up knee pick = %d, want 2 (min energy, not the above-chord point)", best)
	}
}

func TestSelectorPareto(t *testing.T) {
	pts := fixturePoints(
		[]float64{100, 60, 80, 40},
		[]float64{0, 0, 0, 0},
		[]float64{2, 5, 6, 30},
	)
	best, front := Selector{Kind: SelectPareto}.pick(pts)
	if best != -1 {
		t.Errorf("pareto Best = %d, want -1", best)
	}
	// p2 (80 J, 6 s) is dominated by p1 (60 J, 5 s); the rest are not.
	if got, want := fmt.Sprint(front), fmt.Sprint([]int{0, 1, 3}); got != want {
		t.Errorf("pareto front %s, want %s", got, want)
	}
}

func TestSweepValidation(t *testing.T) {
	bad := []Sweep{
		{Base: testSpec(), Axes: []Axis{{Kind: AxisSpinThreshold}}},                                                   // no values
		{Base: testSpec(), Axes: []Axis{{Kind: AxisCustom, Labels: []string{"a"}}}},                                   // no Apply
		{Base: testSpec(), Axes: []Axis{{Kind: AxisKind(99), Values: []float64{1}}}},                                  // unknown kind
		{Base: testSpec(), Select: Selector{Kind: SelectMinEnergySLO}},                                                // SLO without budget
		{Base: testSpec(), Select: Selector{Kind: SelectKnee, MaxP95: 5}},                                             // stray budget
		{Base: testSpec(), Axes: []Axis{{Kind: AxisSpinThreshold, Values: []float64{1}, Labels: []string{"a", "b"}}}}, // label arity
		{Base: testSpec(), Axes: []Axis{ // duplicate declarative kind: the later axis would overwrite the earlier
			{Kind: AxisSpinThreshold, Values: []float64{30, 60}},
			{Kind: AxisSpinThreshold, Values: []float64{300}},
		}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("sweep %d accepted", i)
		}
	}
	// A point that fails spec validation aborts the run with the point's
	// label in the error.
	_, err := RunSweep(Sweep{
		Name: "badpoint",
		Base: testSpec(),
		Axes: []Axis{{Kind: AxisCapL, Values: []float64{0.5, 2.0}}},
	}, 1, 0)
	if err == nil || !strings.Contains(err.Error(), "L=2") {
		t.Errorf("invalid point error = %v, want mention of L=2", err)
	}
	// A load-constraint axis over an explicit allocation would compile a
	// grid of identical points; it must be rejected, not run.
	explicit := testSpec()
	explicit.Alloc = Explicit([]int{0, 1})
	_, err = RunSweep(Sweep{
		Name: "noop-axis",
		Base: explicit,
		Axes: []Axis{{Kind: AxisCapL, Values: []float64{0.5, 0.7}}},
	}, 1, 0)
	if err == nil || !strings.Contains(err.Error(), "explicit allocation") {
		t.Errorf("CapL-over-explicit error = %v, want rejection", err)
	}
}

func TestParseAxis(t *testing.T) {
	ax, err := ParseAxis("threshold=30,60, 120")
	if err != nil {
		t.Fatal(err)
	}
	if ax.Kind != AxisSpinThreshold || len(ax.Values) != 3 || ax.Values[2] != 120 {
		t.Fatalf("ParseAxis threshold = %+v", ax)
	}
	ax, err = ParseAxis("alloc=pack,ffd,bestfit")
	if err != nil {
		t.Fatal(err)
	}
	if ax.Kind != AxisAllocKind || AllocKind(int(ax.Values[1])) != AllocFirstFitDecreasing {
		t.Fatalf("ParseAxis alloc = %+v", ax)
	}
	if _, err := ParseAxis("cache=1e9,16e9"); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "threshold", "bogus=1,2", "threshold=x", "alloc=nope", "threshold="} {
		if _, err := ParseAxis(bad); err == nil {
			t.Errorf("ParseAxis(%q) accepted", bad)
		}
	}
}

func TestParseSelector(t *testing.T) {
	sel, err := ParseSelector("slo=25")
	if err != nil || sel.Kind != SelectMinEnergySLO || sel.MaxP95 != 25 {
		t.Fatalf("ParseSelector(slo=25) = %+v, %v", sel, err)
	}
	for s, want := range map[string]SelectorKind{"none": SelectNone, "knee": SelectKnee, "pareto": SelectPareto} {
		sel, err := ParseSelector(s)
		if err != nil || sel.Kind != want {
			t.Errorf("ParseSelector(%q) = %+v, %v", s, sel, err)
		}
	}
	for _, bad := range []string{"", "slo", "slo=", "slo=-1", "slo=x", "bogus"} {
		if _, err := ParseSelector(bad); err == nil {
			t.Errorf("ParseSelector(%q) accepted", bad)
		}
	}
}

// TestSLOSweepGridEquivalence pins the SLOSweep alias to the engine: a
// scenario threshold sweep must return exactly what direct runs at each
// fixed threshold return, with the legacy labels, and choose the
// cheapest feasible point.
func TestSLOSweepGridEquivalence(t *testing.T) {
	sc := Scenario{
		Name: "grid-equiv",
		Spec: testSpec(),
		Sweep: &SLOSweep{
			Thresholds: []float64{10, 120, 900},
			MaxP95:     1e9,
		},
	}
	res, err := runScenario(sc, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 3 {
		t.Fatalf("sweep ran %d points, want 3", len(res.Runs))
	}
	for i, th := range sc.Sweep.Thresholds {
		if want := fmt.Sprintf("threshold=%gs", th); res.Labels[i] != want {
			t.Errorf("label %d = %q, want %q", i, res.Labels[i], want)
		}
		spec := sc.Spec
		spec.Spin = FixedSpin(th)
		direct, err := Run(spec, 5)
		if err != nil {
			t.Fatal(err)
		}
		if fingerprint(direct) != fingerprint(res.Runs[i]) {
			t.Errorf("threshold %gs differs from a direct run", th)
		}
	}
	best := 0
	for i := range res.Runs {
		if res.Runs[i].Energy < res.Runs[best].Energy {
			best = i
		}
	}
	if res.Best != best {
		t.Errorf("Best = %d, want %d (min energy under an unbounded SLO)", res.Best, best)
	}
}

func TestSweepAtPanics(t *testing.T) {
	res, err := RunSweep(fixtureSweep(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m := res.At(2, 1).Metrics; m == nil || m.Completed == 0 {
		t.Fatal("At(2,1) returned an empty point")
	}
	for _, coord := range [][]int{{0}, {3, 0}, {0, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%v) did not panic", coord)
				}
			}()
			res.At(coord...)
		}()
	}
}
