package farm

import (
	"encoding/json"
	"testing"
)

// TestFailureInjectionScenario pins the reliability engine end to end:
// the accelerated-wear scenario actually loses disks at the canonical
// seed, rebuild traffic exists and is charged to the run, and
// stripping the Reliability spec removes all of it.
func TestFailureInjectionScenario(t *testing.T) {
	sc, ok := Lookup("failure-injection")
	if !ok {
		t.Fatal("failure-injection scenario not registered")
	}
	m, err := Run(sc.Spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	if m.Failures == 0 {
		t.Fatal("accelerated wear produced no failures")
	}
	if m.Rebuilds == 0 || m.RebuildTime <= 0 {
		t.Fatalf("failures without rebuilds: rebuilds=%d time=%v", m.Rebuilds, m.RebuildTime)
	}
	if m.Rebuilds > m.Failures {
		t.Fatalf("more rebuilds (%d) than failures (%d)", m.Rebuilds, m.Failures)
	}
	if m.AFR <= 0 || m.AFR >= 1 || m.CyclesPerDay <= 0 {
		t.Fatalf("implausible duty figures: AFR=%v cycles/day=%v", m.AFR, m.CyclesPerDay)
	}

	// The same spec without the reliability axis: no failures, and the
	// rebuild streams' energy is gone from the bill.
	quiet := sc.Spec
	quiet.Reliability = nil
	qm, err := Run(quiet, 7)
	if err != nil {
		t.Fatal(err)
	}
	if qm.Failures != 0 || qm.Rebuilds != 0 || qm.RebuildTime != 0 {
		t.Fatalf("reliability-less run reports failures: %+v", qm)
	}
	if qm.AFR <= 0 {
		t.Error("AFR should be modeled even without failure injection")
	}
	if m.Energy <= qm.Energy {
		t.Errorf("rebuild traffic not charged: energy %v with failures vs %v without", m.Energy, qm.Energy)
	}
}

// TestFailureScheduleRepeatable runs the failure-injection scenario
// twice at the same seed and demands byte-identical metrics — the
// failure/rebuild schedule is a pure function of (spec, seed).
func TestFailureScheduleRepeatable(t *testing.T) {
	sc, _ := Lookup("failure-injection")
	var runs [2]string
	for i := range runs {
		m, err := Run(sc.Spec, 7)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		runs[i] = string(b)
	}
	if runs[0] != runs[1] {
		t.Fatal("failure-injection metrics differ across identical runs")
	}
}

// TestReliabilityWindowDeltas streams the failure-injection scenario
// and checks the per-window reliability deltas: they accumulate toward
// the run totals (the final reliability boundary lands after the last
// window closes, so the sums are a floor, not an identity).
func TestReliabilityWindowDeltas(t *testing.T) {
	sc, _ := Lookup("failure-injection")
	var failures, rebuilds int
	var rebuildTime float64
	m, err := RunStream(sc.Spec, 7, 900, func(w *Window, act *Actuator) error {
		if w.Failures < 0 || w.Rebuilds < 0 || w.RebuildTime < 0 {
			t.Fatalf("negative window delta: %+v", w)
		}
		failures += w.Failures
		rebuilds += w.Rebuilds
		rebuildTime += w.RebuildTime
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if failures == 0 {
		t.Fatal("no failures surfaced through window telemetry")
	}
	if failures > m.Failures || rebuilds > m.Rebuilds || rebuildTime > m.RebuildTime {
		t.Fatalf("window deltas overshoot totals: %d/%d failures, %d/%d rebuilds, %v/%v time",
			failures, m.Failures, rebuilds, m.Rebuilds, rebuildTime, m.RebuildTime)
	}
}

// TestReliabilitySweepTradeoff is the paper-style acceptance claim of
// the reliability axis: the unconstrained min-energy-under-SLO point
// burns drive life past the AFR budget, the slo-afr selector pays
// extra energy for a point inside it, and the cycle-capped policy
// (the scenario's base spec) meets the same budget at a bounded — in
// fact lower — energy cost than the best fixed threshold inside it.
func TestReliabilitySweepTradeoff(t *testing.T) {
	sc, ok := Lookup("reliability-sweep")
	if !ok || sc.Grid == nil {
		t.Fatal("reliability-sweep grid scenario not registered")
	}
	maxAFR := sc.Grid.Select.MaxAFR
	maxP95 := sc.Grid.Select.MaxP95

	res, err := RunSweep(*sc.Grid, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best < 0 {
		t.Fatal("slo-afr selector found no feasible point")
	}
	constrained := res.Points[res.Best].Metrics
	if constrained.AFR > maxAFR || constrained.RespP95 > maxP95 {
		t.Fatalf("selected point violates its own budgets: AFR=%v p95=%v", constrained.AFR, constrained.RespP95)
	}

	// Drop the AFR constraint: the cheapest point inside the latency
	// SLO alone must be a different, cheaper, shorter-lived machine.
	if err := res.Reselect(Selector{Kind: SelectMinEnergySLO, MaxP95: maxP95}); err != nil {
		t.Fatal(err)
	}
	if res.Best < 0 {
		t.Fatal("latency-only selector found no feasible point")
	}
	unconstrained := res.Points[res.Best].Metrics
	if unconstrained.AFR <= maxAFR {
		t.Fatalf("trade-off vanished: min-energy point AFR %v already inside budget %v", unconstrained.AFR, maxAFR)
	}
	if unconstrained.Energy > constrained.Energy {
		t.Fatalf("AFR constraint was free: %v J unconstrained vs %v J constrained", unconstrained.Energy, constrained.Energy)
	}

	// The cycle-capped policy answers the sweep: inside both budgets,
	// and cheaper than the best AFR-feasible fixed threshold.
	capped, err := Run(sc.Spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	if capped.AFR > maxAFR {
		t.Fatalf("cycle-capped policy breaks the AFR budget: %v > %v", capped.AFR, maxAFR)
	}
	if capped.RespP95 > maxP95 {
		t.Fatalf("cycle-capped policy breaks the latency SLO: %v > %v", capped.RespP95, maxP95)
	}
	if capped.Energy > constrained.Energy {
		t.Errorf("cycle cap costs more (%v J) than the fixed threshold it should beat (%v J)", capped.Energy, constrained.Energy)
	}
	if capped.Energy > 2*unconstrained.Energy {
		t.Errorf("cycle cap energy %v J is unbounded against the unconstrained optimum %v J", capped.Energy, unconstrained.Energy)
	}
}

// TestReliabilityShardMergeByteIdentical extends the shard/merge
// guarantee to the reliability grid: sharded execution through the
// JSON codecs reproduces the single-process sweep byte for byte,
// failure schedules included.
func TestReliabilityShardMergeByteIdentical(t *testing.T) {
	sc, _ := Lookup("reliability-sweep")
	direct, err := RunSweep(*sc.Grid, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := resultJSON(t, direct)
	for _, n := range []int{2, 3} {
		shards, err := Shard(*sc.Grid, 7, n)
		if err != nil {
			t.Fatal(err)
		}
		results := make([]ShardResult, n)
		for i := n - 1; i >= 0; i-- {
			m := roundTripShard(t, shards[i])
			res, err := RunShard(m, nil, 2)
			if err != nil {
				t.Fatal(err)
			}
			results[i] = roundTripResult(t, *res)
		}
		merged, err := Merge(results)
		if err != nil {
			t.Fatal(err)
		}
		if got := resultJSON(t, merged); got != want {
			t.Fatalf("n=%d: merged reliability sweep differs from single-process run", n)
		}
	}
}
