package farm

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// This file is the parallel grid engine over Spec: a Sweep declares a
// base scenario plus one Axis per varied dimension, the cross-product
// is compiled to Points, and RunSweep fans the points across a bounded
// worker pool. Results are stored by point index, so the output is
// byte-identical regardless of worker count, and each point's seed is a
// pure function of its coordinate — the whole grid is as reproducible
// as a single farm.Run.

// AxisKind selects which Spec dimension an Axis varies.
type AxisKind int

const (
	// AxisSpinThreshold overrides the spin policy with FixedSpin(v)
	// (seconds) — the paper's Figures 5/6 x-axis.
	AxisSpinThreshold AxisKind = iota
	// AxisFarmSize sets Spec.FarmSize = int(v).
	AxisFarmSize
	// AxisCacheBytes sets Spec.CacheBytes = int64(v).
	AxisCacheBytes
	// AxisCapL sets the packing load constraint Alloc.CapL = v — the
	// paper's Figure 4 x-axis.
	AxisCapL
	// AxisPackV switches the allocation to Pack_Disks_v with group size
	// int(v) — the Section 5.1 ablation axis.
	AxisPackV
	// AxisArrivalRate sets the workload intensity: Synthetic.ArrivalRate
	// or Bursty.OnRate to v, or rescales NERSC.Duration so the request
	// rate becomes v. Invalid for trace workloads (fixed arrivals).
	AxisArrivalRate
	// AxisAllocKind sets Alloc.Kind = AllocKind(int(v)) — compare
	// allocation strategies on one workload.
	AxisAllocKind
	// AxisSeed leaves the spec alone and offsets the point seed by
	// int64(v) — independent replications for error bars.
	AxisSeed
	// AxisController varies the online controller: grid positions are
	// controller kind names carried in Names ("static" or "none" clears
	// Control for an open-loop point; any other name requires the base
	// spec to carry a Control for the epoch and budget). Serializable,
	// so controlled grids shard and coordinate like any other.
	AxisController
	// AxisExplicitAlloc varies the allocation over per-position explicit
	// file→disk maps carried in Assigns — how the reorg engine turns its
	// per-epoch candidate evaluation into a shardable sweep. Not
	// expressible from the CLI grammar (the maps do not fit a flag), but
	// fully serializable.
	AxisExplicitAlloc
	// AxisCustom applies a caller-provided function to the spec. Labels
	// must name each grid position and Apply must be non-nil. Custom
	// axes cannot be serialized to JSON.
	AxisCustom
)

// axisKindNames doubles as the String(), MarshalText, and ParseAxis
// vocabulary.
var axisKindNames = map[AxisKind]string{
	AxisSpinThreshold: "threshold",
	AxisFarmSize:      "farm",
	AxisCacheBytes:    "cache",
	AxisCapL:          "L",
	AxisPackV:         "v",
	AxisArrivalRate:   "rate",
	AxisAllocKind:     "alloc",
	AxisSeed:          "seed",
	AxisController:    "control",
	AxisExplicitAlloc: "assign",
	AxisCustom:        "custom",
}

// String names the kind (the -sweep flag vocabulary).
func (k AxisKind) String() string {
	if n, ok := axisKindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("AxisKind(%d)", int(k))
}

// Axis varies one dimension of a sweep's base spec. Declarative kinds
// carry their grid in Values; AxisCustom carries it in Labels + Apply.
type Axis struct {
	// Name labels the axis in point labels; empty uses the kind's name.
	Name string `json:",omitempty"`
	Kind AxisKind
	// Values are the grid coordinates for the declarative kinds (for
	// AxisAllocKind they hold AllocKind numbers; ParseAxis accepts the
	// kind names).
	Values []float64 `json:",omitempty"`
	// Labels optionally name each grid position (required for
	// AxisCustom, where there are no Values).
	Labels []string `json:",omitempty"`
	// Names are the grid coordinates of an AxisController: controller
	// kind names, plus "static"/"none" for the open-loop point.
	Names []string `json:",omitempty"`
	// Assigns are the grid coordinates of an AxisExplicitAlloc: one
	// explicit file→disk map per position.
	Assigns [][]int `json:",omitempty"`
	// SeedStep offsets a point's seed by SeedStep × (index along this
	// axis), so one axis can carry independent workload draws while the
	// others stay comparable.
	SeedStep int64 `json:",omitempty"`
	// Apply mutates the spec for AxisCustom: i is the index along this
	// axis, coord the full point coordinate (ordered as Sweep.Axes) for
	// grids whose dimensions interact.
	Apply func(spec *Spec, i int, coord []int) error `json:"-"`
}

// size returns the number of grid positions on the axis.
func (a Axis) size() int {
	switch a.Kind {
	case AxisCustom:
		return len(a.Labels)
	case AxisController:
		return len(a.Names)
	case AxisExplicitAlloc:
		return len(a.Assigns)
	}
	return len(a.Values)
}

// name returns the label prefix.
func (a Axis) name() string {
	if a.Name != "" {
		return a.Name
	}
	return a.Kind.String()
}

// label renders the axis's contribution to a point label.
func (a Axis) label(i int) string {
	if i < len(a.Labels) {
		return a.Labels[i]
	}
	switch a.Kind {
	case AxisController:
		return fmt.Sprintf("%s=%s", a.name(), a.Names[i])
	case AxisExplicitAlloc:
		return fmt.Sprintf("%s=%d", a.name(), i)
	}
	v := a.Values[i]
	switch a.Kind {
	case AxisSpinThreshold:
		return fmt.Sprintf("%s=%gs", a.name(), v)
	case AxisAllocKind:
		return fmt.Sprintf("%s=%s", a.name(), AllocKind(int(v)))
	case AxisSeed:
		return fmt.Sprintf("%s=+%g", a.name(), v)
	default:
		return fmt.Sprintf("%s=%g", a.name(), v)
	}
}

// validate reports the first inconsistency.
func (a Axis) validate() error {
	switch a.Kind {
	case AxisCustom:
		if len(a.Labels) == 0 {
			return fmt.Errorf("farm: custom axis %q without labels", a.Name)
		}
		if a.Apply == nil {
			return fmt.Errorf("farm: custom axis %q without an Apply function", a.Name)
		}
		return nil
	case AxisController:
		if len(a.Names) == 0 {
			return fmt.Errorf("farm: controller axis %q has no controller names", a.name())
		}
		for i, n := range a.Names {
			if n == "" {
				return fmt.Errorf("farm: controller axis %q name %d is empty", a.name(), i)
			}
		}
		if len(a.Values) > 0 {
			return fmt.Errorf("farm: controller axis %q carries values (names go in Names)", a.name())
		}
		if len(a.Labels) > 0 && len(a.Labels) != len(a.Names) {
			return fmt.Errorf("farm: axis %q has %d labels for %d names", a.name(), len(a.Labels), len(a.Names))
		}
		return nil
	case AxisExplicitAlloc:
		if len(a.Assigns) == 0 {
			return fmt.Errorf("farm: explicit-alloc axis %q has no assignments", a.name())
		}
		for i, as := range a.Assigns {
			if len(as) == 0 {
				return fmt.Errorf("farm: explicit-alloc axis %q assignment %d is empty", a.name(), i)
			}
		}
		if len(a.Values) > 0 {
			return fmt.Errorf("farm: explicit-alloc axis %q carries values (maps go in Assigns)", a.name())
		}
		if len(a.Labels) > 0 && len(a.Labels) != len(a.Assigns) {
			return fmt.Errorf("farm: axis %q has %d labels for %d assignments", a.name(), len(a.Labels), len(a.Assigns))
		}
		return nil
	}
	if _, ok := axisKindNames[a.Kind]; !ok {
		return fmt.Errorf("farm: unknown axis kind %d", int(a.Kind))
	}
	if len(a.Values) == 0 {
		return fmt.Errorf("farm: axis %q has no values", a.name())
	}
	for i, v := range a.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("farm: axis %q value %d is %v", a.name(), i, v)
		}
	}
	if len(a.Labels) > 0 && len(a.Labels) != len(a.Values) {
		return fmt.Errorf("farm: axis %q has %d labels for %d values", a.name(), len(a.Labels), len(a.Values))
	}
	return nil
}

// apply mutates the spec for grid position i of the axis. Workload
// configs are copied before mutation so points never share state.
func (a Axis) apply(spec *Spec, i int, coord []int) error {
	switch a.Kind {
	case AxisCustom:
		return a.Apply(spec, i, coord)
	case AxisSpinThreshold:
		spec.Spin = FixedSpin(a.Values[i])
	case AxisFarmSize:
		spec.FarmSize = int(a.Values[i])
	case AxisCacheBytes:
		spec.CacheBytes = int64(a.Values[i])
	case AxisCapL:
		if spec.Alloc.Kind == AllocExplicit {
			return fmt.Errorf("farm: load-constraint axis has no effect on an explicit allocation")
		}
		spec.Alloc.CapL = a.Values[i]
	case AxisPackV:
		spec.Alloc.Kind = AllocPackV
		spec.Alloc.V = int(a.Values[i])
	case AxisAllocKind:
		spec.Alloc.Kind = AllocKind(int(a.Values[i]))
	case AxisSeed:
		// Seed offsets are handled during point compilation.
	case AxisArrivalRate:
		if err := setWorkloadRate(spec, a.Values[i]); err != nil {
			return err
		}
	case AxisController:
		name := a.Names[i]
		if name == "static" || name == "none" {
			spec.Control = nil
			break
		}
		if spec.Control == nil {
			return fmt.Errorf("farm: controller axis needs a base spec with Control (it carries the epoch and budget)")
		}
		cs := *spec.Control
		cs.Controller = name
		spec.Control = &cs
	case AxisExplicitAlloc:
		spec.Alloc = Explicit(a.Assigns[i])
	default:
		return fmt.Errorf("farm: unknown axis kind %d", int(a.Kind))
	}
	return nil
}

// SelectorKind names a sweep's operating-point selection rule.
type SelectorKind int

const (
	// SelectNone runs the grid without choosing a point (Best = -1).
	SelectNone SelectorKind = iota
	// SelectMinEnergySLO picks the lowest-energy point whose p95
	// response time stays within MaxP95 — the question an operator with
	// a latency budget actually asks.
	SelectMinEnergySLO
	// SelectKnee picks the knee of the energy-vs-mean-response curve:
	// the point farthest below the chord between the curve's extremes,
	// where marginal savings stop paying for marginal latency.
	SelectKnee
	// SelectPareto reports the Pareto front of (energy, mean response):
	// Front lists every non-dominated point; Best stays -1.
	SelectPareto
	// SelectMinEnergySLOAFR picks the lowest-energy point that meets
	// BOTH budgets: p95 response within MaxP95 and modeled annual
	// failure rate within MaxAFR — min energy under an SLO and a
	// durability budget. Aggressive spin-down points that win on energy
	// but burn start/stop cycles fail the AFR leg.
	SelectMinEnergySLOAFR
)

var selectorKindNames = map[SelectorKind]string{
	SelectNone:            "none",
	SelectMinEnergySLO:    "slo",
	SelectKnee:            "knee",
	SelectPareto:          "pareto",
	SelectMinEnergySLOAFR: "slo-afr",
}

// String names the kind (the -select flag vocabulary).
func (k SelectorKind) String() string {
	if n, ok := selectorKindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("SelectorKind(%d)", int(k))
}

// Selector is a sweep's pluggable operating-point rule.
type Selector struct {
	Kind SelectorKind
	// MaxP95 is the response-time SLO in seconds (SelectMinEnergySLO,
	// SelectMinEnergySLOAFR).
	MaxP95 float64 `json:",omitempty"`
	// MaxAFR is the annual-failure-rate budget in (0, 1)
	// (SelectMinEnergySLOAFR).
	MaxAFR float64 `json:",omitempty"`
}

// validate reports the first inconsistency.
func (s Selector) validate() error {
	switch s.Kind {
	case SelectMinEnergySLO, SelectMinEnergySLOAFR:
		if s.MaxP95 <= 0 || math.IsNaN(s.MaxP95) {
			return fmt.Errorf("farm: sweep SLO %v must be positive", s.MaxP95)
		}
		if s.Kind == SelectMinEnergySLOAFR {
			if !(s.MaxAFR > 0 && s.MaxAFR < 1) || math.IsNaN(s.MaxAFR) {
				return fmt.Errorf("farm: AFR budget %v outside (0,1)", s.MaxAFR)
			}
		} else if s.MaxAFR != 0 {
			return fmt.Errorf("farm: selector %v does not take an AFR budget (MaxAFR %v set)", s.Kind, s.MaxAFR)
		}
		return nil
	case SelectNone, SelectKnee, SelectPareto:
		if s.MaxP95 != 0 {
			return fmt.Errorf("farm: selector %v does not take an SLO (MaxP95 %v set)", s.Kind, s.MaxP95)
		}
		if s.MaxAFR != 0 {
			return fmt.Errorf("farm: selector %v does not take an AFR budget (MaxAFR %v set)", s.Kind, s.MaxAFR)
		}
		return nil
	default:
		return fmt.Errorf("farm: unknown selector kind %d", int(s.Kind))
	}
}

// pick applies the rule to a completed grid. Points without metrics
// (plan-only sweeps) select nothing.
func (s Selector) pick(points []Point) (best int, front []int) {
	best = -1
	for i := range points {
		if points[i].Metrics == nil {
			return -1, nil
		}
	}
	if len(points) == 0 {
		return -1, nil
	}
	switch s.Kind {
	case SelectMinEnergySLO, SelectMinEnergySLOAFR:
		bestEnergy := math.Inf(1)
		for i := range points {
			m := points[i].Metrics
			if s.Kind == SelectMinEnergySLOAFR && m.AFR > s.MaxAFR {
				continue
			}
			if m.RespP95 <= s.MaxP95 && m.Energy < bestEnergy {
				bestEnergy = m.Energy
				best = i
			}
		}
		return best, nil
	case SelectKnee:
		return kneePoint(points), nil
	case SelectPareto:
		return -1, paretoFront(points)
	default:
		return -1, nil
	}
}

// kneePoint finds the point farthest from the chord joining the
// extremes of the (mean response, energy) trade-off curve. Degenerate
// grids (fewer than three points, or no spread on either dimension)
// fall back to the lowest-energy point.
func kneePoint(points []Point) int {
	order := make([]int, len(points))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return points[order[a]].Metrics.RespMean < points[order[b]].Metrics.RespMean
	})
	minE, maxE := math.Inf(1), math.Inf(-1)
	for i := range points {
		e := points[i].Metrics.Energy
		if e < minE {
			minE = e
		}
		if e > maxE {
			maxE = e
		}
	}
	first, last := points[order[0]].Metrics, points[order[len(order)-1]].Metrics
	respSpread := last.RespMean - first.RespMean
	energySpread := maxE - minE
	if len(points) < 3 || respSpread <= 0 || energySpread <= 0 {
		best := 0
		for i := range points {
			if points[i].Metrics.Energy < points[best].Metrics.Energy {
				best = i
			}
		}
		return best
	}
	// Normalize both dimensions to [0,1] and measure each point's
	// signed distance from the chord between the endpoints: positive
	// below the chord (less energy than the linear trade-off buys),
	// negative above. Only below-chord points are knees; a curve with
	// none — concave up, every extra second buying less than linear
	// savings — falls back to the lowest-energy point.
	norm := func(m *Metrics) (x, y float64) {
		return (m.RespMean - first.RespMean) / respSpread, (m.Energy - minE) / energySpread
	}
	x0, y0 := norm(first)
	x1, y1 := norm(last)
	dx, dy := x1-x0, y1-y0
	chord := math.Hypot(dx, dy)
	best, bestDist := -1, 0.0
	for _, i := range order {
		x, y := norm(points[i].Metrics)
		dist := (dy*x - dx*y + x1*y0 - y1*x0) / chord
		if dist > bestDist {
			best, bestDist = i, dist
		}
	}
	if best < 0 {
		for i := range points {
			if best < 0 || points[i].Metrics.Energy < points[best].Metrics.Energy {
				best = i
			}
		}
	}
	return best
}

// paretoFront returns the indices of points not dominated on (energy,
// mean response), in index order.
func paretoFront(points []Point) []int {
	var front []int
	for i := range points {
		mi := points[i].Metrics
		dominated := false
		for j := range points {
			if i == j {
				continue
			}
			mj := points[j].Metrics
			if mj.Energy <= mi.Energy && mj.RespMean <= mi.RespMean &&
				(mj.Energy < mi.Energy || mj.RespMean < mi.RespMean) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, i)
		}
	}
	return front
}

// Sweep declares a grid of scenarios: a base Spec plus one Axis per
// varied dimension. The cross-product of the axes is the point set; the
// Selector picks the operating point(s) once every point has run.
type Sweep struct {
	// Name labels the sweep in errors and output.
	Name string `json:",omitempty"`
	// Base is the spec every point starts from. It need not validate on
	// its own — an axis may supply the missing dimension (e.g. CapL) —
	// but every compiled point must.
	Base Spec
	// Axes are applied in order; later axes see earlier axes' edits.
	Axes []Axis `json:",omitempty"`
	// Select is the operating-point rule (zero value: none).
	Select Selector `json:",omitempty"`
	// PlanOnly runs only the workload-synthesis and allocation stages
	// per point (filling Point.Alloc, not Point.Metrics) — packing
	// grids without paying for simulation.
	PlanOnly bool `json:",omitempty"`
}

// Validate checks the axes and selector. Point specs are validated
// individually when the sweep runs, because a base may be completed by
// its axes.
func (s Sweep) Validate() error {
	seen := make(map[AxisKind]bool, len(s.Axes))
	for i, a := range s.Axes {
		if err := a.validate(); err != nil {
			return fmt.Errorf("farm: sweep axis %d: %w", i, err)
		}
		// Two axes of one declarative kind would cross-label points the
		// later axis silently overwrites.
		if a.Kind != AxisCustom {
			if seen[a.Kind] {
				return fmt.Errorf("farm: duplicate %v axis", a.Kind)
			}
			seen[a.Kind] = true
		}
	}
	return s.Select.validate()
}

// NumPoints returns the grid size (1 for a sweep with no axes).
func (s Sweep) NumPoints() int {
	n := 1
	for _, a := range s.Axes {
		n *= a.size()
	}
	return n
}

// Point is one compiled grid position: its coordinate, the derived
// spec, and (after the sweep runs) its result.
type Point struct {
	// Coord locates the point along each axis, ordered as Sweep.Axes.
	Coord []int
	// Label joins the axis labels, e.g. "threshold=60s L=0.7".
	Label string
	// Spec is the base spec with every axis applied.
	Spec Spec
	// SeedOffset is added to the sweep seed for this point (the sum of
	// each axis's SeedStep×index plus any AxisSeed value).
	SeedOffset int64
	// Metrics is the simulation result (nil until the sweep runs, and
	// always nil for plan-only sweeps).
	Metrics *Metrics
	// Alloc is the allocation result of a plan-only sweep.
	Alloc *Allocation
}

// Points compiles the cross-product of the axes into specs. Points are
// ordered row-major: the last axis varies fastest.
func (s Sweep) Points() ([]Point, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	n := s.NumPoints()
	points := make([]Point, 0, n)
	coord := make([]int, len(s.Axes))
	for p := 0; p < n; p++ {
		spec := s.Base
		var offset int64
		labels := make([]string, 0, len(s.Axes))
		for ai, a := range s.Axes {
			i := coord[ai]
			if err := a.apply(&spec, i, coord); err != nil {
				return nil, fmt.Errorf("farm: sweep %s axis %s[%d]: %w", s.Name, a.name(), i, err)
			}
			offset += a.SeedStep * int64(i)
			if a.Kind == AxisSeed {
				offset += int64(a.Values[i])
			}
			labels = append(labels, a.label(i))
		}
		points = append(points, Point{
			Coord:      append([]int(nil), coord...),
			Label:      strings.Join(labels, " "),
			Spec:       spec,
			SeedOffset: offset,
		})
		for ai := len(coord) - 1; ai >= 0; ai-- {
			coord[ai]++
			if coord[ai] < s.Axes[ai].size() {
				break
			}
			coord[ai] = 0
		}
	}
	return points, nil
}

// SweepResult is a completed grid plus the selector's verdict.
type SweepResult struct {
	Sweep  Sweep
	Points []Point
	// Best indexes the selected operating point in Points, or -1 when
	// the selector chose nothing (no rule, infeasible SLO, plan-only).
	Best int
	// Front lists the Pareto-optimal indices (SelectPareto only).
	Front []int
}

// Reselect applies a different operating-point rule to a completed
// grid, replacing the sweep's own selector — how cmd/disksim applies
// -select after merging shard results.
func (r *SweepResult) Reselect(sel Selector) error {
	if err := sel.validate(); err != nil {
		return err
	}
	r.Sweep.Select = sel
	r.Best, r.Front = sel.pick(r.Points)
	return nil
}

// At returns the point at the given per-axis coordinate.
func (r *SweepResult) At(coord ...int) *Point {
	if len(coord) != len(r.Sweep.Axes) {
		panic(fmt.Sprintf("farm: At(%v) on a %d-axis sweep", coord, len(r.Sweep.Axes)))
	}
	idx := 0
	for ai, c := range coord {
		size := r.Sweep.Axes[ai].size()
		if c < 0 || c >= size {
			panic(fmt.Sprintf("farm: At coordinate %d out of range [0,%d) on axis %d", c, size, ai))
		}
		idx = idx*size + c
	}
	return &r.Points[idx]
}

// RunSweep compiles the sweep and fans its points across up to workers
// goroutines (0 means GOMAXPROCS). Each point runs farm.Run (or
// farm.Plan for plan-only sweeps) at seed + its SeedOffset; results are
// stored by point index, so the output is byte-identical for any worker
// count. The first point error aborts the sweep.
func RunSweep(sweep Sweep, seed int64, workers int) (*SweepResult, error) {
	c, err := Compile(sweep, seed)
	if err != nil {
		return nil, err
	}
	results := make([]ShardPointResult, c.NumPoints())
	err = parallelFor(context.Background(), c.NumPoints(), poolSize(workers), func(i int) error {
		pr, err := c.RunPoint(i)
		if err != nil {
			return fmt.Errorf("farm: sweep %s point %s: %w", sweep.Name, c.Label(i), err)
		}
		results[i] = pr
		return nil
	})
	if err != nil {
		return nil, err
	}
	return c.Assemble(results)
}

// poolSize resolves a worker-count flag: non-positive means one worker
// per core.
func poolSize(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// parallelFor runs fn(i) for i in [0, n) on up to workers goroutines
// and returns the first error (remaining work is skipped once an error
// is recorded). Cancelling the context stops new work from being
// grabbed — in-flight calls finish — and surfaces ctx.Err() unless an
// fn error came first.
func parallelFor(ctx context.Context, n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	grab := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || next >= n || ctx.Err() != nil {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	fail := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil {
			firstErr = err
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i, ok := grab()
				if !ok {
					return
				}
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	return firstErr
}

// ParseAxis parses the -sweep flag grammar "dim=v1,v2,..." where dim is
// an AxisKind name (threshold, farm, cache, L, v, rate, alloc, seed,
// control) and values are numbers — except alloc, whose values are
// allocation kind names (pack, packv, random, firstfit, ffd, bestfit,
// chp), and control, whose values are controller names ("static" for
// the open-loop point).
func ParseAxis(s string) (Axis, error) {
	dim, list, ok := strings.Cut(s, "=")
	if !ok {
		return Axis{}, fmt.Errorf("farm: axis %q is not dim=v1,v2,...", s)
	}
	var kind AxisKind
	found := false
	for k, n := range axisKindNames {
		// Custom axes carry Go functions and explicit-alloc axes whole
		// file→disk maps; neither fits a flag.
		if n == dim && k != AxisCustom && k != AxisExplicitAlloc {
			kind, found = k, true
			break
		}
	}
	if !found {
		return Axis{}, fmt.Errorf("farm: unknown axis dimension %q (have threshold, farm, cache, L, v, rate, alloc, seed, control)", dim)
	}
	a := Axis{Kind: kind}
	for _, field := range strings.Split(list, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		switch kind {
		case AxisAllocKind:
			ak, err := parseAllocKind(field)
			if err != nil {
				return Axis{}, err
			}
			a.Values = append(a.Values, float64(ak))
		case AxisController:
			a.Names = append(a.Names, field)
		default:
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return Axis{}, fmt.Errorf("farm: axis %s value %q: %w", dim, field, err)
			}
			a.Values = append(a.Values, v)
		}
	}
	if err := a.validate(); err != nil {
		return Axis{}, err
	}
	return a, nil
}

// parseAllocKind resolves an AllocKind by its String() name.
func parseAllocKind(s string) (AllocKind, error) {
	for _, k := range []AllocKind{AllocPack, AllocPackV, AllocRandom, AllocFirstFit,
		AllocFirstFitDecreasing, AllocBestFit, AllocChangHwangPark, AllocExplicit} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("farm: unknown allocation kind %q", s)
}

// ParseSelector parses the -select flag grammar: "none", "knee",
// "pareto", "slo=SECONDS" (min energy with p95 response within the
// budget), or "slo=SECONDS,afr=RATE" (min energy under both the SLO
// and an annual-failure-rate budget).
func ParseSelector(s string) (Selector, error) {
	if v, ok := strings.CutPrefix(s, "slo="); ok {
		slo, afr, hasAFR := strings.Cut(v, ",afr=")
		p95, err := strconv.ParseFloat(slo, 64)
		if err != nil {
			return Selector{}, fmt.Errorf("farm: selector SLO %q: %w", slo, err)
		}
		sel := Selector{Kind: SelectMinEnergySLO, MaxP95: p95}
		if hasAFR {
			sel.Kind = SelectMinEnergySLOAFR
			sel.MaxAFR, err = strconv.ParseFloat(afr, 64)
			if err != nil {
				return Selector{}, fmt.Errorf("farm: selector AFR budget %q: %w", afr, err)
			}
		}
		return sel, sel.validate()
	}
	for k, n := range selectorKindNames {
		if n == s {
			if k == SelectMinEnergySLO || k == SelectMinEnergySLOAFR {
				return Selector{}, fmt.Errorf("farm: selector %s needs budgets: slo=SECONDS[,afr=RATE]", n)
			}
			return Selector{Kind: k}, nil
		}
	}
	return Selector{}, fmt.Errorf("farm: unknown selector %q (have none, knee, pareto, slo=SECONDS[,afr=RATE])", s)
}
