package farm

import (
	"runtime"
	"sync/atomic"
)

// simWorkers is the process-wide shard count every farm.Run /
// farm.RunStream passes to the storage kernel. It is plumbing, not
// policy: results are byte-identical at any value (the kernel proves
// it — see storage.ShardBlocker and the parallel identity tests), so
// the setting only trades wall-clock for goroutines. Zero means
// "unset" and resolves to 1 (sequential), keeping single-threaded
// behavior the default for library users, tests, and the sweep pool,
// whose workers already saturate cores on grid runs.
var simWorkers atomic.Int32

// SetSimWorkers sets how many worker goroutines each simulation shards
// across and returns the previous effective setting (for defer-restore
// in tests — the return is always >= 1, safe to pass back in). n <= 0
// selects one worker per core (GOMAXPROCS).
func SetSimWorkers(n int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	prev := simWorkers.Swap(int32(n))
	if prev <= 0 {
		prev = 1
	}
	return int(prev)
}

// SimWorkers returns the effective per-simulation worker count
// (default 1).
func SimWorkers() int {
	if n := simWorkers.Load(); n > 0 {
		return int(n)
	}
	return 1
}
