package farm

import (
	"diskpack/internal/disk"
	"diskpack/internal/workload"
)

// miniSynthetic is a Table 1 workload shrunk to n files with file sizes
// scaled by the same factor, preserving the paper's load profile (the
// same convention internal/exp uses for sub-scale runs).
func miniSynthetic(n int, rate float64) workload.Synthetic {
	cfg := workload.DefaultSynthetic(rate, 0)
	f := float64(n) / float64(cfg.NumFiles)
	cfg.NumFiles = n
	cfg.MinSize = int64(float64(cfg.MinSize) * f)
	if cfg.MinSize < disk.MB {
		cfg.MinSize = disk.MB
	}
	cfg.MaxSize = int64(float64(cfg.MaxSize) * f)
	if cfg.MaxSize < 2*cfg.MinSize {
		cfg.MaxSize = 2 * cfg.MinSize
	}
	return cfg
}

// miniNERSC is the Section 5.1 synthesizer shrunk to n files and m
// requests at the paper's arrival rate.
func miniNERSC(n, m int) workload.NERSC {
	cfg := workload.DefaultNERSC(0)
	cfg.NumFiles = n
	cfg.NumRequests = m
	cfg.Duration *= float64(m) / 115832
	return cfg
}

// miniBursty is the default ON/OFF workload with the mini file
// population, cut to duration seconds. Its 9-minute silences make
// every OFF period a spin-down opportunity — the densest source of
// start/stop cycles per simulated second, which is why the
// reliability scenarios build on it.
func miniBursty(duration float64) workload.Bursty {
	cfg := workload.DefaultBursty(2, 0)
	mini := miniSynthetic(2000, 2)
	cfg.NumFiles = mini.NumFiles
	cfg.MinSize = mini.MinSize
	cfg.MaxSize = mini.MaxSize
	cfg.Duration = duration
	return cfg
}

// The built-in catalogue. The first two points are paper miniatures;
// the remaining four are scenarios the hand-wired seed could not
// express: a heterogeneous farm, diurnal load, bursty ON/OFF arrivals,
// and a latency-SLO-constrained spin-down sweep.
func init() {
	Register(Scenario{
		Name: "paper-synth",
		Doc:  "Table 1 workload miniature: Pack_Disks at L=0.7, break-even spin-down, 20-disk farm",
		Spec: Spec{
			Name:     "paper-synth",
			FarmSize: 20,
			Workload: SyntheticWorkload(miniSynthetic(2000, 6)),
			Alloc:    Packed(0.7),
			Spin:     SpinSpec{Kind: SpinBreakEven},
		},
	})
	Register(Scenario{
		Name: "paper-nersc-cache",
		Doc:  "NERSC miniature at the paper's operating point: Pack_Disks_4, 16 GB LRU, 0.5 h threshold",
		Spec: Spec{
			Name:       "paper-nersc-cache",
			Workload:   NERSCWorkload(miniNERSC(8000, 10000)),
			Alloc:      AllocSpec{Kind: AllocPackV, CapL: 0.8, V: 4},
			Spin:       FixedSpin(0.5 * 3600),
			CacheBytes: 16 * disk.GB,
		},
	})
	Register(Scenario{
		Name: "hetero",
		Doc:  "Heterogeneous farm: 12 Table 2 drives + 12 eco 5400 rpm drives, packed hot-to-fast",
		Spec: Spec{
			Name: "hetero",
			Groups: []DiskGroup{
				{Count: 12, Params: disk.DefaultParams()},
				{Count: 12, Params: disk.EcoParams()},
			},
			Workload: SyntheticWorkload(miniSynthetic(2000, 6)),
			Alloc:    Packed(0.7),
			Spin:     SpinSpec{Kind: SpinBreakEven},
		},
	})
	Register(Scenario{
		Name: "diurnal",
		Doc:  "Two days of diurnally modulated load: quiet nights are where spin-down earns its keep",
		Spec: Spec{
			Name:     "diurnal",
			FarmSize: 20,
			Workload: SyntheticWorkload(func() workload.Synthetic {
				cfg := miniSynthetic(2000, 0.5)
				cfg.Duration = 2 * 86400
				cfg.Diurnal = workload.DefaultDiurnal()
				return cfg
			}()),
			Alloc: Packed(0.7),
			Spin:  SpinSpec{Kind: SpinBreakEven},
		},
	})
	Register(Scenario{
		Name: "bursty",
		Doc:  "ON/OFF arrivals (1 min bursts at 10x rate, 9 min silence): the adversary of fixed thresholds",
		Spec: Spec{
			Name:     "bursty",
			FarmSize: 20,
			Workload: BurstyWorkload(func() workload.Bursty {
				cfg := workload.DefaultBursty(2, 0)
				mini := miniSynthetic(2000, 2)
				cfg.NumFiles = mini.NumFiles
				cfg.MinSize = mini.MinSize
				cfg.MaxSize = mini.MaxSize
				cfg.Duration = 8000
				return cfg
			}()),
			// Pack against a tight load constraint: per-file loads are
			// computed from the long-run mean rate, but service must be
			// provisioned for the 10x in-burst rate — L=0.1 spreads the
			// traffic over enough spindles to absorb the bursts.
			Alloc: Packed(0.1),
			Spin:  SpinSpec{Kind: SpinBreakEven},
		},
	})
	Register(Scenario{
		Name: "slo-sweep",
		Doc:  "Spin-down threshold sweep picking the cheapest point with p95 response <= 25 s",
		Spec: Spec{
			Name:     "slo-sweep",
			Workload: NERSCWorkload(miniNERSC(8000, 10000)),
			Alloc:    Packed(0.8),
			Spin:     SpinSpec{Kind: SpinBreakEven}, // overridden per sweep point
		},
		Sweep: &SLOSweep{
			Thresholds: []float64{30, 60, 120, 300, 900, 1800, 3600},
			MaxP95:     25,
		},
	})
	Register(Scenario{
		Name: "failure-injection",
		Doc:  "Bursty farm under accelerated spin-cycle wear: disks fail, redundancy groups rebuild onto survivors",
		Spec: Spec{
			Name:     "failure-injection",
			FarmSize: 20,
			Workload: BurstyWorkload(miniBursty(8000)),
			Alloc:    Packed(0.1),
			Spin:     SpinSpec{Kind: SpinBreakEven},
			// Rated cycle life accelerated from 50,000 to 8 so the
			// ~13 OFF-period spin cycles of the run consume whole
			// drive lifetimes: most disks fail, exercising rebuild
			// reads on group survivors and the replacement write.
			Reliability: &ReliabilitySpec{
				GroupSize:  5,
				CheckEvery: 900,
				Wear:       &disk.WearParams{RatedCycles: 8, BaseAFR: 0.0034, CycleWear: 1},
			},
		},
	})
	Register(Scenario{
		Name: "reliability-sweep",
		Doc:  "Spin threshold vs drive life: cheapest point with p95 <= 30 s and modeled AFR <= 10%",
		Spec: Spec{
			Name:     "reliability-sweep",
			FarmSize: 20,
			Workload: BurstyWorkload(miniBursty(8000)),
			Alloc:    Packed(0.1),
			// The base point is the policy answer to the sweep's
			// finding: a break-even threshold capped at one
			// start/stop cycle per disk-day, trading a little energy
			// for staying inside the AFR budget.
			Spin: CycleCapSpin(0, 1),
			Reliability: &ReliabilitySpec{
				GroupSize:  5,
				CheckEvery: 900,
			},
		},
		Grid: &Sweep{
			Name: "reliability-sweep",
			Base: Spec{
				Name:        "reliability-sweep",
				FarmSize:    20,
				Workload:    BurstyWorkload(miniBursty(8000)),
				Alloc:       Packed(0.1),
				Spin:        SpinSpec{Kind: SpinBreakEven}, // overridden per sweep point
				Reliability: &ReliabilitySpec{GroupSize: 5, CheckEvery: 900},
			},
			Axes:   []Axis{{Kind: AxisSpinThreshold, Values: []float64{30, 120, 600, 1800}}},
			Select: Selector{Kind: SelectMinEnergySLOAFR, MaxP95: 30, MaxAFR: 0.10},
		},
	})
}
