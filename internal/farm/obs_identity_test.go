// Observability identity suite: the obs layer is observation-only, so
// (1) installing a full observer — trace, telemetry, metrics — must
// not change a run's Metrics by a single byte, and (2) the observer's
// own output is part of the determinism contract: trace and telemetry
// bytes must be identical at any per-simulation worker count, for
// open-loop and controlled runs alike.
package farm_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"diskpack/internal/control"
	"diskpack/internal/coord"
	"diskpack/internal/farm"
	"diskpack/internal/obs"
)

// observedRun executes run with a fresh full observer installed and
// returns the rendered trace and telemetry bytes.
func observedRun(t *testing.T, spec farm.Spec, seed int64, run func() error) (trace, telem []byte) {
	t.Helper()
	rec := obs.NewTraceRecorder()
	var tb bytes.Buffer
	tw := obs.NewTelemetryWriter(&tb)
	if err := tw.WriteHeader(obs.TelemetryHeader{Spec: spec.Name, Seed: seed}); err != nil {
		t.Fatal(err)
	}
	prev := farm.SetRunObserver(&obs.RunObserver{
		Trace:     rec,
		Telemetry: tw,
		Metrics:   obs.NewRunMetrics(obs.NewRegistry(), farm.RespBuckets()),
	})
	defer farm.SetRunObserver(prev)
	if err := run(); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := rec.WriteChromeTrace(&out); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return out.Bytes(), tb.Bytes()
}

func lookupSpec(t *testing.T, name string) farm.Spec {
	t.Helper()
	sc, ok := farm.Lookup(name)
	if !ok {
		t.Fatalf("scenario %s not registered", name)
	}
	return sc.Spec
}

// TestObserverDoesNotPerturbMetrics pins the observation-only
// guarantee across the three run shapes: classic open-loop, streamed
// open-loop, and controlled.
func TestObserverDoesNotPerturbMetrics(t *testing.T) {
	const seed = 7
	for _, name := range []string{"hetero", "failure-injection", "controlled-bursty"} {
		t.Run(name, func(t *testing.T) {
			spec := lookupSpec(t, name)
			base, err := farm.Run(spec, seed)
			if err != nil {
				t.Fatal(err)
			}
			want, err := json.Marshal(base)
			if err != nil {
				t.Fatal(err)
			}
			var m *farm.Metrics
			traceB, _ := observedRun(t, spec, seed, func() error {
				var err error
				m, err = farm.Run(spec, seed)
				return err
			})
			got, err := json.Marshal(m)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("observer changed the run:\n--- bare\n%s\n--- observed\n%s", want, got)
			}
			if !json.Valid(traceB) {
				t.Error("trace output is not valid JSON")
			}
		})
	}
}

// TestObserverDoesNotPerturbSweeps extends the observation-only
// guarantee to the multi-run paths: with a metrics observer installed
// globally (what -metrics-addr does — the file sinks are single-run),
// a sweep run directly, through shard/merge, and through a loopback
// coordinator pool all reproduce the bare RunSweep result exactly.
func TestObserverDoesNotPerturbSweeps(t *testing.T) {
	sweep := farm.Sweep{
		Name: "obs-sweep",
		Base: lookupSpec(t, "hetero"),
		Axes: []farm.Axis{{Kind: farm.AxisSpinThreshold, Values: []float64{30, 120, 600}}},
	}
	bare, err := farm.RunSweep(sweep, 9, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(bare)
	if err != nil {
		t.Fatal(err)
	}

	prev := farm.SetRunObserver(&obs.RunObserver{
		Metrics: obs.NewRunMetrics(obs.NewRegistry(), farm.RespBuckets()),
	})
	defer farm.SetRunObserver(prev)

	check := func(name string, res *farm.SweepResult, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("%s: observed sweep differs from bare RunSweep", name)
		}
	}

	direct, err := farm.RunSweep(sweep, 9, 2)
	check("direct", direct, err)

	shards, err := farm.Shard(sweep, 9, 2)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]farm.ShardResult, len(shards))
	for i, m := range shards {
		res, err := farm.RunShard(m, nil, 2)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = *res
	}
	merged, err := farm.Merge(results)
	check("shard/merge", merged, err)

	pool := coord.PoolRunner(context.Background(), 2, coord.Config{}, coord.WorkerConfig{})
	pooled, err := pool(sweep, 9, 0)
	check("coordinator pool", pooled, err)
}

// TestObsOutputIdenticalAcrossWorkers pins the determinism of the
// observability output itself: for an open-loop streamed run and for a
// controlled scenario, trace and telemetry bytes are identical at any
// worker count.
func TestObsOutputIdenticalAcrossWorkers(t *testing.T) {
	const seed = 7
	cases := []struct {
		name string
		run  func(spec farm.Spec) func() error
		spec farm.Spec
	}{
		{
			name: "stream-hetero",
			run: func(spec farm.Spec) func() error {
				return func() error {
					_, err := farm.RunStream(spec, seed, 900, nil)
					return err
				}
			},
		},
		{
			name: "controlled-bursty",
			run: func(spec farm.Spec) func() error {
				return func() error {
					_, err := control.RunSpec(spec, seed)
					return err
				}
			},
		},
	}
	cases[0].spec = lookupSpec(t, "hetero")
	cases[1].spec = lookupSpec(t, "controlled-bursty")
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var refTrace, refTelem []byte
			for i, workers := range workerCounts() {
				prev := farm.SetSimWorkers(workers)
				traceB, telemB := observedRun(t, c.spec, seed, c.run(c.spec))
				farm.SetSimWorkers(prev)
				if i == 0 {
					refTrace, refTelem = traceB, telemB
					if !json.Valid(refTrace) {
						t.Fatal("trace output is not valid JSON")
					}
					h, ws, err := obs.ReadTelemetry(bytes.NewReader(refTelem))
					if err != nil {
						t.Fatalf("telemetry unreadable: %v", err)
					}
					if h.Spec != c.spec.Name || len(ws) == 0 {
						t.Fatalf("telemetry header %+v with %d windows", h, len(ws))
					}
					continue
				}
				if !bytes.Equal(refTrace, traceB) {
					t.Errorf("workers=%d: trace bytes diverge from sequential", workers)
				}
				if !bytes.Equal(refTelem, telemB) {
					t.Errorf("workers=%d: telemetry bytes diverge from sequential", workers)
				}
			}
		})
	}
}
