package farm

import (
	"encoding/json"
	"fmt"
	"io"
)

// Scenario persistence: a Spec or a Sweep serialized as JSON, so
// scenarios run without recompiling (cmd/disksim -spec file.json). The
// enum kinds marshal as their String() names — "pack", "breakeven",
// "threshold" — so files stay readable and diffable. Custom axes carry
// Go functions and are rejected by Encode/Decode.

// File is the on-disk scenario document: exactly one of Spec or Sweep.
type File struct {
	Spec  *Spec  `json:",omitempty"`
	Sweep *Sweep `json:",omitempty"`
}

// Validate checks the one-of constraint and the payload.
func (f File) Validate() error {
	switch {
	case f.Spec == nil && f.Sweep == nil:
		return fmt.Errorf("farm: spec file declares neither a Spec nor a Sweep")
	case f.Spec != nil && f.Sweep != nil:
		return fmt.Errorf("farm: spec file declares both a Spec and a Sweep")
	case f.Spec != nil:
		return f.Spec.Validate()
	default:
		for _, a := range f.Sweep.Axes {
			if a.Kind == AxisCustom {
				return fmt.Errorf("farm: custom axes cannot be serialized")
			}
		}
		return f.Sweep.Validate()
	}
}

// EncodeFile writes the document as indented JSON.
func EncodeFile(w io.Writer, f File) error {
	if err := f.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// DecodeFile reads and validates a scenario document.
func DecodeFile(r io.Reader) (*File, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("farm: decoding spec file: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// enumFromText implements name-based text unmarshalling shared by the
// kind enums below.
func enumFromText[K any](text []byte, what string, lookup func(string) (K, bool)) (K, error) {
	k, ok := lookup(string(text))
	if !ok {
		var zero K
		return zero, fmt.Errorf("farm: unknown %s %q", what, text)
	}
	return k, nil
}

// MarshalText renders the kind as its String() name.
func (k WorkloadKind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses a WorkloadKind name.
func (k *WorkloadKind) UnmarshalText(text []byte) error {
	v, err := enumFromText(text, "workload kind", func(s string) (WorkloadKind, bool) {
		for _, c := range []WorkloadKind{WorkloadTrace, WorkloadSynthetic, WorkloadNERSC, WorkloadBursty} {
			if c.String() == s {
				return c, true
			}
		}
		return 0, false
	})
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// MarshalText renders the kind as its String() name.
func (k AllocKind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses an AllocKind name.
func (k *AllocKind) UnmarshalText(text []byte) error {
	v, err := parseAllocKind(string(text))
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// MarshalText renders the kind as its String() name.
func (k SpinKind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses a SpinKind name.
func (k *SpinKind) UnmarshalText(text []byte) error {
	v, err := enumFromText(text, "spin kind", func(s string) (SpinKind, bool) {
		for _, c := range []SpinKind{SpinBreakEven, SpinFixed, SpinNever, SpinImmediate, SpinAdaptive, SpinRandomized, SpinTailAware} {
			if c.String() == s {
				return c, true
			}
		}
		return 0, false
	})
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// MarshalText renders the kind as its String() name.
func (k AxisKind) MarshalText() ([]byte, error) {
	if k == AxisCustom {
		return nil, fmt.Errorf("farm: custom axes cannot be serialized")
	}
	return []byte(k.String()), nil
}

// UnmarshalText parses an AxisKind name (custom is rejected — a file
// cannot carry the Apply function).
func (k *AxisKind) UnmarshalText(text []byte) error {
	v, err := enumFromText(text, "axis kind", func(s string) (AxisKind, bool) {
		for c, n := range axisKindNames {
			if n == s && c != AxisCustom {
				return c, true
			}
		}
		return 0, false
	})
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// MarshalText renders the kind as its String() name.
func (k SelectorKind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses a SelectorKind name.
func (k *SelectorKind) UnmarshalText(text []byte) error {
	v, err := enumFromText(text, "selector kind", func(s string) (SelectorKind, bool) {
		for c, n := range selectorKindNames {
			if n == s {
				return c, true
			}
		}
		return 0, false
	})
	if err != nil {
		return err
	}
	*k = v
	return nil
}
