package farm

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"diskpack/internal/obs"
)

// Crash-tolerant incremental persistence of completed sweep points,
// shared by cmd/disksim's -run-shard partial file and the coordinator's
// journal (internal/coord). The format is one JSON object per line: a
// header binding the journal to its (sweep, seed), then one
// ShardPointResult per completed point. Every append is synced before
// it returns, so a crash at any moment loses at most the point being
// written; recovery discards a torn final line and refuses a journal
// written for a different sweep or seed rather than resuming wrong
// numbers. Observability spans may ride along as {"Span":...}
// envelope lines (AppendSpan); recovery skips them — they are autopsy
// material, not results, and an old reader never confuses one for a
// point because ShardPointResult has no Span field.

// PointJournal is an open journal positioned for appending.
type PointJournal struct {
	path string
	f    *os.File
}

// journalHeader is the first line of every journal: the full grid
// declaration, so recovery can prove the journaled points belong to
// the sweep being resumed.
type journalHeader struct {
	Seed  int64
	Sweep Sweep
}

// OpenPointJournal opens (or creates) the journal at path for the given
// sweep and seed, returning the points previously journaled there —
// deduplicated, first write wins — so the caller can skip re-running
// them. A torn final line (a crash mid-append) is discarded and
// overwritten by the next append; a journal whose header names a
// different sweep or seed is refused. Callers validate the recovered
// points against their compiled grid (RunShard and the coordinator both
// do), so a journal from a diverged build still fails loudly.
func OpenPointJournal(path string, sweep Sweep, seed int64) (*PointJournal, []ShardPointResult, error) {
	if err := shardableSweep(sweep); err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	j := &PointJournal{path: path, f: f}
	points, end, err := j.recover(sweep, seed)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// Drop any torn tail so the next append starts on a line boundary.
	if err := f.Truncate(end); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(end, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	if end == 0 {
		header, err := json.Marshal(journalHeader{Seed: seed, Sweep: sweep})
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := j.appendLine(header); err != nil {
			f.Close()
			return nil, nil, err
		}
		// A fresh journal's directory entry needs its own fsync, or a
		// power loss could take the whole file — every synced append
		// with it — and void the one-point crash window.
		if err := SyncParentDir(path); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("farm: journal %s: syncing directory: %w", path, err)
		}
	}
	return j, points, nil
}

// SyncParentDir fsyncs the directory holding path, making its entry
// for a just-created or just-renamed file durable. Shared by the
// journal and by cmd/disksim's result-file rename, so the
// rename-durability rule lives in one place.
func SyncParentDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// recover reads the journal's complete lines, validating the header and
// collecting the journaled points. It returns the byte offset after the
// last complete line — everything beyond it is a torn append.
func (j *PointJournal) recover(sweep Sweep, seed int64) ([]ShardPointResult, int64, error) {
	data, err := os.ReadFile(j.path)
	if err != nil {
		return nil, 0, err
	}
	wantSweep, err := json.Marshal(sweep)
	if err != nil {
		return nil, 0, err
	}
	var points []ShardPointResult
	seen := make(map[int]bool)
	var end int64
	first := true
	for {
		nl := bytes.IndexByte(data[end:], '\n')
		if nl < 0 {
			break
		}
		line := data[end : end+int64(nl)]
		if first {
			var h journalHeader
			if err := json.Unmarshal(line, &h); err != nil {
				return nil, 0, fmt.Errorf("farm: journal %s header: %w — delete it to start over", j.path, err)
			}
			gotSweep, err := json.Marshal(h.Sweep)
			if err != nil {
				return nil, 0, err
			}
			if h.Seed != seed || !bytes.Equal(gotSweep, wantSweep) {
				return nil, 0, fmt.Errorf("farm: journal %s was written for a different sweep or seed — delete it to start over", j.path)
			}
			first = false
		} else {
			// Span envelopes are observability sidecars; results never
			// carry a Span key, so the probe cannot misfire.
			var env spanEnvelope
			if err := json.Unmarshal(line, &env); err == nil && env.Span != nil {
				end += int64(nl) + 1
				continue
			}
			var pr ShardPointResult
			if err := json.Unmarshal(line, &pr); err != nil {
				// A complete line that does not decode is corruption, not
				// a torn append (each append writes its newline last).
				return nil, 0, fmt.Errorf("farm: journal %s is corrupt: %w — delete it to start over", j.path, err)
			}
			if !seen[pr.Index] {
				seen[pr.Index] = true
				points = append(points, pr)
			}
		}
		end += int64(nl) + 1
	}
	return points, end, nil
}

// Append journals one completed point and syncs it to disk before
// returning, so an acknowledged point survives any subsequent crash.
func (j *PointJournal) Append(pr ShardPointResult) error {
	line, err := json.Marshal(pr)
	if err != nil {
		return err
	}
	return j.appendLine(line)
}

// spanEnvelope wraps a span so a journal line carrying one is
// unmistakable: point-result lines never have a Span key.
type spanEnvelope struct {
	Span *obs.Span
}

// AppendSpan journals one observability span as an envelope line,
// synced like any other append. Envelopes are skipped on recovery;
// they exist so a coordinator journal doubles as an autopsy of which
// worker ran which point when, next to the results themselves.
func (j *PointJournal) AppendSpan(sp obs.Span) error {
	line, err := json.Marshal(spanEnvelope{Span: &sp})
	if err != nil {
		return err
	}
	return j.appendLine(line)
}

// appendLine writes one line and syncs.
func (j *PointJournal) appendLine(line []byte) error {
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("farm: journal %s: %w", j.path, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("farm: journal %s: %w", j.path, err)
	}
	return nil
}

// Close closes the journal file. The file stays on disk — callers
// delete it (Remove) once its points are persisted elsewhere.
func (j *PointJournal) Close() error { return j.f.Close() }

// Remove deletes the journal file; call it after the final result has
// been durably written elsewhere.
func (j *PointJournal) Remove() error { return os.Remove(j.path) }
