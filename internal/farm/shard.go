package farm

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Sharded sweeps: the distributed layer over the grid engine. A Sweep's
// compiled point list is a set of independent pure functions of
// (spec, seed), so a grid too large for one machine splits cleanly:
// Shard partitions the points into self-contained JSON manifests,
// RunShard executes one manifest anywhere (reusing a prior partial
// result — the resume path), and Merge recombines the result files into
// the exact SweepResult a single-process RunSweep would have returned —
// byte-identical regardless of shard count, machine, or completion
// order. Custom axes carry Go functions and cannot be sharded, the same
// restriction persist.go puts on scenario files.

// ShardPoint names one grid point owned by a shard manifest.
type ShardPoint struct {
	// Index is the point's position in the compiled grid (Sweep.Points
	// order) — the key results are merged by.
	Index int
	// Label echoes the compiled point's label, an integrity check
	// against running a manifest on a diverged engine build.
	Label string
	// SeedOffset is added to the manifest seed when the point runs, so
	// a shard reproduces exactly the seeds the whole grid would use.
	SeedOffset int64 `json:",omitempty"`
}

// ShardManifest is one self-contained unit of a sharded sweep: the full
// grid declaration plus the subset of points this shard owns. A worker
// machine needs nothing else — no flags, no scenario registry entry.
type ShardManifest struct {
	// Index and Count place the shard in its family: Index in [0, Count).
	Index int
	Count int
	// Seed is the sweep seed every shard of the family must share.
	Seed int64
	// Sweep is the complete grid declaration (base spec, axes, selector).
	Sweep Sweep
	// Points is this shard's subset, ascending by Index. Round-robin
	// interleaving balances cost gradients along the fast axis; a shard
	// may be empty when Count exceeds the grid size.
	Points []ShardPoint
}

// Validate reports the first structural inconsistency. Agreement with
// the compiled grid is checked by RunShard, which compiles the points
// anyway.
func (m ShardManifest) Validate() error {
	if m.Count < 1 {
		return fmt.Errorf("farm: shard count %d must be >= 1", m.Count)
	}
	if m.Index < 0 || m.Index >= m.Count {
		return fmt.Errorf("farm: shard index %d outside [0,%d)", m.Index, m.Count)
	}
	if err := shardableSweep(m.Sweep); err != nil {
		return err
	}
	n := m.Sweep.NumPoints()
	last := -1
	for _, p := range m.Points {
		if p.Index <= last {
			return fmt.Errorf("farm: shard %d points out of order at index %d", m.Index, p.Index)
		}
		if p.Index >= n {
			return fmt.Errorf("farm: shard %d point index %d outside the %d-point grid", m.Index, p.Index, n)
		}
		last = p.Index
	}
	return nil
}

// shardableSweep rejects sweeps that cannot round-trip through a shard
// family: custom axes carry Go functions JSON cannot represent.
func shardableSweep(s Sweep) error {
	for _, a := range s.Axes {
		if a.Kind == AxisCustom {
			return fmt.Errorf("farm: custom axes cannot be sharded (the Apply function does not serialize)")
		}
	}
	return s.Validate()
}

// Shardable reports whether the sweep can leave the process: valid and
// free of custom axes, whose Apply functions do not serialize. Shard,
// OpenPointJournal, and the coordinator (internal/coord) all enforce
// this one rule.
func Shardable(s Sweep) error { return shardableSweep(s) }

// Shard partitions the sweep's compiled grid into n self-contained
// manifests, round-robin: point i goes to shard i mod n, so systematic
// cost gradients along an axis spread evenly across shards. Every
// manifest carries the whole sweep declaration; the union of the
// manifests' points is exactly the grid.
func Shard(sweep Sweep, seed int64, n int) ([]ShardManifest, error) {
	if n < 1 {
		return nil, fmt.Errorf("farm: shard count %d must be >= 1", n)
	}
	if err := shardableSweep(sweep); err != nil {
		return nil, err
	}
	points, err := sweep.Points()
	if err != nil {
		return nil, err
	}
	shards := make([]ShardManifest, n)
	for i := range shards {
		shards[i] = ShardManifest{Index: i, Count: n, Seed: seed, Sweep: sweep}
	}
	for i := range points {
		s := &shards[i%n]
		s.Points = append(s.Points, ShardPoint{
			Index:      i,
			Label:      points[i].Label,
			SeedOffset: points[i].SeedOffset,
		})
	}
	return shards, nil
}

// ShardPointResult is one completed grid point: Metrics for simulated
// sweeps, Alloc for plan-only ones.
type ShardPointResult struct {
	Index   int
	Label   string
	Metrics *Metrics    `json:",omitempty"`
	Alloc   *Allocation `json:",omitempty"`
}

// ShardResult is the output of running one shard. It repeats the
// manifest's identity and sweep declaration so a merge needs only the
// result files — nothing from the planning machine.
type ShardResult struct {
	Index  int
	Count  int
	Seed   int64
	Sweep  Sweep
	Points []ShardPointResult
}

// Validate reports the first structural inconsistency. Points without a
// payload are tolerated — a partial file is exactly what the resume
// path consumes — but Merge requires every point filled.
func (r ShardResult) Validate() error {
	if r.Count < 1 {
		return fmt.Errorf("farm: shard count %d must be >= 1", r.Count)
	}
	if r.Index < 0 || r.Index >= r.Count {
		return fmt.Errorf("farm: shard index %d outside [0,%d)", r.Index, r.Count)
	}
	if err := shardableSweep(r.Sweep); err != nil {
		return err
	}
	n := r.Sweep.NumPoints()
	last := -1
	for _, p := range r.Points {
		if p.Index <= last {
			return fmt.Errorf("farm: shard %d results out of order at index %d", r.Index, p.Index)
		}
		if p.Index >= n {
			return fmt.Errorf("farm: shard %d result index %d outside the %d-point grid", r.Index, p.Index, n)
		}
		if p.Metrics != nil && p.Alloc != nil {
			return fmt.Errorf("farm: shard %d result %d carries both metrics and an allocation", r.Index, p.Index)
		}
		last = p.Index
	}
	return nil
}

// complete reports whether the point carries the payload the sweep's
// mode calls for.
func (p ShardPointResult) complete(planOnly bool) bool {
	if planOnly {
		return p.Alloc != nil
	}
	return p.Metrics != nil
}

// RunShard executes the manifest's points with up to workers goroutines
// (0 = GOMAXPROCS), exactly as RunSweep would have run them: the same
// derived spec, the same seed + SeedOffset. prior, when non-nil, is a
// previous (possibly partial) result of the same shard; its completed
// points are reused instead of re-run, which is how an interrupted
// shard resumes. The manifest is cross-checked against the locally
// compiled grid so a stale manifest fails loudly rather than merging
// silently wrong numbers.
func RunShard(m ShardManifest, prior *ShardResult, workers int) (*ShardResult, error) {
	return RunShardStream(context.Background(), m, prior, workers, nil)
}

// RunShardStream is RunShard with incremental delivery: sink, when
// non-nil, receives each newly computed point the moment it completes
// (calls are serialized; reused prior points are not re-emitted), which
// is how cmd/disksim journals a shard's progress so a crash loses at
// most one point. Cancelling the context stops new points from
// starting — in-flight points finish and reach the sink first — and
// returns ctx.Err(). A sink error aborts the run.
func RunShardStream(ctx context.Context, m ShardManifest, prior *ShardResult, workers int, sink func(ShardPointResult) error) (*ShardResult, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	c, err := Compile(m.Sweep, m.Seed)
	if err != nil {
		return nil, err
	}
	for _, sp := range m.Points {
		if err := c.Check(sp); err != nil {
			return nil, fmt.Errorf("farm: shard %d/%d: %w", m.Index, m.Count, err)
		}
	}
	reuse := make(map[int]ShardPointResult)
	if prior != nil {
		if err := prior.Validate(); err != nil {
			return nil, fmt.Errorf("farm: prior shard result: %w", err)
		}
		if prior.Index != m.Index || prior.Count != m.Count || prior.Seed != m.Seed {
			return nil, fmt.Errorf("farm: prior result is shard %d/%d seed %d, manifest is shard %d/%d seed %d",
				prior.Index, prior.Count, prior.Seed, m.Index, m.Count, m.Seed)
		}
		// Identity fields and labels can all collide across edits of the
		// base spec (labels encode only the axis values), so the whole
		// sweep declaration must match before any point is reused.
		mSweep, err := json.Marshal(m.Sweep)
		if err != nil {
			return nil, fmt.Errorf("farm: shard %d/%d: %w", m.Index, m.Count, err)
		}
		pSweep, err := json.Marshal(prior.Sweep)
		if err != nil {
			return nil, fmt.Errorf("farm: prior shard result: %w", err)
		}
		if !bytes.Equal(mSweep, pSweep) {
			return nil, fmt.Errorf("farm: prior result was computed from a different sweep than the manifest — delete it to start over")
		}
		for _, pr := range prior.Points {
			if !pr.complete(m.Sweep.PlanOnly) {
				continue
			}
			if pr.Index < c.NumPoints() && c.Label(pr.Index) != pr.Label {
				return nil, fmt.Errorf("farm: prior result point %d is %q, grid says %q — result from a different grid?",
					pr.Index, pr.Label, c.Label(pr.Index))
			}
			reuse[pr.Index] = pr
		}
	}
	out := &ShardResult{
		Index:  m.Index,
		Count:  m.Count,
		Seed:   m.Seed,
		Sweep:  m.Sweep,
		Points: make([]ShardPointResult, len(m.Points)),
	}
	var sinkMu sync.Mutex
	err = parallelFor(ctx, len(m.Points), poolSize(workers), func(i int) error {
		sp := m.Points[i]
		if pr, ok := reuse[sp.Index]; ok {
			out.Points[i] = pr
			return nil
		}
		pr, err := c.RunPoint(sp.Index)
		if err != nil {
			return fmt.Errorf("farm: shard %d/%d point %s: %w", m.Index, m.Count, sp.Label, err)
		}
		out.Points[i] = pr
		if sink != nil {
			sinkMu.Lock()
			defer sinkMu.Unlock()
			if err := sink(pr); err != nil {
				return fmt.Errorf("farm: shard %d/%d streaming point %s: %w", m.Index, m.Count, sp.Label, err)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Reused counts the manifest's points a prior result would satisfy —
// what RunShard will skip on resume.
func (m ShardManifest) Reused(prior *ShardResult) int {
	if prior == nil {
		return 0
	}
	owned := make(map[int]bool, len(m.Points))
	for _, p := range m.Points {
		owned[p.Index] = true
	}
	n := 0
	for _, pr := range prior.Points {
		if owned[pr.Index] && pr.complete(m.Sweep.PlanOnly) {
			n++
		}
	}
	return n
}

// Merge recombines shard results — in any order, but all from one
// shard family (same sweep, seed, and count) and together covering the
// grid exactly once — into the SweepResult a single-process
// RunSweep(sweep, seed, workers) would have produced, byte for byte:
// points are recompiled from the shared sweep declaration, results
// slotted in by index, and the selector applied to the completed grid.
func Merge(results []ShardResult) (*SweepResult, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("farm: merge of zero shard results")
	}
	ref := &results[0]
	refSweep, err := json.Marshal(ref.Sweep)
	if err != nil {
		return nil, fmt.Errorf("farm: merge: %w", err)
	}
	for i := range results {
		r := &results[i]
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("farm: merge input %d: %w", i, err)
		}
		if r.Seed != ref.Seed || r.Count != ref.Count {
			return nil, fmt.Errorf("farm: merge input %d is shard %d/%d seed %d, input 0 is shard %d/%d seed %d — results from different runs?",
				i, r.Index, r.Count, r.Seed, ref.Index, ref.Count, ref.Seed)
		}
		if i > 0 {
			sw, err := json.Marshal(r.Sweep)
			if err != nil {
				return nil, fmt.Errorf("farm: merge input %d: %w", i, err)
			}
			if string(sw) != string(refSweep) {
				return nil, fmt.Errorf("farm: merge input %d declares a different sweep than input 0", i)
			}
		}
	}
	c, err := Compile(ref.Sweep, ref.Seed)
	if err != nil {
		return nil, err
	}
	// Validate per input before flattening: Assemble would catch every
	// defect too, but could not say which result file carried it.
	flat := make([]ShardPointResult, 0, c.NumPoints())
	seen := make(map[int]int) // point index -> merge input that contributed it
	for i := range results {
		for _, pr := range results[i].Points {
			if err := c.CheckResult(pr); err != nil {
				return nil, fmt.Errorf("farm: merge input %d: %w", i, err)
			}
			if prev, dup := seen[pr.Index]; dup {
				return nil, fmt.Errorf("farm: point %d (%s) appears in both merge inputs %d and %d", pr.Index, pr.Label, prev, i)
			}
			seen[pr.Index] = i
			flat = append(flat, pr)
		}
	}
	return c.Assemble(flat)
}

// EncodeShard writes a manifest as indented JSON.
func EncodeShard(w io.Writer, m ShardManifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// DecodeShard reads and validates a shard manifest.
func DecodeShard(r io.Reader) (*ShardManifest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var m ShardManifest
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("farm: decoding shard manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// EncodeShardResult writes a shard result as indented JSON.
func EncodeShardResult(w io.Writer, r ShardResult) error {
	if err := r.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// DecodeShardResult reads and validates a shard result file (possibly
// partial — the resume input).
func DecodeShardResult(r io.Reader) (*ShardResult, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sr ShardResult
	if err := dec.Decode(&sr); err != nil {
		return nil, fmt.Errorf("farm: decoding shard result: %w", err)
	}
	if err := sr.Validate(); err != nil {
		return nil, err
	}
	return &sr, nil
}
