package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	env := NewEnv()
	if env.Now() != 0 {
		t.Fatalf("Now()=%v want 0", env.Now())
	}
	if env.Pending() != 0 {
		t.Fatalf("Pending()=%d want 0", env.Pending())
	}
}

func TestScheduleOrdering(t *testing.T) {
	env := NewEnv()
	var order []int
	env.Schedule(3.0, func() { order = append(order, 3) })
	env.Schedule(1.0, func() { order = append(order, 1) })
	env.Schedule(2.0, func() { order = append(order, 2) })
	env.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order=%v want %v", order, want)
		}
	}
	if env.Now() != 3.0 {
		t.Errorf("final clock=%v want 3.0", env.Now())
	}
}

func TestFIFOTieBreaking(t *testing.T) {
	env := NewEnv()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		env.Schedule(1.0, func() { order = append(order, i) })
	}
	env.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	env := NewEnv()
	var times []Time
	env.Schedule(1.0, func() {
		times = append(times, env.Now())
		env.Schedule(0.5, func() {
			times = append(times, env.Now())
		})
	})
	env.Run()
	if len(times) != 2 || times[0] != 1.0 || times[1] != 1.5 {
		t.Fatalf("times=%v want [1 1.5]", times)
	}
}

func TestZeroDelayFiresAtSameTime(t *testing.T) {
	env := NewEnv()
	fired := false
	env.Schedule(2.0, func() {
		env.Schedule(0, func() {
			if env.Now() != 2.0 {
				t.Errorf("zero-delay event at t=%v want 2.0", env.Now())
			}
			fired = true
		})
	})
	env.Run()
	if !fired {
		t.Fatal("zero-delay event did not fire")
	}
}

func TestCancel(t *testing.T) {
	env := NewEnv()
	fired := false
	ev := env.Schedule(1.0, func() { fired = true })
	ev.Cancel()
	env.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Canceled() || ev.Fired() {
		t.Errorf("Canceled()=%v Fired()=%v want true,false", ev.Canceled(), ev.Fired())
	}
}

func TestCancelFromCallback(t *testing.T) {
	env := NewEnv()
	fired := false
	var target Event
	target = env.Schedule(2.0, func() { fired = true })
	env.Schedule(1.0, func() { target.Cancel() })
	env.Run()
	if fired {
		t.Fatal("event cancelled at t=1 still fired at t=2")
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	env := NewEnv()
	ev := env.Schedule(1.0, func() {})
	env.Run()
	if !ev.Fired() {
		t.Fatal("event did not fire")
	}
	ev.Cancel() // must not panic or change Fired
	if !ev.Fired() {
		t.Fatal("Fired() changed after post-hoc Cancel")
	}
}

func TestRunUntil(t *testing.T) {
	env := NewEnv()
	var fired []Time
	for _, d := range []Time{1, 2, 3, 4, 5} {
		d := d
		env.Schedule(d, func() { fired = append(fired, d) })
	}
	env.RunUntil(3.0)
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3 (<=3.0)", len(fired))
	}
	if env.Now() != 3.0 {
		t.Fatalf("clock=%v want exactly 3.0", env.Now())
	}
	if env.Pending() != 2 {
		t.Fatalf("pending=%d want 2", env.Pending())
	}
	env.Run()
	if len(fired) != 5 {
		t.Fatalf("after Run fired=%d want 5", len(fired))
	}
}

func TestRunUntilAdvancesClockPastLastEvent(t *testing.T) {
	env := NewEnv()
	env.Schedule(1.0, func() {})
	env.RunUntil(100.0)
	if env.Now() != 100.0 {
		t.Fatalf("clock=%v want 100.0", env.Now())
	}
}

func TestAtAbsoluteTime(t *testing.T) {
	env := NewEnv()
	var got Time = -1
	env.At(7.25, func() { got = env.Now() })
	env.Run()
	if got != 7.25 {
		t.Fatalf("event fired at %v want 7.25", got)
	}
}

func TestScheduleNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(-1) did not panic")
		}
	}()
	NewEnv().Schedule(-1, func() {})
}

func TestAtPastPanics(t *testing.T) {
	env := NewEnv()
	env.Schedule(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("At(past) did not panic")
			}
		}()
		env.At(1, func() {})
	})
	env.Run()
}

func TestStepReturnsFalseWhenDrained(t *testing.T) {
	env := NewEnv()
	env.Schedule(1, func() {})
	if !env.Step() {
		t.Fatal("Step returned false with a pending event")
	}
	if env.Step() {
		t.Fatal("Step returned true on empty queue")
	}
}

func TestStepsCounterSkipsCancelled(t *testing.T) {
	env := NewEnv()
	env.Schedule(1, func() {})
	ev := env.Schedule(2, func() {})
	ev.Cancel()
	env.Schedule(3, func() {})
	env.Run()
	if env.Steps() != 2 {
		t.Fatalf("Steps()=%d want 2", env.Steps())
	}
}

// Property: any batch of events fires in nondecreasing time order and
// the clock never moves backwards.
func TestEventOrderProperty(t *testing.T) {
	prop := func(delaysRaw []uint16) bool {
		env := NewEnv()
		var fired []Time
		for _, d := range delaysRaw {
			env.Schedule(Time(d)/16.0, func() { fired = append(fired, env.Now()) })
		}
		env.Run()
		if len(fired) != len(delaysRaw) {
			return false
		}
		if !sort.Float64sAreSorted(fired) {
			return false
		}
		// Every delay must be represented.
		want := make([]Time, len(delaysRaw))
		for i, d := range delaysRaw {
			want[i] = Time(d) / 16.0
		}
		sort.Float64s(want)
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: cancelling a random subset prevents exactly that subset from
// firing.
func TestCancelSubsetProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		env := NewEnv()
		firedCount := 0
		cancelled := 0
		events := make([]Event, int(n)+1)
		for i := range events {
			events[i] = env.Schedule(rng.Float64()*100, func() { firedCount++ })
		}
		for i := range events {
			if rng.Intn(2) == 0 {
				events[i].Cancel()
				cancelled++
			}
		}
		env.Run()
		return firedCount == len(events)-cancelled
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []int {
		env := NewEnv()
		rng := rand.New(rand.NewSource(42))
		var trace []int
		for i := 0; i < 200; i++ {
			i := i
			env.Schedule(rng.Float64()*10, func() {
				trace = append(trace, i)
				if rng.Intn(4) == 0 {
					j := i + 1000
					env.Schedule(rng.Float64(), func() { trace = append(trace, j) })
				}
			})
		}
		env.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestResourceImmediateAcquire(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 2)
	got := 0
	r.Acquire(func() { got++ })
	r.Acquire(func() { got++ })
	if got != 2 || r.InUse() != 2 {
		t.Fatalf("got=%d inUse=%d want 2,2", got, r.InUse())
	}
}

func TestResourceFIFOWaiters(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 1)
	var order []int
	r.Acquire(func() {})
	for i := 1; i <= 3; i++ {
		i := i
		r.Acquire(func() { order = append(order, i) })
	}
	if r.QueueLen() != 3 {
		t.Fatalf("queue=%d want 3", r.QueueLen())
	}
	r.Release() // waiter 1 acquires
	r.Release() // waiter 2
	r.Release() // waiter 3
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order=%v want %v", order, want)
		}
	}
	if r.PeakQueueLen() != 3 {
		t.Errorf("peak queue=%d want 3", r.PeakQueueLen())
	}
}

func TestResourceReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release without Acquire did not panic")
		}
	}()
	NewResource(NewEnv(), 1).Release()
}

func TestResourceZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 did not panic")
		}
	}()
	NewResource(NewEnv(), 0)
}

func BenchmarkEventLoop(b *testing.B) {
	env := NewEnv()
	var step func()
	n := 0
	step = func() {
		n++
		if n < b.N {
			env.Schedule(1.0, step)
		}
	}
	env.Schedule(1.0, step)
	b.ReportAllocs()
	b.ResetTimer()
	env.Run()
}

func BenchmarkEventQueueChurn(b *testing.B) {
	env := NewEnv()
	rng := rand.New(rand.NewSource(3))
	// Keep ~1000 events pending while churning through b.N.
	for i := 0; i < 1000; i++ {
		env.Schedule(rng.Float64()*1000, func() {})
	}
	fired := 0
	b.ReportAllocs()
	b.ResetTimer()
	for fired < b.N {
		if !env.Step() {
			break
		}
		fired++
		env.Schedule(rng.Float64()*1000, func() {})
	}
}
