package sim

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// traceRun drives a randomized workload — schedules with a wide spread
// of timestamps (ties included), nested scheduling from callbacks, and
// random cancellation — against the given Env and returns the fire
// order. Used to compare the calendar queue against the legacy heap.
func traceRun(env *Env, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	var order []int
	id := 0
	var handles []Event
	var schedule func(depth int)
	schedule = func(depth int) {
		i := id
		id++
		// Mix of scales so events land in bottom, rungs, and top:
		// sub-second, minutes, and far-future times, with frequent
		// exact ties via quantization.
		var t Time
		switch rng.Intn(4) {
		case 0:
			t = Time(rng.Intn(16)) / 4.0
		case 1:
			t = rng.Float64() * 100
		case 2:
			t = 1000 + rng.Float64()*1e4
		default:
			t = Time(rng.Intn(8)) * 1e6
		}
		h := env.AtArg(env.Now()+t, func(a any) {
			order = append(order, a.(int))
			if depth < 3 && rng.Intn(3) == 0 {
				schedule(depth + 1)
			}
			if len(handles) > 0 && rng.Intn(4) == 0 {
				handles[rng.Intn(len(handles))].Cancel()
			}
		}, i)
		handles = append(handles, h)
	}
	for j := 0; j < 300; j++ {
		schedule(0)
	}
	// Exercise the RunUntil deadline path too, then drain.
	env.RunUntil(50)
	env.RunUntil(5000)
	env.Run()
	return order
}

// The calendar queue must reproduce the legacy heap's fire order
// exactly — same events, same order — under scheduling, ties, nested
// scheduling, and cancellation.
func TestCalendarMatchesLegacyHeapProperty(t *testing.T) {
	prop := func(seed int64) bool {
		a := traceRun(NewEnv(), seed)
		b := traceRun(NewLegacyHeapEnv(), seed)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Same-time events must fire in scheduling order even when they enter
// the queue in different regions (heap now, rung after a drain, top
// before a reseed).
func TestCrossRegionTieBreaking(t *testing.T) {
	env := NewEnv()
	var order []int
	// Force a reseed: drain an initial event so rungs get dealt from a
	// top spanning [100, 2000].
	env.At(1, func() {})
	for i := 0; i < 50; i++ {
		t50 := Time(100 + (i%5)*400) // five distinct times, ten-way ties
		env.AtArg(t50, func(a any) { order = append(order, a.(int)) }, i)
	}
	env.Run()
	// Events must come out grouped by time, and FIFO within each time.
	seen := map[int]bool{}
	for k := 0; k+1 < len(order); k++ {
		a, b := order[k], order[k+1]
		seen[a] = true
		if a%5 == b%5 && a > b {
			t.Fatalf("tie broken out of FIFO order: %d before %d (order=%v)", a, b, order)
		}
	}
	if len(order) != 50 {
		t.Fatalf("fired %d events, want 50", len(order))
	}
}

func TestForeverEventFires(t *testing.T) {
	env := NewEnv()
	var got []Time
	env.At(Forever, func() { got = append(got, env.Now()) })
	env.At(1, func() { got = append(got, env.Now()) })
	env.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != Forever {
		t.Fatalf("got=%v want [1 Forever]", got)
	}
}

func TestInfinityEventFires(t *testing.T) {
	env := NewEnv()
	fired := false
	env.At(math.Inf(1), func() { fired = true })
	env.At(1, func() {})
	env.Run()
	if !fired {
		t.Fatal("event at +Inf never fired")
	}
}

// A handle held across free-list recycling must keep reporting its own
// event's state and must never cancel the record's new occupant.
func TestHandleSurvivesRecycling(t *testing.T) {
	env := NewEnv()
	aFired, bFired := false, false
	a := env.Schedule(1, func() { aFired = true })
	env.Run()
	if !aFired || !a.Fired() || a.Canceled() {
		t.Fatalf("a: fired=%v Fired()=%v Canceled()=%v", aFired, a.Fired(), a.Canceled())
	}
	// b reuses a's record (single-event pool churn guarantees it).
	b := env.Schedule(1, func() { bFired = true })
	if b.n != a.n {
		t.Fatal("test setup: b did not recycle a's record")
	}
	a.Cancel() // stale handle: must NOT cancel b
	if a.Canceled() {
		t.Fatal("stale Cancel marked the old handle cancelled")
	}
	if !a.Fired() {
		t.Fatal("stale Cancel changed Fired() of the old handle")
	}
	if a.When() != 1 {
		t.Fatalf("When()=%v changed across recycling", a.When())
	}
	env.Run()
	if !bFired {
		t.Fatal("stale handle's Cancel killed the record's new occupant")
	}
	if !b.Fired() {
		t.Fatal("b.Fired()=false after firing")
	}
}

// Property form of the above: under random fire/cancel/recycle churn,
// every handle's Fired/Canceled/When matches ground truth tracked
// outside the kernel, and stale Cancels never leak across recycling.
func TestHandleGenerationProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env := NewEnv()
		type tracked struct {
			h         Event
			at        Time
			fired     bool // ground truth, set by the callback
			cancelled bool // ground truth, set when we call Cancel pre-fire
		}
		var live []*tracked
		ok := true
		for round := 0; round < 200; round++ {
			switch rng.Intn(3) {
			case 0, 1: // schedule
				tr := &tracked{at: env.Now() + rng.Float64()*10}
				tr.h = env.AtArg(tr.at, func(a any) { a.(*tracked).fired = true }, tr)
				live = append(live, tr)
			case 2: // cancel a random handle, possibly stale
				if len(live) == 0 {
					continue
				}
				tr := live[rng.Intn(len(live))]
				wasFired := tr.fired
				tr.h.Cancel()
				if !wasFired && !tr.cancelled {
					tr.cancelled = true
				}
			}
			// Let time advance sometimes so records churn through the pool.
			if rng.Intn(4) == 0 {
				env.RunUntil(env.Now() + rng.Float64()*5)
			}
			for _, tr := range live {
				if tr.h.When() != tr.at {
					ok = false
				}
				if tr.h.Canceled() != tr.cancelled {
					ok = false
				}
				if tr.h.Fired() != (tr.fired && !tr.cancelled) {
					ok = false
				}
				if tr.fired && tr.cancelled {
					ok = false // a cancelled event must never fire
				}
			}
			if !ok {
				return false
			}
		}
		env.Run()
		for _, tr := range live {
			if tr.fired == tr.cancelled { // exactly one must hold after drain
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// nodesOwned counts every record the Env has ever carved from its
// slabs that is currently tracked (free or queued). Bounded growth
// under churn is the point of eager cancel reclamation.
func (env *Env) nodesOwned() int { return len(env.free) + env.q.size + len(env.slab) }

// Spin-down timer churn: each arrival cancels the pending idle timer
// and schedules a new one. With lazy deletion the queue grew by one
// dead record per cycle; with eager reclamation the pool must stay at
// O(1) records no matter how many cycles run.
func TestCancelChurnKeepsQueueBounded(t *testing.T) {
	env := NewEnv()
	var timer Event
	for i := 0; i < 100_000; i++ {
		timer.Cancel()
		timer = env.Schedule(53.3, func() {}) // idle-timeout style far timer
		env.RunUntil(env.Now() + 1)           // arrival beats the timer
		if p := env.Pending(); p != 1 {
			t.Fatalf("cycle %d: Pending()=%d want 1 (cancelled events must not linger)", i, p)
		}
	}
	if owned := env.nodesOwned(); owned > 2*slabSize {
		t.Fatalf("pool grew to %d records under cancel churn, want <= %d", owned, 2*slabSize)
	}
}

// Steady-state Schedule+Step must not allocate: records come from the
// free list and ScheduleArg boxes no closures.
func TestScheduleStepZeroAlloc(t *testing.T) {
	env := NewEnv()
	var tick func(any)
	tick = func(any) { env.ScheduleArg(1.0, tick, nil) }
	env.ScheduleArg(1.0, tick, nil)
	for i := 0; i < 100; i++ { // warm the pool and the rung slices
		env.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() { env.Step() })
	if allocs != 0 {
		t.Fatalf("steady-state Step allocates %v/op, want 0", allocs)
	}
	cancelAllocs := testing.AllocsPerRun(1000, func() {
		ev := env.ScheduleArg(10, tick, nil)
		ev.Cancel()
	})
	if cancelAllocs != 0 {
		t.Fatalf("steady-state ScheduleArg+Cancel allocates %v/op, want 0", cancelAllocs)
	}
}

// Chained dispatch of a time-sorted stream through reserved FIFO
// positions must fire in exactly the order the same stream gets when
// scheduled upfront — including ties against events armed mid-run,
// which is where a naive chain diverges (a late-scheduled stream event
// would lose ties it used to win). The storage layer's arrival chain
// rests on this.
func TestReservedSeqChainingMatchesUpfront(t *testing.T) {
	// Integer-grid stream times with repeats, plus a "timer" armed by
	// every stream event at +3 — colliding exactly with later stream
	// times (2+3=5, 5+3=8) to force cross-producer ties.
	times := []Time{1, 2, 2, 5, 5, 8, 8, 8, 11}
	run := func(chained bool) []string {
		env := NewEnv()
		var order []string
		timer := func(a any) { order = append(order, "timer@"+fmt.Sprint(env.Now())) }
		var handle func(i int)
		handle = func(i int) {
			order = append(order, fmt.Sprintf("stream%d@%v", i, env.Now()))
			env.ScheduleArg(3, timer, nil)
		}
		if chained {
			base := env.ReserveSeqs(len(times))
			var chain func(any)
			next := 0
			chain = func(any) {
				i := next
				next++
				if next < len(times) {
					env.AtArgSeq(times[next], chain, nil, base+uint64(next))
				}
				handle(i)
			}
			env.AtArgSeq(times[0], chain, nil, base)
		} else {
			for i, at := range times {
				i := i
				env.AtArg(at, func(any) { handle(i) }, nil)
			}
		}
		env.Run()
		return order
	}
	upfront, chained := run(false), run(true)
	if !reflect.DeepEqual(upfront, chained) {
		t.Fatalf("chained dispatch reordered the run\nupfront: %v\nchained: %v", upfront, chained)
	}
}

// BenchmarkEnvScheduleCancel measures the timer-churn path a disk's
// idle timeout exercises: schedule a far-future event, cancel it, and
// fire one near event per cycle.
func BenchmarkEnvScheduleCancel(b *testing.B) {
	env := NewEnv()
	nop := func(any) {}
	var tick func(any)
	tick = func(any) { env.ScheduleArg(1.0, tick, nil) }
	env.ScheduleArg(1.0, tick, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := env.ScheduleArg(53.3, nop, nil)
		ev.Cancel()
		env.Step()
	}
}
