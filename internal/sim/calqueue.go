package sim

import "math"

// calQueue is the pending-event structure behind Env: a single-level
// ladder / calendar queue specialized for the timer populations a disk
// farm generates (many near-uniform arrival and spin timers, a thin
// tail of far-future events).
//
// Layout. Events live in one of three regions ordered by time:
//
//	bottom  — a small binary min-heap on (at, seq) holding every event
//	          with at < bottomMax; pop and peek read its root.
//	rungs   — numRungs append-only buckets of *unsorted* events
//	          covering [rungBase, rungEnd) at fixed width rungW. A
//	          bucket is sorted at most once, by being dumped into the
//	          bottom heap when the clock reaches it.
//	top     — one unsorted slice for everything at or past rungEnd.
//
// Push is O(1) for rung and top placements and O(log b) for the (small)
// bottom heap; pop is O(log b) amortized plus each event's single
// bucket→bottom move. When bottom and rungs drain, the queue re-seeds:
// it measures the top's span, picks a fresh bucket width, and deals the
// top into new rungs — so the width adapts to whatever timer
// distribution the simulation is currently generating. Against the
// former global binary heap this removes the O(log n) scatter-gather on
// every operation: the heap only ever holds events of the current
// bucket, not the whole pending set.
//
// Ordering. The pop order is exactly the global (at, seq) order the
// binary heap produced, which is what the simulator's byte-identity
// guarantee rests on: region boundaries are time partitions (bottom <
// bucket k < bucket k+1 < top holds as at-ranges), equal-time events
// always land in the same region, and the bottom heap breaks ties by
// seq. The legacy kernel (NewLegacyHeapEnv) pins bottomMax to +Inf,
// collapsing the structure to the plain binary heap the property tests
// compare against.
//
// Cancellation is eager: remove() unlinks an event from whichever
// region holds it in O(1) (rungs, top: swap-with-last) or O(log b)
// (bottom), so cancelled events occupy no queue slot — a spin-down
// timer cancelled by an arrival is reclaimed at cancel time, keeping
// the queue length equal to the live event count under timer churn.
type calQueue struct {
	bottom    []*node
	bottomMax Time // exclusive bound of the bottom region; +Inf = legacy heap mode

	rungs    [numRungs][]*node
	rungCnt  int  // events across all rungs
	cur      int  // next rung to drain
	rungBase Time // start of rung 0's range, fixed for the epoch
	rungW    Time // bucket width; 0 = rungs inactive (before first re-seed)

	top  []*node
	size int
}

// numRungs is the bucket count dealt at every re-seed. 256 keeps the
// per-Env footprint at a few KiB of slice headers while making the
// expected bucket population (pending events / numRungs) small enough
// that the bottom heap stays cache-resident.
const numRungs = 256

// where values: a node is in the bottom heap, a rung (where = rung
// index), the top, or nowhere (free / fired / cancelled).
const (
	whereNone   int32 = -1
	whereBottom int32 = -2
	whereTop    int32 = -3
)

// bucketStart returns the inclusive lower bound of rung j. Every
// boundary the queue ever compares against is computed through this one
// expression — never through an accumulated running sum — so a given
// timestamp maps to the same bucket no matter when in the epoch it is
// pushed. (An accumulated rungStart drifts: two events with the *same*
// timestamp pushed at different drain positions could land in different
// buckets, and the earlier bucket would fire first, breaking the seq
// tie-break.)
func (q *calQueue) bucketStart(j int) Time { return q.rungBase + Time(j)*q.rungW }

// rungEnd returns the exclusive bound of the rung region.
func (q *calQueue) rungEnd() Time { return q.bucketStart(numRungs) }

// push files a node into the region owning its timestamp.
func (q *calQueue) push(n *node) {
	q.size++
	switch {
	case n.at < q.bottomMax:
		q.bottomPush(n)
	case q.rungW > 0 && n.at < q.rungEnd():
		q.rungPush(n)
	default:
		n.where = whereTop
		n.slot = int32(len(q.top))
		q.top = append(q.top, n)
	}
}

// rungPush places a node into the bucket covering n.at. Callers
// guarantee bottomMax <= n.at < rungEnd().
func (q *calQueue) rungPush(n *node) {
	j := int((n.at - q.rungBase) / q.rungW)
	// The float division only approximates the bucket index, and both
	// error directions break ordering: rounding *up* puts the event in
	// a bucket that drains after its timestamp; rounding *down* dumps
	// it into the bottom heap a bucket early with at >= bottomMax,
	// where it would fire ahead of a smaller-timestamp event still
	// waiting in its rung. Bracket j so that, in the exact float
	// arithmetic bucketStart uses, start(j) <= at < start(j+1) (the
	// upper bound degenerates to rungEnd for the last bucket, which
	// push already checked).
	if j > numRungs-1 {
		j = numRungs - 1
	}
	if j < q.cur {
		j = q.cur // at >= bottomMax = start(cur), so cur is a valid home
	}
	for j > q.cur && q.bucketStart(j) > n.at {
		j--
	}
	for j < numRungs-1 && q.bucketStart(j+1) <= n.at {
		j++
	}
	n.where = int32(j)
	n.slot = int32(len(q.rungs[j]))
	q.rungs[j] = append(q.rungs[j], n)
	q.rungCnt++
}

// ensure makes the bottom heap non-empty, draining rungs and
// re-seeding from the top as needed. It returns false when the queue
// is empty.
func (q *calQueue) ensure() bool {
	for len(q.bottom) == 0 {
		switch {
		case q.rungCnt > 0:
			q.drainNextRung()
		case len(q.top) > 0:
			q.reseed()
		default:
			return false
		}
	}
	return true
}

// drainNextRung advances to the next non-empty bucket and dumps it
// into the bottom heap, moving bottomMax to the bucket's end.
func (q *calQueue) drainNextRung() {
	for len(q.rungs[q.cur]) == 0 {
		q.cur++
	}
	b := q.rungs[q.cur]
	q.rungs[q.cur] = b[:0] // keep the bucket's capacity for later epochs
	q.rungCnt -= len(b)
	q.cur++
	q.bottomMax = q.bucketStart(q.cur)
	for i, n := range b {
		b[i] = nil // don't pin drained nodes through the retained array
		q.bottomPush(n)
	}
}

// reseed deals the unsorted top into a fresh set of rungs sized to the
// top's observed span — the width-adaptation step of the calendar
// queue. Degenerate spans (all equal, or non-finite timestamps) fall
// back to dumping the top straight into the bottom heap, which is
// always correct.
func (q *calQueue) reseed() {
	tmin, tmax := q.top[0].at, q.top[0].at
	for _, n := range q.top[1:] {
		if n.at < tmin {
			tmin = n.at
		}
		if n.at > tmax {
			tmax = n.at
		}
	}
	batch := q.top
	q.top = q.top[:0]
	w := (tmax - tmin) / Time(numRungs-1)
	if w <= 0 || math.IsInf(w, 1) || math.IsNaN(w) {
		// Zero span or unrepresentable width: no bucketing possible.
		// Disable rung routing (stale epoch boundaries must not claim
		// new pushes) and dump the batch into the bottom heap. The new
		// bound must be *strictly* above tmax — bottomMax is exclusive,
		// and the batch includes events at tmax, so a later push at
		// exactly tmax has to reach the bottom heap where seq breaks
		// the tie (reserved FIFO positions make smaller-seq-pushed-later
		// a real case). Nextafter is the tightest such bound; it maps
		// +Inf to +Inf, pinning non-finite timestamps to pure heap mode.
		q.rungW = 0
		q.bottomMax = math.Nextafter(tmax, math.Inf(1))
		for _, n := range batch {
			q.bottomPush(n)
		}
		return
	}
	q.cur = 0
	q.rungBase = tmin
	q.rungW = w
	q.bottomMax = tmin
	q.rungCnt = 0
	for _, n := range batch {
		q.rungPush(n)
	}
}

// pop removes and returns the earliest live event, or nil.
func (q *calQueue) pop() *node {
	if !q.ensure() {
		return nil
	}
	n := q.bottom[0]
	q.bottomRemove(0)
	n.where = whereNone
	q.size--
	return n
}

// peek returns the earliest live event without removing it, or nil.
func (q *calQueue) peek() *node {
	if !q.ensure() {
		return nil
	}
	return q.bottom[0]
}

// remove unlinks a live node from whichever region holds it (the eager
// half of Cancel). The caller recycles the node.
func (q *calQueue) remove(n *node) {
	switch n.where {
	case whereBottom:
		q.bottomRemove(int(n.slot))
	case whereTop:
		q.swapRemove(&q.top, int(n.slot))
	case whereNone:
		return
	default:
		r := int(n.where)
		q.swapRemove(&q.rungs[r], int(n.slot))
		q.rungCnt--
	}
	n.where = whereNone
	q.size--
}

// swapRemove deletes slot i from an unsorted bucket, patching the
// moved node's slot index.
func (q *calQueue) swapRemove(s *[]*node, i int) {
	b := *s
	last := len(b) - 1
	if i != last {
		b[i] = b[last]
		b[i].slot = int32(i)
	}
	b[last] = nil
	*s = b[:last]
}

// less orders the bottom heap by (at, seq): time first, scheduling
// order within a timestamp (the FIFO tie-break the determinism
// guarantee depends on).
func (q *calQueue) less(a, b *node) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// bottomPush inserts into the bottom heap.
func (q *calQueue) bottomPush(n *node) {
	n.where = whereBottom
	i := len(q.bottom)
	n.slot = int32(i)
	q.bottom = append(q.bottom, n)
	q.siftUp(i)
}

// bottomRemove deletes heap slot i (the root for pop, any slot for
// Cancel), restoring the heap property around the hole.
func (q *calQueue) bottomRemove(i int) {
	last := len(q.bottom) - 1
	if i != last {
		q.bottom[i] = q.bottom[last]
		q.bottom[i].slot = int32(i)
	}
	q.bottom[last] = nil
	q.bottom = q.bottom[:last]
	if i < last {
		if !q.siftDown(i) {
			q.siftUp(i)
		}
	}
}

func (q *calQueue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(q.bottom[i], q.bottom[parent]) {
			break
		}
		q.bottom[i], q.bottom[parent] = q.bottom[parent], q.bottom[i]
		q.bottom[i].slot = int32(i)
		q.bottom[parent].slot = int32(parent)
		i = parent
	}
}

// siftDown reports whether the node at i moved.
func (q *calQueue) siftDown(i int) bool {
	moved := false
	n := len(q.bottom)
	for {
		left := 2*i + 1
		if left >= n {
			return moved
		}
		best := left
		if right := left + 1; right < n && q.less(q.bottom[right], q.bottom[left]) {
			best = right
		}
		if !q.less(q.bottom[best], q.bottom[i]) {
			return moved
		}
		q.bottom[i], q.bottom[best] = q.bottom[best], q.bottom[i]
		q.bottom[i].slot = int32(i)
		q.bottom[best].slot = int32(best)
		i = best
		moved = true
	}
}
