package sim

// Resource is a counted resource with FIFO waiters, analogous to
// simpy.Resource. A disk that serves one request at a time is a Resource
// with capacity 1; the storage simulator uses it to serialize service at
// each spindle while requests queue.
type Resource struct {
	env      *Env
	capacity int
	inUse    int
	waiters  []func()
	// Peak tracks the maximum simultaneous queue length observed,
	// useful when diagnosing response-time blowups under random
	// placement at small idleness thresholds (paper Fig. 6).
	peakQueue int
}

// NewResource returns a resource with the given capacity (>= 1) bound to
// env.
func NewResource(env *Env, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: Resource capacity must be >= 1")
	}
	return &Resource{env: env, capacity: capacity}
}

// Acquire requests one unit. When a unit is free, acquired runs
// immediately (synchronously); otherwise the request joins a FIFO queue
// and acquired runs when a unit is released.
func (r *Resource) Acquire(acquired func()) {
	if r.inUse < r.capacity {
		r.inUse++
		acquired()
		return
	}
	r.waiters = append(r.waiters, acquired)
	if len(r.waiters) > r.peakQueue {
		r.peakQueue = len(r.waiters)
	}
}

// Release returns one unit. If a waiter is queued it acquires the unit
// immediately, in FIFO order. Release panics if nothing is held.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release without matching Acquire")
	}
	if len(r.waiters) > 0 {
		next := r.waiters[0]
		copy(r.waiters, r.waiters[1:])
		r.waiters[len(r.waiters)-1] = nil
		r.waiters = r.waiters[:len(r.waiters)-1]
		next()
		return
	}
	r.inUse--
}

// InUse reports the number of held units.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen reports the number of waiters.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// PeakQueueLen reports the maximum waiter-queue length seen so far.
func (r *Resource) PeakQueueLen() int { return r.peakQueue }
