// Package sim implements a deterministic discrete-event simulation
// kernel. It is the Go substitute for the SimPy framework the paper used
// to evaluate the Pack_Disks file-allocation strategy: an event list
// ordered by simulated time, a virtual clock, and cancellable timers.
//
// Determinism: events scheduled for the same instant fire in scheduling
// order (FIFO tie-breaking via a sequence number), so a simulation run is
// a pure function of its inputs and random seeds.
//
// The kernel is callback-based rather than coroutine-based: model
// entities (disks, dispatchers, caches) are state machines that schedule
// follow-up events. Steady-state scheduling is allocation-free: event
// records are recycled through a per-Env free list, and the ScheduleArg
// and AtArg entry points take a static function plus a pre-boxed
// argument so no closure is created per event. This matters because the
// experiment harness fans thousands of runs, each firing millions of
// events, across a worker pool.
package sim

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Time is simulated time in seconds since the start of the run.
type Time = float64

// Forever is a time later than any event the simulator will fire.
const Forever Time = math.MaxFloat64

// node is the pooled event record. Nodes are owned by the Env: freed at
// fire or cancel time, recycled by the next Schedule, with gen bumped
// on every recycle so stale Event handles can detect reuse.
type node struct {
	at  Time
	seq uint64
	fn  func(any)
	arg any
	env *Env
	gen uint32
	// where/slot locate the node inside calQueue for eager removal.
	where int32
	slot  int32
}

// Event is a handle to a scheduled callback, returned by
// Env.Schedule/At and friends. It is a small value (copyable, zero
// value inert) rather than a pointer: the underlying event record is
// recycled the moment the event fires or is cancelled, and the handle's
// generation stamp is what keeps it safe afterwards — a handle held
// across recycling can never cancel or observe a *different* event that
// now occupies the same record.
type Event struct {
	n        *node
	at       Time
	gen      uint32
	canceled bool
}

// When returns the simulated time the event is (or was) scheduled for.
func (e *Event) When() Time { return e.at }

// Cancel prevents the event from firing and reclaims its queue slot
// immediately. Cancelling an event that has already fired or was
// already cancelled is a no-op — in particular, a stale handle whose
// record has been recycled to a newer event never cancels that newer
// event. Cancel is safe to call from inside event callbacks.
func (e *Event) Cancel() {
	if e.canceled || e.n == nil || e.gen != e.n.gen {
		return
	}
	e.canceled = true
	env := e.n.env
	env.q.remove(e.n)
	env.recycle(e.n)
}

// Canceled reports whether Cancel was called on this handle before the
// event fired.
func (e *Event) Canceled() bool { return e.canceled }

// Fired reports whether the event callback has run.
func (e *Event) Fired() bool {
	if e.canceled || e.n == nil {
		return false
	}
	if e.gen != e.n.gen {
		// The record moved on: this event left the queue, and not via
		// this handle's Cancel — it fired.
		return true
	}
	return false
}

// Env is a simulation environment: a clock plus a pending-event queue.
// The zero value is not usable; call NewEnv.
type Env struct {
	now       Time
	q         calQueue
	seq       uint64
	stepCount uint64 // fired events, for diagnostics
	free      []*node
	slab      []node // current allocation block, carved into nodes
}

// legacyKernel, when set, makes NewEnv hand out legacy-heap
// environments. See SetLegacyKernel.
var legacyKernel atomic.Bool

// SetLegacyKernel globally switches NewEnv between the calendar-queue
// scheduler (false, the default) and the legacy binary heap (true),
// returning the previous setting. This is a test seam, not a tuning
// knob: the farm-level kernel identity suite uses it to run entire
// scenarios under both schedulers and compare their metrics
// byte-for-byte.
func SetLegacyKernel(on bool) bool { return legacyKernel.Swap(on) }

// NewEnv returns an environment with the clock at zero and no pending
// events, using the calendar-queue scheduler (unless SetLegacyKernel
// has switched the process to the legacy heap).
func NewEnv() *Env {
	if legacyKernel.Load() {
		return NewLegacyHeapEnv()
	}
	return &Env{}
}

// NewLegacyHeapEnv returns an environment whose scheduler degenerates
// to the plain global binary heap the kernel used before the calendar
// queue. Event ordering is identical by construction; this exists so
// property tests can prove that byte-for-byte (see the farm kernel
// identity suite) rather than assume it.
func NewLegacyHeapEnv() *Env {
	env := &Env{}
	env.q.bottomMax = math.Inf(1)
	return env
}

// Now returns the current simulated time.
func (env *Env) Now() Time { return env.now }

// Pending returns the number of live (scheduled, not yet fired or
// cancelled) events. Cancelled events are reclaimed eagerly and never
// counted.
func (env *Env) Pending() int { return env.q.size }

// Steps returns the number of events fired so far.
func (env *Env) Steps() uint64 { return env.stepCount }

// slabSize is the number of event records allocated per free-list
// refill. One refill covers a disk group's worth of concurrent timers;
// steady state never allocates again.
const slabSize = 64

// alloc returns a free node, refilling the pool from a fresh slab when
// empty.
func (env *Env) alloc() *node {
	if len(env.free) == 0 {
		if len(env.slab) == 0 {
			env.slab = make([]node, slabSize)
		}
		n := &env.slab[0]
		env.slab = env.slab[1:]
		n.env = env
		n.where = whereNone
		return n
	}
	n := env.free[len(env.free)-1]
	env.free = env.free[:len(env.free)-1]
	return n
}

// recycle returns a node to the free list, bumping its generation so
// outstanding handles observe the reuse, and dropping callback
// references so the pool does not pin dead objects.
func (env *Env) recycle(n *node) {
	n.gen++
	n.fn = nil
	n.arg = nil
	n.where = whereNone
	env.free = append(env.free, n)
}

// Schedule arranges for fn to run after delay simulated seconds and
// returns a handle that can cancel it. Schedule panics if delay is
// negative or NaN: scheduling into the past would silently corrupt the
// causal order of the run.
//
// Schedule allocates to box the closure; hot paths that fire per
// request should use ScheduleArg with a static function instead.
func (env *Env) Schedule(delay Time, fn func()) Event {
	if fn == nil {
		panic("sim: Schedule with nil callback")
	}
	return env.ScheduleArg(delay, runClosure, fn)
}

// At arranges for fn to run at absolute simulated time t. It panics if t
// is before the current time or NaN.
func (env *Env) At(t Time, fn func()) Event {
	if fn == nil {
		panic("sim: At with nil callback")
	}
	return env.AtArg(t, runClosure, fn)
}

// runClosure adapts the closure-based Schedule/At API onto the
// (fn, arg) representation: the closure itself is the argument.
func runClosure(a any) { a.(func())() }

// ScheduleArg is the allocation-free form of Schedule: fn should be a
// package-level function and arg its pre-boxed state (boxing a pointer
// or a func value into any does not allocate). Same validation as
// Schedule.
func (env *Env) ScheduleArg(delay Time, fn func(any), arg any) Event {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: Schedule with invalid delay %v at t=%v", delay, env.now))
	}
	return env.AtArg(env.now+delay, fn, arg)
}

// AtArg is the allocation-free form of At. See ScheduleArg.
func (env *Env) AtArg(t Time, fn func(any), arg any) Event {
	env.seq++
	return env.AtArgSeq(t, fn, arg, env.seq)
}

// ReserveSeqs claims the next n FIFO positions and returns the first.
// Together with AtArgSeq it lets a producer dispatch a time-sorted
// stream lazily — each event scheduling the next — while keeping the
// exact tie-breaking order it would have had scheduling the whole
// stream upfront: reserve the stream's positions at construction, then
// attach position base+i to the i-th event whenever it is actually
// scheduled. Sequence numbers only break ties between equal
// timestamps; holding reserved positions unscheduled does not delay
// any other event.
func (env *Env) ReserveSeqs(n int) uint64 {
	if n < 0 {
		panic(fmt.Sprintf("sim: ReserveSeqs(%d)", n))
	}
	base := env.seq + 1
	env.seq += uint64(n)
	return base
}

// AtArgSeq schedules like AtArg but at an explicit FIFO position
// previously obtained from ReserveSeqs. Scheduling the same position
// twice corrupts the tie order; the kernel does not check.
func (env *Env) AtArgSeq(t Time, fn func(any), arg any, seq uint64) Event {
	if t < env.now || math.IsNaN(t) {
		panic(fmt.Sprintf("sim: At(%v) is in the past (now=%v)", t, env.now))
	}
	if fn == nil {
		panic("sim: At with nil callback")
	}
	n := env.alloc()
	n.at = t
	n.seq = seq
	n.fn = fn
	n.arg = arg
	env.q.push(n)
	return Event{n: n, at: t, gen: n.gen}
}

// Step fires the next pending event, advancing the clock to its
// timestamp. It returns false when no events remain.
func (env *Env) Step() bool {
	n := env.q.pop()
	if n == nil {
		return false
	}
	env.now = n.at
	env.stepCount++
	fn, arg := n.fn, n.arg
	// Recycle before invoking: the callback may schedule (reusing this
	// record immediately keeps the pool tight), and any Cancel it calls
	// on a handle to *this* event sees a bumped generation and no-ops.
	env.recycle(n)
	fn(arg)
	return true
}

// Run fires events until the queue is empty.
func (env *Env) Run() {
	for env.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline, then advances the
// clock to exactly deadline. Events scheduled after the deadline remain
// pending.
func (env *Env) RunUntil(deadline Time) {
	if deadline < env.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) is in the past (now=%v)", deadline, env.now))
	}
	for {
		n := env.q.peek()
		if n == nil || n.at > deadline {
			break
		}
		env.Step()
	}
	env.now = deadline
}

// RunWindows advances the simulation to horizon in epoch-length
// increments, calling fn at the end of every window with its bounds
// (final marks the window that reaches the horizon). Chunking changes
// nothing about the event order — RunUntil fires exactly the events a
// single RunUntil(horizon) would, in the same order — so an observer
// that only reads state sees a byte-identical run. This is the
// telemetry seam the windowed storage runner sits on. An fn error
// aborts the run and is returned.
func (env *Env) RunWindows(epoch, horizon Time, fn func(start, end Time, final bool) error) error {
	if epoch <= 0 || math.IsNaN(epoch) {
		panic(fmt.Sprintf("sim: RunWindows with invalid epoch %v", epoch))
	}
	start := env.now
	for k := 1; ; k++ {
		end := start + Time(k)*epoch
		final := end >= horizon
		if final {
			end = horizon
		}
		env.RunUntil(end)
		if err := fn(start+Time(k-1)*epoch, end, final); err != nil {
			return err
		}
		if final {
			return nil
		}
	}
}
