// Package sim implements a deterministic discrete-event simulation
// kernel. It is the Go substitute for the SimPy framework the paper used
// to evaluate the Pack_Disks file-allocation strategy: an event list
// ordered by simulated time, a virtual clock, and cancellable timers.
//
// Determinism: events scheduled for the same instant fire in scheduling
// order (FIFO tie-breaking via a sequence number), so a simulation run is
// a pure function of its inputs and random seeds.
//
// The kernel is callback-based rather than coroutine-based: model
// entities (disks, dispatchers, caches) are state machines that schedule
// follow-up events. This keeps runs allocation-light and reproducible,
// which matters when the experiment harness fans thousands of runs across
// a worker pool.
package sim

import (
	"fmt"
	"math"
)

// Time is simulated time in seconds since the start of the run.
type Time = float64

// Forever is a time later than any event the simulator will fire.
const Forever Time = math.MaxFloat64

// Event is a scheduled callback. Events are created by Env.Schedule/At
// and may be cancelled before they fire; a cancelled event is skipped by
// the event loop at no more than O(log n) residual cost (lazy deletion).
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	fired    bool
}

// When returns the simulated time the event is (or was) scheduled for.
func (e *Event) When() Time { return e.at }

// Cancel prevents the event from firing. Cancelling an event that has
// already fired or was already cancelled is a no-op. Cancel is safe to
// call from inside event callbacks.
func (e *Event) Cancel() { e.canceled = true }

// Canceled reports whether Cancel was called before the event fired.
func (e *Event) Canceled() bool { return e.canceled }

// Fired reports whether the event callback has run.
func (e *Event) Fired() bool { return e.fired }

// Env is a simulation environment: a clock plus a pending-event queue.
// The zero value is not usable; call NewEnv.
type Env struct {
	now    Time
	events eventQueue
	seq    uint64
	// stepCount counts fired (non-cancelled) events, for diagnostics.
	stepCount uint64
}

// NewEnv returns an environment with the clock at zero and no pending
// events.
func NewEnv() *Env { return &Env{} }

// Now returns the current simulated time.
func (env *Env) Now() Time { return env.now }

// Pending returns the number of events in the queue, including
// not-yet-collected cancelled events.
func (env *Env) Pending() int { return env.events.Len() }

// Steps returns the number of events fired so far.
func (env *Env) Steps() uint64 { return env.stepCount }

// Schedule arranges for fn to run after delay simulated seconds and
// returns a handle that can cancel it. Schedule panics if delay is
// negative or NaN: scheduling into the past would silently corrupt the
// causal order of the run.
func (env *Env) Schedule(delay Time, fn func()) *Event {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: Schedule with invalid delay %v at t=%v", delay, env.now))
	}
	return env.At(env.now+delay, fn)
}

// At arranges for fn to run at absolute simulated time t. It panics if t
// is before the current time or NaN.
func (env *Env) At(t Time, fn func()) *Event {
	if t < env.now || math.IsNaN(t) {
		panic(fmt.Sprintf("sim: At(%v) is in the past (now=%v)", t, env.now))
	}
	if fn == nil {
		panic("sim: At with nil callback")
	}
	env.seq++
	ev := &Event{at: t, seq: env.seq, fn: fn}
	env.events.push(ev)
	return ev
}

// Step fires the next pending event, advancing the clock to its
// timestamp. It returns false when no events remain.
func (env *Env) Step() bool {
	for {
		ev, ok := env.events.pop()
		if !ok {
			return false
		}
		if ev.canceled {
			continue
		}
		env.now = ev.at
		ev.fired = true
		env.stepCount++
		ev.fn()
		return true
	}
}

// Run fires events until the queue is empty.
func (env *Env) Run() {
	for env.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline, then advances the
// clock to exactly deadline. Events scheduled after the deadline remain
// pending.
func (env *Env) RunUntil(deadline Time) {
	if deadline < env.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) is in the past (now=%v)", deadline, env.now))
	}
	for {
		ev, ok := env.events.peek()
		if !ok || ev.at > deadline {
			break
		}
		env.Step()
	}
	env.now = deadline
}

// RunWindows advances the simulation to horizon in epoch-length
// increments, calling fn at the end of every window with its bounds
// (final marks the window that reaches the horizon). Chunking changes
// nothing about the event order — RunUntil fires exactly the events a
// single RunUntil(horizon) would, in the same order — so an observer
// that only reads state sees a byte-identical run. This is the
// telemetry seam the windowed storage runner sits on. An fn error
// aborts the run and is returned.
func (env *Env) RunWindows(epoch, horizon Time, fn func(start, end Time, final bool) error) error {
	if epoch <= 0 || math.IsNaN(epoch) {
		panic(fmt.Sprintf("sim: RunWindows with invalid epoch %v", epoch))
	}
	start := env.now
	for k := 1; ; k++ {
		end := start + Time(k)*epoch
		final := end >= horizon
		if final {
			end = horizon
		}
		env.RunUntil(end)
		if err := fn(start+Time(k-1)*epoch, end, final); err != nil {
			return err
		}
		if final {
			return nil
		}
	}
}

// eventQueue is a binary min-heap on (at, seq). A dedicated
// implementation (rather than mheap.Heap) keeps the hot path free of
// indirect comparison calls; the disk-farm simulations fire millions of
// events per experiment sweep.
type eventQueue struct {
	items []*Event
}

func (q *eventQueue) Len() int { return len(q.items) }

func (q *eventQueue) less(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) push(ev *Event) {
	q.items = append(q.items, ev)
	i := len(q.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(q.items[i], q.items[parent]) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *eventQueue) peek() (*Event, bool) {
	// Skip over cancelled events so RunUntil's deadline check sees the
	// next live event.
	for len(q.items) > 0 && q.items[0].canceled {
		q.popRaw()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	return q.items[0], true
}

func (q *eventQueue) pop() (*Event, bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	return q.popRaw(), true
}

func (q *eventQueue) popRaw() *Event {
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items[last] = nil
	q.items = q.items[:last]
	n := len(q.items)
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		best := left
		if right := left + 1; right < n && q.less(q.items[right], q.items[left]) {
			best = right
		}
		if !q.less(q.items[best], q.items[i]) {
			break
		}
		q.items[i], q.items[best] = q.items[best], q.items[i]
		i = best
	}
	return top
}
