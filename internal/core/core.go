// Package core implements the paper's primary contribution: file
// allocation on disks as a two-dimensional vector packing problem
// (2DVPP) with provable bounds from the optimum.
//
// Each file i is a normalized pair (sᵢ, lᵢ): its size as a fraction of
// the usable disk capacity S, and its load — request rate × service time
// — as a fraction of the allowed per-disk load L. A disk is a bin with
// capacity 1 in both dimensions. Packing files into the minimum number
// of bins concentrates traffic on few spindles so the rest can spin
// down, which is the power/response-time trade-off the paper analyzes.
//
// The package provides:
//
//   - PackDisks: the paper's O(n log n) approximation (Algorithm 3). It
//     improves on Chang, Hwang & Park's O(n²) algorithm by keeping, per
//     open disk, the stacks s-list and l-list of inserted elements so
//     the element to evict on overflow is found in O(1).
//   - PackDisksV: the group round-robin variant (Section 3.2) that
//     spreads batches of similar-size files over v disks; v = 1 is
//     exactly PackDisks.
//   - ChangHwangPark: the original O(n²) algorithm, used as the
//     complexity ablation baseline.
//   - RandomAssign / RandomAssignCapacity / FirstFit / BestFit /
//     FirstFitDecreasing: comparison allocators.
//   - LowerBound, Rho, CheckFeasible, ApproxBound: the quantities in
//     Theorem 1 (C_PD ≤ C*/(1−ρ) + 1).
package core

import (
	"errors"
	"fmt"
	"math"

	"diskpack/internal/mheap"
)

// Item is one file to allocate, with size and load normalized to the
// per-disk capacities (both in [0, 1]).
type Item struct {
	ID   int
	Size float64
	Load float64
}

// SizeIntensive reports whether the item belongs to the paper's ST(F)
// set (sᵢ ≥ lᵢ); otherwise it is load-intensive (LD(F)).
func (it Item) SizeIntensive() bool { return it.Size >= it.Load }

// feasEps absorbs floating-point drift when checking bin capacities.
const feasEps = 1e-9

// ValidateItems reports the first item whose size or load is outside
// [0, 1] — such an item can never be packed.
func ValidateItems(items []Item) error {
	for i, it := range items {
		if math.IsNaN(it.Size) || math.IsNaN(it.Load) ||
			it.Size < 0 || it.Load < 0 || it.Size > 1 || it.Load > 1 {
			return fmt.Errorf("core: item %d (id %d) has size=%v load=%v outside [0,1]",
				i, it.ID, it.Size, it.Load)
		}
	}
	return nil
}

// Rho returns ρ = maxᵢ max(sᵢ, lᵢ), the item-size bound appearing in
// Theorem 1's guarantee. It returns 0 for an empty instance.
func Rho(items []Item) float64 {
	var rho float64
	for _, it := range items {
		if it.Size > rho {
			rho = it.Size
		}
		if it.Load > rho {
			rho = it.Load
		}
	}
	return rho
}

// LowerBound returns max(Σsᵢ, Σlᵢ), a lower bound on the optimal number
// of disks C* (each disk holds at most 1 unit of size and 1 of load).
func LowerBound(items []Item) float64 {
	var ss, sl float64
	for _, it := range items {
		ss += it.Size
		sl += it.Load
	}
	return math.Max(ss, sl)
}

// LowerBoundDisks returns ⌈LowerBound⌉ as an integer disk count (at
// least 1 when any item exists).
func LowerBoundDisks(items []Item) int {
	if len(items) == 0 {
		return 0
	}
	lb := int(math.Ceil(LowerBound(items) - feasEps))
	if lb < 1 {
		lb = 1
	}
	return lb
}

// ApproxBound returns the Theorem 1 guarantee evaluated with the
// LowerBound in place of C*: 1 + LB/(1−ρ). The proof of Theorem 1 in
// fact establishes C_PD against this stronger quantity, so it is a valid
// (and testable) ceiling for the number of disks PackDisks may open.
// It returns +Inf when ρ ≥ 1.
func ApproxBound(items []Item) float64 {
	rho := Rho(items)
	if rho >= 1 {
		return math.Inf(1)
	}
	return 1 + LowerBound(items)/(1-rho)
}

// Assignment maps each input item to a disk.
type Assignment struct {
	// DiskOf[i] is the 0-based disk holding items[i].
	DiskOf []int
	// NumDisks is the number of disks used (max(DiskOf)+1).
	NumDisks int
}

// Disks groups item indices per disk.
func (a *Assignment) Disks() [][]int {
	out := make([][]int, a.NumDisks)
	for i, d := range a.DiskOf {
		out[d] = append(out[d], i)
	}
	return out
}

// Totals returns the per-disk size and load sums under items.
func (a *Assignment) Totals(items []Item) (sizes, loads []float64) {
	sizes = make([]float64, a.NumDisks)
	loads = make([]float64, a.NumDisks)
	for i, d := range a.DiskOf {
		sizes[d] += items[i].Size
		loads[d] += items[i].Load
	}
	return sizes, loads
}

// CheckFeasible verifies that every item is assigned to a valid disk and
// no disk exceeds capacity 1 (within floating-point tolerance) in either
// dimension. sizeOnly relaxes the load dimension, matching the paper's
// random placement which ignores load.
func (a *Assignment) CheckFeasible(items []Item, sizeOnly bool) error {
	if len(a.DiskOf) != len(items) {
		return fmt.Errorf("core: assignment covers %d items, want %d", len(a.DiskOf), len(items))
	}
	for i, d := range a.DiskOf {
		if d < 0 || d >= a.NumDisks {
			return fmt.Errorf("core: item %d assigned to invalid disk %d (of %d)", i, d, a.NumDisks)
		}
	}
	sizes, loads := a.Totals(items)
	for d := range sizes {
		if sizes[d] > 1+feasEps {
			return fmt.Errorf("core: disk %d size %v exceeds capacity", d, sizes[d])
		}
		if !sizeOnly && loads[d] > 1+feasEps {
			return fmt.Errorf("core: disk %d load %v exceeds capacity", d, loads[d])
		}
	}
	return nil
}

// openDisk is a bin being filled by PackDisks. sList and lList are the
// insertion-order stacks of size-intensive and load-intensive items the
// paper uses to locate the eviction candidate in O(1) (the improvement
// over Chang–Hwang–Park).
type openDisk struct {
	size, load   float64
	sList, lList []int // item indices, in insertion order
}

func (d *openDisk) add(items []Item, idx int) {
	it := items[idx]
	d.size += it.Size
	d.load += it.Load
	if it.SizeIntensive() {
		d.sList = append(d.sList, idx)
	} else {
		d.lList = append(d.lList, idx)
	}
}

// evictLastS removes and returns the most recently inserted
// size-intensive item (Lemma 1 guarantees it exists and has
// s̃ₖ ≥ S(Dᵢ)−L(Dᵢ) when the overflow branch triggers).
func (d *openDisk) evictLastS(items []Item) int {
	if len(d.sList) == 0 {
		panic("core: PackDisks invariant violated — eviction from empty s-list")
	}
	idx := d.sList[len(d.sList)-1]
	d.sList = d.sList[:len(d.sList)-1]
	d.size -= items[idx].Size
	d.load -= items[idx].Load
	return idx
}

func (d *openDisk) evictLastL(items []Item) int {
	if len(d.lList) == 0 {
		panic("core: PackDisks invariant violated — eviction from empty l-list")
	}
	idx := d.lList[len(d.lList)-1]
	d.lList = d.lList[:len(d.lList)-1]
	d.size -= items[idx].Size
	d.load -= items[idx].Load
	return idx
}

// complete reports whether the disk is both s-complete and l-complete:
// 1 ≥ S ≥ 1−ρ and 1 ≥ L ≥ 1−ρ. An empty disk is never considered
// complete (otherwise ρ = 1 instances would close zero-item disks
// forever).
func (d *openDisk) complete(rho float64) bool {
	if len(d.sList)+len(d.lList) == 0 {
		return false
	}
	return d.size >= 1-rho-feasEps && d.load >= 1-rho-feasEps
}

func (d *openDisk) itemCount() int { return len(d.sList) + len(d.lList) }

// buildHeaps splits items into the two max-heaps of Algorithm 3:
// Ŝ keyed by s̃ᵢ = sᵢ−lᵢ over size-intensive items, and L̂ keyed by
// l̃ᵢ = lᵢ−sᵢ over load-intensive items.
func buildHeaps(items []Item) (sHeap, lHeap *mheap.KV[float64, int]) {
	sHeap = mheap.NewMaxKV[float64, int]()
	lHeap = mheap.NewMaxKV[float64, int]()
	for i, it := range items {
		if it.SizeIntensive() {
			sHeap.Push(it.Size-it.Load, i)
		} else {
			lHeap.Push(it.Load-it.Size, i)
		}
	}
	return sHeap, lHeap
}

// PackDisks runs the paper's Algorithm 3 and returns the resulting
// assignment. It is an error if any item exceeds the unit capacities.
// Complexity is O(n log n): every item is pushed/popped from a heap a
// bounded number of times (each re-push coincides with a disk closing),
// and eviction candidates are found in O(1) via the per-disk lists.
func PackDisks(items []Item) (*Assignment, error) {
	return packDisksGrouped(items, 1)
}

// PackDisksV runs the Section 3.2 variant: disks are organized in groups
// of v and packed round-robin within the group, de-clustering batches of
// similar files that would otherwise land on one spindle. PackDisksV
// with v = 1 is identical to PackDisks.
func PackDisksV(items []Item, v int) (*Assignment, error) {
	if v < 1 {
		return nil, fmt.Errorf("core: group size v must be >= 1, got %d", v)
	}
	return packDisksGrouped(items, v)
}

func packDisksGrouped(items []Item, v int) (*Assignment, error) {
	if err := ValidateItems(items); err != nil {
		return nil, err
	}
	diskOf := make([]int, len(items))
	if len(items) == 0 {
		return &Assignment{DiskOf: diskOf, NumDisks: 0}, nil
	}
	rho := Rho(items)
	sHeap, lHeap := buildHeaps(items)

	var closed []*openDisk // disks in final order
	// The current group: up to v concurrently open disks, packed
	// round-robin. With v == 1 this degenerates to Algorithm 3's
	// single current disk.
	var group []*openDisk
	freshGroup := func() {
		group = group[:0]
		for k := 0; k < v; k++ {
			group = append(group, &openDisk{})
		}
	}
	freshGroup()
	rr := 0 // round-robin cursor within group

	// closeAt moves group[gi] to the closed list; an emptied group is
	// replaced by a fresh one.
	closeAt := func(gi int) {
		closed = append(closed, group[gi])
		group = append(group[:gi], group[gi+1:]...)
		if len(group) == 0 {
			freshGroup()
			rr = 0
		} else if rr >= len(group) {
			rr = 0
		}
	}

	// Main loop (Algorithm 3 lines 4–21, generalized to a group).
mainLoop:
	for {
		gi := rr % len(group)
		d := group[gi]
		sizeDominant := d.size >= d.load
		swapped := false
		switch {
		case sizeDominant && !lHeap.Empty():
			_, j, _ := lHeap.Pop()
			if d.size+items[j].Size > 1+feasEps {
				// Overflow: evict the last size-intensive element
				// (Lemma 1), return it to Ŝ, then insert j. Lemma 3
				// guarantees the disk is now complete.
				k := d.evictLastS(items)
				sHeap.Push(items[k].Size-items[k].Load, k)
				swapped = true
			}
			d.add(items, j)
		case !sizeDominant && !sHeap.Empty():
			_, j, _ := sHeap.Pop()
			if d.load+items[j].Load > 1+feasEps {
				// Symmetric overflow (Lemmas 2 and 4).
				k := d.evictLastL(items)
				lHeap.Push(items[k].Load-items[k].Size, k)
				swapped = true
			}
			d.add(items, j)
		default:
			// This disk cannot take an element from the heap its
			// dominance calls for. Let another open disk in the
			// group proceed if one can; otherwise the main phase is
			// over.
			for off := 1; off < len(group); off++ {
				alt := group[(rr+off)%len(group)]
				altDominant := alt.size >= alt.load
				if (altDominant && !lHeap.Empty()) || (!altDominant && !sHeap.Empty()) {
					rr = (rr + off) % len(group)
					continue mainLoop
				}
			}
			break mainLoop
		}
		// Lemmas 3/4: an eviction swap always completes the disk, so
		// close unconditionally after one (this also guarantees
		// termination independent of floating-point rounding in the
		// completeness test).
		if swapped || d.complete(rho) {
			closeAt(gi)
		} else {
			rr = (rr + 1) % len(group)
		}
	}

	// Pack_Remaining (the paper's Pack_Remaining_S / Pack_Remaining_L,
	// generalized to round-robin over the open group). Lemma 5: at
	// most one heap is non-empty here, and every open disk is
	// dominant in that heap's dimension, so only that dimension can
	// overflow.
	if !sHeap.Empty() && !lHeap.Empty() {
		panic("core: PackDisks invariant violated — both heaps non-empty after main loop")
	}
	packRemaining := func(h *mheap.KV[float64, int], dim func(*openDisk) float64, itemDim func(Item) float64) {
		for !h.Empty() {
			_, j, _ := h.Pop()
			placed := false
			for off := 0; off < len(group); off++ {
				gi := (rr + off) % len(group)
				d := group[gi]
				if dim(d)+itemDim(items[j]) <= 1+feasEps {
					d.add(items, j)
					rr = (gi + 1) % len(group)
					placed = true
					break
				}
			}
			if !placed {
				// No open disk fits this element: retire the whole
				// group (every member is non-empty — an empty disk
				// would have accepted the element) and start fresh.
				for _, d := range group {
					if d.itemCount() > 0 {
						closed = append(closed, d)
					}
				}
				freshGroup()
				group[0].add(items, j)
				rr = 1 % v
			}
		}
	}
	packRemaining(sHeap, func(d *openDisk) float64 { return d.size }, func(it Item) float64 { return it.Size })
	packRemaining(lHeap, func(d *openDisk) float64 { return d.load }, func(it Item) float64 { return it.Load })

	// Flush the open group: keep only disks that received items.
	for _, d := range group {
		if d.itemCount() > 0 {
			closed = append(closed, d)
		}
	}

	for di, d := range closed {
		for _, i := range d.sList {
			diskOf[i] = di
		}
		for _, i := range d.lList {
			diskOf[i] = di
		}
	}
	a := &Assignment{DiskOf: diskOf, NumDisks: len(closed)}
	if err := a.CheckFeasible(items, false); err != nil {
		// A feasibility failure here is an algorithm bug, not bad
		// input; surface it loudly.
		panic(fmt.Sprintf("core: PackDisks produced infeasible packing: %v", err))
	}
	return a, nil
}

// ErrDoesNotFit reports that an allocator could not place all items in
// the disks it was given.
var ErrDoesNotFit = errors.New("core: items do not fit")
