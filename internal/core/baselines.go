package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"diskpack/internal/mheap"
)

// ChangHwangPark implements the O(n²) 2DVPP approximation of Chang,
// Hwang & Park (2005) that PackDisks improves upon. The packing logic
// is identical — alternate between size- and load-intensive heaps based
// on the open disk's dominant dimension, swap out an element on overflow
// — but the element to evict is located by scanning the open disk's
// contents for one with s̃ₖ ≥ S(Dᵢ)−L(Dᵢ) (or the symmetric condition),
// which costs O(n) per eviction instead of the O(1) the s-list/l-list
// bookkeeping achieves. Both algorithms satisfy Theorem 1's bound.
func ChangHwangPark(items []Item) (*Assignment, error) {
	if err := ValidateItems(items); err != nil {
		return nil, err
	}
	diskOf := make([]int, len(items))
	if len(items) == 0 {
		return &Assignment{DiskOf: diskOf, NumDisks: 0}, nil
	}
	rho := Rho(items)
	sHeap, lHeap := buildHeaps(items)

	type chpDisk struct {
		size, load float64
		members    []int
	}
	var closed []*chpDisk
	d := &chpDisk{}

	add := func(j int) {
		d.size += items[j].Size
		d.load += items[j].Load
		d.members = append(d.members, j)
	}
	// removeWhere scans the disk (the O(n) step) for an element
	// matching pred, removes it, and returns its index.
	removeWhere := func(pred func(Item) bool) int {
		for mi := len(d.members) - 1; mi >= 0; mi-- {
			j := d.members[mi]
			if pred(items[j]) {
				d.members = append(d.members[:mi], d.members[mi+1:]...)
				d.size -= items[j].Size
				d.load -= items[j].Load
				return j
			}
		}
		panic("core: ChangHwangPark invariant violated — no eviction candidate")
	}
	complete := func() bool {
		return len(d.members) > 0 && d.size >= 1-rho-feasEps && d.load >= 1-rho-feasEps
	}
	closeDisk := func() {
		closed = append(closed, d)
		d = &chpDisk{}
	}

	for {
		sizeDominant := d.size >= d.load
		swapped := false
		if sizeDominant && !lHeap.Empty() {
			_, j, _ := lHeap.Pop()
			if d.size+items[j].Size > 1+feasEps {
				gap := d.size - d.load
				k := removeWhere(func(it Item) bool {
					return it.SizeIntensive() && it.Size-it.Load >= gap-feasEps
				})
				sHeap.Push(items[k].Size-items[k].Load, k)
				swapped = true
			}
			add(j)
		} else if !sizeDominant && !sHeap.Empty() {
			_, j, _ := sHeap.Pop()
			if d.load+items[j].Load > 1+feasEps {
				gap := d.load - d.size
				k := removeWhere(func(it Item) bool {
					return !it.SizeIntensive() && it.Load-it.Size >= gap-feasEps
				})
				lHeap.Push(items[k].Load-items[k].Size, k)
				swapped = true
			}
			add(j)
		} else {
			break
		}
		if swapped || complete() {
			closeDisk()
		}
	}

	packRemaining := func(h *mheap.KV[float64, int], dim func() float64, itemDim func(Item) float64) {
		for !h.Empty() {
			_, j, _ := h.Pop()
			if dim()+itemDim(items[j]) > 1+feasEps {
				closeDisk()
			}
			add(j)
		}
	}
	packRemaining(sHeap, func() float64 { return d.size }, func(it Item) float64 { return it.Size })
	packRemaining(lHeap, func() float64 { return d.load }, func(it Item) float64 { return it.Load })
	if len(d.members) > 0 {
		closeDisk()
	}

	for di, disk := range closed {
		for _, i := range disk.members {
			diskOf[i] = di
		}
	}
	a := &Assignment{DiskOf: diskOf, NumDisks: len(closed)}
	if err := a.CheckFeasible(items, false); err != nil {
		panic(fmt.Sprintf("core: ChangHwangPark produced infeasible packing: %v", err))
	}
	return a, nil
}

// RandomAssign distributes items uniformly at random over numDisks
// disks, ignoring both capacity dimensions. This is the paper's
// "random placement" comparator for Figures 2–4: with files spread
// evenly, idle periods are short on every disk and spin-down
// opportunities vanish.
func RandomAssign(items []Item, numDisks int, rng *rand.Rand) (*Assignment, error) {
	if numDisks < 1 {
		return nil, fmt.Errorf("core: RandomAssign needs >= 1 disk, got %d", numDisks)
	}
	diskOf := make([]int, len(items))
	for i := range items {
		diskOf[i] = rng.Intn(numDisks)
	}
	return &Assignment{DiskOf: diskOf, NumDisks: numDisks}, nil
}

// RandomAssignCapacity distributes items uniformly at random over
// numDisks disks while respecting the size capacity (load is ignored,
// as in the paper's Section 5.1 experiment where random placement packs
// the NERSC files into 96 disks). It returns ErrDoesNotFit when some
// item fits on no disk.
func RandomAssignCapacity(items []Item, numDisks int, rng *rand.Rand) (*Assignment, error) {
	if numDisks < 1 {
		return nil, fmt.Errorf("core: RandomAssignCapacity needs >= 1 disk, got %d", numDisks)
	}
	diskOf := make([]int, len(items))
	sizes := make([]float64, numDisks)
	// Place items in random order so late large items are not
	// systematically squeezed out.
	order := rng.Perm(len(items))
	feasible := make([]int, 0, numDisks)
	for _, i := range order {
		feasible = feasible[:0]
		for d := 0; d < numDisks; d++ {
			if sizes[d]+items[i].Size <= 1+feasEps {
				feasible = append(feasible, d)
			}
		}
		if len(feasible) == 0 {
			return nil, fmt.Errorf("%w: item %d (size %v) fits on no disk", ErrDoesNotFit, i, items[i].Size)
		}
		d := feasible[rng.Intn(len(feasible))]
		diskOf[i] = d
		sizes[d] += items[i].Size
	}
	return &Assignment{DiskOf: diskOf, NumDisks: numDisks}, nil
}

// FirstFit packs items in input order, placing each on the
// lowest-numbered disk with room in both dimensions, opening a new disk
// when none fits.
func FirstFit(items []Item) (*Assignment, error) {
	if err := ValidateItems(items); err != nil {
		return nil, err
	}
	return firstFitOrder(items, identityOrder(len(items))), nil
}

// FirstFitDecreasing packs items in decreasing max(s, l) order using
// first-fit — the classic bin-packing heuristic generalized to two
// dimensions.
func FirstFitDecreasing(items []Item) (*Assignment, error) {
	if err := ValidateItems(items); err != nil {
		return nil, err
	}
	order := identityOrder(len(items))
	sort.SliceStable(order, func(a, b int) bool {
		ma := math.Max(items[order[a]].Size, items[order[a]].Load)
		mb := math.Max(items[order[b]].Size, items[order[b]].Load)
		return ma > mb
	})
	return firstFitOrder(items, order), nil
}

// BestFit packs items in input order onto the feasible disk whose
// remaining capacity (in the tighter dimension after placement) is
// smallest, opening a new disk when none fits.
func BestFit(items []Item) (*Assignment, error) {
	if err := ValidateItems(items); err != nil {
		return nil, err
	}
	diskOf := make([]int, len(items))
	var sizes, loads []float64
	for i, it := range items {
		best, bestSlack := -1, math.Inf(1)
		for d := range sizes {
			if sizes[d]+it.Size > 1+feasEps || loads[d]+it.Load > 1+feasEps {
				continue
			}
			slack := math.Min(1-(sizes[d]+it.Size), 1-(loads[d]+it.Load))
			if slack < bestSlack {
				best, bestSlack = d, slack
			}
		}
		if best < 0 {
			sizes = append(sizes, 0)
			loads = append(loads, 0)
			best = len(sizes) - 1
		}
		diskOf[i] = best
		sizes[best] += it.Size
		loads[best] += it.Load
	}
	return &Assignment{DiskOf: diskOf, NumDisks: len(sizes)}, nil
}

func identityOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

func firstFitOrder(items []Item, order []int) *Assignment {
	diskOf := make([]int, len(items))
	var sizes, loads []float64
	for _, i := range order {
		it := items[i]
		placed := -1
		for d := range sizes {
			if sizes[d]+it.Size <= 1+feasEps && loads[d]+it.Load <= 1+feasEps {
				placed = d
				break
			}
		}
		if placed < 0 {
			sizes = append(sizes, 0)
			loads = append(loads, 0)
			placed = len(sizes) - 1
		}
		diskOf[i] = placed
		sizes[placed] += it.Size
		loads[placed] += it.Load
	}
	return &Assignment{DiskOf: diskOf, NumDisks: len(sizes)}
}

// BuildItems normalizes raw file sizes (bytes) and request rates
// (requests/second) into packing items: sᵢ = size/capS and
// lᵢ = rateᵢ·serviceTime(sizeᵢ)/capL, following the paper's definition
// l_i = R·p_i·µ_i with capL the allowed utilization fraction of the
// disk's transfer capability. It is an error if any normalized
// component exceeds 1 (the file can never be stored / served within the
// constraint).
func BuildItems(sizes []int64, rates []float64, serviceTime func(int64) float64, capS int64, capL float64) ([]Item, error) {
	if len(sizes) != len(rates) {
		return nil, fmt.Errorf("core: %d sizes but %d rates", len(sizes), len(rates))
	}
	if capS <= 0 || capL <= 0 {
		return nil, fmt.Errorf("core: capacities must be positive (capS=%d capL=%v)", capS, capL)
	}
	items := make([]Item, len(sizes))
	for i := range sizes {
		s := float64(sizes[i]) / float64(capS)
		l := rates[i] * serviceTime(sizes[i]) / capL
		if s > 1 || l > 1 || s < 0 || l < 0 || math.IsNaN(s) || math.IsNaN(l) {
			return nil, fmt.Errorf("core: file %d does not fit: normalized size=%v load=%v", i, s, l)
		}
		items[i] = Item{ID: i, Size: s, Load: l}
	}
	return items, nil
}
