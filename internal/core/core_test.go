package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyInstance(t *testing.T) {
	a, err := PackDisks(nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumDisks != 0 || len(a.DiskOf) != 0 {
		t.Fatalf("empty instance: %+v", a)
	}
}

func TestSingleItem(t *testing.T) {
	a, err := PackDisks([]Item{{ID: 0, Size: 0.4, Load: 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumDisks != 1 || a.DiskOf[0] != 0 {
		t.Fatalf("single item: %+v", a)
	}
}

func TestZeroItem(t *testing.T) {
	a, err := PackDisks([]Item{{ID: 0, Size: 0, Load: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumDisks != 1 {
		t.Fatalf("zero item should occupy one disk: %+v", a)
	}
}

// TestKnownInstanceNoEviction walks a hand-traced execution of
// Algorithm 3 on four items where no overflow occurs.
func TestKnownInstanceNoEviction(t *testing.T) {
	// A,B size-intensive (s~ = 0.4, 0.3); C,D load-intensive
	// (l~ = 0.5, 0.4). Trace: disk0 = {C, A} closes complete,
	// disk1 = {D, B} closes complete.
	items := []Item{
		{ID: 0, Size: 0.6, Load: 0.2}, // A
		{ID: 1, Size: 0.5, Load: 0.2}, // B
		{ID: 2, Size: 0.2, Load: 0.7}, // C
		{ID: 3, Size: 0.1, Load: 0.5}, // D
	}
	a, err := PackDisks(items)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 0, 1}
	if a.NumDisks != 2 {
		t.Fatalf("NumDisks=%d want 2 (DiskOf=%v)", a.NumDisks, a.DiskOf)
	}
	for i, w := range want {
		if a.DiskOf[i] != w {
			t.Fatalf("DiskOf=%v want %v", a.DiskOf, want)
		}
	}
}

// TestKnownInstanceWithEviction forces the overflow branch: the disk
// accumulates size, then a load-intensive element overflows the size
// dimension, evicting the most recent s-list element (Lemma 1), after
// which the disk is complete (Lemma 3).
func TestKnownInstanceWithEviction(t *testing.T) {
	items := []Item{
		{ID: 0, Size: 0.5, Load: 0.01},  // a: size-intensive, s~=0.49
		{ID: 1, Size: 0.45, Load: 0.02}, // b: size-intensive, s~=0.43
		{ID: 2, Size: 0.01, Load: 0.3},  // c: load-intensive, l~=0.29
		{ID: 3, Size: 0.51, Load: 0.6},  // d: load-intensive, l~=0.09
	}
	a, err := PackDisks(items)
	if err != nil {
		t.Fatal(err)
	}
	// Trace: disk0 takes c, then a (S=.51,L=.31); d overflows size
	// (1.02 > 1) so a is evicted and d inserted -> disk0={c,d} closes.
	// Remaining size-intensive a,b fill disk1.
	want := []int{1, 1, 0, 0}
	if a.NumDisks != 2 {
		t.Fatalf("NumDisks=%d want 2 (DiskOf=%v)", a.NumDisks, a.DiskOf)
	}
	for i, w := range want {
		if a.DiskOf[i] != w {
			t.Fatalf("DiskOf=%v want %v", a.DiskOf, want)
		}
	}
	// The evicted element must have landed on a different disk than d.
	if a.DiskOf[0] == a.DiskOf[3] {
		t.Error("evicted item repacked onto same disk")
	}
}

func TestChangHwangParkSameInstances(t *testing.T) {
	items := []Item{
		{ID: 0, Size: 0.5, Load: 0.01},
		{ID: 1, Size: 0.45, Load: 0.02},
		{ID: 2, Size: 0.01, Load: 0.3},
		{ID: 3, Size: 0.51, Load: 0.6},
	}
	a, err := ChangHwangPark(items)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumDisks != 2 {
		t.Fatalf("CHP NumDisks=%d want 2", a.NumDisks)
	}
	if err := a.CheckFeasible(items, false); err != nil {
		t.Fatal(err)
	}
}

func TestValidateItemsRejectsBadInput(t *testing.T) {
	bad := [][]Item{
		{{Size: -0.1, Load: 0.5}},
		{{Size: 0.5, Load: -0.1}},
		{{Size: 1.1, Load: 0.5}},
		{{Size: 0.5, Load: 1.1}},
		{{Size: math.NaN(), Load: 0.5}},
	}
	for i, items := range bad {
		if _, err := PackDisks(items); err == nil {
			t.Errorf("case %d: PackDisks accepted invalid item", i)
		}
		if _, err := ChangHwangPark(items); err == nil {
			t.Errorf("case %d: ChangHwangPark accepted invalid item", i)
		}
		if _, err := FirstFit(items); err == nil {
			t.Errorf("case %d: FirstFit accepted invalid item", i)
		}
	}
}

func TestRhoAndLowerBound(t *testing.T) {
	items := []Item{{Size: 0.3, Load: 0.6}, {Size: 0.5, Load: 0.1}}
	if got := Rho(items); got != 0.6 {
		t.Errorf("Rho=%v want 0.6", got)
	}
	if got := LowerBound(items); got != 0.8 {
		t.Errorf("LowerBound=%v want 0.8 (sizes)", got)
	}
	if got := LowerBoundDisks(items); got != 1 {
		t.Errorf("LowerBoundDisks=%v want 1", got)
	}
	if got := Rho(nil); got != 0 {
		t.Errorf("Rho(nil)=%v want 0", got)
	}
	if got := LowerBoundDisks(nil); got != 0 {
		t.Errorf("LowerBoundDisks(nil)=%v want 0", got)
	}
}

func TestApproxBoundInfiniteAtRhoOne(t *testing.T) {
	if !math.IsInf(ApproxBound([]Item{{Size: 1, Load: 0}}), 1) {
		t.Error("ApproxBound should be +Inf at rho=1")
	}
}

// randInstance generates n items with components in (0, rhoMax].
func randInstance(rng *rand.Rand, n int, rhoMax float64) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			ID:   i,
			Size: rng.Float64() * rhoMax,
			Load: rng.Float64() * rhoMax,
		}
	}
	return items
}

// skewedInstance mimics the paper's workload: small popular files
// (load-intensive) plus big cold files (size-intensive).
func skewedInstance(rng *rand.Rand, n int, rhoMax float64) []Item {
	items := make([]Item, n)
	for i := range items {
		if rng.Intn(2) == 0 {
			items[i] = Item{ID: i, Size: rng.Float64() * rhoMax * 0.2, Load: rng.Float64() * rhoMax}
		} else {
			items[i] = Item{ID: i, Size: rng.Float64() * rhoMax, Load: rng.Float64() * rhoMax * 0.1}
		}
	}
	return items
}

func checkPartition(t *testing.T, a *Assignment, n int) {
	t.Helper()
	if len(a.DiskOf) != n {
		t.Fatalf("assignment covers %d items want %d", len(a.DiskOf), n)
	}
	counts := make([]int, a.NumDisks)
	for _, d := range a.DiskOf {
		if d < 0 || d >= a.NumDisks {
			t.Fatalf("invalid disk %d", d)
		}
		counts[d]++
	}
	for d, c := range counts {
		if c == 0 {
			t.Fatalf("disk %d is empty — packing wasted a bin", d)
		}
	}
}

// TestPackDisksBoundProperty is the Theorem 1 check: over random
// instances, C_PD <= 1 + LB/(1-rho), with LB <= C*.
func TestPackDisksBoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(200)
		rhoMax := 0.05 + rng.Float64()*0.9
		var items []Item
		if trial%2 == 0 {
			items = randInstance(rng, n, rhoMax)
		} else {
			items = skewedInstance(rng, n, rhoMax)
		}
		a, err := PackDisks(items)
		if err != nil {
			t.Fatal(err)
		}
		checkPartition(t, a, n)
		if err := a.CheckFeasible(items, false); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if bound := ApproxBound(items); float64(a.NumDisks) > bound+feasEps {
			t.Fatalf("trial %d: NumDisks=%d exceeds Theorem 1 bound %v (rho=%v, LB=%v)",
				trial, a.NumDisks, bound, Rho(items), LowerBound(items))
		}
	}
}

func TestChangHwangParkBoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(120)
		items := randInstance(rng, n, 0.05+rng.Float64()*0.9)
		a, err := ChangHwangPark(items)
		if err != nil {
			t.Fatal(err)
		}
		checkPartition(t, a, n)
		if err := a.CheckFeasible(items, false); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if bound := ApproxBound(items); float64(a.NumDisks) > bound+feasEps {
			t.Fatalf("trial %d: CHP NumDisks=%d exceeds bound %v", trial, a.NumDisks, bound)
		}
	}
}

// TestPackDisksCloseToChangHwangPark: the two algorithms implement the
// same packing policy (differing only in which eviction candidate they
// choose), so disk counts should agree closely.
func TestPackDisksCloseToChangHwangPark(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		items := randInstance(rng, 100+rng.Intn(100), 0.3)
		a, _ := PackDisks(items)
		b, _ := ChangHwangPark(items)
		diff := a.NumDisks - b.NumDisks
		if diff < 0 {
			diff = -diff
		}
		if diff > 1+a.NumDisks/10 {
			t.Errorf("trial %d: PackDisks=%d CHP=%d differ by more than 10%%",
				trial, a.NumDisks, b.NumDisks)
		}
	}
}

func TestPackDisksV1MatchesPackDisks(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		items := randInstance(rng, 1+rng.Intn(150), 0.05+rng.Float64()*0.9)
		a, err := PackDisks(items)
		if err != nil {
			t.Fatal(err)
		}
		b, err := PackDisksV(items, 1)
		if err != nil {
			t.Fatal(err)
		}
		if a.NumDisks != b.NumDisks {
			t.Fatalf("trial %d: v=1 NumDisks=%d vs PackDisks=%d", trial, b.NumDisks, a.NumDisks)
		}
		for i := range a.DiskOf {
			if a.DiskOf[i] != b.DiskOf[i] {
				t.Fatalf("trial %d: v=1 assignment differs at %d", trial, i)
			}
		}
	}
}

func TestPackDisksVFeasibleAllGroupSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for v := 1; v <= 8; v++ {
		for trial := 0; trial < 30; trial++ {
			n := 1 + rng.Intn(200)
			items := randInstance(rng, n, 0.05+rng.Float64()*0.9)
			a, err := PackDisksV(items, v)
			if err != nil {
				t.Fatal(err)
			}
			checkPartition(t, a, n)
			if err := a.CheckFeasible(items, false); err != nil {
				t.Fatalf("v=%d trial %d: %v", v, trial, err)
			}
			// The group variant may waste part of the final group
			// but must stay within bound + v slack.
			if bound := ApproxBound(items) + float64(v); float64(a.NumDisks) > bound {
				t.Fatalf("v=%d trial %d: NumDisks=%d exceeds %v", v, trial, a.NumDisks, bound)
			}
		}
	}
}

// TestPackDisksVSpreadsBatches verifies the design goal of Section 3.2:
// a batch of equal-size files lands on v different disks rather than
// one.
func TestPackDisksVSpreadsBatches(t *testing.T) {
	// 16 near-identical load-intensive files (loads strictly
	// decreasing so heap pop order is deterministic); each disk holds
	// at most 4 by load. PackDisks fills disk-by-disk; PackDisksV(4)
	// round-robins.
	var items []Item
	for i := 0; i < 16; i++ {
		items = append(items, Item{ID: i, Size: 0.01, Load: 0.25 - float64(i)*1e-6})
	}
	seq, err := PackDisks(items)
	if err != nil {
		t.Fatal(err)
	}
	grp, err := PackDisksV(items, 4)
	if err != nil {
		t.Fatal(err)
	}
	// First four files: sequential packing puts them all on disk 0.
	for i := 1; i < 4; i++ {
		if seq.DiskOf[i] != seq.DiskOf[0] {
			t.Fatalf("PackDisks should cluster the first batch: %v", seq.DiskOf[:4])
		}
	}
	// Group packing must spread them across 4 distinct disks.
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		seen[grp.DiskOf[i]] = true
	}
	if len(seen) != 4 {
		t.Fatalf("PackDisksV(4) put first batch on %d disks, want 4: %v", len(seen), grp.DiskOf[:4])
	}
}

func TestPackDisksVInvalidGroupSize(t *testing.T) {
	if _, err := PackDisksV([]Item{{Size: 0.1, Load: 0.1}}, 0); err == nil {
		t.Error("v=0 accepted")
	}
	if _, err := PackDisksV([]Item{{Size: 0.1, Load: 0.1}}, -3); err == nil {
		t.Error("v=-3 accepted")
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	items := randInstance(rng, 500, 0.4)
	a, _ := PackDisks(items)
	b, _ := PackDisks(items)
	for i := range a.DiskOf {
		if a.DiskOf[i] != b.DiskOf[i] {
			t.Fatal("PackDisks is not deterministic")
		}
	}
}

func TestAllSizeIntensive(t *testing.T) {
	var items []Item
	for i := 0; i < 10; i++ {
		items = append(items, Item{ID: i, Size: 0.3, Load: 0.1})
	}
	a, err := PackDisks(items)
	if err != nil {
		t.Fatal(err)
	}
	// 10 * 0.3 size = 3.0 -> at least 4 disks of 3 items plus 1.
	if a.NumDisks != 4 {
		t.Fatalf("NumDisks=%d want 4 (3 items per disk + remainder)", a.NumDisks)
	}
	if err := a.CheckFeasible(items, false); err != nil {
		t.Fatal(err)
	}
}

func TestAllLoadIntensive(t *testing.T) {
	var items []Item
	for i := 0; i < 10; i++ {
		items = append(items, Item{ID: i, Size: 0.05, Load: 0.5})
	}
	a, err := PackDisks(items)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumDisks != 5 {
		t.Fatalf("NumDisks=%d want 5 (2 items per disk by load)", a.NumDisks)
	}
}

func TestFullSizeItems(t *testing.T) {
	items := []Item{{ID: 0, Size: 1, Load: 0}, {ID: 1, Size: 1, Load: 0}}
	a, err := PackDisks(items)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumDisks != 2 {
		t.Fatalf("NumDisks=%d want 2", a.NumDisks)
	}
}

func TestFullLoadItems(t *testing.T) {
	items := []Item{{ID: 0, Size: 0, Load: 1}, {ID: 1, Size: 0, Load: 1}}
	a, err := PackDisks(items)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumDisks != 2 {
		t.Fatalf("NumDisks=%d want 2", a.NumDisks)
	}
}

func TestDisksAndTotals(t *testing.T) {
	items := []Item{
		{ID: 0, Size: 0.6, Load: 0.2},
		{ID: 1, Size: 0.5, Load: 0.2},
		{ID: 2, Size: 0.2, Load: 0.7},
		{ID: 3, Size: 0.1, Load: 0.5},
	}
	a, _ := PackDisks(items)
	disks := a.Disks()
	if len(disks) != a.NumDisks {
		t.Fatalf("Disks() returned %d groups want %d", len(disks), a.NumDisks)
	}
	total := 0
	for _, g := range disks {
		total += len(g)
	}
	if total != len(items) {
		t.Fatalf("Disks() covers %d items want %d", total, len(items))
	}
	sizes, loads := a.Totals(items)
	var ss, ll float64
	for d := range sizes {
		ss += sizes[d]
		ll += loads[d]
	}
	if math.Abs(ss-1.4) > 1e-12 || math.Abs(ll-1.6) > 1e-12 {
		t.Fatalf("totals don't conserve mass: sizes=%v loads=%v", ss, ll)
	}
}

func TestFirstFitAndFriendsFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	algos := map[string]func([]Item) (*Assignment, error){
		"FirstFit":           FirstFit,
		"BestFit":            BestFit,
		"FirstFitDecreasing": FirstFitDecreasing,
	}
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(150)
		items := randInstance(rng, n, 0.05+rng.Float64()*0.9)
		for name, algo := range algos {
			a, err := algo(items)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			checkPartition(t, a, n)
			if err := a.CheckFeasible(items, false); err != nil {
				t.Fatalf("%s trial %d: %v", name, trial, err)
			}
		}
	}
}

func TestFFDBeatsOrMatchesFirstFitUsually(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ffWins := 0
	for trial := 0; trial < 50; trial++ {
		items := randInstance(rng, 200, 0.5)
		ff, _ := FirstFit(items)
		ffd, _ := FirstFitDecreasing(items)
		if ff.NumDisks < ffd.NumDisks {
			ffWins++
		}
	}
	if ffWins > 10 {
		t.Errorf("plain FirstFit beat FFD in %d/50 trials — suspicious", ffWins)
	}
}

func TestRandomAssignUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	items := randInstance(rng, 10000, 0.001)
	a, err := RandomAssign(items, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumDisks != 10 {
		t.Fatalf("NumDisks=%d want 10", a.NumDisks)
	}
	counts := make([]int, 10)
	for _, d := range a.DiskOf {
		counts[d]++
	}
	for d, c := range counts {
		if c < 800 || c > 1200 {
			t.Errorf("disk %d got %d items, expected ~1000", d, c)
		}
	}
}

func TestRandomAssignInvalidDisks(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	if _, err := RandomAssign(nil, 0, rng); err == nil {
		t.Error("0 disks accepted")
	}
	if _, err := RandomAssignCapacity(nil, 0, rng); err == nil {
		t.Error("0 disks accepted by capacity variant")
	}
}

func TestRandomAssignCapacityRespectsSize(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// 40 items of size 0.3: needs >= 12 units, give 15 disks.
	var items []Item
	for i := 0; i < 40; i++ {
		items = append(items, Item{ID: i, Size: 0.3, Load: 0.9})
	}
	a, err := RandomAssignCapacity(items, 15, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckFeasible(items, true); err != nil {
		t.Fatal(err)
	}
	// Load is deliberately ignored by this allocator.
	_, loads := a.Totals(items)
	high := false
	for _, l := range loads {
		if l > 1 {
			high = true
		}
	}
	if !high {
		t.Log("note: no disk exceeded load 1 — acceptable but unusual for this instance")
	}
}

func TestRandomAssignCapacityReportsOverflow(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var items []Item
	for i := 0; i < 5; i++ {
		items = append(items, Item{ID: i, Size: 0.9, Load: 0})
	}
	_, err := RandomAssignCapacity(items, 4, rng)
	if !errors.Is(err, ErrDoesNotFit) {
		t.Fatalf("err=%v want ErrDoesNotFit", err)
	}
}

func TestBuildItems(t *testing.T) {
	serviceTime := func(size int64) float64 { return float64(size) / 72e6 }
	sizes := []int64{720e6, 72e6}
	rates := []float64{0.01, 0.05}
	items, err := BuildItems(sizes, rates, serviceTime, 500e9, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(items[0].Size-720e6/500e9) > 1e-15 {
		t.Errorf("size[0]=%v", items[0].Size)
	}
	// load = rate * serviceTime / capL = 0.01 * 10 / 0.8 = 0.125
	if math.Abs(items[0].Load-0.125) > 1e-12 {
		t.Errorf("load[0]=%v want 0.125", items[0].Load)
	}
	if items[0].ID != 0 || items[1].ID != 1 {
		t.Error("IDs not assigned in order")
	}
}

func TestBuildItemsErrors(t *testing.T) {
	st := func(size int64) float64 { return 1 }
	if _, err := BuildItems([]int64{1}, []float64{1, 2}, st, 10, 1); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := BuildItems([]int64{1}, []float64{1}, st, 0, 1); err == nil {
		t.Error("zero capS accepted")
	}
	if _, err := BuildItems([]int64{100}, []float64{0.1}, st, 10, 1); err == nil {
		t.Error("oversize file accepted")
	}
	if _, err := BuildItems([]int64{1}, []float64{100}, st, 10, 1); err == nil {
		t.Error("overload file accepted")
	}
}

// Property: PackDisks never opens more disks than items, and uses at
// least the integral lower bound.
func TestDiskCountSandwichProperty(t *testing.T) {
	prop := func(seed int64, nRaw uint8, rhoRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%150 + 1
		rhoMax := 0.05 + float64(rhoRaw%90)/100.0
		items := randInstance(rng, n, rhoMax)
		a, err := PackDisks(items)
		if err != nil {
			return false
		}
		return a.NumDisks <= n && a.NumDisks >= LowerBoundDisks(items)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: duplicating every item at most doubles (+1) the disks used.
func TestDuplicationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		items := randInstance(rng, 50+rng.Intn(50), 0.4)
		doubled := append(append([]Item{}, items...), items...)
		for i := range doubled {
			doubled[i].ID = i
		}
		a, _ := PackDisks(items)
		b, _ := PackDisks(doubled)
		if b.NumDisks > 2*a.NumDisks+2 {
			t.Fatalf("doubling items exploded disks: %d -> %d", a.NumDisks, b.NumDisks)
		}
	}
}

func BenchmarkPackDisks1k(b *testing.B)  { benchPack(b, PackDisks, 1000) }
func BenchmarkPackDisks10k(b *testing.B) { benchPack(b, PackDisks, 10000) }
func BenchmarkPackDisks40k(b *testing.B) { benchPack(b, PackDisks, 40000) }

func BenchmarkChangHwangPark1k(b *testing.B)  { benchPack(b, ChangHwangPark, 1000) }
func BenchmarkChangHwangPark10k(b *testing.B) { benchPack(b, ChangHwangPark, 10000) }

func BenchmarkPackDisksV4_10k(b *testing.B) {
	benchPack(b, func(items []Item) (*Assignment, error) { return PackDisksV(items, 4) }, 10000)
}

func benchPack(b *testing.B, algo func([]Item) (*Assignment, error), n int) {
	rng := rand.New(rand.NewSource(99))
	items := skewedInstance(rng, n, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := algo(items); err != nil {
			b.Fatal(err)
		}
	}
}
