// Package coord is the work-stealing sweep coordinator: the elastic
// alternative to static shard manifests (farm.Shard) for running one
// grid across a pool of machines that may join, straggle, or die
// mid-run.
//
// A coordinator (New / Serve) compiles a farm.Sweep into a point queue
// and serves it over HTTP. Pull-based workers (Work) lease points one
// slot at a time, execute them with the exact per-point seeding
// farm.RunSweep uses, and stream every completed point back
// immediately. Leases expire and re-queue, so a dead or slow worker's
// points are simply handed to whoever asks next; duplicate submissions
// are idempotent (each point is a pure function of spec and seed, so
// any two answers agree). Completed points are journaled to disk
// incrementally, so a coordinator restart loses at most the point
// being written. When the queue drains, the assembled report is
// byte-identical to the single-process farm.RunSweep of the same
// (sweep, seed) — whatever the worker count, interleaving, or failure
// history.
package coord

import (
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"diskpack/internal/farm"
	"diskpack/internal/obs"
)

// Defaults for the zero Config values.
const (
	DefaultLeaseTimeout = time.Minute
	DefaultBatchSize    = 4
	DefaultLinger       = 2 * time.Second
)

// MinLeaseTimeout is the shortest lease a coordinator accepts. Workers
// heartbeat at a third of the lease but no faster than heartbeatFloor,
// so a shorter lease could never be renewed — every in-flight point
// would expire and re-queue mid-run, thrashing the pool with duplicate
// work.
const MinLeaseTimeout = 3 * heartbeatFloor

// Config parameterizes a coordinator.
type Config struct {
	// LeaseTimeout is how long a leased point may go without a
	// heartbeat or submission before it re-queues for other workers.
	// Zero means DefaultLeaseTimeout; negative is rejected.
	LeaseTimeout time.Duration
	// BatchSize caps the points handed out per lease request. Zero
	// means DefaultBatchSize; values below 1 are rejected.
	BatchSize int
	// JournalPath, when non-empty, appends every completed point to a
	// crash journal (farm.PointJournal). A coordinator restarted on the
	// same journal resumes with those points already done.
	JournalPath string
	// Linger is how long Serve keeps answering after the grid drains,
	// so workers between polls read their Done instead of a vanished
	// listener. Zero means DefaultLinger; negative is rejected.
	Linger time.Duration
	// Token, when non-empty, requires every protocol request to carry
	// "Authorization: Bearer <Token>" (compared in constant time;
	// mismatches get 401) — the shared secret that lets a pool cross a
	// trust boundary. Transport privacy is still the deployment's
	// problem: put TLS in front for hostile networks.
	Token string
	// FixedBatch disables adaptive lease sizing: every lease hands out
	// up to BatchSize points regardless of how long points are taking.
	// By default the coordinator sizes leases by an EWMA of observed
	// per-point wall time, so a batch is expected to finish within half
	// a lease — on grids with strong cost gradients a fixed batch near
	// the expensive corner outlives its lease and thrashes as expired
	// re-leases. BatchSize remains the hard cap either way.
	FixedBatch bool
	// OnListen, when non-nil, is called by Serve once the listener is
	// bound — how callers learn the actual address of ":0".
	OnListen func(addr net.Addr)
	// Spans, when non-nil, receives one grant span per lease attempt:
	// granted→submitted (ok), granted→stolen, or left open and closed
	// aborted when the recorder shuts down. Observation-only — results
	// are byte-identical with or without it. The coordinator writes
	// the header itself (Track "coordinator").
	Spans *obs.SpanRecorder
}

// batchLeaseFraction is the lease fraction an adaptively sized batch
// is expected to fill: half, leaving renewal slack for heartbeats and
// per-point variance.
const batchLeaseFraction = 0.5

// validate applies defaults and rejects out-of-range values loudly.
func (c *Config) validate() error {
	if c.LeaseTimeout == 0 {
		c.LeaseTimeout = DefaultLeaseTimeout
	}
	if c.LeaseTimeout < MinLeaseTimeout {
		return fmt.Errorf("coord: lease timeout %v: valid values are >= %v — workers heartbeat at a third of the lease, no faster than every %v (or 0 for the default %v)",
			c.LeaseTimeout, MinLeaseTimeout, heartbeatFloor, DefaultLeaseTimeout)
	}
	if c.BatchSize == 0 {
		c.BatchSize = DefaultBatchSize
	}
	if c.BatchSize < 1 {
		return fmt.Errorf("coord: batch size %d: valid values are >= 1 (or 0 for the default %d)", c.BatchSize, DefaultBatchSize)
	}
	if c.Linger == 0 {
		c.Linger = DefaultLinger
	}
	if c.Linger < 0 {
		return fmt.Errorf("coord: linger %v: valid values are > 0 (or 0 for the default %v)", c.Linger, DefaultLinger)
	}
	return nil
}

// Wire types of the /v1 protocol. Points travel as farm.ShardPoint and
// farm.ShardPointResult — the same descriptors shard manifests use —
// so a worker cross-checks leased work against its own compiled grid
// exactly as RunShard cross-checks a manifest.
type (
	// Job is the GET /v1/sweep response: everything a joining worker
	// needs to compile the grid locally.
	Job struct {
		Seed  int64
		Sweep farm.Sweep
	}
	// LeaseRequest asks for up to Max points (the coordinator caps it
	// at its batch size; Max <= 0 means "coordinator's choice").
	LeaseRequest struct {
		Worker string
		Max    int
	}
	// LeaseResponse grants points. Empty Points with Done=false means
	// everything is leased out elsewhere — poll again; Done=true means
	// the grid is complete and the worker can exit.
	LeaseResponse struct {
		Points []farm.ShardPoint
		// Attempts runs parallel to Points: the global lease attempt
		// number of each grant (1 on the first lease, higher after
		// expiries). Span IDs derive from it, so every process that
		// touches the same attempt logs the same identity. Absent from
		// pre-span coordinators; workers fall back to attempt 0.
		Attempts     []int `json:",omitempty"`
		LeaseSeconds float64
		Done         bool
	}
	// HeartbeatRequest extends the leases this worker still holds.
	HeartbeatRequest struct {
		Worker  string
		Indexes []int
	}
	// HeartbeatResponse lists the points no longer leased to the caller
	// (expired and possibly re-leased). Informational: a client that
	// can abort work may stop computing them; the reference worker
	// finishes and submits anyway, since submits are idempotent and
	// first-write-wins means a finished result may still land.
	HeartbeatResponse struct {
		Dropped []int
	}
	// SubmitRequest streams one completed point back.
	SubmitRequest struct {
		Worker string
		Point  farm.ShardPointResult
	}
	// SubmitResponse acknowledges a submission. Duplicate means the
	// point was already complete (the submission was discarded —
	// harmlessly, results being pure). Done means the grid drained.
	SubmitResponse struct {
		Duplicate bool
		Done      bool
	}
	// FailRequest reports a point whose execution failed. Points are
	// pure functions of (spec, seed), so one worker's failure is every
	// worker's failure: the coordinator fails the run loudly instead of
	// re-leasing the poison point forever to a pool that drains away.
	FailRequest struct {
		Worker string
		Index  int
		Error  string
	}
	// Status is the GET /v1/status response: queue counters plus the
	// adaptive-batch observables (EwmaPointSeconds is 0 until the
	// first submission lands; Batch is the current lease cap).
	// Expired counts leases that timed out and were stolen by another
	// worker; Duplicates counts submissions of already-done points —
	// both benign by design, but a climbing rate is the first sign of
	// a stuck or thrashing pool, so they are surfaced here and on
	// /metrics rather than swallowed.
	Status struct {
		Total, Done, Leased, Pending, Recovered int
		Expired, Duplicates                     int
		EwmaPointSeconds                        float64
		Batch                                   int
		// LiveWorkers counts workers holding a live lease or heard
		// from within one lease timeout; MaxLeaseAgeSeconds is the age
		// of the oldest live lease. Both also surface on /metrics.
		LiveWorkers        int
		MaxLeaseAgeSeconds float64
		// Workers names every worker the coordinator has heard from,
		// sorted by name, with its in-flight points — stuck-worker
		// diagnosis straight from curl /v1/status.
		Workers []WorkerStatus
	}
	// WorkerStatus is one worker's row in Status.Workers.
	WorkerStatus struct {
		Name string
		// Points lists the labels of points under a live lease held by
		// this worker, in grid order.
		Points []string
		// OldestLeaseAgeSeconds is the age of the worker's oldest live
		// lease (0 when it holds none).
		OldestLeaseAgeSeconds float64
		// LastContactSeconds is how long ago the worker last made any
		// protocol call.
		LastContactSeconds float64
	}
)

// pointStatus is a queue entry's lifecycle stage.
type pointStatus uint8

const (
	statusPending pointStatus = iota
	statusLeased
	statusDone
)

// pointState tracks one grid point through the queue.
type pointState struct {
	status   pointStatus
	worker   string
	deadline time.Time
	// grantedAt is when the live lease was handed out — the submit
	// that completes the point turns it into a wall-time observation
	// for adaptive batch sizing.
	grantedAt time.Time
	// attempts counts lease grants for this point; it is the global
	// attempt number span IDs derive from.
	attempts int
}

// Coordinator owns a compiled grid's point queue and its HTTP
// protocol. Create with New, expose Handler on a server (or use Serve,
// which bundles both), and Wait for the assembled result.
type Coordinator struct {
	cfg  Config
	comp *farm.CompiledSweep

	mu        sync.Mutex
	state     []pointState
	results   []farm.ShardPointResult
	pending   int // points not yet done
	journal   *farm.PointJournal
	recovered int
	failed    error // terminal fault (journal write failure)
	done      chan struct{}
	// ewmaSec is the exponentially weighted average of observed
	// per-point wall seconds (0 until the first submission); it sizes
	// lease batches unless cfg.FixedBatch.
	ewmaSec float64

	// journalMu serializes journal appends outside mu, so an fsync
	// never stalls leases, heartbeats, or status reads.
	journalMu sync.Mutex

	// now is the clock, a test seam.
	now func() time.Time

	// Observability. fp is the sweep fingerprint span IDs derive
	// from; start is the time origin grant spans measure against;
	// spans is the optional recorder (nil-safe); lastContact tracks
	// each worker's most recent protocol call for Status.Workers and
	// the liveness gauge.
	fp          string
	start       time.Time
	spans       *obs.SpanRecorder
	lastContact map[string]time.Time

	// Protocol metrics, served at GET /metrics in Prometheus text
	// format. Per-worker counters make a stuck worker visible without
	// a journal autopsy: its leases climb while its submits do not.
	reg         *obs.Registry
	mLeases     *obs.CounterVec
	mExpired    *obs.CounterVec
	mSubmits    *obs.CounterVec
	mDuplicates *obs.CounterVec
	gDone       *obs.Gauge
	gLeased     *obs.Gauge
	gPending    *obs.Gauge
	gEwma       *obs.Gauge
	gLeaseAge   *obs.Gauge
	gLive       *obs.Gauge
	hPoint      *obs.Histogram
	hFsync      *obs.Histogram
}

// New compiles the sweep and builds the point queue, recovering any
// previously journaled points when cfg.JournalPath names an existing
// journal of the same (sweep, seed).
func New(sweep farm.Sweep, seed int64, cfg Config) (*Coordinator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// The grid must survive the wire: a custom axis cannot reach a
	// worker, the same restriction shard manifests carry.
	if err := farm.Shardable(sweep); err != nil {
		return nil, err
	}
	comp, err := farm.Compile(sweep, seed)
	if err != nil {
		return nil, err
	}
	co := &Coordinator{
		cfg:         cfg,
		comp:        comp,
		state:       make([]pointState, comp.NumPoints()),
		results:     make([]farm.ShardPointResult, comp.NumPoints()),
		pending:     comp.NumPoints(),
		done:        make(chan struct{}),
		now:         time.Now,
		fp:          comp.Fingerprint(),
		start:       time.Now(),
		spans:       cfg.Spans,
		lastContact: make(map[string]time.Time),
		reg:         obs.NewRegistry(),
	}
	co.mLeases = co.reg.NewCounterVec("coord_leases_total", "points leased, by worker", "worker")
	co.mExpired = co.reg.NewCounterVec("coord_lease_expiries_total", "leases that expired and were stolen, by the worker that lost them", "worker")
	co.mSubmits = co.reg.NewCounterVec("coord_submits_total", "points accepted, by worker", "worker")
	co.mDuplicates = co.reg.NewCounterVec("coord_duplicate_submits_total", "submissions of already-done points, by worker", "worker")
	co.gDone = co.reg.NewGauge("coord_points_done", "points completed")
	co.gLeased = co.reg.NewGauge("coord_points_leased", "points under a live lease")
	co.gPending = co.reg.NewGauge("coord_points_pending", "points waiting for a lease")
	co.gEwma = co.reg.NewGauge("coord_point_seconds_ewma", "EWMA of observed per-point wall seconds")
	co.gLeaseAge = co.reg.NewGauge("coord_lease_age_max_seconds", "age of the oldest live lease")
	co.gLive = co.reg.NewGauge("coord_workers_live", "workers holding a live lease or heard from within one lease timeout")
	co.hPoint = co.reg.NewHistogram("coord_point_seconds", "lease-grant to accepted-submit wall seconds per point",
		[]float64{0.01, 0.05, 0.25, 1, 5, 30, 120})
	co.hFsync = co.reg.NewHistogram("coord_journal_fsync_seconds", "journal append+fsync wall seconds",
		[]float64{0.0005, 0.002, 0.01, 0.05, 0.25, 1})
	if co.spans != nil {
		if err := co.spans.Start(obs.SpanHeader{
			Track: "coordinator", Role: "coordinator", SweepHash: co.fp,
			Seed: seed, Points: comp.NumPoints(), StartUnixNano: co.start.UnixNano(),
		}); err != nil {
			return nil, err
		}
	}
	if cfg.JournalPath != "" {
		journal, points, err := farm.OpenPointJournal(cfg.JournalPath, sweep, seed)
		if err != nil {
			return nil, err
		}
		for _, pr := range points {
			if err := comp.CheckResult(pr); err != nil {
				journal.Close()
				return nil, fmt.Errorf("coord: journal %s: %w — delete it to start over", cfg.JournalPath, err)
			}
			if co.state[pr.Index].status == statusDone {
				continue
			}
			co.state[pr.Index].status = statusDone
			co.results[pr.Index] = pr
			co.pending--
			co.recovered++
		}
		co.journal = journal
	}
	if co.pending == 0 {
		close(co.done)
	}
	return co, nil
}

// Recovered reports how many points the journal restored at startup.
func (co *Coordinator) Recovered() int {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.recovered
}

// Status returns the queue counters.
func (co *Coordinator) Status() Status {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.statusLocked()
}

func (co *Coordinator) statusLocked() Status {
	s := Status{
		Total:            len(co.state),
		Recovered:        co.recovered,
		Expired:          int(co.mExpired.Total()),
		Duplicates:       int(co.mDuplicates.Total()),
		EwmaPointSeconds: co.ewmaSec,
		Batch:            co.batchLocked(),
	}
	now := co.now()
	// Per-worker rows: in-flight labels and lease ages for every
	// worker that holds a live lease, merged with last-contact times
	// for every worker ever heard from.
	rows := make(map[string]*WorkerStatus, len(co.lastContact))
	row := func(name string) *WorkerStatus {
		ws := rows[name]
		if ws == nil {
			ws = &WorkerStatus{Name: name}
			rows[name] = ws
		}
		return ws
	}
	for i := range co.state {
		st := &co.state[i]
		switch {
		case st.status == statusDone:
			s.Done++
		case st.status == statusLeased && now.Before(st.deadline):
			s.Leased++
			age := now.Sub(st.grantedAt).Seconds()
			if age < 0 {
				age = 0
			}
			if age > s.MaxLeaseAgeSeconds {
				s.MaxLeaseAgeSeconds = age
			}
			ws := row(st.worker)
			ws.Points = append(ws.Points, co.comp.Label(i))
			if age > ws.OldestLeaseAgeSeconds {
				ws.OldestLeaseAgeSeconds = age
			}
		default:
			s.Pending++
		}
	}
	for name, at := range co.lastContact {
		ws := row(name)
		if since := now.Sub(at).Seconds(); since > 0 {
			ws.LastContactSeconds = since
		}
	}
	s.Workers = make([]WorkerStatus, 0, len(rows))
	for _, ws := range rows {
		// Live: a current lease, or any contact within one lease
		// timeout — a worker between lease polls is not dead.
		if len(ws.Points) > 0 || ws.LastContactSeconds <= co.cfg.LeaseTimeout.Seconds() {
			s.LiveWorkers++
		}
		s.Workers = append(s.Workers, *ws)
	}
	sort.Slice(s.Workers, func(i, j int) bool { return s.Workers[i].Name < s.Workers[j].Name })
	return s
}

// touchLocked records a worker's protocol contact (callers hold mu).
func (co *Coordinator) touchLocked(worker string, now time.Time) {
	if worker != "" {
		co.lastContact[worker] = now
	}
}

// Wait blocks until every point is done (or the context is cancelled,
// or the coordinator failed terminally) and assembles the final
// result — byte-identical to farm.RunSweep of the same sweep and seed.
func (co *Coordinator) Wait(ctx context.Context) (*farm.SweepResult, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-co.done:
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.failed != nil {
		return nil, co.failed
	}
	return co.comp.Assemble(co.results)
}

// Close releases the journal (the file stays on disk for a restart; the
// caller removes it once the final result is persisted elsewhere).
func (co *Coordinator) Close() error {
	co.mu.Lock()
	journal := co.journal
	co.journal = nil
	co.mu.Unlock()
	if journal == nil {
		return nil
	}
	// Taking journalMu waits out any in-flight append before the file
	// closes under it.
	co.journalMu.Lock()
	defer co.journalMu.Unlock()
	return journal.Close()
}

// RemoveJournal closes and deletes the journal file — call it after the
// final result has been persisted elsewhere. A journal already gone
// (an operator or a tmp cleaner beat us to it) is not an error.
func (co *Coordinator) RemoveJournal() error {
	if co.cfg.JournalPath == "" {
		return nil
	}
	co.Close()
	if err := os.Remove(co.cfg.JournalPath); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	return nil
}

// Handler returns the coordinator's HTTP protocol surface. With
// Config.Token set, every route demands the bearer token first.
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/sweep", co.handleSweep)
	mux.HandleFunc("POST /v1/lease", co.handleLease)
	mux.HandleFunc("POST /v1/heartbeat", co.handleHeartbeat)
	mux.HandleFunc("POST /v1/submit", co.handleSubmit)
	mux.HandleFunc("POST /v1/fail", co.handleFail)
	mux.HandleFunc("GET /v1/status", co.handleStatus)
	mux.HandleFunc("GET /metrics", co.handleMetrics)
	if co.cfg.Token == "" {
		return mux
	}
	return authHandler(co.cfg.Token, mux)
}

// authHandler rejects requests whose Authorization header does not
// carry the expected bearer token. The comparison is constant-time, so
// the secret cannot be fished out byte by byte; 401 is deliberately
// uniform for a missing, malformed, or wrong credential.
func authHandler(token string, next http.Handler) http.Handler {
	want := sha256.Sum256([]byte("Bearer " + token))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got := sha256.Sum256([]byte(r.Header.Get("Authorization")))
		if subtle.ConstantTimeCompare(got[:], want[:]) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="coord"`)
			http.Error(w, "coord: missing or wrong worker token (run with -token)", http.StatusUnauthorized)
			return
		}
		next.ServeHTTP(w, r)
	})
}

func (co *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, Job{Seed: co.comp.Seed(), Sweep: co.comp.Sweep()})
}

func (co *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, co.Status())
}

// handleMetrics serves the protocol counters in Prometheus text
// format. Queue-shape gauges are set at scrape time from the same
// snapshot /v1/status reads, so the two views always agree.
func (co *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := co.Status()
	co.gDone.Set(float64(st.Done))
	co.gLeased.Set(float64(st.Leased))
	co.gPending.Set(float64(st.Pending))
	co.gEwma.Set(st.EwmaPointSeconds)
	co.gLeaseAge.Set(st.MaxLeaseAgeSeconds)
	co.gLive.Set(float64(st.LiveWorkers))
	w.Header().Set("Content-Type", obs.PrometheusContentType)
	co.reg.WritePrometheus(w)
}

// batchLocked returns the current lease cap: BatchSize, shrunk — when
// adaptive sizing is on and observations exist — so the expected batch
// wall time fits batchLeaseFraction of a lease. A batch that outlives
// its lease re-queues mid-flight and thrashes the pool; on grids with
// strong cost gradients the EWMA tracks the gradient and the batches
// shrink with it.
func (co *Coordinator) batchLocked() int {
	if co.cfg.FixedBatch || co.ewmaSec <= 0 {
		return co.cfg.BatchSize
	}
	n := int(co.cfg.LeaseTimeout.Seconds() * batchLeaseFraction / co.ewmaSec)
	if n < 1 {
		return 1
	}
	if n > co.cfg.BatchSize {
		return co.cfg.BatchSize
	}
	return n
}

func (co *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("coord: decoding lease request: %v", err), http.StatusBadRequest)
		return
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	co.touchLocked(req.Worker, co.now())
	batch := co.batchLocked()
	max := req.Max
	if max < 1 || max > batch {
		max = batch
	}
	now := co.now()
	resp := LeaseResponse{LeaseSeconds: co.cfg.LeaseTimeout.Seconds(), Done: co.pending == 0}
	for i := range co.state {
		if len(resp.Points) == max {
			break
		}
		s := &co.state[i]
		if s.status == statusDone || (s.status == statusLeased && now.Before(s.deadline)) {
			continue
		}
		// Pending, or an expired lease: hand it out (again). Work is
		// stolen, not reassigned — whoever asks first gets it. The
		// expiry is charged to the worker that lost the point (this is
		// the one place expiry is observable — a lease that expires and
		// is then submitted anyway was never stolen).
		if s.status == statusLeased {
			co.mExpired.With(s.worker).Inc()
			// The lost attempt's grant span closes here, stolen. The
			// recorder write is buffer-free but fsync-free, so holding
			// mu across it costs microseconds, not a disk flush.
			_ = co.spans.Record(co.grantSpanLocked(i, s, now, obs.SpanStolen,
				map[string]any{"stolen_by": req.Worker}))
		}
		co.mLeases.With(req.Worker).Inc()
		s.status = statusLeased
		s.worker = req.Worker
		s.deadline = now.Add(co.cfg.LeaseTimeout)
		s.grantedAt = now
		s.attempts++
		resp.Points = append(resp.Points, co.comp.Descriptor(i))
		resp.Attempts = append(resp.Attempts, s.attempts)
	}
	writeJSON(w, resp)
}

// grantSpanLocked builds the span describing point i's current lease
// attempt, ending at end with the given status (callers hold mu).
func (co *Coordinator) grantSpanLocked(i int, s *pointState, end time.Time, status string, args map[string]any) obs.Span {
	a := map[string]any{"worker": s.worker, "label": co.comp.Label(i)}
	for k, v := range args {
		a[k] = v
	}
	return obs.Span{
		ID:      obs.SpanID(co.fp, i, s.attempts, "grant"),
		Point:   i,
		Attempt: s.attempts,
		Phase:   "grant",
		Status:  status,
		Start:   s.grantedAt.Sub(co.start).Seconds(),
		End:     end.Sub(co.start).Seconds(),
		Args:    a,
	}
}

func (co *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("coord: decoding heartbeat: %v", err), http.StatusBadRequest)
		return
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	now := co.now()
	co.touchLocked(req.Worker, now)
	resp := HeartbeatResponse{}
	for _, i := range req.Indexes {
		if i < 0 || i >= len(co.state) {
			continue
		}
		s := &co.state[i]
		// Extend only a live lease still held by the caller; a lease
		// that expired may already be someone else's work.
		if s.status == statusLeased && s.worker == req.Worker && now.Before(s.deadline) {
			s.deadline = now.Add(co.cfg.LeaseTimeout)
		} else if s.status != statusDone {
			resp.Dropped = append(resp.Dropped, i)
		}
	}
	writeJSON(w, resp)
}

func (co *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("coord: decoding submission: %v", err), http.StatusBadRequest)
		return
	}
	// Reject results that disagree with the compiled grid before taking
	// the queue lock — a diverged worker build must fail loudly, not
	// poison the report.
	if err := co.comp.CheckResult(req.Point); err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	co.mu.Lock()
	co.touchLocked(req.Worker, co.now())
	if co.failed != nil {
		err := co.failed
		co.mu.Unlock()
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if co.state[req.Point.Index].status == statusDone {
		// First write won. Any duplicate is byte-equal anyway (points
		// are pure functions of spec and seed), so discarding is safe.
		co.mDuplicates.With(req.Worker).Inc()
		co.spans.Event(req.Point.Index, co.state[req.Point.Index].attempts, "submit",
			obs.SpanDuplicate, map[string]any{"worker": req.Worker})
		resp := SubmitResponse{Duplicate: true, Done: co.pending == 0}
		co.mu.Unlock()
		writeJSON(w, resp)
		return
	}
	journal := co.journal
	co.mu.Unlock()

	// Journal outside the queue lock: a slow fsync must not stall
	// leases, heartbeats, or other submits' bookkeeping. Two concurrent
	// submits of the same point may both append — recovery dedups
	// (first write wins), so the extra line is harmless.
	if journal != nil {
		fsyncStart := time.Now()
		co.journalMu.Lock()
		err := journal.Append(req.Point)
		co.journalMu.Unlock()
		co.hFsync.Observe(time.Since(fsyncStart).Seconds())
		if err != nil {
			// The crash guarantee is gone; fail the run rather than
			// keep collecting results that would not survive a restart.
			// (Unless the grid already drained through other submits —
			// then every counted point is journaled and the result
			// stands; the retrying worker will land on Duplicate.)
			co.mu.Lock()
			if co.failed == nil && co.pending > 0 {
				co.failed = fmt.Errorf("coord: journaling point %d: %w", req.Point.Index, err)
				close(co.done)
			}
			co.mu.Unlock()
			http.Error(w, fmt.Sprintf("coord: journaling point %d: %v", req.Point.Index, err), http.StatusInternalServerError)
			return
		}
	}

	co.mu.Lock()
	if co.failed != nil {
		err := co.failed
		co.mu.Unlock()
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s := &co.state[req.Point.Index]
	if s.status == statusDone {
		// Another submit of the same point won the fsync race.
		co.mDuplicates.With(req.Worker).Inc()
		resp := SubmitResponse{Duplicate: true, Done: co.pending == 0}
		co.mu.Unlock()
		writeJSON(w, resp)
		return
	}
	now := co.now()
	if !s.grantedAt.IsZero() {
		// Lease-to-submit wall time feeds the adaptive batch EWMA.
		// Points later in a batch include their queue wait — an
		// overestimate that shrinks the next batch, which is the
		// correction we want.
		if dur := now.Sub(s.grantedAt).Seconds(); dur >= 0 {
			if co.ewmaSec <= 0 {
				co.ewmaSec = dur
			} else {
				co.ewmaSec = 0.3*dur + 0.7*co.ewmaSec
			}
			co.hPoint.Observe(dur)
		}
	}
	s.status = statusDone
	s.worker = req.Worker
	co.mSubmits.With(req.Worker).Inc()
	co.results[req.Point.Index] = req.Point
	co.pending--
	done := co.pending == 0
	if done {
		close(co.done)
	}
	// The winning attempt's grant span closes ok, into the recorder
	// and — after releasing the queue lock — the journal, so the
	// journal reads as results interleaved with who ran them when.
	sp := co.grantSpanLocked(req.Point.Index, s, now, obs.SpanOK, nil)
	_ = co.spans.Record(sp)
	co.mu.Unlock()
	if journal != nil {
		co.journalMu.Lock()
		// Best-effort sidecar: a failing envelope append must not fail
		// a point whose result is already durable.
		_ = journal.AppendSpan(sp)
		co.journalMu.Unlock()
	}
	writeJSON(w, SubmitResponse{Done: done})
}

// handleFail marks the run terminally failed on a worker's report of a
// point whose execution errored. A point that some other worker has
// meanwhile completed disproves the report (results are deterministic),
// so it is ignored; otherwise re-leasing the point could only fail
// every future worker the same way, and the queue would outlive the
// pool.
func (co *Coordinator) handleFail(w http.ResponseWriter, r *http.Request) {
	var req FailRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("coord: decoding fail report: %v", err), http.StatusBadRequest)
		return
	}
	if req.Index < 0 || req.Index >= co.comp.NumPoints() {
		http.Error(w, fmt.Sprintf("coord: fail report index %d outside the %d-point grid", req.Index, co.comp.NumPoints()), http.StatusUnprocessableEntity)
		return
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	co.touchLocked(req.Worker, co.now())
	if co.failed == nil && co.state[req.Index].status != statusDone {
		co.failed = fmt.Errorf("coord: point %d (%s) failed on worker %s: %s",
			req.Index, co.comp.Label(req.Index), req.Worker, req.Error)
		s := &co.state[req.Index]
		_ = co.spans.Record(co.grantSpanLocked(req.Index, s, co.now(), obs.SpanError,
			map[string]any{"error": req.Error, "worker": req.Worker}))
		close(co.done)
	}
	writeJSON(w, struct{}{})
}

// writeJSON renders a protocol response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// Serve runs a coordinator to completion on one call: listen on addr,
// serve the protocol until the grid drains (or ctx is cancelled), shut
// the server down, and return the assembled result. The journal file —
// if configured — is always left on disk: on error so a restart
// resumes, and on success until the caller has persisted the returned
// result (the journal is its only durable copy until then; delete the
// file once the result is safe, as cmd/disksim does after printing the
// report).
func Serve(ctx context.Context, sweep farm.Sweep, seed int64, addr string, cfg Config) (*farm.SweepResult, error) {
	co, err := New(sweep, seed, cfg)
	if err != nil {
		return nil, err
	}
	defer co.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if cfg.OnListen != nil {
		cfg.OnListen(ln.Addr())
	}
	srv := &http.Server{Handler: co.Handler()}
	// A server that dies mid-run must fail Serve, not hang it: with the
	// accept loop gone no worker can submit, so Wait would block
	// forever. The derived context turns a server error into a wake-up.
	waitCtx, cancelWait := context.WithCancel(ctx)
	defer cancelWait()
	serveErr := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			serveErr <- err
			cancelWait()
		}
	}()
	res, err := co.Wait(waitCtx)
	if err == nil {
		// Linger: workers between lease polls when the last point landed
		// must read their Done from the protocol, not infer it from a
		// vanished listener. The coordinator's own config (validated in
		// New) carries the window.
		_ = sleep(ctx, co.cfg.Linger)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutdownCtx)
	select {
	case serr := <-serveErr:
		// Replace only the synthetic wake-up — Wait's cancellation
		// caused by the server's death (parent context intact). A
		// drained result or a terminal journal fault stands.
		if err != nil && errors.Is(err, context.Canceled) && ctx.Err() == nil {
			err = serr
		}
	default:
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}
