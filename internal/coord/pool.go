package coord

import (
	"context"
	"fmt"
	"net"
	"sync"

	"diskpack/internal/farm"
)

// PoolRunner returns a farm.RunSweep-equivalent executor that
// dispatches every sweep through the coordinator protocol: a loopback
// coordinator on an ephemeral port plus `workers` in-process pull
// workers per call. The result is byte-identical to the in-process
// RunSweep (the coordinator's core guarantee), so the runner plugs
// straight into seams that demand it — reorg.Config.SweepRunner uses
// it to push adaptive mode's per-epoch candidate sweeps through the
// elastic pool instead of the local worker pool. The per-call workers
// argument overrides the constructor's when positive.
//
// This is the one-process form; to spread one sweep across machines,
// run Serve and Work directly.
func PoolRunner(ctx context.Context, workers int, cfg Config, wcfg WorkerConfig) func(sweep farm.Sweep, seed int64, perCall int) (*farm.SweepResult, error) {
	if workers < 1 {
		workers = 1
	}
	return func(sweep farm.Sweep, seed int64, perCall int) (*farm.SweepResult, error) {
		n := workers
		if perCall > 0 {
			n = perCall
		}
		// A worker failure must not strand Serve waiting on a drained
		// pool: cancel the serve context and surface the first error.
		runCtx, cancel := context.WithCancel(ctx)
		defer cancel()
		var (
			wg        sync.WaitGroup
			mu        sync.Mutex
			workerErr error
		)
		serveCfg := cfg
		serveCfg.OnListen = func(addr net.Addr) {
			if cfg.OnListen != nil {
				cfg.OnListen(addr)
			}
			url := "http://" + addr.String()
			for i := 0; i < n; i++ {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					c := wcfg
					if c.Name != "" {
						c.Name = fmt.Sprintf("%s-%d", c.Name, i)
					}
					if _, err := Work(runCtx, url, c); err != nil && runCtx.Err() == nil {
						mu.Lock()
						if workerErr == nil {
							workerErr = err
						}
						mu.Unlock()
						cancel()
					}
				}()
			}
		}
		res, err := Serve(runCtx, sweep, seed, "127.0.0.1:0", serveCfg)
		cancel()
		wg.Wait()
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			if workerErr != nil {
				return nil, fmt.Errorf("coord: pool sweep %s: %w", sweep.Name, workerErr)
			}
			return nil, err
		}
		return res, nil
	}
}
