package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"diskpack/internal/obs"
)

// syncBuffer is a bytes.Buffer safe for the concurrent writes a worker
// recorder makes from parallel slots.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) reader() *bytes.Reader {
	b.mu.Lock()
	defer b.mu.Unlock()
	return bytes.NewReader(b.buf.Bytes())
}

func readLog(t *testing.T, b *syncBuffer) *obs.SpanLog {
	t.Helper()
	log, err := obs.ReadSpans(b.reader())
	if err != nil {
		t.Fatal(err)
	}
	return log
}

// TestSpanRecordingObservationOnly is the tentpole guarantee end to
// end: a coordinator and two fully instrumented workers drain the
// grid; the report is byte-identical to the uninstrumented
// single-process RunSweep; every log parses; the grant/point span
// count equals points × attempts; and the merged Perfetto trace
// carries exactly those spans, one track per process.
func TestSpanRecordingObservationOnly(t *testing.T) {
	sweep := fixtureSweep()
	want := directResult(t, sweep, 9)

	var coLog syncBuffer
	journalPath := filepath.Join(t.TempDir(), "coord.journal")
	co, err := New(sweep, 9, Config{
		BatchSize:   2,
		JournalPath: journalPath,
		Spans:       obs.NewSpanRecorder(&coLog),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, co)
	ctx := testCtx(t)

	logs := make([]*syncBuffer, 2)
	regs := make([]*obs.Registry, 2)
	recs := make([]*obs.SpanRecorder, 2)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		logs[i] = &syncBuffer{}
		regs[i] = obs.NewRegistry()
		recs[i] = obs.NewSpanRecorder(logs[i])
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = Work(ctx, srv.URL, WorkerConfig{
				Name: fmt.Sprintf("w%d", i), Parallel: 2, Poll: 5 * time.Millisecond,
				Spans: recs[i], Metrics: regs[i],
			})
		}(i)
	}
	res, err := co.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	// (a) Byte identity with span recording on.
	if resultJSON(t, res) != want {
		t.Fatal("instrumented coordinator result differs from single-process RunSweep")
	}

	for _, rec := range recs {
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if err := co.cfg.Spans.Close(); err != nil {
		t.Fatal(err)
	}

	// (b) Span accounting. A healthy run leases each point exactly
	// once, so attempts == points and the coordinator logs one ok
	// grant per point.
	n := sweep.NumPoints()
	coSpans := readLog(t, &coLog)
	if coSpans.Header.Role != "coordinator" || coSpans.Header.Points != n {
		t.Fatalf("coordinator header %+v", coSpans.Header)
	}
	grants := map[int]obs.Span{}
	for _, sp := range coSpans.Spans {
		if sp.Phase != "grant" {
			continue
		}
		if _, dup := grants[sp.Point]; dup {
			t.Errorf("point %d granted twice in a healthy run", sp.Point)
		}
		if sp.Status != obs.SpanOK || sp.Attempt != 1 {
			t.Errorf("grant %+v, want ok attempt 1", sp)
		}
		grants[sp.Point] = sp
	}
	if len(grants) != n {
		t.Fatalf("%d grant spans, want %d", len(grants), n)
	}

	// Worker point spans: exactly one per (point, attempt) across the
	// pool, each with ok run and submit children, IDs agreeing with
	// the coordinator's sweep hash.
	type key struct{ point, attempt int }
	points := map[key]obs.Span{}
	children := map[string][]obs.Span{}
	for i, log := range []*syncBuffer{logs[0], logs[1]} {
		wl := readLog(t, log)
		if wl.Header.SweepHash != coSpans.Header.SweepHash {
			t.Fatalf("worker %d sweep hash %q, coordinator %q", i, wl.Header.SweepHash, coSpans.Header.SweepHash)
		}
		for _, sp := range wl.Spans {
			switch sp.Phase {
			case "point":
				k := key{sp.Point, sp.Attempt}
				if _, dup := points[k]; dup {
					t.Errorf("point span %v duplicated", k)
				}
				points[k] = sp
			case "run", "submit":
				children[sp.Parent] = append(children[sp.Parent], sp)
			}
		}
	}
	if len(points) != n {
		t.Fatalf("%d point spans across the pool, want %d", len(points), n)
	}
	for k, sp := range points {
		if sp.ID != obs.SpanID(coSpans.Header.SweepHash, k.point, k.attempt, "point") {
			t.Errorf("point span %v has non-deterministic ID %q", k, sp.ID)
		}
		if len(children[sp.ID]) != 2 {
			t.Errorf("point span %v has %d children, want run+submit", k, len(children[sp.ID]))
		}
	}

	// (c) Merged Perfetto trace: one track per log, span count
	// preserved (points × attempts of each phase).
	var trace bytes.Buffer
	w0 := readLog(t, logs[0])
	w1 := readLog(t, logs[1])
	if err := obs.WriteSpanTrace(&trace, []obs.SpanLog{*w0, *coSpans, *w1}); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace.Bytes(), &parsed); err != nil {
		t.Fatalf("merged trace not valid JSON: %v", err)
	}
	count := map[string]int{}
	for _, ev := range parsed.TraceEvents {
		count[ev.Name]++
	}
	if count["grant"] != n || count["point"] != n {
		t.Errorf("merged trace has %d grant and %d point spans, want %d each", count["grant"], count["point"], n)
	}
	if count["thread_name"] != 3 {
		t.Errorf("merged trace has %d tracks, want 3", count["thread_name"])
	}

	// Worker telemetry reached the registries: slots did work and
	// lease waits were observed.
	var expo bytes.Buffer
	if err := regs[0].WritePrometheus(&expo); err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{"worker_slot_busy_seconds", "worker_slot_points_total", "worker_lease_wait_seconds", "worker_run_seconds"} {
		if !strings.Contains(expo.String(), metric) {
			t.Errorf("worker registry is missing %s", metric)
		}
	}

	// The coordinator journal carries span envelopes alongside the
	// point results.
	data, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(data), `{"Span":{`); got != n {
		t.Errorf("journal has %d span envelopes, want %d", got, n)
	}
}

// TestWorkerAbortFlushesSpans is the SIGINT-mid-lease contract: a
// worker cancelled while executing a leased point still flushes a
// valid span log, the open point span closes with status aborted, and
// the coordinator re-queues the point once the lease expires.
func TestWorkerAbortFlushesSpans(t *testing.T) {
	sweep := fixtureSweep()
	// ~75× the fixture arrival rate makes each point run for hundreds
	// of milliseconds — the cancel below lands mid-execution.
	sweep.Base.Workload.Synthetic.ArrivalRate *= 75

	co, err := New(sweep, 9, Config{LeaseTimeout: MinLeaseTimeout, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, co)

	var log syncBuffer
	rec := obs.NewSpanRecorder(&log)
	ctx, cancel := context.WithCancel(testCtx(t))
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := Work(ctx, srv.URL, WorkerConfig{
			Name: "doomed", Parallel: 1, Poll: 5 * time.Millisecond, Spans: rec,
		})
		done <- err
	}()

	// Wait until the worker holds a lease, give the run a moment to be
	// mid-flight, then yank the context — the CLI's SIGINT path.
	deadline := time.Now().Add(30 * time.Second)
	for co.Status().Leased == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never leased a point")
		}
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(30 * time.Millisecond)
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("aborted worker returned %v, want context.Canceled", err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	// The flushed log is valid JSONL and the in-flight point closed
	// aborted (the pure-compute run finishes; the abandonment lands on
	// the submit).
	spans := readLog(t, &log)
	aborted := map[string]bool{}
	for _, sp := range spans.Spans {
		if sp.Status == obs.SpanAborted {
			aborted[sp.Phase] = true
		}
	}
	if !aborted["point"] || !aborted["submit"] {
		t.Fatalf("aborted phases %v, want the in-flight point and submit spans closed aborted", aborted)
	}

	// The abandoned lease expires and the point re-queues: a rescuer
	// can lease it again, at a higher attempt.
	var lease LeaseResponse
	for deadline := time.Now().Add(30 * time.Second); len(lease.Points) == 0; {
		if time.Now().After(deadline) {
			t.Fatal("abandoned point never re-queued")
		}
		time.Sleep(10 * time.Millisecond)
		postJSON(t, srv.URL+"/v1/lease", LeaseRequest{Worker: "rescuer", Max: 1}, &lease)
	}
	if len(lease.Attempts) != 1 || lease.Attempts[0] != 2 {
		t.Errorf("re-leased attempts %v, want the stolen point at attempt 2", lease.Attempts)
	}
}
