package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"diskpack/internal/farm"
	"diskpack/internal/obs"
)

// Worker defaults for the zero WorkerConfig values.
const (
	defaultPoll    = 200 * time.Millisecond
	defaultRetry   = 30 * time.Second
	defaultTimeout = 30 * time.Second
)

// heartbeatFloor is the fastest the worker will heartbeat. Leases
// shorter than a few beats cannot be renewed reliably, which is why
// Config.validate floors LeaseTimeout at MinLeaseTimeout = 3× this.
const heartbeatFloor = 50 * time.Millisecond

// WorkerConfig parameterizes one pull-based worker process.
type WorkerConfig struct {
	// Name identifies the worker in leases and logs. Empty derives
	// "<hostname>-<pid>".
	Name string
	// Parallel is how many leased points execute concurrently. Zero
	// means one per core; negative is rejected.
	Parallel int
	// Poll is how long to wait before re-asking when every point is
	// leased out elsewhere. Zero means 200ms.
	Poll time.Duration
	// Retry is the budget for retrying transient coordinator failures
	// (connection refused while the coordinator boots, a dropped
	// conn). Zero means 30s; exceeding it fails the worker.
	Retry time.Duration
	// Token is the coordinator's shared secret (Config.Token); sent as
	// a bearer credential on every request. A wrong or missing token
	// against an authenticated coordinator fails fast with 401.
	Token string
	// Spans, when non-nil, receives this worker's span log: a compile
	// span, per-slot lease waits, and a point span per leased attempt
	// with run/submit children plus retry/steal events. The worker
	// writes the header itself once the sweep compiles (Track = Name).
	// Observation-only — results are byte-identical with or without
	// it.
	Spans *obs.SpanRecorder
	// Metrics, when non-nil, registers the worker's telemetry there:
	// per-slot utilization gauges and per-phase latency histograms.
	Metrics *obs.Registry
}

// validate applies defaults and rejects out-of-range values loudly.
func (c *WorkerConfig) validate() error {
	if c.Parallel == 0 {
		c.Parallel = runtime.GOMAXPROCS(0)
	}
	if c.Parallel < 1 {
		return fmt.Errorf("coord: worker parallelism %d: valid values are >= 1 (or 0 for one per core)", c.Parallel)
	}
	if c.Poll == 0 {
		c.Poll = defaultPoll
	}
	if c.Poll < 0 {
		return fmt.Errorf("coord: poll interval %v: valid values are > 0 (or 0 for the default %v)", c.Poll, defaultPoll)
	}
	if c.Retry == 0 {
		c.Retry = defaultRetry
	}
	if c.Retry < 0 {
		return fmt.Errorf("coord: retry budget %v: valid values are > 0 (or 0 for the default %v)", c.Retry, defaultRetry)
	}
	if c.Name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		c.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	return nil
}

// WorkStats summarizes one worker's contribution.
type WorkStats struct {
	// Worker is the resolved worker name.
	Worker string
	// Points is how many points this worker computed and submitted
	// (duplicates the coordinator discarded included — they were real
	// work here).
	Points int
	// Retries counts protocol requests that had to be re-sent after a
	// transient failure (network error or coordinator 5xx). Zero on a
	// healthy pool; a climbing count is the first symptom of a flaky
	// link or an overloaded coordinator.
	Retries int
}

// Work joins the coordinator at baseURL and pulls until the grid is
// done: fetch the sweep, compile it locally, then lease → execute →
// submit, streaming each point back the moment it completes. The
// worker may join an already-running grid and survives transient
// coordinator outages within cfg.Retry. Leased points are cross-checked
// against the locally compiled grid, so a worker built from a diverged
// engine fails loudly instead of submitting wrong numbers. Cancelling
// the context (the CLI's SIGINT/SIGTERM path) finishes nothing new and
// returns ctx.Err(); abandoned leases simply expire and re-queue.
func Work(ctx context.Context, baseURL string, cfg WorkerConfig) (WorkStats, error) {
	if err := cfg.validate(); err != nil {
		return WorkStats{}, err
	}
	w := &worker{
		cfg:    cfg,
		base:   strings.TrimRight(baseURL, "/"),
		client: &http.Client{Timeout: defaultTimeout},
		spans:  cfg.Spans,
		wm:     newWorkerMetrics(cfg.Metrics),
	}
	stats := WorkStats{Worker: cfg.Name}

	// Joining the pool may precede the coordinator's boot — the retry
	// budget covers the gap.
	var job Job
	if err := w.call(ctx, http.MethodGet, "/v1/sweep", nil, &job); err != nil {
		return stats, fmt.Errorf("coord: worker %s fetching sweep: %w", cfg.Name, err)
	}
	compileStart := time.Now()
	comp, err := farm.Compile(job.Sweep, job.Seed)
	if err != nil {
		return stats, fmt.Errorf("coord: worker %s compiling served sweep: %w", cfg.Name, err)
	}
	// The span log opens only now: its header needs the compiled
	// grid's fingerprint, which is also every span ID's root.
	if w.spans != nil {
		if err := w.spans.Start(obs.SpanHeader{
			Track: cfg.Name, Role: "worker", SweepHash: comp.Fingerprint(),
			Seed: job.Seed, Points: comp.NumPoints(), StartUnixNano: compileStart.UnixNano(),
		}); err != nil {
			return stats, fmt.Errorf("coord: worker %s span log: %w", cfg.Name, err)
		}
		_ = w.spans.Record(obs.Span{
			Point: -1, Attempt: 0, Phase: "compile", Status: obs.SpanOK,
			Start: 0, End: time.Since(compileStart).Seconds(),
			Args: map[string]any{"points": comp.NumPoints()},
		})
	}
	stats.Points, err = w.pump(ctx, comp)
	stats.Retries = int(w.retries.Load())
	return stats, err
}

// workerMetrics is the worker's telemetry bundle; every field is
// nil-safe, so an uninstrumented worker (nil registry) records through
// no-ops.
type workerMetrics struct {
	// slotBusy accumulates per-slot seconds spent executing points —
	// utilization reads as busy seconds over wall seconds.
	slotBusy *obs.GaugeVec
	// slotPoints counts points completed per slot.
	slotPoints *obs.CounterVec
	// Per-phase latency: lease waits (ask → grant, fruitless polls
	// included), point runs, and submits.
	leaseWait *obs.Histogram
	run       *obs.Histogram
	submit    *obs.Histogram
	retries   *obs.Counter
}

func newWorkerMetrics(reg *obs.Registry) *workerMetrics {
	return &workerMetrics{
		slotBusy:   reg.NewGaugeVec("worker_slot_busy_seconds", "seconds each slot has spent executing points", "slot"),
		slotPoints: reg.NewCounterVec("worker_slot_points_total", "points completed, by slot", "slot"),
		leaseWait: reg.NewHistogram("worker_lease_wait_seconds", "lease-request to grant wall seconds, fruitless polls included",
			[]float64{0.001, 0.01, 0.1, 0.5, 2, 10}),
		run: reg.NewHistogram("worker_run_seconds", "point execution wall seconds",
			[]float64{0.01, 0.05, 0.25, 1, 5, 30, 120}),
		submit: reg.NewHistogram("worker_submit_seconds", "point submission wall seconds",
			[]float64{0.001, 0.01, 0.05, 0.25, 1, 5}),
		retries: reg.NewCounter("worker_retries_total", "protocol requests re-sent after a transient failure"),
	}
}

// worker carries the HTTP plumbing of one Work call.
type worker struct {
	cfg    WorkerConfig
	base   string
	client *http.Client
	// spans and wm are the observability sinks (both nil-safe).
	spans *obs.SpanRecorder
	wm    *workerMetrics
	// retries counts re-sent protocol requests across every slot
	// (atomic — slots call concurrently); surfaced as WorkStats.Retries.
	retries atomic.Int64
	// leaseSeq numbers this worker's lease-wait spans (run-level spans
	// have no coordinator-assigned attempt to key on).
	leaseSeq atomic.Int64
	// draining, when non-nil, reports that the grid is known drained;
	// call() then stops retrying transient failures — the coordinator
	// shutting down after its linger window is the expected reason for
	// them, not an outage worth the budget. (A lone slot whose point
	// was stolen has no such signal: if its late submit finds the
	// listener gone, it cannot tell a drain from a crash and reports
	// the failure — the principled move, since its own work's fate is
	// unknown.)
	draining func() bool
}

// pump runs cfg.Parallel independent slots, each its own lease →
// execute → submit loop pulling one point at a time. Slots never
// barrier on each other, so concurrency is exactly cfg.Parallel
// whatever the coordinator's batch cap, and a slow point occupies only
// its own slot while the rest keep leasing fresh work. One heartbeat
// loop covers every point any slot holds. (A slot holds at most one
// point, so a lease the coordinator steals back mid-run needs no
// bookkeeping here: nothing is queued behind it, the run cannot be
// aborted, and its submit lands as a harmless duplicate.)
func (w *worker) pump(ctx context.Context, comp *farm.CompiledSweep) (int, error) {
	slotCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu sync.Mutex
		// held counts slots computing each point — a count, not a set,
		// because the coordinator can re-lease this worker's own expired
		// point to a sibling slot, and the first finisher must not
		// strip the survivor's heartbeat coverage.
		held = make(map[int]int, w.cfg.Parallel)
		// attempts remembers the latest lease attempt per held point,
		// so a steal reported by heartbeat logs the attempt it ended.
		attempts   = make(map[int]int, w.cfg.Parallel)
		hbInterval time.Duration // from lease responses; 0 until the first grant
		computed   int
		gridDone   bool
		firstErr   error
	)
	// The first slot to read Done winds the others down immediately:
	// the coordinator only lingers briefly after the drain, so a
	// sibling polling for one more lease would find a closed port and
	// burn its whole retry budget on a run that already succeeded.
	markDone := func() {
		mu.Lock()
		gridDone = true
		mu.Unlock()
		cancel()
	}
	w.draining = func() bool {
		mu.Lock()
		defer mu.Unlock()
		return gridDone
	}

	hbStop := make(chan struct{})
	var hbWg sync.WaitGroup
	hbWg.Add(1)
	go func() {
		defer hbWg.Done()
		for {
			mu.Lock()
			interval := hbInterval
			mu.Unlock()
			if interval <= 0 {
				interval = heartbeatFloor
			}
			t := time.NewTimer(interval)
			select {
			case <-hbStop:
				t.Stop()
				return
			case <-slotCtx.Done():
				t.Stop()
				return
			case <-t.C:
			}
			mu.Lock()
			idx := make([]int, 0, len(held))
			for i := range held {
				idx = append(idx, i)
			}
			mu.Unlock()
			if len(idx) == 0 {
				continue
			}
			// A missed heartbeat is not fatal — the lease just edges
			// toward expiry; the next beat or the submission renews it.
			// The response's Dropped list (points stolen from us) is
			// deliberately not acted on: a slot holds one point it
			// cannot abort mid-run, and a finished result is worth
			// submitting anyway — submits are idempotent, first write
			// wins, so ours may still land, and the submit response is
			// how a lone slot learns the grid drained.
			var resp HeartbeatResponse
			if err := w.once(slotCtx, http.MethodPost, "/v1/heartbeat", HeartbeatRequest{Worker: w.cfg.Name, Indexes: idx}, &resp); err == nil {
				for _, i := range resp.Dropped {
					mu.Lock()
					a := attempts[i]
					mu.Unlock()
					w.spans.Event(i, a, "stolen", obs.SpanStolen, nil)
				}
			}
		}
	}()

	slot := func(slotID int) error {
		slotLabel := strconv.Itoa(slotID)
		for {
			if err := slotCtx.Err(); err != nil {
				return err
			}
			leaseStart := time.Now()
			var lease LeaseResponse
			if err := w.call(slotCtx, http.MethodPost, "/v1/lease", LeaseRequest{Worker: w.cfg.Name, Max: 1}, &lease); err != nil {
				return fmt.Errorf("coord: worker %s leasing: %w", w.cfg.Name, err)
			}
			if lease.LeaseSeconds > 0 {
				mu.Lock()
				if hbInterval = time.Duration(lease.LeaseSeconds / 3 * float64(time.Second)); hbInterval < heartbeatFloor {
					hbInterval = heartbeatFloor
				}
				mu.Unlock()
			}
			if len(lease.Points) == 0 {
				if lease.Done {
					markDone()
					return nil
				}
				// Everything is leased out elsewhere; wait for a lease
				// to expire or the grid to drain.
				if err := sleep(slotCtx, w.cfg.Poll); err != nil {
					return err
				}
				continue
			}
			// A granted lease ends this slot's wait — observed once per
			// grant, as a run-level span keyed by a worker-local
			// sequence (grants on different slots interleave freely).
			w.wm.leaseWait.Observe(time.Since(leaseStart).Seconds())
			if w.spans != nil {
				seq := int(w.leaseSeq.Add(1))
				_ = w.spans.Record(obs.Span{
					Point: -1, Attempt: seq, Phase: "lease", Status: obs.SpanOK,
					Start: w.spans.Since(leaseStart), End: w.spans.Since(time.Now()),
					Args: map[string]any{"slot": slotID, "granted": len(lease.Points)},
				})
			}
			done := false
			for k, sp := range lease.Points {
				attempt := 0
				if k < len(lease.Attempts) {
					attempt = lease.Attempts[k]
				}
				mu.Lock()
				held[sp.Index]++
				attempts[sp.Index] = attempt
				mu.Unlock()
				// The parent context, deliberately: a sibling slot
				// reading Done cancels slotCtx, and that must not chop
				// an in-flight submit the coordinator may already have
				// counted toward the drain.
				busyStart := time.Now()
				resp, err := w.runPoint(ctx, comp, sp, attempt, slotID)
				w.wm.slotBusy.With(slotLabel).Add(time.Since(busyStart).Seconds())
				mu.Lock()
				if held[sp.Index]--; held[sp.Index] <= 0 {
					delete(held, sp.Index)
					delete(attempts, sp.Index)
				}
				if err == nil {
					computed++
				}
				gd := gridDone
				mu.Unlock()
				if err != nil {
					if gd {
						// The grid drained while this (necessarily
						// duplicate) point was in flight; a failed
						// submit against a gone coordinator is moot.
						return nil
					}
					return err
				}
				w.wm.slotPoints.With(slotLabel).Inc()
				done = done || resp.Done
			}
			if done {
				markDone()
				return nil
			}
		}
	}

	var wg sync.WaitGroup
	wg.Add(w.cfg.Parallel)
	for g := 0; g < w.cfg.Parallel; g++ {
		go func(slotID int) {
			defer wg.Done()
			if err := slot(slotID); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				cancel() // wind the other slots down
			}
		}(g)
	}
	wg.Wait()
	close(hbStop)
	hbWg.Wait()
	if firstErr != nil && !errors.Is(firstErr, context.Canceled) {
		// A real failure outranks everything, drained grid included.
		return computed, firstErr
	}
	if gridDone {
		// Cancellations here are markDone winding the other slots down.
		return computed, nil
	}
	if ctx.Err() != nil {
		// Normalize: the caller cancelled, whatever slot noticed first.
		return computed, ctx.Err()
	}
	return computed, firstErr
}

// runPoint checks, executes, and submits one leased point. The submit
// happens even if the lease has meanwhile expired or been stolen:
// submits are idempotent and first-write-wins, so a finished result is
// never wasted, and the response's Done flag is the only way a lone
// slot learns the grid drained. The point's span (with run and submit
// children) is keyed by the coordinator-assigned attempt, so every log
// touching this attempt agrees on its identity.
func (w *worker) runPoint(ctx context.Context, comp *farm.CompiledSweep, sp farm.ShardPoint, attempt, slotID int) (SubmitResponse, error) {
	ph := w.spans.Begin(sp.Index, attempt, "point", map[string]any{"label": sp.Label, "slot": slotID})
	if err := comp.Check(sp); err != nil {
		// A diverged build is this worker's defect, not the grid's —
		// exit without poisoning the run for healthy workers.
		ph.End(obs.SpanError, map[string]any{"error": err.Error()})
		return SubmitResponse{}, fmt.Errorf("coord: worker %s lease: %w", w.cfg.Name, err)
	}
	rh := w.spans.BeginChild(ph, "run", nil)
	runStart := time.Now()
	pr, err := comp.RunPoint(sp.Index)
	w.wm.run.Observe(time.Since(runStart).Seconds())
	if err != nil {
		// Points are pure functions of (spec, seed): every worker would
		// fail this one identically, so report it — otherwise the queue
		// re-leases the poison point until the pool drains and the
		// coordinator waits forever.
		rh.End(obs.SpanError, map[string]any{"error": err.Error()})
		ph.End(obs.SpanError, nil)
		_ = w.call(ctx, http.MethodPost, "/v1/fail", FailRequest{Worker: w.cfg.Name, Index: sp.Index, Error: err.Error()}, nil)
		return SubmitResponse{}, fmt.Errorf("coord: worker %s point %s: %w", w.cfg.Name, sp.Label, err)
	}
	rh.End(obs.SpanOK, nil)
	sh := w.spans.BeginChild(ph, "submit", nil)
	submitStart := time.Now()
	var resp SubmitResponse
	if err := w.call(ctx, http.MethodPost, "/v1/submit", SubmitRequest{Worker: w.cfg.Name, Point: pr}, &resp); err != nil {
		// A cancelled worker (SIGINT) is abandoning the point, not
		// hitting a defect — the span log must say so.
		status := obs.SpanError
		if ctx.Err() != nil {
			status = obs.SpanAborted
		}
		sh.End(status, map[string]any{"error": err.Error()})
		ph.End(status, nil)
		return SubmitResponse{}, fmt.Errorf("coord: worker %s submitting point %s: %w", w.cfg.Name, sp.Label, err)
	}
	w.wm.submit.Observe(time.Since(submitStart).Seconds())
	if resp.Duplicate {
		// Real work here, but another worker's write won the race.
		sh.End(obs.SpanDuplicate, nil)
		ph.End(obs.SpanOK, map[string]any{"duplicate": true})
	} else {
		sh.End(obs.SpanOK, nil)
		ph.End(obs.SpanOK, nil)
	}
	return resp, nil
}

// fatalStatus reports whether an HTTP status ends the worker rather
// than being retried: client errors mean the request itself is wrong
// (a diverged build, a bad URL) and repeating it cannot help.
func fatalStatus(code int) bool { return code >= 400 && code < 500 }

// httpError is a non-2xx response.
type httpError struct {
	code int
	body string
}

func (e *httpError) Error() string {
	return fmt.Sprintf("HTTP %d: %s", e.code, strings.TrimSpace(e.body))
}

// call performs one protocol request, retrying transient failures
// (network errors, 5xx) with exponential backoff within the Retry
// budget. 4xx responses are fatal immediately.
func (w *worker) call(ctx context.Context, method, path string, in, out any) error {
	deadline := time.Now().Add(w.cfg.Retry)
	backoff := 100 * time.Millisecond
	for {
		err := w.once(ctx, method, path, in, out)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var he *httpError
		if errors.As(err, &he) && fatalStatus(he.code) {
			return err
		}
		if time.Now().After(deadline) {
			return err
		}
		if w.draining != nil && w.draining() {
			return err
		}
		if serr := sleep(ctx, backoff); serr != nil {
			return serr
		}
		n := w.retries.Add(1)
		w.wm.retries.Inc()
		w.spans.Event(-1, int(n), "retry", obs.SpanError,
			map[string]any{"path": path, "error": err.Error()})
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

// once performs a single protocol request.
func (w *worker) once(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, w.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if w.cfg.Token != "" {
		req.Header.Set("Authorization", "Bearer "+w.cfg.Token)
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return &httpError{code: resp.StatusCode, body: string(msg)}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// sleep waits for d or the context, whichever ends first.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
