package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"diskpack/internal/farm"
)

// Worker defaults for the zero WorkerConfig values.
const (
	defaultPoll    = 200 * time.Millisecond
	defaultRetry   = 30 * time.Second
	defaultTimeout = 30 * time.Second
)

// heartbeatFloor is the fastest the worker will heartbeat. Leases
// shorter than a few beats cannot be renewed reliably, which is why
// Config.validate floors LeaseTimeout at MinLeaseTimeout = 3× this.
const heartbeatFloor = 50 * time.Millisecond

// WorkerConfig parameterizes one pull-based worker process.
type WorkerConfig struct {
	// Name identifies the worker in leases and logs. Empty derives
	// "<hostname>-<pid>".
	Name string
	// Parallel is how many leased points execute concurrently. Zero
	// means one per core; negative is rejected.
	Parallel int
	// Poll is how long to wait before re-asking when every point is
	// leased out elsewhere. Zero means 200ms.
	Poll time.Duration
	// Retry is the budget for retrying transient coordinator failures
	// (connection refused while the coordinator boots, a dropped
	// conn). Zero means 30s; exceeding it fails the worker.
	Retry time.Duration
	// Token is the coordinator's shared secret (Config.Token); sent as
	// a bearer credential on every request. A wrong or missing token
	// against an authenticated coordinator fails fast with 401.
	Token string
}

// validate applies defaults and rejects out-of-range values loudly.
func (c *WorkerConfig) validate() error {
	if c.Parallel == 0 {
		c.Parallel = runtime.GOMAXPROCS(0)
	}
	if c.Parallel < 1 {
		return fmt.Errorf("coord: worker parallelism %d: valid values are >= 1 (or 0 for one per core)", c.Parallel)
	}
	if c.Poll == 0 {
		c.Poll = defaultPoll
	}
	if c.Poll < 0 {
		return fmt.Errorf("coord: poll interval %v: valid values are > 0 (or 0 for the default %v)", c.Poll, defaultPoll)
	}
	if c.Retry == 0 {
		c.Retry = defaultRetry
	}
	if c.Retry < 0 {
		return fmt.Errorf("coord: retry budget %v: valid values are > 0 (or 0 for the default %v)", c.Retry, defaultRetry)
	}
	if c.Name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		c.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	return nil
}

// WorkStats summarizes one worker's contribution.
type WorkStats struct {
	// Worker is the resolved worker name.
	Worker string
	// Points is how many points this worker computed and submitted
	// (duplicates the coordinator discarded included — they were real
	// work here).
	Points int
	// Retries counts protocol requests that had to be re-sent after a
	// transient failure (network error or coordinator 5xx). Zero on a
	// healthy pool; a climbing count is the first symptom of a flaky
	// link or an overloaded coordinator.
	Retries int
}

// Work joins the coordinator at baseURL and pulls until the grid is
// done: fetch the sweep, compile it locally, then lease → execute →
// submit, streaming each point back the moment it completes. The
// worker may join an already-running grid and survives transient
// coordinator outages within cfg.Retry. Leased points are cross-checked
// against the locally compiled grid, so a worker built from a diverged
// engine fails loudly instead of submitting wrong numbers. Cancelling
// the context (the CLI's SIGINT/SIGTERM path) finishes nothing new and
// returns ctx.Err(); abandoned leases simply expire and re-queue.
func Work(ctx context.Context, baseURL string, cfg WorkerConfig) (WorkStats, error) {
	if err := cfg.validate(); err != nil {
		return WorkStats{}, err
	}
	w := &worker{
		cfg:    cfg,
		base:   strings.TrimRight(baseURL, "/"),
		client: &http.Client{Timeout: defaultTimeout},
	}
	stats := WorkStats{Worker: cfg.Name}

	// Joining the pool may precede the coordinator's boot — the retry
	// budget covers the gap.
	var job Job
	if err := w.call(ctx, http.MethodGet, "/v1/sweep", nil, &job); err != nil {
		return stats, fmt.Errorf("coord: worker %s fetching sweep: %w", cfg.Name, err)
	}
	comp, err := farm.Compile(job.Sweep, job.Seed)
	if err != nil {
		return stats, fmt.Errorf("coord: worker %s compiling served sweep: %w", cfg.Name, err)
	}
	stats.Points, err = w.pump(ctx, comp)
	stats.Retries = int(w.retries.Load())
	return stats, err
}

// worker carries the HTTP plumbing of one Work call.
type worker struct {
	cfg    WorkerConfig
	base   string
	client *http.Client
	// retries counts re-sent protocol requests across every slot
	// (atomic — slots call concurrently); surfaced as WorkStats.Retries.
	retries atomic.Int64
	// draining, when non-nil, reports that the grid is known drained;
	// call() then stops retrying transient failures — the coordinator
	// shutting down after its linger window is the expected reason for
	// them, not an outage worth the budget. (A lone slot whose point
	// was stolen has no such signal: if its late submit finds the
	// listener gone, it cannot tell a drain from a crash and reports
	// the failure — the principled move, since its own work's fate is
	// unknown.)
	draining func() bool
}

// pump runs cfg.Parallel independent slots, each its own lease →
// execute → submit loop pulling one point at a time. Slots never
// barrier on each other, so concurrency is exactly cfg.Parallel
// whatever the coordinator's batch cap, and a slow point occupies only
// its own slot while the rest keep leasing fresh work. One heartbeat
// loop covers every point any slot holds. (A slot holds at most one
// point, so a lease the coordinator steals back mid-run needs no
// bookkeeping here: nothing is queued behind it, the run cannot be
// aborted, and its submit lands as a harmless duplicate.)
func (w *worker) pump(ctx context.Context, comp *farm.CompiledSweep) (int, error) {
	slotCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu sync.Mutex
		// held counts slots computing each point — a count, not a set,
		// because the coordinator can re-lease this worker's own expired
		// point to a sibling slot, and the first finisher must not
		// strip the survivor's heartbeat coverage.
		held       = make(map[int]int, w.cfg.Parallel)
		hbInterval time.Duration // from lease responses; 0 until the first grant
		computed   int
		gridDone   bool
		firstErr   error
	)
	// The first slot to read Done winds the others down immediately:
	// the coordinator only lingers briefly after the drain, so a
	// sibling polling for one more lease would find a closed port and
	// burn its whole retry budget on a run that already succeeded.
	markDone := func() {
		mu.Lock()
		gridDone = true
		mu.Unlock()
		cancel()
	}
	w.draining = func() bool {
		mu.Lock()
		defer mu.Unlock()
		return gridDone
	}

	hbStop := make(chan struct{})
	var hbWg sync.WaitGroup
	hbWg.Add(1)
	go func() {
		defer hbWg.Done()
		for {
			mu.Lock()
			interval := hbInterval
			mu.Unlock()
			if interval <= 0 {
				interval = heartbeatFloor
			}
			t := time.NewTimer(interval)
			select {
			case <-hbStop:
				t.Stop()
				return
			case <-slotCtx.Done():
				t.Stop()
				return
			case <-t.C:
			}
			mu.Lock()
			idx := make([]int, 0, len(held))
			for i := range held {
				idx = append(idx, i)
			}
			mu.Unlock()
			if len(idx) == 0 {
				continue
			}
			// A missed heartbeat is not fatal — the lease just edges
			// toward expiry; the next beat or the submission renews it.
			// The response's Dropped list (points stolen from us) is
			// deliberately not acted on: a slot holds one point it
			// cannot abort mid-run, and a finished result is worth
			// submitting anyway — submits are idempotent, first write
			// wins, so ours may still land, and the submit response is
			// how a lone slot learns the grid drained.
			var resp HeartbeatResponse
			_ = w.once(slotCtx, http.MethodPost, "/v1/heartbeat", HeartbeatRequest{Worker: w.cfg.Name, Indexes: idx}, &resp)
		}
	}()

	slot := func() error {
		for {
			if err := slotCtx.Err(); err != nil {
				return err
			}
			var lease LeaseResponse
			if err := w.call(slotCtx, http.MethodPost, "/v1/lease", LeaseRequest{Worker: w.cfg.Name, Max: 1}, &lease); err != nil {
				return fmt.Errorf("coord: worker %s leasing: %w", w.cfg.Name, err)
			}
			if lease.LeaseSeconds > 0 {
				mu.Lock()
				if hbInterval = time.Duration(lease.LeaseSeconds / 3 * float64(time.Second)); hbInterval < heartbeatFloor {
					hbInterval = heartbeatFloor
				}
				mu.Unlock()
			}
			if len(lease.Points) == 0 {
				if lease.Done {
					markDone()
					return nil
				}
				// Everything is leased out elsewhere; wait for a lease
				// to expire or the grid to drain.
				if err := sleep(slotCtx, w.cfg.Poll); err != nil {
					return err
				}
				continue
			}
			done := false
			for _, sp := range lease.Points {
				mu.Lock()
				held[sp.Index]++
				mu.Unlock()
				// The parent context, deliberately: a sibling slot
				// reading Done cancels slotCtx, and that must not chop
				// an in-flight submit the coordinator may already have
				// counted toward the drain.
				resp, err := w.runPoint(ctx, comp, sp)
				mu.Lock()
				if held[sp.Index]--; held[sp.Index] <= 0 {
					delete(held, sp.Index)
				}
				if err == nil {
					computed++
				}
				gd := gridDone
				mu.Unlock()
				if err != nil {
					if gd {
						// The grid drained while this (necessarily
						// duplicate) point was in flight; a failed
						// submit against a gone coordinator is moot.
						return nil
					}
					return err
				}
				done = done || resp.Done
			}
			if done {
				markDone()
				return nil
			}
		}
	}

	var wg sync.WaitGroup
	wg.Add(w.cfg.Parallel)
	for g := 0; g < w.cfg.Parallel; g++ {
		go func() {
			defer wg.Done()
			if err := slot(); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				cancel() // wind the other slots down
			}
		}()
	}
	wg.Wait()
	close(hbStop)
	hbWg.Wait()
	if firstErr != nil && !errors.Is(firstErr, context.Canceled) {
		// A real failure outranks everything, drained grid included.
		return computed, firstErr
	}
	if gridDone {
		// Cancellations here are markDone winding the other slots down.
		return computed, nil
	}
	if ctx.Err() != nil {
		// Normalize: the caller cancelled, whatever slot noticed first.
		return computed, ctx.Err()
	}
	return computed, firstErr
}

// runPoint checks, executes, and submits one leased point. The submit
// happens even if the lease has meanwhile expired or been stolen:
// submits are idempotent and first-write-wins, so a finished result is
// never wasted, and the response's Done flag is the only way a lone
// slot learns the grid drained.
func (w *worker) runPoint(ctx context.Context, comp *farm.CompiledSweep, sp farm.ShardPoint) (SubmitResponse, error) {
	if err := comp.Check(sp); err != nil {
		// A diverged build is this worker's defect, not the grid's —
		// exit without poisoning the run for healthy workers.
		return SubmitResponse{}, fmt.Errorf("coord: worker %s lease: %w", w.cfg.Name, err)
	}
	pr, err := comp.RunPoint(sp.Index)
	if err != nil {
		// Points are pure functions of (spec, seed): every worker would
		// fail this one identically, so report it — otherwise the queue
		// re-leases the poison point until the pool drains and the
		// coordinator waits forever.
		_ = w.call(ctx, http.MethodPost, "/v1/fail", FailRequest{Worker: w.cfg.Name, Index: sp.Index, Error: err.Error()}, nil)
		return SubmitResponse{}, fmt.Errorf("coord: worker %s point %s: %w", w.cfg.Name, sp.Label, err)
	}
	var resp SubmitResponse
	if err := w.call(ctx, http.MethodPost, "/v1/submit", SubmitRequest{Worker: w.cfg.Name, Point: pr}, &resp); err != nil {
		return SubmitResponse{}, fmt.Errorf("coord: worker %s submitting point %s: %w", w.cfg.Name, sp.Label, err)
	}
	return resp, nil
}

// fatalStatus reports whether an HTTP status ends the worker rather
// than being retried: client errors mean the request itself is wrong
// (a diverged build, a bad URL) and repeating it cannot help.
func fatalStatus(code int) bool { return code >= 400 && code < 500 }

// httpError is a non-2xx response.
type httpError struct {
	code int
	body string
}

func (e *httpError) Error() string {
	return fmt.Sprintf("HTTP %d: %s", e.code, strings.TrimSpace(e.body))
}

// call performs one protocol request, retrying transient failures
// (network errors, 5xx) with exponential backoff within the Retry
// budget. 4xx responses are fatal immediately.
func (w *worker) call(ctx context.Context, method, path string, in, out any) error {
	deadline := time.Now().Add(w.cfg.Retry)
	backoff := 100 * time.Millisecond
	for {
		err := w.once(ctx, method, path, in, out)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var he *httpError
		if errors.As(err, &he) && fatalStatus(he.code) {
			return err
		}
		if time.Now().After(deadline) {
			return err
		}
		if w.draining != nil && w.draining() {
			return err
		}
		if serr := sleep(ctx, backoff); serr != nil {
			return serr
		}
		w.retries.Add(1)
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

// once performs a single protocol request.
func (w *worker) once(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, w.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if w.cfg.Token != "" {
		req.Header.Set("Authorization", "Bearer "+w.cfg.Token)
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return &httpError{code: resp.StatusCode, body: string(msg)}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// sleep waits for d or the context, whichever ends first.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
