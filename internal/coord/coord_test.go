package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"diskpack/internal/disk"
	"diskpack/internal/farm"
	"diskpack/internal/workload"
)

// fixtureSweep is the same threshold×farm-size miniature the farm and
// CLI tests use: milliseconds per point, six points, a knee selector so
// the final verdict is part of the byte-identity check.
func fixtureSweep() farm.Sweep {
	cfg := workload.DefaultSynthetic(2, 0)
	cfg.NumFiles = 300
	cfg.MinSize = disk.MB
	cfg.MaxSize = 40 * disk.MB
	return farm.Sweep{
		Name: "coord-fixture",
		Base: farm.Spec{
			Name:     "coord-fixture",
			Workload: farm.SyntheticWorkload(cfg),
			Alloc:    farm.Packed(0.7),
		},
		Axes: []farm.Axis{
			{Kind: farm.AxisSpinThreshold, Values: []float64{30, 120, 600}},
			{Kind: farm.AxisFarmSize, Values: []float64{8, 12}},
		},
		Select: farm.Selector{Kind: farm.SelectKnee},
	}
}

// resultJSON canonicalizes a sweep result: equal bytes mean equal
// points, metrics, and selector verdict.
func resultJSON(t *testing.T, res *farm.SweepResult) string {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// directResult runs the reference single-process sweep.
func directResult(t *testing.T, sweep farm.Sweep, seed int64) string {
	t.Helper()
	res, err := farm.RunSweep(sweep, seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	return resultJSON(t, res)
}

// testCtx bounds every coordinator test so a protocol bug cannot hang
// the suite.
func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	t.Cleanup(cancel)
	return ctx
}

// startServer exposes a coordinator over real HTTP.
func startServer(t *testing.T, co *Coordinator) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(co.Handler())
	t.Cleanup(srv.Close)
	t.Cleanup(func() { co.Close() })
	return srv
}

// postJSON performs one raw protocol call (the tests' stand-in for a
// misbehaving or dead worker).
func postJSON(t *testing.T, url string, body, out any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

// TestCoordinatorMatchesRunSweep is the core guarantee: two concurrent
// pull-based workers drain the queue and the assembled report is
// byte-identical to the single-process RunSweep of the same sweep and
// seed.
func TestCoordinatorMatchesRunSweep(t *testing.T) {
	sweep := fixtureSweep()
	want := directResult(t, sweep, 9)

	co, err := New(sweep, 9, Config{BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, co)
	ctx := testCtx(t)

	var wg sync.WaitGroup
	points := make([]int, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stats, err := Work(ctx, srv.URL, WorkerConfig{
				Name: fmt.Sprintf("w%d", i), Parallel: 2, Poll: 5 * time.Millisecond,
			})
			points[i], errs[i] = stats.Points, err
		}(i)
	}
	res, err := co.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if got := points[0] + points[1]; got < sweep.NumPoints() {
		t.Errorf("workers computed %d points together, grid has %d", got, sweep.NumPoints())
	}
	if resultJSON(t, res) != want {
		t.Fatal("coordinator result differs from single-process RunSweep")
	}
	if st := co.Status(); st.Done != sweep.NumPoints() || st.Pending != 0 {
		t.Errorf("final status %+v", st)
	}
}

// TestWorkerDeathReleases pins the work-stealing path: a worker leases
// points and dies without submitting; after the lease expires a healthy
// worker steals them and the final report is still byte-identical.
func TestWorkerDeathReleases(t *testing.T) {
	sweep := fixtureSweep()
	want := directResult(t, sweep, 9)

	co, err := New(sweep, 9, Config{LeaseTimeout: MinLeaseTimeout, BatchSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, co)
	ctx := testCtx(t)

	// The "dead" worker: leases three points and is never heard from
	// again.
	var lease LeaseResponse
	postJSON(t, srv.URL+"/v1/lease", LeaseRequest{Worker: "doomed", Max: 3}, &lease)
	if len(lease.Points) != 3 {
		t.Fatalf("dead worker leased %d points, want 3", len(lease.Points))
	}

	stats, err := Work(ctx, srv.URL, WorkerConfig{Name: "healthy", Parallel: 2, Poll: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// At least the whole grid: under a slow scheduler the healthy
	// worker's own short lease can expire mid-point and the re-leased
	// copy is recomputed — WorkStats counts that duplicate as real work.
	if stats.Points < sweep.NumPoints() {
		t.Errorf("healthy worker computed %d points, want at least the whole %d-point grid", stats.Points, sweep.NumPoints())
	}
	res, err := co.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if resultJSON(t, res) != want {
		t.Fatal("post-death result differs from single-process RunSweep")
	}
}

// TestDuplicateSubmit proves idempotency: submitting one point twice
// (two workers racing on a stolen lease) discards the second copy and
// leaves the final report untouched.
func TestDuplicateSubmit(t *testing.T) {
	sweep := fixtureSweep()
	want := directResult(t, sweep, 9)

	co, err := New(sweep, 9, Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, co)
	ctx := testCtx(t)

	comp, err := farm.Compile(sweep, 9)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := comp.RunPoint(0)
	if err != nil {
		t.Fatal(err)
	}
	var first, second SubmitResponse
	postJSON(t, srv.URL+"/v1/submit", SubmitRequest{Worker: "a", Point: pr}, &first)
	postJSON(t, srv.URL+"/v1/submit", SubmitRequest{Worker: "b", Point: pr}, &second)
	if first.Duplicate || !second.Duplicate {
		t.Errorf("duplicate flags: first=%+v second=%+v", first, second)
	}

	// A result that disagrees with the compiled grid is refused, not
	// merged.
	bad := pr
	bad.Label = "threshold=999s farm=8"
	if resp := postJSON(t, srv.URL+"/v1/submit", SubmitRequest{Worker: "evil", Point: bad}, nil); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("mislabeled submission got HTTP %d, want 422", resp.StatusCode)
	}

	if _, err := Work(ctx, srv.URL, WorkerConfig{Name: "w", Parallel: 2, Poll: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	res, err := co.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if resultJSON(t, res) != want {
		t.Fatal("result with duplicate submissions differs from single-process RunSweep")
	}
}

// TestJournalRestart pins crash recovery: a coordinator journals three
// completed points and "crashes"; its successor on the same journal
// starts with them done, the pool finishes the rest, and the report is
// byte-identical.
func TestJournalRestart(t *testing.T) {
	sweep := fixtureSweep()
	want := directResult(t, sweep, 9)
	journal := filepath.Join(t.TempDir(), "coord.journal")
	ctx := testCtx(t)

	co1, err := New(sweep, 9, Config{JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := startServer(t, co1)
	comp, err := farm.Compile(sweep, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		pr, err := comp.RunPoint(i)
		if err != nil {
			t.Fatal(err)
		}
		postJSON(t, srv1.URL+"/v1/submit", SubmitRequest{Worker: "w", Point: pr}, nil)
	}
	// Crash: no graceful drain, just the journal left behind.
	srv1.Close()
	co1.Close()

	co2, err := New(sweep, 9, Config{JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	if got := co2.Recovered(); got != 3 {
		t.Fatalf("restarted coordinator recovered %d points, want 3", got)
	}
	srv2 := startServer(t, co2)
	stats, err := Work(ctx, srv2.URL, WorkerConfig{Name: "w2", Parallel: 2, Poll: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Points != sweep.NumPoints()-3 {
		t.Errorf("worker after restart computed %d points, want %d", stats.Points, sweep.NumPoints()-3)
	}
	res, err := co2.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if resultJSON(t, res) != want {
		t.Fatal("journal-recovered result differs from single-process RunSweep")
	}

	// A journal from another seed must be refused, not resumed.
	if _, err := New(sweep, 10, Config{JournalPath: journal}); err == nil ||
		!strings.Contains(err.Error(), "different sweep or seed") {
		t.Errorf("wrong-seed journal accepted: %v", err)
	}
}

// TestFullyJournaledGrid: a coordinator whose journal already covers
// the whole grid completes without any worker.
func TestFullyJournaledGrid(t *testing.T) {
	sweep := fixtureSweep()
	want := directResult(t, sweep, 9)
	journal := filepath.Join(t.TempDir(), "coord.journal")

	comp, err := farm.Compile(sweep, 9)
	if err != nil {
		t.Fatal(err)
	}
	j, _, err := farm.OpenPointJournal(journal, sweep, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < comp.NumPoints(); i++ {
		pr, err := comp.RunPoint(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Append(pr); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	co, err := New(sweep, 9, Config{JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	res, err := co.Wait(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if resultJSON(t, res) != want {
		t.Fatal("fully journaled result differs from single-process RunSweep")
	}
}

// TestServeEndToEnd drives the one-call wrapper over a real listener:
// Serve on 127.0.0.1:0, a late-joining worker, and journal cleanup
// after success.
func TestServeEndToEnd(t *testing.T) {
	sweep := fixtureSweep()
	want := directResult(t, sweep, 9)
	journal := filepath.Join(t.TempDir(), "coord.journal")
	ctx := testCtx(t)

	addrCh := make(chan string, 1)
	type served struct {
		res *farm.SweepResult
		err error
	}
	servedCh := make(chan served, 1)
	go func() {
		res, err := Serve(ctx, sweep, 9, "127.0.0.1:0", Config{
			JournalPath: journal,
			BatchSize:   2,
			OnListen:    func(a net.Addr) { addrCh <- a.String() },
		})
		servedCh <- served{res, err}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case got := <-servedCh:
		t.Fatalf("Serve exited before listening: res=%v err=%v", got.res, got.err)
	}
	if _, err := Work(ctx, "http://"+addr, WorkerConfig{Name: "w", Parallel: 2, Poll: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	got := <-servedCh
	if got.err != nil {
		t.Fatal(got.err)
	}
	if resultJSON(t, got.res) != want {
		t.Fatal("Serve result differs from single-process RunSweep")
	}
	// Success leaves the journal on disk — until the caller persists
	// the report it is the drained grid's only durable copy (cmd/disksim
	// deletes it after printing). A restart on it drains instantly.
	co, err := New(sweep, 9, Config{JournalPath: journal})
	if err != nil {
		t.Fatalf("reopening journal after a successful run: %v", err)
	}
	if got, want := co.Recovered(), co.Status().Total; got != want {
		t.Errorf("journal after success recovered %d of %d points", got, want)
	}
	res, err := co.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if resultJSON(t, res) != want {
		t.Fatal("journal-reassembled result differs from single-process RunSweep")
	}
	if err := co.RemoveJournal(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(journal); !os.IsNotExist(err) {
		t.Errorf("RemoveJournal left the file: %v", err)
	}
}

// TestConfigValidation pins the loud-range-error satellite: out-of-range
// lease, batch, and parallelism values are rejected with the valid
// range named, not clamped.
func TestConfigValidation(t *testing.T) {
	sweep := fixtureSweep()
	if _, err := New(sweep, 1, Config{LeaseTimeout: -time.Second}); err == nil || !strings.Contains(err.Error(), "valid values") {
		t.Errorf("negative lease accepted: %v", err)
	}
	if _, err := New(sweep, 1, Config{BatchSize: -2}); err == nil || !strings.Contains(err.Error(), "valid values") {
		t.Errorf("negative batch accepted: %v", err)
	}
	if _, err := Work(context.Background(), "http://127.0.0.1:0", WorkerConfig{Parallel: -1}); err == nil || !strings.Contains(err.Error(), "valid values") {
		t.Errorf("negative parallelism accepted: %v", err)
	}
	custom := sweep
	custom.Axes = append(custom.Axes, farm.Axis{Kind: farm.AxisCustom, Labels: []string{"a"},
		Apply: func(*farm.Spec, int, []int) error { return nil }})
	if _, err := New(custom, 1, Config{}); err == nil || !strings.Contains(err.Error(), "custom axes") {
		t.Errorf("custom-axis sweep served: %v", err)
	}
}

// TestWorkerCancellation: a cancelled worker returns ctx.Err() and its
// abandoned leases re-queue for the survivors.
func TestWorkerCancellation(t *testing.T) {
	sweep := fixtureSweep()
	want := directResult(t, sweep, 9)

	co, err := New(sweep, 9, Config{LeaseTimeout: MinLeaseTimeout, BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, co)
	ctx := testCtx(t)

	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := Work(cancelled, srv.URL, WorkerConfig{Name: "quitter", Parallel: 1}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled worker returned %v, want context.Canceled", err)
	}

	if _, err := Work(ctx, srv.URL, WorkerConfig{Name: "finisher", Parallel: 2, Poll: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	res, err := co.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if resultJSON(t, res) != want {
		t.Fatal("result after a cancelled worker differs from single-process RunSweep")
	}
}

// TestPoisonPointFailsRun pins the failure-propagation path: a point
// whose execution errors deterministically (an infeasible plan-only
// packing) must fail the run loudly — worker reports it, coordinator
// turns terminal, Wait returns the point error — instead of re-leasing
// the poison point until the pool drains and the coordinator waits
// forever.
func TestPoisonPointFailsRun(t *testing.T) {
	sweep := fixtureSweep()
	sweep.PlanOnly = true
	// L=0.0001 makes every file overflow the per-disk budget: Compile
	// succeeds, RunPoint fails — the poison shape.
	sweep.Axes = append(sweep.Axes, farm.Axis{Kind: farm.AxisCapL, Values: []float64{0.7, 0.0001}})

	co, err := New(sweep, 9, Config{BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, co)
	ctx := testCtx(t)

	if _, err := Work(ctx, srv.URL, WorkerConfig{Name: "w", Parallel: 2, Poll: 5 * time.Millisecond}); err == nil {
		t.Error("worker on a poison grid returned nil error")
	}
	res, err := co.Wait(ctx)
	if err == nil || res != nil {
		t.Fatalf("Wait on a poison grid = (%v, %v), want the point error", res, err)
	}
	if !strings.Contains(err.Error(), "does not fit") || !strings.Contains(err.Error(), "L=0.0001") {
		t.Errorf("poison error does not name the point and cause: %v", err)
	}
}
