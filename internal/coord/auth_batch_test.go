package coord

import (
	"net/http"
	"strings"
	"testing"
	"time"
)

// The auth satellite, end to end over loopback: an authenticated
// coordinator serves a correctly-credentialed worker to the
// byte-identical result and turns everyone else away with 401.
func TestTokenAuth(t *testing.T) {
	sweep := fixtureSweep()
	want := directResult(t, sweep, 4)
	co, err := New(sweep, 4, Config{Token: "s3cret"})
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, co)
	ctx := testCtx(t)

	// No token: uniform 401 on every route.
	resp, err := http.Get(srv.URL + "/v1/sweep")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless GET /v1/sweep: %d, want 401", resp.StatusCode)
	}
	if resp := postJSON(t, srv.URL+"/v1/lease", LeaseRequest{Worker: "w"}, nil); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless lease: %d, want 401", resp.StatusCode)
	}

	// Wrong token: the worker fails fast (401 is fatal, not retried).
	_, err = Work(ctx, srv.URL, WorkerConfig{Name: "intruder", Parallel: 1, Token: "wrong", Retry: 20 * time.Second})
	if err == nil || !strings.Contains(err.Error(), "401") {
		t.Fatalf("wrong-token worker: %v, want a 401 failure", err)
	}

	// Right token: the grid drains and the report matches.
	done := make(chan error, 1)
	go func() {
		_, werr := Work(ctx, srv.URL, WorkerConfig{Name: "trusted", Parallel: 2, Token: "s3cret"})
		done <- werr
	}()
	res, err := co.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if werr := <-done; werr != nil {
		t.Fatalf("trusted worker: %v", werr)
	}
	if got := resultJSON(t, res); got != want {
		t.Error("authenticated run differs from the single-process run")
	}
}

// Adaptive lease sizing: the EWMA of observed point wall time shrinks
// the batch so a lease's worth of work fits half its timeout, with
// BatchSize as the hard cap and FixedBatch as the off switch.
func TestAdaptiveBatchSizing(t *testing.T) {
	sweep := fixtureSweep()
	co, err := New(sweep, 9, Config{LeaseTimeout: 10 * time.Second, BatchSize: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	clock := time.Now()
	co.now = func() time.Time { return clock }

	// No observations yet: full batch.
	if got := co.Status().Batch; got != 6 {
		t.Fatalf("pre-observation batch %d, want 6", got)
	}

	// Simulate: a lease granted now, submitted 4 s later — EWMA 4 s,
	// so only one 4 s point fits half of a 10 s lease.
	co.mu.Lock()
	co.state[0].status = statusLeased
	co.state[0].grantedAt = clock
	co.mu.Unlock()
	clock = clock.Add(4 * time.Second)
	pr, err := co.comp.RunPoint(0)
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, co)
	if resp := postJSON(t, srv.URL+"/v1/submit", SubmitRequest{Worker: "w", Point: pr}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	st := co.Status()
	if st.EwmaPointSeconds != 4 {
		t.Errorf("EWMA %v, want 4", st.EwmaPointSeconds)
	}
	if st.Batch != 1 {
		t.Errorf("batch after a 4 s point %d, want 1", st.Batch)
	}

	// A lease request for "as many as possible" now gets exactly one.
	var lease LeaseResponse
	if resp := postJSON(t, srv.URL+"/v1/lease", LeaseRequest{Worker: "w", Max: 0}, &lease); resp.StatusCode != http.StatusOK {
		t.Fatalf("lease: %d", resp.StatusCode)
	}
	if len(lease.Points) != 1 {
		t.Errorf("adaptive lease granted %d points, want 1", len(lease.Points))
	}

	// Fast points re-grow the batch toward the cap.
	co.mu.Lock()
	co.ewmaSec = 0.5
	if got := co.batchLocked(); got != 6 {
		t.Errorf("fast-point batch %d, want the cap 6", got)
	}
	// FixedBatch ignores the EWMA entirely.
	co.cfg.FixedBatch = true
	co.ewmaSec = 100
	if got := co.batchLocked(); got != 6 {
		t.Errorf("fixed batch %d, want 6", got)
	}
	co.mu.Unlock()
}

// On a grid with a strong cost gradient, adaptive batches cut the tail
// wall-clock: a deterministic scheduling model (two workers pulling
// batches of points whose costs ramp) finishes later under fixed
// full-size batches than under EWMA-sized ones, because a fixed batch
// near the expensive corner stays glued to one worker while the other
// drains.
func TestAdaptiveBatchShrinksTail(t *testing.T) {
	// Point costs ramp 1..40 seconds across 40 points.
	costs := make([]float64, 40)
	for i := range costs {
		costs[i] = float64(i + 1)
	}
	const (
		lease = 60.0
		cap   = 8
	)
	makespan := func(adaptive bool) float64 {
		next := 0
		var ewma float64
		grab := func() []float64 {
			n := cap
			if adaptive && ewma > 0 {
				n = int(lease * batchLeaseFraction / ewma)
				if n < 1 {
					n = 1
				}
				if n > cap {
					n = cap
				}
			}
			if n > len(costs)-next {
				n = len(costs) - next
			}
			batch := costs[next : next+n]
			next += n
			return batch
		}
		var w1, w2 float64 // each worker's clock
		for next < len(costs) {
			// The idle worker grabs the next batch.
			w := &w1
			if w2 < w1 {
				w = &w2
			}
			for _, c := range grab() {
				*w += c
				if ewma == 0 {
					ewma = c
				} else {
					ewma = 0.3*c + 0.7*ewma
				}
			}
		}
		if w1 > w2 {
			return w1
		}
		return w2
	}
	fixed, adaptive := makespan(false), makespan(true)
	if adaptive >= fixed {
		t.Errorf("adaptive makespan %v not under fixed %v", adaptive, fixed)
	}
}
