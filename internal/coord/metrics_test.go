package coord

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"diskpack/internal/farm"
)

// TestMetricsEndpoint pins the coordinator's observability satellite:
// lease expiries and duplicate submissions are counted per worker,
// surfaced both in Status and on the /metrics exposition endpoint,
// alongside the live queue-shape gauges.
func TestMetricsEndpoint(t *testing.T) {
	sweep := fixtureSweep()
	co, err := New(sweep, 9, Config{LeaseTimeout: MinLeaseTimeout, BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	clock := time.Now()
	co.now = func() time.Time { return clock }
	srv := startServer(t, co)

	// "doomed" leases two points and is never heard from again; after
	// the lease expires, "healthy" steals both — the expiry is charged
	// to the worker that lost the points.
	var doomed LeaseResponse
	postJSON(t, srv.URL+"/v1/lease", LeaseRequest{Worker: "doomed", Max: 2}, &doomed)
	if len(doomed.Points) != 2 {
		t.Fatalf("leased %d points, want 2", len(doomed.Points))
	}
	clock = clock.Add(MinLeaseTimeout + time.Second)
	var healthy LeaseResponse
	postJSON(t, srv.URL+"/v1/lease", LeaseRequest{Worker: "healthy", Max: 2}, &healthy)
	if len(healthy.Points) != 2 {
		t.Fatalf("steal leased %d points, want 2", len(healthy.Points))
	}

	// One point submitted twice: the second copy is a counted
	// duplicate.
	comp, err := farm.Compile(sweep, 9)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := comp.RunPoint(healthy.Points[0].Index)
	if err != nil {
		t.Fatal(err)
	}
	postJSON(t, srv.URL+"/v1/submit", SubmitRequest{Worker: "healthy", Point: pr}, nil)
	postJSON(t, srv.URL+"/v1/submit", SubmitRequest{Worker: "late", Point: pr}, nil)

	// Nudge the clock so the surviving lease has a visible age (still
	// well inside its timeout).
	clock = clock.Add(heartbeatFloor)

	st := co.Status()
	if st.Expired != 2 {
		t.Errorf("Status.Expired = %d, want 2", st.Expired)
	}
	if st.Duplicates != 1 {
		t.Errorf("Status.Duplicates = %d, want 1", st.Duplicates)
	}
	if st.Done != 1 {
		t.Errorf("Status.Done = %d, want 1", st.Done)
	}

	// Per-worker rows, sorted by name: doomed went silent past one
	// lease timeout (dead, no points), healthy still holds one live
	// lease, late only ever submitted a duplicate.
	if len(st.Workers) != 3 {
		t.Fatalf("Status.Workers has %d rows, want doomed/healthy/late", len(st.Workers))
	}
	for i, want := range []string{"doomed", "healthy", "late"} {
		if st.Workers[i].Name != want {
			t.Fatalf("Workers[%d] = %q, want %q", i, st.Workers[i].Name, want)
		}
	}
	if n := len(st.Workers[0].Points); n != 0 {
		t.Errorf("doomed still shows %d in-flight points after losing its lease", n)
	}
	wantLabel := healthy.Points[1].Label
	if got := st.Workers[1].Points; len(got) != 1 || got[0] != wantLabel {
		t.Errorf("healthy in-flight points %v, want [%s]", got, wantLabel)
	}
	age := heartbeatFloor.Seconds()
	if st.Workers[1].OldestLeaseAgeSeconds != age || st.MaxLeaseAgeSeconds != age {
		t.Errorf("lease ages %v / %v, want %v", st.Workers[1].OldestLeaseAgeSeconds, st.MaxLeaseAgeSeconds, age)
	}
	if st.LiveWorkers != 2 {
		t.Errorf("LiveWorkers = %d, want healthy and late", st.LiveWorkers)
	}

	// The same rows come back over GET /v1/status, labels included.
	stResp, err := http.Get(srv.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	stBody, err := io.ReadAll(stResp.Body)
	stResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var wire Status
	if err := json.Unmarshal(stBody, &wire); err != nil {
		t.Fatal(err)
	}
	if len(wire.Workers) != 3 || len(wire.Workers[1].Points) != 1 || wire.Workers[1].Points[0] != wantLabel {
		t.Errorf("/v1/status workers %+v, want healthy holding %q", wire.Workers, wantLabel)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	for _, want := range []string{
		`coord_lease_expiries_total{worker="doomed"} 2`,
		`coord_leases_total{worker="doomed"} 2`,
		`coord_leases_total{worker="healthy"} 2`,
		`coord_duplicate_submits_total{worker="late"} 1`,
		`coord_submits_total{worker="healthy"} 1`,
		`coord_points_done 1`,
		`coord_points_leased 1`,
		`coord_points_pending 4`,
		`coord_workers_live 2`,
		`coord_lease_age_max_seconds 0.05`,
		`coord_point_seconds_bucket`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestMetricsAuth pins that /metrics sits behind the same token wall
// as the protocol endpoints.
func TestMetricsAuth(t *testing.T) {
	co, err := New(fixtureSweep(), 9, Config{Token: "sekrit"})
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, co)
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("unauthenticated /metrics got %d, want 401", resp.StatusCode)
	}
	req, _ := http.NewRequest("GET", srv.URL+"/metrics", nil)
	req.Header.Set("Authorization", "Bearer sekrit")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("authenticated /metrics got %d, want 200", resp2.StatusCode)
	}
}
