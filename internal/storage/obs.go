package storage

import (
	"fmt"

	"diskpack/internal/disk"
	"diskpack/internal/obs"
)

// Observability taps. Everything in this file only READS simulation
// state, and always at points where every shard is parked (runner
// construction, window boundaries, the final fold), so recording is
// race-free and the recorded stream is deterministic at any worker
// count: per-disk timelines are single-writer (each disk belongs to
// exactly one shard, and its transition sequence is shard-layout-
// invariant by the byte-identity property), and boundary events append
// in boundary order, which is also layout-invariant.

// attachObs wires the observer's trace recorder to every disk. Called
// once from newRunner, after the disks exist and before any simulated
// time passes, in ascending global disk order — so each timeline opens
// with the construction-time Idle segment.
func (r *runner) attachObs() {
	o := r.cfg.Obs
	if o == nil || o.Trace == nil {
		return
	}
	o.Trace.InitTracks(r.cfg.NumDisks, disk.StateNames())
	for d := 0; d < r.cfg.NumDisks; d++ {
		s := 0
		if r.shardOf != nil {
			s = int(r.shardOf[d])
		}
		r.shards[s].localDisk(d).SetRecorder(o.Trace)
	}
}

// checkInterrupt polls the observer's interrupt flag at a boundary
// (shards parked). A set flag aborts the run with obs.ErrInterrupted
// so the CLI can flush partial trace and telemetry output.
func (r *runner) checkInterrupt(now float64) error {
	if r.cfg.Obs.Interrupted() {
		return fmt.Errorf("storage: run %w at t=%.0fs", obs.ErrInterrupted, now)
	}
	return nil
}

// simSteps sums fired-event counts across shards — the live progress
// figure published as disksim_sim_events.
func (r *runner) simSteps() uint64 {
	var n uint64
	for _, m := range r.shards {
		n += m.env.Steps()
	}
	return n
}

// observeWindow publishes one closed window to every enabled sink.
// Runs after the stream observer (so tunable-group thresholds are
// filled in) and before the accumulators reset.
func (r *runner) observeWindow(w *Window) error {
	o := r.cfg.Obs
	if o == nil {
		return nil
	}
	if m := o.Metrics; m != nil {
		m.Windows.Inc()
		m.SimSeconds.Set(w.End)
		m.SimEvents.Set(float64(r.simSteps()))
		m.Arrivals.Add(w.Total.Arrivals)
		m.Completions.Add(w.Total.Completed)
		m.SpinUps.Add(int64(w.Total.SpinUps))
		m.SpinDowns.Add(int64(w.Total.SpinDowns))
		m.EnergyJoules.Add(w.Total.Energy + w.MigrationEnergy)
		m.RespP95.Set(w.Total.RespP95)
		m.MigratedFiles.Add(w.MigratedFiles)
		m.Failures.Add(int64(w.Failures))
		m.Rebuilds.Add(int64(w.Rebuilds))
		m.Resp.AddBuckets(w.Total.RespHist, w.Total.RespMean*float64(w.Total.Completed))
		if span := w.End - w.Start; span > 0 {
			m.PowerWatts.Set(w.Total.Energy / span)
			m.StandbyDisks.Set(w.Total.StandbyTime / span)
		}
	}
	if t := o.Trace; t != nil {
		t.Emit(obs.TraceEvent{
			Phase: 'C', Track: "windows", Name: "load", At: w.End,
			Args: map[string]any{
				"arrivals":  w.Total.Arrivals,
				"completed": w.Total.Completed,
			},
		})
		t.Emit(obs.TraceEvent{
			Phase: 'C', Track: "windows", Name: "power+tail", At: w.End,
			Args: map[string]any{
				"p95_s":   w.Total.RespP95,
				"power_w": windowPower(w),
			},
		})
	}
	if tw := o.Telemetry; tw != nil {
		tw2 := telemetryWindow(w)
		if err := tw.WriteWindow(&tw2); err != nil {
			return fmt.Errorf("storage: telemetry: %w", err)
		}
	}
	return nil
}

// windowPower is the window's mean farm power in watts.
func windowPower(w *Window) float64 {
	if span := w.End - w.Start; span > 0 {
		return w.Total.Energy / span
	}
	return 0
}

// observeFinal publishes run-final figures: the trace horizon (so
// open-ended state segments close) and the authoritative end-of-run
// metric values. Classic (windowless) runs publish their whole-run
// counters here; windowed runs already accumulated them per window.
func (r *runner) observeFinal(res *Results, horizon float64) {
	o := r.cfg.Obs
	if o == nil {
		return
	}
	if t := o.Trace; t != nil {
		t.SetHorizon(horizon)
	}
	if m := o.Metrics; m != nil {
		if r.sc == nil {
			m.Arrivals.Add(res.Completed + res.Unfinished)
			m.Completions.Add(res.Completed)
			m.SpinUps.Add(int64(res.SpinUps))
			m.SpinDowns.Add(int64(res.SpinDowns))
			m.MigratedFiles.Add(res.MigratedFiles)
			m.Failures.Add(int64(res.Failures))
			m.Rebuilds.Add(int64(res.Rebuilds))
		}
		m.SimSeconds.Set(horizon)
		m.SimEvents.Set(float64(r.simSteps()))
		m.EnergyJoules.Set(res.Energy)
		m.PowerWatts.Set(res.AvgPower)
		m.StandbyDisks.Set(res.AvgStandbyDisks)
		m.RespP95.Set(res.RespP95)
	}
}

// telemetryGroup converts one group row to its JSONL record (cloning
// the histograms — the window buffers are reused).
func telemetryGroup(g *GroupWindow) obs.TelemetryGroup {
	return obs.TelemetryGroup{
		Group:       g.Group,
		Disks:       g.Disks,
		Arrivals:    g.Arrivals,
		Completed:   g.Completed,
		RespMean:    g.RespMean,
		RespP50:     g.RespP50,
		RespP95:     g.RespP95,
		RespP99:     g.RespP99,
		RespMax:     g.RespMax,
		Energy:      g.Energy,
		SpinUps:     g.SpinUps,
		SpinDowns:   g.SpinDowns,
		StandbyTime: g.StandbyTime,
		Threshold:   g.Threshold,
		IdleGaps:    append([]int64(nil), g.IdleGaps...),
		RespHist:    append([]int64(nil), g.RespHist...),
	}
}

// telemetryWindow converts one Window to its JSONL record.
func telemetryWindow(w *Window) obs.TelemetryWindow {
	tw := obs.TelemetryWindow{
		Index:           w.Index,
		Start:           w.Start,
		End:             w.End,
		Final:           w.Final,
		Total:           telemetryGroup(&w.Total),
		Groups:          make([]obs.TelemetryGroup, len(w.Groups)),
		CacheHits:       w.CacheHits,
		CacheMisses:     w.CacheMisses,
		MigrationEnergy: w.MigrationEnergy,
		MigratedFiles:   w.MigratedFiles,
		MigratedBytes:   w.MigratedBytes,
		Failures:        w.Failures,
		DataLossEvents:  w.DataLossEvents,
		Rebuilds:        w.Rebuilds,
		RebuildTime:     w.RebuildTime,
	}
	for g := range w.Groups {
		tw.Groups[g] = telemetryGroup(&w.Groups[g])
	}
	return tw
}
