package storage

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"diskpack/internal/disk"
	"diskpack/internal/trace"
)

// streamTrace builds a small deterministic trace: files striped over
// sizes, arrivals spaced so some gaps cross the break-even threshold.
func streamTrace(files, reqs int, spacing float64) (*trace.Trace, []int) {
	tr := &trace.Trace{Duration: float64(reqs) * spacing}
	for i := 0; i < files; i++ {
		tr.Files = append(tr.Files, trace.FileInfo{ID: i, Size: int64(10+i) * disk.MB, Rate: 0.01})
	}
	assign := make([]int, files)
	for i := range assign {
		assign[i] = i % 3
	}
	for r := 0; r < reqs; r++ {
		tr.Requests = append(tr.Requests, trace.Request{Time: float64(r) * spacing, FileID: r % files})
	}
	return tr, assign
}

// A do-nothing observer must not change anything about the run.
func TestStreamMatchesRun(t *testing.T) {
	tr, assign := streamTrace(12, 400, 7)
	cfg := Config{NumDisks: 3, IdleThreshold: BreakEven}
	ref, err := Run(tr, assign, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunStream(tr, assign, cfg, StreamConfig{Epoch: 130})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(ref)
	b, _ := json.Marshal(got)
	if string(a) != string(b) {
		t.Error("RunStream with no observer diverges from Run")
	}
}

// Window cadence: ceil(horizon/epoch) windows, contiguous spans, Final
// on the last.
func TestStreamWindowCadence(t *testing.T) {
	tr, assign := streamTrace(6, 100, 5)
	var windows []Window
	_, err := RunStream(tr, assign, Config{NumDisks: 3, IdleThreshold: 30}, StreamConfig{
		Epoch: 90,
		OnWindow: func(w *Window, ctl *RunControl) error {
			windows = append(windows, *w.Clone())
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	horizon := tr.Duration
	want := int(math.Ceil(horizon / 90))
	if len(windows) != want {
		t.Fatalf("%d windows, want %d", len(windows), want)
	}
	for i, w := range windows {
		if i > 0 && w.Start != windows[i-1].End {
			t.Errorf("window %d starts at %v, previous ended %v", i, w.Start, windows[i-1].End)
		}
		if (i == len(windows)-1) != w.Final {
			t.Errorf("window %d Final=%v", i, w.Final)
		}
	}
	if windows[len(windows)-1].End != horizon {
		t.Errorf("last window ends %v, horizon %v", windows[len(windows)-1].End, horizon)
	}
}

// Realloc redirects future requests, charges migration energy, and is
// reported in the window that follows.
func TestStreamRealloc(t *testing.T) {
	tr, assign := streamTrace(9, 300, 6)
	moved := false
	var afterRealloc *Window
	res, err := RunStream(tr, assign, Config{NumDisks: 4, IdleThreshold: BreakEven}, StreamConfig{
		Epoch: 450,
		OnWindow: func(w *Window, ctl *RunControl) error {
			if moved && afterRealloc == nil {
				afterRealloc = w.Clone() // snapshots are double-buffered
			}
			if moved || w.Final {
				return nil
			}
			next := ctl.Assign()
			for f := range next {
				next[f] = 3 // consolidate everything onto the spare disk
			}
			n, bytes, err := ctl.Realloc(next)
			if err != nil {
				return err
			}
			if n != len(next) || bytes <= 0 {
				t.Errorf("realloc moved %d files / %d bytes", n, bytes)
			}
			moved = true
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !moved {
		t.Fatal("realloc never ran")
	}
	if res.MigratedFiles != 9 || res.MigrationEnergy <= 0 {
		t.Errorf("migration accounting: %d files, %v J", res.MigratedFiles, res.MigrationEnergy)
	}
	if afterRealloc == nil || afterRealloc.MigratedFiles != 9 {
		t.Errorf("window after realloc reports %+v", afterRealloc)
	}
	// All migration energy rides on Energy, none on the baseline.
	ref, err := Run(tr, assign, Config{NumDisks: 4, IdleThreshold: BreakEven})
	if err != nil {
		t.Fatal(err)
	}
	if res.NoSavingEnergy != ref.NoSavingEnergy {
		// Different service placement changes seek/transfer split only
		// if disks differ in params — here they are identical, so the
		// baseline should match closely.
		if math.Abs(res.NoSavingEnergy-ref.NoSavingEnergy) > 1e-6*ref.NoSavingEnergy {
			t.Errorf("baseline moved: %v vs %v", res.NoSavingEnergy, ref.NoSavingEnergy)
		}
	}
}

// Invalid reallocations are rejected whole, leaving the run intact.
func TestStreamReallocRejects(t *testing.T) {
	tr, assign := streamTrace(6, 60, 10)
	checked := false
	_, err := RunStream(tr, assign, Config{NumDisks: 3, IdleThreshold: 30}, StreamConfig{
		Epoch: 200,
		OnWindow: func(w *Window, ctl *RunControl) error {
			if checked {
				return nil
			}
			checked = true
			before := ctl.Assign()
			// Out-of-farm target.
			bad := append([]int(nil), before...)
			bad[0] = 7
			if _, _, err := ctl.Realloc(bad); err == nil {
				t.Error("out-of-farm realloc accepted")
			}
			// Wrong length.
			if _, _, err := ctl.Realloc(bad[:3]); err == nil {
				t.Error("short realloc accepted")
			}
			// Overfilled disk: everything on disk 0 exceeds nothing here
			// (files are small), so fake it with a capacity-sized file
			// set is overkill — instead unplace a placed file.
			bad2 := append([]int(nil), before...)
			bad2[1] = Unplaced
			if _, _, err := ctl.Realloc(bad2); err == nil {
				t.Error("unplacing realloc accepted")
			}
			if !reflect.DeepEqual(ctl.Assign(), before) {
				t.Error("rejected realloc mutated the map")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !checked {
		t.Fatal("observer never ran")
	}
}

// The observer's error aborts the run.
func TestStreamObserverError(t *testing.T) {
	tr, assign := streamTrace(4, 40, 5)
	wantErr := "boom"
	_, err := RunStream(tr, assign, Config{NumDisks: 3, IdleThreshold: 30}, StreamConfig{
		Epoch: 50,
		OnWindow: func(w *Window, ctl *RunControl) error {
			return errTest(wantErr)
		},
	})
	if err == nil || err.Error() != wantErr {
		t.Errorf("err = %v", err)
	}
}

type errTest string

func (e errTest) Error() string { return string(e) }

// Bucket helpers cover their bounds.
func TestHistogramBuckets(t *testing.T) {
	if got := idleGapBucket(0.5); got != 0 {
		t.Errorf("gap 0.5 in bucket %d", got)
	}
	if got := idleGapBucket(1e9); got != len(IdleGapBuckets()) {
		t.Errorf("huge gap in bucket %d", got)
	}
	if got := respBucket(15); got != 7 {
		t.Errorf("rt 15 in bucket %d (bounds %v)", got, RespBuckets())
	}
	if got := respBucket(15.01); got != 8 {
		t.Errorf("rt 15.01 in bucket %d", got)
	}
}
