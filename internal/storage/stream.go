package storage

import (
	"fmt"
	"math"

	"diskpack/internal/cache"
	"diskpack/internal/disk"
	"diskpack/internal/sim"
	"diskpack/internal/stats"
	"diskpack/internal/trace"
)

// Windowed telemetry: the observe half of the online control loop
// (internal/control). RunStream executes exactly the simulation Run
// executes — the event order is untouched, so a run with a do-nothing
// observer is byte-identical to Run — but advances the clock in
// epoch-length windows and emits a Window snapshot at every boundary:
// per-group arrival and completion counts, response-time quantiles,
// energy, spin transitions, standby time, and an idle-gap histogram.
// The observer may actuate between windows through RunControl
// (mid-run reallocation; spin thresholds actuate through the policy
// objects the caller owns), which is the decide→actuate half.

// IdleGapBuckets returns the upper bounds, in seconds, of the idle-gap
// histogram buckets (the last bucket is unbounded). Log-spaced around
// the Table 2 drive's 53.3 s break-even time, so a controller can read
// "how many gaps would a threshold of X have converted to standby"
// straight off the histogram.
func IdleGapBuckets() []float64 {
	return []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}
}

// idleGapBucket returns the histogram slot for a gap length.
func idleGapBucket(gap float64) int {
	bounds := idleGapBounds
	for i, b := range bounds {
		if gap <= b {
			return i
		}
	}
	return len(bounds)
}

var idleGapBounds = IdleGapBuckets()

// RespBuckets returns the upper bounds, in seconds, of the
// response-time histogram buckets (the last bucket is unbounded).
// The grid is anchored on the Table 2 drive's 15 s spin-up time, so a
// tail-budget controller can count "responses that paid a spin-up"
// exactly: a request stalled behind a wake-up takes > 15 s, and 15 is
// a bucket bound.
func RespBuckets() []float64 {
	return []float64{0.1, 0.2, 0.5, 1, 2, 5, 10, 15, 20, 30, 60, 120, 300, 900}
}

var respBounds = RespBuckets()

// respBucket returns the histogram slot for a response time.
func respBucket(rt float64) int {
	for i, b := range respBounds {
		if rt <= b {
			return i
		}
	}
	return len(respBounds)
}

// GroupWindow is one disk group's share of a telemetry window.
type GroupWindow struct {
	// Group is the group index (-1 for the farm-wide total).
	Group int
	// Disks is the number of drives in the group.
	Disks int
	// Arrivals counts requests dispatched toward the group's disks
	// during the window (cache hits included — the request targeted the
	// group even if the cache absorbed it).
	Arrivals int64
	// Completed counts requests finished during the window (cache hits
	// included, at zero response time).
	Completed int64
	// Response-time distribution over the window's completions, seconds.
	RespMean, RespP50, RespP95, RespP99, RespMax float64
	// Energy is the group's consumption during the window, joules.
	Energy float64
	// Spin transitions during the window.
	SpinUps, SpinDowns int
	// StandbyTime is disk-seconds spent in standby during the window.
	StandbyTime float64
	// IdleGaps is the histogram of idle-gap lengths closed during the
	// window (a gap is closed by the arrival ending it); bucket bounds
	// are IdleGapBuckets, plus one overflow bucket.
	IdleGaps []int64
	// RespHist is the histogram of the window's completion response
	// times; bucket bounds are RespBuckets, plus one overflow bucket.
	// Quantiles interpolate; the histogram counts exactly — a
	// tail-budget controller reads "completions over budget" off it.
	RespHist []int64
	// Threshold is the group's spin-down threshold at the window
	// boundary, filled by the farm layer for tunable groups (zero
	// otherwise — storage does not know the policies' internals).
	Threshold float64
}

// Window is one epoch's telemetry snapshot. Snapshots are
// double-buffered: the Window passed to an observer is valid until the
// next-but-one window boundary, after which its storage is reused. An
// observer that only reads within its OnWindow call needs nothing
// special; one that retains windows across epochs must Clone them.
type Window struct {
	// Index numbers windows from zero.
	Index int
	// Start and End bound the window in simulated seconds.
	Start, End float64
	// Final marks the window that reaches the horizon.
	Final bool
	// Groups holds one entry per disk group.
	Groups []GroupWindow
	// Total is the farm-wide aggregate (Group = -1).
	Total GroupWindow
	// Cache activity during the window (zero without a cache).
	CacheHits, CacheMisses int64
	// Migration accounting for reallocations actuated since the
	// previous window.
	MigrationEnergy float64
	MigratedFiles   int64
	MigratedBytes   int64
}

// Clone returns a deep copy of the window that shares no storage with
// the double-buffered snapshot, safe to retain indefinitely.
func (w *Window) Clone() *Window {
	c := *w
	c.Groups = make([]GroupWindow, len(w.Groups))
	copy(c.Groups, w.Groups)
	for g := range c.Groups {
		c.Groups[g].IdleGaps = append([]int64(nil), w.Groups[g].IdleGaps...)
		c.Groups[g].RespHist = append([]int64(nil), w.Groups[g].RespHist...)
	}
	c.Total.IdleGaps = append([]int64(nil), w.Total.IdleGaps...)
	c.Total.RespHist = append([]int64(nil), w.Total.RespHist...)
	return &c
}

// StreamConfig parameterizes a windowed run.
type StreamConfig struct {
	// Epoch is the window length in seconds (> 0).
	Epoch float64
	// GroupOf maps disk → group index; nil puts every disk in group 0.
	// Group indices must be dense from zero.
	GroupOf []int
	// OnWindow is called at every epoch boundary with the window just
	// closed and the actuation handle. Returning an error aborts the
	// run. The snapshot is immutable history, valid until the
	// next-but-one boundary (double-buffered — Clone to retain);
	// actuations apply to the simulation from the boundary onward.
	OnWindow func(w *Window, ctl *RunControl) error
}

// validate resolves defaults against a farm size.
func (sc *StreamConfig) validate(numDisks int) error {
	if !(sc.Epoch > 0) || math.IsNaN(sc.Epoch) {
		return fmt.Errorf("storage: stream epoch %v must be positive", sc.Epoch)
	}
	if sc.GroupOf != nil && len(sc.GroupOf) != numDisks {
		return fmt.Errorf("storage: GroupOf covers %d disks, farm has %d", len(sc.GroupOf), numDisks)
	}
	for d, g := range sc.GroupOf {
		if g < 0 {
			return fmt.Errorf("storage: disk %d in negative group %d", d, g)
		}
	}
	return nil
}

// RunControl is the actuation surface handed to the window observer.
// Its methods apply at the window boundary, before any further
// simulated time passes.
type RunControl struct {
	m *machine
}

// Assign returns a copy of the live file→disk map (Unplaced for files
// not yet written).
func (c *RunControl) Assign() []int {
	return append([]int(nil), c.m.place...)
}

// Realloc replaces the live file→disk map: files whose disk changes
// are "migrated" at a modeled cost — a read at the source plus a write
// at the target, each at that drive's transfer rate and active power —
// charged to the run's energy (and reported per window), not to
// request response times; like the reorg engine, migration is assumed
// to ride quiet periods. Placed files must stay placed and unplaced
// files unplaced, every target must be inside the farm, and no disk
// may be overfilled; a violating assignment is rejected whole. Requests
// already queued on the old disks finish there; arrivals from the
// boundary on follow the new map.
func (c *RunControl) Realloc(assign []int) (moved int, movedBytes int64, err error) {
	m := c.m
	if len(assign) != len(m.place) {
		return 0, 0, fmt.Errorf("storage: realloc covers %d files, trace has %d", len(assign), len(m.place))
	}
	free := make([]int64, m.cfg.NumDisks)
	for d := range free {
		free[d] = m.cfg.paramsFor(d).CapacityBytes
	}
	var energy float64
	for f, d := range assign {
		old := m.place[f]
		switch {
		case old < 0 && d != Unplaced:
			return 0, 0, fmt.Errorf("storage: realloc places unwritten file %d (write policy owns it)", f)
		case old >= 0 && (d < 0 || d >= m.cfg.NumDisks):
			return 0, 0, fmt.Errorf("storage: realloc sends file %d to disk %d outside farm of %d", f, d, m.cfg.NumDisks)
		}
		if d >= 0 {
			free[d] -= m.tr.Files[f].Size
		}
		if old >= 0 && d != old {
			size := m.tr.Files[f].Size
			moved++
			movedBytes += size
			src, dst := m.cfg.paramsFor(old), m.cfg.paramsFor(d)
			energy += float64(size)/src.TransferRate*src.ActivePower +
				float64(size)/dst.TransferRate*dst.ActivePower
		}
	}
	for d, b := range free {
		if b < 0 {
			return 0, 0, fmt.Errorf("storage: realloc overfills disk %d by %d bytes", d, -b)
		}
	}
	copy(m.place, assign)
	copy(m.freeBytes, free)
	m.migrationEnergy += energy
	m.migratedFiles += int64(moved)
	m.migratedBytes += movedBytes
	return moved, movedBytes, nil
}

// fixedTimeout is the constant-threshold policy the classic Run path
// uses (identical to the one disk.New installs).
type fixedTimeout float64

func (f fixedTimeout) Timeout() float64  { return float64(f) }
func (fixedTimeout) ObserveIdle(float64) {}

// gapRecorder wraps a disk's spin policy to histogram closed idle gaps
// into the current window. Timeout passes straight through, so wrapped
// and unwrapped runs behave identically.
type gapRecorder struct {
	inner disk.SpinPolicy
	acc   *winAccum
	group int
}

func (g *gapRecorder) Timeout() float64 { return g.inner.Timeout() }

func (g *gapRecorder) ObserveIdle(gap float64) {
	// Only the per-group bucket is touched here; the farm-wide total is
	// a sum over groups computed once per window at snapshot time, not
	// a second increment on every gap.
	g.acc.gaps[g.group][idleGapBucket(gap)]++
	g.inner.ObserveIdle(gap)
}

// winAccum accumulates one window's per-group activity and remembers
// the cumulative counters at the previous boundary so snapshot can
// report deltas.
type winAccum struct {
	groupOf []int
	disksIn []int // disks per group
	// Per-group accumulators, reset (capacity kept) every window. The
	// farm-wide histogram and arrival totals are derived by summing
	// groups at snapshot time; only respTotal runs in the hot path,
	// because exact farm-wide quantiles cannot be recovered from
	// per-group samples.
	resp      []stats.Sample
	respTotal stats.Sample
	arrivals  []int64
	gaps      [][]int64
	rhist     [][]int64
	// bufs double-buffers the emitted snapshots: the window under
	// construction reuses the storage of the window before last, so an
	// observer can read (or hand off) the previous snapshot while the
	// current one fills without any per-epoch slice allocation.
	bufs [2]Window

	prevEnergy    []float64
	prevUps       []int
	prevDowns     []int
	prevStandby   []float64
	prevHits      int64
	prevMisses    int64
	prevMigEnergy float64
	prevMigFiles  int64
	prevMigBytes  int64
	index         int
}

func newWinAccum(groupOf []int, numDisks int) *winAccum {
	ng := 1
	for _, g := range groupOf {
		if g+1 > ng {
			ng = g + 1
		}
	}
	a := &winAccum{
		groupOf:     groupOf,
		disksIn:     make([]int, ng),
		resp:        make([]stats.Sample, ng),
		arrivals:    make([]int64, ng),
		gaps:        make([][]int64, ng),
		rhist:       make([][]int64, ng),
		prevEnergy:  make([]float64, numDisks),
		prevUps:     make([]int, numDisks),
		prevDowns:   make([]int, numDisks),
		prevStandby: make([]float64, numDisks),
	}
	for g := range a.gaps {
		a.gaps[g] = make([]int64, len(idleGapBounds)+1)
		a.rhist[g] = make([]int64, len(respBounds)+1)
	}
	for _, g := range groupOf {
		a.disksIn[g]++
	}
	if len(groupOf) == 0 {
		a.disksIn[0] = numDisks
	}
	for i := range a.bufs {
		a.bufs[i].Groups = make([]GroupWindow, ng)
		for g := range a.bufs[i].Groups {
			a.bufs[i].Groups[g].IdleGaps = make([]int64, len(idleGapBounds)+1)
			a.bufs[i].Groups[g].RespHist = make([]int64, len(respBounds)+1)
		}
		a.bufs[i].Total.IdleGaps = make([]int64, len(idleGapBounds)+1)
		a.bufs[i].Total.RespHist = make([]int64, len(respBounds)+1)
	}
	return a
}

func (a *winAccum) group(d int) int {
	if len(a.groupOf) == 0 {
		return 0
	}
	return a.groupOf[d]
}

// snapshot closes the window [start, end], filling the next snapshot
// buffer and advancing the previous-boundary counters. The returned
// Window reuses double-buffered storage: it stays valid until the
// next-but-one snapshot, and retaining observers must Clone it.
func (a *winAccum) snapshot(m *machine, start, end float64, final bool) *Window {
	w := &a.bufs[a.index&1]
	w.Index = a.index
	w.Start, w.End, w.Final = start, end, final
	a.index++
	fill := func(gw *GroupWindow, group, disks int, s *stats.Sample, arrivals int64) {
		// Keep the buffer's slices across the struct reset.
		gaps, rhist := gw.IdleGaps, gw.RespHist
		*gw = GroupWindow{
			Group:     group,
			Disks:     disks,
			Arrivals:  arrivals,
			Completed: s.Count(),
			IdleGaps:  gaps,
			RespHist:  rhist,
		}
		if s.Count() > 0 {
			gw.RespMean = s.Mean()
			gw.RespP50 = s.Quantile(0.5)
			gw.RespP95 = s.Quantile(0.95)
			gw.RespP99 = s.Quantile(0.99)
			gw.RespMax = s.Max()
		}
	}
	var arrTotal int64
	for g := range w.Groups {
		fill(&w.Groups[g], g, a.disksIn[g], &a.resp[g], a.arrivals[g])
		copy(w.Groups[g].IdleGaps, a.gaps[g])
		copy(w.Groups[g].RespHist, a.rhist[g])
		arrTotal += a.arrivals[g]
	}
	fill(&w.Total, -1, m.cfg.NumDisks, &a.respTotal, arrTotal)
	// Farm-wide histograms are the sum over groups, computed once here
	// rather than double-counted on every hot-path increment.
	for b := range w.Total.IdleGaps {
		w.Total.IdleGaps[b] = 0
	}
	for b := range w.Total.RespHist {
		w.Total.RespHist[b] = 0
	}
	for g := range a.gaps {
		for b, v := range a.gaps[g] {
			w.Total.IdleGaps[b] += v
		}
		for b, v := range a.rhist[g] {
			w.Total.RespHist[b] += v
		}
	}
	for d, dk := range m.disks {
		g := a.group(d)
		e := dk.EnergyAt(end)
		ups, downs := dk.SpinUps(), dk.SpinDowns()
		standby := dk.StateDurationAt(disk.Standby, end)
		w.Groups[g].Energy += e - a.prevEnergy[d]
		w.Groups[g].SpinUps += ups - a.prevUps[d]
		w.Groups[g].SpinDowns += downs - a.prevDowns[d]
		w.Groups[g].StandbyTime += standby - a.prevStandby[d]
		w.Total.Energy += e - a.prevEnergy[d]
		w.Total.SpinUps += ups - a.prevUps[d]
		w.Total.SpinDowns += downs - a.prevDowns[d]
		w.Total.StandbyTime += standby - a.prevStandby[d]
		a.prevEnergy[d] = e
		a.prevUps[d] = ups
		a.prevDowns[d] = downs
		a.prevStandby[d] = standby
	}
	w.CacheHits, w.CacheMisses = 0, 0
	if m.lru != nil {
		s := m.lru.Stats()
		w.CacheHits, w.CacheMisses = s.Hits-a.prevHits, s.Misses-a.prevMisses
		a.prevHits, a.prevMisses = s.Hits, s.Misses
	}
	w.MigrationEnergy = m.migrationEnergy - a.prevMigEnergy
	w.MigratedFiles = m.migratedFiles - a.prevMigFiles
	w.MigratedBytes = m.migratedBytes - a.prevMigBytes
	a.prevMigEnergy, a.prevMigFiles, a.prevMigBytes = m.migrationEnergy, m.migratedFiles, m.migratedBytes
	// Reset the per-window accumulators for the next window, keeping
	// their backing storage.
	for g := range a.resp {
		a.resp[g].Reset()
		a.arrivals[g] = 0
		for b := range a.gaps[g] {
			a.gaps[g][b] = 0
		}
		for b := range a.rhist[g] {
			a.rhist[g][b] = 0
		}
	}
	a.respTotal.Reset()
	return w
}

// machine is one simulation run's state: configuration, entities, and
// counters. Both Run and RunStream drive it; the stream fields stay nil
// on the classic path.
type machine struct {
	cfg     Config
	tr      *trace.Trace
	env     *sim.Env
	nextReq int    // index of the next trace request to dispatch (chained arrivals)
	arrSeq  uint64 // FIFO position reserved for request 0 (request i gets arrSeq+i)

	disks     []*disk.Disk
	lru       *cache.LRU
	place     []int
	freeBytes []int64

	resp                                                      stats.Sample
	completed, writesPlaced, writesToSpinning, writesRejected int64
	readsUnplaced                                             int64
	migrationEnergy                                           float64
	migratedFiles, migratedBytes                              int64

	sc  *StreamConfig
	acc *winAccum

	// Request pool: per-request state is recycled through a free list
	// (slab-allocated) and every request shares one Done function —
	// doneFn, the m.onDone method value bound once at construction —
	// with the owning disk index carried in Request.Tag. Steady-state
	// submit/complete therefore allocates nothing.
	doneFn  func(*disk.Request, sim.Time)
	reqFree []*disk.Request
	reqSlab []disk.Request
}

// reqSlabSize is the request-pool refill size; a refill covers one
// disk's worth of queue depth several times over.
const reqSlabSize = 64

func (m *machine) allocReq() *disk.Request {
	if n := len(m.reqFree); n > 0 {
		r := m.reqFree[n-1]
		m.reqFree = m.reqFree[:n-1]
		return r
	}
	if len(m.reqSlab) == 0 {
		m.reqSlab = make([]disk.Request, reqSlabSize)
	}
	r := &m.reqSlab[0]
	m.reqSlab = m.reqSlab[1:]
	return r
}

// nextArrivalCB dispatches the next trace request and schedules the one
// after it. Arrivals are chained — exactly one arrival event is pending
// at any instant — so the event queue holds only the simulation's
// working set (services, timers, one arrival) instead of the whole
// trace horizon. That keeps the calendar queue's epoch span near-term
// (idle timers stay rung-resident with O(1) cancel) and the node pool
// proportional to concurrency, not trace length. Validate() guarantees
// the request stream is time-sorted, which is what makes the chain
// legal; the FIFO positions reserved at construction (arrSeq) make it
// invisible — every arrival keeps the tie-breaking rank it would have
// had scheduled upfront, so runs are byte-identical to the eager
// scheme.
func nextArrivalCB(a any) {
	m := a.(*machine)
	r := m.tr.Requests[m.nextReq]
	m.nextReq++
	if m.nextReq < len(m.tr.Requests) {
		m.env.AtArgSeq(m.tr.Requests[m.nextReq].Time, nextArrivalCB, m,
			m.arrSeq+uint64(m.nextReq))
	}
	m.onRequest(r)
}

// newMachine validates inputs and assembles the run (disks, cache,
// placement tables, scheduled requests) without advancing the clock.
func newMachine(tr *trace.Trace, assign []int, cfg Config, sc *StreamConfig) (*machine, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	if len(assign) != len(tr.Files) {
		return nil, fmt.Errorf("storage: assignment covers %d files, trace has %d", len(assign), len(tr.Files))
	}
	for f, d := range assign {
		if (d < 0 && d != Unplaced) || d >= cfg.NumDisks {
			return nil, fmt.Errorf("storage: file %d assigned to disk %d outside farm of %d", f, d, cfg.NumDisks)
		}
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if sc != nil {
		if err := sc.validate(cfg.NumDisks); err != nil {
			return nil, err
		}
	}

	m := &machine{cfg: cfg, tr: tr, env: sim.NewEnv(), sc: sc}
	if sc != nil {
		m.acc = newWinAccum(sc.GroupOf, cfg.NumDisks)
	}
	m.disks = make([]*disk.Disk, cfg.NumDisks)
	for i := range m.disks {
		p := cfg.paramsFor(i)
		var pol disk.SpinPolicy
		switch {
		case cfg.PolicyFactory != nil:
			pol = cfg.PolicyFactory(i)
		case cfg.IdleThreshold == BreakEven:
			pol = fixedTimeout(p.BreakEvenThreshold())
		default:
			pol = fixedTimeout(cfg.IdleThreshold)
		}
		if m.acc != nil {
			pol = &gapRecorder{inner: pol, acc: m.acc, group: m.acc.group(i)}
		}
		m.disks[i] = disk.NewWithPolicy(m.env, i, p, pol)
	}
	if cfg.CacheBytes > 0 {
		m.lru = cache.NewLRU(cfg.CacheBytes)
	}

	// place is the dynamic file→disk map: the write policy fills in
	// Unplaced entries at write time; freeBytes tracks remaining raw
	// capacity per disk.
	m.place = append([]int(nil), assign...)
	m.freeBytes = make([]int64, cfg.NumDisks)
	for d := range m.freeBytes {
		m.freeBytes[d] = cfg.paramsFor(d).CapacityBytes
	}
	for f, d := range m.place {
		if d >= 0 {
			m.freeBytes[d] -= tr.Files[f].Size
		}
	}
	m.doneFn = m.onDone
	if len(tr.Requests) > 0 {
		m.arrSeq = m.env.ReserveSeqs(len(tr.Requests))
		m.env.AtArgSeq(tr.Requests[0].Time, nextArrivalCB, m, m.arrSeq)
	}
	return m, nil
}

// spinning reports whether the disk can absorb a write without a
// spin-up.
func (m *machine) spinning(d *disk.Disk) bool {
	switch d.State() {
	case disk.Idle, disk.Seeking, disk.Transferring, disk.SpinningUp:
		return true
	}
	return false
}

// chooseWriteDisk implements the Section 1 policy: prefer an
// already-spinning disk with space (first-fit, or best-fit with
// WriteBestFit), falling back to any disk with space.
func (m *machine) chooseWriteDisk(size int64) int {
	for _, spinOnly := range []bool{true, false} {
		best := -1
		for d := 0; d < m.cfg.NumDisks; d++ {
			if m.freeBytes[d] < size || (spinOnly && !m.spinning(m.disks[d])) {
				continue
			}
			if !m.cfg.WriteBestFit {
				return d
			}
			if best == -1 || m.freeBytes[d] < m.freeBytes[best] {
				best = d
			}
		}
		if best >= 0 {
			return best
		}
	}
	return -1
}

// noteArrival counts a request dispatched toward disk d in the current
// window.
func (m *machine) noteArrival(d int) {
	if m.acc == nil {
		return
	}
	m.acc.arrivals[m.acc.group(d)]++
}

// noteComplete records a completion served by disk d (or its cache
// front) in the current window.
func (m *machine) noteComplete(d int, rt float64) {
	if m.acc == nil {
		return
	}
	g := m.acc.group(d)
	m.acc.resp[g].Add(rt)
	m.acc.respTotal.Add(rt) // farm-wide quantiles need every sample
	m.acc.rhist[g][respBucket(rt)]++
}

// onRequest dispatches one trace request at its arrival instant.
func (m *machine) onRequest(r trace.Request) {
	size := m.tr.Files[r.FileID].Size
	if r.Write {
		d := m.place[r.FileID]
		if d < 0 {
			d = m.chooseWriteDisk(size)
			if d < 0 {
				m.writesRejected++
				return
			}
			if m.spinning(m.disks[d]) {
				m.writesToSpinning++
			}
			m.place[r.FileID] = d
			m.freeBytes[d] -= size
			m.writesPlaced++
		}
		m.noteArrival(d)
		m.submit(d, r.FileID, size)
		return
	}
	d := m.place[r.FileID]
	if d < 0 {
		m.readsUnplaced++
		return
	}
	m.noteArrival(d)
	if m.lru != nil && m.lru.Get(r.FileID, size) {
		// Cache hit: served without disk involvement; the paper counts
		// these as (near-)zero response time.
		m.resp.Add(0)
		m.completed++
		m.noteComplete(d, 0)
		return
	}
	m.submit(d, r.FileID, size)
}

// submit enqueues a whole-file read on disk d using a pooled request.
func (m *machine) submit(d int, fileID int, size int64) {
	req := m.allocReq()
	*req = disk.Request{
		FileID:  fileID,
		Size:    size,
		Arrival: m.env.Now(),
		Done:    m.doneFn,
		Tag:     d,
	}
	m.disks[d].Submit(req)
}

// onDone is the completion callback shared by every pooled request; it
// recycles the request, which the disk permits from inside Done.
func (m *machine) onDone(req *disk.Request, doneAt sim.Time) {
	rt := doneAt - req.Arrival
	m.resp.Add(rt)
	m.completed++
	if m.lru != nil {
		m.lru.Put(req.FileID, req.Size)
	}
	m.noteComplete(req.Tag, rt)
	m.reqFree = append(m.reqFree, req)
}

// horizon returns the accounting horizon: the trace duration, extended
// to the last arrival if the trace under-declares it.
func (m *machine) horizon() float64 {
	h := m.tr.Duration
	if n := len(m.tr.Requests); n > 0 {
		h = math.Max(h, m.tr.Requests[n-1].Time)
	}
	return h
}

// run advances the simulation to the horizon — in one stretch on the
// classic path, window by window when streaming — and assembles the
// results.
func (m *machine) run() (*Results, error) {
	horizon := m.horizon()
	if m.sc == nil {
		m.env.RunUntil(horizon)
	} else {
		err := m.env.RunWindows(m.sc.Epoch, horizon, func(start, end sim.Time, final bool) error {
			w := m.acc.snapshot(m, start, end, final)
			if m.sc.OnWindow == nil {
				return nil
			}
			return m.sc.OnWindow(w, &RunControl{m})
		})
		if err != nil {
			return nil, err
		}
	}

	res := &Results{
		Duration:         horizon,
		Completed:        m.completed,
		PerDisk:          make([]disk.Breakdown, m.cfg.NumDisks),
		WritesPlaced:     m.writesPlaced,
		WritesToSpinning: m.writesToSpinning,
		WritesRejected:   m.writesRejected,
		ReadsUnplaced:    m.readsUnplaced,
		MigrationEnergy:  m.migrationEnergy,
		MigratedFiles:    m.migratedFiles,
		MigratedBytes:    m.migratedBytes,
	}
	res.Unfinished = int64(len(m.tr.Requests)) - m.completed - m.writesRejected - m.readsUnplaced
	var standbyTime float64
	for i, d := range m.disks {
		d.Finalize()
		b := d.Breakdown()
		res.PerDisk[i] = b
		res.Energy += b.Energy
		res.SpinUps += b.SpinUps
		res.SpinDowns += b.SpinDowns
		standbyTime += b.Durations[disk.Standby]
		if q := d.PeakQueueLen(); q > res.PeakQueue {
			res.PeakQueue = q
		}
		// No-saving baseline: this disk would have idled at idle
		// power whenever it was not seeking/transferring; seek and
		// transfer time are workload-determined and identical under
		// either policy.
		seek := b.Durations[disk.Seeking]
		xfer := b.Durations[disk.Transferring]
		p := m.cfg.paramsFor(i)
		res.NoSavingEnergy += p.IdlePower*(horizon-seek-xfer) +
			p.SeekPower*seek + p.ActivePower*xfer
	}
	// Migration rides on top of the disks' own accounting: the policy
	// caused it, so it is charged to Energy but not to the no-saving
	// baseline (which never migrates).
	res.Energy += m.migrationEnergy
	if horizon > 0 {
		res.AvgPower = res.Energy / horizon
		res.AvgStandbyDisks = standbyTime / horizon
	}
	if res.NoSavingEnergy > 0 {
		res.PowerSavingRatio = 1 - res.Energy/res.NoSavingEnergy
	}
	if m.resp.Count() > 0 {
		res.RespMean = m.resp.Mean()
		res.RespMedian = m.resp.Median()
		res.RespP95 = m.resp.Quantile(0.95)
		res.RespP99 = m.resp.Quantile(0.99)
		res.RespMax = m.resp.Max()
	}
	if m.lru != nil {
		s := m.lru.Stats()
		res.CacheHits, res.CacheMisses = s.Hits, s.Misses
		res.CacheHitRatio = m.lru.HitRatio()
	}
	return res, nil
}

// RunStream simulates the trace like Run while emitting a telemetry
// Window every sc.Epoch simulated seconds (the last window ends at the
// horizon and is marked Final). With a do-nothing observer the results
// are byte-identical to Run — the window machinery only reads state.
// Observers actuate through the RunControl handle and through whatever
// policy objects the caller installed via Config.PolicyFactory.
func RunStream(tr *trace.Trace, assign []int, cfg Config, sc StreamConfig) (*Results, error) {
	m, err := newMachine(tr, assign, cfg, &sc)
	if err != nil {
		return nil, err
	}
	return m.run()
}
