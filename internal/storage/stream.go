package storage

import (
	"fmt"
	"math"

	"diskpack/internal/disk"
	"diskpack/internal/obs"
	"diskpack/internal/sim"
	"diskpack/internal/stats"
	"diskpack/internal/trace"
)

// Windowed telemetry: the observe half of the online control loop
// (internal/control). RunStream executes exactly the simulation Run
// executes — the event order is untouched, so a run with a do-nothing
// observer is byte-identical to Run — but advances the clock in
// epoch-length windows and emits a Window snapshot at every boundary:
// per-group arrival and completion counts, response-time quantiles,
// energy, spin transitions, standby time, and an idle-gap histogram.
// The observer may actuate between windows through RunControl
// (mid-run reallocation; spin thresholds actuate through the policy
// objects the caller owns), which is the decide→actuate half.
//
// This file holds the telemetry schema and the per-shard machinery —
// one machine per shard, each with its own sim.Env, disks, and window
// accumulator. The runner that owns the shared state (placement map,
// migration ledger, window assembly) and coordinates shards lives in
// parallel.go; a sequential run is simply a runner with one shard.

// IdleGapBuckets returns the upper bounds, in seconds, of the idle-gap
// histogram buckets (the last bucket is unbounded). Log-spaced around
// the Table 2 drive's 53.3 s break-even time, so a controller can read
// "how many gaps would a threshold of X have converted to standby"
// straight off the histogram.
func IdleGapBuckets() []float64 {
	return []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}
}

// idleGapBucket returns the histogram slot for a gap length.
func idleGapBucket(gap float64) int {
	bounds := idleGapBounds
	for i, b := range bounds {
		if gap <= b {
			return i
		}
	}
	return len(bounds)
}

var idleGapBounds = IdleGapBuckets()

// RespBuckets returns the upper bounds, in seconds, of the
// response-time histogram buckets (the last bucket is unbounded).
// The grid is anchored on the Table 2 drive's 15 s spin-up time, so a
// tail-budget controller can count "responses that paid a spin-up"
// exactly: a request stalled behind a wake-up takes > 15 s, and 15 is
// a bucket bound.
func RespBuckets() []float64 {
	return []float64{0.1, 0.2, 0.5, 1, 2, 5, 10, 15, 20, 30, 60, 120, 300, 900}
}

var respBounds = RespBuckets()

// respBucket returns the histogram slot for a response time.
func respBucket(rt float64) int {
	for i, b := range respBounds {
		if rt <= b {
			return i
		}
	}
	return len(respBounds)
}

// GroupWindow is one disk group's share of a telemetry window.
type GroupWindow struct {
	// Group is the group index (-1 for the farm-wide total).
	Group int
	// Disks is the number of drives in the group.
	Disks int
	// Arrivals counts requests dispatched toward the group's disks
	// during the window (cache hits included — the request targeted the
	// group even if the cache absorbed it).
	Arrivals int64
	// Completed counts requests finished during the window (cache hits
	// included, at zero response time).
	Completed int64
	// Response-time distribution over the window's completions, seconds.
	RespMean, RespP50, RespP95, RespP99, RespMax float64
	// Energy is the group's consumption during the window, joules.
	Energy float64
	// Spin transitions during the window.
	SpinUps, SpinDowns int
	// StandbyTime is disk-seconds spent in standby during the window.
	StandbyTime float64
	// IdleGaps is the histogram of idle-gap lengths closed during the
	// window (a gap is closed by the arrival ending it); bucket bounds
	// are IdleGapBuckets, plus one overflow bucket.
	IdleGaps []int64
	// RespHist is the histogram of the window's completion response
	// times; bucket bounds are RespBuckets, plus one overflow bucket.
	// Quantiles interpolate; the histogram counts exactly — a
	// tail-budget controller reads "completions over budget" off it.
	RespHist []int64
	// Threshold is the group's spin-down threshold at the window
	// boundary, filled by the farm layer for tunable groups (zero
	// otherwise — storage does not know the policies' internals).
	Threshold float64
}

// Window is one epoch's telemetry snapshot. Snapshots are
// double-buffered: the Window passed to an observer is valid until the
// next-but-one window boundary, after which its storage is reused. An
// observer that only reads within its OnWindow call needs nothing
// special; one that retains windows across epochs must Clone them.
type Window struct {
	// Index numbers windows from zero.
	Index int
	// Start and End bound the window in simulated seconds.
	Start, End float64
	// Final marks the window that reaches the horizon.
	Final bool
	// Groups holds one entry per disk group.
	Groups []GroupWindow
	// Total is the farm-wide aggregate (Group = -1).
	Total GroupWindow
	// Cache activity during the window (zero without a cache).
	CacheHits, CacheMisses int64
	// Migration accounting for reallocations actuated since the
	// previous window.
	MigrationEnergy float64
	MigratedFiles   int64
	MigratedBytes   int64
	// Reliability accounting since the previous window (zero without
	// Config.Reliability): disk failures detected, failures that struck
	// an already-degraded group, rebuilds completed, and degraded time
	// booked by those completions.
	Failures       int
	DataLossEvents int
	Rebuilds       int
	RebuildTime    float64
}

// Clone returns a deep copy of the window that shares no storage with
// the double-buffered snapshot, safe to retain indefinitely.
func (w *Window) Clone() *Window {
	c := *w
	c.Groups = make([]GroupWindow, len(w.Groups))
	copy(c.Groups, w.Groups)
	for g := range c.Groups {
		c.Groups[g].IdleGaps = append([]int64(nil), w.Groups[g].IdleGaps...)
		c.Groups[g].RespHist = append([]int64(nil), w.Groups[g].RespHist...)
	}
	c.Total.IdleGaps = append([]int64(nil), w.Total.IdleGaps...)
	c.Total.RespHist = append([]int64(nil), w.Total.RespHist...)
	return &c
}

// StreamConfig parameterizes a windowed run.
type StreamConfig struct {
	// Epoch is the window length in seconds (> 0).
	Epoch float64
	// GroupOf maps disk → group index; nil puts every disk in group 0.
	// Group indices must be dense from zero.
	GroupOf []int
	// OnWindow is called at every epoch boundary with the window just
	// closed and the actuation handle. Returning an error aborts the
	// run. The snapshot is immutable history, valid until the
	// next-but-one boundary (double-buffered — Clone to retain);
	// actuations apply to the simulation from the boundary onward.
	OnWindow func(w *Window, ctl *RunControl) error
}

// validate resolves defaults against a farm size.
func (sc *StreamConfig) validate(numDisks int) error {
	if !(sc.Epoch > 0) || math.IsNaN(sc.Epoch) {
		return fmt.Errorf("storage: stream epoch %v must be positive", sc.Epoch)
	}
	if sc.GroupOf != nil && len(sc.GroupOf) != numDisks {
		return fmt.Errorf("storage: GroupOf covers %d disks, farm has %d", len(sc.GroupOf), numDisks)
	}
	for d, g := range sc.GroupOf {
		if g < 0 {
			return fmt.Errorf("storage: disk %d in negative group %d", d, g)
		}
	}
	return nil
}

// RunControl is the actuation surface handed to the window observer.
// Its methods apply at the window boundary, before any further
// simulated time passes — the shards are parked at the boundary while
// the observer runs, so boundary mutations are seen by every shard
// exactly from the next window on, sequentially and in parallel alike.
type RunControl struct {
	r *runner
}

// Assign returns a copy of the live file→disk map (Unplaced for files
// not yet written).
func (c *RunControl) Assign() []int {
	return append([]int(nil), c.r.place...)
}

// Realloc replaces the live file→disk map: files whose disk changes
// are "migrated" at a modeled cost — a read at the source plus a write
// at the target, each at that drive's transfer rate and active power —
// charged to the run's energy (and reported per window), not to
// request response times; like the reorg engine, migration is assumed
// to ride quiet periods. Placed files must stay placed and unplaced
// files unplaced, every target must be inside the farm, and no disk
// may be overfilled; a violating assignment is rejected whole. Requests
// already queued on the old disks finish there; arrivals from the
// boundary on follow the new map.
func (c *RunControl) Realloc(assign []int) (moved int, movedBytes int64, err error) {
	r := c.r
	if len(assign) != len(r.place) {
		return 0, 0, fmt.Errorf("storage: realloc covers %d files, trace has %d", len(assign), len(r.place))
	}
	free := make([]int64, r.cfg.NumDisks)
	for d := range free {
		free[d] = r.cfg.paramsFor(d).CapacityBytes
	}
	var energy float64
	crossShard := false
	for f, d := range assign {
		old := r.place[f]
		switch {
		case old < 0 && d != Unplaced:
			return 0, 0, fmt.Errorf("storage: realloc places unwritten file %d (write policy owns it)", f)
		case old >= 0 && (d < 0 || d >= r.cfg.NumDisks):
			return 0, 0, fmt.Errorf("storage: realloc sends file %d to disk %d outside farm of %d", f, d, r.cfg.NumDisks)
		}
		if d >= 0 {
			free[d] -= r.tr.Files[f].Size
		}
		if old >= 0 && d != old {
			size := r.tr.Files[f].Size
			moved++
			movedBytes += size
			src, dst := r.cfg.paramsFor(old), r.cfg.paramsFor(d)
			energy += float64(size)/src.TransferRate*src.ActivePower +
				float64(size)/dst.TransferRate*dst.ActivePower
			if r.shardOf != nil && r.shardOf[old] != r.shardOf[d] {
				crossShard = true
			}
		}
	}
	for d, b := range free {
		if b < 0 {
			return 0, 0, fmt.Errorf("storage: realloc overfills disk %d by %d bytes", d, -b)
		}
	}
	copy(r.place, assign)
	copy(r.freeBytes, free)
	r.migrationEnergy += energy
	r.migratedFiles += int64(moved)
	r.migratedBytes += movedBytes
	if o := r.cfg.Obs; moved > 0 && o != nil && o.Trace != nil {
		// Realloc only runs at a window boundary with every shard
		// parked, so the boundary clock is shard 0's clock.
		o.Trace.Emit(obs.TraceEvent{
			Phase: 'i', Track: "control", Name: "migration",
			At: float64(r.shards[0].env.Now()),
			Args: map[string]any{
				"files": moved, "bytes": movedBytes, "energyJ": energy,
			},
		})
	}
	// A file that crossed a shard boundary changes which shard's
	// arrival chain owns its future requests; the runner rescans every
	// chain before releasing the shards into the next window.
	if crossShard {
		r.needRescan = true
	}
	return moved, movedBytes, nil
}

// fixedTimeout is the constant-threshold policy the classic Run path
// uses (identical to the one disk.New installs).
type fixedTimeout float64

func (f fixedTimeout) Timeout() float64  { return float64(f) }
func (fixedTimeout) ObserveIdle(float64) {}

// gapRecorder wraps a disk's spin policy to histogram closed idle gaps
// into the current window. Timeout passes straight through, so wrapped
// and unwrapped runs behave identically.
type gapRecorder struct {
	inner disk.SpinPolicy
	acc   *winAccum
	group int
}

func (g *gapRecorder) Timeout() float64 { return g.inner.Timeout() }

func (g *gapRecorder) ObserveIdle(gap float64) {
	// Only the per-group bucket is touched here; the farm-wide total is
	// a sum over groups computed once per window at snapshot time, not
	// a second increment on every gap.
	g.acc.gaps[g.group][idleGapBucket(gap)]++
	g.inner.ObserveIdle(gap)
}

// winAccum accumulates one shard's share of a window — per-group
// activity for the groups the shard owns — and remembers the
// cumulative per-disk counters at the previous boundary so fillRows
// can report deltas. Group-indexed slices span every farm group (group
// indices are global); only the owned groups' entries ever fill, and
// the runner reads exactly those when assembling the merged Window.
type winAccum struct {
	groupOf []int // global disk → group (shared, read-only; nil = all group 0)
	// Per-group accumulators, reset (capacity kept) every window. The
	// farm-wide histogram and arrival totals are derived by the runner
	// summing groups at assembly time; farm-wide quantiles come from
	// concatenating and sorting the per-group samples, which
	// reproduces a single farm-wide sample bit for bit.
	resp     []stats.Sample
	arrivals []int64
	gaps     [][]int64
	rhist    [][]int64
	// rows holds the shard's filled per-group snapshot rows. The
	// runner copies owned rows into its double-buffered Window, so a
	// single buffer per shard suffices.
	rows []GroupWindow
	// Previous-boundary counters, indexed by the shard's local disk
	// index (not the global disk ID).
	prevEnergy  []float64
	prevUps     []int
	prevDowns   []int
	prevStandby []float64
}

func newWinAccum(groupOf []int, ngroups, localDisks int) *winAccum {
	a := &winAccum{
		groupOf:     groupOf,
		resp:        make([]stats.Sample, ngroups),
		arrivals:    make([]int64, ngroups),
		gaps:        make([][]int64, ngroups),
		rhist:       make([][]int64, ngroups),
		rows:        make([]GroupWindow, ngroups),
		prevEnergy:  make([]float64, localDisks),
		prevUps:     make([]int, localDisks),
		prevDowns:   make([]int, localDisks),
		prevStandby: make([]float64, localDisks),
	}
	for g := range a.gaps {
		a.gaps[g] = make([]int64, len(idleGapBounds)+1)
		a.rhist[g] = make([]int64, len(respBounds)+1)
		a.rows[g].IdleGaps = make([]int64, len(idleGapBounds)+1)
		a.rows[g].RespHist = make([]int64, len(respBounds)+1)
	}
	return a
}

func (a *winAccum) group(d int) int {
	if len(a.groupOf) == 0 {
		return 0
	}
	return a.groupOf[d]
}

// fillRows closes the window ending at end for this shard: each owned
// group's row is computed from the window accumulators and the
// per-disk counter deltas. Accumulators are NOT reset here — the
// runner still needs the raw response samples for the farm-wide
// quantile merge — reset() runs after assembly. Groups the shard does
// not own produce all-zero rows the runner never reads.
func (a *winAccum) fillRows(m *machine, end float64) {
	for g := range a.rows {
		row := &a.rows[g]
		gaps, rhist := row.IdleGaps, row.RespHist
		s := &a.resp[g]
		*row = GroupWindow{
			Group:     g,
			Arrivals:  a.arrivals[g],
			Completed: s.Count(),
			IdleGaps:  gaps,
			RespHist:  rhist,
		}
		if s.Count() > 0 {
			row.RespMean = s.Mean()
			row.RespP50 = s.Quantile(0.5)
			row.RespP95 = s.Quantile(0.95)
			row.RespP99 = s.Quantile(0.99)
			row.RespMax = s.Max()
		}
		copy(gaps, a.gaps[g])
		copy(rhist, a.rhist[g])
	}
	// Per-disk counter deltas accumulate into the owning group's row in
	// ascending global disk order (local order preserves it), exactly
	// the order the sequential accumulator used.
	for ld, dk := range m.disks {
		g := a.group(m.diskID[ld])
		row := &a.rows[g]
		e := dk.EnergyAt(end)
		ups, downs := dk.SpinUps(), dk.SpinDowns()
		standby := dk.StateDurationAt(disk.Standby, end)
		row.Energy += e - a.prevEnergy[ld]
		row.SpinUps += ups - a.prevUps[ld]
		row.SpinDowns += downs - a.prevDowns[ld]
		row.StandbyTime += standby - a.prevStandby[ld]
		a.prevEnergy[ld] = e
		a.prevUps[ld] = ups
		a.prevDowns[ld] = downs
		a.prevStandby[ld] = standby
	}
}

// reset clears the per-window accumulators for the next window,
// keeping their backing storage. Called by the runner after it has
// consumed the rows and response samples.
func (a *winAccum) reset() {
	for g := range a.resp {
		a.resp[g].Reset()
		a.arrivals[g] = 0
		for b := range a.gaps[g] {
			a.gaps[g][b] = 0
		}
		for b := range a.rhist[g] {
			a.rhist[g][b] = 0
		}
	}
}

// machine is one shard of a simulation run: a private event queue, the
// shard's disks (a subset of the farm in ascending global disk order),
// its slice of the arrival chain, and its share of the counters. A
// sequential run is a single machine owning every disk. Shards share
// no mutable state mid-window — the runner owns the placement map and
// the migration ledger, both written only at window boundaries while
// every shard is parked.
type machine struct {
	run *runner
	id  int
	env *sim.Env

	disks  []*disk.Disk // shard-local, ascending global disk ID
	diskID []int        // local index → global disk ID

	pending  int       // trace index of the scheduled (unfired) arrival; len(Requests) = exhausted
	arrEvent sim.Event // handle on the pending arrival, for boundary rescans
	arrSeq   uint64    // FIFO position reserved for request 0 (request i gets arrSeq+i)

	resp                                                      stats.Sample
	completed, writesPlaced, writesToSpinning, writesRejected int64
	readsUnplaced                                             int64

	acc *winAccum

	// Request pool: per-request state is recycled through a free list
	// (slab-allocated) and every request shares one Done function —
	// doneFn, the m.onDone method value bound once at construction —
	// with the owning disk index carried in Request.Tag. Steady-state
	// submit/complete therefore allocates nothing.
	doneFn  func(*disk.Request, sim.Time)
	reqFree []*disk.Request
	reqSlab []disk.Request

	// Rebuild streams share the pool but complete through rebuildFn
	// (m.onRebuildDone) with the job index in Tag; completions are
	// recorded shard-locally in relFins and folded at boundaries.
	rebuildFn func(*disk.Request, sim.Time)
	relFins   []relFin
}

// reqSlabSize is the request-pool refill size; a refill covers one
// disk's worth of queue depth several times over.
const reqSlabSize = 64

func (m *machine) allocReq() *disk.Request {
	if n := len(m.reqFree); n > 0 {
		r := m.reqFree[n-1]
		m.reqFree = m.reqFree[:n-1]
		return r
	}
	if len(m.reqSlab) == 0 {
		m.reqSlab = make([]disk.Request, reqSlabSize)
	}
	r := &m.reqSlab[0]
	m.reqSlab = m.reqSlab[1:]
	return r
}

// localDisk resolves a global disk ID to the shard's disk object.
func (m *machine) localDisk(d int) *disk.Disk {
	if m.run.localOf == nil {
		return m.disks[d]
	}
	return m.disks[m.run.localOf[d]]
}

// owns reports whether this shard's arrival chain dispatches requests
// for file f under the current placement map. Unplaced files fall to
// shard 0 (they only occur sequentially — the partitioner routes
// traces with unplaced writes to a single shard — or as unplaced-read
// accounting, which any single owner may count).
func (m *machine) owns(f int) bool {
	so := m.run.shardOf
	if so == nil {
		return true
	}
	d := m.run.place[f]
	if d < 0 {
		return m.id == 0
	}
	return so[d] == int32(m.id)
}

// scheduleFrom scans the trace from index idx for the next request this
// shard owns and schedules its arrival at the FIFO position reserved
// for that index — so however the trace is split across shards, every
// arrival keeps the tie-breaking rank it has in the sequential run.
func (m *machine) scheduleFrom(idx int) {
	reqs := m.run.tr.Requests
	for ; idx < len(reqs); idx++ {
		if m.owns(reqs[idx].FileID) {
			m.pending = idx
			m.arrEvent = m.env.AtArgSeq(reqs[idx].Time, nextArrivalCB, m, m.arrSeq+uint64(idx))
			return
		}
	}
	m.pending = len(reqs)
	m.arrEvent = sim.Event{}
}

// nextArrivalCB dispatches the shard's pending trace request and
// schedules the one after it. Arrivals are chained — exactly one
// arrival event is pending per shard at any instant — so the event
// queue holds only the simulation's working set (services, timers, one
// arrival) instead of the whole trace horizon. That keeps the calendar
// queue's epoch span near-term (idle timers stay rung-resident with
// O(1) cancel) and the node pool proportional to concurrency, not
// trace length. Validate() guarantees the request stream is
// time-sorted, which is what makes the chain legal; the FIFO positions
// reserved at construction (arrSeq) make it invisible — every arrival
// keeps the tie-breaking rank it would have had scheduled upfront, so
// runs are byte-identical to the eager scheme.
func nextArrivalCB(a any) {
	m := a.(*machine)
	r := m.run.tr.Requests[m.pending]
	m.scheduleFrom(m.pending + 1)
	m.onRequest(r)
}

// spinning reports whether the disk can absorb a write without a
// spin-up.
func (m *machine) spinning(d *disk.Disk) bool {
	switch d.State() {
	case disk.Idle, disk.Seeking, disk.Transferring, disk.SpinningUp:
		return true
	}
	return false
}

// chooseWriteDisk implements the Section 1 policy: prefer an
// already-spinning disk with space (first-fit, or best-fit with
// WriteBestFit), falling back to any disk with space. Placement scans
// the whole farm, which is why traces with unplaced writes run on a
// single shard (see ShardBlocker) — here that shard owns every disk.
func (m *machine) chooseWriteDisk(size int64) int {
	for _, spinOnly := range []bool{true, false} {
		best := -1
		for d := 0; d < m.run.cfg.NumDisks; d++ {
			if m.run.freeBytes[d] < size || (spinOnly && !m.spinning(m.localDisk(d))) {
				continue
			}
			if !m.run.cfg.WriteBestFit {
				return d
			}
			if best == -1 || m.run.freeBytes[d] < m.run.freeBytes[best] {
				best = d
			}
		}
		if best >= 0 {
			return best
		}
	}
	return -1
}

// noteArrival counts a request dispatched toward disk d in the current
// window.
func (m *machine) noteArrival(d int) {
	if m.acc == nil {
		return
	}
	m.acc.arrivals[m.acc.group(d)]++
}

// noteComplete records a completion served by disk d (or its cache
// front) in the current window.
func (m *machine) noteComplete(d int, rt float64) {
	if m.acc == nil {
		return
	}
	g := m.acc.group(d)
	m.acc.resp[g].Add(rt)
	m.acc.rhist[g][respBucket(rt)]++
}

// onRequest dispatches one trace request at its arrival instant.
func (m *machine) onRequest(r trace.Request) {
	size := m.run.tr.Files[r.FileID].Size
	if r.Write {
		d := m.run.place[r.FileID]
		if d < 0 {
			d = m.chooseWriteDisk(size)
			if d < 0 {
				m.writesRejected++
				return
			}
			if m.spinning(m.localDisk(d)) {
				m.writesToSpinning++
			}
			m.run.place[r.FileID] = d
			m.run.freeBytes[d] -= size
			m.writesPlaced++
		}
		m.noteArrival(d)
		m.submit(d, r.FileID, size)
		return
	}
	d := m.run.place[r.FileID]
	if d < 0 {
		m.readsUnplaced++
		return
	}
	m.noteArrival(d)
	if m.run.lru != nil && m.run.lru.Get(r.FileID, size) {
		// Cache hit: served without disk involvement; the paper counts
		// these as (near-)zero response time.
		m.resp.Add(0)
		m.completed++
		m.noteComplete(d, 0)
		return
	}
	m.submit(d, r.FileID, size)
}

// submit enqueues a whole-file read on disk d using a pooled request.
func (m *machine) submit(d int, fileID int, size int64) {
	req := m.allocReq()
	*req = disk.Request{
		FileID:  fileID,
		Size:    size,
		Arrival: m.env.Now(),
		Done:    m.doneFn,
		Tag:     d,
	}
	m.localDisk(d).Submit(req)
}

// onDone is the completion callback shared by every pooled request; it
// recycles the request, which the disk permits from inside Done.
func (m *machine) onDone(req *disk.Request, doneAt sim.Time) {
	rt := doneAt - req.Arrival
	m.resp.Add(rt)
	m.completed++
	if m.run.lru != nil {
		m.run.lru.Put(req.FileID, req.Size)
	}
	m.noteComplete(req.Tag, rt)
	m.reqFree = append(m.reqFree, req)
}

// shardStep is one barrier command: advance to end, optionally close
// the window accumulators there, optionally finalize the disks.
type shardStep struct {
	end      sim.Time
	snap     bool
	finalize bool
}

// advance executes one step on the shard — the unit of work between
// two barriers. Called inline for single-shard runs and from the
// worker goroutine otherwise.
func (m *machine) advance(st shardStep) {
	m.env.RunUntil(st.end)
	if st.snap {
		m.acc.fillRows(m, st.end)
	}
	if st.finalize {
		for _, dk := range m.disks {
			dk.Finalize()
		}
	}
}

// serve is the worker-goroutine loop: execute steps until the command
// channel closes, acknowledging each on done.
func (m *machine) serve(cmds <-chan shardStep, done chan<- int) {
	for st := range cmds {
		m.advance(st)
		done <- m.id
	}
}

// RunStream simulates the trace like Run while emitting a telemetry
// Window every sc.Epoch simulated seconds (the last window ends at the
// horizon and is marked Final). With a do-nothing observer the results
// are byte-identical to Run — the window machinery only reads state.
// Observers actuate through the RunControl handle and through whatever
// policy objects the caller installed via Config.PolicyFactory.
func RunStream(tr *trace.Trace, assign []int, cfg Config, sc StreamConfig) (*Results, error) {
	return RunStreamParallel(tr, assign, cfg, sc, ParallelConfig{})
}
