package storage

import (
	"testing"

	"diskpack/internal/disk"
	"diskpack/internal/trace"
)

// writeTrace: files 0,1 pre-placed; file 2 unplaced, written at t=50
// then read at t=500.
func writeTrace() (*trace.Trace, []int) {
	tr := &trace.Trace{
		Files: []trace.FileInfo{
			{ID: 0, Size: 72 * disk.MB},
			{ID: 1, Size: 72 * disk.MB},
			{ID: 2, Size: 144 * disk.MB},
		},
		Requests: []trace.Request{
			{Time: 10, FileID: 0},
			{Time: 50, FileID: 2, Write: true},
			{Time: 500, FileID: 2},
		},
		Duration: 1000,
	}
	return tr, []int{0, 1, Unplaced}
}

func TestWritePlacedOnSpinningDisk(t *testing.T) {
	tr, assign := writeTrace()
	// Threshold 45: disk 0 serves file 0 at t=10 (done ≈11) and its
	// re-armed timer fires at ≈56, so it is still idle-spinning at
	// the t=50 write; disk 1 never serves and is spinning down from
	// t=45. The write policy must pick disk 0.
	res, err := Run(tr, assign, Config{NumDisks: 2, IdleThreshold: 45})
	if err != nil {
		t.Fatal(err)
	}
	if res.WritesPlaced != 1 {
		t.Fatalf("writesPlaced=%d want 1", res.WritesPlaced)
	}
	if res.WritesToSpinning != 1 {
		t.Fatalf("write did not land on the spinning disk (toSpinning=%d)", res.WritesToSpinning)
	}
	if res.WritesRejected != 0 || res.ReadsUnplaced != 0 {
		t.Fatalf("rejected=%d unplaced=%d", res.WritesRejected, res.ReadsUnplaced)
	}
	// All three requests complete: the later read finds the file.
	if res.Completed != 3 || res.Unfinished != 0 {
		t.Fatalf("completed=%d unfinished=%d", res.Completed, res.Unfinished)
	}
}

func TestReadBeforeWriteCounted(t *testing.T) {
	tr, assign := writeTrace()
	// Make the read arrive before the write.
	tr.Requests[1], tr.Requests[2] = tr.Requests[2], tr.Requests[1]
	tr.Requests[1].Time, tr.Requests[2].Time = 50, 500
	// Now: read of file 2 at t=50 (unplaced), write at t=500.
	res, err := Run(tr, assign, Config{NumDisks: 2, IdleThreshold: 45})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReadsUnplaced != 1 {
		t.Fatalf("readsUnplaced=%d want 1", res.ReadsUnplaced)
	}
	if res.WritesPlaced != 1 {
		t.Fatalf("writesPlaced=%d want 1", res.WritesPlaced)
	}
	if res.Unfinished != 0 {
		t.Fatalf("unfinished=%d (unplaced read should not count)", res.Unfinished)
	}
}

func TestWriteRejectedWhenFull(t *testing.T) {
	// One disk already holding a capacity-filling file.
	p := disk.DefaultParams()
	tr := &trace.Trace{
		Files: []trace.FileInfo{
			{ID: 0, Size: p.CapacityBytes},
			{ID: 1, Size: 72 * disk.MB},
		},
		Requests: []trace.Request{{Time: 10, FileID: 1, Write: true}},
		Duration: 100,
	}
	res, err := Run(tr, []int{0, Unplaced}, Config{NumDisks: 1, IdleThreshold: disk.NeverSpinDown})
	if err != nil {
		t.Fatal(err)
	}
	if res.WritesRejected != 1 || res.WritesPlaced != 0 {
		t.Fatalf("rejected=%d placed=%d want 1,0", res.WritesRejected, res.WritesPlaced)
	}
}

func TestWriteBestFitPicksTightestSpinningDisk(t *testing.T) {
	p := disk.DefaultParams()
	// Disk 0 nearly full, disk 1 nearly empty; both spinning
	// (NeverSpinDown). Best-fit should pick disk 0; first-fit also
	// picks 0 here, so distinguish with reversed fills.
	tr := &trace.Trace{
		Files: []trace.FileInfo{
			{ID: 0, Size: 100 * disk.MB},             // on disk 0
			{ID: 1, Size: p.CapacityBytes - disk.GB}, // on disk 1: nearly full
			{ID: 2, Size: 500 * disk.MB},             // written
		},
		Requests: []trace.Request{{Time: 10, FileID: 2, Write: true}},
		Duration: 100,
	}
	assign := []int{0, 1, Unplaced}
	// First-fit: lands on disk 0 (lowest index with space).
	ff, err := Run(tr, assign, Config{NumDisks: 2, IdleThreshold: disk.NeverSpinDown})
	if err != nil {
		t.Fatal(err)
	}
	if ff.PerDisk[0].BytesRead == 0 {
		t.Fatal("first-fit write did not go to disk 0")
	}
	// Best-fit: disk 1 has ~1 GB free (tighter) and fits 500 MB.
	bf, err := Run(tr, assign, Config{NumDisks: 2, IdleThreshold: disk.NeverSpinDown, WriteBestFit: true})
	if err != nil {
		t.Fatal(err)
	}
	if bf.PerDisk[1].BytesRead == 0 {
		t.Fatal("best-fit write did not go to the tighter disk 1")
	}
}

func TestUnplacedFileNeverReadStillRuns(t *testing.T) {
	tr := &trace.Trace{
		Files:    []trace.FileInfo{{ID: 0, Size: 72 * disk.MB}, {ID: 1, Size: disk.GB}},
		Requests: []trace.Request{{Time: 1, FileID: 0}},
		Duration: 100,
	}
	res, err := Run(tr, []int{0, Unplaced}, Config{NumDisks: 1, IdleThreshold: disk.NeverSpinDown})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 {
		t.Fatalf("completed=%d", res.Completed)
	}
}

func TestOverwriteStaysInPlace(t *testing.T) {
	// A write to an already-placed file re-writes it on its disk
	// without consuming extra capacity.
	tr := &trace.Trace{
		Files: []trace.FileInfo{{ID: 0, Size: 72 * disk.MB}},
		Requests: []trace.Request{
			{Time: 10, FileID: 0, Write: true},
			{Time: 50, FileID: 0, Write: true},
		},
		Duration: 100,
	}
	res, err := Run(tr, []int{0}, Config{NumDisks: 1, IdleThreshold: disk.NeverSpinDown})
	if err != nil {
		t.Fatal(err)
	}
	if res.WritesPlaced != 0 {
		t.Fatalf("overwrites should not count as placements: %d", res.WritesPlaced)
	}
	if res.Completed != 2 {
		t.Fatalf("completed=%d want 2", res.Completed)
	}
}
