package storage

import (
	"math"
	"testing"

	"diskpack/internal/disk"
	"diskpack/internal/trace"
)

func miniTrace() *trace.Trace {
	return &trace.Trace{
		Files: []trace.FileInfo{
			{ID: 0, Size: 72 * disk.MB, Rate: 0.01}, // 1 s transfer
			{ID: 1, Size: 720 * disk.MB, Rate: 0.001},
		},
		Requests: []trace.Request{
			{Time: 10, FileID: 0},
			{Time: 100, FileID: 1},
			{Time: 100, FileID: 0},
		},
		Duration: 1000,
	}
}

func TestRunBasic(t *testing.T) {
	tr := miniTrace()
	res, err := Run(tr, []int{0, 1}, Config{NumDisks: 2, IdleThreshold: disk.NeverSpinDown})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 3 || res.Unfinished != 0 {
		t.Fatalf("completed=%d unfinished=%d", res.Completed, res.Unfinished)
	}
	// With never-spin-down, energy equals the no-saving baseline.
	if math.Abs(res.Energy-res.NoSavingEnergy) > 1e-6 {
		t.Fatalf("never-spin-down energy %v != baseline %v", res.Energy, res.NoSavingEnergy)
	}
	if math.Abs(res.PowerSavingRatio) > 1e-12 {
		t.Fatalf("saving ratio %v want 0", res.PowerSavingRatio)
	}
	if res.SpinUps != 0 || res.SpinDowns != 0 {
		t.Fatalf("spin transitions without policy: %d/%d", res.SpinUps, res.SpinDowns)
	}
	// Response time for the first request: positioning + 1 s.
	pos := disk.DefaultParams().PositioningTime()
	if math.Abs(res.RespMean-(pos+1+pos+10+pos+1)/3) > 1e-9 {
		t.Logf("mean=%v (informational)", res.RespMean)
	}
	if res.AvgPower <= 0 || res.Duration != 1000 {
		t.Fatalf("power=%v duration=%v", res.AvgPower, res.Duration)
	}
}

func TestSpinDownSavesEnergy(t *testing.T) {
	tr := miniTrace()
	always, err := Run(tr, []int{0, 0}, Config{NumDisks: 2, IdleThreshold: disk.NeverSpinDown})
	if err != nil {
		t.Fatal(err)
	}
	saving, err := Run(tr, []int{0, 0}, Config{NumDisks: 2, IdleThreshold: 53.3})
	if err != nil {
		t.Fatal(err)
	}
	if saving.Energy >= always.Energy {
		t.Fatalf("spin-down did not save energy: %v vs %v", saving.Energy, always.Energy)
	}
	if saving.PowerSavingRatio <= 0 {
		t.Fatalf("saving ratio %v want > 0", saving.PowerSavingRatio)
	}
	// Disk 1 receives no requests: it must be in standby almost the
	// whole run.
	if saving.AvgStandbyDisks < 0.9 {
		t.Fatalf("avg standby disks %v want ≈>1 (idle disk asleep)", saving.AvgStandbyDisks)
	}
	if saving.SpinDowns < 1 {
		t.Fatal("no spin-downs recorded")
	}
}

func TestSpinUpPenaltyVisibleInResponse(t *testing.T) {
	tr := &trace.Trace{
		Files:    []trace.FileInfo{{ID: 0, Size: 72 * disk.MB}},
		Requests: []trace.Request{{Time: 500, FileID: 0}},
		Duration: 1000,
	}
	res, err := Run(tr, []int{0}, Config{NumDisks: 1, IdleThreshold: 10})
	if err != nil {
		t.Fatal(err)
	}
	p := disk.DefaultParams()
	want := p.SpinUpTime + p.PositioningTime() + 1.0
	if math.Abs(res.RespMean-want) > 1e-9 {
		t.Fatalf("response %v want %v (spin-up + service)", res.RespMean, want)
	}
}

func TestBreakEvenThresholdSentinel(t *testing.T) {
	tr := miniTrace()
	res, err := Run(tr, []int{0, 0}, Config{NumDisks: 1, IdleThreshold: BreakEven})
	if err != nil {
		t.Fatal(err)
	}
	if res.SpinDowns < 1 {
		t.Fatal("break-even threshold did not spin down an idle disk in 1000 s")
	}
}

func TestCacheShortCircuitsDisk(t *testing.T) {
	// Same file requested twice, far apart; with a cache the second
	// request hits and the disk can stay asleep.
	tr := &trace.Trace{
		Files: []trace.FileInfo{{ID: 0, Size: 100 * disk.MB}},
		Requests: []trace.Request{
			{Time: 10, FileID: 0},
			{Time: 500, FileID: 0},
		},
		Duration: 1000,
	}
	cfg := Config{NumDisks: 1, IdleThreshold: 53.3, CacheBytes: disk.GB}
	res, err := Run(tr, []int{0}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits != 1 || res.CacheMisses != 1 {
		t.Fatalf("cache hits=%d misses=%d want 1/1", res.CacheHits, res.CacheMisses)
	}
	if res.CacheHitRatio != 0.5 {
		t.Fatalf("hit ratio %v", res.CacheHitRatio)
	}
	// Second request must have zero response time.
	if res.RespMedian != 0 && res.RespMean >= res.RespMax {
		t.Fatalf("cache hit response not ≈0: mean=%v max=%v", res.RespMean, res.RespMax)
	}
	// The disk starts idle, so the t=10 miss needs no spin-up, and
	// the t=500 hit must not wake it.
	if res.SpinUps != 0 {
		t.Fatalf("spinUps=%d want 0", res.SpinUps)
	}

	noCache, err := Run(tr, []int{0}, Config{NumDisks: 1, IdleThreshold: 53.3})
	if err != nil {
		t.Fatal(err)
	}
	if noCache.SpinUps != 1 {
		t.Fatalf("without cache spinUps=%d want 1 (t=500 wakes the disk)", noCache.SpinUps)
	}
	if noCache.Energy <= res.Energy {
		t.Fatalf("cache did not reduce energy: %v vs %v", res.Energy, noCache.Energy)
	}
}

func TestUnfinishedRequestsCounted(t *testing.T) {
	// A request arriving at the very end cannot finish.
	tr := &trace.Trace{
		Files:    []trace.FileInfo{{ID: 0, Size: 7200 * disk.MB}}, // 100 s transfer
		Requests: []trace.Request{{Time: 999, FileID: 0}},
		Duration: 1000,
	}
	res, err := Run(tr, []int{0}, Config{NumDisks: 1, IdleThreshold: disk.NeverSpinDown})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 0 || res.Unfinished != 1 {
		t.Fatalf("completed=%d unfinished=%d", res.Completed, res.Unfinished)
	}
}

func TestDefaultsApplied(t *testing.T) {
	tr := miniTrace()
	// Zero DiskParams → Table 2 drive.
	res, err := Run(tr, []int{0, 0}, Config{NumDisks: 1, IdleThreshold: disk.NeverSpinDown})
	if err != nil {
		t.Fatal(err)
	}
	// 1 disk idling 1000 s ≈ 9.3 kJ plus service energy.
	if res.Energy < 9000 || res.Energy > 11000 {
		t.Fatalf("energy=%v not in Table 2 ballpark", res.Energy)
	}
}

func TestRunErrors(t *testing.T) {
	tr := miniTrace()
	cases := []struct {
		name   string
		assign []int
		cfg    Config
	}{
		{"short assignment", []int{0}, Config{NumDisks: 2, IdleThreshold: 1}},
		{"disk out of range", []int{0, 5}, Config{NumDisks: 2, IdleThreshold: 1}},
		{"negative disk", []int{0, -2}, Config{NumDisks: 2, IdleThreshold: 1}}, // -1 is Unplaced, -2 is invalid
		{"zero disks", []int{0, 0}, Config{NumDisks: 0, IdleThreshold: 1}},
		{"bad threshold", []int{0, 0}, Config{NumDisks: 2, IdleThreshold: -7}},
		{"negative cache", []int{0, 0}, Config{NumDisks: 2, IdleThreshold: 1, CacheBytes: -1}},
	}
	for _, c := range cases {
		if _, err := Run(tr, c.assign, c.cfg); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	bad := miniTrace()
	bad.Requests[0].FileID = 99
	if _, err := Run(bad, []int{0, 0}, Config{NumDisks: 2, IdleThreshold: 1}); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestEmptyTraceRuns(t *testing.T) {
	tr := &trace.Trace{Duration: 100}
	res, err := Run(tr, nil, Config{NumDisks: 3, IdleThreshold: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 0 {
		t.Fatal("requests appeared from nowhere")
	}
	// All three disks idle 10 s, spin down 10 s, standby 80 s.
	want := 3 * (9.3*10 + 9.3*10 + 0.8*80)
	if math.Abs(res.Energy-want) > 1e-6 {
		t.Fatalf("energy=%v want %v", res.Energy, want)
	}
}

func TestDeterministicRuns(t *testing.T) {
	tr := miniTrace()
	cfg := Config{NumDisks: 2, IdleThreshold: 30, CacheBytes: disk.GB}
	a, err := Run(tr, []int{0, 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tr, []int{0, 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Energy != b.Energy || a.RespMean != b.RespMean || a.SpinUps != b.SpinUps {
		t.Fatal("simulation not deterministic")
	}
}

func TestConcentrationBeatsSpreading(t *testing.T) {
	// The paper's core claim in miniature: files on one disk (the
	// other asleep) use less energy than files spread across two, at
	// some response-time cost. 20 requests to 2 files over 2000 s.
	files := []trace.FileInfo{
		{ID: 0, Size: 72 * disk.MB},
		{ID: 1, Size: 72 * disk.MB},
	}
	var reqs []trace.Request
	for i := 0; i < 20; i++ {
		reqs = append(reqs, trace.Request{Time: float64(i) * 100, FileID: i % 2})
	}
	tr := &trace.Trace{Files: files, Requests: reqs, Duration: 2000}
	packed, err := Run(tr, []int{0, 0}, Config{NumDisks: 2, IdleThreshold: 53.3})
	if err != nil {
		t.Fatal(err)
	}
	spread, err := Run(tr, []int{0, 1}, Config{NumDisks: 2, IdleThreshold: 53.3})
	if err != nil {
		t.Fatal(err)
	}
	if packed.Energy >= spread.Energy {
		t.Fatalf("concentration did not save: packed=%v spread=%v", packed.Energy, spread.Energy)
	}
	if packed.PowerSavingRatio <= spread.PowerSavingRatio {
		t.Fatalf("saving ratios: packed=%v spread=%v", packed.PowerSavingRatio, spread.PowerSavingRatio)
	}
}

func TestPeakQueueReported(t *testing.T) {
	files := []trace.FileInfo{{ID: 0, Size: 720 * disk.MB}}
	reqs := []trace.Request{
		{Time: 1, FileID: 0}, {Time: 2, FileID: 0}, {Time: 3, FileID: 0},
	}
	tr := &trace.Trace{Files: files, Requests: reqs, Duration: 100}
	res, err := Run(tr, []int{0}, Config{NumDisks: 1, IdleThreshold: disk.NeverSpinDown})
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakQueue != 3 {
		t.Fatalf("peak queue %d want 3", res.PeakQueue)
	}
}
