// Package storage assembles the full disk-farm simulation the paper's
// Section 4 describes: a workload (trace), a file dispatcher holding the
// file→disk mapping table produced by an allocation algorithm, an
// optional LRU cache in front of the farm, and an array of simulated
// disks with idleness-threshold spin-down. Running a simulation yields
// the two quantities the paper trades off — energy consumed and request
// response time — plus the normalization baselines used in Figures 2–6.
package storage

import (
	"fmt"
	"math"

	"diskpack/internal/disk"
	"diskpack/internal/obs"
	"diskpack/internal/trace"
)

// Config parameterizes one simulation run.
type Config struct {
	// NumDisks is the farm size. It may exceed the number of disks the
	// allocation actually uses; unused disks spin down once and stay
	// in standby, still drawing standby power (as in the paper, where
	// both algorithms are charged for the full 100- or 96-disk farm).
	NumDisks int
	// DiskParams is the drive model (zero value → paper's Table 2).
	DiskParams disk.Params
	// PerDisk, when non-empty, gives each disk its own drive model
	// (heterogeneous farms: fast spindles for hot data, eco drives for
	// cold). Its length must equal NumDisks; DiskParams is ignored.
	// With a BreakEven threshold each disk uses its own break-even
	// time.
	PerDisk []disk.Params
	// IdleThreshold is the idleness threshold in seconds.
	// Use disk.NeverSpinDown to disable spin-down (the paper's
	// "no power-saving mechanism" baseline) or BreakEven to use the
	// drive's break-even time (53.3 s for the default drive).
	// Ignored when PolicyFactory is set.
	IdleThreshold float64
	// PolicyFactory, when non-nil, supplies a per-disk spin-down
	// policy (each disk needs its own instance because adaptive
	// policies carry state). See internal/policy for implementations.
	PolicyFactory func(diskID int) disk.SpinPolicy
	// CacheBytes enables a front LRU cache of that capacity when
	// positive (the paper uses 16 GB).
	CacheBytes int64
	// WriteBestFit switches the write-placement rule from the paper's
	// first-fit ("write into an already spinning disk if sufficient
	// space is found") to best-fit (tightest remaining space among
	// spinning disks). Both fall back to any disk with space when no
	// spinning disk fits.
	WriteBestFit bool
	// Reliability, when non-nil, enables wear-driven disk failures and
	// rebuild traffic (see ReliabilityConfig). CyclesPerDay and AFR are
	// reported for every run regardless.
	Reliability *ReliabilityConfig
	// Obs, when non-nil, receives observability output: per-disk state
	// timelines and boundary events into Obs.Trace, per-window records
	// into Obs.Telemetry, and live metrics into Obs.Metrics. Strictly
	// observation-only — results are byte-identical with or without it.
	Obs *obs.RunObserver
}

// Unplaced marks a file with no disk yet in an assignment: it must be
// written before it can be read (Section 1's write policy places it on
// a spinning disk at write time).
const Unplaced = -1

// BreakEven selects the drive's break-even idleness threshold at run
// time.
const BreakEven float64 = -1

// normalized returns the config with defaults applied.
func (c Config) normalized() (Config, error) {
	if c.DiskParams == (disk.Params{}) {
		c.DiskParams = disk.DefaultParams()
	}
	if err := c.DiskParams.Validate(); err != nil {
		return c, err
	}
	if len(c.PerDisk) > 0 {
		if len(c.PerDisk) != c.NumDisks {
			return c, fmt.Errorf("storage: PerDisk covers %d disks, NumDisks is %d", len(c.PerDisk), c.NumDisks)
		}
		for i, p := range c.PerDisk {
			if err := p.Validate(); err != nil {
				return c, fmt.Errorf("storage: disk %d: %w", i, err)
			}
		}
	} else if c.IdleThreshold == BreakEven {
		// Homogeneous farms resolve the sentinel once; heterogeneous
		// farms resolve it per disk at construction time.
		c.IdleThreshold = c.DiskParams.BreakEvenThreshold()
	}
	if c.PolicyFactory == nil && c.IdleThreshold != BreakEven &&
		(c.IdleThreshold < 0 || math.IsNaN(c.IdleThreshold)) {
		return c, fmt.Errorf("storage: invalid idleness threshold %v", c.IdleThreshold)
	}
	if c.NumDisks < 1 {
		return c, fmt.Errorf("storage: NumDisks %d must be >= 1", c.NumDisks)
	}
	if c.CacheBytes < 0 {
		return c, fmt.Errorf("storage: negative cache size %d", c.CacheBytes)
	}
	if c.Reliability != nil {
		if err := c.Reliability.validate(c.NumDisks); err != nil {
			return c, err
		}
	}
	return c, nil
}

// paramsFor returns disk i's drive model.
func (c Config) paramsFor(i int) disk.Params {
	if len(c.PerDisk) > 0 {
		return c.PerDisk[i]
	}
	return c.DiskParams
}

// Results reports the outcome of a run.
type Results struct {
	// Duration is the accounting horizon in seconds (the trace
	// duration).
	Duration float64
	// Energy is the farm's total consumption in joules over Duration.
	Energy float64
	// AvgPower is Energy/Duration in watts.
	AvgPower float64
	// NoSavingEnergy is the energy the same farm would consume serving
	// the same requests with spin-down disabled: every disk idles at
	// idle power between services. This is the paper's normalization
	// baseline ("spinning N disks without any power-saving
	// mechanism").
	NoSavingEnergy float64
	// PowerSavingRatio is 1 − Energy/NoSavingEnergy (Figure 5's
	// y-axis).
	PowerSavingRatio float64

	// Response-time distribution over completed requests, in seconds.
	RespMean, RespMedian, RespP95, RespP99, RespMax float64
	// Completed counts requests finished within the horizon;
	// Unfinished were still queued (or in flight) at the end.
	Completed, Unfinished int64
	// CacheHits/CacheMisses cover all lookups; HitRatio is their
	// ratio. All zero when no cache is configured.
	CacheHits, CacheMisses int64
	CacheHitRatio          float64

	// Write accounting (zero on read-only traces): WritesPlaced
	// counts files placed by the write policy, WritesToSpinning those
	// that landed on an already-spinning disk (the policy's goal),
	// and WritesRejected writes that fit on no disk.
	WritesPlaced, WritesToSpinning, WritesRejected int64
	// ReadsUnplaced counts reads of files never written — trace bugs
	// surfaced rather than silently dropped.
	ReadsUnplaced int64

	// Migration accounting (nonzero only when a streamed run's
	// controller actuated a mid-run reallocation, see RunControl):
	// MigrationEnergy is included in Energy but not in NoSavingEnergy
	// (the baseline never migrates).
	MigrationEnergy float64
	MigratedFiles   int64
	MigratedBytes   int64

	// Reliability accounting. Failures, DataLossEvents, Rebuilds,
	// RebuildTime (total seconds groups spent rebuilding — in-flight
	// rebuilds charge their degraded time up to the horizon), and
	// RebuildBytes are nonzero only with Config.Reliability set.
	// CyclesPerDay (farm-average start/stop cycles per disk-day) and
	// AFR (the wear model's annual failure rate extrapolated from each
	// disk's observed duty cycle, farm-averaged) are modeled for every
	// run so sweeps can select under a durability budget.
	Failures       int
	DataLossEvents int
	Rebuilds       int
	RebuildTime    float64
	RebuildBytes   int64
	CyclesPerDay   float64
	AFR            float64

	// Farm-level activity.
	SpinUps, SpinDowns int
	AvgStandbyDisks    float64 // time-average number of disks in standby
	PeakQueue          int     // largest per-disk queue seen
	PerDisk            []disk.Breakdown
}

// Run simulates the trace against a farm where file f lives on disk
// assign[f]. It returns an error for malformed inputs; the simulation
// itself is deterministic. The mechanics live in the shard machinery
// shared with RunStream (stream.go, parallel.go); Run is the classic
// un-windowed single-shard path.
func Run(tr *trace.Trace, assign []int, cfg Config) (*Results, error) {
	return RunParallel(tr, assign, cfg, ParallelConfig{})
}
