package storage

import (
	"encoding/json"
	"testing"

	"diskpack/internal/disk"
	"diskpack/internal/trace"
)

// parallelTrace builds a deterministic multi-group workload designed
// to stress the identity argument: files striped across a
// heterogeneous farm, simultaneous arrivals (FIFO tie-breaking must
// survive sharding), and writes to already-placed files (legal on the
// parallel path — only unplaced writes block sharding).
func parallelTrace(nDisks, files, reqs int) (*trace.Trace, []int, Config) {
	tr := &trace.Trace{Duration: float64(reqs) * 3}
	for i := 0; i < files; i++ {
		tr.Files = append(tr.Files, trace.FileInfo{ID: i, Size: int64(5+i%7) * disk.MB, Rate: 0.01})
	}
	assign := make([]int, files)
	for i := range assign {
		assign[i] = i % nDisks
	}
	for r := 0; r < reqs; r++ {
		// Bursts of three simultaneous arrivals every third slot hit
		// distinct disks, so ties cross shard boundaries.
		t := float64(r-r%3) * 3
		tr.Requests = append(tr.Requests, trace.Request{
			Time:   t,
			FileID: (r * 13) % files,
			Write:  r%11 == 0,
		})
	}
	perDisk := make([]disk.Params, nDisks)
	for d := range perDisk {
		perDisk[d] = disk.DefaultParams()
		if d%2 == 1 {
			// An eco half: slower, cheaper drives exercise per-disk
			// params in the merge accounting.
			perDisk[d].TransferRate /= 2
			perDisk[d].IdlePower *= 0.8
		}
	}
	cfg := Config{NumDisks: nDisks, PerDisk: perDisk, IdleThreshold: BreakEven}
	return tr, assign, cfg
}

func marshal(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// The tentpole property at the storage layer: Run output is invariant
// under the worker count, per-disk and to the last bit.
func TestRunParallelIdentity(t *testing.T) {
	tr, assign, cfg := parallelTrace(9, 40, 600)
	ref, err := Run(tr, assign, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := marshal(t, ref)
	for _, workers := range []int{2, 3, 8, 32} {
		got, err := RunParallel(tr, assign, cfg, ParallelConfig{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if g := marshal(t, got); g != want {
			t.Errorf("workers=%d: results diverge from sequential run", workers)
		}
	}
}

// Streamed runs must emit identical windows at any worker count — the
// merged snapshot a controller observes is the correctness surface.
func TestRunStreamParallelWindowIdentity(t *testing.T) {
	tr, assign, cfg := parallelTrace(8, 32, 500)
	groupOf := make([]int, 8)
	for d := range groupOf {
		groupOf[d] = d / 2 // 4 groups of 2 disks
	}
	collect := func(workers int) ([]*Window, string) {
		var ws []*Window
		res, err := RunStreamParallel(tr, assign, cfg, StreamConfig{
			Epoch:   200,
			GroupOf: groupOf,
			OnWindow: func(w *Window, ctl *RunControl) error {
				ws = append(ws, w.Clone())
				return nil
			},
		}, ParallelConfig{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return ws, marshal(t, res)
	}
	refW, refR := collect(1)
	for _, workers := range []int{2, 4} {
		gotW, gotR := collect(workers)
		if gotR != refR {
			t.Errorf("workers=%d: results diverge", workers)
		}
		if len(gotW) != len(refW) {
			t.Fatalf("workers=%d: %d windows, want %d", workers, len(gotW), len(refW))
		}
		for i := range refW {
			if marshal(t, gotW[i]) != marshal(t, refW[i]) {
				t.Errorf("workers=%d: window %d diverges", workers, i)
			}
		}
	}
}

// A boundary reallocation that moves files ACROSS shards must re-chain
// every shard's arrivals and still match the sequential run exactly.
func TestRunStreamParallelCrossShardRealloc(t *testing.T) {
	tr, assign, cfg := parallelTrace(8, 32, 500)
	groupOf := make([]int, 8)
	for d := range groupOf {
		groupOf[d] = d / 2
	}
	run := func(workers int) string {
		res, err := RunStreamParallel(tr, assign, cfg, StreamConfig{
			Epoch:   200,
			GroupOf: groupOf,
			OnWindow: func(w *Window, ctl *RunControl) error {
				if w.Index != 1 {
					return nil
				}
				// Rotate every placed file one disk to the right —
				// most moves cross the two-disk group (= shard unit)
				// boundary.
				next := ctl.Assign()
				for f, d := range next {
					if d >= 0 {
						next[f] = (d + 1) % cfg.NumDisks
					}
				}
				moved, _, err := ctl.Realloc(next)
				if err != nil {
					return err
				}
				if moved == 0 {
					t.Error("realloc moved nothing; test is vacuous")
				}
				return nil
			},
		}, ParallelConfig{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return marshal(t, res)
	}
	want := run(1)
	for _, workers := range []int{2, 4} {
		if got := run(workers); got != want {
			t.Errorf("workers=%d: results diverge after cross-shard realloc", workers)
		}
	}
}

// ShardBlocker must name the two known couplings and clear clean runs.
func TestShardBlocker(t *testing.T) {
	tr, assign, cfg := parallelTrace(4, 8, 50)
	if got := ShardBlocker(tr, assign, cfg); got != "" {
		t.Errorf("clean run blocked: %q", got)
	}
	cached := cfg
	cached.CacheBytes = disk.GB
	if got := ShardBlocker(tr, assign, cached); got == "" {
		t.Error("cache-fronted run not blocked")
	}
	unplaced := append([]int(nil), assign...)
	unplaced[tr.Requests[0].FileID] = Unplaced
	wtr := *tr
	wtr.Requests = append([]trace.Request(nil), tr.Requests...)
	wtr.Requests[0].Write = true
	if got := ShardBlocker(&wtr, unplaced, cfg); got == "" {
		t.Error("unplaced-write run not blocked")
	}
}

// Non-shardable runs must route to the sequential path (one shard, no
// goroutines) rather than being approximated — and still be correct.
func TestBlockedRunFallsBackSequential(t *testing.T) {
	tr, assign, cfg := parallelTrace(4, 8, 200)
	cfg.CacheBytes = disk.GB
	r, err := newRunner(tr, assign, cfg, nil, ParallelConfig{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.shards) != 1 {
		t.Fatalf("blocked run built %d shards, want 1", len(r.shards))
	}
	if r.shardOf != nil {
		t.Error("blocked run still carries a shard map")
	}
	ref, err := Run(tr, assign, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunParallel(tr, assign, cfg, ParallelConfig{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if marshal(t, got) != marshal(t, ref) {
		t.Error("blocked run diverges from sequential")
	}
}

// The shard count clamps to the unit count: groups when streaming,
// disks otherwise — requesting more workers than units must not panic
// or leave empty shards.
func TestShardClampAndLayout(t *testing.T) {
	tr, assign, cfg := parallelTrace(4, 8, 50)
	r, err := newRunner(tr, assign, cfg, nil, ParallelConfig{Workers: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.shards) != 4 {
		t.Fatalf("classic run with 4 disks built %d shards, want 4", len(r.shards))
	}
	sc := &StreamConfig{Epoch: 100, GroupOf: []int{0, 0, 1, 1}}
	r, err = newRunner(tr, assign, cfg, sc, ParallelConfig{Workers: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.shards) != 2 {
		t.Fatalf("streamed run with 2 groups built %d shards, want 2", len(r.shards))
	}
	for s, m := range r.shards {
		if len(m.disks) == 0 {
			t.Errorf("shard %d owns no disks", s)
		}
		for i := 1; i < len(m.diskID); i++ {
			if m.diskID[i] <= m.diskID[i-1] {
				t.Errorf("shard %d disk IDs not ascending: %v", s, m.diskID)
			}
		}
	}
}
