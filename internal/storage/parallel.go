package storage

import (
	"context"
	"fmt"
	"math"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"

	"diskpack/internal/cache"
	"diskpack/internal/disk"
	"diskpack/internal/sim"
	"diskpack/internal/stats"
	"diskpack/internal/trace"
)

// Parallel execution: one simulation sharded across worker goroutines.
//
// The farm model is partitionable because disks only interact through
// the file→disk map: once every file a request stream touches is
// placed, each request routes to exactly one disk, and disks never
// read each other's state mid-window. Shards therefore run their own
// sim.Env clocks independently between window boundaries and
// synchronize only at the RunWindows seam, where the runner merges
// per-shard telemetry into one Window (fixed group order, exact
// integer histogram addition, order-canonicalized floating-point
// reductions) before the observer sees it — so controllers observe
// and actuate against state identical to a sequential run's.
//
// Byte-identity with the sequential kernel holds because each shard's
// event order is the sequential order restricted to that shard:
// shard construction arms disk idle timers in ascending global disk
// order, every shard reserves FIFO positions for the FULL trace (so
// arrival i keeps sequential tie-breaking rank i wherever it lands),
// and runtime-scheduled events (services, timers) claim positions
// after the reserved block in both executions. Runs that DO couple
// disks mid-window — a farm-global front cache, or write placement
// for unplaced files (which scans every disk) — are detected by
// ShardBlocker and routed to the single-shard path, never silently
// approximated.

// ParallelConfig selects how many shards execute one simulation.
type ParallelConfig struct {
	// Workers is the number of shard goroutines to run the simulation
	// on. Values <= 1 select the sequential in-line path. The effective
	// shard count is clamped to the number of partitionable units
	// (telemetry groups when streaming, disks otherwise) and collapses
	// to 1 when ShardBlocker reports the run non-partitionable.
	Workers int
	// Label tags worker goroutines in CPU profiles (pprof label
	// "scenario") so profile samples attribute to the run that spawned
	// them. Empty is fine.
	Label string
}

// ShardBlocker reports why a run cannot be partitioned across shards,
// or "" when it can. A non-empty reason routes the run to the
// sequential single-shard path (parallelism is dropped, results are
// exact); callers and tests use it to assert the fallback fired.
//
// The check is static and conservative: it inspects the trace and the
// initial assignment, not the dynamic placement. That is sound because
// mid-run reallocation can move placed files but never unplace them,
// so the set of "writes that will exercise farm-global placement" is
// known before the clock starts.
func ShardBlocker(tr *trace.Trace, assign []int, cfg Config) string {
	if cfg.CacheBytes > 0 {
		return "front LRU cache is farm-global: hit state depends on every shard's access interleaving"
	}
	for _, rq := range tr.Requests {
		if rq.Write && rq.FileID >= 0 && rq.FileID < len(assign) && assign[rq.FileID] == Unplaced {
			return "write placement for unplaced files scans the whole farm for spinning disks"
		}
	}
	return ""
}

// runner owns one simulation run: the shared tables every shard reads
// (placement, free capacity), the state only the boundary mutates
// (migration ledger, cache), and the barrier machinery that advances
// shards in lockstep through windows. A sequential run is a runner
// with a single shard and no goroutines.
type runner struct {
	cfg Config
	tr  *trace.Trace
	sc  *StreamConfig
	par ParallelConfig

	shards  []*machine
	shardOf []int32 // global disk → owning shard; nil when one shard owns all
	localOf []int32 // global disk → index within its shard; nil = identity

	// place is the dynamic file→disk map: the write policy fills in
	// Unplaced entries at write time (single-shard only, see
	// ShardBlocker); freeBytes tracks remaining raw capacity per disk.
	// Mid-window these are read-only for multi-shard runs; the window
	// boundary (Realloc) is the only writer, with every shard parked.
	place     []int
	freeBytes []int64
	lru       *cache.LRU

	// rel is the reliability ledger (nil without Config.Reliability):
	// failure clocks, redundancy groups, in-flight rebuilds. Checked
	// only at reliability boundaries with every shard parked.
	rel *relState

	migrationEnergy float64
	migratedFiles   int64
	migratedBytes   int64
	// needRescan marks that a boundary Realloc moved a file across
	// shards, so every shard's arrival chain must re-derive ownership
	// before the next window runs.
	needRescan bool

	// Streaming state (nil/zero on the classic path).
	ngroups     int
	disksIn     []int
	groupOwner  []int32 // group → owning shard; nil when single-shard
	bufs        [2]Window
	windex      int
	respScratch []float64
	prevHits    int64
	prevMisses  int64
	prevMigE    float64
	prevMigF    int64
	prevMigB    int64

	// Barrier channels (nil when single-shard): cmds fan one shardStep
	// out to every worker, done collects acknowledgements. The
	// send→receive pairing gives the happens-before edges that make
	// boundary mutations (placement, policy tunables, accumulator
	// reset) visible to every shard race-free.
	cmds []chan shardStep
	done chan int
}

// numGroups derives the dense group count from a GroupOf map.
func numGroups(groupOf []int) int {
	ng := 1
	for _, g := range groupOf {
		if g+1 > ng {
			ng = g + 1
		}
	}
	return ng
}

// newRunner validates inputs, decides the shard layout, and builds the
// per-shard machines without advancing any clock.
func newRunner(tr *trace.Trace, assign []int, cfg Config, sc *StreamConfig, par ParallelConfig) (*runner, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	if len(assign) != len(tr.Files) {
		return nil, fmt.Errorf("storage: assignment covers %d files, trace has %d", len(assign), len(tr.Files))
	}
	for f, d := range assign {
		if (d < 0 && d != Unplaced) || d >= cfg.NumDisks {
			return nil, fmt.Errorf("storage: file %d assigned to disk %d outside farm of %d", f, d, cfg.NumDisks)
		}
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if sc != nil {
		if err := sc.validate(cfg.NumDisks); err != nil {
			return nil, err
		}
	}

	r := &runner{cfg: cfg, tr: tr, sc: sc, par: par}
	if cfg.Reliability != nil {
		r.rel = newRelState(*cfg.Reliability, cfg.NumDisks)
	}
	if sc != nil {
		r.ngroups = numGroups(sc.GroupOf)
		r.disksIn = make([]int, r.ngroups)
		for _, g := range sc.GroupOf {
			r.disksIn[g]++
		}
		if len(sc.GroupOf) == 0 {
			r.disksIn[0] = cfg.NumDisks
		}
	}

	// Shard layout. Units never split: a telemetry group's disks stay
	// together when streaming (the group's histograms and samples are
	// single-writer), and each disk is a unit on the classic path.
	nshards := par.Workers
	if nshards < 1 {
		nshards = 1
	}
	if nshards > 1 && ShardBlocker(tr, assign, cfg) != "" {
		nshards = 1
	}
	if nshards > 1 {
		units := cfg.NumDisks
		if sc != nil {
			units = r.ngroups
		}
		if nshards > units {
			nshards = units
		}
	}
	if nshards > 1 {
		// Greedy lightest-shard assignment in unit-index order: each
		// unit lands on the currently smallest shard (ties → lowest
		// index), which is deterministic and balances disk counts.
		r.shardOf = make([]int32, cfg.NumDisks)
		load := make([]int, nshards)
		pick := func(weight int) int32 {
			best := 0
			for s := 1; s < nshards; s++ {
				if load[s] < load[best] {
					best = s
				}
			}
			load[best] += weight
			return int32(best)
		}
		if sc != nil {
			r.groupOwner = make([]int32, r.ngroups)
			for g := 0; g < r.ngroups; g++ {
				r.groupOwner[g] = pick(r.disksIn[g])
			}
			if len(sc.GroupOf) == 0 {
				for d := range r.shardOf {
					r.shardOf[d] = r.groupOwner[0]
				}
			} else {
				for d, g := range sc.GroupOf {
					r.shardOf[d] = r.groupOwner[g]
				}
			}
		} else {
			for d := range r.shardOf {
				r.shardOf[d] = pick(1)
			}
		}
		r.localOf = make([]int32, cfg.NumDisks)
		counts := make([]int, nshards)
		for d := 0; d < cfg.NumDisks; d++ {
			s := r.shardOf[d]
			r.localOf[d] = int32(counts[s])
			counts[s]++
		}
	}

	// Shared tables.
	r.place = append([]int(nil), assign...)
	r.freeBytes = make([]int64, cfg.NumDisks)
	for d := range r.freeBytes {
		r.freeBytes[d] = cfg.paramsFor(d).CapacityBytes
	}
	for f, d := range r.place {
		if d >= 0 {
			r.freeBytes[d] -= tr.Files[f].Size
		}
	}
	if cfg.CacheBytes > 0 {
		r.lru = cache.NewLRU(cfg.CacheBytes)
	}

	// Per-shard machines. Disk construction iterates GLOBAL disk order
	// so PolicyFactory is invoked exactly as sequentially (adaptive
	// factories may be seeded per index but stateful across calls) and
	// each shard's idle timers arm in ascending order — the property
	// the byte-identity argument rests on.
	r.shards = make([]*machine, nshards)
	shardDisks := make([]int, nshards)
	if r.shardOf == nil {
		shardDisks[0] = cfg.NumDisks
	} else {
		for _, s := range r.shardOf {
			shardDisks[s]++
		}
	}
	for s := range r.shards {
		m := &machine{run: r, id: s, env: sim.NewEnv()}
		m.disks = make([]*disk.Disk, 0, shardDisks[s])
		if sc != nil || nshards > 1 {
			m.diskID = make([]int, 0, shardDisks[s])
		}
		if sc != nil {
			m.acc = newWinAccum(sc.GroupOf, r.ngroups, shardDisks[s])
		}
		m.doneFn = m.onDone
		m.rebuildFn = m.onRebuildDone
		r.shards[s] = m
	}
	for d := 0; d < cfg.NumDisks; d++ {
		s := 0
		if r.shardOf != nil {
			s = int(r.shardOf[d])
		}
		m := r.shards[s]
		p := cfg.paramsFor(d)
		var pol disk.SpinPolicy
		switch {
		case cfg.PolicyFactory != nil:
			pol = cfg.PolicyFactory(d)
		case cfg.IdleThreshold == BreakEven:
			pol = fixedTimeout(p.BreakEvenThreshold())
		default:
			pol = fixedTimeout(cfg.IdleThreshold)
		}
		if m.acc != nil {
			pol = &gapRecorder{inner: pol, acc: m.acc, group: m.acc.group(d)}
		}
		m.disks = append(m.disks, disk.NewWithPolicy(m.env, d, p, pol))
		if m.diskID != nil {
			m.diskID = append(m.diskID, d)
		}
	}
	// Observability attaches before any simulated time passes, so each
	// disk's timeline opens with its construction-time Idle segment.
	r.attachObs()
	// Every shard reserves FIFO positions for the FULL trace after its
	// construction-time timers, mirroring the sequential machine:
	// request i occupies rank arrSeq+i on whichever shard owns it, so
	// simultaneous events tie-break identically at any shard count.
	if len(tr.Requests) > 0 {
		for _, m := range r.shards {
			m.arrSeq = m.env.ReserveSeqs(len(tr.Requests))
			m.scheduleFrom(0)
		}
	} else {
		for _, m := range r.shards {
			m.pending = 0
		}
	}

	// Streaming window buffers (double-buffered toward the observer).
	if sc != nil {
		for i := range r.bufs {
			r.bufs[i].Groups = make([]GroupWindow, r.ngroups)
			for g := range r.bufs[i].Groups {
				r.bufs[i].Groups[g].IdleGaps = make([]int64, len(idleGapBounds)+1)
				r.bufs[i].Groups[g].RespHist = make([]int64, len(respBounds)+1)
			}
			r.bufs[i].Total.IdleGaps = make([]int64, len(idleGapBounds)+1)
			r.bufs[i].Total.RespHist = make([]int64, len(respBounds)+1)
		}
	}
	return r, nil
}

// horizon returns the accounting horizon: the trace duration, extended
// to the last arrival if the trace under-declares it.
func (r *runner) horizon() float64 {
	h := r.tr.Duration
	if n := len(r.tr.Requests); n > 0 {
		h = math.Max(h, r.tr.Requests[n-1].Time)
	}
	return h
}

// startWorkers launches one goroutine per shard (none when
// single-shard) and returns the stop function that closes their
// command channels. Workers carry pprof labels so a CPU profile
// attributes samples to (scenario, shard, groups).
func (r *runner) startWorkers() func() {
	if len(r.shards) == 1 {
		return func() {}
	}
	label := r.par.Label
	if label == "" {
		label = "run"
	}
	r.cmds = make([]chan shardStep, len(r.shards))
	r.done = make(chan int, len(r.shards))
	for i, m := range r.shards {
		ch := make(chan shardStep, 1)
		r.cmds[i] = ch
		labels := pprof.Labels(
			"scenario", label,
			"shard", strconv.Itoa(m.id),
			"groups", r.shardGroups(m.id),
		)
		go func(m *machine, ch chan shardStep) {
			pprof.Do(context.Background(), labels, func(context.Context) {
				m.serve(ch, r.done)
			})
		}(m, ch)
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			for _, ch := range r.cmds {
				close(ch)
			}
		})
	}
}

// shardGroups renders the telemetry groups (streaming) or disk count
// (classic) a shard owns, for profile labels.
func (r *runner) shardGroups(id int) string {
	if r.groupOwner == nil {
		n := 0
		for _, s := range r.shardOf {
			if int(s) == id {
				n++
			}
		}
		return fmt.Sprintf("%d-disks", n)
	}
	var b strings.Builder
	for g, s := range r.groupOwner {
		if int(s) != id {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(g))
	}
	return b.String()
}

// advanceAll runs one barrier round: every shard executes the step,
// and the call returns only when all have acknowledged. Single-shard
// runs execute inline on the caller's goroutine.
func (r *runner) advanceAll(st shardStep) {
	if r.cmds == nil {
		r.shards[0].advance(st)
		return
	}
	for _, ch := range r.cmds {
		ch <- st
	}
	for range r.shards {
		<-r.done
	}
}

// rescanArrivals rebuilds every shard's arrival chain after a
// cross-shard reallocation: each shard cancels its pending arrival and
// rescans the trace from the first request strictly after the boundary
// under the NEW ownership map. Re-scheduled arrivals reuse the FIFO
// positions reserved at construction, so tie-breaking ranks — and
// therefore byte-identity — survive the re-chain.
func (r *runner) rescanArrivals(now float64) {
	reqs := r.tr.Requests
	// Every request at Time <= now has fired on whichever shard owned
	// it; the first strictly-later request is where ownership scanning
	// restarts.
	idx := sort.Search(len(reqs), func(i int) bool { return reqs[i].Time > now })
	for _, m := range r.shards {
		m.arrEvent.Cancel()
		m.scheduleFrom(idx)
	}
}

// assembleWindow merges the shards' per-group rows into the next
// double-buffered Window. Group rows copy bit-exactly from their
// owning shard (a group never splits); the farm-wide Total folds the
// group rows in fixed group order, sums histograms exactly (integers),
// and computes response statistics from the concatenated-then-sorted
// per-group samples — an order-canonical reduction that makes the
// merged quantiles independent of shard layout.
func (r *runner) assembleWindow(start, end float64, final bool) *Window {
	w := &r.bufs[r.windex&1]
	w.Index = r.windex
	w.Start, w.End, w.Final = start, end, final
	r.windex++

	owner := func(g int) *machine {
		if r.groupOwner == nil {
			return r.shards[0]
		}
		return r.shards[r.groupOwner[g]]
	}
	for g := 0; g < r.ngroups; g++ {
		src := &owner(g).acc.rows[g]
		dst := &w.Groups[g]
		gaps, rhist := dst.IdleGaps, dst.RespHist
		*dst = *src
		dst.Disks = r.disksIn[g]
		dst.IdleGaps, dst.RespHist = gaps, rhist
		copy(gaps, src.IdleGaps)
		copy(rhist, src.RespHist)
	}

	tGaps, tHist := w.Total.IdleGaps, w.Total.RespHist
	w.Total = GroupWindow{Group: -1, Disks: r.cfg.NumDisks, IdleGaps: tGaps, RespHist: tHist}
	for b := range tGaps {
		tGaps[b] = 0
	}
	for b := range tHist {
		tHist[b] = 0
	}
	for g := range w.Groups {
		row := &w.Groups[g]
		w.Total.Arrivals += row.Arrivals
		w.Total.Completed += row.Completed
		w.Total.Energy += row.Energy
		w.Total.SpinUps += row.SpinUps
		w.Total.SpinDowns += row.SpinDowns
		w.Total.StandbyTime += row.StandbyTime
		for b, v := range row.IdleGaps {
			tGaps[b] += v
		}
		for b, v := range row.RespHist {
			tHist[b] += v
		}
	}
	xs := r.respScratch[:0]
	for g := 0; g < r.ngroups; g++ {
		xs = owner(g).acc.resp[g].AppendValues(xs)
	}
	sort.Float64s(xs)
	r.respScratch = xs
	if len(xs) > 0 {
		w.Total.RespMean = stats.SortedMean(xs)
		w.Total.RespP50 = stats.SortedQuantile(xs, 0.5)
		w.Total.RespP95 = stats.SortedQuantile(xs, 0.95)
		w.Total.RespP99 = stats.SortedQuantile(xs, 0.99)
		w.Total.RespMax = xs[len(xs)-1]
	}

	w.CacheHits, w.CacheMisses = 0, 0
	if r.lru != nil {
		s := r.lru.Stats()
		w.CacheHits, w.CacheMisses = s.Hits-r.prevHits, s.Misses-r.prevMisses
		r.prevHits, r.prevMisses = s.Hits, s.Misses
	}
	w.MigrationEnergy = r.migrationEnergy - r.prevMigE
	w.MigratedFiles = r.migratedFiles - r.prevMigF
	w.MigratedBytes = r.migratedBytes - r.prevMigB
	r.prevMigE, r.prevMigF, r.prevMigB = r.migrationEnergy, r.migratedFiles, r.migratedBytes
	w.Failures, w.DataLossEvents, w.Rebuilds, w.RebuildTime = 0, 0, 0, 0
	if rel := r.rel; rel != nil {
		w.Failures = rel.failures - rel.prevFailures
		w.DataLossEvents = rel.dataLoss - rel.prevDataLoss
		w.Rebuilds = rel.rebuilds - rel.prevRebuilds
		w.RebuildTime = rel.rebuildTime - rel.prevRebuildTime
		rel.prevFailures, rel.prevDataLoss = rel.failures, rel.dataLoss
		rel.prevRebuilds, rel.prevRebuildTime = rel.rebuilds, rel.rebuildTime
	}
	return w
}

// run advances the simulation to the horizon — one barrier round on
// the classic path, boundary by boundary when streaming windows or
// reliability checks need the shards parked — and assembles the
// results.
func (r *runner) run() (*Results, error) {
	horizon := r.horizon()
	stop := r.startWorkers()
	defer stop()

	if r.sc == nil && r.rel == nil {
		r.advanceAll(shardStep{end: sim.Time(horizon), finalize: true})
		return r.results(horizon), nil
	}

	// The boundary loop interleaves two independent cadences: telemetry
	// windows at integer multiples of the epoch (mirroring
	// sim.Env.RunWindows exactly — the last window clipped to the
	// horizon and marked final) and reliability checks at integer
	// multiples of CheckEvery. Each iteration advances every shard in
	// lockstep to the earlier of the two next boundaries; boundary code
	// runs with every shard parked, so window observers' actuations and
	// injected rebuild streams are ordered before the next advance on
	// every shard — the property byte-identity at any worker count
	// rests on. A reliability check that coincides with a window runs
	// after it, so the failures it books appear in the next window's
	// deltas along with the rebuild traffic they inject.
	epoch, relEvery := math.Inf(1), math.Inf(1)
	if r.sc != nil {
		epoch = r.sc.Epoch
	}
	if r.rel != nil {
		relEvery = r.rel.cfg.CheckEvery
	}
	for kw, kr := 1, 1; ; {
		wEnd := float64(kw) * epoch
		rEnd := float64(kr) * relEvery
		end := math.Min(wEnd, rEnd)
		final := end >= horizon
		if final {
			end = horizon
		}
		r.advanceAll(shardStep{end: sim.Time(end), snap: r.sc != nil && (end >= wEnd || final)})
		if r.sc != nil && (end >= wEnd || final) {
			w := r.assembleWindow(float64(kw-1)*epoch, end, final)
			kw++
			if r.sc.OnWindow != nil {
				if err := r.sc.OnWindow(w, &RunControl{r}); err != nil {
					return nil, err
				}
			}
			// Publish to observability sinks after the observer ran (so
			// tunable thresholds are filled) and before the reset below
			// reclaims the accumulators.
			if err := r.observeWindow(w); err != nil {
				return nil, err
			}
			// Reset per-window accumulators only after assembly consumed
			// the raw response samples for the Total merge.
			for _, m := range r.shards {
				m.acc.reset()
			}
		}
		if r.rel != nil && (end >= rEnd || final) {
			r.reliabilityBoundary(end)
			kr++
		}
		if r.needRescan {
			r.rescanArrivals(end)
			r.needRescan = false
		}
		if final {
			break
		}
		// SIGINT lands here: boundaries are the only safe abort points
		// (every shard parked, telemetry flushed through this window).
		if err := r.checkInterrupt(end); err != nil {
			return nil, err
		}
	}
	r.advanceAll(shardStep{end: sim.Time(horizon), finalize: true})
	if r.rel != nil {
		r.finishReliability(horizon)
	}
	return r.results(horizon), nil
}

// results merges the shards into one Results. Integer counters add
// exactly; per-disk energy accounting iterates GLOBAL disk order
// pulling each disk from its owning shard, reproducing the sequential
// fold bit for bit; farm-wide response statistics use the same
// order-canonical sorted reduction as the window Total, so they are
// identical at any shard count.
func (r *runner) results(horizon float64) *Results {
	res := &Results{
		Duration:        horizon,
		PerDisk:         make([]disk.Breakdown, r.cfg.NumDisks),
		MigrationEnergy: r.migrationEnergy,
		MigratedFiles:   r.migratedFiles,
		MigratedBytes:   r.migratedBytes,
	}
	var completions int64
	for _, m := range r.shards {
		res.Completed += m.completed
		res.WritesPlaced += m.writesPlaced
		res.WritesToSpinning += m.writesToSpinning
		res.WritesRejected += m.writesRejected
		res.ReadsUnplaced += m.readsUnplaced
		completions += m.resp.Count()
	}
	res.Unfinished = int64(len(r.tr.Requests)) - res.Completed - res.WritesRejected - res.ReadsUnplaced

	wear := disk.DefaultWear()
	if r.rel != nil {
		wear = r.rel.wear
		res.Failures = r.rel.failures
		res.DataLossEvents = r.rel.dataLoss
		res.Rebuilds = r.rel.rebuilds
		res.RebuildTime = r.rel.rebuildTime
		res.RebuildBytes = r.rel.rebuildBytes
	}
	var standbyTime, afrSum float64
	for i := 0; i < r.cfg.NumDisks; i++ {
		s := 0
		if r.shardOf != nil {
			s = int(r.shardOf[i])
		}
		d := r.shards[s].localDisk(i)
		b := d.Breakdown()
		res.PerDisk[i] = b
		res.Energy += b.Energy
		res.SpinUps += b.SpinUps
		res.SpinDowns += b.SpinDowns
		standbyTime += b.Durations[disk.Standby]
		if horizon > 0 {
			// Extrapolate this disk's observed duty profile to a year
			// under the wear model; the farm AFR folds the per-disk
			// figures in global disk order (order-canonical, so the
			// modeled AFR is identical at any shard count).
			powered := horizon - b.Durations[disk.Standby]
			afrSum += wear.AFR(float64(b.SpinUps)*86400/horizon, powered/horizon)
		}
		if q := d.PeakQueueLen(); q > res.PeakQueue {
			res.PeakQueue = q
		}
		// No-saving baseline: this disk would have idled at idle power
		// whenever it was not seeking/transferring; seek and transfer
		// time are workload-determined and identical under either
		// policy.
		seek := b.Durations[disk.Seeking]
		xfer := b.Durations[disk.Transferring]
		p := r.cfg.paramsFor(i)
		res.NoSavingEnergy += p.IdlePower*(horizon-seek-xfer) +
			p.SeekPower*seek + p.ActivePower*xfer
	}
	// Migration rides on top of the disks' own accounting: the policy
	// caused it, so it is charged to Energy but not to the no-saving
	// baseline (which never migrates).
	res.Energy += r.migrationEnergy
	if horizon > 0 {
		res.AvgPower = res.Energy / horizon
		res.AvgStandbyDisks = standbyTime / horizon
		res.CyclesPerDay = float64(res.SpinUps) * 86400 / (horizon * float64(r.cfg.NumDisks))
		res.AFR = afrSum / float64(r.cfg.NumDisks)
	}
	if res.NoSavingEnergy > 0 {
		res.PowerSavingRatio = 1 - res.Energy/res.NoSavingEnergy
	}
	if completions > 0 {
		xs := make([]float64, 0, completions)
		for _, m := range r.shards {
			xs = m.resp.AppendValues(xs)
		}
		sort.Float64s(xs)
		res.RespMean = stats.SortedMean(xs)
		res.RespMedian = stats.SortedQuantile(xs, 0.5)
		res.RespP95 = stats.SortedQuantile(xs, 0.95)
		res.RespP99 = stats.SortedQuantile(xs, 0.99)
		res.RespMax = xs[len(xs)-1]
	}
	if r.lru != nil {
		s := r.lru.Stats()
		res.CacheHits, res.CacheMisses = s.Hits, s.Misses
		res.CacheHitRatio = r.lru.HitRatio()
	}
	r.observeFinal(res, horizon)
	return res
}

// RunParallel is Run sharded across par.Workers goroutines. Results
// are identical to Run at any worker count: partitionable runs prove
// it by construction (see the package comment above), and runs
// ShardBlocker rejects execute sequentially.
func RunParallel(tr *trace.Trace, assign []int, cfg Config, par ParallelConfig) (*Results, error) {
	r, err := newRunner(tr, assign, cfg, nil, par)
	if err != nil {
		return nil, err
	}
	return r.run()
}

// RunStreamParallel is RunStream sharded across par.Workers
// goroutines, with per-group windows merged deterministically at every
// boundary before the observer runs. Windows and Results are identical
// to RunStream at any worker count.
func RunStreamParallel(tr *trace.Trace, assign []int, cfg Config, sc StreamConfig, par ParallelConfig) (*Results, error) {
	r, err := newRunner(tr, assign, cfg, &sc, par)
	if err != nil {
		return nil, err
	}
	return r.run()
}
