package storage

import (
	"fmt"
	"math"

	"diskpack/internal/disk"
	"diskpack/internal/obs"
	"diskpack/internal/sim"
)

// Failure injection and rebuild traffic. Reliability rides the same
// barrier discipline as everything else in the sharded kernel: each
// disk's failure clock is a pure function of its own trajectory
// (accumulated start/stop cycles and powered-on hours race a per-disk
// seeded Exp(1) threshold — see disk.WearParams), and the runner
// checks the clocks only at global reliability boundaries, fixed
// multiples of CheckEvery from time zero, with every shard parked.
// A failure replaces the drive (fresh failure threshold) and injects
// rebuild traffic: one read of the lost disk's share on every
// surviving member of its redundancy group plus one write of the full
// contents on the replacement, submitted in ascending global disk
// order. After injection the requests are ordinary disk-local work, so
// the byte-identity argument of parallel.go is untouched: cross-disk
// interaction happens only at barriers, and each shard's event order
// remains the sequential order restricted to that shard at any worker
// count. Rebuild completions are recorded shard-locally and folded at
// the next boundary with commutative operations (count decrement,
// max of finish times), so the fold is independent of shard layout.

// ReliabilityConfig adds wear-driven disk failures and rebuild
// traffic to a run.
type ReliabilityConfig struct {
	// GroupSize is the redundancy-group width: disks [0..GroupSize),
	// [GroupSize..2·GroupSize), … form groups that can rebuild one
	// lost member from the survivors. A trailing group of one disk is
	// folded into its predecessor. Must be >= 2.
	GroupSize int
	// RebuildBytes, when positive, fixes the volume reconstructed per
	// failure; zero derives it from the failed disk's used capacity.
	RebuildBytes int64
	// CheckEvery is the failure-check period in simulated seconds
	// (default 3600). Failures are detected and rebuilds injected only
	// at multiples of this period, which is what keeps the schedule
	// identical at any worker count.
	CheckEvery float64
	// Wear is the spin-cycle wear model (zero fields default to the
	// reference drive's).
	Wear disk.WearParams
	// Seed seeds the per-disk failure clocks.
	Seed int64
}

// withDefaults resolves the config's zero values.
func (rc ReliabilityConfig) withDefaults() ReliabilityConfig {
	if rc.CheckEvery <= 0 {
		rc.CheckEvery = 3600
	}
	return rc
}

// validate rejects malformed reliability configs.
func (rc ReliabilityConfig) validate(numDisks int) error {
	if rc.GroupSize < 2 {
		return fmt.Errorf("storage: reliability group size %d must be >= 2", rc.GroupSize)
	}
	if numDisks < 2 {
		return fmt.Errorf("storage: reliability needs a farm of >= 2 disks, have %d", numDisks)
	}
	if rc.RebuildBytes < 0 {
		return fmt.Errorf("storage: negative rebuild volume %d", rc.RebuildBytes)
	}
	if math.IsNaN(rc.CheckEvery) || math.IsInf(rc.CheckEvery, 0) || rc.CheckEvery < 0 {
		return fmt.Errorf("storage: invalid reliability check period %v", rc.CheckEvery)
	}
	return rc.Wear.Validate()
}

// rebuildJob tracks one in-flight rebuild: the streams injected for
// one failure, counted down as their completions fold in at
// boundaries.
type rebuildJob struct {
	group       int
	failAt      float64
	outstanding int
	lastDone    float64
	done        bool
}

// relFin is one shard-local rebuild-stream completion, folded into
// its job at the next boundary.
type relFin struct {
	job int
	at  sim.Time
}

// relState is the runner-owned reliability ledger: per-disk failure
// clocks, redundancy-group membership, in-flight rebuilds, and the
// cumulative counters Results and Window report. Only the boundary
// code (shards parked) touches it.
type relState struct {
	cfg     ReliabilityConfig
	wear    disk.WearParams
	groupOf []int
	groups  [][]int
	fp      []*disk.FailureProcess

	rebuilding []int // per redundancy group: active rebuild count
	jobs       []*rebuildJob

	failures, dataLoss, rebuilds int
	rebuildTime                  float64
	rebuildBytes                 int64

	// Previous-boundary snapshots for per-window deltas.
	prevFailures, prevDataLoss, prevRebuilds int
	prevRebuildTime                          float64
}

// newRelState lays out redundancy groups over the farm and seeds the
// failure clocks.
func newRelState(cfg ReliabilityConfig, numDisks int) *relState {
	cfg = cfg.withDefaults()
	rel := &relState{
		cfg:     cfg,
		wear:    cfg.Wear,
		groupOf: make([]int, numDisks),
		fp:      make([]*disk.FailureProcess, numDisks),
	}
	ngroups := numDisks / cfg.GroupSize
	if ngroups == 0 {
		ngroups = 1
	}
	for d := 0; d < numDisks; d++ {
		g := d / cfg.GroupSize
		if g >= ngroups {
			// The trailing remainder folds into the last full group so
			// every group has at least two members.
			g = ngroups - 1
		}
		rel.groupOf[d] = g
		rel.fp[d] = disk.NewFailureProcess(cfg.Seed, d)
	}
	rel.groups = make([][]int, ngroups)
	for d, g := range rel.groupOf {
		rel.groups[g] = append(rel.groups[g], d)
	}
	rel.rebuilding = make([]int, ngroups)
	return rel
}

// shardIdx returns the shard owning global disk d.
func (r *runner) shardIdx(d int) int {
	if r.shardOf == nil {
		return 0
	}
	return int(r.shardOf[d])
}

// foldRebuildFins merges the shards' rebuild-stream completions into
// their jobs and closes jobs whose last stream finished. Every
// per-fin operation is commutative (decrement, max), so the result is
// independent of how fins distribute across shards.
func (r *runner) foldRebuildFins() {
	rel := r.rel
	for _, m := range r.shards {
		for _, fin := range m.relFins {
			job := rel.jobs[fin.job]
			job.outstanding--
			if float64(fin.at) > job.lastDone {
				job.lastDone = float64(fin.at)
			}
		}
		m.relFins = m.relFins[:0]
	}
	for _, job := range rel.jobs {
		if !job.done && job.outstanding == 0 {
			job.done = true
			rel.rebuilds++
			rel.rebuildTime += job.lastDone - job.failAt
			rel.rebuilding[job.group]--
			if o := r.cfg.Obs; o != nil && o.Trace != nil {
				o.Trace.Emit(obs.TraceEvent{
					Phase: 'X', Track: "reliability",
					Name: fmt.Sprintf("rebuild group %d", job.group),
					At:   job.failAt, Dur: job.lastDone - job.failAt,
				})
			}
		}
	}
}

// reliabilityBoundary runs one failure check with every shard parked
// at simulated time now: fold finished rebuilds, then race each
// disk's accumulated hazard against its failure clock in ascending
// global disk order.
func (r *runner) reliabilityBoundary(now float64) {
	r.foldRebuildFins()
	rel := r.rel
	for d := 0; d < r.cfg.NumDisks; d++ {
		dk := r.shards[r.shardIdx(d)].localDisk(d)
		cycles := float64(dk.SpinUps())
		powered := now - dk.StateDurationAt(disk.Standby, now)
		h := rel.wear.Hazard(cycles, powered/3600)
		if rel.fp[d].Crossed(h) {
			r.failDisk(d, now, h)
		}
	}
}

// failDisk books one disk failure at a boundary and injects the
// rebuild streams. The replacement drive takes over the same slot
// with a fresh failure threshold; a failure in a group that is still
// rebuilding an earlier loss is a data-loss event (the group had no
// redundancy left) — the rebuild is injected anyway, modeling restore
// traffic.
func (r *runner) failDisk(d int, now, hazard float64) {
	rel := r.rel
	rel.failures++
	rel.fp[d].Replace(hazard)
	g := rel.groupOf[d]
	dataLoss := rel.rebuilding[g] > 0
	if dataLoss {
		rel.dataLoss++
	}
	if o := r.cfg.Obs; o != nil && o.Trace != nil {
		o.Trace.Emit(obs.TraceEvent{
			Phase: 'i', Track: "reliability",
			Name: fmt.Sprintf("disk %d failed", d), At: now,
			Args: map[string]any{"group": g, "dataLoss": dataLoss},
		})
	}
	vol := rel.cfg.RebuildBytes
	if vol == 0 {
		vol = r.cfg.paramsFor(d).CapacityBytes - r.freeBytes[d]
	}
	if vol <= 0 {
		// Nothing stored on the disk: the slot is replaced with no
		// rebuild traffic.
		return
	}
	members := rel.groups[g]
	survivors := len(members) - 1
	share := vol / int64(survivors)
	if share < 1 {
		share = 1
	}
	job := &rebuildJob{group: g, failAt: now}
	id := len(rel.jobs)
	rel.jobs = append(rel.jobs, job)
	rel.rebuilding[g]++
	// Ascending global disk order: each survivor contributes its share
	// as a read stream, then the replacement absorbs the full rewrite.
	// This is one fixed global submission order, so each shard sees the
	// sequential order restricted to its own disks.
	for _, s := range members {
		if s == d {
			continue
		}
		r.injectRebuild(s, share, id)
		job.outstanding++
		rel.rebuildBytes += share
	}
	r.injectRebuild(d, vol, id)
	job.outstanding++
	rel.rebuildBytes += vol
}

// injectRebuild submits one rebuild stream on disk target: a
// wake-everything request that spins the disk up if needed and
// occupies it for the transfer, charged to energy and — through queue
// occupancy — to the response time of the client requests behind it,
// but never to the response-time statistics themselves.
func (r *runner) injectRebuild(target int, size int64, jobID int) {
	m := r.shards[r.shardIdx(target)]
	req := m.allocReq()
	*req = disk.Request{
		FileID:  -1,
		Size:    size,
		Arrival: m.env.Now(),
		Done:    m.rebuildFn,
		Tag:     jobID,
	}
	m.localDisk(target).Submit(req)
}

// onRebuildDone records a rebuild-stream completion shard-locally;
// the runner folds it into the job at the next boundary.
func (m *machine) onRebuildDone(req *disk.Request, doneAt sim.Time) {
	m.relFins = append(m.relFins, relFin{job: req.Tag, at: doneAt})
	m.reqFree = append(m.reqFree, req)
}

// finishReliability closes the books at the horizon: fold the last
// completions, then charge rebuilds still in flight their degraded
// time so RebuildTime reads as total time spent rebuilding.
func (r *runner) finishReliability(horizon float64) {
	r.foldRebuildFins()
	for _, job := range r.rel.jobs {
		if !job.done {
			r.rel.rebuildTime += horizon - job.failAt
			if o := r.cfg.Obs; o != nil && o.Trace != nil {
				o.Trace.Emit(obs.TraceEvent{
					Phase: 'X', Track: "reliability",
					Name: fmt.Sprintf("rebuild group %d (unfinished)", job.group),
					At:   job.failAt, Dur: horizon - job.failAt,
				})
			}
		}
	}
}
