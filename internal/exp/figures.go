package exp

import (
	"fmt"
	"math/rand"

	"diskpack/internal/core"
	"diskpack/internal/disk"
	"diskpack/internal/farm"
	"diskpack/internal/trace"
	"diskpack/internal/workload"
)

// synthFarmBase is the paper's Table 1 farm size.
const synthFarmBase = 100

// scaledSynthetic returns the Table 1 workload config shrunk by
// opts.Scale. File count and file sizes scale together: per-file load
// is ∝ R·µ_i/n under the Zipf popularity, so shrinking n alone would
// inflate loads past the L constraint; shrinking sizes by the same
// factor preserves the paper's load profile at any scale (scale 1 is
// exactly Table 1).
func scaledSynthetic(opts Options, arrivalRate float64, seedOff int64) workload.Synthetic {
	cfg := workload.DefaultSynthetic(arrivalRate, opts.Seed+seedOff)
	cfg.NumFiles = opts.scaleCount(cfg.NumFiles, 200)
	if opts.Scale < 1 {
		f := float64(cfg.NumFiles) / 40000
		cfg.MinSize = int64(float64(cfg.MinSize) * f)
		if cfg.MinSize < disk.MB {
			cfg.MinSize = disk.MB
		}
		cfg.MaxSize = int64(float64(cfg.MaxSize) * f)
		if cfg.MaxSize < 2*cfg.MinSize {
			cfg.MaxSize = 2 * cfg.MinSize
		}
	}
	return cfg
}

// packSynthetic builds packing items from a synthetic population using
// capL as the load constraint (fraction of the disk's service
// capability) and returns the PackDisks assignment.
func packItems(files []trace.FileInfo, params disk.Params, capL float64) ([]core.Item, error) {
	sizes := make([]int64, len(files))
	rates := make([]float64, len(files))
	for i, f := range files {
		sizes[i] = f.Size
		rates[i] = f.Rate
	}
	return core.BuildItems(sizes, rates, params.ServiceTime, params.CapacityBytes, capL)
}

// fig23Point holds one (R, L) measurement.
type fig23Point struct {
	r      float64
	lIdx   int
	saving float64 // 1 - E_pack/E_rnd
	ratio  float64 // resp_pack / resp_rnd
}

// Fig23 runs the Figures 2 and 3 sweep: Pack_Disks versus random
// placement on the Table 1 workload, arrival rate R = 1..12, load
// constraint L ∈ {50, 60, 70, 80}%. Figure 2 reports the power-saving
// ratio relative to random placement; Figure 3 the response-time
// ratio.
func Fig23(opts Options) (fig2, fig3 *Table, err error) {
	if err := opts.Validate(); err != nil {
		return nil, nil, err
	}
	params := disk.DefaultParams()
	Ls := []float64{0.5, 0.6, 0.7, 0.8}
	Rs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	farmBase := opts.scaleCount(synthFarmBase, 4)

	cols := []string{"L=50%", "L=60%", "L=70%", "L=80%"}
	fig2 = &Table{Name: "fig2", Title: "Power-saving ratio of Pack_Disks vs random placement", XLabel: "R", Columns: cols}
	fig3 = &Table{Name: "fig3", Title: "Response-time ratio Pack_Disks / random placement", XLabel: "R", Columns: cols}

	points := make([]fig23Point, len(Rs)*len(Ls))
	err = parallelFor(len(Rs), opts.workers(), func(ri int) error {
		R := Rs[ri]
		cfg := scaledSynthetic(opts, R, int64(ri))
		tr, err := cfg.Build()
		if err != nil {
			return err
		}
		// Pack once per L; all runs share the largest farm so energy
		// totals are comparable.
		assigns := make([]*core.Assignment, len(Ls))
		farmSize := farmBase
		for li, L := range Ls {
			items, err := packItems(tr.Files, params, L)
			if err != nil {
				return fmt.Errorf("R=%v L=%v: %w", R, L, err)
			}
			a, err := core.PackDisks(items)
			if err != nil {
				return err
			}
			assigns[li] = a
			if a.NumDisks > farmSize {
				farmSize = a.NumDisks
			}
		}
		rng := rand.New(rand.NewSource(opts.Seed + 1000 + int64(ri)))
		items, err := packItems(tr.Files, params, Ls[len(Ls)-1])
		if err != nil {
			return err
		}
		rndAssign, err := core.RandomAssign(items, farmSize, rng)
		if err != nil {
			return err
		}
		breakEven := farm.SpinSpec{Kind: farm.SpinBreakEven}
		rnd, err := simulate(tr, rndAssign.DiskOf, farmSize, breakEven, 0, opts.Seed)
		if err != nil {
			return err
		}
		for li := range Ls {
			pack, err := simulate(tr, assigns[li].DiskOf, farmSize, breakEven, 0, opts.Seed)
			if err != nil {
				return err
			}
			pt := &points[ri*len(Ls)+li]
			pt.r = R
			pt.lIdx = li
			if rnd.Energy > 0 {
				pt.saving = 1 - pack.Energy/rnd.Energy
			}
			if rnd.RespMean > 0 {
				pt.ratio = pack.RespMean / rnd.RespMean
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	for ri, R := range Rs {
		savings := make([]float64, len(Ls))
		ratios := make([]float64, len(Ls))
		for li := range Ls {
			pt := points[ri*len(Ls)+li]
			savings[li] = pt.saving
			ratios[li] = pt.ratio
		}
		fig2.AddRow(R, savings...)
		fig3.AddRow(R, ratios...)
	}
	fig2.SortByX()
	fig3.SortByX()
	return fig2, fig3, nil
}

// Fig4 runs the Figure 4 sweep: farm power (W) and mean response time
// (s) of Pack_Disks as the load constraint L varies from 0.4 to 0.9 at
// fixed R = 6. Higher L packs the load onto fewer disks: less power,
// longer queues.
func Fig4(opts Options) (*Table, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	params := disk.DefaultParams()
	Ls := []float64{0.40, 0.45, 0.50, 0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90}
	const R = 6
	farmBase := opts.scaleCount(synthFarmBase, 4)

	cfg := scaledSynthetic(opts, R, 0)
	tr, err := cfg.Build()
	if err != nil {
		return nil, err
	}
	// One farm size across all L so wattages are comparable.
	assigns := make([]*core.Assignment, len(Ls))
	farmSize := farmBase
	for li, L := range Ls {
		items, err := packItems(tr.Files, params, L)
		if err != nil {
			return nil, fmt.Errorf("L=%v: %w", L, err)
		}
		a, err := core.PackDisks(items)
		if err != nil {
			return nil, err
		}
		assigns[li] = a
		if a.NumDisks > farmSize {
			farmSize = a.NumDisks
		}
	}
	table := &Table{
		Name:    "fig4",
		Title:   fmt.Sprintf("Power and response time vs load constraint L (R=%d)", R),
		XLabel:  "L",
		Columns: []string{"Power(W)", "RespTime(s)", "DisksUsed"},
	}
	rows := make([][]float64, len(Ls))
	err = parallelFor(len(Ls), opts.workers(), func(li int) error {
		res, err := simulate(tr, assigns[li].DiskOf, farmSize,
			farm.SpinSpec{Kind: farm.SpinBreakEven}, 0, opts.Seed)
		if err != nil {
			return err
		}
		rows[li] = []float64{Ls[li], res.AvgPower, res.RespMean, float64(assigns[li].NumDisks)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		table.Rows = append(table.Rows, r)
	}
	table.SortByX()
	table.Notes = append(table.Notes, fmt.Sprintf("farm size %d disks, %d files, R=%d/s", farmSize, cfg.NumFiles, R))
	return table, nil
}
