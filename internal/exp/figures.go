package exp

import (
	"fmt"
	"math/rand"

	"diskpack/internal/core"
	"diskpack/internal/disk"
	"diskpack/internal/farm"
	"diskpack/internal/trace"
	"diskpack/internal/workload"
)

// synthFarmBase is the paper's Table 1 farm size.
const synthFarmBase = 100

// scaledSynthetic returns the Table 1 workload config shrunk by
// opts.Scale. File count and file sizes scale together: per-file load
// is ∝ R·µ_i/n under the Zipf popularity, so shrinking n alone would
// inflate loads past the L constraint; shrinking sizes by the same
// factor preserves the paper's load profile at any scale (scale 1 is
// exactly Table 1).
func scaledSynthetic(opts Options, arrivalRate float64, seedOff int64) workload.Synthetic {
	cfg := workload.DefaultSynthetic(arrivalRate, opts.Seed+seedOff)
	cfg.NumFiles = opts.scaleCount(cfg.NumFiles, 200)
	if opts.Scale < 1 {
		f := float64(cfg.NumFiles) / 40000
		cfg.MinSize = int64(float64(cfg.MinSize) * f)
		if cfg.MinSize < disk.MB {
			cfg.MinSize = disk.MB
		}
		cfg.MaxSize = int64(float64(cfg.MaxSize) * f)
		if cfg.MaxSize < 2*cfg.MinSize {
			cfg.MaxSize = 2 * cfg.MinSize
		}
	}
	return cfg
}

// packItems builds packing items from a file population using capL as
// the load constraint (fraction of the disk's service capability).
func packItems(files []trace.FileInfo, params disk.Params, capL float64) ([]core.Item, error) {
	sizes := make([]int64, len(files))
	rates := make([]float64, len(files))
	for i, f := range files {
		sizes[i] = f.Size
		rates[i] = f.Rate
	}
	return core.BuildItems(sizes, rates, params.ServiceTime, params.CapacityBytes, capL)
}

// Fig23 runs the Figures 2 and 3 sweep: Pack_Disks versus random
// placement on the Table 1 workload, arrival rate R = 1..12, load
// constraint L ∈ {50, 60, 70, 80}%. Figure 2 reports the power-saving
// ratio relative to random placement; Figure 3 the response-time
// ratio. Both the packing grid and the simulation grid fan through
// farm.Sweep: first a plan-only (R, L) sweep computes the Pack_Disks
// assignments, then an (R, series) sweep simulates random placement
// alongside each L.
func Fig23(opts Options) (fig2, fig3 *Table, err error) {
	if err := opts.Validate(); err != nil {
		return nil, nil, err
	}
	params := disk.DefaultParams()
	Ls := []float64{0.5, 0.6, 0.7, 0.8}
	Rs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	farmBase := opts.scaleCount(synthFarmBase, 4)

	// One workload draw per R (seeded per R, the paper's convention of
	// independent columns).
	trs := make([]*trace.Trace, len(Rs))
	rLabels := make([]string, len(Rs))
	for ri, R := range Rs {
		rLabels[ri] = fmt.Sprintf("R=%g", R)
		cfg := scaledSynthetic(opts, R, int64(ri))
		if trs[ri], err = cfg.Build(); err != nil {
			return nil, nil, err
		}
	}

	// Pack every (R, L) point in parallel.
	rAxis := farm.Axis{Name: "R", Kind: farm.AxisCustom, Labels: rLabels,
		Apply: func(s *farm.Spec, i int, _ []int) error {
			s.Workload = farm.TraceWorkload(trs[i])
			return nil
		}}
	plan, err := packSweep("fig23-pack", nil, farm.Packed(0), []farm.Axis{
		rAxis,
		{Kind: farm.AxisCapL, Values: Ls},
	}, opts)
	if err != nil {
		return nil, nil, err
	}

	// Per R: all runs share the largest farm so energy totals are
	// comparable, and random placement draws with the legacy seeding.
	farmSizes := make([]int, len(Rs))
	rndAssigns := make([][]int, len(Rs))
	for ri := range Rs {
		farmSize := farmBase
		for li := range Ls {
			if used := plan.At(ri, li).Alloc.DisksUsed; used > farmSize {
				farmSize = used
			}
		}
		farmSizes[ri] = farmSize
		rng := rand.New(rand.NewSource(opts.Seed + 1000 + int64(ri)))
		items, err := packItems(trs[ri].Files, params, Ls[len(Ls)-1])
		if err != nil {
			return nil, nil, err
		}
		rnd, err := core.RandomAssign(items, farmSize, rng)
		if err != nil {
			return nil, nil, err
		}
		rndAssigns[ri] = rnd.DiskOf
	}

	// Simulate the full (R, series) grid: series 0 is random placement,
	// series 1.. are the Pack_Disks packings per L.
	cols := []string{"L=50%", "L=60%", "L=70%", "L=80%"}
	series := append([]string{"RND"}, cols...)
	simRAxis := rAxis
	simRAxis.Apply = func(s *farm.Spec, i int, _ []int) error {
		s.Workload = farm.TraceWorkload(trs[i])
		s.FarmSize = farmSizes[i]
		return nil
	}
	sim, err := simSweep("fig23-sim", nil, 0, farm.SpinSpec{Kind: farm.SpinBreakEven}, []farm.Axis{
		simRAxis,
		{Name: "series", Kind: farm.AxisCustom, Labels: series,
			Apply: func(s *farm.Spec, i int, coord []int) error {
				if i == 0 {
					s.Alloc = farm.Explicit(rndAssigns[coord[0]])
				} else {
					s.Alloc = farm.Explicit(plan.At(coord[0], i-1).Alloc.Assign)
				}
				return nil
			}},
	}, opts)
	if err != nil {
		return nil, nil, err
	}

	fig2 = &Table{Name: "fig2", Title: "Power-saving ratio of Pack_Disks vs random placement", XLabel: "R", Columns: cols}
	fig3 = &Table{Name: "fig3", Title: "Response-time ratio Pack_Disks / random placement", XLabel: "R", Columns: cols}
	for ri, R := range Rs {
		rnd := sim.At(ri, 0).Metrics
		savings := make([]float64, len(Ls))
		ratios := make([]float64, len(Ls))
		for li := range Ls {
			pack := sim.At(ri, li+1).Metrics
			if rnd.Energy > 0 {
				savings[li] = 1 - pack.Energy/rnd.Energy
			}
			if rnd.RespMean > 0 {
				ratios[li] = pack.RespMean / rnd.RespMean
			}
		}
		fig2.AddRow(R, savings...)
		fig3.AddRow(R, ratios...)
	}
	return fig2, fig3, nil
}

// Fig4 runs the Figure 4 sweep: farm power (W) and mean response time
// (s) of Pack_Disks as the load constraint L varies from 0.4 to 0.9 at
// fixed R = 6. Higher L packs the load onto fewer disks: less power,
// longer queues.
func Fig4(opts Options) (*Table, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	Ls := []float64{0.40, 0.45, 0.50, 0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90}
	const R = 6
	farmBase := opts.scaleCount(synthFarmBase, 4)

	cfg := scaledSynthetic(opts, R, 0)
	tr, err := cfg.Build()
	if err != nil {
		return nil, err
	}
	// Pack each L in parallel; one farm size across all L so wattages
	// are comparable.
	plan, err := packSweep("fig4-pack", tr, farm.Packed(0),
		[]farm.Axis{{Kind: farm.AxisCapL, Values: Ls}}, opts)
	if err != nil {
		return nil, err
	}
	farmSize := farmBase
	lLabels := make([]string, len(Ls))
	for li, L := range Ls {
		lLabels[li] = fmt.Sprintf("L=%g", L)
		if used := plan.Points[li].Alloc.DisksUsed; used > farmSize {
			farmSize = used
		}
	}
	sim, err := simSweep("fig4-sim", tr, farmSize, farm.SpinSpec{Kind: farm.SpinBreakEven},
		[]farm.Axis{{Name: "L", Kind: farm.AxisCustom, Labels: lLabels,
			Apply: func(s *farm.Spec, i int, _ []int) error {
				s.Alloc = farm.Explicit(plan.Points[i].Alloc.Assign)
				return nil
			}}}, opts)
	if err != nil {
		return nil, err
	}
	table := &Table{
		Name:    "fig4",
		Title:   fmt.Sprintf("Power and response time vs load constraint L (R=%d)", R),
		XLabel:  "L",
		Columns: []string{"Power(W)", "RespTime(s)", "DisksUsed"},
	}
	for li, L := range Ls {
		res := sim.Points[li].Metrics
		table.AddRow(L, res.AvgPower, res.RespMean, float64(plan.Points[li].Alloc.DisksUsed))
	}
	table.Notes = append(table.Notes, fmt.Sprintf("farm size %d disks, %d files, R=%d/s", farmSize, cfg.NumFiles, R))
	return table, nil
}
