package exp

import (
	"fmt"

	"diskpack/internal/farm"
)

// Policies runs the dynamic-power-management ablation the paper's
// Section 2 surveys: on the NERSC workload, compare spin-down policies
// — always-on, immediate, the paper's fixed break-even threshold
// (2-competitive), the adaptive doubling/halving threshold, and the
// randomized e/(e−1)-competitive policy — under both Pack_Disks and
// random placement. It extends Figure 5's single policy axis with the
// orthogonal question: once files are packed, how much does the
// spin-down rule itself matter? Every policy is one farm.SpinSpec; the
// engine owns the per-disk policy plumbing.
func Policies(opts Options) (*Table, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	setup, err := buildNERSC(opts)
	if err != nil {
		return nil, err
	}
	pols := []struct {
		name string
		spin farm.SpinSpec
	}{
		{"always-on", farm.SpinSpec{Kind: farm.SpinNever}},
		{"immediate", farm.SpinSpec{Kind: farm.SpinImmediate}},
		{"break-even", farm.SpinSpec{Kind: farm.SpinBreakEven}},
		{"adaptive", farm.SpinSpec{Kind: farm.SpinAdaptive}},
		{"randomized", farm.SpinSpec{Kind: farm.SpinRandomized}},
	}
	polLabels := make([]string, len(pols))
	for pi, p := range pols {
		polLabels[pi] = p.name
	}
	// (policy × placement) grid: the policy axis steps the seed so each
	// policy gets an independent draw for its seeded variants, while
	// both placements of one policy share it.
	sim, err := simSweep("policies", setup.tr, setup.farmSize, farm.SpinSpec{Kind: farm.SpinBreakEven},
		[]farm.Axis{
			{Name: "policy", Kind: farm.AxisCustom, Labels: polLabels, SeedStep: 1,
				Apply: func(s *farm.Spec, i int, _ []int) error {
					s.Spin = pols[i].spin
					return nil
				}},
			{Name: "placement", Kind: farm.AxisCustom, Labels: []string{"Pack", "RND"},
				Apply: func(s *farm.Spec, i int, _ []int) error {
					if i == 0 {
						s.Alloc = farm.Explicit(setup.pack1)
					} else {
						s.Alloc = farm.Explicit(setup.rnd)
					}
					return nil
				}},
		}, opts)
	if err != nil {
		return nil, err
	}
	table := &Table{
		Name:   "policies",
		Title:  "Spin-down policy ablation on the NERSC workload (extension of Fig. 5)",
		XLabel: "policy",
		Columns: []string{
			"Pack:saving", "Pack:resp(s)", "Pack:spinups",
			"RND:saving", "RND:resp(s)", "RND:spinups",
		},
	}
	for pi := range pols {
		row := make([]float64, 7)
		row[0] = float64(pi)
		for side := 0; side < 2; side++ {
			res := sim.At(pi, side).Metrics
			off := 1 + 3*side
			row[off] = res.PowerSavingRatio
			row[off+1] = res.RespMean
			row[off+2] = float64(res.SpinUps)
		}
		table.Rows = append(table.Rows, row)
		table.Notes = append(table.Notes, fmt.Sprintf("policy %d = %s", pi, pols[pi].name))
	}
	return table, nil
}
