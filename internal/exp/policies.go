package exp

import (
	"fmt"

	"diskpack/internal/farm"
)

// Policies runs the dynamic-power-management ablation the paper's
// Section 2 surveys: on the NERSC workload, compare spin-down policies
// — always-on, immediate, the paper's fixed break-even threshold
// (2-competitive), the adaptive doubling/halving threshold, and the
// randomized e/(e−1)-competitive policy — under both Pack_Disks and
// random placement. It extends Figure 5's single policy axis with the
// orthogonal question: once files are packed, how much does the
// spin-down rule itself matter? Every policy is one farm.SpinSpec; the
// engine owns the per-disk policy plumbing.
func Policies(opts Options) (*Table, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	setup, err := buildNERSC(opts)
	if err != nil {
		return nil, err
	}
	pols := []struct {
		name string
		spin farm.SpinSpec
	}{
		{"always-on", farm.SpinSpec{Kind: farm.SpinNever}},
		{"immediate", farm.SpinSpec{Kind: farm.SpinImmediate}},
		{"break-even", farm.SpinSpec{Kind: farm.SpinBreakEven}},
		{"adaptive", farm.SpinSpec{Kind: farm.SpinAdaptive}},
		{"randomized", farm.SpinSpec{Kind: farm.SpinRandomized}},
	}
	table := &Table{
		Name:   "policies",
		Title:  "Spin-down policy ablation on the NERSC workload (extension of Fig. 5)",
		XLabel: "policy",
		Columns: []string{
			"Pack:saving", "Pack:resp(s)", "Pack:spinups",
			"RND:saving", "RND:resp(s)", "RND:spinups",
		},
	}
	rows := make([][]float64, len(pols))
	for pi := range rows {
		rows[pi] = make([]float64, 7)
		rows[pi][0] = float64(pi)
	}
	err = parallelFor(len(pols)*2, opts.workers(), func(k int) error {
		pi, packSide := k/2, k%2 == 0
		assign := setup.rnd
		if packSide {
			assign = setup.pack1
		}
		res, err := simulate(setup.tr, assign, setup.farmSize, pols[pi].spin, 0, opts.Seed+int64(pi))
		if err != nil {
			return fmt.Errorf("policy %s: %w", pols[pi].name, err)
		}
		off := 4
		if packSide {
			off = 1
		}
		rows[pi][off] = res.PowerSavingRatio
		rows[pi][off+1] = res.RespMean
		rows[pi][off+2] = float64(res.SpinUps)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pi, r := range rows {
		table.Rows = append(table.Rows, r)
		table.Notes = append(table.Notes, fmt.Sprintf("policy %d = %s", pi, pols[pi].name))
	}
	return table, nil
}
