package exp

import (
	"fmt"

	"diskpack/internal/disk"
	"diskpack/internal/policy"
	"diskpack/internal/storage"
)

// Policies runs the dynamic-power-management ablation the paper's
// Section 2 surveys: on the NERSC workload, compare spin-down policies
// — always-on, immediate, the paper's fixed break-even threshold
// (2-competitive), the adaptive doubling/halving threshold, and the
// randomized e/(e−1)-competitive policy — under both Pack_Disks and
// random placement. It extends Figure 5's single policy axis with the
// orthogonal question: once files are packed, how much does the
// spin-down rule itself matter?
func Policies(opts Options) (*Table, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	setup, err := buildNERSC(opts)
	if err != nil {
		return nil, err
	}
	params := disk.DefaultParams()
	type pol struct {
		name    string
		factory func(seed int64) func(int) disk.SpinPolicy
	}
	pols := []pol{
		{"always-on", func(int64) func(int) disk.SpinPolicy {
			return func(int) disk.SpinPolicy { return policy.AlwaysOn{} }
		}},
		{"immediate", func(int64) func(int) disk.SpinPolicy {
			return func(int) disk.SpinPolicy { return policy.Immediate{} }
		}},
		{"break-even", func(int64) func(int) disk.SpinPolicy {
			return func(int) disk.SpinPolicy { return policy.NewBreakEven(params) }
		}},
		{"adaptive", func(int64) func(int) disk.SpinPolicy {
			return func(int) disk.SpinPolicy { return policy.NewAdaptive(params) }
		}},
		{"randomized", func(seed int64) func(int) disk.SpinPolicy {
			return func(id int) disk.SpinPolicy { return policy.NewRandomized(params, seed+int64(id)) }
		}},
	}
	table := &Table{
		Name:   "policies",
		Title:  "Spin-down policy ablation on the NERSC workload (extension of Fig. 5)",
		XLabel: "policy",
		Columns: []string{
			"Pack:saving", "Pack:resp(s)", "Pack:spinups",
			"RND:saving", "RND:resp(s)", "RND:spinups",
		},
	}
	rows := make([][]float64, len(pols))
	for pi := range rows {
		rows[pi] = make([]float64, 7)
		rows[pi][0] = float64(pi)
	}
	err = parallelFor(len(pols)*2, opts.workers(), func(k int) error {
		pi, packSide := k/2, k%2 == 0
		assign := setup.rnd
		if packSide {
			assign = setup.pack1
		}
		res, err := storage.Run(setup.tr, assign, storage.Config{
			NumDisks:      setup.farm,
			PolicyFactory: pols[pi].factory(opts.Seed + int64(pi)),
		})
		if err != nil {
			return fmt.Errorf("policy %s: %w", pols[pi].name, err)
		}
		off := 4
		if packSide {
			off = 1
		}
		rows[pi][off] = res.PowerSavingRatio
		rows[pi][off+1] = res.RespMean
		rows[pi][off+2] = float64(res.SpinUps)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pi, r := range rows {
		table.Rows = append(table.Rows, r)
		table.Notes = append(table.Notes, fmt.Sprintf("policy %d = %s", pi, pols[pi].name))
	}
	return table, nil
}
