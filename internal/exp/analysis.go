package exp

import (
	"fmt"

	"diskpack/internal/disk"
	"diskpack/internal/farm"
	"diskpack/internal/model"
)

// Analysis validates the closed-form M/G/1 model (internal/model)
// against the discrete-event simulator on the Table 1 workload: for
// each load constraint L, it packs with Pack_Disks and compares the
// analytic farm power and mean response time with the simulated ones.
// This makes the paper's implicit claim — that bounding per-disk load
// bounds response time — quantitative.
func Analysis(opts Options) (*Table, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	params := disk.DefaultParams()
	const R = 6
	cfg := scaledSynthetic(opts, R, 0)
	tr, err := cfg.Build()
	if err != nil {
		return nil, err
	}
	Ls := []float64{0.4, 0.5, 0.6, 0.7, 0.8}
	plan, err := packSweep("analysis-pack", tr, farm.Packed(0),
		[]farm.Axis{{Kind: farm.AxisCapL, Values: Ls}}, opts)
	if err != nil {
		return nil, err
	}
	farmSize := opts.scaleCount(synthFarmBase, 4)
	lLabels := make([]string, len(Ls))
	for i, L := range Ls {
		lLabels[i] = fmt.Sprintf("L=%g", L)
		if used := plan.Points[i].Alloc.DisksUsed; used > farmSize {
			farmSize = used
		}
	}
	threshold := params.BreakEvenThreshold()
	sim, err := simSweep("analysis-sim", tr, farmSize, farm.FixedSpin(threshold),
		[]farm.Axis{{Name: "L", Kind: farm.AxisCustom, Labels: lLabels,
			Apply: func(s *farm.Spec, i int, _ []int) error {
				s.Alloc = farm.Explicit(plan.Points[i].Alloc.Assign)
				return nil
			}}}, opts)
	if err != nil {
		return nil, err
	}
	table := &Table{
		Name:    "analysis",
		Title:   "M/G/1 analytic model vs discrete-event simulation (Table 1 workload, R=6)",
		XLabel:  "L",
		Columns: []string{"PredResp(s)", "SimResp(s)", "PredPower(W)", "SimPower(W)", "MaxRho"},
	}
	for i, L := range Ls {
		loads, err := model.AnalyzeAssignment(tr.Files, plan.Points[i].Alloc.Assign, farmSize, params)
		if err != nil {
			return nil, err
		}
		pred := model.PredictFarm(loads, params, threshold)
		res := sim.Points[i].Metrics
		table.AddRow(L,
			pred.MeanResponse+pred.SpinPenalty, res.RespMean,
			pred.AvgPower, res.AvgPower,
			pred.MaxUtilization,
		)
	}
	table.Notes = append(table.Notes,
		fmt.Sprintf("farm %d disks; threshold %.1f s; prediction is mean-value (independent M/G/1 disks + renewal gap model)", farmSize, threshold))
	return table, nil
}
