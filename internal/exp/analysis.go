package exp

import (
	"fmt"

	"diskpack/internal/core"
	"diskpack/internal/disk"
	"diskpack/internal/farm"
	"diskpack/internal/model"
)

// Analysis validates the closed-form M/G/1 model (internal/model)
// against the discrete-event simulator on the Table 1 workload: for
// each load constraint L, it packs with Pack_Disks and compares the
// analytic farm power and mean response time with the simulated ones.
// This makes the paper's implicit claim — that bounding per-disk load
// bounds response time — quantitative.
func Analysis(opts Options) (*Table, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	params := disk.DefaultParams()
	const R = 6
	cfg := scaledSynthetic(opts, R, 0)
	tr, err := cfg.Build()
	if err != nil {
		return nil, err
	}
	Ls := []float64{0.4, 0.5, 0.6, 0.7, 0.8}
	farmSize := opts.scaleCount(synthFarmBase, 4)
	assigns := make([]*core.Assignment, len(Ls))
	for i, L := range Ls {
		items, err := packItems(tr.Files, params, L)
		if err != nil {
			return nil, fmt.Errorf("L=%v: %w", L, err)
		}
		a, err := core.PackDisks(items)
		if err != nil {
			return nil, err
		}
		assigns[i] = a
		if a.NumDisks > farmSize {
			farmSize = a.NumDisks
		}
	}
	table := &Table{
		Name:    "analysis",
		Title:   "M/G/1 analytic model vs discrete-event simulation (Table 1 workload, R=6)",
		XLabel:  "L",
		Columns: []string{"PredResp(s)", "SimResp(s)", "PredPower(W)", "SimPower(W)", "MaxRho"},
	}
	threshold := params.BreakEvenThreshold()
	rows := make([][]float64, len(Ls))
	err = parallelFor(len(Ls), opts.workers(), func(i int) error {
		loads, err := model.AnalyzeAssignment(tr.Files, assigns[i].DiskOf, farmSize, params)
		if err != nil {
			return err
		}
		pred := model.PredictFarm(loads, params, threshold)
		res, err := simulate(tr, assigns[i].DiskOf, farmSize,
			farm.FixedSpin(threshold), 0, opts.Seed)
		if err != nil {
			return err
		}
		rows[i] = []float64{Ls[i],
			pred.MeanResponse + pred.SpinPenalty, res.RespMean,
			pred.AvgPower, res.AvgPower,
			pred.MaxUtilization,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	table.Rows = rows
	table.SortByX()
	table.Notes = append(table.Notes,
		fmt.Sprintf("farm %d disks; threshold %.1f s; prediction is mean-value (independent M/G/1 disks + renewal gap model)", farmSize, threshold))
	return table, nil
}
