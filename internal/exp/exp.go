// Package exp defines the paper's experiments — one per table and
// figure of the evaluation section — and a parallel harness that
// regenerates them. Each experiment returns Tables whose rows are the
// series the paper plots, so the CLI (cmd/experiments), the root
// benchmarks, and EXPERIMENTS.md all derive from the same code.
//
// Experiments accept an Options.Scale in (0, 1] that shrinks the
// workload (files, requests, farm) proportionally; shape conclusions
// survive scaling, which keeps `go test` and `go test -bench` fast
// while `cmd/experiments -scale 1` reproduces the full paper setup.
package exp

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"

	"diskpack/internal/farm"
	"diskpack/internal/trace"
)

// simSweep runs a simulation grid through the farm engine's parallel
// sweep — the single entry every experiment's table shares. The base
// replays a fixed trace on a fixed farm; axes supply the varied
// dimensions (allocation, spin policy, cache).
func simSweep(name string, tr *trace.Trace, farmSize int, spin farm.SpinSpec, axes []farm.Axis, opts Options) (*farm.SweepResult, error) {
	return farm.RunSweep(farm.Sweep{
		Name: name,
		Base: farm.Spec{
			Workload: farm.TraceWorkload(tr),
			FarmSize: farmSize,
			Spin:     spin,
		},
		Axes: axes,
	}, opts.Seed, opts.workers())
}

// Options configures an experiment run.
type Options struct {
	// Scale in (0, 1] shrinks file counts, request counts, and farm
	// sizes. 1 reproduces the paper's setup.
	Scale float64
	// Seed makes runs reproducible; different seeds give independent
	// workload draws.
	Seed int64
	// Workers bounds simulation parallelism; 0 means GOMAXPROCS.
	Workers int
}

// DefaultOptions returns full-scale, seeded, fully parallel options.
func DefaultOptions() Options { return Options{Scale: 1, Seed: 1} }

// Validate reports the first invalid option.
func (o Options) Validate() error {
	if !(o.Scale > 0 && o.Scale <= 1) || math.IsNaN(o.Scale) {
		return fmt.Errorf("exp: scale %v outside (0,1]", o.Scale)
	}
	if o.Workers < 0 {
		return fmt.Errorf("exp: negative workers %d", o.Workers)
	}
	return nil
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// scaleCount scales an integer quantity, keeping at least min.
func (o Options) scaleCount(n, min int) int {
	s := int(math.Round(float64(n) * o.Scale))
	if s < min {
		s = min
	}
	return s
}

// Table is a named grid of results: one column of x-values followed by
// one column per series.
type Table struct {
	Name    string   // registry key, e.g. "fig2"
	Title   string   // human description
	XLabel  string   // name of column 0
	Columns []string // series names (columns 1..)
	Rows    [][]float64
	// Notes carry experiment-level observations (farm sizes, packing
	// stats) that don't fit the grid.
	Notes []string
}

// AddRow appends a row; the first element is the x-value.
func (t *Table) AddRow(x float64, ys ...float64) {
	row := append([]float64{x}, ys...)
	if len(row) != len(t.Columns)+1 {
		panic(fmt.Sprintf("exp: table %s row has %d values, want %d", t.Name, len(ys), len(t.Columns)))
	}
	t.Rows = append(t.Rows, row)
}

// Column returns the values of the named series.
func (t *Table) Column(name string) ([]float64, bool) {
	for ci, c := range t.Columns {
		if c == name {
			out := make([]float64, len(t.Rows))
			for ri, row := range t.Rows {
				out[ri] = row[ci+1]
			}
			return out, true
		}
	}
	return nil, false
}

// X returns the x-values column.
func (t *Table) X() []float64 {
	out := make([]float64, len(t.Rows))
	for ri, row := range t.Rows {
		out[ri] = row[0]
	}
	return out
}

// SortByX orders rows by ascending x-value (parallel execution may
// complete rows out of order).
func (t *Table) SortByX() {
	sort.SliceStable(t.Rows, func(a, b int) bool { return t.Rows[a][0] < t.Rows[b][0] })
}

// String renders an aligned ASCII table.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", t.Name, t.Title)
	headers := append([]string{t.XLabel}, t.Columns...)
	widths := make([]int, len(headers))
	cells := make([][]string, len(t.Rows))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for ri, row := range t.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := formatCell(v)
			cells[ri][ci] = s
			if len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	for i, h := range headers {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%*s", widths[i], h)
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(t.XLabel)
	for _, c := range t.Columns {
		b.WriteByte(',')
		b.WriteString(c)
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, v := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(formatCell(v))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func formatCell(v float64) string {
	switch {
	case math.IsNaN(v):
		return "nan"
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1000 || (math.Abs(v) < 0.001 && v != 0):
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// packSweep packs a fixed trace's files across a parallel plan-only
// grid — allocation axes only, no simulation. Every experiment that
// pre-computes assignments (to share one farm size across a figure's
// series) goes through here.
func packSweep(name string, tr *trace.Trace, base farm.AllocSpec, axes []farm.Axis, opts Options) (*farm.SweepResult, error) {
	return farm.RunSweep(farm.Sweep{
		Name:     name,
		Base:     farm.Spec{Workload: farm.TraceWorkload(tr), Alloc: base},
		Axes:     axes,
		PlanOnly: true,
	}, opts.Seed, opts.workers())
}
