// Package exp defines the paper's experiments — one per table and
// figure of the evaluation section — and a parallel harness that
// regenerates them. Each experiment returns Tables whose rows are the
// series the paper plots, so the CLI (cmd/experiments), the root
// benchmarks, and EXPERIMENTS.md all derive from the same code.
//
// Experiments accept an Options.Scale in (0, 1] that shrinks the
// workload (files, requests, farm) proportionally; shape conclusions
// survive scaling, which keeps `go test` and `go test -bench` fast
// while `cmd/experiments -scale 1` reproduces the full paper setup.
package exp

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"

	"diskpack/internal/farm"
	"diskpack/internal/trace"
)

// simulate routes one pre-allocated simulation point through the farm
// engine — the single simulation entry every experiment shares. The
// trace and assignment are fixed inputs, so the seed only matters for
// seeded spin policies (farm.SpinRandomized).
func simulate(tr *trace.Trace, assign []int, farmSize int, spin farm.SpinSpec, cacheBytes int64, seed int64) (*farm.Metrics, error) {
	return farm.Run(farm.Spec{
		Workload:   farm.TraceWorkload(tr),
		Alloc:      farm.Explicit(assign),
		FarmSize:   farmSize,
		Spin:       spin,
		CacheBytes: cacheBytes,
	}, seed)
}

// Options configures an experiment run.
type Options struct {
	// Scale in (0, 1] shrinks file counts, request counts, and farm
	// sizes. 1 reproduces the paper's setup.
	Scale float64
	// Seed makes runs reproducible; different seeds give independent
	// workload draws.
	Seed int64
	// Workers bounds simulation parallelism; 0 means GOMAXPROCS.
	Workers int
}

// DefaultOptions returns full-scale, seeded, fully parallel options.
func DefaultOptions() Options { return Options{Scale: 1, Seed: 1} }

// Validate reports the first invalid option.
func (o Options) Validate() error {
	if !(o.Scale > 0 && o.Scale <= 1) || math.IsNaN(o.Scale) {
		return fmt.Errorf("exp: scale %v outside (0,1]", o.Scale)
	}
	if o.Workers < 0 {
		return fmt.Errorf("exp: negative workers %d", o.Workers)
	}
	return nil
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// scaleCount scales an integer quantity, keeping at least min.
func (o Options) scaleCount(n, min int) int {
	s := int(math.Round(float64(n) * o.Scale))
	if s < min {
		s = min
	}
	return s
}

// Table is a named grid of results: one column of x-values followed by
// one column per series.
type Table struct {
	Name    string   // registry key, e.g. "fig2"
	Title   string   // human description
	XLabel  string   // name of column 0
	Columns []string // series names (columns 1..)
	Rows    [][]float64
	// Notes carry experiment-level observations (farm sizes, packing
	// stats) that don't fit the grid.
	Notes []string
}

// AddRow appends a row; the first element is the x-value.
func (t *Table) AddRow(x float64, ys ...float64) {
	row := append([]float64{x}, ys...)
	if len(row) != len(t.Columns)+1 {
		panic(fmt.Sprintf("exp: table %s row has %d values, want %d", t.Name, len(ys), len(t.Columns)))
	}
	t.Rows = append(t.Rows, row)
}

// Column returns the values of the named series.
func (t *Table) Column(name string) ([]float64, bool) {
	for ci, c := range t.Columns {
		if c == name {
			out := make([]float64, len(t.Rows))
			for ri, row := range t.Rows {
				out[ri] = row[ci+1]
			}
			return out, true
		}
	}
	return nil, false
}

// X returns the x-values column.
func (t *Table) X() []float64 {
	out := make([]float64, len(t.Rows))
	for ri, row := range t.Rows {
		out[ri] = row[0]
	}
	return out
}

// SortByX orders rows by ascending x-value (parallel execution may
// complete rows out of order).
func (t *Table) SortByX() {
	sort.SliceStable(t.Rows, func(a, b int) bool { return t.Rows[a][0] < t.Rows[b][0] })
}

// String renders an aligned ASCII table.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", t.Name, t.Title)
	headers := append([]string{t.XLabel}, t.Columns...)
	widths := make([]int, len(headers))
	cells := make([][]string, len(t.Rows))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for ri, row := range t.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := formatCell(v)
			cells[ri][ci] = s
			if len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	for i, h := range headers {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%*s", widths[i], h)
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(t.XLabel)
	for _, c := range t.Columns {
		b.WriteByte(',')
		b.WriteString(c)
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, v := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(formatCell(v))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func formatCell(v float64) string {
	switch {
	case math.IsNaN(v):
		return "nan"
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1000 || (math.Abs(v) < 0.001 && v != 0):
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// parallelFor runs fn(i) for i in [0, n) on up to workers goroutines
// and returns the first error.
func parallelFor(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	grab := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	fail := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil {
			firstErr = err
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i, ok := grab()
				if !ok {
					return
				}
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
