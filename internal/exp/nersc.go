package exp

import (
	"fmt"
	"math/rand"

	"diskpack/internal/core"
	"diskpack/internal/disk"
	"diskpack/internal/farm"
	"diskpack/internal/trace"
	"diskpack/internal/workload"
)

// nerscCapL is the load constraint used when packing the NERSC
// workload. The paper does not state one for Section 5.1; at its
// arrival rate (0.0447/s) the aggregate load is ≈0.34 disk-seconds per
// second, so packing is dominated by the size dimension and the choice
// barely matters.
const nerscCapL = 0.8

// nerscLRUBytes is the front-cache size of Figures 5 and 6.
const nerscLRUBytes = 16 * disk.GB

// fig56Thresholds are the idleness-threshold x-values in hours.
var fig56Thresholds = []float64{0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0, 1.5, 2.0}

// nerscSetup builds the synthesized NERSC trace and the five
// allocations of Figures 5 and 6 (random, Pack_Disk, Pack_Disk_4, the
// cached variants reuse the uncached allocations).
type nerscSetup struct {
	tr       *trace.Trace
	farmSize int
	rnd      []int
	pack1    []int
	pack4    []int
}

func buildNERSC(opts Options) (*nerscSetup, error) {
	cfg := workload.DefaultNERSC(opts.Seed)
	cfg.NumFiles = opts.scaleCount(cfg.NumFiles, 200)
	cfg.NumRequests = opts.scaleCount(cfg.NumRequests, 500)
	// Keep the paper's arrival rate: scale duration with requests.
	cfg.Duration *= float64(cfg.NumRequests) / 115832
	tr, err := cfg.Build()
	if err != nil {
		return nil, err
	}
	params := disk.DefaultParams()
	items, err := packItems(tr.Files, params, nerscCapL)
	if err != nil {
		return nil, err
	}
	p1, err := core.PackDisks(items)
	if err != nil {
		return nil, err
	}
	p4, err := core.PackDisksV(items, 4)
	if err != nil {
		return nil, err
	}
	// The paper gives random placement the same number of disks as
	// Pack_Disks (96 vs 95 minimum); the farm must fit the group
	// variant too.
	farmSize := p1.NumDisks
	if p4.NumDisks > farmSize {
		farmSize = p4.NumDisks
	}
	rng := rand.New(rand.NewSource(opts.Seed + 7))
	rnd, err := core.RandomAssignCapacity(items, farmSize, rng)
	if err != nil {
		return nil, err
	}
	return &nerscSetup{tr: tr, farmSize: farmSize, rnd: rnd.DiskOf, pack1: p1.DiskOf, pack4: p4.DiskOf}, nil
}

// fig56Series describes one curve of Figures 5 and 6.
type fig56Series struct {
	name   string
	assign func(*nerscSetup) []int
	cache  int64
}

var fig56SeriesList = []fig56Series{
	{"RND", func(s *nerscSetup) []int { return s.rnd }, 0},
	{"Pack_Disk", func(s *nerscSetup) []int { return s.pack1 }, 0},
	{"Pack_Disk4", func(s *nerscSetup) []int { return s.pack4 }, 0},
	{"RND+LRU", func(s *nerscSetup) []int { return s.rnd }, nerscLRUBytes},
	{"Pack_Disk4+LRU", func(s *nerscSetup) []int { return s.pack4 }, nerscLRUBytes},
}

// Fig56 runs the Figures 5 and 6 sweep on the synthesized NERSC trace:
// power saving (normalized against the farm spinning with no
// power-saving mechanism) and mean response time, as the idleness
// threshold varies from 0.05 h to 2 h, for the five series RND,
// Pack_Disk, Pack_Disk4, RND+LRU, and Pack_Disk4+LRU. The
// (threshold × series) grid is one farm.Sweep: a declarative
// spin-threshold axis crossed with a custom series axis that swaps the
// allocation and the front cache.
func Fig56(opts Options) (fig5, fig6 *Table, err error) {
	if err := opts.Validate(); err != nil {
		return nil, nil, err
	}
	setup, err := buildNERSC(opts)
	if err != nil {
		return nil, nil, err
	}
	cols := make([]string, len(fig56SeriesList))
	thresholds := make([]float64, len(fig56Thresholds))
	for i, s := range fig56SeriesList {
		cols[i] = s.name
	}
	for i, h := range fig56Thresholds {
		thresholds[i] = h * 3600
	}
	sim, err := simSweep("fig56", setup.tr, setup.farmSize, farm.SpinSpec{Kind: farm.SpinBreakEven},
		[]farm.Axis{
			{Kind: farm.AxisSpinThreshold, Values: thresholds},
			{Name: "series", Kind: farm.AxisCustom, Labels: cols,
				Apply: func(s *farm.Spec, i int, _ []int) error {
					s.Alloc = farm.Explicit(fig56SeriesList[i].assign(setup))
					s.CacheBytes = fig56SeriesList[i].cache
					return nil
				}},
		}, opts)
	if err != nil {
		return nil, nil, err
	}

	fig5 = &Table{Name: "fig5", Title: "Power saving vs idleness threshold (NERSC workload)", XLabel: "Threshold(h)", Columns: cols}
	fig6 = &Table{Name: "fig6", Title: "Mean response time (s) vs idleness threshold (NERSC workload)", XLabel: "Threshold(h)", Columns: cols}
	for ti, th := range fig56Thresholds {
		savings := make([]float64, len(fig56SeriesList))
		resps := make([]float64, len(fig56SeriesList))
		for si := range fig56SeriesList {
			m := sim.At(ti, si).Metrics
			savings[si] = m.PowerSavingRatio
			resps[si] = m.RespMean
		}
		fig5.AddRow(th, savings...)
		fig6.AddRow(th, resps...)
	}
	note := fmt.Sprintf("farm %d disks; %d files, %d requests", setup.farmSize, len(setup.tr.Files), len(setup.tr.Requests))
	if hr := sim.At(0, len(fig56SeriesList)-1).Metrics.CacheHitRatio; hr > 0 {
		note += fmt.Sprintf("; LRU hit ratio %.1f%% (paper: 5.6%%)", hr*100)
	}
	fig5.Notes = append(fig5.Notes, note)
	fig6.Notes = append(fig6.Notes, note)
	return fig5, fig6, nil
}

// VSweep runs the Section 5.1 group-size ablation: Pack_Disk_v for
// v = 1..8 at a 0.5 h idleness threshold on the NERSC workload. The
// paper reports v = 4 as the sweet spot: larger groups no longer
// improve response time but dilute the power saving. The packings come
// from a plan-only AxisPackV sweep; the simulations from a second
// sweep sharing one farm size so the savings are comparable.
func VSweep(opts Options) (*Table, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	setup, err := buildNERSC(opts)
	if err != nil {
		return nil, err
	}
	vs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	plan, err := packSweep("vsweep-pack", setup.tr,
		farm.AllocSpec{Kind: farm.AllocPackV, CapL: nerscCapL},
		[]farm.Axis{{Kind: farm.AxisPackV, Values: vs}}, opts)
	if err != nil {
		return nil, err
	}
	farmSize := setup.farmSize
	vLabels := make([]string, len(vs))
	for i, v := range vs {
		vLabels[i] = fmt.Sprintf("v=%g", v)
		if used := plan.Points[i].Alloc.DisksUsed; used > farmSize {
			farmSize = used
		}
	}
	sim, err := simSweep("vsweep-sim", setup.tr, farmSize, farm.FixedSpin(0.5*3600),
		[]farm.Axis{{Name: "v", Kind: farm.AxisCustom, Labels: vLabels,
			Apply: func(s *farm.Spec, i int, _ []int) error {
				s.Alloc = farm.Explicit(plan.Points[i].Alloc.Assign)
				return nil
			}}}, opts)
	if err != nil {
		return nil, err
	}
	table := &Table{
		Name:    "vsweep",
		Title:   "Pack_Disk_v group-size ablation (0.5 h threshold, NERSC workload)",
		XLabel:  "v",
		Columns: []string{"PowerSaving", "RespTime(s)", "DisksUsed"},
	}
	for i, v := range vs {
		res := sim.Points[i].Metrics
		table.AddRow(v, res.PowerSavingRatio, res.RespMean, float64(plan.Points[i].Alloc.DisksUsed))
	}
	return table, nil
}
