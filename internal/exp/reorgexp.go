package exp

import (
	"fmt"

	"diskpack/internal/reorg"
	"diskpack/internal/storage"
	"diskpack/internal/workload"
)

// Reorg runs the semi-dynamic reorganization experiment of the paper's
// Section 1: a NERSC-like workload whose hot set drifts over four
// phases, served either by a static Pack_Disks allocation (packed for
// phase 0) or by per-epoch reorganization driven by the previous
// epoch's measured rates. Columns report power saving, response time,
// and the migration bill.
func Reorg(opts Options) (*Table, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	const phases = 4
	cfg := workload.DefaultNERSC(opts.Seed)
	cfg.NumFiles = opts.scaleCount(cfg.NumFiles, 400)
	cfg.NumRequests = opts.scaleCount(cfg.NumRequests, 800)
	cfg.Duration *= float64(cfg.NumRequests) / 115832
	tr, err := cfg.BuildDrifting(phases)
	if err != nil {
		return nil, err
	}
	epoch := tr.Duration / phases

	type variant struct {
		name        string
		static      bool
		incremental bool
	}
	variants := []variant{
		{"static", true, false},
		{"full-repack", false, false},
		{"incremental", false, true},
	}
	table := &Table{
		Name:    "reorg",
		Title:   fmt.Sprintf("Semi-dynamic reorganization under popularity drift (%d phases)", phases),
		XLabel:  "variant", // 0 = static, 1 = full repack, 2 = incremental
		Columns: []string{"Saving", "Resp(s)", "MigratedGB", "MigrationJ", "LastEpochSaving"},
	}
	rows := make([][]float64, len(variants))
	err = parallelFor(len(variants), opts.workers(), func(i int) error {
		res, err := reorg.Run(tr, reorg.Config{
			Epoch:         epoch,
			CapL:          nerscCapL,
			IdleThreshold: storage.BreakEven,
			Static:        variants[i].static,
			Incremental:   variants[i].incremental,
			MinRate:       1e-8,
		})
		if err != nil {
			return fmt.Errorf("%s: %w", variants[i].name, err)
		}
		last := res.Epochs[len(res.Epochs)-1]
		rows[i] = []float64{float64(i),
			res.SavingRatio, res.RespMean,
			float64(res.MigratedBytes) / 1e9, res.MigrationEnergy,
			last.SavingRatio,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	table.Rows = rows
	table.Notes = append(table.Notes,
		"variant 0 = static (packed for phase 0), 1 = full repack each epoch, 2 = incremental (migrate only rate-deviant files, paper §6)")
	return table, nil
}
