package exp

import (
	"fmt"

	"diskpack/internal/reorg"
	"diskpack/internal/storage"
	"diskpack/internal/workload"
)

// Reorg runs the semi-dynamic reorganization experiment of the paper's
// Section 1: a NERSC-like workload whose hot set drifts over four
// phases, served either by a static Pack_Disks allocation (packed for
// phase 0), by per-epoch reorganization driven by the previous epoch's
// measured rates, or by the adaptive mode that sweeps candidate
// reallocations each epoch and adopts the cheapest. Columns report
// power saving, response time, and the migration bill.
func Reorg(opts Options) (*Table, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	const phases = 4
	cfg := workload.DefaultNERSC(opts.Seed)
	cfg.NumFiles = opts.scaleCount(cfg.NumFiles, 400)
	cfg.NumRequests = opts.scaleCount(cfg.NumRequests, 800)
	cfg.Duration *= float64(cfg.NumRequests) / 115832
	tr, err := cfg.BuildDrifting(phases)
	if err != nil {
		return nil, err
	}
	epoch := tr.Duration / phases

	type variant struct {
		name        string
		static      bool
		incremental bool
		adaptive    bool
	}
	variants := []variant{
		{name: "static", static: true},
		{name: "full-repack"},
		{name: "incremental", incremental: true},
		{name: "adaptive", adaptive: true},
	}
	table := &Table{
		Name:    "reorg",
		Title:   fmt.Sprintf("Semi-dynamic reorganization under popularity drift (%d phases)", phases),
		XLabel:  "variant", // 0 = static, 1 = full repack, 2 = incremental, 3 = adaptive
		Columns: []string{"Saving", "Resp(s)", "MigratedGB", "MigrationJ", "LastEpochSaving"},
	}
	// Epochs chain (epoch n+1 depends on n), so variants run in
	// sequence; the adaptive variant parallelizes internally through its
	// per-epoch candidate sweep.
	for i, v := range variants {
		res, err := reorg.Run(tr, reorg.Config{
			Epoch:         epoch,
			CapL:          nerscCapL,
			IdleThreshold: storage.BreakEven,
			Static:        v.static,
			Incremental:   v.incremental,
			Adaptive:      v.adaptive,
			Workers:       opts.workers(),
			MinRate:       1e-8,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		last := res.Epochs[len(res.Epochs)-1]
		table.AddRow(float64(i),
			res.SavingRatio, res.RespMean,
			float64(res.MigratedBytes)/1e9, res.MigrationEnergy,
			last.SavingRatio,
		)
	}
	table.Notes = append(table.Notes,
		"variant 0 = static (packed for phase 0), 1 = full repack each epoch, 2 = incremental (migrate only rate-deviant files, paper §6), 3 = adaptive (per-epoch candidate sweep picks keep/incremental/full)")
	return table, nil
}
