package exp

import (
	"strings"
	"testing"
)

// testOpts shrinks the experiments to ~10% scale: fast enough for CI,
// large enough that the paper's shape conclusions are assertable.
func testOpts() Options { return Options{Scale: 0.1, Seed: 3} }

func TestOptionsValidate(t *testing.T) {
	for _, o := range []Options{{Scale: 0}, {Scale: -1}, {Scale: 1.5}, {Scale: 0.5, Workers: -1}} {
		if o.Validate() == nil {
			t.Errorf("options %+v accepted", o)
		}
	}
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTableHelpers(t *testing.T) {
	tab := &Table{Name: "t", Title: "title", XLabel: "x", Columns: []string{"a", "b"}}
	tab.AddRow(2, 20, 200)
	tab.AddRow(1, 10, 100)
	tab.SortByX()
	if x := tab.X(); x[0] != 1 || x[1] != 2 {
		t.Fatalf("SortByX failed: %v", x)
	}
	col, ok := tab.Column("b")
	if !ok || col[0] != 100 || col[1] != 200 {
		t.Fatalf("Column(b)=%v ok=%v", col, ok)
	}
	if _, ok := tab.Column("missing"); ok {
		t.Error("missing column found")
	}
	s := tab.String()
	if !strings.Contains(s, "title") || !strings.Contains(s, "a") {
		t.Errorf("String() missing pieces:\n%s", s)
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "x,a,b\n") {
		t.Errorf("CSV header wrong:\n%s", csv)
	}
	if !strings.Contains(csv, "1,10,100") {
		t.Errorf("CSV body wrong:\n%s", csv)
	}
}

func TestTableAddRowArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad arity accepted")
		}
	}()
	tab := &Table{Columns: []string{"a", "b"}}
	tab.AddRow(1, 2)
}

// TestFig2Shape asserts the paper's Figure 2 conclusions: the
// power-saving ratio of Pack_Disks over random placement decreases
// with the arrival rate, exceeds 60% at low R, and is ordered by the
// load constraint (looser L saves more at high R).
func TestFig2Shape(t *testing.T) {
	f2, f3, err := Fig23(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, colName := range f2.Columns {
		col, _ := f2.Column(colName)
		// Broad monotone decrease: compare thirds of the R range.
		first := (col[0] + col[1] + col[2]) / 3
		last := (col[9] + col[10] + col[11]) / 3
		if first <= last {
			t.Errorf("fig2 %s: saving does not decrease with R (%.3f -> %.3f)", colName, first, last)
		}
		if col[0] < 0.5 {
			t.Errorf("fig2 %s: saving at R=1 only %.3f, paper reports >0.6 for low R", colName, col[0])
		}
	}
	// At high R, looser load constraints keep saving alive.
	l50, _ := f2.Column("L=50%")
	l80, _ := f2.Column("L=80%")
	if l50[11] > 0.15 {
		t.Errorf("fig2 L=50%% at R=12: saving %.3f should be near zero", l50[11])
	}
	if l80[11] < l50[11] {
		t.Errorf("fig2 at R=12: L=80%% (%.3f) should beat L=50%% (%.3f)", l80[11], l50[11])
	}

	// Figure 3: response-time ratios within the paper's reported
	// envelope (0.5–2.5 at full scale; allow slack for the small farm).
	for _, colName := range f3.Columns {
		col, _ := f3.Column(colName)
		for i, v := range col {
			if v < 0.2 || v > 10 {
				t.Errorf("fig3 %s row %d: ratio %.3f implausible", colName, i, v)
			}
		}
	}
	// Tighter L must not respond slower than looser L at the same R.
	r3l50, _ := f3.Column("L=50%")
	r3l80, _ := f3.Column("L=80%")
	worse := 0
	for i := range r3l50 {
		if r3l80[i] < r3l50[i] {
			worse++
		}
	}
	if worse > 2 {
		t.Errorf("fig3: L=80%% responded faster than L=50%% in %d/12 rows", worse)
	}
}

// TestFig4Shape asserts the Figure 4 trade-off: as L rises, power
// falls and response time grows.
func TestFig4Shape(t *testing.T) {
	f4, err := Fig4(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	power, _ := f4.Column("Power(W)")
	resp, _ := f4.Column("RespTime(s)")
	n := len(power)
	if power[0] <= power[n-1] {
		t.Errorf("fig4: power did not fall with L: %.1f -> %.1f", power[0], power[n-1])
	}
	if resp[n-1] <= resp[0] {
		t.Errorf("fig4: response did not grow with L: %.2f -> %.2f", resp[0], resp[n-1])
	}
	// Rough monotonicity: each curve may wiggle by one step but the
	// cumulative violations should be small.
	for i := 1; i < n; i++ {
		if power[i] > power[i-1]*1.05 {
			t.Errorf("fig4: power increased sharply at L=%v", f4.X()[i])
		}
		if resp[i] < resp[i-1]*0.8 {
			t.Errorf("fig4: response dropped sharply at L=%v", f4.X()[i])
		}
	}
	disks, _ := f4.Column("DisksUsed")
	if disks[0] <= disks[n-1] {
		t.Errorf("fig4: disks used should shrink with L: %v -> %v", disks[0], disks[n-1])
	}
}

// TestFig56Shape asserts the Figure 5/6 conclusions on the NERSC
// workload: Pack_Disk's saving stays high across thresholds while
// RND's collapses; response times fall as the threshold grows; the
// LRU hit ratio is small (paper: 5.6%).
func TestFig56Shape(t *testing.T) {
	f5, f6, err := Fig56(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	rnd, _ := f5.Column("RND")
	pack, _ := f5.Column("Pack_Disk")
	pack4, _ := f5.Column("Pack_Disk4")
	last := len(rnd) - 1
	if rnd[0] <= rnd[last] {
		t.Errorf("fig5: RND saving should fall with threshold: %.3f -> %.3f", rnd[0], rnd[last])
	}
	if rnd[last] > 0.15 {
		t.Errorf("fig5: RND saving at 2h = %.3f, should be small", rnd[last])
	}
	for i := range pack {
		if pack[i] <= rnd[i] {
			t.Errorf("fig5 row %d: Pack_Disk (%.3f) did not beat RND (%.3f)", i, pack[i], rnd[i])
		}
	}
	if pack[last] < 0.35 {
		t.Errorf("fig5: Pack_Disk saving at 2h = %.3f, paper keeps ≈0.85 at full scale", pack[last])
	}
	// Pack_Disk concentrates harder than Pack_Disk4 (the group spreads
	// load), so it should save at least as much nearly everywhere.
	lower := 0
	for i := range pack {
		if pack[i] < pack4[i] {
			lower++
		}
	}
	if lower > 2 {
		t.Errorf("fig5: Pack_Disk below Pack_Disk4 in %d/%d rows", lower, len(pack))
	}

	rndResp, _ := f6.Column("RND")
	pack4Resp, _ := f6.Column("Pack_Disk4")
	if rndResp[0] <= rndResp[last] {
		t.Errorf("fig6: RND response should fall with threshold: %.2f -> %.2f", rndResp[0], rndResp[last])
	}
	// Paper: Pack_Disk4 responds similar-or-better than RND.
	worse := 0
	for i := range pack4Resp {
		if pack4Resp[i] > rndResp[i]*1.1 {
			worse++
		}
	}
	if worse > 2 {
		t.Errorf("fig6: Pack_Disk4 notably slower than RND in %d/%d rows", worse, len(pack4Resp))
	}
	// The cache-hit note reflects the paper's 5.6% measurement.
	foundNote := false
	for _, n := range f5.Notes {
		if strings.Contains(n, "hit ratio") {
			foundNote = true
		}
	}
	if !foundNote {
		t.Error("fig5: missing LRU hit-ratio note")
	}
}

// TestVSweepShape asserts the Section 5.1 ablation: moderate v improves
// response time over v=1 (batches spread over spindles), while large v
// dilutes the power saving.
func TestVSweepShape(t *testing.T) {
	tab, err := VSweep(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	saving, _ := tab.Column("PowerSaving")
	resp, _ := tab.Column("RespTime(s)")
	if resp[3] >= resp[0] {
		t.Errorf("vsweep: v=4 response (%.2f) should beat v=1 (%.2f)", resp[3], resp[0])
	}
	if saving[7] >= saving[0] {
		t.Errorf("vsweep: v=8 saving (%.3f) should trail v=1 (%.3f)", saving[7], saving[0])
	}
	for i, s := range saving {
		if s < -0.05 || s > 1 {
			t.Errorf("vsweep row %d: saving %.3f outside [0,1]", i, s)
		}
	}
}

// TestPackQualityShape asserts Theorem 1 in the realized workload:
// every allocator lands between the lower bound and the theorem's
// ceiling, and Pack_Disks is close to the bound.
func TestPackQualityShape(t *testing.T) {
	tab, err := PackQuality(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	lb, _ := tab.Column("LowerBound")
	pd, _ := tab.Column("Pack_Disks")
	chp, _ := tab.Column("ChangHwangPark")
	bound, _ := tab.Column("Thm1Bound")
	for i := range lb {
		if pd[i] < lb[i] {
			t.Errorf("packquality row %d: Pack_Disks %v below lower bound %v", i, pd[i], lb[i])
		}
		if pd[i] > bound[i]+1e-9 {
			t.Errorf("packquality row %d: Pack_Disks %v exceeds Theorem 1 bound %v", i, pd[i], bound[i])
		}
		if chp[i] > bound[i]+1e-9 {
			t.Errorf("packquality row %d: CHP %v exceeds Theorem 1 bound %v", i, chp[i], bound[i])
		}
	}
}

func TestTable1Values(t *testing.T) {
	tab, err := Table1(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	paper, _ := tab.Column("paper")
	measured, _ := tab.Column("measured")
	for i := range paper {
		rel := (measured[i] - paper[i]) / paper[i]
		if rel < -0.07 || rel > 0.07 {
			t.Errorf("table1 row %v: measured %v vs paper %v (%.1f%% off)",
				tab.X()[i], measured[i], paper[i], rel*100)
		}
	}
}

func TestTable2Values(t *testing.T) {
	tab, err := Table2(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	paper, _ := tab.Column("paper")
	model, _ := tab.Column("model")
	for i := range paper {
		rel := (model[i] - paper[i]) / paper[i]
		if rel < -0.01 || rel > 0.01 {
			t.Errorf("table2 row %v: model %v vs paper %v", tab.X()[i], model[i], paper[i])
		}
	}
}

func TestScalingExperiment(t *testing.T) {
	tab, err := Scaling(Options{Scale: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pd, _ := tab.Column("PackDisks(ms)")
	for i, v := range pd {
		if v < 0 {
			t.Errorf("scaling row %d: negative time %v", i, v)
		}
	}
	same, _ := tab.Column("SameDiskCount")
	agree := 0
	for _, v := range same {
		if v == 1 {
			agree++
		}
	}
	if agree == 0 {
		t.Error("scaling: PackDisks and CHP never agreed on disk count")
	}
}

func TestRegistryRunsEverythingTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	tables, err := Run("all", Options{Scale: 0.02, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, n := range Names() {
		want[n] = true
	}
	if len(tables) < len(Names()) {
		t.Fatalf("all: got %d tables want >= %d", len(tables), len(Names()))
	}
	for _, tab := range tables {
		if len(tab.Rows) == 0 {
			t.Errorf("table %s is empty", tab.Name)
		}
	}
}

// TestPoliciesShape asserts the DPM ablation's qualitative story:
// always-on saves nothing, immediate saves the most but pays the worst
// response times and the most spin-ups, adaptive reduces spin cycling
// relative to the fixed break-even threshold.
func TestPoliciesShape(t *testing.T) {
	tab, err := Policies(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	saving, _ := tab.Column("Pack:saving")
	resp, _ := tab.Column("Pack:resp(s)")
	spinups, _ := tab.Column("Pack:spinups")
	const (
		alwaysOn = iota
		immediate
		breakEven
		adaptive
		randomized
	)
	if saving[alwaysOn] > 1e-9 || saving[alwaysOn] < -1e-9 {
		t.Errorf("always-on saving %v want 0", saving[alwaysOn])
	}
	if spinups[alwaysOn] != 0 {
		t.Errorf("always-on spun up %v times", spinups[alwaysOn])
	}
	if saving[immediate] < saving[breakEven] {
		t.Errorf("immediate saving %.3f below break-even %.3f", saving[immediate], saving[breakEven])
	}
	if resp[immediate] <= resp[breakEven] {
		t.Errorf("immediate response %.2f should exceed break-even %.2f", resp[immediate], resp[breakEven])
	}
	if spinups[adaptive] >= spinups[breakEven] {
		t.Errorf("adaptive spin-ups %v should undercut break-even %v", spinups[adaptive], spinups[breakEven])
	}
	if saving[adaptive] < 0.5*saving[breakEven] {
		t.Errorf("adaptive saving %.3f collapsed relative to break-even %.3f", saving[adaptive], saving[breakEven])
	}
	if spinups[randomized] <= 0 {
		t.Error("randomized policy never spun down")
	}
}

// TestAnalysisAgreement asserts the analytic M/G/1 model tracks the
// simulator: power within 5%, response within 25% (mean-value model),
// and max utilization equal to the load constraint the packing was
// given.
func TestAnalysisAgreement(t *testing.T) {
	tab, err := Analysis(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	predR, _ := tab.Column("PredResp(s)")
	simR, _ := tab.Column("SimResp(s)")
	predP, _ := tab.Column("PredPower(W)")
	simP, _ := tab.Column("SimPower(W)")
	maxRho, _ := tab.Column("MaxRho")
	for i, L := range tab.X() {
		if rel := abs(predP[i]-simP[i]) / simP[i]; rel > 0.05 {
			t.Errorf("L=%v: power prediction off by %.1f%%", L, rel*100)
		}
		if rel := abs(predR[i]-simR[i]) / simR[i]; rel > 0.25 {
			t.Errorf("L=%v: response prediction off by %.1f%%", L, rel*100)
		}
		if maxRho[i] > L+0.01 {
			t.Errorf("L=%v: packing exceeded load constraint (rho=%v)", L, maxRho[i])
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestReorgShape asserts the semi-dynamic story: static never
// migrates; incremental (paper §6) migrates far less than full
// repacking while keeping the saving. Run at full scale — the
// migration comparison needs a realistically sized farm (the sweep is
// cheap because packing dominates, not simulation).
func TestReorgShape(t *testing.T) {
	tab, err := Reorg(Options{Scale: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	migrated, _ := tab.Column("MigratedGB")
	saving, _ := tab.Column("Saving")
	const (
		static = iota
		full
		incremental
	)
	if migrated[static] != 0 {
		t.Errorf("static migrated %v GB", migrated[static])
	}
	if migrated[full] <= 0 {
		t.Errorf("full repack migrated nothing (farm fallback?)")
	}
	if migrated[incremental] >= migrated[full] {
		t.Errorf("incremental migrated %v GB, full %v GB — should be far less",
			migrated[incremental], migrated[full])
	}
	for i, s := range saving {
		if s < 0.2 || s > 1 {
			t.Errorf("variant %d saving %v implausible", i, s)
		}
	}
	if saving[incremental] < saving[full]-0.05 {
		t.Errorf("incremental saving %v collapsed vs full %v", saving[incremental], saving[full])
	}
}

func TestRunUnknownName(t *testing.T) {
	if _, err := Run("fig99", DefaultOptions()); err == nil {
		t.Fatal("unknown name accepted")
	}
}
