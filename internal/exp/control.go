package exp

import (
	"fmt"

	"diskpack/internal/control"
	"diskpack/internal/farm"
)

// StaticVsControlled regenerates the online-control headline result as
// a table: the heavy diurnal workload under every static spin-down
// threshold and under the tail-budget controller, one row per policy.
// The final column marks SLO feasibility, so the table reads exactly
// like the paper's operating-point search — except the winning row is
// picked at runtime by a controller, not offline by the sweep.
// Options.Scale shrinks the horizon (full scale is four days; the
// controller banks tail budget by day and spends it at night, so very
// short horizons understate it).
func StaticVsControlled(opts Options) (*Table, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	sc, ok := farm.Lookup("static-vs-controlled")
	if !ok || sc.Grid == nil {
		return nil, fmt.Errorf("exp: static-vs-controlled scenario not registered")
	}
	grid := *sc.Grid
	base := grid.Base
	cfg := *base.Workload.Synthetic
	cfg.Duration *= opts.Scale
	if cfg.Duration < 43200 {
		cfg.Duration = 43200 // at least half a diurnal cycle
	}
	base.Workload = farm.SyntheticWorkload(cfg)
	grid.Base = base

	res, err := farm.RunSweep(grid, opts.Seed, opts.workers())
	if err != nil {
		return nil, err
	}
	budget := grid.Select.MaxP95
	t := &Table{
		Name:    "control",
		Title:   fmt.Sprintf("static thresholds vs the %s controller, diurnal load (p95 SLO %g s)", control.KindTailBudget, budget),
		XLabel:  "point",
		Columns: []string{"energyMJ", "p95s", "savingPct", "spinups", "meetsSLO"},
	}
	for i := range res.Points {
		m := res.Points[i].Metrics
		meets := 0.0
		if m.RespP95 <= budget {
			meets = 1
		}
		t.AddRow(float64(i), m.Energy/1e6, m.RespP95, m.PowerSavingRatio*100, float64(m.SpinUps), meets)
		t.Notes = append(t.Notes, fmt.Sprintf("point %d: %s", i, res.Points[i].Label))
	}
	if res.Best >= 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("operating point: %s", res.Points[res.Best].Label))
	}
	return t, nil
}
