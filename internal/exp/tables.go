package exp

import (
	"fmt"
	"math/rand"
	"time"

	"diskpack/internal/core"
	"diskpack/internal/disk"
	"diskpack/internal/farm"
	"diskpack/internal/trace"
	"diskpack/internal/workload"
)

// Table1 reproduces the paper's Table 1 (system parameters) from the
// actual generator output, confirming the reconstruction: total space
// requirement ≈ 12.86 TB, size range 188 MB–20 GB, Zipf θ.
func Table1(opts Options) (*Table, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	cfg := workload.DefaultSynthetic(6, opts.Seed)
	files, err := cfg.Files()
	if err != nil {
		return nil, err
	}
	var total float64
	minSize, maxSize := files[0].Size, files[0].Size
	for _, f := range files {
		total += float64(f.Size)
		if f.Size < minSize {
			minSize = f.Size
		}
		if f.Size > maxSize {
			maxSize = f.Size
		}
	}
	t := &Table{
		Name:    "table1",
		Title:   "System parameters (paper Table 1) as realized by the generator",
		XLabel:  "row",
		Columns: []string{"paper", "measured"},
	}
	t.AddRow(1, 40000, float64(len(files)))             // n
	t.AddRow(2, 188, float64(minSize)/float64(disk.MB)) // min size MB
	t.AddRow(3, 20, float64(maxSize)/float64(disk.GB))  // max size GB
	t.AddRow(4, 12.86, total/float64(disk.TB))          // total TB
	t.AddRow(5, 0.5573, workload.DefaultTheta)          // theta
	t.AddRow(6, 100, synthFarmBase)                     // disks
	t.AddRow(7, 4000, cfg.Duration)                     // sim time
	t.Notes = append(t.Notes,
		"rows: 1=n files, 2=min size (MB), 3=max size (GB), 4=total space (TB), 5=Zipf θ, 6=farm disks, 7=simulated seconds")
	return t, nil
}

// Table2 reproduces the paper's Table 2 (drive characteristics) plus
// the derived quantities the text quotes: the 53.3 s break-even
// idleness threshold and the 7.56 s service time of the mean NERSC
// file.
func Table2(opts Options) (*Table, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	p := disk.DefaultParams()
	t := &Table{
		Name:    "table2",
		Title:   "Drive characteristics (paper Table 2) and derived constants",
		XLabel:  "row",
		Columns: []string{"paper", "model"},
	}
	t.AddRow(1, 9.3, p.IdlePower)
	t.AddRow(2, 0.8, p.StandbyPower)
	t.AddRow(3, 13, p.ActivePower)
	t.AddRow(4, 12.6, p.SeekPower)
	t.AddRow(5, 24, p.SpinUpPower)
	t.AddRow(6, 9.3, p.SpinDownPower)
	t.AddRow(7, 15, p.SpinUpTime)
	t.AddRow(8, 10, p.SpinDownTime)
	t.AddRow(9, 72, p.TransferRate/float64(disk.MB))
	t.AddRow(10, 500, float64(p.CapacityBytes)/float64(disk.GB))
	t.AddRow(11, 53.3, p.BreakEvenThreshold())
	t.AddRow(12, 7.56, p.ServiceTime(544*disk.MB))
	t.Notes = append(t.Notes,
		"rows 1-8: powers (W) and transition times (s); 9: transfer MB/s; 10: capacity GB; 11: break-even threshold (s); 12: service time of 544 MB file (s)")
	return t, nil
}

// PackQuality compares the allocators on the Table 1 workload at
// several load constraints: disks used by Pack_Disks, Pack_Disks_4,
// Chang–Hwang–Park, first-fit decreasing, first-fit, best-fit, and the
// lower bound. It substantiates the paper's claim that Pack_Disks
// packs within the Theorem 1 bound of optimal. The whole
// (L × allocator) grid is one plan-only farm.Sweep — no simulation,
// just parallel packing.
func PackQuality(opts Options) (*Table, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	cfg := scaledSynthetic(opts, 6, 0)
	files, err := cfg.Files()
	if err != nil {
		return nil, err
	}
	tr := &trace.Trace{Files: files, Duration: cfg.Duration}
	Ls := []float64{0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	allocs := []farm.AllocKind{
		farm.AllocPack, farm.AllocPackV, farm.AllocChangHwangPark,
		farm.AllocFirstFitDecreasing, farm.AllocFirstFit, farm.AllocBestFit,
	}
	allocValues := make([]float64, len(allocs))
	for i, k := range allocs {
		allocValues[i] = float64(k)
	}
	plan, err := packSweep("packquality", tr,
		farm.AllocSpec{Kind: farm.AllocPack, V: 4},
		[]farm.Axis{
			{Kind: farm.AxisCapL, Values: Ls},
			{Kind: farm.AxisAllocKind, Values: allocValues},
		}, opts)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:    "packquality",
		Title:   "Disks used by each allocator vs load constraint (Table 1 workload)",
		XLabel:  "L",
		Columns: []string{"LowerBound", "Pack_Disks", "Pack_Disks4", "ChangHwangPark", "FFD", "FirstFit", "BestFit", "Thm1Bound"},
	}
	for li, L := range Ls {
		pack := plan.At(li, 0).Alloc
		t.AddRow(L,
			float64(pack.LowerBound),
			float64(pack.DisksUsed),
			float64(plan.At(li, 1).Alloc.DisksUsed),
			float64(plan.At(li, 2).Alloc.DisksUsed),
			float64(plan.At(li, 3).Alloc.DisksUsed),
			float64(plan.At(li, 4).Alloc.DisksUsed),
			float64(plan.At(li, 5).Alloc.DisksUsed),
			pack.Bound,
		)
	}
	return t, nil
}

// Scaling measures packing wall-time for Pack_Disks (O(n log n))
// against Chang–Hwang–Park (O(n²)) over growing instance sizes — the
// paper's Section 3 complexity claim.
func Scaling(opts Options) (*Table, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	ns := []int{1000, 2000, 4000, 8000, 16000, 32000}
	t := &Table{
		Name:    "scaling",
		Title:   "Packing wall time (ms): O(n log n) Pack_Disks vs O(n²) Chang-Hwang-Park",
		XLabel:  "n",
		Columns: []string{"PackDisks(ms)", "ChangHwangPark(ms)", "SameDiskCount"},
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	for _, n := range ns {
		nn := opts.scaleCount(n, 100)
		items := make([]core.Item, nn)
		for i := range items {
			// Mixed instance that triggers evictions: interleaved
			// size- and load-heavy items.
			if i%2 == 0 {
				items[i] = core.Item{ID: i, Size: 0.02 + 0.28*rng.Float64(), Load: 0.01 * rng.Float64()}
			} else {
				items[i] = core.Item{ID: i, Size: 0.01 * rng.Float64(), Load: 0.02 + 0.28*rng.Float64()}
			}
		}
		start := time.Now()
		pd, err := core.PackDisks(items)
		if err != nil {
			return nil, err
		}
		pdMS := float64(time.Since(start).Microseconds()) / 1000
		start = time.Now()
		chp, err := core.ChangHwangPark(items)
		if err != nil {
			return nil, err
		}
		chpMS := float64(time.Since(start).Microseconds()) / 1000
		same := 0.0
		if pd.NumDisks == chp.NumDisks {
			same = 1
		}
		t.AddRow(float64(nn), pdMS, chpMS, same)
	}
	return t, nil
}

// Registry maps experiment names to runners returning one or more
// tables. Names match the paper's figure/table numbering.
var Registry = map[string]func(Options) ([]*Table, error){
	"table1": single(Table1),
	"table2": single(Table2),
	"fig2": func(o Options) ([]*Table, error) {
		f2, _, err := Fig23(o)
		return []*Table{f2}, err
	},
	"fig3": func(o Options) ([]*Table, error) {
		_, f3, err := Fig23(o)
		return []*Table{f3}, err
	},
	"fig23": func(o Options) ([]*Table, error) {
		f2, f3, err := Fig23(o)
		return []*Table{f2, f3}, err
	},
	"fig4": single(Fig4),
	"fig5": func(o Options) ([]*Table, error) {
		f5, _, err := Fig56(o)
		return []*Table{f5}, err
	},
	"fig6": func(o Options) ([]*Table, error) {
		_, f6, err := Fig56(o)
		return []*Table{f6}, err
	},
	"fig56": func(o Options) ([]*Table, error) {
		f5, f6, err := Fig56(o)
		return []*Table{f5, f6}, err
	},
	"vsweep":      single(VSweep),
	"packquality": single(PackQuality),
	"scaling":     single(Scaling),
	"policies":    single(Policies),
	"analysis":    single(Analysis),
	"reorg":       single(Reorg),
	"control":     single(StaticVsControlled),
	"reliability": single(Reliability),
}

// Names returns the registry keys an "all" run executes, in a stable
// order that avoids recomputing shared sweeps.
func Names() []string {
	return []string{"table1", "table2", "packquality", "scaling", "fig23", "fig4", "fig56", "vsweep", "policies", "analysis", "reorg", "control", "reliability"}
}

func single(fn func(Options) (*Table, error)) func(Options) ([]*Table, error) {
	return func(o Options) ([]*Table, error) {
		t, err := fn(o)
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	}
}

// Run executes the named experiment ("all" runs everything in Names
// order).
func Run(name string, opts Options) ([]*Table, error) {
	if name == "all" {
		var out []*Table
		for _, n := range Names() {
			ts, err := Registry[n](opts)
			if err != nil {
				return nil, fmt.Errorf("exp %s: %w", n, err)
			}
			out = append(out, ts...)
		}
		return out, nil
	}
	fn, ok := Registry[name]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (have %v and \"all\")", name, Names())
	}
	return fn(opts)
}
