package exp

import (
	"fmt"

	"diskpack/internal/farm"
)

// Reliability regenerates the reliability-axis headline as a table:
// the bursty workload under every static spin-down threshold and under
// the cycle-capped policy, one row per point. The columns expose the
// third axis the paper's energy/response trade-off hides — modeled AFR
// and start/stop cycles per disk-day — and the final column marks AFR
// feasibility, so the table shows why the cheapest threshold is not
// the one an operator should run: it buys its joules with drive life.
// Options.Scale shrinks the horizon (full scale is 8000 s of ON/OFF
// arrivals; shorter horizons see fewer OFF periods and fewer cycles).
func Reliability(opts Options) (*Table, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	sc, ok := farm.Lookup("reliability-sweep")
	if !ok || sc.Grid == nil {
		return nil, fmt.Errorf("exp: reliability-sweep scenario not registered")
	}
	grid := *sc.Grid
	scaleBursty := func(spec *farm.Spec) {
		cfg := *spec.Workload.Bursty
		cfg.Duration *= opts.Scale
		if cfg.Duration < 2000 {
			cfg.Duration = 2000 // at least a few ON/OFF periods
		}
		spec.Workload = farm.BurstyWorkload(cfg)
	}
	scaleBursty(&grid.Base)

	res, err := farm.RunSweep(grid, opts.Seed, opts.workers())
	if err != nil {
		return nil, err
	}
	capped := sc.Spec
	scaleBursty(&capped)
	cm, err := farm.Run(capped, opts.Seed)
	if err != nil {
		return nil, err
	}

	maxAFR := grid.Select.MaxAFR
	t := &Table{
		Name:    "reliability",
		Title:   fmt.Sprintf("spin threshold vs drive life, ON/OFF load (AFR budget %g%%)", maxAFR*100),
		XLabel:  "point",
		Columns: []string{"energyMJ", "p95s", "afrPct", "cyclesPerDay", "meetsAFR"},
	}
	row := func(i int, label string, m *farm.Metrics) {
		meets := 0.0
		if m.AFR <= maxAFR {
			meets = 1
		}
		t.AddRow(float64(i), m.Energy/1e6, m.RespP95, m.AFR*100, m.CyclesPerDay, meets)
		t.Notes = append(t.Notes, fmt.Sprintf("point %d: %s", i, label))
	}
	for i := range res.Points {
		row(i, res.Points[i].Label, res.Points[i].Metrics)
	}
	row(len(res.Points), fmt.Sprintf("%v cap=%g/day", capped.Spin.Kind, capped.Spin.CycleBudget), cm)
	if res.Best >= 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("operating point under SLO+AFR: %s", res.Points[res.Best].Label))
	}
	return t, nil
}
