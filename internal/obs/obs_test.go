package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestRegistryExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("test_ops_total", "operations")
	g := reg.NewGauge("test_temp", "temperature")
	h := reg.NewHistogram("test_resp_seconds", "response times", []float64{0.1, 1})
	v := reg.NewCounterVec("test_leases_total", "leases", "worker")

	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters only go up
	g.Set(1.5)
	g.Add(-0.25)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(30)
	v.With("b-worker").Inc()
	v.With("a worker \"x\"").Add(2)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# HELP test_leases_total leases`,
		`# TYPE test_leases_total counter`,
		`test_leases_total{worker="a worker \"x\""} 2`,
		`test_leases_total{worker="b-worker"} 1`,
		`# HELP test_ops_total operations`,
		`# TYPE test_ops_total counter`,
		`test_ops_total 5`,
		`# HELP test_resp_seconds response times`,
		`# TYPE test_resp_seconds histogram`,
		`test_resp_seconds_bucket{le="0.1"} 1`,
		`test_resp_seconds_bucket{le="1"} 3`,
		`test_resp_seconds_bucket{le="+Inf"} 4`,
		`test_resp_seconds_sum 31.05`,
		`test_resp_seconds_count 4`,
		`# HELP test_temp temperature`,
		`# TYPE test_temp gauge`,
		`test_temp 1.25`,
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got\n%s--- want\n%s", got, want)
	}

	if got := h.Count(); got != 4 {
		t.Errorf("histogram Count = %d, want 4", got)
	}
	if got := v.Total(); got != 3 {
		t.Errorf("vec Total = %d, want 3", got)
	}

	// The HTTP handler serves the same bytes with the exposition
	// content type.
	rr := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); ct != PrometheusContentType {
		t.Errorf("content type %q", ct)
	}
	if rr.Body.String() != want {
		t.Error("handler body differs from WritePrometheus")
	}
}

func TestGaugeVecExposition(t *testing.T) {
	reg := NewRegistry()
	v := reg.NewGaugeVec("test_slot_busy_seconds", "busy time", "slot")
	v.With("1").Set(2.5)
	v.With("0").Add(1.25)
	v.With("0").Add(0.25)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# HELP test_slot_busy_seconds busy time`,
		`# TYPE test_slot_busy_seconds gauge`,
		`test_slot_busy_seconds{slot="0"} 1.5`,
		`test_slot_busy_seconds{slot="1"} 2.5`,
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got\n%s--- want\n%s", got, want)
	}

	var nilVec *GaugeVec
	nilVec.With("x").Set(1) // no-op, no panic
}

func TestHistogramAddBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("h", "", []float64{1, 2})
	h.AddBuckets([]int64{3, 0, 2}, 10.5)
	h.AddBuckets([]int64{1, 1, 1, 99}, 2) // extra entries beyond layout are dropped
	if got := h.Count(); got != 8 {
		t.Errorf("Count = %d, want 8", got)
	}
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), `h_bucket{le="+Inf"} 8`) || !strings.Contains(buf.String(), "h_sum 12.5") {
		t.Errorf("bulk-merged exposition wrong:\n%s", buf.String())
	}
}

// TestNilSinkZeroAlloc pins the disabled fast path: every publishing
// method on nil metrics, a nil recorder, a nil telemetry writer, and a
// nil observer must allocate nothing (BenchmarkObsOverhead measures
// the same property under load).
func TestNilSinkZeroAlloc(t *testing.T) {
	var reg *Registry
	c := reg.NewCounter("c", "")
	g := reg.NewGauge("g", "")
	h := reg.NewHistogram("h", "", []float64{1})
	v := reg.NewCounterVec("v", "", "l")
	var rec *TraceRecorder
	var tw *TelemetryWriter
	var o *RunObserver
	var win TelemetryWindow
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		g.Add(2)
		h.Observe(0.5)
		h.AddBuckets(nil, 0)
		v.With("x").Inc()
		rec.StateChange(0, 1, 2)
		rec.Emit(TraceEvent{})
		rec.SetHorizon(10)
		tw.WriteWindow(&win)
		_ = o.Interrupted()
	})
	if allocs != 0 {
		t.Fatalf("nil sink allocated %.1f times per op, want 0", allocs)
	}
	if err := reg.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := tw.WriteHeader(TelemetryHeader{}); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
}

func sampleTrace() *TraceRecorder {
	rec := NewTraceRecorder()
	rec.InitTracks(2, []string{"idle", "standby", "spinup"})
	rec.StateChange(0, 0, 0)
	rec.StateChange(0, 100, 1)
	rec.StateChange(0, 250, 2)
	rec.StateChange(1, 0, 0)
	rec.Emit(TraceEvent{Phase: 'i', Track: "control", Name: "set-threshold", At: 120,
		Args: map[string]any{"applied": true, "window": 3}})
	rec.Emit(TraceEvent{Phase: 'X', Track: "reliability", Name: "rebuild group 0", At: 150, Dur: 60})
	rec.Emit(TraceEvent{Phase: 'C', Track: "windows", Name: "load", At: 300,
		Args: map[string]any{"arrivals": 12, "completed": 11}})
	rec.SetHorizon(400)
	return rec
}

// TestChromeTraceOutput checks the rendered trace is valid Chrome-trace
// JSON with the expected structure, and that rendering is
// deterministic: two identical recordings produce identical bytes.
func TestChromeTraceOutput(t *testing.T) {
	var a, b bytes.Buffer
	if err := sampleTrace().WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := sampleTrace().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("identical recordings rendered different bytes")
	}

	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Ts   float64        `json:"ts"`
			Dur  *float64       `json:"dur"`
			S    string         `json:"s"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q", doc.DisplayTimeUnit)
	}
	phases := map[string]int{}
	var spans, metas int
	for _, ev := range doc.TraceEvents {
		phases[ev.Ph]++
		switch ev.Ph {
		case "M":
			metas++
		case "X":
			if ev.Dur == nil {
				t.Errorf("span %q has no dur", ev.Name)
			}
		case "i":
			if ev.S != "g" {
				t.Errorf("instant %q scope %q, want g", ev.Name, ev.S)
			}
		}
		if ev.Ph == "X" && ev.Pid == 1 {
			spans++
		}
	}
	// Disk 0 has 3 segments, disk 1 has 1; plus the rebuild span on
	// the run process.
	if spans != 4 {
		t.Errorf("disk spans = %d, want 4", spans)
	}
	if phases["i"] != 1 || phases["C"] != 1 || phases["X"] != 5 {
		t.Errorf("phase counts %v", phases)
	}
	// 2 process_name + 3 run thread_name + 2 disk thread_name.
	if metas != 7 {
		t.Errorf("metadata events = %d, want 7", metas)
	}
	// The final segment of disk 0 must extend to the horizon.
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Pid == 1 && ev.Tid == 0 && ev.Name == "spinup" {
			found = true
			if ev.Dur == nil || *ev.Dur != (400-250)*1e6 {
				t.Errorf("final segment dur = %v, want %v", ev.Dur, (400-250)*1e6)
			}
		}
	}
	if !found {
		t.Error("disk 0 final spinup segment missing")
	}
}

func sampleTelemetry() (TelemetryHeader, []TelemetryWindow) {
	h := TelemetryHeader{
		Spec:           "golden",
		Seed:           7,
		Epoch:          1800,
		IdleGapBuckets: []float64{1, 10, 100},
		RespBuckets:    []float64{0.5, 5},
	}
	ws := []TelemetryWindow{
		{
			Index: 0, Start: 0, End: 1800,
			Total: TelemetryGroup{
				Group: -1, Disks: 4, Arrivals: 20, Completed: 18,
				RespMean: 1.25, RespP50: 0.8, RespP95: 4.5, RespP99: 6, RespMax: 7.5,
				Energy: 5400, SpinUps: 3, SpinDowns: 2, StandbyTime: 1200,
				IdleGaps: []int64{5, 2, 1, 0}, RespHist: []int64{10, 7, 1},
			},
			Groups: []TelemetryGroup{{Group: 0, Disks: 4, Arrivals: 20, Completed: 18, Threshold: 30}},
		},
		{
			Index: 1, Start: 1800, End: 3600, Final: true,
			Total:     TelemetryGroup{Group: -1, Disks: 4, Arrivals: 5, Completed: 7},
			CacheHits: 3, CacheMisses: 2,
			MigratedFiles: 4, MigratedBytes: 1 << 20, MigrationEnergy: 88.5,
			Failures: 1, DataLossEvents: 0, Rebuilds: 1, RebuildTime: 420,
		},
	}
	return h, ws
}

// TestTelemetryGoldenRoundTrip writes the telemetry stream, compares
// it byte-for-byte against the checked-in golden file, and reads the
// golden back through ReadTelemetry — so the schema cannot drift
// silently in either direction.
func TestTelemetryGoldenRoundTrip(t *testing.T) {
	h, ws := sampleTelemetry()
	var buf bytes.Buffer
	tw := NewTelemetryWriter(&buf)
	if err := tw.WriteHeader(h); err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		w := w
		if err := tw.WriteWindow(&w); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := tw.WriteWindow(&TelemetryWindow{}); err == nil {
		t.Error("write after Close succeeded")
	}

	golden := filepath.Join("testdata", "telemetry.golden.jsonl")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("telemetry stream drifted from golden (bump TelemetryVersion on schema changes, or -update):\n--- got\n%s--- want\n%s", buf.Bytes(), want)
	}

	gotH, gotWs, err := ReadTelemetry(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if gotH.Schema != TelemetrySchema || gotH.Version != TelemetryVersion {
		t.Errorf("header schema %q v%d, want %q v%d", gotH.Schema, gotH.Version, TelemetrySchema, TelemetryVersion)
	}
	if gotH.Spec != "golden" || gotH.Seed != 7 || gotH.Epoch != 1800 {
		t.Errorf("header identity %+v", gotH)
	}
	if len(gotWs) != 2 {
		t.Fatalf("read %d windows, want 2", len(gotWs))
	}
	if gotWs[0].Total.RespP95 != 4.5 || gotWs[1].Rebuilds != 1 || !gotWs[1].Final {
		t.Errorf("window payloads did not round-trip: %+v", gotWs)
	}
}

func TestReadTelemetryRejectsDrift(t *testing.T) {
	if _, _, err := ReadTelemetry(strings.NewReader(`{"Schema":"something-else","Version":1}` + "\n")); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("wrong schema accepted: %v", err)
	}
	if _, _, err := ReadTelemetry(strings.NewReader(`{"Schema":"diskpack-telemetry","Version":99}` + "\n")); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future version accepted: %v", err)
	}
	if _, _, err := ReadTelemetry(strings.NewReader("")); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestServeMux(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("up_total", "ups").Inc()
	mux := NewServeMux(reg)
	for _, path := range []string{"/metrics", "/debug/pprof/", "/debug/pprof/cmdline"} {
		rr := httptest.NewRecorder()
		mux.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		if rr.Code != 200 {
			t.Errorf("GET %s = %d", path, rr.Code)
		}
	}
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rr.Body.String(), "up_total 1") {
		t.Errorf("metrics body:\n%s", rr.Body.String())
	}
}
