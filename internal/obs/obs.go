// Package obs is the simulator's observability substrate: a
// lightweight metrics registry (counters, gauges, exact histograms)
// with Prometheus text-format exposition, a state-timeline trace
// recorder that renders Chrome-trace/Perfetto JSON, and a
// schema-versioned JSONL telemetry stream. Everything here is
// observation-only plumbing — producers (storage, disk, control,
// coord, the CLIs) publish into it, and nothing in this package feeds
// back into a simulation.
//
// Two properties shape the API. First, the disabled path is free:
// every mutating method is safe on a nil receiver and the nil path
// allocates nothing (asserted by tests and BenchmarkObsOverhead), so
// hot simulation loops carry instrumentation at the cost of one
// pointer test. Second, output is deterministic: given the same
// sequence of recorded facts, the trace and telemetry bytes are
// identical — no timestamps, no map iteration order, no
// pointer-dependent formatting — which lets the byte-identity suite
// extend to observability output itself.
//
// The package deliberately imports no other diskpack package, so any
// layer (sim, disk, storage, farm, control, coord) may publish into
// it without import cycles.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric. All methods are
// safe on a nil receiver (the disabled fast path) and safe for
// concurrent use.
type Counter struct {
	v    atomic.Int64
	name string
	help string
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (negative deltas are ignored — counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (zero on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) metricName() string { return c.name }

func (c *Counter) expose(w *bufio.Writer) {
	header(w, c.name, c.help, "counter")
	fmt.Fprintf(w, "%s %d\n", c.name, c.v.Load())
}

// Gauge is a float64 metric that can go up and down. All methods are
// safe on a nil receiver and safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
	name string
	help string
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d to the gauge's value.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (zero on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) metricName() string { return g.name }

func (g *Gauge) expose(w *bufio.Writer) {
	header(w, g.name, g.help, "gauge")
	fmt.Fprintf(w, "%s %s\n", g.name, formatFloat(g.Value()))
}

// Histogram is an exact fixed-bucket histogram: observations land in
// the first bucket whose upper bound is >= the value, with one
// overflow bucket past the last bound. Unlike a sampling summary,
// counts are exact — "completions over budget" reads straight off a
// bucket. All methods are safe on a nil receiver and safe for
// concurrent use.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1, non-cumulative
	sumBits atomic.Uint64
	name    string
	help    string
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[h.bucket(v)].Add(1)
	h.addSum(v)
}

// AddBuckets bulk-merges non-cumulative per-bucket counts (same
// bucket layout: len(bounds)+1 entries, overflow last) plus the sum
// of the underlying observations. Producers that already histogram
// per window (storage's RespHist) publish through this instead of
// replaying every observation.
func (h *Histogram) AddBuckets(counts []int64, sum float64) {
	if h == nil {
		return
	}
	n := len(counts)
	if n > len(h.counts) {
		n = len(h.counts)
	}
	for i := 0; i < n; i++ {
		if counts[i] > 0 {
			h.counts[i].Add(counts[i])
		}
	}
	h.addSum(sum)
}

func (h *Histogram) bucket(v float64) int {
	for i, b := range h.bounds {
		if v <= b {
			return i
		}
	}
	return len(h.bounds)
}

func (h *Histogram) addSum(v float64) {
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations (zero on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

func (h *Histogram) metricName() string { return h.name }

func (h *Histogram) expose(w *bufio.Writer) {
	header(w, h.name, h.help, "histogram")
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, le, cum)
	}
	fmt.Fprintf(w, "%s_sum %s\n", h.name, formatFloat(math.Float64frombits(h.sumBits.Load())))
	fmt.Fprintf(w, "%s_count %d\n", h.name, cum)
}

// CounterVec is a family of Counters keyed by one label value (for
// example, per-worker lease counts). All methods are safe on a nil
// receiver and safe for concurrent use.
type CounterVec struct {
	name  string
	help  string
	label string

	mu       sync.Mutex
	children map[string]*Counter
}

// With returns the child counter for the given label value, creating
// it on first use. Returns nil (a valid no-op Counter) on a nil vec.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	c := v.children[value]
	if c == nil {
		c = &Counter{}
		v.children[value] = c
	}
	return c
}

// Total returns the sum across all children (zero on nil).
func (v *CounterVec) Total() int64 {
	if v == nil {
		return 0
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	var n int64
	for _, c := range v.children {
		n += c.v.Load()
	}
	return n
}

func (v *CounterVec) metricName() string { return v.name }

func (v *CounterVec) expose(w *bufio.Writer) {
	header(w, v.name, v.help, "counter")
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		// %q escapes backslash, quote, and newline exactly as the
		// exposition format requires.
		fmt.Fprintf(w, "%s{%s=%q} %d\n", v.name, v.label, k, v.children[k].v.Load())
	}
	v.mu.Unlock()
}

// GaugeVec is a family of Gauges keyed by one label value (for
// example, per-slot busy seconds). All methods are safe on a nil
// receiver and safe for concurrent use.
type GaugeVec struct {
	name  string
	help  string
	label string

	mu       sync.Mutex
	children map[string]*Gauge
}

// With returns the child gauge for the given label value, creating it
// on first use. Returns nil (a valid no-op Gauge) on a nil vec.
func (v *GaugeVec) With(value string) *Gauge {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	g := v.children[value]
	if g == nil {
		g = &Gauge{}
		v.children[value] = g
	}
	return g
}

func (v *GaugeVec) metricName() string { return v.name }

func (v *GaugeVec) expose(w *bufio.Writer) {
	header(w, v.name, v.help, "gauge")
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s{%s=%q} %s\n", v.name, v.label, k, formatFloat(v.children[k].Value()))
	}
	v.mu.Unlock()
}

// metric is the exposition interface every registered metric type
// implements.
type metric interface {
	metricName() string
	expose(w *bufio.Writer)
}

// Registry holds a set of named metrics and renders them in
// Prometheus text format. The zero value is NOT usable — construct
// with NewRegistry. A nil *Registry is the disabled sink: its
// constructors return nil metrics whose methods are all no-ops.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// NewCounter registers and returns a counter. On a nil registry it
// returns a nil Counter (all methods no-ops).
func (r *Registry) NewCounter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{name: name, help: help}
	r.register(c)
	return c
}

// NewGauge registers and returns a gauge. On a nil registry it
// returns a nil Gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{name: name, help: help}
	r.register(g)
	return g
}

// NewHistogram registers and returns a histogram with the given
// non-cumulative bucket upper bounds (an overflow bucket is added
// past the last bound). On a nil registry it returns a nil Histogram.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	h := &Histogram{
		name:   name,
		help:   help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.register(h)
	return h
}

// NewCounterVec registers and returns a counter family keyed by one
// label. On a nil registry it returns a nil CounterVec.
func (r *Registry) NewCounterVec(name, help, label string) *CounterVec {
	if r == nil {
		return nil
	}
	v := &CounterVec{name: name, help: help, label: label, children: map[string]*Counter{}}
	r.register(v)
	return v
}

// NewGaugeVec registers and returns a gauge family keyed by one
// label. On a nil registry it returns a nil GaugeVec.
func (r *Registry) NewGaugeVec(name, help, label string) *GaugeVec {
	if r == nil {
		return nil
	}
	v := &GaugeVec{name: name, help: help, label: label, children: map[string]*Gauge{}}
	r.register(v)
	return v
}

func (r *Registry) register(m metric) {
	r.mu.Lock()
	r.metrics = append(r.metrics, m)
	r.mu.Unlock()
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format, sorted by metric name. Safe on a nil registry
// (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ms := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].metricName() < ms[j].metricName() })
	bw := bufio.NewWriter(w)
	for _, m := range ms {
		m.expose(bw)
	}
	return bw.Flush()
}

// PrometheusContentType is the Content-Type for text exposition.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns an http.Handler serving the registry in Prometheus
// text format (the /metrics endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", PrometheusContentType)
		r.WritePrometheus(w)
	})
}

// header writes the # HELP / # TYPE preamble for one metric.
func header(w *bufio.Writer, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

// formatFloat renders a float the shortest way that round-trips,
// matching Prometheus conventions.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
