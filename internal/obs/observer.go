package obs

import "errors"

// RunObserver bundles the observability sinks one simulation run
// publishes into. Any field may be nil — producers guard with nil
// checks (all sink methods are additionally nil-receiver-safe), so a
// nil *RunObserver, or one with no sinks, costs a pointer test on the
// hot path and nothing else.
type RunObserver struct {
	// Trace records per-disk state timelines and run-level events.
	Trace *TraceRecorder
	// Telemetry streams per-window records as JSONL.
	Telemetry *TelemetryWriter
	// Metrics is the live registry bundle (served at /metrics).
	Metrics *RunMetrics
	// Interrupt, when non-nil, is polled at window boundaries; a true
	// return aborts the run with ErrInterrupted so partial trace and
	// telemetry output can be flushed cleanly.
	Interrupt func() bool
}

// Interrupted reports whether the observer requests an abort. Safe on
// a nil receiver.
func (o *RunObserver) Interrupted() bool {
	return o != nil && o.Interrupt != nil && o.Interrupt()
}

// ErrInterrupted is the sentinel a run aborts with when
// RunObserver.Interrupt fires (errors.Is-matchable through the
// wrapping layers).
var ErrInterrupted = errors.New("interrupted by signal")

// RunMetrics is the standard registry bundle a simulation run
// publishes into; gauges snapshot the latest window, counters
// accumulate across the run (and across every point of a sweep). The
// zero value (or nil) is the disabled sink.
type RunMetrics struct {
	// Progress: windows closed, simulated seconds reached, and total
	// simulator events fired.
	Windows    *Counter
	SimSeconds *Gauge
	SimEvents  *Gauge
	// Workload: requests dispatched and completed.
	Arrivals    *Counter
	Completions *Counter
	// Spin activity and energy.
	SpinUps      *Counter
	SpinDowns    *Counter
	EnergyJoules *Gauge
	PowerWatts   *Gauge
	StandbyDisks *Gauge
	// Response-time tail: last window's p95 and the exact full-run
	// histogram.
	RespP95 *Gauge
	Resp    *Histogram
	// Control and sweep activity.
	Actuations    *Counter
	MigratedFiles *Counter
	SweepPoints   *Counter
	// Reliability activity.
	Failures *Counter
	Rebuilds *Counter
}

// NewRunMetrics registers the standard run metrics on reg;
// respBuckets are the response-histogram bucket bounds (storage's
// RespBuckets). On a nil registry every field is a nil no-op metric.
func NewRunMetrics(reg *Registry, respBuckets []float64) *RunMetrics {
	return &RunMetrics{
		Windows:       reg.NewCounter("disksim_windows_total", "telemetry windows closed"),
		SimSeconds:    reg.NewGauge("disksim_sim_seconds", "simulated time reached, seconds"),
		SimEvents:     reg.NewGauge("disksim_sim_events", "simulator events fired"),
		Arrivals:      reg.NewCounter("disksim_arrivals_total", "requests dispatched to disks"),
		Completions:   reg.NewCounter("disksim_completions_total", "requests completed"),
		SpinUps:       reg.NewCounter("disksim_spin_ups_total", "disk spin-up transitions"),
		SpinDowns:     reg.NewCounter("disksim_spin_downs_total", "disk spin-down transitions"),
		EnergyJoules:  reg.NewGauge("disksim_energy_joules", "cumulative farm energy, joules"),
		PowerWatts:    reg.NewGauge("disksim_power_watts", "mean farm power over the last window, watts"),
		StandbyDisks:  reg.NewGauge("disksim_standby_disks", "mean disks in standby over the last window"),
		RespP95:       reg.NewGauge("disksim_resp_p95_seconds", "p95 response time of the last window, seconds"),
		Resp:          reg.NewHistogram("disksim_resp_seconds", "response-time distribution, seconds", respBuckets),
		Actuations:    reg.NewCounter("disksim_control_actuations_total", "controller actions applied"),
		MigratedFiles: reg.NewCounter("disksim_migrated_files_total", "files migrated by reallocation"),
		SweepPoints:   reg.NewCounter("disksim_sweep_points_total", "sweep points completed"),
		Failures:      reg.NewCounter("disksim_disk_failures_total", "disk failures injected"),
		Rebuilds:      reg.NewCounter("disksim_rebuilds_total", "group rebuilds completed"),
	}
}
