package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Per-window telemetry as schema-versioned JSONL: line 1 is a
// TelemetryHeader identifying the schema, the run, and the histogram
// bucket layouts; every further line is one TelemetryWindow, in window
// order. The record types deliberately mirror storage's Window /
// GroupWindow schema without importing it (this package sits below
// storage), and producers convert at the boundary. Consumers parse
// with ReadTelemetry, which enforces the schema and version so a
// format change can never be misread silently.

// TelemetrySchema identifies the stream format in the header line.
const TelemetrySchema = "diskpack-telemetry"

// TelemetryVersion is the current schema version. Bump on any
// incompatible record change.
const TelemetryVersion = 1

// TelemetryHeader is the first JSONL line: run identity plus the
// bucket bounds the per-window histograms use.
type TelemetryHeader struct {
	// Schema is always TelemetrySchema.
	Schema string
	// Version is the schema version (TelemetryVersion).
	Version int
	// Spec names the scenario or spec the run executed.
	Spec string
	// Seed is the run seed.
	Seed int64
	// Epoch is the window length in simulated seconds.
	Epoch float64
	// IdleGapBuckets and RespBuckets are the histogram bucket upper
	// bounds (each histogram carries one extra overflow bucket).
	IdleGapBuckets []float64
	RespBuckets    []float64
}

// TelemetryGroup is one disk group's share of a telemetry window
// (mirrors storage.GroupWindow; Group -1 is the farm-wide total).
type TelemetryGroup struct {
	Group     int
	Disks     int
	Arrivals  int64
	Completed int64
	// Response-time stats over the window's completions, seconds.
	RespMean, RespP50, RespP95, RespP99, RespMax float64
	// Energy in joules; spin transitions; standby disk-seconds.
	Energy      float64
	SpinUps     int
	SpinDowns   int
	StandbyTime float64
	// Threshold is the group's spin-down threshold at the boundary
	// (zero when not tunable).
	Threshold float64
	// Histogram counts (bounds in the header, plus overflow).
	IdleGaps []int64
	RespHist []int64
}

// TelemetryWindow is one per-window JSONL record (mirrors
// storage.Window).
type TelemetryWindow struct {
	Index      int
	Start, End float64
	Final      bool
	Total      TelemetryGroup
	Groups     []TelemetryGroup
	// Cache, migration, and reliability activity during the window.
	CacheHits       int64
	CacheMisses     int64
	MigrationEnergy float64
	MigratedFiles   int64
	MigratedBytes   int64
	Failures        int
	DataLossEvents  int
	Rebuilds        int
	RebuildTime     float64
}

// TelemetryWriter streams header and window records as JSONL. It is
// safe for concurrent use and safe on a nil receiver (records
// nothing), and Close is idempotent — the CLI closes it both on the
// normal path and from the SIGINT path.
type TelemetryWriter struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	c      io.Closer
	closed bool
}

// NewTelemetryWriter wraps w; if w is also an io.Closer, Close closes
// it after flushing.
func NewTelemetryWriter(w io.Writer) *TelemetryWriter {
	t := &TelemetryWriter{bw: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	return t
}

// WriteHeader writes the schema header line, filling Schema and
// Version. No-op on nil.
func (t *TelemetryWriter) WriteHeader(h TelemetryHeader) error {
	if t == nil {
		return nil
	}
	h.Schema = TelemetrySchema
	h.Version = TelemetryVersion
	return t.writeLine(&h)
}

// WriteWindow writes one window record line. No-op on nil (by-pointer
// so the disabled path does not copy — or heap-escape — the record).
func (t *TelemetryWriter) WriteWindow(w *TelemetryWindow) error {
	if t == nil || w == nil {
		return nil
	}
	return t.writeLine(w)
}

func (t *TelemetryWriter) writeLine(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return fmt.Errorf("obs: telemetry writer closed")
	}
	if _, err := t.bw.Write(b); err != nil {
		return err
	}
	return t.bw.WriteByte('\n')
}

// Close flushes buffered records and closes the underlying writer if
// it is closable. Safe on nil; calling twice returns nil the second
// time.
func (t *TelemetryWriter) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	err := t.bw.Flush()
	if t.c != nil {
		if cerr := t.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ReadTelemetry parses a telemetry JSONL stream, enforcing the schema
// name and version in the header line.
func ReadTelemetry(r io.Reader) (*TelemetryHeader, []TelemetryWindow, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("obs: empty telemetry stream")
	}
	var h TelemetryHeader
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return nil, nil, fmt.Errorf("obs: telemetry header: %w", err)
	}
	if h.Schema != TelemetrySchema {
		return nil, nil, fmt.Errorf("obs: telemetry schema %q, want %q", h.Schema, TelemetrySchema)
	}
	if h.Version != TelemetryVersion {
		return nil, nil, fmt.Errorf("obs: telemetry version %d, reader understands %d", h.Version, TelemetryVersion)
	}
	var ws []TelemetryWindow
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var w TelemetryWindow
		if err := json.Unmarshal(sc.Bytes(), &w); err != nil {
			return nil, nil, fmt.Errorf("obs: telemetry window %d: %w", len(ws), err)
		}
		ws = append(ws, w)
	}
	return &h, ws, sc.Err()
}
