package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"
	"time"
)

// Distributed-sweep spans as schema-versioned JSONL, the fleet-scale
// sibling of the telemetry stream: line 1 is a SpanHeader binding the
// log to one track (a worker, the coordinator, or a shard runner) of
// one (sweep, seed), and every further line is one Span. Span IDs are
// a pure function of (sweep hash, point, attempt, phase), so the same
// logical work gets the same ID on every worker that touches it —
// which is what lets MergeSpans fold many per-process logs into one
// coherent trace. Timestamps are wall-clock (spans measure real fleet
// latency, not simulated time), but every consumer orders spans by the
// replay-stable key (Point, Attempt, phase rank, ID), so two runs of
// the same sweep produce merge output that differs only in the ts/dur
// numbers, never in structure.
//
// A SpanRecorder writes each record with a single Write call and no
// buffering layer, so a SIGKILLed process tears at most the final
// line; ReadSpans tolerates exactly that (an unterminated final line
// is dropped, anything else malformed is an error). Close ends every
// still-open span with SpanAborted — the SIGINT flush guarantee.

// SpanSchema identifies the span-log format in the header line.
const SpanSchema = "diskpack-spans"

// SpanVersion is the current span schema version. Bump on any
// incompatible record change.
const SpanVersion = 1

// Span status values.
const (
	// SpanOK marks normally completed work.
	SpanOK = "ok"
	// SpanError marks work that failed.
	SpanError = "error"
	// SpanAborted marks a span still open when its recorder closed
	// (interrupt or crash-adjacent shutdown).
	SpanAborted = "aborted"
	// SpanStolen marks a lease reclaimed from an expired worker.
	SpanStolen = "stolen"
	// SpanDuplicate marks work whose result lost a first-write race.
	SpanDuplicate = "duplicate"
)

// SpanHeader is the first JSONL line: schema identity plus the track
// (one process's log) and the sweep the spans belong to.
type SpanHeader struct {
	// Schema is always SpanSchema.
	Schema string
	// Version is the schema version (SpanVersion).
	Version int
	// Track names the log's owner ("worker-3", "coordinator", ...);
	// the merged trace renders one thread per track.
	Track string
	// Role classifies the owner: "worker", "coordinator", or "shard".
	Role string
	// SweepHash is the sweep fingerprint (farm.Fingerprint) every span
	// ID in this log is derived from. Logs with different hashes
	// belong to different sweeps and refuse to merge.
	SweepHash string
	// Seed is the sweep seed.
	Seed int64
	// Points is the sweep's point count.
	Points int
	// StartUnixNano is the log's time origin: every span's Start/End
	// are wall-clock seconds since this instant.
	StartUnixNano int64
}

// Span is one JSONL record: a phase of work on one sweep point (or a
// run-level phase, Point -1) on one track.
type Span struct {
	// ID is SpanID(sweep hash, Point, Attempt, Phase) — deterministic,
	// so re-running the same sweep yields the same IDs.
	ID string
	// Parent is the enclosing span's ID ("" for a root span).
	Parent string `json:",omitempty"`
	// Point is the sweep point index (-1 for run-level spans such as
	// compile or lease waits).
	Point int
	// Attempt is the global lease attempt number for point spans
	// (assigned by the coordinator, starting at 1), or a track-local
	// sequence number for run-level spans.
	Attempt int
	// Phase names the work: "compile", "lease", "grant", "point",
	// "run", "submit", "retry", "stolen", "resume".
	Phase string
	// Status is one of the Span* status constants.
	Status string
	// Start and End are wall-clock seconds since the header's
	// StartUnixNano. Start == End renders as an instant event.
	Start float64
	End   float64
	// Args carries optional details (worker, label, error, counts).
	// Map keys render sorted, so serialization is deterministic.
	Args map[string]any `json:",omitempty"`
}

// SpanID derives the deterministic span ID for one (sweep, point,
// attempt, phase) tuple: a 64-bit FNV-1a hash rendered as 16 hex
// digits.
func SpanID(sweepHash string, point, attempt int, phase string) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d/%d/%s", sweepHash, point, attempt, phase)
	return fmt.Sprintf("%016x", h.Sum64())
}

// phaseRank orders phases within one (point, attempt) for the
// replay-stable sort: setup phases first, then the grant/point
// lifecycle in causal order.
func phaseRank(phase string) int {
	switch phase {
	case "compile":
		return 0
	case "resume":
		return 1
	case "lease":
		return 2
	case "grant":
		return 3
	case "point":
		return 4
	case "run":
		return 5
	case "submit":
		return 6
	case "retry":
		return 7
	case "stolen":
		return 8
	}
	return 9
}

// SpanRecorder streams a span log to one writer. All methods are safe
// on a nil receiver (the disabled path) and safe for concurrent use
// (worker slots record in parallel). Each record is emitted with a
// single unbuffered Write, so an abrupt kill tears at most the last
// line. Close is idempotent and ends every still-open span with
// SpanAborted before closing the underlying writer.
type SpanRecorder struct {
	mu      sync.Mutex
	w       io.Writer
	c       io.Closer
	now     func() time.Time
	hash    string
	t0      time.Time
	started bool
	closed  bool
	open    map[*SpanHandle]struct{}
	err     error
}

// SpanHandle is one in-flight span started by Begin/BeginChild; End
// writes the record. Safe on a nil receiver.
type SpanHandle struct {
	r    *SpanRecorder
	span Span
}

// NewSpanRecorder wraps w; if w is also an io.Closer, Close closes it
// after ending open spans.
func NewSpanRecorder(w io.Writer) *SpanRecorder {
	r := &SpanRecorder{w: w, now: time.Now, open: map[*SpanHandle]struct{}{}}
	if c, ok := w.(io.Closer); ok {
		r.c = c
	}
	return r
}

// SetNow replaces the recorder's clock (test seam; aligns with the
// coordinator's injectable clock). No-op on nil.
func (r *SpanRecorder) SetNow(now func() time.Time) {
	if r == nil || now == nil {
		return
	}
	r.mu.Lock()
	r.now = now
	r.mu.Unlock()
}

// Start writes the header line, filling Schema and Version; if
// StartUnixNano is zero it is stamped from the recorder's clock. The
// header's StartUnixNano becomes the time origin for every subsequent
// span. Recording before Start is a no-op. No-op on nil.
func (r *SpanRecorder) Start(h SpanHeader) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started || r.closed {
		return fmt.Errorf("obs: span recorder already %s", map[bool]string{true: "closed", false: "started"}[r.closed])
	}
	h.Schema = SpanSchema
	h.Version = SpanVersion
	if h.StartUnixNano == 0 {
		h.StartUnixNano = r.now().UnixNano()
	}
	r.hash = h.SweepHash
	r.t0 = time.Unix(0, h.StartUnixNano)
	r.started = true
	return r.writeLineLocked(&h)
}

// Since converts a wall-clock instant to seconds since the header's
// time origin (zero on nil or before Start).
func (r *SpanRecorder) Since(t time.Time) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.started {
		return 0
	}
	return t.Sub(r.t0).Seconds()
}

// Begin opens a root span for (point, attempt, phase), stamped at the
// current clock. Returns nil (a valid no-op handle) on a nil or
// unstarted recorder.
func (r *SpanRecorder) Begin(point, attempt int, phase string, args map[string]any) *SpanHandle {
	return r.begin("", point, attempt, phase, args)
}

// BeginChild opens a span nested under parent, inheriting its point
// and attempt. Returns nil on a nil recorder or nil parent.
func (r *SpanRecorder) BeginChild(parent *SpanHandle, phase string, args map[string]any) *SpanHandle {
	if parent == nil {
		return nil
	}
	return r.begin(parent.span.ID, parent.span.Point, parent.span.Attempt, phase, args)
}

func (r *SpanRecorder) begin(parentID string, point, attempt int, phase string, args map[string]any) *SpanHandle {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.started || r.closed {
		return nil
	}
	h := &SpanHandle{r: r, span: Span{
		ID:      SpanID(r.hash, point, attempt, phase),
		Parent:  parentID,
		Point:   point,
		Attempt: attempt,
		Phase:   phase,
		Start:   r.now().Sub(r.t0).Seconds(),
		Args:    args,
	}}
	r.open[h] = struct{}{}
	return h
}

// End closes the span with the given status, merging extra args over
// the Begin args, and writes its record. No-op on nil or already-ended
// handles.
func (h *SpanHandle) End(status string, args map[string]any) {
	if h == nil || h.r == nil {
		return
	}
	r := h.r
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.open[h]; !ok {
		return
	}
	delete(r.open, h)
	sp := h.span
	sp.Status = status
	sp.End = r.now().Sub(r.t0).Seconds()
	if len(args) > 0 {
		merged := make(map[string]any, len(sp.Args)+len(args))
		for k, v := range sp.Args {
			merged[k] = v
		}
		for k, v := range args {
			merged[k] = v
		}
		sp.Args = merged
	}
	if err := r.writeLineLocked(&sp); err != nil && r.err == nil {
		r.err = err
	}
}

// Record writes a fully built span record as-is (Start/End already
// relative to the header origin); the ID is derived if empty. Used by
// producers that track their own timing, like the coordinator's
// grant spans. No-op on nil or unstarted recorders.
func (r *SpanRecorder) Record(sp Span) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.started || r.closed {
		return nil
	}
	if sp.ID == "" {
		sp.ID = SpanID(r.hash, sp.Point, sp.Attempt, sp.Phase)
	}
	err := r.writeLineLocked(&sp)
	if err != nil && r.err == nil {
		r.err = err
	}
	return err
}

// Event records an instant (zero-duration) span at the current clock.
// No-op on nil or unstarted recorders.
func (r *SpanRecorder) Event(point, attempt int, phase, status string, args map[string]any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.started || r.closed {
		return
	}
	at := r.now().Sub(r.t0).Seconds()
	sp := Span{
		ID:      SpanID(r.hash, point, attempt, phase),
		Point:   point,
		Attempt: attempt,
		Phase:   phase,
		Status:  status,
		Start:   at,
		End:     at,
		Args:    args,
	}
	if err := r.writeLineLocked(&sp); err != nil && r.err == nil {
		r.err = err
	}
}

// Hash returns the sweep hash from the header ("" before Start or on
// nil).
func (r *SpanRecorder) Hash() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hash
}

// Close ends every still-open span with SpanAborted, then closes the
// underlying writer if it is closable. It returns the first write
// error seen over the recorder's lifetime. Safe on nil; calling twice
// returns nil the second time.
func (r *SpanRecorder) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	// Abort open spans in deterministic (Point, Attempt, rank) order so
	// two interrupted runs flush comparably ordered tails.
	hs := make([]*SpanHandle, 0, len(r.open))
	for h := range r.open {
		hs = append(hs, h)
	}
	sort.Slice(hs, func(i, j int) bool { return spanLess(&hs[i].span, &hs[j].span) })
	end := 0.0
	if r.started {
		end = r.now().Sub(r.t0).Seconds()
	}
	for _, h := range hs {
		delete(r.open, h)
		sp := h.span
		sp.Status = SpanAborted
		sp.End = end
		if err := r.writeLineLocked(&sp); err != nil && r.err == nil {
			r.err = err
		}
	}
	r.closed = true
	err := r.err
	if r.c != nil {
		if cerr := r.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// writeLineLocked marshals v and emits it as one line with a single
// Write call (callers hold r.mu).
func (r *SpanRecorder) writeLineLocked(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = r.w.Write(append(b, '\n'))
	return err
}

// spanLess is the replay-stable span order: (Point, Attempt, phase
// rank, Phase, ID).
func spanLess(a, b *Span) bool {
	if a.Point != b.Point {
		return a.Point < b.Point
	}
	if a.Attempt != b.Attempt {
		return a.Attempt < b.Attempt
	}
	ra, rb := phaseRank(a.Phase), phaseRank(b.Phase)
	if ra != rb {
		return ra < rb
	}
	if a.Phase != b.Phase {
		return a.Phase < b.Phase
	}
	return a.ID < b.ID
}

// SpanLog is one parsed span log: a header and its spans.
type SpanLog struct {
	Header SpanHeader
	Spans  []Span
}

// ReadSpans parses a span JSONL stream, enforcing the schema name and
// version in the header line. A final line without a terminating
// newline is dropped — the torn tail a SIGKILLed writer leaves — but
// any other malformed line is an error.
func ReadSpans(r io.Reader) (*SpanLog, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	// Only newline-terminated lines are trusted; an unterminated tail
	// is the torn final line of a killed writer.
	var lines [][]byte
	for {
		i := bytes.IndexByte(data, '\n')
		if i < 0 {
			break
		}
		lines = append(lines, data[:i])
		data = data[i+1:]
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("obs: empty span stream")
	}
	var log SpanLog
	if err := json.Unmarshal(lines[0], &log.Header); err != nil {
		return nil, fmt.Errorf("obs: span header: %w", err)
	}
	if log.Header.Schema != SpanSchema {
		return nil, fmt.Errorf("obs: span schema %q, want %q", log.Header.Schema, SpanSchema)
	}
	if log.Header.Version != SpanVersion {
		return nil, fmt.Errorf("obs: span version %d, reader understands %d", log.Header.Version, SpanVersion)
	}
	for i, line := range lines[1:] {
		if len(line) == 0 {
			continue
		}
		var sp Span
		if err := json.Unmarshal(line, &sp); err != nil {
			return nil, fmt.Errorf("obs: span record %d: %w", i, err)
		}
		log.Spans = append(log.Spans, sp)
	}
	return &log, nil
}

// MergeSpans validates and orders a set of span logs from one sweep:
// all logs must share the header's (SweepHash, Seed), tracks are
// ordered by (Role, Track), and each log's spans are sorted by the
// replay-stable key (Point, Attempt, phase rank, ID). The result is
// structurally identical across re-runs of the same sweep — only
// timestamps differ.
func MergeSpans(logs []SpanLog) ([]SpanLog, error) {
	if len(logs) == 0 {
		return nil, fmt.Errorf("obs: no span logs to merge")
	}
	merged := append([]SpanLog(nil), logs...)
	h0 := merged[0].Header
	for _, l := range merged[1:] {
		if l.Header.SweepHash != h0.SweepHash || l.Header.Seed != h0.Seed {
			return nil, fmt.Errorf("obs: span log %q is from sweep %s seed %d, want sweep %s seed %d",
				l.Header.Track, l.Header.SweepHash, l.Header.Seed, h0.SweepHash, h0.Seed)
		}
	}
	sort.Slice(merged, func(i, j int) bool {
		a, b := merged[i].Header, merged[j].Header
		if a.Role != b.Role {
			return a.Role < b.Role
		}
		return a.Track < b.Track
	})
	for i := range merged {
		spans := append([]Span(nil), merged[i].Spans...)
		sort.Slice(spans, func(a, b int) bool { return spanLess(&spans[a], &spans[b]) })
		merged[i].Spans = spans
	}
	return merged, nil
}

// sweepPid is the process ID span tracks render under (distinct from
// the single-run trace's disk/run processes, so both traces can sit in
// one Perfetto session without colliding).
const sweepPid = 3

// WriteSpanTrace renders merged span logs as one Chrome-trace JSON
// object: one process ("sweep"), one thread per track, with every
// span's ts/dur in wall-clock microseconds relative to the earliest
// log origin. Feed the output straight to ui.perfetto.dev.
func WriteSpanTrace(w io.Writer, logs []SpanLog) error {
	merged, err := MergeSpans(logs)
	if err != nil {
		return err
	}
	t0 := merged[0].Header.StartUnixNano
	for _, l := range merged[1:] {
		if l.Header.StartUnixNano < t0 {
			t0 = l.Header.StartUnixNano
		}
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(ev chromeEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(b)
		return err
	}
	if err := emit(chromeEvent{Name: "process_name", Ph: "M", Pid: sweepPid,
		Args: map[string]any{"name": "sweep"}}); err != nil {
		return err
	}
	for tid, l := range merged {
		if err := emit(chromeEvent{Name: "thread_name", Ph: "M", Pid: sweepPid, Tid: tid,
			Args: map[string]any{"name": l.Header.Role + ":" + l.Header.Track}}); err != nil {
			return err
		}
	}
	for tid, l := range merged {
		// Offset of this log's origin from the merged origin, in µs.
		off := float64(l.Header.StartUnixNano-t0) / 1e3
		for i := range l.Spans {
			sp := &l.Spans[i]
			args := map[string]any{
				"id":      sp.ID,
				"point":   sp.Point,
				"attempt": sp.Attempt,
				"status":  sp.Status,
			}
			if sp.Parent != "" {
				args["parent"] = sp.Parent
			}
			for k, v := range sp.Args {
				args[k] = v
			}
			ce := chromeEvent{
				Name: sp.Phase, Pid: sweepPid, Tid: tid,
				Ts: off + sp.Start*1e6, Args: args,
			}
			if sp.End > sp.Start {
				ce.Ph = "X"
				dur := (sp.End - sp.Start) * 1e6
				ce.Dur = &dur
			} else {
				ce.Ph = "i"
				ce.S = "t"
			}
			if err := emit(ce); err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
