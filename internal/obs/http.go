package obs

import (
	"net/http"
	"net/http/pprof"
)

// NewServeMux returns a mux exposing the registry at /metrics and the
// standard pprof handlers under /debug/pprof/ — the live-inspection
// surface cmd/disksim -metrics-addr serves during long runs. The
// handlers are registered explicitly (no http.DefaultServeMux
// side effects).
func NewServeMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
