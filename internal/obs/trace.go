package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// State-timeline tracing. A TraceRecorder accumulates two kinds of
// facts: per-disk state timelines (each disk's spin-state transitions,
// appended by whichever shard goroutine owns the disk — single-writer
// per track, so no locking) and run-level events (rebuild spans,
// migrations, controller actuations, per-window counters), which are
// appended only at simulation boundaries while every shard is parked.
// WriteChromeTrace renders both as Chrome-trace JSON that loads
// directly in Perfetto (ui.perfetto.dev) or chrome://tracing: disks
// are threads of process 1, run-level tracks are threads of process 2,
// and simulated seconds map to trace microseconds.
//
// Determinism: a run's recorded facts are a pure function of
// (spec, seed) — each disk's transition sequence is identical at any
// worker count (the byte-identity property), and boundary events are
// recorded in boundary order, which is also shard-count-invariant.
// WriteChromeTrace serializes tracks in disk-ID order and events in
// append order with no timestamps or map-order dependence, so the
// output bytes are identical across repeats and worker counts.

// TraceEvent is one run-level trace event.
type TraceEvent struct {
	// Name labels the event.
	Name string
	// Phase is the Chrome-trace phase: 'i' (instant), 'X' (complete
	// span), or 'C' (counter series).
	Phase byte
	// Track names the run-level track (rendered as a thread of the
	// run process): "control", "reliability", "windows", ...
	Track string
	// At is the event time in simulated seconds ('X': span start).
	At float64
	// Dur is the span length in simulated seconds ('X' only).
	Dur float64
	// Args are optional key→value details ('C': the counter series
	// values). Values must be JSON-marshalable; keys render sorted.
	Args map[string]any
}

// statePoint is one timeline entry: the track entered state at time at.
type statePoint struct {
	at    float64
	state uint8
}

// TraceRecorder accumulates state timelines and run-level events. All
// methods are safe on a nil receiver (the disabled path records
// nothing). StateChange calls for one track must come from a single
// goroutine at a time; Emit and the remaining methods must be called
// with no concurrent StateChange in flight (in the simulator both run
// at boundaries with every shard parked).
type TraceRecorder struct {
	stateNames []string
	tracks     [][]statePoint
	events     []TraceEvent
	horizon    float64
}

// NewTraceRecorder returns an empty recorder.
func NewTraceRecorder() *TraceRecorder { return &TraceRecorder{} }

// InitTracks sizes the recorder for n state-timeline tracks whose
// state values index stateNames. No-op on nil.
func (r *TraceRecorder) InitTracks(n int, stateNames []string) {
	if r == nil {
		return
	}
	r.stateNames = append([]string(nil), stateNames...)
	r.tracks = make([][]statePoint, n)
}

// StateChange records that track entered state at time at (simulated
// seconds). The previous state is considered to end here. No-op on nil
// or out-of-range tracks.
func (r *TraceRecorder) StateChange(track int, at float64, state int) {
	if r == nil || track < 0 || track >= len(r.tracks) {
		return
	}
	r.tracks[track] = append(r.tracks[track], statePoint{at: at, state: uint8(state)})
}

// Emit appends one run-level event. No-op on nil.
func (r *TraceRecorder) Emit(ev TraceEvent) {
	if r == nil {
		return
	}
	r.events = append(r.events, ev)
}

// SetHorizon sets the run horizon in simulated seconds; each track's
// final state is rendered as lasting until the horizon (or until its
// last transition, whichever is later — an interrupted run's partial
// timelines stay well-formed). No-op on nil.
func (r *TraceRecorder) SetHorizon(h float64) {
	if r == nil {
		return
	}
	r.horizon = h
}

// Events returns the recorded run-level events (read-only; nil on a
// nil recorder).
func (r *TraceRecorder) Events() []TraceEvent {
	if r == nil {
		return nil
	}
	return r.events
}

// chromeEvent is the JSON shape of one Chrome-trace event. Fields
// marshal in declaration order and Args maps render with sorted keys,
// so serialization is deterministic.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Process IDs in the rendered trace: disks and run-level tracks.
const (
	diskPid = 1
	runPid  = 2
)

// usec converts simulated seconds to trace microseconds.
func usec(s float64) float64 { return s * 1e6 }

// WriteChromeTrace renders the recording as a Chrome-trace JSON object
// ({"displayTimeUnit":...,"traceEvents":[...]}). Safe on a nil
// recorder (writes an empty trace).
func (r *TraceRecorder) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(ev chromeEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(b)
		return err
	}
	if r != nil {
		if err := r.render(emit); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// render walks the recording in deterministic order: metadata, then
// per-disk span timelines in disk-ID order, then run-level events in
// append order.
func (r *TraceRecorder) render(emit func(chromeEvent) error) error {
	meta := func(pid, tid int, kind, name string) error {
		return emit(chromeEvent{Name: kind, Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name}})
	}
	// Run-level track tids in order of first appearance in the event
	// stream (deterministic because the stream is).
	runTid := map[string]int{}
	var runTracks []string
	for _, ev := range r.events {
		if _, ok := runTid[ev.Track]; !ok {
			runTid[ev.Track] = len(runTracks)
			runTracks = append(runTracks, ev.Track)
		}
	}

	if len(r.tracks) > 0 {
		if err := meta(diskPid, 0, "process_name", "disks"); err != nil {
			return err
		}
	}
	if len(runTracks) > 0 {
		if err := meta(runPid, 0, "process_name", "run"); err != nil {
			return err
		}
		for tid, name := range runTracks {
			if err := meta(runPid, tid, "thread_name", name); err != nil {
				return err
			}
		}
	}

	for tid, tl := range r.tracks {
		if len(tl) == 0 {
			continue
		}
		if err := meta(diskPid, tid, "thread_name", fmt.Sprintf("disk %d", tid)); err != nil {
			return err
		}
		for i, p := range tl {
			end := r.horizon
			if i+1 < len(tl) {
				end = tl[i+1].at
			} else if end < p.at {
				end = p.at
			}
			dur := usec(end - p.at)
			if err := emit(chromeEvent{
				Name: r.stateName(p.state), Ph: "X", Pid: diskPid, Tid: tid,
				Ts: usec(p.at), Dur: &dur,
			}); err != nil {
				return err
			}
		}
	}

	for _, ev := range r.events {
		ce := chromeEvent{
			Name: ev.Name, Pid: runPid, Tid: runTid[ev.Track],
			Ts: usec(ev.At), Args: ev.Args,
		}
		switch ev.Phase {
		case 'X':
			ce.Ph = "X"
			dur := usec(ev.Dur)
			ce.Dur = &dur
		case 'C':
			ce.Ph = "C"
		default:
			ce.Ph = "i"
			ce.S = "g"
		}
		if err := emit(ce); err != nil {
			return err
		}
	}
	return nil
}

// stateName resolves a state value to its display name.
func (r *TraceRecorder) stateName(s uint8) string {
	if int(s) < len(r.stateNames) {
		return r.stateNames[s]
	}
	return fmt.Sprintf("state-%d", s)
}
