package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fakeClock returns a controllable now func starting at a fixed epoch.
func fakeClock() (func() time.Time, func(d time.Duration)) {
	now := time.Unix(1000, 0)
	return func() time.Time { return now }, func(d time.Duration) { now = now.Add(d) }
}

func startedRecorder(t *testing.T, buf *bytes.Buffer) (*SpanRecorder, func(time.Duration)) {
	t.Helper()
	rec := NewSpanRecorder(buf)
	now, advance := fakeClock()
	rec.SetNow(now)
	if err := rec.Start(SpanHeader{Track: "w1", Role: "worker", SweepHash: "abcd", Seed: 7, Points: 6}); err != nil {
		t.Fatal(err)
	}
	return rec, advance
}

func TestSpanRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rec, advance := startedRecorder(t, &buf)

	ph := rec.Begin(2, 1, "point", map[string]any{"label": "t=30"})
	advance(10 * time.Millisecond)
	rh := rec.BeginChild(ph, "run", nil)
	advance(100 * time.Millisecond)
	rh.End(SpanOK, nil)
	sh := rec.BeginChild(ph, "submit", nil)
	advance(5 * time.Millisecond)
	sh.End(SpanOK, map[string]any{"duplicate": false})
	ph.End(SpanOK, nil)
	rec.Event(-1, 1, "retry", SpanError, map[string]any{"path": "/v1/submit"})
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	log, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	h := log.Header
	if h.Schema != SpanSchema || h.Version != SpanVersion {
		t.Fatalf("header schema %q v%d", h.Schema, h.Version)
	}
	if h.Track != "w1" || h.Role != "worker" || h.SweepHash != "abcd" || h.Seed != 7 || h.Points != 6 {
		t.Fatalf("header mismatch: %+v", h)
	}
	if h.StartUnixNano != time.Unix(1000, 0).UnixNano() {
		t.Fatalf("StartUnixNano = %d", h.StartUnixNano)
	}
	if len(log.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(log.Spans))
	}
	byPhase := map[string]Span{}
	for _, sp := range log.Spans {
		byPhase[sp.Phase] = sp
	}
	point, run := byPhase["point"], byPhase["run"]
	if point.ID != SpanID("abcd", 2, 1, "point") {
		t.Errorf("point ID %q not deterministic", point.ID)
	}
	if run.Parent != point.ID {
		t.Errorf("run parent %q, want %q", run.Parent, point.ID)
	}
	if run.End-run.Start != 0.1 {
		t.Errorf("run duration %v, want 0.1", run.End-run.Start)
	}
	if point.Args["label"] != "t=30" {
		t.Errorf("point args %v", point.Args)
	}
	if got := byPhase["submit"].Args["duplicate"]; got != false {
		t.Errorf("submit args merged wrong: %v", got)
	}
	ev := byPhase["retry"]
	if ev.Start != ev.End || ev.Status != SpanError || ev.Point != -1 {
		t.Errorf("event span wrong: %+v", ev)
	}
}

func TestSpanCloseAbortsOpen(t *testing.T) {
	var buf bytes.Buffer
	rec, advance := startedRecorder(t, &buf)
	ph := rec.Begin(3, 2, "point", nil)
	rec.BeginChild(ph, "run", nil)
	advance(time.Second)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	log, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(log.Spans))
	}
	for _, sp := range log.Spans {
		if sp.Status != SpanAborted {
			t.Errorf("span %s status %q, want aborted", sp.Phase, sp.Status)
		}
		if sp.End != 1 {
			t.Errorf("span %s end %v, want 1", sp.Phase, sp.End)
		}
	}
	// Aborted tail is flushed in replay-stable order: point before run.
	if log.Spans[0].Phase != "point" || log.Spans[1].Phase != "run" {
		t.Errorf("abort order: %s, %s", log.Spans[0].Phase, log.Spans[1].Phase)
	}
}

func TestReadSpansTornTail(t *testing.T) {
	var buf bytes.Buffer
	rec, _ := startedRecorder(t, &buf)
	rec.Event(0, 1, "point", SpanOK, nil)
	full := buf.String()
	// A SIGKILL mid-write leaves an unterminated fragment.
	torn := full + `{"ID":"dead","Point":1,"Pha`
	log, err := ReadSpans(strings.NewReader(torn))
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	if len(log.Spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(log.Spans))
	}
	// A complete but malformed line is corruption, not a torn tail.
	if _, err := ReadSpans(strings.NewReader(full + "not json\n")); err == nil {
		t.Fatal("malformed complete line should error")
	}
}

func TestReadSpansSchemaEnforced(t *testing.T) {
	if _, err := ReadSpans(strings.NewReader("")); err == nil {
		t.Fatal("empty stream should error")
	}
	if _, err := ReadSpans(strings.NewReader(`{"Schema":"other","Version":1}` + "\n")); err == nil {
		t.Fatal("wrong schema should error")
	}
	bad := `{"Schema":"` + SpanSchema + `","Version":99}` + "\n"
	if _, err := ReadSpans(strings.NewReader(bad)); err == nil {
		t.Fatal("wrong version should error")
	}
}

func TestSpanNilSafety(t *testing.T) {
	var rec *SpanRecorder
	rec.SetNow(time.Now)
	if err := rec.Start(SpanHeader{}); err != nil {
		t.Fatal(err)
	}
	h := rec.Begin(0, 1, "point", nil)
	h.End(SpanOK, nil)
	rec.BeginChild(h, "run", nil).End(SpanOK, nil)
	rec.Event(0, 1, "retry", SpanError, nil)
	if err := rec.Record(Span{}); err != nil {
		t.Fatal(err)
	}
	if rec.Since(time.Now()) != 0 || rec.Hash() != "" {
		t.Fatal("nil accessors should zero")
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	// Recording before Start is a silent no-op, not a crash.
	var buf bytes.Buffer
	live := NewSpanRecorder(&buf)
	live.Begin(0, 1, "point", nil).End(SpanOK, nil)
	live.Event(0, 1, "retry", SpanError, nil)
	if buf.Len() != 0 {
		t.Fatalf("unstarted recorder wrote %q", buf.String())
	}
}

func makeLog(track, role string, spans ...Span) SpanLog {
	return SpanLog{
		Header: SpanHeader{Schema: SpanSchema, Version: SpanVersion, Track: track,
			Role: role, SweepHash: "abcd", Seed: 7, Points: 4, StartUnixNano: 1e9},
		Spans: spans,
	}
}

func TestMergeSpansOrdering(t *testing.T) {
	w2 := makeLog("w2", "worker",
		Span{ID: "c", Point: 1, Attempt: 2, Phase: "point"},
		Span{ID: "d", Point: 0, Attempt: 1, Phase: "run"},
		Span{ID: "e", Point: 0, Attempt: 1, Phase: "point"},
	)
	w1 := makeLog("w1", "worker", Span{ID: "a", Point: 3, Attempt: 1, Phase: "point"})
	co := makeLog("coordinator", "coordinator", Span{ID: "b", Point: 0, Attempt: 1, Phase: "grant"})

	for _, order := range [][]SpanLog{{w2, w1, co}, {co, w1, w2}} {
		merged, err := MergeSpans(order)
		if err != nil {
			t.Fatal(err)
		}
		if merged[0].Header.Track != "coordinator" || merged[1].Header.Track != "w1" || merged[2].Header.Track != "w2" {
			t.Fatalf("track order: %s, %s, %s", merged[0].Header.Track, merged[1].Header.Track, merged[2].Header.Track)
		}
		got := []string{}
		for _, sp := range merged[2].Spans {
			got = append(got, sp.ID)
		}
		// (Point, Attempt, phase rank): point 0 "point" < point 0 "run" < point 1.
		if strings.Join(got, ",") != "e,d,c" {
			t.Fatalf("span order %v", got)
		}
	}

	other := w1
	other.Header.SweepHash = "ffff"
	if _, err := MergeSpans([]SpanLog{co, other}); err == nil {
		t.Fatal("mismatched sweep hash should refuse to merge")
	}
	if _, err := MergeSpans(nil); err == nil {
		t.Fatal("empty merge should error")
	}
}

func TestWriteSpanTrace(t *testing.T) {
	co := makeLog("coordinator", "coordinator",
		Span{ID: "g", Point: 0, Attempt: 1, Phase: "grant", Status: SpanOK, Start: 0.5, End: 1.5},
	)
	w1 := makeLog("w1", "worker",
		Span{ID: "p", Point: 0, Attempt: 1, Phase: "point", Status: SpanOK, Start: 0.6, End: 1.4},
		Span{ID: "s", Point: 0, Attempt: 1, Phase: "stolen", Status: SpanStolen, Start: 2, End: 2},
	)
	w1.Header.StartUnixNano = 2e9 // one second after the coordinator

	var buf bytes.Buffer
	if err := WriteSpanTrace(&buf, []SpanLog{w1, co}); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int            `json:"tid"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	// 1 process meta + 2 thread metas + 3 spans.
	if len(trace.TraceEvents) != 6 {
		t.Fatalf("got %d events, want 6", len(trace.TraceEvents))
	}
	var grants, instants int
	for _, ev := range trace.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "thread_name":
			want := map[int]string{0: "coordinator:coordinator", 1: "worker:w1"}[ev.Tid]
			if ev.Args["name"] != want {
				t.Errorf("tid %d named %v, want %s", ev.Tid, ev.Args["name"], want)
			}
		case ev.Name == "grant":
			grants++
			if ev.Ts != 0.5e6 || ev.Dur != 1e6 {
				t.Errorf("grant ts/dur = %v/%v", ev.Ts, ev.Dur)
			}
		case ev.Name == "point":
			// w1's origin is 1s after the merged origin.
			if ev.Ts != 1e6+0.6e6 {
				t.Errorf("point ts = %v", ev.Ts)
			}
		case ev.Name == "stolen":
			instants++
			if ev.Ph != "i" {
				t.Errorf("zero-duration span rendered %q, want i", ev.Ph)
			}
		}
	}
	if grants != 1 || instants != 1 {
		t.Errorf("grants=%d instants=%d", grants, instants)
	}
}

func TestSpanIDStability(t *testing.T) {
	a := SpanID("abcd", 3, 2, "run")
	if a != SpanID("abcd", 3, 2, "run") {
		t.Fatal("SpanID not deterministic")
	}
	if len(a) != 16 {
		t.Fatalf("SpanID length %d", len(a))
	}
	seen := map[string]bool{a: true}
	for _, id := range []string{
		SpanID("abcd", 3, 2, "point"),
		SpanID("abcd", 3, 1, "run"),
		SpanID("abcd", 2, 2, "run"),
		SpanID("ffff", 3, 2, "run"),
	} {
		if seen[id] {
			t.Fatalf("collision: %s", id)
		}
		seen[id] = true
	}
}
