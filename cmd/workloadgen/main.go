// Command workloadgen generates workload traces in the diskpack trace
// format and prints their summary statistics.
//
// Usage:
//
//	workloadgen -kind table1 -rate 6 -out synth.trace
//	workloadgen -kind table1 -diurnal -rate 2 -out diurnal.trace
//	workloadgen -kind bursty -rate 2 -out bursty.trace
//	workloadgen -kind nersc -seed 7 -out nersc.trace
//	workloadgen -kind nersc -files 5000 -requests 10000 -stats-only
package main

import (
	"flag"
	"fmt"
	"os"

	"diskpack/internal/trace"
	"diskpack/internal/workload"
)

func main() {
	var (
		kind      = flag.String("kind", "table1", "workload kind: table1, nersc, or bursty")
		rate      = flag.Float64("rate", 6, "table1/bursty: mean arrival rate R (req/s)")
		files     = flag.Int("files", 0, "override file count (0 = paper value)")
		requests  = flag.Int("requests", 0, "nersc: override request count (0 = paper value)")
		diurnal   = flag.Bool("diurnal", false, "table1: modulate arrivals with the default diurnal profile")
		seed      = flag.Int64("seed", 1, "random seed")
		out       = flag.String("out", "", "output file (empty = stdout; ignored with -stats-only)")
		statsOnly = flag.Bool("stats-only", false, "print summary statistics instead of the trace")
	)
	flag.Parse()

	var (
		tr  *trace.Trace
		err error
	)
	switch *kind {
	case "table1":
		cfg := workload.DefaultSynthetic(*rate, *seed)
		if *files > 0 {
			cfg.NumFiles = *files
		}
		if *diurnal {
			cfg.Diurnal = workload.DefaultDiurnal()
		}
		tr, err = cfg.Build()
	case "nersc":
		cfg := workload.DefaultNERSC(*seed)
		if *files > 0 {
			cfg.NumFiles = *files
		}
		if *requests > 0 {
			cfg.NumRequests = *requests
		}
		tr, err = cfg.Build()
	case "bursty":
		cfg := workload.DefaultBursty(*rate, *seed)
		if *files > 0 {
			cfg.NumFiles = *files
		}
		tr, err = cfg.Build()
	default:
		err = fmt.Errorf("unknown kind %q (want table1, nersc, or bursty)", *kind)
	}
	if err != nil {
		fatal(err)
	}

	if *statsOnly {
		printStats(tr)
		return
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := trace.Write(w, tr); err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
		printStats(tr)
	}
}

func printStats(tr *trace.Trace) {
	s := tr.Stats()
	fmt.Fprintf(os.Stderr, "files            %d\n", s.NumFiles)
	fmt.Fprintf(os.Stderr, "requests         %d (distinct files touched: %d)\n", s.NumRequests, s.DistinctRequested)
	fmt.Fprintf(os.Stderr, "duration         %.0f s (%.1f h)\n", s.Duration, s.Duration/3600)
	fmt.Fprintf(os.Stderr, "arrival rate     %.6f req/s\n", s.ArrivalRate)
	fmt.Fprintf(os.Stderr, "mean file size   %.1f MB\n", s.MeanFileSize/1e6)
	fmt.Fprintf(os.Stderr, "mean req size    %.1f MB\n", s.MeanRequestSize/1e6)
	fmt.Fprintf(os.Stderr, "population       %.2f TB (%.1f disks of 500 GB)\n",
		float64(s.TotalBytes)/1e12, float64(s.TotalBytes)/500e9)
	fit := tr.SizeZipfFit(80)
	fmt.Fprintf(os.Stderr, "size log-log fit slope %.3f R2 %.3f over 80 bins\n", fit.Slope, fit.R2)
	fmt.Fprintf(os.Stderr, "size-frequency correlation %.4f\n", tr.SizeFrequencyCorrelation())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "workloadgen:", err)
	os.Exit(1)
}
