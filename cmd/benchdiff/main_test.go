package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: diskpack
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFarmRun-8   	     150	  16184105 ns/op	         0.7654 saving	 4274154 B/op	    1223 allocs/op
BenchmarkFarmRun-8   	     148	  16510213 ns/op	         0.7654 saving	 4274154 B/op	    1223 allocs/op
BenchmarkFarmRun-8   	     151	  16090021 ns/op	         0.7654 saving	 4274154 B/op	    1223 allocs/op
BenchmarkSweep/workers=4-8         	       9	 236503865 ns/op	         0.7319 saving@p0	84598330 B/op	  209630 allocs/op
PASS
`

// parse must strip the GOMAXPROCS suffix, keep sub-benchmark names, and
// fold -count repeats by min.
func TestParseMinFold(t *testing.T) {
	got, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	fr, ok := got["BenchmarkFarmRun"]
	if !ok {
		t.Fatalf("BenchmarkFarmRun missing (keys %v)", got)
	}
	if fr.NsPerOp != 16090021 {
		t.Errorf("min ns/op = %v, want 16090021", fr.NsPerOp)
	}
	if fr.AllocsPerOp != 1223 || fr.BytesPerOp != 4274154 {
		t.Errorf("allocs/bytes = %v/%v", fr.AllocsPerOp, fr.BytesPerOp)
	}
	if _, ok := got["BenchmarkSweep/workers=4"]; !ok {
		t.Error("sub-benchmark name not preserved")
	}
}

// The gate must pass at parity, fail on a 20% ns/op slowdown, and fail
// on any allocs/op growth — the contract the CI job relies on.
func TestGateFailsOnInjectedSlowdown(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")

	write := func(p, s string) {
		if err := os.WriteFile(p, []byte(s), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	bench := func(ns, allocs int) string {
		return "BenchmarkFarmRun-8 100 " + itoa(ns) + " ns/op 4274154 B/op " + itoa(allocs) + " allocs/op\n"
	}

	out := filepath.Join(dir, "bench.out")
	write(out, bench(16000000, 1223))
	var buf bytes.Buffer
	if err := run([]string{"-base", basePath, "-update", out}, nil, &buf); err != nil {
		t.Fatalf("update: %v", err)
	}

	// Parity passes.
	if err := run([]string{"-base", basePath, out}, nil, &buf); err != nil {
		t.Fatalf("gate failed at parity: %v", err)
	}
	// +5% passes (under the 10% threshold).
	write(out, bench(16800000, 1223))
	if err := run([]string{"-base", basePath, out}, nil, &buf); err != nil {
		t.Fatalf("gate failed at +5%%: %v", err)
	}
	// +20% fails.
	write(out, bench(19200000, 1223))
	if err := run([]string{"-base", basePath, out}, nil, &buf); err == nil || !strings.Contains(err.Error(), "ns/op regressed") {
		t.Fatalf("gate passed a 20%% slowdown (err=%v)", err)
	}
	// ±1 alloc of amortization jitter passes (one-time setup divided by
	// a different b.N), but real growth fails even with faster ns/op.
	write(out, bench(15000000, 1224))
	if err := run([]string{"-base", basePath, out}, nil, &buf); err != nil {
		t.Fatalf("gate failed on 1-alloc jitter: %v", err)
	}
	write(out, bench(15000000, 1300))
	if err := run([]string{"-base", basePath, out}, nil, &buf); err == nil || !strings.Contains(err.Error(), "allocs/op grew") {
		t.Fatalf("gate passed an alloc growth (err=%v)", err)
	}
	// A zero-alloc benchmark gaining its first alloc fails: zero stays
	// zero, the tentpole's allocation-free guarantee.
	write(out, bench(16000000, 1223)+"BenchmarkZero-8 100 50 ns/op 0 B/op 0 allocs/op\n")
	if err := run([]string{"-base", basePath, "-update", out}, nil, &buf); err != nil {
		t.Fatalf("update: %v", err)
	}
	write(out, bench(16000000, 1223)+"BenchmarkZero-8 100 50 ns/op 16 B/op 1 allocs/op\n")
	if err := run([]string{"-base", basePath, out}, nil, &buf); err == nil || !strings.Contains(err.Error(), "allocs/op grew") {
		t.Fatalf("gate passed a zero-alloc benchmark gaining an alloc (err=%v)", err)
	}
	// A benchmark vanishing from the output fails.
	write(out, "BenchmarkOther-8 100 5 ns/op\n")
	if err := run([]string{"-base", basePath, out}, nil, &buf); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("gate passed with the baselined benchmark missing (err=%v)", err)
	}
}

// The summary file receives the markdown table.
func TestSummaryFile(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	out := filepath.Join(dir, "bench.out")
	sum := filepath.Join(dir, "summary.md")
	if err := os.WriteFile(out, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-base", basePath, "-update", out}, nil, &buf); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-base", basePath, "-summary", sum, out}, nil, &buf); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(sum)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "BenchmarkFarmRun") || !strings.Contains(string(b), "|") {
		t.Errorf("summary does not look like a markdown table:\n%s", b)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
