// Command benchdiff turns `go test -bench` output into a perf gate: it
// parses benchmark results (taking the min over -count repeats, the
// standard noise filter), compares them against a committed JSON
// baseline, and exits non-zero when any benchmark regresses by more
// than the ns/op threshold or grows its allocs/op beyond a hair of
// amortization jitter (0.5% + ½ alloc; zero stays zero). With -update
// it rewrites the baseline instead — the single intentional way a new
// performance level is recorded (see EXPERIMENTS.md, "Performance").
//
// Usage:
//
//	go test -run xxx -bench ... -benchtime 500ms -count 3 ./... > bench.out
//	go run ./cmd/benchdiff bench.out            # gate against BENCH_main.json
//	go run ./cmd/benchdiff -update bench.out    # record a new baseline
//
// Input files default to stdin when absent. The comparison is also
// emitted as a markdown table; -summary appends it to a file (CI step
// summaries).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark's measured operating point.
type result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// baseline is the committed BENCH_main.json shape.
type baseline struct {
	// Note documents how the numbers were produced.
	Note string `json:"note"`
	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped) to
	// its recorded operating point.
	Benchmarks map[string]result `json:"benchmarks"`
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkFarmRun-8   114   21038885 ns/op   0.7654 saving   8867128 B/op   18820 allocs/op
//
// Custom -ReportMetric columns are ignored; B/op and allocs/op are
// optional (present only under -benchmem or b.ReportAllocs).
var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-\d+)?\s+\d+\s+([0-9.e+]+) ns/op(.*)$`)

var metricCol = regexp.MustCompile(`([0-9.e+]+) (B/op|allocs/op)`)

// parse reads bench output, folding repeated lines (from -count) by
// min: the fastest repeat is the least-noisy estimate of the code's
// cost, and allocs/op is deterministic so min loses nothing.
func parse(r io.Reader) (map[string]result, error) {
	out := map[string]result{}
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := m[1]
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchdiff: bad ns/op in %q: %v", line, err)
		}
		res := result{NsPerOp: ns}
		for _, col := range metricCol.FindAllStringSubmatch(m[3], -1) {
			v, err := strconv.ParseFloat(col[1], 64)
			if err != nil {
				return nil, fmt.Errorf("benchdiff: bad %s in %q: %v", col[2], line, err)
			}
			switch col[2] {
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		if prev, ok := out[name]; ok {
			if prev.NsPerOp < res.NsPerOp {
				res.NsPerOp = prev.NsPerOp
			}
			if prev.BytesPerOp < res.BytesPerOp {
				res.BytesPerOp = prev.BytesPerOp
			}
			if prev.AllocsPerOp < res.AllocsPerOp {
				res.AllocsPerOp = prev.AllocsPerOp
			}
		}
		out[name] = res
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchdiff: no benchmark lines found in input")
	}
	return out, nil
}

// compare gates measured results against the baseline. It returns the
// markdown report and the list of failures (empty = gate passes).
func compare(base *baseline, got map[string]result, threshold float64) (string, []string) {
	var failures []string
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	var md strings.Builder
	fmt.Fprintf(&md, "| benchmark | ns/op (base) | ns/op (new) | Δ | allocs/op (base) | allocs/op (new) | status |\n")
	fmt.Fprintf(&md, "|---|---:|---:|---:|---:|---:|---|\n")
	for _, name := range names {
		b := base.Benchmarks[name]
		g, ok := got[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but missing from bench output (renamed? update the baseline deliberately)", name))
			fmt.Fprintf(&md, "| %s | %.0f | — | — | %.0f | — | ❌ missing |\n", name, b.NsPerOp, b.AllocsPerOp)
			continue
		}
		delta := 0.0
		if b.NsPerOp > 0 {
			delta = g.NsPerOp/b.NsPerOp - 1
		}
		status := "✅"
		if delta > threshold {
			failures = append(failures, fmt.Sprintf("%s: ns/op regressed %.1f%% (%.0f → %.0f, threshold %.0f%%)",
				name, delta*100, b.NsPerOp, g.NsPerOp, threshold*100))
			status = "❌ ns/op"
		}
		// Allocs gate with jitter tolerance: macro benchmarks amortize
		// one-time setup allocations over b.N, so allocs/op wobbles by
		// ±1 between runs with different iteration counts. 0.5% + half
		// an alloc absorbs that while keeping zero-alloc benchmarks
		// strict (0 → 1 still fails).
		if g.AllocsPerOp > b.AllocsPerOp*1.005+0.5 {
			failures = append(failures, fmt.Sprintf("%s: allocs/op grew %.0f → %.0f (tolerance 0.5%% + ½ alloc)",
				name, b.AllocsPerOp, g.AllocsPerOp))
			if status == "✅" {
				status = "❌ allocs"
			} else {
				status += "+allocs"
			}
		}
		fmt.Fprintf(&md, "| %s | %.0f | %.0f | %+.1f%% | %.0f | %.0f | %s |\n",
			name, b.NsPerOp, g.NsPerOp, delta*100, b.AllocsPerOp, g.AllocsPerOp, status)
	}
	for name := range got {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Fprintf(&md, "| %s | — | %.0f | — | — | %.0f | ⚠️ not in baseline |\n",
				name, got[name].NsPerOp, got[name].AllocsPerOp)
		}
	}
	return md.String(), failures
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stdout)
	basePath := fs.String("base", "BENCH_main.json", "baseline JSON file")
	update := fs.Bool("update", false, "rewrite the baseline from the bench output instead of gating")
	threshold := fs.Float64("threshold", 0.10, "relative ns/op growth that fails the gate")
	summary := fs.String("summary", "", "append the markdown comparison to this file (e.g. $GITHUB_STEP_SUMMARY)")
	note := fs.String("note", "min of -count=3 at -benchtime=500ms; update via the command in EXPERIMENTS.md §Performance", "baseline provenance note (with -update)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var in io.Reader = stdin
	if fs.NArg() > 0 {
		var readers []io.Reader
		for _, p := range fs.Args() {
			f, err := os.Open(p)
			if err != nil {
				return err
			}
			defer f.Close()
			readers = append(readers, f)
		}
		in = io.MultiReader(readers...)
	}
	got, err := parse(in)
	if err != nil {
		return err
	}

	if *update {
		b := baseline{Note: *note, Benchmarks: got}
		data, err := json.MarshalIndent(&b, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*basePath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "benchdiff: wrote %s (%d benchmarks)\n", *basePath, len(got))
		return nil
	}

	data, err := os.ReadFile(*basePath)
	if err != nil {
		return fmt.Errorf("benchdiff: reading baseline: %w (run with -update to create one)", err)
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("benchdiff: parsing %s: %w", *basePath, err)
	}
	md, failures := compare(&base, got, *threshold)
	fmt.Fprint(stdout, md)
	if *summary != "" {
		f, err := os.OpenFile(*summary, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(f, "## Bench gate vs %s\n\n%s\n", *basePath, md); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchdiff: %d regression(s):\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(stdout, "benchdiff: gate passed (%d benchmarks within %.0f%% ns/op, no alloc growth)\n",
		len(base.Benchmarks), *threshold*100)
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
