// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run fig2            # one experiment
//	experiments -run all -scale 1    # everything at paper scale
//	experiments -run fig56 -format csv -out results/
//
// Experiments: table1, table2, packquality, scaling, fig2, fig3, fig23,
// fig4, fig5, fig6, fig56, vsweep, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"diskpack/internal/exp"
	"diskpack/internal/farm"
)

func main() {
	var (
		run       = flag.String("run", "all", "experiment name (see package doc) or 'all'")
		scale     = flag.Float64("scale", 1.0, "workload scale in (0,1]; 1 = paper scale")
		seed      = flag.Int64("seed", 1, "random seed")
		workers   = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		format    = flag.String("format", "table", "output format: table or csv")
		out       = flag.String("out", "", "directory to write one file per table (default: stdout)")
		scenarios = flag.Bool("scenarios", false, "list the farm scenario catalogue (run them with cmd/disksim) and exit")
	)
	flag.Parse()

	if *scenarios {
		for _, sc := range farm.Scenarios() {
			fmt.Printf("%-18s %s\n", sc.Name, sc.Doc)
		}
		return
	}

	opts := exp.Options{Scale: *scale, Seed: *seed, Workers: *workers}
	if err := opts.Validate(); err != nil {
		fatal(err)
	}
	start := time.Now()
	tables, err := exp.Run(*run, opts)
	if err != nil {
		fatal(err)
	}
	for _, t := range tables {
		var body string
		switch *format {
		case "csv":
			body = t.CSV()
		case "table":
			body = t.String()
		default:
			fatal(fmt.Errorf("unknown format %q", *format))
		}
		if *out == "" {
			fmt.Println(body)
			continue
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		ext := ".txt"
		if *format == "csv" {
			ext = ".csv"
		}
		path := filepath.Join(*out, t.Name+ext)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
	fmt.Fprintf(os.Stderr, "done in %v (scale %g, seed %d)\n", time.Since(start).Round(time.Millisecond), *scale, *seed)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
