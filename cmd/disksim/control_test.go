package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// The CI control-smoke contract: a controlled scenario run is
// byte-identical across invocations and reports its windows.
func TestControlledRunDeterministicOutput(t *testing.T) {
	args := []string{"-scenario", "controlled-bursty", "-control", "tail-budget", "-seed", "3"}
	var a, b bytes.Buffer
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("controlled runs differ between invocations")
	}
	out := a.String()
	for _, want := range []string{"controller        tail-budget", "window", "threshold"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
}

// -control composes with ad-hoc and scenario bases and rejects
// nonsense loudly instead of silently ignoring flags.
func TestControlFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-scenario", "bursty", "-control", "no-such-controller"}, "unknown controller"},
		{[]string{"-scenario", "bursty", "-epoch", "600"}, "-epoch/-budget need -control"},
		{[]string{"-scenario", "controlled-bursty", "-control", "static", "-epoch", "600"}, "have no effect"},
		{[]string{"-scenario", "static-vs-controlled", "-control", "tail-budget"}, "grid fixes each point's policy"},
		{[]string{"-token", "x", "-scenario", "bursty"}, "-token needs -serve"},
		{[]string{"-scenario", "bursty", "-sweep", "control=tail-budget"}, "controller axis needs a base spec"},
	} {
		err := run(tc.args, io.Discard)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v) = %v, want %q", tc.args, err, tc.want)
		}
	}
	// -control static on a controlled scenario runs open-loop.
	var out bytes.Buffer
	if err := run([]string{"-scenario", "controlled-bursty", "-control", "static"}, &out); err != nil {
		t.Fatalf("-control static: %v", err)
	}
	if strings.Contains(out.String(), "controller ") {
		t.Error("static run still reports a controller")
	}
	// A controller axis over a controlled base compiles and runs.
	out.Reset()
	if err := run([]string{"-scenario", "controlled-bursty", "-sweep", "control=static,tail-budget"}, &out); err != nil {
		t.Fatalf("controller axis sweep: %v", err)
	}
	if !strings.Contains(out.String(), "control=tail-budget") {
		t.Errorf("sweep output lacks the controlled point:\n%s", out.String())
	}
}

// The grid scenario runs through -scenario and prints the full grid
// with its SLO verdict.
func TestGridScenarioCLI(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenario", "controlled-bursty", "-v"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "actions:") {
		t.Errorf("-v controlled output lacks the action log:\n%.400s", out.String())
	}
}
