package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"diskpack/internal/disk"
	"diskpack/internal/farm"
	"diskpack/internal/workload"
)

// writeGridSpec writes a small sweep scenario file and returns its
// path: a 300-file Table 1 miniature crossed over threshold × farm
// size, the same shape the farm fixtures use.
func writeGridSpec(t *testing.T, dir string) string {
	t.Helper()
	cfg := workload.DefaultSynthetic(2, 0)
	cfg.NumFiles = 300
	cfg.MinSize = disk.MB
	cfg.MaxSize = 40 * disk.MB
	sweep := farm.Sweep{
		Name: "cli-grid",
		Base: farm.Spec{
			Name:     "cli-grid",
			Workload: farm.SyntheticWorkload(cfg),
			Alloc:    farm.Packed(0.7),
		},
		Axes: []farm.Axis{
			{Kind: farm.AxisSpinThreshold, Values: []float64{30, 600}},
			{Kind: farm.AxisFarmSize, Values: []float64{8, 12}},
		},
		Select: farm.Selector{Kind: farm.SelectKnee},
	}
	path := filepath.Join(dir, "grid.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := farm.EncodeFile(f, farm.File{Sweep: &sweep}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestShardMergeMatchesSingleRun drives the whole CLI path the CI
// matrix job uses: shard a spec-file grid, run each shard, merge, and
// require the merged report to be byte-identical to the single-process
// run of the same file.
func TestShardMergeMatchesSingleRun(t *testing.T) {
	dir := t.TempDir()
	spec := writeGridSpec(t, dir)

	var single bytes.Buffer
	if err := run([]string{"-spec", spec, "-seed", "5"}, &single); err != nil {
		t.Fatal(err)
	}

	shardDir := filepath.Join(dir, "shards")
	if err := run([]string{"-spec", spec, "-seed", "5", "-shards", "2", "-shard-out", shardDir}, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"shard-000.json", "shard-001.json"} {
		if err := run([]string{"-run-shard", filepath.Join(shardDir, name)}, io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	var merged bytes.Buffer
	if err := run([]string{"-merge", shardDir}, &merged); err != nil {
		t.Fatal(err)
	}
	if single.String() != merged.String() {
		t.Fatalf("merged report differs from the single-process run:\n--- single\n%s--- merged\n%s", single.String(), merged.String())
	}

	// Re-running a shard resumes: the result file already holds every
	// point, so nothing is recomputed and the merge still matches.
	var rerun bytes.Buffer
	if err := run([]string{"-run-shard", filepath.Join(shardDir, "shard-000.json")}, &rerun); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rerun.String(), "(2 reused)") {
		t.Errorf("re-run did not resume from the existing result file: %q", rerun.String())
	}
	merged.Reset()
	if err := run([]string{"-merge", shardDir}, &merged); err != nil {
		t.Fatal(err)
	}
	if single.String() != merged.String() {
		t.Fatal("merged report changed after a resumed re-run")
	}

	// A post-merge -select override re-picks the operating point.
	var reselected bytes.Buffer
	if err := run([]string{"-merge", shardDir, "-select", "pareto"}, &reselected); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(reselected.String(), "pareto front") {
		t.Errorf("-merge -select pareto did not re-select:\n%s", reselected.String())
	}
}

// TestBadGridFlagsFail pins the exit-status bug: every path that parses
// -sweep or -select must fail (non-nil error from run, hence non-zero
// exit) and surface the axis/selector catalogue — including paths like
// -scenarios that used to return success before parsing the grid flags.
func TestBadGridFlagsFail(t *testing.T) {
	cases := [][]string{
		{"-scenarios", "-sweep", "bogus=1,2"},
		{"-scenario", "paper-synth", "-sweep", "bogus=1,2"},
		{"-scenario", "paper-synth", "-sweep", "threshold=x"},
		{"-scenario", "paper-synth", "-sweep", "threshold="},
		{"-scenario", "paper-synth", "-sweep", "threshold=30", "-select", "bogus"},
		{"-scenarios", "-select", "slo"},
	}
	for _, args := range cases {
		err := run(args, io.Discard)
		if err == nil {
			t.Errorf("run(%v) succeeded, want parse failure", args)
			continue
		}
		if !strings.Contains(err.Error(), "selectors (-select)") {
			t.Errorf("run(%v) error lacks the grid catalogue: %v", args, err)
		}
	}
	// An undefined flag must also fail rather than be ignored.
	if err := run([]string{"-definitely-not-a-flag"}, io.Discard); err == nil {
		t.Error("undefined flag accepted")
	}
	// The happy paths stay happy.
	if err := run([]string{"-scenarios"}, io.Discard); err != nil {
		t.Errorf("-scenarios failed: %v", err)
	}
}

func TestShardFlagConflicts(t *testing.T) {
	dir := t.TempDir()
	spec := writeGridSpec(t, dir)
	cases := [][]string{
		{"-spec", spec, "-shards", "2"},                                         // no -shard-out
		{"-run-shard", "x.json", "-sweep", "threshold=30"},                      // run-shard is self-contained
		{"-merge", dir, "-shards", "2"},                                         // merge doesn't shard
		{"-spec", spec, "-shards", "2", "-shard-out", dir, "-spec-out", "o.js"}, // two write-and-exit modes
		{"-scenario", "paper-synth", "-shards", "2", "-shard-out", dir},         // no grid on a plain scenario
		{"-run-shard", "x.json", "-seed", "99"},                                 // seed lives in the manifest
		{"-merge", dir, "-seed", "99"},                                          // seed lives in the results
		{"-run-shard", "x.json", "-threshold", "900"},                           // spec flags would be silently ignored
		{"-run-shard", "x.json", "-cache", "16e9"},
		{"-run-shard", "x.json", "-v"},                                                                // run-shard writes a file, prints no metrics
		{"-merge", dir, "-workers", "4"},                                                              // merge runs nothing
		{"-scenario", "paper-synth", "-sweep", "threshold=30,60", "-shard-out", dir},                  // -shard-out without -shards
		{"-scenario", "paper-synth", "-shard-result", "r.json"},                                       // -shard-result without -run-shard
		{"-scenario", "paper-synth", "-sweep", "threshold=30,60", "-shards", "-1", "-shard-out", dir}, // negative shard count
		{"-spec", spec, "-shards", "-1", "-shard-out", dir},                                           // negative count on the spec path too
		{"-scenarios", "-run-shard", "x.json"},                                                        // list mode ignores every other flag
		{"-scenarios", "-shards", "2", "-shard-out", dir},
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("run(%v) succeeded, want conflict error", args)
		}
	}
	if err := run([]string{"-merge", dir}, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "no *.result.json") {
		t.Errorf("merge of a result-less directory: %v", err)
	}
}
