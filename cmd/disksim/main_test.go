package main

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"diskpack/internal/disk"
	"diskpack/internal/farm"
	"diskpack/internal/workload"
)

// writeGridSpec writes a small sweep scenario file and returns its
// path: a 300-file Table 1 miniature crossed over threshold × farm
// size, the same shape the farm fixtures use.
func writeGridSpec(t *testing.T, dir string) string {
	t.Helper()
	cfg := workload.DefaultSynthetic(2, 0)
	cfg.NumFiles = 300
	cfg.MinSize = disk.MB
	cfg.MaxSize = 40 * disk.MB
	sweep := farm.Sweep{
		Name: "cli-grid",
		Base: farm.Spec{
			Name:     "cli-grid",
			Workload: farm.SyntheticWorkload(cfg),
			Alloc:    farm.Packed(0.7),
		},
		Axes: []farm.Axis{
			{Kind: farm.AxisSpinThreshold, Values: []float64{30, 600}},
			{Kind: farm.AxisFarmSize, Values: []float64{8, 12}},
		},
		Select: farm.Selector{Kind: farm.SelectKnee},
	}
	path := filepath.Join(dir, "grid.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := farm.EncodeFile(f, farm.File{Sweep: &sweep}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestShardMergeMatchesSingleRun drives the whole CLI path the CI
// matrix job uses: shard a spec-file grid, run each shard, merge, and
// require the merged report to be byte-identical to the single-process
// run of the same file.
func TestShardMergeMatchesSingleRun(t *testing.T) {
	dir := t.TempDir()
	spec := writeGridSpec(t, dir)

	var single bytes.Buffer
	if err := run([]string{"-spec", spec, "-seed", "5"}, &single); err != nil {
		t.Fatal(err)
	}

	shardDir := filepath.Join(dir, "shards")
	if err := run([]string{"-spec", spec, "-seed", "5", "-shards", "2", "-shard-out", shardDir}, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"shard-000.json", "shard-001.json"} {
		if err := run([]string{"-run-shard", filepath.Join(shardDir, name)}, io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	var merged bytes.Buffer
	if err := run([]string{"-merge", shardDir}, &merged); err != nil {
		t.Fatal(err)
	}
	if single.String() != merged.String() {
		t.Fatalf("merged report differs from the single-process run:\n--- single\n%s--- merged\n%s", single.String(), merged.String())
	}

	// Re-running a shard resumes: the result file already holds every
	// point, so nothing is recomputed and the merge still matches.
	var rerun bytes.Buffer
	if err := run([]string{"-run-shard", filepath.Join(shardDir, "shard-000.json")}, &rerun); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rerun.String(), "(2 reused)") {
		t.Errorf("re-run did not resume from the existing result file: %q", rerun.String())
	}
	merged.Reset()
	if err := run([]string{"-merge", shardDir}, &merged); err != nil {
		t.Fatal(err)
	}
	if single.String() != merged.String() {
		t.Fatal("merged report changed after a resumed re-run")
	}

	// A post-merge -select override re-picks the operating point.
	var reselected bytes.Buffer
	if err := run([]string{"-merge", shardDir, "-select", "pareto"}, &reselected); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(reselected.String(), "pareto front") {
		t.Errorf("-merge -select pareto did not re-select:\n%s", reselected.String())
	}
}

// TestBadGridFlagsFail pins the exit-status bug: every path that parses
// -sweep or -select must fail (non-nil error from run, hence non-zero
// exit) and surface the axis/selector catalogue — including paths like
// -scenarios that used to return success before parsing the grid flags.
func TestBadGridFlagsFail(t *testing.T) {
	cases := [][]string{
		{"-scenarios", "-sweep", "bogus=1,2"},
		{"-scenario", "paper-synth", "-sweep", "bogus=1,2"},
		{"-scenario", "paper-synth", "-sweep", "threshold=x"},
		{"-scenario", "paper-synth", "-sweep", "threshold="},
		{"-scenario", "paper-synth", "-sweep", "threshold=30", "-select", "bogus"},
		{"-scenarios", "-select", "slo"},
	}
	for _, args := range cases {
		err := run(args, io.Discard)
		if err == nil {
			t.Errorf("run(%v) succeeded, want parse failure", args)
			continue
		}
		if !strings.Contains(err.Error(), "selectors (-select)") {
			t.Errorf("run(%v) error lacks the grid catalogue: %v", args, err)
		}
	}
	// An undefined flag must also fail rather than be ignored.
	if err := run([]string{"-definitely-not-a-flag"}, io.Discard); err == nil {
		t.Error("undefined flag accepted")
	}
	// The happy paths stay happy.
	if err := run([]string{"-scenarios"}, io.Discard); err != nil {
		t.Errorf("-scenarios failed: %v", err)
	}
}

func TestShardFlagConflicts(t *testing.T) {
	dir := t.TempDir()
	spec := writeGridSpec(t, dir)
	cases := [][]string{
		{"-spec", spec, "-shards", "2"},                                         // no -shard-out
		{"-run-shard", "x.json", "-sweep", "threshold=30"},                      // run-shard is self-contained
		{"-merge", dir, "-shards", "2"},                                         // merge doesn't shard
		{"-spec", spec, "-shards", "2", "-shard-out", dir, "-spec-out", "o.js"}, // two write-and-exit modes
		{"-scenario", "paper-synth", "-shards", "2", "-shard-out", dir},         // no grid on a plain scenario
		{"-run-shard", "x.json", "-seed", "99"},                                 // seed lives in the manifest
		{"-merge", dir, "-seed", "99"},                                          // seed lives in the results
		{"-run-shard", "x.json", "-threshold", "900"},                           // spec flags would be silently ignored
		{"-run-shard", "x.json", "-cache", "16e9"},
		{"-run-shard", "x.json", "-v"},                                                                // run-shard writes a file, prints no metrics
		{"-merge", dir, "-workers", "4"},                                                              // merge runs nothing
		{"-scenario", "paper-synth", "-sweep", "threshold=30,60", "-shard-out", dir},                  // -shard-out without -shards
		{"-scenario", "paper-synth", "-shard-result", "r.json"},                                       // -shard-result without -run-shard
		{"-scenario", "paper-synth", "-sweep", "threshold=30,60", "-shards", "-1", "-shard-out", dir}, // negative shard count
		{"-spec", spec, "-shards", "-1", "-shard-out", dir},                                           // negative count on the spec path too
		{"-scenarios", "-run-shard", "x.json"},                                                        // list mode ignores every other flag
		{"-scenarios", "-shards", "2", "-shard-out", dir},
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("run(%v) succeeded, want conflict error", args)
		}
	}
	if err := run([]string{"-merge", dir}, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "no *.result.json") {
		t.Errorf("merge of a result-less directory: %v", err)
	}
}

// TestPoolFlagValidation pins the loud-range-error satellite: pool and
// coordinator sizing flags reject nonsense with the valid range named
// instead of clamping or spinning.
func TestPoolFlagValidation(t *testing.T) {
	dir := t.TempDir()
	spec := writeGridSpec(t, dir)
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-spec", spec, "-workers", "-1"}, "valid values"},
		{[]string{"-work", "http://127.0.0.1:1", "-workers", "-4"}, "valid values"},
		{[]string{"-spec", spec, "-serve", "127.0.0.1:0", "-lease", "10ms"}, "valid values"},
		{[]string{"-spec", spec, "-serve", "127.0.0.1:0", "-batch", "0"}, "valid values"},
		{[]string{"-spec", spec, "-serve", "127.0.0.1:0", "-batch", "-3"}, "valid values"},
	}
	for _, c := range cases {
		err := run(c.args, io.Discard)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("run(%v) = %v, want error naming %q", c.args, err, c.want)
		}
	}
}

func TestCoordFlagConflicts(t *testing.T) {
	dir := t.TempDir()
	spec := writeGridSpec(t, dir)
	cases := [][]string{
		{"-spec", spec, "-serve", ":0", "-shards", "2", "-shard-out", dir}, // two distribution modes
		{"-spec", spec, "-serve", ":0", "-workers", "2"},                   // pool size belongs to -work
		{"-scenario", "paper-synth", "-serve", ":0"},                       // no grid
		{"-work", "http://x", "-scenario", "paper-synth"},                  // worker pulls everything
		{"-work", "http://x", "-select", "knee"},
		{"-work", "http://x", "-serve", ":0"},
		{"-spec", spec, "-journal", "j"},  // journal without -serve
		{"-spec", spec, "-lease", "90s"},  // lease without -serve
		{"-spec", spec, "-batch", "2"},    // batch without -serve
		{"-spec", spec, "-name", "mybox"}, // name without -work
		{"-spec", spec, "-serve", ":0", "-name", "mybox"},
		{"-run-shard", "x.json", "-serve", ":0"},
		{"-merge", dir, "-work", "http://x"},
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("run(%v) succeeded, want conflict error", args)
		}
	}
}

// freeAddr reserves a localhost port long enough to hand it to -serve.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// waitDialable blocks until the coordinator is accepting connections,
// so a fast grid cannot drain and shut down inside a late joiner's
// first retry backoff.
func waitDialable(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			conn.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator on %s never started listening: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeWorkMatchesSingleRun drives the elastic pool through the
// CLI exactly as the CI job does: -serve on localhost, two -work
// processes (in-process here), and a report byte-identical to the
// single-process run of the same spec file.
func TestServeWorkMatchesSingleRun(t *testing.T) {
	dir := t.TempDir()
	spec := writeGridSpec(t, dir)

	var single bytes.Buffer
	if err := run([]string{"-spec", spec, "-seed", "5"}, &single); err != nil {
		t.Fatal(err)
	}

	addr := freeAddr(t)
	journal := filepath.Join(dir, "coord.journal")
	var served bytes.Buffer
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- run([]string{"-spec", spec, "-seed", "5", "-serve", addr,
			"-journal", journal, "-lease", "5s", "-batch", "2"}, &served)
	}()
	waitDialable(t, addr)

	workErr := make(chan error, 2)
	var workOut [2]bytes.Buffer
	for i := 0; i < 2; i++ {
		go func(i int) {
			workErr <- run([]string{"-work", "http://" + addr, "-workers", "2",
				"-name", fmt.Sprintf("w%d", i)}, &workOut[i])
		}(i)
	}
	for i := 0; i < 2; i++ {
		if err := <-workErr; err != nil {
			t.Fatal(err)
		}
	}
	if err := <-serveErr; err != nil {
		t.Fatal(err)
	}
	if single.String() != served.String() {
		t.Fatalf("coordinator report differs from the single-process run:\n--- single\n%s--- served\n%s", single.String(), served.String())
	}
	if workOut[0].String()+workOut[1].String() == "" {
		t.Error("workers reported nothing")
	}
	if _, err := os.Stat(journal); !os.IsNotExist(err) {
		t.Errorf("journal not cleaned up after success: %v", err)
	}
}

// TestServeInterrupt pins the graceful-shutdown satellite: SIGINT ends
// a -serve run with a non-zero (non-nil) outcome that names the
// journal, and the journal file survives for the resume.
func TestServeInterrupt(t *testing.T) {
	dir := t.TempDir()
	spec := writeGridSpec(t, dir)
	addr := freeAddr(t)
	journal := filepath.Join(dir, "coord.journal")

	serveErr := make(chan error, 1)
	go func() {
		serveErr <- run([]string{"-spec", spec, "-seed", "5", "-serve", addr, "-journal", journal}, io.Discard)
	}()
	// Wait until the coordinator is actually listening before
	// delivering the signal.
	waitDialable(t, addr)
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	err := <-serveErr
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("interrupted -serve returned %v, want an interruption error", err)
	}
	if !strings.Contains(err.Error(), journal) {
		t.Errorf("interruption error does not name the journal: %v", err)
	}
	if _, statErr := os.Stat(journal); statErr != nil {
		t.Errorf("journal missing after interrupt: %v", statErr)
	}
}

// TestRunShardPartialResume pins the -run-shard incremental-flush
// satellite: a leftover .partial journal is the resume input (its
// points are reused, proven by a doctored sentinel surviving), and a
// successful run deletes it.
func TestRunShardPartialResume(t *testing.T) {
	dir := t.TempDir()
	spec := writeGridSpec(t, dir)
	shardDir := filepath.Join(dir, "shards")
	if err := run([]string{"-spec", spec, "-seed", "5", "-shards", "2", "-shard-out", shardDir}, io.Discard); err != nil {
		t.Fatal(err)
	}
	manifestPath := filepath.Join(shardDir, "shard-000.json")
	mf, err := os.Open(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	m, err := farm.DecodeShard(mf)
	mf.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a crashed earlier run: a .partial journal holding one
	// completed point with a sentinel energy no simulation produces.
	c, err := farm.Compile(m.Sweep, m.Seed)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := c.RunPoint(m.Points[0].Index)
	if err != nil {
		t.Fatal(err)
	}
	doctored := *pr.Metrics
	doctored.Energy = 123456789
	pr.Metrics = &doctored
	partialPath := resultPathFor(manifestPath) + ".partial"
	j, _, err := farm.OpenPointJournal(partialPath, m.Sweep, m.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(pr); err != nil {
		t.Fatal(err)
	}
	j.Close()

	var out bytes.Buffer
	if err := run([]string{"-run-shard", manifestPath}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "(1 reused)") {
		t.Errorf("run did not resume from the partial journal: %q", out.String())
	}
	if _, err := os.Stat(partialPath); !os.IsNotExist(err) {
		t.Errorf(".partial journal not deleted after the final write: %v", err)
	}
	rf, err := os.Open(resultPathFor(manifestPath))
	if err != nil {
		t.Fatal(err)
	}
	res, err := farm.DecodeShardResult(rf)
	rf.Close()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range res.Points {
		if p.Index == pr.Index {
			found = true
			if p.Metrics.Energy != 123456789 {
				t.Error("journaled point was re-run instead of reused")
			}
		}
	}
	if !found {
		t.Fatal("journaled point missing from the final result")
	}
}
