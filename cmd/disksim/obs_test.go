package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"diskpack/internal/disk"
	"diskpack/internal/farm"
	"diskpack/internal/obs"
	"diskpack/internal/workload"
)

// writeSingleSpec writes a single-Spec scenario file sized by dur
// (simulated seconds) and returns its path.
func writeSingleSpec(t *testing.T, dir string, dur float64) string {
	t.Helper()
	cfg := workload.DefaultSynthetic(2, 0)
	cfg.NumFiles = 300
	cfg.MinSize = disk.MB
	cfg.MaxSize = 40 * disk.MB
	cfg.Duration = dur
	spec := farm.Spec{
		Name:     "cli-obs",
		Workload: farm.SyntheticWorkload(cfg),
		Alloc:    farm.Packed(0.7),
		FarmSize: 8,
	}
	path := filepath.Join(dir, "spec.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := farm.EncodeFile(f, farm.File{Spec: &spec}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func readTrace(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("%s is not valid Chrome-trace JSON: %v", path, err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatalf("%s has no trace events", path)
	}
	return b
}

// TestObsOutputsWrittenAndValid drives the happy path end to end: a
// run with both file sinks exits cleanly, the trace file is valid
// Chrome-trace JSON, the telemetry file parses with the current
// schema, and a repeat run (and a -sim-workers variant) is
// byte-identical.
func TestObsOutputsWrittenAndValid(t *testing.T) {
	dir := t.TempDir()
	spec := writeSingleSpec(t, dir, 4000)
	outs := func(tag string) (string, string) {
		return filepath.Join(dir, tag+".trace.json"), filepath.Join(dir, tag+".telemetry.jsonl")
	}

	var report [3]bytes.Buffer
	for i, tag := range []string{"a", "b", "c"} {
		tr, tm := outs(tag)
		args := []string{"-spec", spec, "-seed", "5", "-trace-out", tr, "-telemetry-out", tm}
		if tag == "c" {
			args = append(args, "-sim-workers", "4")
		}
		if err := run(args, &report[i]); err != nil {
			t.Fatal(err)
		}
	}
	if report[0].String() != report[1].String() || report[0].String() != report[2].String() {
		t.Error("reports differ across repeats / -sim-workers")
	}

	trA, tmA := outs("a")
	traceA := readTrace(t, trA)
	for _, tag := range []string{"b", "c"} {
		tr, tm := outs(tag)
		if !bytes.Equal(traceA, readTrace(t, tr)) {
			t.Errorf("trace %s differs from repeat a", tag)
		}
		a, _ := os.ReadFile(tmA)
		b, _ := os.ReadFile(tm)
		if !bytes.Equal(a, b) {
			t.Errorf("telemetry %s differs from repeat a", tag)
		}
	}

	f, err := os.Open(tmA)
	if err != nil {
		t.Fatal(err)
	}
	h, ws, err := obs.ReadTelemetry(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if h.Spec != "cli-obs" || h.Seed != 5 || h.Epoch <= 0 {
		t.Errorf("telemetry header %+v", h)
	}
	if len(ws) == 0 || !ws[len(ws)-1].Final {
		t.Errorf("telemetry windows: %d, final=%v", len(ws), len(ws) > 0 && ws[len(ws)-1].Final)
	}
}

// TestObsScenarioAndControlled covers the two other single-run routes:
// a registered scenario and a -control run both produce valid outputs.
func TestObsScenarioAndControlled(t *testing.T) {
	dir := t.TempDir()
	for _, c := range [][]string{
		{"-scenario", "hetero"},
		{"-scenario", "bursty", "-control", "tail-budget"},
	} {
		tr := filepath.Join(dir, c[1]+".trace.json")
		tm := filepath.Join(dir, c[1]+".telemetry.jsonl")
		args := append(c, "-trace-out", tr, "-telemetry-out", tm)
		if err := run(args, io.Discard); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
		readTrace(t, tr)
		f, err := os.Open(tm)
		if err != nil {
			t.Fatal(err)
		}
		_, ws, err := obs.ReadTelemetry(f)
		f.Close()
		if err != nil {
			t.Fatalf("%v telemetry: %v", c, err)
		}
		if len(ws) == 0 {
			t.Errorf("%v: no telemetry windows", c)
		}
	}
}

// TestObsInterruptFlushes pins the SIGINT satellite: a signal lands
// mid-run, the run aborts with an interruption error at the next
// window boundary, and both output files are flushed, closed, and
// valid — the partial trace and telemetry survive.
func TestObsInterruptFlushes(t *testing.T) {
	dir := t.TempDir()
	// Long enough (several seconds of wall time, ~1100 epoch windows)
	// that the signal always lands mid-run. Arrivals are generated
	// eagerly, so the duration must stay small enough to build fast.
	spec := writeSingleSpec(t, dir, 2_000_000)
	tr := filepath.Join(dir, "part.trace.json")
	tm := filepath.Join(dir, "part.telemetry.jsonl")

	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-spec", spec, "-trace-out", tr, "-telemetry-out", tm}, io.Discard)
	}()
	// Give the run a moment to start, then interrupt ourselves — the
	// same delivery path a Ctrl-C takes.
	time.Sleep(300 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err == nil || !strings.Contains(err.Error(), "interrupted") {
			t.Fatalf("interrupted run returned %v, want an interruption error", err)
		}
		if !strings.Contains(err.Error(), "flushed") {
			t.Errorf("interruption error does not mention the flushed output: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("interrupted run did not stop")
	}

	readTrace(t, tr)
	f, err := os.Open(tm)
	if err != nil {
		t.Fatal(err)
	}
	_, ws, err := obs.ReadTelemetry(f)
	f.Close()
	if err != nil {
		t.Fatalf("partial telemetry unreadable: %v", err)
	}
	if len(ws) == 0 {
		t.Error("no telemetry windows flushed before the abort")
	}
}

// TestMetricsAddrServes pins the live exposition endpoint: during a
// run with -metrics-addr, /metrics answers in Prometheus text format
// with the run's metric families.
func TestMetricsAddrServes(t *testing.T) {
	dir := t.TempDir()
	spec := writeSingleSpec(t, dir, 2_000_000)
	addr := freeAddr(t)
	tm := filepath.Join(dir, "m.telemetry.jsonl")

	errc := make(chan error, 1)
	go func() {
		// The telemetry sink keeps this a streamed (interruptible) run.
		errc <- run([]string{"-spec", spec, "-telemetry-out", tm, "-metrics-addr", addr}, io.Discard)
	}()
	waitDialable(t, addr)

	var body string
	deadline := time.Now().Add(20 * time.Second)
	for {
		resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		body = string(b)
		if strings.Contains(body, "disksim_windows_total") &&
			!strings.Contains(body, "disksim_windows_total 0\n") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics never showed progress:\n%s", body)
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, want := range []string{"disksim_sim_seconds", "disksim_energy_joules", "disksim_resp_seconds_bucket", "disksim_completions_total"} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %s", want)
		}
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("run returned %v, want interruption", err)
	}
}

// TestObsFlagConflicts: the file sinks record a single run, so every
// multi-run or write-and-exit mode rejects them; bad output paths fail
// before the run.
func TestObsFlagConflicts(t *testing.T) {
	dir := t.TempDir()
	grid := writeGridSpec(t, dir)
	single := writeSingleSpec(t, dir, 4000)
	// Output paths live in dir: the grid conflicts are detected only
	// after the files are created, and the conflict cases must not
	// litter the package directory.
	tj := filepath.Join(dir, "t.json")
	wj := filepath.Join(dir, "w.jsonl")
	cases := [][]string{
		{"-spec", single, "-trace-out", tj, "-serve", ":0"},
		{"-spec", single, "-telemetry-out", wj, "-spec-out", filepath.Join(dir, "o.json")},
		{"-spec", grid, "-trace-out", tj, "-shards", "2", "-shard-out", dir},
		{"-spec", grid, "-trace-out", tj},                                           // grid file
		{"-scenario", "paper-synth", "-sweep", "threshold=30,60", "-trace-out", tj}, // ad-hoc grid
		{"-scenario", "slo-sweep", "-telemetry-out", wj},                            // grid scenario
		{"-work", "http://x", "-trace-out", tj},                                     // onlyFlags modes
		{"-run-shard", "x.json", "-telemetry-out", wj},
		{"-merge", dir, "-trace-out", tj},
		{"-scenarios", "-trace-out", tj},
		{"-scenario", "hetero", "-trace-out", filepath.Join(dir, "no-such-dir", "t.json")}, // bad path fails early
		{"-scenario", "hetero", "-telemetry-out", filepath.Join(dir, "no-such-dir", "w.j")},
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
