// Command disksim runs one disk-farm simulation: a trace, an allocation
// (from a map file or computed on the fly), an idleness threshold, and
// an optional LRU cache, reporting energy and response-time metrics.
//
// Usage:
//
//	disksim -trace nersc.trace -algo pack -L 0.7 -threshold 1800
//	disksim -trace synth.trace -algo random -disks 100 -threshold breakeven
//	disksim -trace nersc.trace -assign out.map -disks 96 -cache 16e9
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"

	"diskpack/internal/core"
	"diskpack/internal/disk"
	"diskpack/internal/storage"
	"diskpack/internal/trace"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "input trace file (required)")
		assignIn  = flag.String("assign", "", "file→disk map (one disk per line); overrides -algo")
		algo      = flag.String("algo", "pack", "allocator when -assign is absent: pack, pack4, random")
		capL      = flag.Float64("L", 0.7, "load constraint for packing")
		farm      = flag.Int("disks", 0, "farm size (0 = as many as the allocation uses)")
		threshold = flag.String("threshold", "breakeven", "idleness threshold in seconds, 'breakeven', or 'never'")
		cacheB    = flag.Float64("cache", 0, "LRU cache bytes (0 = none; paper uses 16e9)")
		seed      = flag.Int64("seed", 1, "seed for random placement")
		verbose   = flag.Bool("v", false, "per-disk breakdown")
	)
	flag.Parse()
	if *tracePath == "" {
		fatal(fmt.Errorf("-trace is required"))
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		fatal(err)
	}
	tr, err := trace.Read(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	var assign []int
	if *assignIn != "" {
		assign, err = readAssign(*assignIn)
		if err != nil {
			fatal(err)
		}
	} else {
		assign, err = allocate(tr, *algo, *capL, *farm, *seed)
		if err != nil {
			fatal(err)
		}
	}
	numDisks := *farm
	for _, d := range assign {
		if d+1 > numDisks {
			numDisks = d + 1
		}
	}

	th := 0.0
	switch *threshold {
	case "breakeven":
		th = storage.BreakEven
	case "never":
		th = disk.NeverSpinDown
	default:
		th, err = strconv.ParseFloat(*threshold, 64)
		if err != nil {
			fatal(fmt.Errorf("bad -threshold: %w", err))
		}
	}

	res, err := storage.Run(tr, assign, storage.Config{
		NumDisks:      numDisks,
		IdleThreshold: th,
		CacheBytes:    int64(*cacheB),
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("farm              %d disks, threshold %s\n", numDisks, *threshold)
	fmt.Printf("energy            %.3e J over %.0f s (avg %.1f W)\n", res.Energy, res.Duration, res.AvgPower)
	fmt.Printf("no-saving energy  %.3e J\n", res.NoSavingEnergy)
	fmt.Printf("power saving      %.1f%%\n", res.PowerSavingRatio*100)
	fmt.Printf("response time     mean %.2f s  median %.2f s  p95 %.2f s  p99 %.2f s  max %.2f s\n",
		res.RespMean, res.RespMedian, res.RespP95, res.RespP99, res.RespMax)
	fmt.Printf("requests          %d completed, %d unfinished\n", res.Completed, res.Unfinished)
	fmt.Printf("spin transitions  %d up, %d down\n", res.SpinUps, res.SpinDowns)
	fmt.Printf("avg standby disks %.1f of %d\n", res.AvgStandbyDisks, numDisks)
	fmt.Printf("peak disk queue   %d\n", res.PeakQueue)
	if *cacheB > 0 {
		fmt.Printf("cache             %d hits / %d misses (%.1f%%)\n",
			res.CacheHits, res.CacheMisses, res.CacheHitRatio*100)
	}
	if *verbose {
		fmt.Println("\ndisk  served  bytesGB  energyKJ  spinups  idle%  standby%  active%")
		for i, b := range res.PerDisk {
			total := res.Duration
			fmt.Printf("%4d  %6d  %7.1f  %8.1f  %7d  %5.1f  %8.1f  %7.1f\n",
				i, b.Served, float64(b.BytesRead)/1e9, b.Energy/1e3, b.SpinUps,
				100*b.Durations[disk.Idle]/total,
				100*b.Durations[disk.Standby]/total,
				100*(b.Durations[disk.Seeking]+b.Durations[disk.Transferring])/total)
		}
	}
}

func allocate(tr *trace.Trace, algo string, capL float64, farm int, seed int64) ([]int, error) {
	params := disk.DefaultParams()
	sizes := make([]int64, len(tr.Files))
	rates := make([]float64, len(tr.Files))
	for i, fi := range tr.Files {
		sizes[i] = fi.Size
		rates[i] = fi.Rate
	}
	items, err := core.BuildItems(sizes, rates, params.ServiceTime, params.CapacityBytes, capL)
	if err != nil {
		return nil, err
	}
	var a *core.Assignment
	switch algo {
	case "pack":
		a, err = core.PackDisks(items)
	case "pack4":
		a, err = core.PackDisksV(items, 4)
	case "random":
		n := farm
		if n == 0 {
			ref, err2 := core.PackDisks(items)
			if err2 != nil {
				return nil, err2
			}
			n = ref.NumDisks
		}
		a, err = core.RandomAssignCapacity(items, n, rand.New(rand.NewSource(seed)))
	default:
		return nil, fmt.Errorf("unknown algorithm %q", algo)
	}
	if err != nil {
		return nil, err
	}
	return a.DiskOf, nil
}

func readAssign(path string) ([]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		d, err := strconv.Atoi(line)
		if err != nil {
			return nil, fmt.Errorf("bad assignment line %q: %w", line, err)
		}
		out = append(out, d)
	}
	return out, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "disksim:", err)
	os.Exit(1)
}
